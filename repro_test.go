package repro_test

import (
	"testing"

	"repro"
)

// TestPublicAPIRoundTrip drives the whole public facade the way the
// quickstart example does: generate → analyze → fit → QP → QCP → dosePl.
func TestPublicAPIRoundTrip(t *testing.T) {
	preset := repro.AES65().Scaled(0.04)
	d, err := repro.Generate(preset)
	if err != nil {
		t.Fatal(err)
	}
	if d.Circ.NumCells() < 300 {
		t.Fatalf("suspiciously small design: %d cells", d.Circ.NumCells())
	}
	golden, err := repro.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	model, err := repro.FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := repro.DefaultOptions()

	qp, err := repro.RunQP(golden, model, opt, golden.MCT)
	if err != nil {
		t.Fatal(err)
	}
	if qp.Golden.LeakUW >= qp.Nominal.LeakUW {
		t.Error("QP must reduce leakage")
	}

	qcp, err := repro.RunQCP(golden, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	if qcp.Golden.MCTps >= qcp.Nominal.MCTps {
		t.Error("QCP must improve timing")
	}

	dopt := repro.DefaultDosePlOptions()
	dopt.K = 200
	dopt.Rounds = 2
	dp, err := repro.RunDosePl(golden, qcp, opt, dopt)
	if err != nil {
		t.Fatal(err)
	}
	if dp.After.MCTps > dp.Before.MCTps {
		t.Error("dosePl must never end worse")
	}
}

// TestFlowModes exercises RunFlow in both modes via the facade.
func TestFlowModes(t *testing.T) {
	d, err := repro.Generate(repro.AES90().Scaled(0.04))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []repro.Mode{repro.ModeQPLeakage, repro.ModeQCPTiming} {
		out, err := repro.RunFlow(d, repro.FlowConfig{Opt: repro.DefaultOptions(), Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if out.DM == nil || out.Final.MCTps <= 0 {
			t.Fatalf("%v: empty outcome", mode)
		}
	}
}

// TestHarnessFacade spot-checks the experiment harness re-export.
func TestHarnessFacade(t *testing.T) {
	h := repro.NewHarnessOpts(repro.WithScale(0.04), repro.WithTopK(100))
	f95, _, _, err := h.Criticality("AES-65")
	if err != nil {
		t.Fatal(err)
	}
	if f95 < 0 || f95 > 1 {
		t.Fatalf("criticality out of range: %v", f95)
	}
}
