// Package repro is a from-scratch Go reproduction of "Dose Map and
// Placement Co-Optimization for Timing Yield Enhancement and Leakage
// Power Reduction" (Jeong, Kahng, Park, Yao — DAC 2008; extended TCAD
// 2010 version).
//
// The package is the public facade over the implementation packages in
// internal/: it re-exports the design generator, the golden analysis,
// the two DMopt formulations (QP: minimize leakage under a clock-period
// bound; QCP: minimize the clock period under a leakage bound), the
// dosePl cell-swapping heuristic, the end-to-end flow, and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	d, _ := repro.Generate(repro.AES65().Scaled(0.1))
//	out, _ := repro.RunFlow(d, repro.FlowConfig{
//	        Opt:  repro.DefaultOptions(),
//	        Mode: repro.ModeQCPTiming,
//	})
//	fmt.Printf("MCT %.0f → %.0f ps at %.1f → %.1f µW\n",
//	        out.DM.Nominal.MCTps, out.Final.MCTps,
//	        out.DM.Nominal.LeakUW, out.Final.LeakUW)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/gen"
	"repro/internal/sta"
)

// Re-exported design/testcase types.
type (
	// Preset parameterizes a synthetic testcase (Table I stand-ins).
	Preset = gen.Preset
	// Design is a generated netlist + library + placement bundle.
	Design = gen.Design
)

// Re-exported optimization types.
type (
	// Options configures DMopt (grid size, smoothness δ, dose range,
	// layers, solver).
	Options = core.Options
	// Result is a DMopt outcome with golden signoff numbers.
	Result = core.Result
	// Eval is a golden signoff snapshot (MCT in ps, leakage in µW).
	Eval = core.Eval
	// FlowConfig drives the end-to-end Fig. 7 flow.
	FlowConfig = core.FlowConfig
	// FlowOutcome bundles the flow's artifacts.
	FlowOutcome = core.FlowOutcome
	// DosePlOptions are the γ knobs of the cell-swapping heuristic.
	DosePlOptions = core.DosePlOptions
	// DosePlResult reports the dosePl rounds.
	DosePlResult = core.DosePlResult
	// Model holds the fitted per-instance delay/leakage coefficients.
	Model = core.Model
	// Mode selects the flow's formulation.
	Mode = core.Mode
	// Timing is a full golden static-timing analysis.
	Timing = sta.Result
	// QPRequest describes one leakage-minimization solve (SolveQP).
	QPRequest = core.QPRequest
	// QCPRequest describes one clock-period-minimization solve (SolveQCP).
	QCPRequest = core.QCPRequest
	// FlowRequest describes one end-to-end Fig. 7 run (SolveFlow).
	FlowRequest = core.FlowRequest
)

// Flow modes.
const (
	// ModeQPLeakage minimizes leakage under a timing constraint.
	ModeQPLeakage = core.ModeQPLeakage
	// ModeQCPTiming minimizes the clock period under a leakage budget.
	ModeQCPTiming = core.ModeQCPTiming
)

// Testcase presets (Table I).
var (
	AES65   = gen.AES65
	JPEG65  = gen.JPEG65
	AES90   = gen.AES90
	JPEG90  = gen.JPEG90
	Presets = gen.Presets
)

// Generate builds the synthetic design for a preset.
func Generate(p Preset) (*Design, error) { return gen.Generate(p) }

// GenerateCtx is Generate with cancellation: a canceled context aborts
// the endpoint-rewiring analyses with an error wrapping
// context.Canceled.
func GenerateCtx(ctx context.Context, p Preset) (*Design, error) {
	return gen.GenerateCtx(ctx, p)
}

// DefaultOptions returns the paper's main configuration (5 µm grid,
// δ = 2%, ±5% dose, poly layer, ξ = 0).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultDosePlOptions returns the paper's dosePl experiment knobs.
func DefaultDosePlOptions() DosePlOptions { return core.DefaultDosePlOptions() }

// Analyze runs golden STA on the unoptimized design.
func Analyze(d *Design) (*Timing, error) {
	return core.GoldenNominal(d, sta.DefaultConfig())
}

// AnalyzeCtx is Analyze with cancellation and a worker-count knob
// (workers ≤ 0 selects runtime.GOMAXPROCS(0)); the analysis is
// bit-identical for every worker count.
func AnalyzeCtx(ctx context.Context, d *Design, workers int) (*Timing, error) {
	cfg := sta.DefaultConfig()
	cfg.Workers = workers
	return core.GoldenNominalCtx(ctx, d, cfg)
}

// FitModel calibrates the per-instance linear-delay / quadratic-leakage
// coefficients at the golden operating points.
func FitModel(t *Timing, bothLayers bool) (*Model, error) {
	return core.FitModel(t, bothLayers)
}

// FitModelCtx is FitModel with cancellation and a worker-count knob.
func FitModelCtx(ctx context.Context, t *Timing, bothLayers bool, workers int) (*Model, error) {
	return core.FitModelCtx(ctx, t, bothLayers, workers)
}

// SolveQP is the ctx-first QP entry point: minimize Δleakage subject to
// MCT ≤ req.TauPs (Section III QP).
func SolveQP(ctx context.Context, req QPRequest) (*Result, error) {
	return core.SolveQP(ctx, req)
}

// SolveQCP is the ctx-first QCP entry point: minimize the clock period
// subject to Δleakage ≤ req.Opt.XiNW (Section III QCP, solved by
// bisection over the QP).
func SolveQCP(ctx context.Context, req QCPRequest) (*Result, error) {
	return core.SolveQCP(ctx, req)
}

// RunQP minimizes Δleakage subject to MCT ≤ tauPs (Section III QP).
//
// Deprecated: use SolveQP.
func RunQP(t *Timing, m *Model, opt Options, tauPs float64) (*Result, error) {
	return core.SolveQP(context.Background(), QPRequest{Golden: t, Model: m, Opt: opt, TauPs: tauPs})
}

// RunQPCtx is RunQP with cancellation.
//
// Deprecated: use SolveQP.
func RunQPCtx(ctx context.Context, t *Timing, m *Model, opt Options, tauPs float64) (*Result, error) {
	return core.SolveQP(ctx, QPRequest{Golden: t, Model: m, Opt: opt, TauPs: tauPs})
}

// RunQCP minimizes the clock period subject to Δleakage ≤ opt.XiNW
// (Section III QCP, solved by bisection over the QP).
//
// Deprecated: use SolveQCP.
func RunQCP(t *Timing, m *Model, opt Options) (*Result, error) {
	return core.SolveQCP(context.Background(), QCPRequest{Golden: t, Model: m, Opt: opt})
}

// RunQCPCtx is RunQCP with cancellation.
//
// Deprecated: use SolveQCP.
func RunQCPCtx(ctx context.Context, t *Timing, m *Model, opt Options) (*Result, error) {
	return core.SolveQCP(ctx, QCPRequest{Golden: t, Model: m, Opt: opt})
}

// RunDosePl runs the cell-swapping placement rounds on an optimized
// dose map (Appendix, Algorithm 1).  The design's placement is mutated
// when rounds are accepted.
func RunDosePl(t *Timing, r *Result, opt Options, dopt DosePlOptions) (*DosePlResult, error) {
	return core.DosePl(t, r.Layers, opt, dopt)
}

// RunDosePlCtx is RunDosePl with cancellation: a canceled context
// aborts between swap rounds, leaving the placement in its last
// consistent state, with an error wrapping context.Canceled.
func RunDosePlCtx(ctx context.Context, t *Timing, r *Result, opt Options, dopt DosePlOptions) (*DosePlResult, error) {
	return core.DosePlCtx(ctx, t, r.Layers, opt, dopt)
}

// SolveFlow is the ctx-first end-to-end entry point: it executes the
// full Fig. 7 pipeline described by the request.  Set
// req.Config.Opt.Workers to bound every stage's fan-out; results are
// bit-identical for every worker count.
func SolveFlow(ctx context.Context, req FlowRequest) (*FlowOutcome, error) {
	return core.SolveFlow(ctx, req)
}

// RunFlow executes the full Fig. 7 pipeline.
//
// Deprecated: use SolveFlow.
func RunFlow(d *Design, cfg FlowConfig) (*FlowOutcome, error) {
	return core.SolveFlow(context.Background(), FlowRequest{Design: d, Config: cfg})
}

// RunFlowCtx is RunFlow with cancellation.
//
// Deprecated: use SolveFlow.
func RunFlowCtx(ctx context.Context, d *Design, cfg FlowConfig) (*FlowOutcome, error) {
	return core.SolveFlow(ctx, FlowRequest{Design: d, Config: cfg})
}

// Harness is the experiment context that regenerates the paper's tables
// and figures; see cmd/tables and bench_test.go.  It is safe for
// concurrent use.
type Harness = expt.Context

// HarnessOption configures a Harness (see WithScale, WithTopK,
// WithWorkers).
type HarnessOption = expt.Option

// Harness options re-exported from the experiment package.
var (
	// WithScale shrinks every preset by a factor in (0, 1].
	WithScale = expt.WithScale
	// WithTopK sets the top-path count for path-based experiments.
	WithTopK = expt.WithTopK
	// WithWorkers bounds the harness's parallel fan-out.
	WithWorkers = expt.WithWorkers
)

// NewHarnessOpts returns an experiment harness with the paper's
// configuration (full design sizes, K = 10 000, GOMAXPROCS workers),
// adjusted by the options.
func NewHarnessOpts(opts ...HarnessOption) *Harness { return expt.New(opts...) }
