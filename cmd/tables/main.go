// Command tables regenerates the paper's evaluation tables and figures
// on the synthetic testcases.
//
// Usage:
//
//	tables [-scale 0.15] [-k 2000] [-md] [-which all|I,II,III,IV,V,VI,VII,VIII,fig2,fig3,fig4,fig5,fig6,fig10]
//	tables -which ix   # wafer consensus table (opt-in)
//	tables -which x    # actuator ablation table (opt-in)
//
// -scale 1 reproduces the full Table I design sizes (minutes of CPU);
// smaller scales shrink the designs proportionally for quick runs.
//
// -stats prints a run-telemetry tree (stage spans, solver/STA counters)
// to stderr; -bench-json FILE additionally writes the same telemetry as
// a schema-versioned machine-readable benchmark report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/expt"
)

func main() {
	scale := flag.Float64("scale", 0.15, "design scale factor in (0,1]; 1 = full Table I sizes")
	k := flag.Int("k", 2000, "top-path count for path-based experiments (paper: 10000)")
	md := flag.Bool("md", false, "emit GitHub-flavored markdown instead of aligned text")
	which := flag.String("which", "all", "comma-separated experiment list, 'all', or opt-ins 'ix' (wafer) / 'x' (actuator ablation)")
	fig10Design := flag.String("fig10", "AES-65", "design for the Fig. 10 slack profiles")
	com := cli.AddFlags("tables")
	flag.Parse()
	com.Init()
	defer com.Close()

	ctx := com.Context()
	c := expt.New(expt.WithScale(*scale), expt.WithTopK(*k), expt.WithWorkers(com.Workers),
		expt.WithLinSys(com.LinSys))
	sel := map[string]bool{}
	for _, w := range strings.Split(strings.ToLower(*which), ",") {
		sel[strings.TrimSpace(w)] = true
	}
	want := func(name string) bool { return sel["all"] || sel[strings.ToLower(name)] }

	emit := func(t *expt.Table, err error) {
		com.Check(err)
		if *md {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
	}

	start := time.Now()
	if want("fig2") {
		emit(expt.Fig2(), nil)
	}
	if want("fig3") {
		emit(expt.Fig3(), nil)
	}
	if want("fig4") {
		emit(expt.Fig4(), nil)
	}
	if want("fig5") {
		emit(expt.Fig5(), nil)
	}
	if want("fig6") {
		emit(expt.Fig6(), nil)
	}
	if want("i") {
		emit(c.TableICtx(ctx))
	}
	if want("ii") {
		emit(c.TableIICtx(ctx))
	}
	if want("iii") {
		emit(c.TableIIICtx(ctx))
	}
	if want("iv") {
		t, _, err := c.TableIVCtx(ctx)
		emit(t, err)
	}
	if want("v") {
		t, _, err := c.TableVCtx(ctx)
		emit(t, err)
	}
	if want("vi") {
		t, _, err := c.TableVICtx(ctx)
		emit(t, err)
	}
	if want("vii") {
		emit(c.TableVIICtx(ctx))
	}
	if want("viii") {
		emit(c.TableVIIICtx(ctx))
	}
	if want("fig10") {
		emit(c.Fig10Ctx(ctx, *fig10Design, 24))
	}
	// The wafer extension is opt-in (-which ix): 88 coupled field
	// solves are well beyond the single-field tables' budget.
	if sel["ix"] {
		emit(c.TableIXCtx(ctx, *fig10Design))
	}
	// The actuator ablation is opt-in (-which x): it exercises the
	// body-bias extension rather than a paper table.
	if sel["x"] {
		t, _, err := c.TableXCtx(ctx)
		emit(t, err)
	}
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr, "tables: done in %v (scale %.2f)\n", wall.Round(time.Millisecond), *scale)
	com.Finish("tables -which "+*which, *scale, *k, com.Workers, wall)
}
