// Command tables regenerates the paper's evaluation tables and figures
// on the synthetic testcases.
//
// Usage:
//
//	tables [-scale 0.15] [-k 2000] [-md] [-which all|I,II,III,IV,V,VI,VII,VIII,fig2,fig3,fig4,fig5,fig6,fig10]
//
// -scale 1 reproduces the full Table I design sizes (minutes of CPU);
// smaller scales shrink the designs proportionally for quick runs.
//
// -stats prints a run-telemetry tree (stage spans, solver/STA counters)
// to stderr; -bench-json FILE additionally writes the same telemetry as
// a schema-versioned machine-readable benchmark report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/qp"
)

func main() {
	scale := flag.Float64("scale", 0.15, "design scale factor in (0,1]; 1 = full Table I sizes")
	k := flag.Int("k", 2000, "top-path count for path-based experiments (paper: 10000)")
	md := flag.Bool("md", false, "emit GitHub-flavored markdown instead of aligned text")
	which := flag.String("which", "all", "comma-separated experiment list, or 'all'")
	fig10Design := flag.String("fig10", "AES-65", "design for the Fig. 10 slack profiles")
	workers := flag.Int("workers", 0, "parallel fan-out per experiment; 0 = GOMAXPROCS")
	linsysFlag := flag.String("linsys", "auto", "ADMM linear-system backend: auto, cg or ldlt")
	stats := flag.Bool("stats", false, "print run telemetry (spans, counters) to stderr")
	benchJSON := flag.String("bench-json", "", "write a machine-readable benchmark report to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfile := startCPUProfile(*cpuprofile)
	defer stopProfile()
	defer writeMemProfile(*memprofile)

	linsys, err := qp.ParseLinSys(*linsysFlag)
	check(err)

	ctx := context.Background()
	var rec *obs.Recorder
	if *stats || *benchJSON != "" {
		rec = obs.New()
		ctx = obs.With(ctx, rec)
	}

	c := expt.New(expt.WithScale(*scale), expt.WithTopK(*k), expt.WithWorkers(*workers),
		expt.WithLinSys(linsys))
	sel := map[string]bool{}
	for _, w := range strings.Split(strings.ToLower(*which), ",") {
		sel[strings.TrimSpace(w)] = true
	}
	want := func(name string) bool { return sel["all"] || sel[strings.ToLower(name)] }

	emit := func(t *expt.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		if *md {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
	}

	start := time.Now()
	if want("fig2") {
		emit(expt.Fig2(), nil)
	}
	if want("fig3") {
		emit(expt.Fig3(), nil)
	}
	if want("fig4") {
		emit(expt.Fig4(), nil)
	}
	if want("fig5") {
		emit(expt.Fig5(), nil)
	}
	if want("fig6") {
		emit(expt.Fig6(), nil)
	}
	if want("i") {
		emit(c.TableICtx(ctx))
	}
	if want("ii") {
		emit(c.TableIICtx(ctx))
	}
	if want("iii") {
		emit(c.TableIIICtx(ctx))
	}
	if want("iv") {
		t, _, err := c.TableIVCtx(ctx)
		emit(t, err)
	}
	if want("v") {
		t, _, err := c.TableVCtx(ctx)
		emit(t, err)
	}
	if want("vi") {
		t, _, err := c.TableVICtx(ctx)
		emit(t, err)
	}
	if want("vii") {
		emit(c.TableVIICtx(ctx))
	}
	if want("viii") {
		emit(c.TableVIIICtx(ctx))
	}
	if want("fig10") {
		emit(c.Fig10Ctx(ctx, *fig10Design, 24))
	}
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr, "tables: done in %v (scale %.2f)\n", wall.Round(time.Millisecond), *scale)
	if rec != nil {
		if *stats {
			rec.WriteTree(os.Stderr, wall)
		}
		if *benchJSON != "" {
			rep := rec.Report("tables -which "+*which, *scale, *k, par.Workers(*workers), wall)
			rep.LinSys = linsys.String()
			check(rep.WriteJSON(*benchJSON))
			fmt.Fprintf(os.Stderr, "tables: wrote benchmark report to %s\n", *benchJSON)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
}

// startCPUProfile begins profiling into path (empty disables) and
// returns the stop function to defer.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	check(err)
	check(pprof.StartCPUProfile(f))
	return func() {
		pprof.StopCPUProfile()
		check(f.Close())
	}
}

// writeMemProfile dumps a post-GC heap profile to path (empty disables).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	check(err)
	runtime.GC()
	check(pprof.WriteHeapProfile(f))
	check(f.Close())
}
