// Command dmopt-serve runs the dose-map optimization as a long-running
// HTTP/JSON service: POST a dmopt-job/v1 spec, poll the job, read the
// result — the same numbers cmd/dmopt prints for the same spec, because
// both transports run the shared internal/api executor.  The daemon
// keeps a byte-budget LRU of compiled artifacts across requests and
// exports its pipeline counters at /metrics in the dmopt-bench/v1
// schema.
//
// Usage:
//
//	dmopt-serve [-addr :8080] [-max-running 2] [-max-queue 64]
//	            [-job-workers 0] [-cache-mb 512]
//
// Quickstart:
//
//	dmopt-serve -addr :8080 &
//	curl -s localhost:8080/v1/solve -d '{"design":"AES-65","scale":0.15}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (:0 picks a free port; the resolved address is printed)")
	maxRunning := flag.Int("max-running", 2, "concurrently executing jobs")
	maxQueue := flag.Int("max-queue", 64, "admission queue bound; overflow is rejected with 429")
	cacheMB := flag.Int("cache-mb", 512, "artifact cache budget in MiB; 0 = unbounded")
	keepJobs := flag.Int("keep-jobs", 1024, "finished jobs kept in the registry")
	com := cli.AddFlags("dmopt-serve")
	flag.Parse()
	com.Init()
	defer com.Close()

	rec := obs.New()
	srv := serve.New(serve.Config{
		MaxRunning: *maxRunning,
		MaxQueue:   *maxQueue,
		JobWorkers: com.Workers,
		CacheBytes: int64(*cacheMB) << 20,
		KeepJobs:   *keepJobs,
	}, rec)

	// Listen before announcing so -addr :0 resolves to the actual port;
	// scripts parse the "listening on" line to find the server.
	ln, err := net.Listen("tcp", *addr)
	com.Check(err)
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dmopt-serve: listening on %s (max-running %d, queue %d, cache %d MiB)\n",
		ln.Addr(), *maxRunning, *maxQueue, *cacheMB)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "dmopt-serve: %v, shutting down\n", sig)
	case err := <-errc:
		com.Check(err)
	}

	// Cancel every job first — queued, async-running, and synchronous
	// solves tied to open requests — then drain the HTTP server; the
	// canceled handlers return promptly so Shutdown completes.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dmopt-serve: shutdown: %v\n", err)
	}
	if com.Stats {
		rec.WriteTree(os.Stderr, srv.Uptime())
	}
}
