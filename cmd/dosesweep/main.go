// Command dosesweep reproduces the uniform-dose sweeps of Tables II and
// III: it applies a flat poly-layer dose change to every cell of a
// design and reports golden MCT and leakage at each point, demonstrating
// that a uniform dose cannot improve timing without a leakage penalty.
//
// With -wafer it instead runs the full-wafer consensus co-optimization
// (Table IX): per-field sub-problems under a radial across-wafer CD
// fingerprint, coupled by shared cross-slit dose profiles and resolved
// with consensus-ADMM, reported against the uniform-dose and uncoupled
// per-field baselines.
//
// Usage:
//
//	dosesweep [-design AES-65] [-scale 0.15]
//	dosesweep -bias [-design AES-65] [-scale 0.15]
//	dosesweep -wafer [-design AES-65] [-scale 0.15] [-grid 10]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cli"
	"repro/internal/expt"
)

func main() {
	design := flag.String("design", "AES-65", "testcase: AES-65, JPEG-65, AES-90, JPEG-90")
	scale := flag.Float64("scale", 0.15, "design scale factor in (0,1]")
	wafer := flag.Bool("wafer", false, "run the full-wafer consensus co-optimization instead of the uniform sweep")
	bias := flag.Bool("bias", false, "sweep a uniform body-bias voltage instead of a uniform dose")
	grid := flag.Float64("grid", 10, "wafer mode: dose-map grid pitch in µm")
	com := cli.AddFlags("dosesweep")
	flag.Parse()
	com.Init()
	defer com.Close()

	start := time.Now()
	c := expt.New(expt.WithScale(*scale), expt.WithWorkers(com.Workers), expt.WithLinSys(com.LinSys))
	if *wafer {
		r, err := c.WaferRunCtx(com.Context(), *design, *grid, expt.WaferGeometry())
		com.Check(err)
		fmt.Println(expt.WaferTable(*design, r).Format())
		fmt.Printf("across-wafer MCT spread: uniform %.3f%%  uncoupled %.3f%%  coupled %.4f%%\n",
			r.UniformSpreadPct, r.UncoupledSpreadPct, r.CoupledSpreadPct)
		fmt.Printf("τ̄ = %.1f ps over %d fields (%d consensus groups, %d outer iters, %d field solves) in %v\n",
			r.TauPs, len(r.Fields), r.Groups, r.OuterIters, r.FieldSolves, r.Runtime.Round(time.Millisecond))
		com.Finish("dosesweep -wafer "+*design, *scale, 0, com.Workers, time.Since(start))
		return
	}
	if *bias {
		rows, err := c.BiasSweepCtx(com.Context(), *design, expt.SweepBiases())
		com.Check(err)
		fmt.Printf("uniform body-bias sweep on %s (scale %.2f)\n", *design, *scale)
		fmt.Printf("%-10s %-10s %-9s %-13s %-9s\n", "bias (V)", "MCT (ns)", "imp (%)", "leak (µW)", "imp (%)")
		for _, r := range rows {
			fmt.Printf("%-10.2f %-10.3f %-9.2f %-13.1f %-9.2f\n",
				r.BiasV, r.MCTns, r.MCTImp, r.LeakUW, r.LeakImp)
		}
		com.Finish("dosesweep -bias "+*design, *scale, 0, com.Workers, time.Since(start))
		return
	}
	rows, err := c.DoseSweepCtx(com.Context(), *design, expt.SweepDoses())
	com.Check(err)
	fmt.Printf("uniform poly-layer dose sweep on %s (scale %.2f)\n", *design, *scale)
	fmt.Printf("%-10s %-10s %-9s %-13s %-9s\n", "dose (%)", "MCT (ns)", "imp (%)", "leak (µW)", "imp (%)")
	for _, r := range rows {
		fmt.Printf("%-10.1f %-10.3f %-9.2f %-13.1f %-9.2f\n",
			r.Dose, r.MCTns, r.MCTImp, r.LeakUW, r.LeakImp)
	}
	com.Finish("dosesweep "+*design, *scale, 0, com.Workers, time.Since(start))
}
