// Command dosesweep reproduces the uniform-dose sweeps of Tables II and
// III: it applies a flat poly-layer dose change to every cell of a
// design and reports golden MCT and leakage at each point, demonstrating
// that a uniform dose cannot improve timing without a leakage penalty.
//
// Usage:
//
//	dosesweep [-design AES-65] [-scale 0.15]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cli"
	"repro/internal/expt"
)

func main() {
	design := flag.String("design", "AES-65", "testcase: AES-65, JPEG-65, AES-90, JPEG-90")
	scale := flag.Float64("scale", 0.15, "design scale factor in (0,1]")
	com := cli.AddFlags("dosesweep")
	flag.Parse()
	com.Init()
	defer com.Close()

	start := time.Now()
	c := expt.New(expt.WithScale(*scale), expt.WithWorkers(com.Workers))
	rows, err := c.DoseSweepCtx(com.Context(), *design, expt.SweepDoses())
	com.Check(err)
	fmt.Printf("uniform poly-layer dose sweep on %s (scale %.2f)\n", *design, *scale)
	fmt.Printf("%-10s %-10s %-9s %-13s %-9s\n", "dose (%)", "MCT (ns)", "imp (%)", "leak (µW)", "imp (%)")
	for _, r := range rows {
		fmt.Printf("%-10.1f %-10.3f %-9.2f %-13.1f %-9.2f\n",
			r.Dose, r.MCTns, r.MCTImp, r.LeakUW, r.LeakImp)
	}
	com.Finish("dosesweep "+*design, *scale, 0, com.Workers, time.Since(start))
}
