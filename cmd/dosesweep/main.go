// Command dosesweep reproduces the uniform-dose sweeps of Tables II and
// III: it applies a flat poly-layer dose change to every cell of a
// design and reports golden MCT and leakage at each point, demonstrating
// that a uniform dose cannot improve timing without a leakage penalty.
//
// Usage:
//
//	dosesweep [-design AES-65] [-scale 0.15]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/qp"
)

func main() {
	design := flag.String("design", "AES-65", "testcase: AES-65, JPEG-65, AES-90, JPEG-90")
	scale := flag.Float64("scale", 0.15, "design scale factor in (0,1]")
	workers := flag.Int("workers", 0, "parallel fan-out across sweep points; 0 = GOMAXPROCS")
	stats := flag.Bool("stats", false, "print run telemetry (spans, counters) to stderr")
	linsysFlag := flag.String("linsys", "auto", "ADMM linear-system backend (accepted for flag parity; this command runs no QP solves)")
	flag.Parse()

	if _, err := qp.ParseLinSys(*linsysFlag); err != nil {
		fmt.Fprintf(os.Stderr, "dosesweep: %v\n", err)
		os.Exit(1)
	}

	ctx := context.Background()
	var rec *obs.Recorder
	if *stats {
		rec = obs.New()
		ctx = obs.With(ctx, rec)
	}
	start := time.Now()
	c := expt.New(expt.WithScale(*scale), expt.WithWorkers(*workers))
	rows, err := c.DoseSweepCtx(ctx, *design, expt.SweepDoses())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosesweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("uniform poly-layer dose sweep on %s (scale %.2f)\n", *design, *scale)
	fmt.Printf("%-10s %-10s %-9s %-13s %-9s\n", "dose (%)", "MCT (ns)", "imp (%)", "leak (µW)", "imp (%)")
	for _, r := range rows {
		fmt.Printf("%-10.1f %-10.3f %-9.2f %-13.1f %-9.2f\n",
			r.Dose, r.MCTns, r.MCTImp, r.LeakUW, r.LeakImp)
	}
	if rec != nil {
		rec.WriteTree(os.Stderr, time.Since(start))
	}
}
