// Command charlib characterizes and dumps the standard-cell library for
// a node: the master inventory and, for one master, the NLDM delay/slew
// tables across the dose-variant grid — the data the paper's coefficient
// fitting consumes.
//
// Usage:
//
//	charlib [-node N65] [-master INVX1] [-tables] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cli"
	"repro/internal/liberty"
	"repro/internal/tech"
)

func main() {
	nodeName := flag.String("node", "N65", "technology node: N65 or N90")
	master := flag.String("master", "INVX1", "master to dump NLDM tables for")
	tables := flag.Bool("tables", false, "dump dose-variant NLDM tables for -master")
	com := cli.AddFlags("charlib")
	flag.Parse()
	com.Init()
	defer com.Close()

	ctx := com.Context()
	start := time.Now()

	node, err := tech.ByName(*nodeName)
	com.Check(err)
	lib := liberty.New(node)
	fmt.Printf("library %s: %d combinational + %d sequential masters\n",
		node.Name, len(lib.CombMasters()), len(lib.SeqMasters()))
	fmt.Printf("%-10s %-6s %-4s %-8s %-8s %-10s %-10s\n",
		"master", "func", "in", "drive", "area", "cin (fF)", "leak (nW)")
	for _, m := range lib.Masters {
		fmt.Printf("%-10s %-6s %-4d %-8.1f %-8.2f %-10.2f %-10.2f\n",
			m.Name, m.Func, m.Inputs, m.Drive, m.Area, m.CIn, m.Leakage(0, 0))
	}

	if !*tables {
		com.Finish("charlib "+node.Name, 1, 0, com.Workers, time.Since(start))
		return
	}
	m, ok := lib.Master(*master)
	if !ok {
		com.Fatalf("unknown master %q", *master)
	}
	fmt.Printf("\nNLDM tables for %s across the 21 poly-dose variants:\n", m.Name)
	variants, err := liberty.Characterize(ctx, []*liberty.Master{m}, liberty.DoseSteps(), com.Workers)
	com.Check(err)
	for _, v := range variants {
		tab := v.Table
		fmt.Printf("\ndose %+.1f%% (ΔL = %+.1f nm), leakage %.2f nW\n", v.Dose, v.DL, v.Leak)
		fmt.Printf("%8s", "slew\\load")
		for _, c := range tab.Loads {
			fmt.Printf(" %7.1f", c)
		}
		fmt.Println()
		for i, s := range tab.Slews {
			fmt.Printf("%8.1f ", s)
			for j := range tab.Loads {
				fmt.Printf("%7.2f ", tab.Delay[i][j])
			}
			fmt.Println()
		}
	}
	com.Finish("charlib "+node.Name, 1, 0, com.Workers, time.Since(start))
}
