// Command dmopt runs the design-aware dose-map optimization on one
// testcase and prints the golden signoff numbers, optionally followed by
// the dosePl cell-swapping rounds.
//
// The flags assemble a dmopt-job/v1 spec (internal/api) and run it
// in-process through the same Prepare/Execute path dmopt-serve uses, so
// a job POSTed to the server returns numbers bit-identical to this
// command.
//
// Usage:
//
//	dmopt [-design AES-65] [-scale 0.15] [-grid 5] [-qcp] [-both]
//	      [-delta 2] [-dosepl] [-xi 0]
//	      [-actuators dose|bias|dose+bias] [-bias-grid 20] [-bias-lo -0.2] [-bias-hi 0.1]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/api"
	"repro/internal/cli"
)

func main() {
	design := flag.String("design", "AES-65", "testcase: AES-65, JPEG-65, AES-90, JPEG-90")
	scale := flag.Float64("scale", 0.15, "design scale factor in (0,1]")
	grid := flag.Float64("grid", 5, "dose-map grid size G in µm")
	qcp := flag.Bool("qcp", false, "minimize clock period under leakage budget (default: minimize leakage under timing)")
	both := flag.Bool("both", false, "modulate both poly and active layers (Lgate + Wgate)")
	delta := flag.Float64("delta", 2, "dose smoothness bound δ in percent")
	xi := flag.Float64("xi", 0, "QCP leakage budget ξ in nW (Δleakage allowed)")
	dosepl := flag.Bool("dosepl", false, "run dosePl cell-swapping rounds after DMopt")
	act := cli.AddActuatorFlags(flag.CommandLine)
	com := cli.AddFlags("dmopt")
	flag.Parse()
	com.Init()
	defer com.Close()

	mode := api.ModeQP
	if *qcp {
		mode = api.ModeQCP
	}
	spec := api.JobSpec{
		Design:     *design,
		Scale:      *scale,
		Mode:       mode,
		XiNW:       *xi,
		GridUm:     *grid,
		Delta:      *delta,
		BothLayers: *both,
		DosePl:     *dosepl,
		Workers:    com.Workers,
		LinSys:     com.LinSys.String(),
	}
	act.Apply(&spec)

	start := time.Now()
	res, out, err := api.Run(com.Context(), spec)
	com.Check(err)

	dm := out.DM
	fmt.Printf("%s: %d cells\n", spec.DesignKey(), out.Golden.In.Circ.NumCells())
	fmt.Printf("\n%s, grid %.1f µm, δ=%.1f, layers=%s\n", res.Mode, *grid, *delta, layers(*both))
	fmt.Printf("  nominal : MCT %8.1f ps   leakage %9.1f µW\n", res.NominalMCTPs, res.NominalLeakUW)
	fmt.Printf("  DMopt   : MCT %8.1f ps   leakage %9.1f µW   (%+.2f%% / %+.2f%%)\n",
		dm.Golden.MCTps, dm.Golden.LeakUW,
		100*(dm.Golden.MCTps/dm.Nominal.MCTps-1), 100*(dm.Golden.LeakUW/dm.Nominal.LeakUW-1))
	fmt.Printf("  solver  : %s, probes=%d, runtime %v\n", res.SolverStatus, res.Probes, dm.Runtime.Round(time.Millisecond))
	fmt.Printf("  dose map: min %.2f%%  max %.2f%%  mean %.2f%%  max neighbor Δ %.3f%%\n",
		res.Dose.MinPct, res.Dose.MaxPct, res.Dose.MeanPct, res.Dose.MaxNeighborDeltaPct)
	if bs := res.Bias; bs != nil {
		fmt.Printf("  bias    : %d domains  min %+.3f V  max %+.3f V  mean %+.3f V\n",
			bs.Domains, bs.MinV, bs.MaxV, bs.MeanV)
	}
	if dp := res.DosePl; dp != nil {
		fmt.Printf("  dosePl  : MCT %8.1f ps   leakage %9.1f µW   (%d swaps accepted over %d rounds)\n",
			dp.MCTPs, dp.LeakUW, dp.SwapsAccepted, dp.Rounds)
	}
	com.Finish("dmopt "+spec.DesignKey(), *scale, 0, com.Workers, time.Since(start))
}

func layers(both bool) string {
	if both {
		return "poly+active"
	}
	return "poly"
}
