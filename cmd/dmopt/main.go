// Command dmopt runs the design-aware dose-map optimization on one
// testcase and prints the golden signoff numbers, optionally followed by
// the dosePl cell-swapping rounds.
//
// Usage:
//
//	dmopt [-design AES-65] [-scale 0.15] [-grid 5] [-qcp] [-both]
//	      [-delta 2] [-dosepl] [-xi 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/qp"
)

func main() {
	design := flag.String("design", "AES-65", "testcase: AES-65, JPEG-65, AES-90, JPEG-90")
	scale := flag.Float64("scale", 0.15, "design scale factor in (0,1]")
	grid := flag.Float64("grid", 5, "dose-map grid size G in µm")
	qcp := flag.Bool("qcp", false, "minimize clock period under leakage budget (default: minimize leakage under timing)")
	both := flag.Bool("both", false, "modulate both poly and active layers (Lgate + Wgate)")
	delta := flag.Float64("delta", 2, "dose smoothness bound δ in percent")
	xi := flag.Float64("xi", 0, "QCP leakage budget ξ in nW (Δleakage allowed)")
	dosepl := flag.Bool("dosepl", false, "run dosePl cell-swapping rounds after DMopt")
	workers := flag.Int("workers", 0, "parallel fan-out of STA/fit/solver; 0 = GOMAXPROCS (bit-identical results)")
	linsysFlag := flag.String("linsys", "auto", "ADMM linear-system backend: auto, cg or ldlt")
	stats := flag.Bool("stats", false, "print run telemetry (spans, counters) to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfile := startCPUProfile(*cpuprofile)
	defer stopProfile()
	defer writeMemProfile(*memprofile)

	var preset repro.Preset
	found := false
	for _, p := range repro.Presets() {
		if p.Name == *design {
			preset = p
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "dmopt: unknown design %q\n", *design)
		os.Exit(1)
	}
	if *scale < 1 {
		preset = preset.Scaled(*scale)
	}

	start := time.Now()
	d, err := repro.Generate(preset)
	check(err)
	fmt.Printf("generated %s: %d cells in %v\n", preset.Name, d.Circ.NumCells(), time.Since(start).Round(time.Millisecond))

	linsys, err := qp.ParseLinSys(*linsysFlag)
	check(err)

	opt := repro.DefaultOptions()
	opt.G = *grid
	opt.Delta = *delta
	opt.BothLayers = *both
	opt.XiNW = *xi
	opt.Workers = *workers
	opt.QP.LinSys = linsys

	mode := repro.ModeQPLeakage
	if *qcp {
		mode = repro.ModeQCPTiming
	}
	ctx := context.Background()
	var rec *obs.Recorder
	if *stats {
		rec = obs.New()
		ctx = obs.With(ctx, rec)
	}
	cfg := repro.FlowConfig{Opt: opt, Mode: mode, RunDosePl: *dosepl, DosePl: repro.DefaultDosePlOptions()}
	out, err := repro.RunFlowCtx(ctx, d, cfg)
	check(err)

	dm := out.DM
	fmt.Printf("\n%s, grid %.1f µm, δ=%.1f, layers=%s\n", mode, *grid, *delta, layers(*both))
	fmt.Printf("  nominal : MCT %8.1f ps   leakage %9.1f µW\n", dm.Nominal.MCTps, dm.Nominal.LeakUW)
	fmt.Printf("  DMopt   : MCT %8.1f ps   leakage %9.1f µW   (%+.2f%% / %+.2f%%)\n",
		dm.Golden.MCTps, dm.Golden.LeakUW,
		100*(dm.Golden.MCTps/dm.Nominal.MCTps-1), 100*(dm.Golden.LeakUW/dm.Nominal.LeakUW-1))
	fmt.Printf("  solver  : %s, probes=%d, runtime %v\n", dm.Status, dm.Probes, dm.Runtime.Round(time.Millisecond))
	st := dm.Layers.Poly.Stats()
	fmt.Printf("  dose map: min %.2f%%  max %.2f%%  mean %.2f%%  max neighbor Δ %.3f%%\n",
		st.Min, st.Max, st.Mean, dm.Layers.Poly.MaxNeighborDiff())
	if out.DosePl != nil {
		dp := out.DosePl
		fmt.Printf("  dosePl  : MCT %8.1f ps   leakage %9.1f µW   (%d swaps accepted over %d rounds)\n",
			dp.After.MCTps, dp.After.LeakUW, dp.SwapsAccepted, len(dp.Rounds))
	}
	if rec != nil {
		rec.WriteTree(os.Stderr, time.Since(start))
	}
}

func layers(both bool) string {
	if both {
		return "poly+active"
	}
	return "poly"
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmopt: %v\n", err)
		os.Exit(1)
	}
}

// startCPUProfile begins profiling into path (empty disables) and
// returns the stop function to defer.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	check(err)
	check(pprof.StartCPUProfile(f))
	return func() {
		pprof.StopCPUProfile()
		check(f.Close())
	}
}

// writeMemProfile dumps a post-GC heap profile to path (empty disables).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	check(err)
	runtime.GC()
	check(pprof.WriteHeapProfile(f))
	check(f.Close())
}
