#!/bin/sh
# Smoke-test the dmopt-serve daemon: boot it on an ephemeral port,
# submit one scale-0.15 AES-65 job through the synchronous endpoint,
# require HTTP 200 with a dmopt-job/v1 result, require a dmopt-bench/v1
# /metrics report, then shut the daemon down cleanly.
#
# Usage: scripts/serve_smoke.sh path/to/dmopt-serve
set -eu

BIN=${1:?usage: serve_smoke.sh path/to/dmopt-serve}

# Bind port 0 so the kernel picks a free port; the daemon prints the
# resolved address on stderr, which we parse to find the server.
LOG=$(mktemp)
"$BIN" -addr 127.0.0.1:0 -max-running 1 -cache-mb 64 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

# Wait for the resolved listen address, then for liveness (up to ~10 s).
i=0
ADDR=
while [ -z "$ADDR" ]; do
    ADDR=$(sed -n 's/^dmopt-serve: listening on \([^ ]*\).*/\1/p' "$LOG")
    [ -n "$ADDR" ] && break
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never announced its address" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
BASE=http://$ADDR

until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

BODY=$(mktemp)
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG" "$BODY"' EXIT

CODE=$(curl -s -o "$BODY" -w '%{http_code}' "$BASE/v1/solve" \
    -d '{"design":"AES-65","scale":0.15}')
if [ "$CODE" != 200 ]; then
    echo "serve-smoke: /v1/solve returned $CODE:" >&2
    cat "$BODY" >&2
    exit 1
fi
grep -q '"schema": "dmopt-job/v1"' "$BODY" || {
    echo "serve-smoke: result is not a dmopt-job/v1 document:" >&2
    cat "$BODY" >&2
    exit 1
}
grep -q '"solver_status"' "$BODY" || {
    echo "serve-smoke: result misses solver status:" >&2
    cat "$BODY" >&2
    exit 1
}

CODE=$(curl -s -o "$BODY" -w '%{http_code}' "$BASE/metrics")
if [ "$CODE" != 200 ]; then
    echo "serve-smoke: /metrics returned $CODE" >&2
    exit 1
fi
grep -q '"schema": "dmopt-bench/v1"' "$BODY" || {
    echo "serve-smoke: metrics is not a dmopt-bench/v1 report:" >&2
    cat "$BODY" >&2
    exit 1
}
grep -q '"serve/jobs_done": 1' "$BODY" || {
    echo "serve-smoke: job completion not visible in metrics:" >&2
    cat "$BODY" >&2
    exit 1
}

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "serve-smoke: OK (solve 200, metrics report, clean shutdown)"
