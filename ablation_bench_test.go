// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - cutting-plane engine versus the verbatim node-based assembly;
//   - dose-map grid granularity (the Section V sweep);
//   - smoothness bound δ (tighter bounds shrink the reachable dose range
//     per grid, Section V's closing discussion);
//   - snapping policy (nearest versus timing-safe rounding).
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/dosemap"
	"repro/internal/expt"
	"repro/internal/sta"
)

var (
	ablOnce   sync.Once
	ablGolden *sta.Result
	ablModel  *core.Model
)

func ablationFixture(b *testing.B) (*sta.Result, *core.Model) {
	ablOnce.Do(func() {
		d, err := repro.Generate(repro.AES65().Scaled(0.06))
		if err != nil {
			panic(err)
		}
		ablGolden, err = repro.Analyze(d)
		if err != nil {
			panic(err)
		}
		ablModel, err = repro.FitModel(ablGolden, false)
		if err != nil {
			panic(err)
		}
	})
	return ablGolden, ablModel
}

// BenchmarkAblationEngineCuts and ...EngineNode compare the default
// cutting-plane engine against the node-based Eq. 5 assembly on the
// same QP instance.
func BenchmarkAblationEngineCuts(b *testing.B) {
	golden, model := ablationFixture(b)
	opt := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.DMoptQP(golden, model, opt, golden.MCT)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("ablation engine=cuts: Δleak %.1f nW (%s)\n", r.PredDeltaLeakNW, r.Status)
		}
	}
}

func BenchmarkAblationEngineNode(b *testing.B) {
	golden, model := ablationFixture(b)
	opt := core.DefaultOptions()
	opt.Method = core.MethodNode
	opt.QP.MaxIter = 20000
	opt.QP.EpsAbs, opt.QP.EpsRel = 1e-4, 1e-4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.DMoptQP(golden, model, opt, golden.MCT)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("ablation engine=node: Δleak %.1f nW (%s)\n", r.PredDeltaLeakNW, r.Status)
		}
	}
}

// BenchmarkAblationGranularity sweeps the grid size G.
func BenchmarkAblationGranularity(b *testing.B) {
	golden, model := ablationFixture(b)
	for _, g := range []float64{2.5, 5, 10, 30} {
		b.Run(fmt.Sprintf("G%.1fum", g), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.G = g
			for i := 0; i < b.N; i++ {
				r, err := core.DMoptQP(golden, model, opt, golden.MCT)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					imp := 100 * (1 - r.Golden.LeakUW/r.Nominal.LeakUW)
					fmt.Printf("ablation G=%.1f µm: leak saved %.2f%%\n", g, imp)
				}
			}
		})
	}
}

// BenchmarkAblationSmoothness sweeps the dose smoothness bound δ.
func BenchmarkAblationSmoothness(b *testing.B) {
	golden, model := ablationFixture(b)
	for _, delta := range []float64{0.5, 1, 2, 4} {
		b.Run(fmt.Sprintf("delta%.1f", delta), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Delta = delta
			for i := 0; i < b.N; i++ {
				r, err := core.DMoptQP(golden, model, opt, golden.MCT)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					imp := 100 * (1 - r.Golden.LeakUW/r.Nominal.LeakUW)
					fmt.Printf("ablation δ=%.1f: leak saved %.2f%% (max neighbor Δ %.2f)\n",
						delta, imp, r.Layers.Poly.MaxNeighborDiff())
				}
			}
		})
	}
}

// BenchmarkAblationSnapPolicy compares nearest against timing-safe
// rounding of the optimized map at signoff.
func BenchmarkAblationSnapPolicy(b *testing.B) {
	golden, model := ablationFixture(b)
	opt := core.DefaultOptions()
	res, err := core.DMoptQP(golden, model, opt, golden.MCT)
	if err != nil {
		b.Fatal(err)
	}
	in := golden.In
	report := func(name string, m *dosemap.Map) {
		layers := dosemap.Layers{Poly: m}
		dl, dw := layers.PerGate(in.Circ, in.Pl, false)
		r, err := sta.Analyze(in, golden.Cfg, &sta.Perturb{DL: dl, DW: dw})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("ablation snap=%s: MCT %.1f ps (nominal %.1f)\n", name, r.MCT, golden.MCT)
	}
	nearest := res.Layers.Poly.Clone()
	nearest.Snap()
	safe := res.Layers.Poly.Clone()
	safe.SnapTimingSafe()
	report("nearest", nearest)
	report("timing-safe", safe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := res.Layers.Poly.Clone()
		m.SnapTimingSafe()
	}
}

// BenchmarkExtWaferVariation exercises the Section VI future-work
// extension: across-wafer MCT variation before and after per-field dose
// correction.
func BenchmarkExtWaferVariation(b *testing.B) {
	c := harness()
	printOnce("extwafer", func() (*expt.Table, error) { return c.WaferVariation("AES-65") }, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.WaferVariation("AES-65"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtTiledField compares DMopt with and without the tiling
// seam constraints (Section II-B multiple-copies case).
func BenchmarkExtTiledField(b *testing.B) {
	golden, model := ablationFixture(b)
	for _, tiled := range []bool{false, true} {
		name := "plain"
		if tiled {
			name = "tiled"
		}
		b.Run(name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Tiled = tiled
			for i := 0; i < b.N; i++ {
				r, err := core.DMoptQP(golden, model, opt, golden.MCT)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					seam := "n/a"
					if err := r.Layers.Poly.CheckTiledSmooth(opt.Delta + 0.05); err == nil {
						seam = "ok"
					}
					fmt.Printf("ablation tiling=%s: Δleak %.1f nW, seam smoothness %s\n",
						name, r.PredDeltaLeakNW, seam)
				}
			}
		})
	}
}
