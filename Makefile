# Development checks.  `make check` is the tier-1 gate; `make race`
# runs the race detector over the concurrent packages; `make bench`
# records the serial-vs-parallel TableIV wall time.

GO ?= go

.PHONY: check vet build test race bench all

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/... ./internal/sta/... ./internal/expt/...

bench:
	$(GO) test -bench=TableIV -benchtime=1x -run=^$$ .
