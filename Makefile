# Development checks.  `make check` is the tier-1 gate; `make race`
# runs the race detector over the concurrent packages; `make bench`
# records the serial-vs-parallel TableIV wall time; `make profile`
# captures CPU and heap profiles of the Table IV pipeline.

GO ?= go

.PHONY: check vet build test race bench profile all

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/... ./internal/sta/... ./internal/expt/...

bench:
	$(GO) test -bench=TableIV -benchtime=1x -run=^$$ .

# Profile the dominant pipeline (Table IV at bench scale); inspect with
# `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) run ./cmd/tables -which iv -scale 0.06 -k 1000 -workers 1 \
		-cpuprofile cpu.prof -memprofile mem.prof
	$(GO) tool pprof -top -nodecount=15 cpu.prof
