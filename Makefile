# Development checks.  `make check` is the tier-1 gate; `make race`
# runs the race detector over the concurrent packages; `make bench`
# records the serial-vs-parallel TableIV wall time; `make bench-json`
# emits the machine-readable benchmark report; `make fuzz-smoke` gives
# each parser fuzzer a 30 s budget; `make profile` captures CPU and
# heap profiles of the Table IV pipeline; `make serve-smoke` boots the
# dmopt-serve daemon, runs one job through it and scrapes /metrics;
# `make wafer-smoke` runs a tiny consensus wafer end-to-end and proves
# serial-vs-parallel bit-equality.

GO ?= go

.PHONY: check vet build test race bench bench-json fuzz-smoke profile serve-smoke wafer-smoke all

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=TableIV -benchtime=1x -run=^$$ .

# Schema-versioned benchmark report (git rev, scale, workers, per-stage
# span timings, solver iteration and gate-eval counters, linear-system
# backend).  Built as a binary (not `go run`) so the toolchain stamps
# vcs.revision into the report's git_rev field.  Also runs the CG vs
# LDLᵀ micro-benchmark on the cut-pool matrix, the parallel numeric
# factorization sweep, the multi-RHS supernodal solve sweep, and the
# τ-Newton bisection benchmark.  The tables run covers Table IV plus the
# actuator ablation (Table X), so the report times the joint dose+bias
# solves alongside the dose-only pipeline.
bench-json:
	$(GO) test ./internal/core/ -run '^$$' -bench 'LinSys|TauNewton|WaferSolve' -benchtime 3x
	$(GO) test ./internal/qp/ -run '^$$' -bench 'LDLTParallelFactor|SupernodalSolve' -benchtime 20x
	$(GO) build -o tables.bin ./cmd/tables
	./tables.bin -scale 0.15 -k 2000 -which iv,x -bench-json BENCH_pr10.json
	rm -f tables.bin

# Tiny wafer end-to-end: the 12-field consensus smoke plus the
# worker/permutation bit-identity proof (serial vs parallel dispatch).
wafer-smoke:
	$(GO) test ./internal/core/ -run 'TestWaferSmoke|TestWaferWorkerBitIdentity' -count=1 -v

# End-to-end service smoke: boot dmopt-serve, run one scale-0.15 job
# through the synchronous endpoint, require a 200 and a well-formed
# /metrics report, then shut the daemon down.
serve-smoke:
	$(GO) build -o dmopt-serve.bin ./cmd/dmopt-serve
	./scripts/serve_smoke.sh ./dmopt-serve.bin
	rm -f dmopt-serve.bin

# 30-second CI smoke of each native fuzz target (corpus + new inputs).
fuzz-smoke:
	$(GO) test ./internal/netlist/ -fuzz FuzzParseNetlist -fuzztime 30s -run ^$$
	$(GO) test ./internal/liberty/ -fuzz FuzzParseLiberty -fuzztime 30s -run ^$$

# Profile the dominant pipeline (Table IV at bench scale); inspect with
# `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) run ./cmd/tables -which iv -scale 0.06 -k 1000 -workers 1 \
		-cpuprofile cpu.prof -memprofile mem.prof
	$(GO) tool pprof -top -nodecount=15 cpu.prof
