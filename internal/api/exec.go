// Job execution shared by the transports.  Prepare builds the staged
// artifacts (design → golden → model → compiled) fresh; the server
// substitutes its byte-budget caches stage by stage.  Execute runs the
// solve (+ optional dosePl) against prepared artifacts, so every
// transport produces bit-identical numbers by construction (and the
// compile-artifact equivalence tests prove cached == cold).
package api

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/sta"
)

// Artifacts are the staged inputs one job consumes.  All four must be
// populated before Execute; Prepare builds them in order, a caching
// layer may supply any prefix from memory.
type Artifacts struct {
	Design   *gen.Design
	Golden   *sta.Result
	Model    *core.Model
	Compiled *core.Compiled
}

// Prepare builds the full artifact chain for a spec with no caching:
// the CLI path.  The stage spans mirror the historical flow
// ("flow/golden", "flow/fit"; the compile stage carries its own span).
func Prepare(ctx context.Context, spec JobSpec) (Artifacts, error) {
	p, err := spec.GenPreset()
	if err != nil {
		return Artifacts{}, err
	}
	d, err := gen.GenerateCtx(ctx, p)
	if err != nil {
		return Artifacts{}, err
	}
	return PrepareFrom(ctx, d, spec)
}

// PrepareFrom builds the golden/model/compiled stages over an
// already-generated design.
func PrepareFrom(ctx context.Context, d *gen.Design, spec JobSpec) (Artifacts, error) {
	opt, err := spec.Options()
	if err != nil {
		return Artifacts{}, err
	}
	cfg := opt.STA
	cfg.Workers = spec.Workers
	gctx, sp := obs.Start(ctx, "flow/golden")
	golden, err := core.GoldenNominalCtx(gctx, d, cfg)
	sp.End()
	if err != nil {
		return Artifacts{}, err
	}
	fctx, sp := obs.Start(ctx, "flow/fit")
	model, err := core.FitModelCtx(fctx, golden, opt.BothLayers, spec.Workers)
	sp.End()
	if err != nil {
		return Artifacts{}, err
	}
	comp, err := core.CompileCtx(ctx, golden, model, opt.CompileOptions())
	if err != nil {
		return Artifacts{}, err
	}
	return Artifacts{Design: d, Golden: golden, Model: model, Compiled: comp}, nil
}

// WithPrivatePlacement returns artifacts whose golden analysis views a
// deep copy of the placement coordinate slices.  A dosePl Execute
// mutates cell positions in place through golden.In.Pl; callers that
// share artifacts across concurrent jobs (the server cache) hand each
// dosePl job a private copy so no other reader of the cached design —
// golden/compile rebuilds, solve-stage signoff — can observe the
// mutation.  The copied coordinates are value-identical to the
// originals, so the results stay bit-identical to the shared path.
func (a Artifacts) WithPrivatePlacement() Artifacts {
	if a.Golden == nil || a.Golden.In.Pl == nil {
		return a
	}
	pl := *a.Golden.In.Pl
	pl.X = append([]float64(nil), pl.X...)
	pl.Y = append([]float64(nil), pl.Y...)
	pl.Width = append([]float64(nil), pl.Width...)
	g := *a.Golden
	g.In.Pl = &pl
	a.Golden = &g
	return a
}

// Execute runs the solve stage(s) a spec describes against prepared
// artifacts and assembles the versioned result.  When spec.DosePl is
// set the placement inside art.Golden.In is mutated in place (accepted
// swap rounds); callers sharing artifacts across concurrent jobs must
// pass WithPrivatePlacement artifacts (or serialize and restore around
// Execute).
func Execute(ctx context.Context, art Artifacts, spec JobSpec) (*JobResult, *core.FlowOutcome, error) {
	spec = spec.Normalized()
	if art.Golden == nil || art.Compiled == nil {
		return nil, nil, fmt.Errorf("api: execute needs prepared golden and compiled artifacts")
	}
	opt, err := spec.Options()
	if err != nil {
		return nil, nil, err
	}
	if spec.Mode == ModeWafer {
		wopt, err := spec.WaferOptions()
		if err != nil {
			return nil, nil, err
		}
		wctx, sp := obs.Start(ctx, "flow/wafer")
		wr, err := core.SolveWafer(wctx, core.WaferRequest{Compiled: art.Compiled, Opt: opt, Wafer: wopt})
		sp.End()
		if err != nil {
			return nil, nil, err
		}
		res := WaferResultOf(spec, wr)
		out := &core.FlowOutcome{Golden: art.Golden, Model: art.Model,
			Final: core.Eval{MCTps: res.MCTPs, LeakUW: res.LeakUW}}
		return res, out, nil
	}
	mode, err := spec.FlowMode()
	if err != nil {
		return nil, nil, err
	}
	var dm *core.Result
	dctx, sp := obs.Start(ctx, "flow/dmopt")
	switch mode {
	case core.ModeQPLeakage:
		tau := spec.TauPs
		if tau <= 0 {
			tau = art.Golden.MCT
		}
		dm, err = core.SolveQP(dctx, core.QPRequest{Compiled: art.Compiled, Opt: opt, TauPs: tau})
	case core.ModeQCPTiming:
		dm, err = core.SolveQCP(dctx, core.QCPRequest{Compiled: art.Compiled, Opt: opt})
	}
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	out := &core.FlowOutcome{Golden: art.Golden, Model: art.Model, DM: dm, Final: dm.Golden}
	if spec.DosePl {
		pctx, sp := obs.Start(ctx, "flow/dosepl")
		dp, err := core.DosePlCtx(pctx, art.Golden, dm.Layers, opt, core.DefaultDosePlOptions())
		sp.End()
		if err != nil {
			return nil, nil, err
		}
		out.DosePl = dp
		out.Final = dp.After
	}
	return ResultOf(spec, out), out, nil
}

// Run is the whole one-shot path: Prepare then Execute.  cmd/dmopt and
// the synchronous server endpoint both call this.
func Run(ctx context.Context, spec JobSpec) (*JobResult, *core.FlowOutcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	art, err := Prepare(ctx, spec)
	if err != nil {
		return nil, nil, err
	}
	return Execute(ctx, art, spec)
}
