// Package api defines the versioned request/response contract of the
// DMopt pipeline: a JobSpec describes one optimization job (design,
// formulation, Options/ξ/τ) and a JobResult reports its signoff
// numbers, both under the "dmopt-job/v1" schema.
//
// The contract is transport-neutral: cmd/dmopt builds a JobSpec from
// flags and runs it in-process, dmopt-serve accepts the same document
// over HTTP — both funnel through Prepare/Execute, so the two
// transports cannot drift and their results are bit-identical by
// construction.
package api

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dosemap"
	"repro/internal/gen"
	"repro/internal/qp"
)

// Schema identifies the request/response document layout.  Bump the
// suffix on any incompatible change so clients can dispatch.
const Schema = "dmopt-job/v1"

// Actuator selections (JobSpec.Actuators).
const (
	// ActuatorsDose is the dose-only pipeline; "" normalizes to it.
	ActuatorsDose = "dose"
	// ActuatorsBias optimizes per-domain body bias only.
	ActuatorsBias = "bias"
	// ActuatorsJoint co-optimizes dose and body bias; "joint" is an
	// accepted alias that normalizes to it.
	ActuatorsJoint = "dose+bias"

	// DefaultBiasGridUm is the default bias-domain tiling pitch in µm.
	DefaultBiasGridUm = 20
)

// Job modes.
const (
	// ModeQP minimizes Δleakage under a clock-period bound (default).
	ModeQP = "qp"
	// ModeQCP minimizes the clock period under a leakage budget.
	ModeQCP = "qcp"
	// ModeWafer runs the full-wafer consensus co-optimization: per-field
	// sub-problems under an across-wafer CD fingerprint, coupled by
	// shared cross-slit dose profiles.
	ModeWafer = "wafer"
)

// WaferSpec parameterizes a wafer-mode job: the step-and-scan layout,
// the radial CD fingerprint (nm at wafer center and edge; zero values
// describe a flat wafer) and the consensus outer loop.  Zero-valued
// knobs select the production defaults (300 mm wafer, 26×33 mm fields,
// 3 mm edge exclusion).
type WaferSpec struct {
	DiameterMM float64 `json:"diameter_mm,omitempty"`
	FieldWmm   float64 `json:"field_w_mm,omitempty"`
	FieldHmm   float64 `json:"field_h_mm,omitempty"`
	EdgeMM     float64 `json:"edge_mm,omitempty"`
	CenterNm   float64 `json:"center_nm,omitempty"`
	EdgeNm     float64 `json:"edge_nm,omitempty"`
	Power      float64 `json:"power,omitempty"`
	MaxOuter   int     `json:"max_outer,omitempty"`
}

// JobSpec describes one optimization job.  Zero-valued knobs select the
// paper's defaults (see core.DefaultOptions); Normalized materializes
// them.  The design is either a Table I preset referenced by name or a
// full inline gen.Preset — a serialized design spec that generates a
// deterministic netlist, placement and library binding.
type JobSpec struct {
	// Schema must be "" (assumed current) or Schema.
	Schema string `json:"schema,omitempty"`

	// Design names a Table I preset (AES-65, JPEG-65, AES-90, JPEG-90).
	Design string `json:"design,omitempty"`
	// Preset is an inline design spec, mutually exclusive with Design.
	Preset *gen.Preset `json:"preset,omitempty"`
	// Scale shrinks the design by a factor in (0, 1]; 0 selects 1.
	Scale float64 `json:"scale,omitempty"`

	// Mode is "qp" (default) or "qcp".
	Mode string `json:"mode,omitempty"`
	// TauPs is the QP clock-period bound in ps; 0 means the design's
	// nominal MCT ("improve leakage without degrading timing").
	TauPs float64 `json:"tau_ps,omitempty"`
	// XiNW is the QCP Δleakage budget ξ in nW.
	XiNW float64 `json:"xi_nw,omitempty"`

	// GridUm is the dose-map grid size G in µm (default 5).
	GridUm float64 `json:"grid_um,omitempty"`
	// Delta is the dose smoothness bound δ in percent (default 2).
	Delta float64 `json:"delta,omitempty"`
	// DoseLo, DoseHi are the equipment correction range in percent
	// (default ±5; both zero selects the default).
	DoseLo float64 `json:"dose_lo,omitempty"`
	DoseHi float64 `json:"dose_hi,omitempty"`
	// BothLayers modulates poly and active layers simultaneously.
	BothLayers bool `json:"both_layers,omitempty"`
	// NoSnap disables the timing-safe rounding of grid doses to the
	// characterized library steps before golden signoff.
	NoSnap bool `json:"no_snap,omitempty"`
	// Tiled adds seam smoothness rows between opposite map edges.
	Tiled bool `json:"tiled,omitempty"`
	// DosePl appends the cell-swapping placement rounds after DMopt.
	DosePl bool `json:"dosepl,omitempty"`

	// Actuators selects the optimization knobs: "" or "dose" (dose-map
	// only — the historical pipeline, bit-identical to pre-actuator
	// specs), "bias" (per-domain body bias only), "dose+bias" (or the
	// alias "joint") for the co-optimization.
	Actuators string `json:"actuators,omitempty"`
	// BiasGridUm is the bias-domain tiling pitch in µm (default 20);
	// only valid with a bias-containing actuator selection.
	BiasGridUm float64 `json:"bias_grid_um,omitempty"`
	// BiasLoV, BiasHiV bound the per-domain body-bias voltage in V
	// (forward positive; both zero selects the default [-0.2, +0.1]).
	BiasLoV float64 `json:"bias_lo_v,omitempty"`
	BiasHiV float64 `json:"bias_hi_v,omitempty"`

	// Wafer parameterizes a wafer-mode job; only valid with mode "wafer"
	// (and a nil Wafer there selects the production layout, flat).
	Wafer *WaferSpec `json:"wafer,omitempty"`

	// Workers bounds the job's parallel fan-out; 0 = GOMAXPROCS.
	// Results are bit-identical for every worker count.
	Workers int `json:"workers,omitempty"`
	// LinSys selects the ADMM x-step backend: "auto", "cg" or "ldlt".
	LinSys string `json:"linsys,omitempty"`
}

// Normalized returns a copy with every defaulted knob materialized, so
// two specs describe the same job iff their normalized forms are equal.
func (s JobSpec) Normalized() JobSpec {
	def := core.DefaultOptions()
	s.Schema = Schema
	if s.Scale <= 0 || s.Scale > 1 {
		s.Scale = 1
	}
	if s.Mode == "" {
		s.Mode = ModeQP
	}
	s.Mode = strings.ToLower(s.Mode)
	if s.GridUm == 0 {
		s.GridUm = def.G
	}
	if s.Delta == 0 {
		s.Delta = def.Delta
	}
	if s.DoseLo == 0 && s.DoseHi == 0 {
		s.DoseLo, s.DoseHi = def.DoseLo, def.DoseHi
	}
	if s.LinSys == "" {
		s.LinSys = qp.LinSys(0).String()
	}
	if s.Workers < 0 {
		s.Workers = 0
	}
	// Actuator normalization: the dose-only default stays "" with all
	// bias knobs zero, so legacy canonical spec strings (and the dedup
	// keys derived from them) are byte-identical to pre-actuator builds.
	s.Actuators = strings.ToLower(s.Actuators)
	if s.Actuators == ActuatorsDose {
		s.Actuators = ""
	}
	if s.Actuators == "joint" {
		s.Actuators = ActuatorsJoint
	}
	if s.biasOn() {
		if s.BiasGridUm == 0 {
			s.BiasGridUm = DefaultBiasGridUm
		}
		if s.BiasLoV == 0 && s.BiasHiV == 0 {
			s.BiasLoV, s.BiasHiV = core.DefaultBiasLo, core.DefaultBiasHi
		}
	}
	if s.Mode == ModeWafer {
		w := WaferSpec{}
		if s.Wafer != nil {
			w = *s.Wafer
		}
		if w.DiameterMM <= 0 {
			w.DiameterMM = 300
		}
		if w.FieldWmm <= 0 {
			w.FieldWmm = 26
		}
		if w.FieldHmm <= 0 {
			w.FieldHmm = 33
		}
		if w.EdgeMM == 0 {
			w.EdgeMM = 3
		}
		if w.Power <= 0 {
			w.Power = 2
		}
		if w.MaxOuter <= 0 {
			w.MaxOuter = 8
		}
		s.Wafer = &w
	}
	return s
}

// Validate checks a normalized or raw spec; the returned error is safe
// to surface verbatim to API clients.
func (s JobSpec) Validate() error {
	if s.Schema != "" && s.Schema != Schema {
		return fmt.Errorf("api: unsupported schema %q (want %q)", s.Schema, Schema)
	}
	if (s.Design == "") == (s.Preset == nil) {
		return fmt.Errorf("api: exactly one of design or preset must be set")
	}
	if s.Design != "" {
		if _, err := gen.PresetByName(s.Design); err != nil {
			return fmt.Errorf("api: %w", err)
		}
	}
	if s.Preset != nil && s.Preset.Name == "" {
		return fmt.Errorf("api: inline preset needs a name")
	}
	if s.Scale < 0 || s.Scale > 1 {
		return fmt.Errorf("api: scale %g outside (0, 1]", s.Scale)
	}
	mode := strings.ToLower(s.Mode)
	switch mode {
	case "", ModeQP, ModeQCP, ModeWafer:
	default:
		return fmt.Errorf("api: unknown mode %q (want %q, %q or %q)", s.Mode, ModeQP, ModeQCP, ModeWafer)
	}
	if s.Wafer != nil && mode != ModeWafer {
		return fmt.Errorf("api: wafer parameters are only valid with mode %q", ModeWafer)
	}
	if mode == ModeWafer {
		if s.BothLayers || s.Tiled || s.DosePl {
			return fmt.Errorf("api: wafer mode supports poly-only, untiled jobs without dosepl")
		}
		if w := s.Wafer; w != nil {
			if w.DiameterMM < 0 || w.FieldWmm < 0 || w.FieldHmm < 0 || w.EdgeMM < 0 {
				return fmt.Errorf("api: negative wafer geometry")
			}
			if w.Power < 0 {
				return fmt.Errorf("api: negative fingerprint power %g", w.Power)
			}
			if w.MaxOuter < 0 {
				return fmt.Errorf("api: negative max_outer %d", w.MaxOuter)
			}
		}
	}
	switch strings.ToLower(s.Actuators) {
	case "", ActuatorsDose, ActuatorsBias, ActuatorsJoint, "joint":
	default:
		return fmt.Errorf("api: unknown actuators %q (want %q, %q or %q)",
			s.Actuators, ActuatorsDose, ActuatorsBias, ActuatorsJoint)
	}
	if s.biasOn() {
		if mode == ModeWafer {
			return fmt.Errorf("api: wafer mode supports the dose actuator only")
		}
		if s.DosePl {
			return fmt.Errorf("api: dosepl rounds require the dose-only actuator selection")
		}
		if s.BiasGridUm < 0 {
			return fmt.Errorf("api: negative bias grid bias_grid_um %g", s.BiasGridUm)
		}
		if s.BiasLoV > s.BiasHiV {
			return fmt.Errorf("api: bias range [%g, %g] is empty", s.BiasLoV, s.BiasHiV)
		}
	} else if s.BiasGridUm != 0 || s.BiasLoV != 0 || s.BiasHiV != 0 {
		return fmt.Errorf("api: bias knobs are only valid with a bias-containing actuators selection")
	}
	if s.TauPs < 0 {
		return fmt.Errorf("api: negative clock-period bound tau_ps %g", s.TauPs)
	}
	if s.GridUm < 0 {
		return fmt.Errorf("api: negative grid size grid_um %g", s.GridUm)
	}
	if s.Delta < 0 {
		return fmt.Errorf("api: negative smoothness bound delta %g", s.Delta)
	}
	if s.DoseLo > s.DoseHi {
		return fmt.Errorf("api: dose range [%g, %g] is empty", s.DoseLo, s.DoseHi)
	}
	if s.LinSys != "" {
		if _, err := qp.ParseLinSys(s.LinSys); err != nil {
			return fmt.Errorf("api: %w", err)
		}
	}
	return nil
}

// biasOn reports whether the spec's actuator selection includes body
// bias (accepting both raw and normalized spellings).
func (s JobSpec) biasOn() bool {
	switch strings.ToLower(s.Actuators) {
	case ActuatorsBias, ActuatorsJoint, "joint":
		return true
	}
	return false
}

// GenPreset resolves the (scaled) design preset the spec describes.
func (s JobSpec) GenPreset() (gen.Preset, error) {
	s = s.Normalized()
	var p gen.Preset
	if s.Preset != nil {
		p = *s.Preset
	} else {
		var err error
		if p, err = gen.PresetByName(s.Design); err != nil {
			return gen.Preset{}, err
		}
	}
	if s.Scale < 1 {
		p = p.Scaled(s.Scale)
	}
	return p, nil
}

// DesignKey is a canonical identity for the spec's generated design —
// the cache key of the design/golden stages.  Inline presets key on
// their full field set (Preset is a flat scalar struct).
func (s JobSpec) DesignKey() string {
	s = s.Normalized()
	if s.Preset != nil {
		return fmt.Sprintf("inline/%+v@%g", *s.Preset, s.Scale)
	}
	return fmt.Sprintf("%s@%g", s.Design, s.Scale)
}

// Options maps the spec onto the core run options.
func (s JobSpec) Options() (core.Options, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return core.Options{}, err
	}
	linsys, err := qp.ParseLinSys(s.LinSys)
	if err != nil {
		return core.Options{}, err
	}
	opt := core.DefaultOptions()
	opt.G = s.GridUm
	opt.Delta = s.Delta
	opt.DoseLo, opt.DoseHi = s.DoseLo, s.DoseHi
	opt.BothLayers = s.BothLayers
	opt.XiNW = s.XiNW
	opt.Snap = !s.NoSnap
	opt.Tiled = s.Tiled
	opt.Workers = s.Workers
	opt.QP.LinSys = linsys
	if s.biasOn() {
		opt.DoseOff = strings.ToLower(s.Actuators) == ActuatorsBias
		opt.BiasGridUm = s.BiasGridUm
		opt.BiasLo, opt.BiasHi = s.BiasLoV, s.BiasHiV
	}
	return opt, nil
}

// FlowMode maps the spec's mode string onto the core flow mode.
func (s JobSpec) FlowMode() (core.Mode, error) {
	switch strings.ToLower(s.Mode) {
	case "", ModeQP:
		return core.ModeQPLeakage, nil
	case ModeQCP:
		return core.ModeQCPTiming, nil
	}
	return 0, fmt.Errorf("api: unknown mode %q", s.Mode)
}

// FlowConfig maps the spec onto the end-to-end flow configuration.
func (s JobSpec) FlowConfig() (core.FlowConfig, error) {
	opt, err := s.Options()
	if err != nil {
		return core.FlowConfig{}, err
	}
	mode, err := s.FlowMode()
	if err != nil {
		return core.FlowConfig{}, err
	}
	return core.FlowConfig{
		Opt:       opt,
		Mode:      mode,
		TauPs:     s.TauPs,
		RunDosePl: s.DosePl,
		DosePl:    core.DefaultDosePlOptions(),
	}, nil
}

// WaferOptions maps a wafer-mode spec onto the core wafer options.
func (s JobSpec) WaferOptions() (core.WaferOptions, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return core.WaferOptions{}, err
	}
	if s.Mode != ModeWafer || s.Wafer == nil {
		return core.WaferOptions{}, fmt.Errorf("api: spec mode %q is not a wafer job", s.Mode)
	}
	w := s.Wafer
	return core.WaferOptions{
		DiameterMM: w.DiameterMM,
		FieldWmm:   w.FieldWmm,
		FieldHmm:   w.FieldHmm,
		EdgeMM:     w.EdgeMM,
		Fingerprint: dosemap.RadialCD{
			Center: w.CenterNm, Edge: w.EdgeNm, Power: w.Power,
		},
		MaxOuter: w.MaxOuter,
	}, nil
}

// MarshalCanonical renders the normalized spec as compact JSON — the
// job-identity string the server logs and deduplicates on.
func (s JobSpec) MarshalCanonical() string {
	b, err := json.Marshal(s.Normalized())
	if err != nil {
		return s.DesignKey()
	}
	return string(b)
}

// DoseSummary reports the optimized dose map's shape.
type DoseSummary struct {
	MinPct              float64 `json:"min_pct"`
	MaxPct              float64 `json:"max_pct"`
	MeanPct             float64 `json:"mean_pct"`
	RMSPct              float64 `json:"rms_pct"`
	MaxNeighborDeltaPct float64 `json:"max_neighbor_delta_pct"`
}

// BiasSummary reports the optimized per-domain body-bias voltages
// (present only when the job's actuator selection includes bias).
type BiasSummary struct {
	Domains int     `json:"domains"`
	MinV    float64 `json:"min_v"`
	MaxV    float64 `json:"max_v"`
	MeanV   float64 `json:"mean_v"`
}

// DosePlSummary reports the optional placement rounds.
type DosePlSummary struct {
	MCTPs         float64 `json:"mct_ps"`
	LeakUW        float64 `json:"leak_uw"`
	SwapsAccepted int     `json:"swaps_accepted"`
	SwapsTried    int     `json:"swaps_tried"`
	Rounds        int     `json:"rounds"`
}

// WaferFieldResult is one exposure field's coupled-stage signoff, with
// the two baselines for comparison.
type WaferFieldResult struct {
	Col            int     `json:"col"`
	Row            int     `json:"row"`
	BiasNm         float64 `json:"bias_nm"`
	UniformMCTPs   float64 `json:"uniform_mct_ps"`
	UncoupledMCTPs float64 `json:"uncoupled_mct_ps"`
	MCTPs          float64 `json:"mct_ps"`
	LeakUW         float64 `json:"leak_uw"`
}

// WaferSummary reports a wafer-mode job: the across-wafer spread of the
// three stages, the consensus loop's effort, and the per-field signoff.
type WaferSummary struct {
	Fields             int                `json:"fields"`
	Groups             int                `json:"groups"`
	TauPs              float64            `json:"tau_ps"`
	UniformSpreadPct   float64            `json:"uniform_spread_pct"`
	UncoupledSpreadPct float64            `json:"uncoupled_spread_pct"`
	CoupledSpreadPct   float64            `json:"coupled_spread_pct"`
	OuterIters         int                `json:"outer_iters"`
	FieldSolves        int                `json:"field_solves"`
	FinalResidualPct   float64            `json:"final_residual_pct"`
	PerField           []WaferFieldResult `json:"per_field"`
}

// JobResult is the versioned outcome document of one job.
type JobResult struct {
	Schema string `json:"schema"`
	Design string `json:"design"`
	Mode   string `json:"mode"`

	// Nominal and final golden-signoff snapshots.
	NominalMCTPs  float64 `json:"nominal_mct_ps"`
	NominalLeakUW float64 `json:"nominal_leak_uw"`
	MCTPs         float64 `json:"mct_ps"`
	LeakUW        float64 `json:"leak_uw"`
	// Improvements in percent, positive is better.
	MCTImpPct  float64 `json:"mct_imp_pct"`
	LeakImpPct float64 `json:"leak_imp_pct"`

	// Optimizer-model predictions and solve statistics.
	PredMCTPs       float64 `json:"pred_mct_ps"`
	PredDeltaLeakNW float64 `json:"pred_delta_leak_nw"`
	Probes          int     `json:"probes"`
	ArrivalVars     int     `json:"arrival_vars,omitempty"`
	Rows            int     `json:"rows,omitempty"`
	Cols            int     `json:"cols,omitempty"`
	SolverStatus    string  `json:"solver_status"`

	Dose   DoseSummary    `json:"dose"`
	Bias   *BiasSummary   `json:"bias,omitempty"`
	DosePl *DosePlSummary `json:"dosepl,omitempty"`
	Wafer  *WaferSummary  `json:"wafer,omitempty"`

	// RuntimeNS is the solve wall time (excludes cached stages).
	RuntimeNS int64 `json:"runtime_ns"`
}

// WaferResultOf assembles the versioned result document from a wafer
// outcome.  The top-level signoff reports the wafer's WORST coupled
// field (the wafer ships at its slowest chip); the per-field detail and
// spreads live in the Wafer section.
func WaferResultOf(spec JobSpec, wr *core.WaferResult) *JobResult {
	spec = spec.Normalized()
	worst := 0
	for i := range wr.Fields {
		if wr.Fields[i].Coupled.MCTps > wr.Fields[worst].Coupled.MCTps {
			worst = i
		}
	}
	wf := &wr.Fields[worst]
	st := wf.Dose.Stats()
	sum := &WaferSummary{
		Fields:             len(wr.Fields),
		Groups:             wr.Groups,
		TauPs:              wr.TauPs,
		UniformSpreadPct:   wr.UniformSpreadPct,
		UncoupledSpreadPct: wr.UncoupledSpreadPct,
		CoupledSpreadPct:   wr.CoupledSpreadPct,
		OuterIters:         wr.OuterIters,
		FieldSolves:        wr.FieldSolves,
	}
	if n := len(wr.Residuals); n > 0 {
		sum.FinalResidualPct = wr.Residuals[n-1]
	}
	for i := range wr.Fields {
		f := &wr.Fields[i]
		sum.PerField = append(sum.PerField, WaferFieldResult{
			Col: f.Col, Row: f.Row, BiasNm: f.CDBiasNm,
			UniformMCTPs:   f.Uniform.MCTps,
			UncoupledMCTPs: f.Uncoupled.MCTps,
			MCTPs:          f.Coupled.MCTps,
			LeakUW:         f.Coupled.LeakUW,
		})
	}
	return &JobResult{
		Schema:        Schema,
		Design:        spec.DesignKey(),
		Mode:          spec.Mode,
		NominalMCTPs:  wf.Uniform.MCTps,
		NominalLeakUW: wr.NomLeakUW,
		MCTPs:         wf.Coupled.MCTps,
		LeakUW:        wf.Coupled.LeakUW,
		MCTImpPct:     100 * (1 - wf.Coupled.MCTps/wf.Uniform.MCTps),
		LeakImpPct:    100 * (1 - wf.Coupled.LeakUW/wr.NomLeakUW),
		Probes:        wr.FieldSolves,
		SolverStatus:  "wafer_consensus",
		Dose: DoseSummary{
			MinPct:              st.Min,
			MaxPct:              st.Max,
			MeanPct:             st.Mean,
			RMSPct:              st.RMS,
			MaxNeighborDeltaPct: wf.Dose.MaxNeighborDiff(),
		},
		Wafer:     sum,
		RuntimeNS: int64(wr.Runtime),
	}
}

// ResultOf assembles the versioned result document from a flow outcome.
func ResultOf(spec JobSpec, out *core.FlowOutcome) *JobResult {
	spec = spec.Normalized()
	dm := out.DM
	st := dm.Layers.Poly.Stats()
	r := &JobResult{
		Schema:          Schema,
		Design:          spec.DesignKey(),
		Mode:            spec.Mode,
		NominalMCTPs:    dm.Nominal.MCTps,
		NominalLeakUW:   dm.Nominal.LeakUW,
		MCTPs:           out.Final.MCTps,
		LeakUW:          out.Final.LeakUW,
		MCTImpPct:       100 * (1 - out.Final.MCTps/dm.Nominal.MCTps),
		LeakImpPct:      100 * (1 - out.Final.LeakUW/dm.Nominal.LeakUW),
		PredMCTPs:       dm.PredMCT,
		PredDeltaLeakNW: dm.PredDeltaLeakNW,
		Probes:          dm.Probes,
		ArrivalVars:     dm.ArrivalVars,
		Rows:            dm.Rows,
		Cols:            dm.Cols,
		SolverStatus:    dm.Status,
		Dose: DoseSummary{
			MinPct:              st.Min,
			MaxPct:              st.Max,
			MeanPct:             st.Mean,
			RMSPct:              st.RMS,
			MaxNeighborDeltaPct: dm.Layers.Poly.MaxNeighborDiff(),
		},
		RuntimeNS: int64(dm.Runtime),
	}
	if n := dm.BiasDomains; n > 0 && len(dm.BiasV) == n {
		bs := &BiasSummary{Domains: n, MinV: dm.BiasV[0], MaxV: dm.BiasV[0]}
		sum := 0.0
		for _, b := range dm.BiasV {
			if b < bs.MinV {
				bs.MinV = b
			}
			if b > bs.MaxV {
				bs.MaxV = b
			}
			sum += b
		}
		bs.MeanV = sum / float64(n)
		r.Bias = bs
	}
	if dp := out.DosePl; dp != nil {
		r.DosePl = &DosePlSummary{
			MCTPs:         dp.After.MCTps,
			LeakUW:        dp.After.LeakUW,
			SwapsAccepted: dp.SwapsAccepted,
			SwapsTried:    dp.SwapsTried,
			Rounds:        len(dp.Rounds),
		}
	}
	return r
}
