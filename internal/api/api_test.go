package api

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestValidate(t *testing.T) {
	base := JobSpec{Design: "AES-65", Scale: 0.1}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*JobSpec)
		want string
	}{
		{"bad schema", func(s *JobSpec) { s.Schema = "dmopt-job/v9" }, "unsupported schema"},
		{"no design", func(s *JobSpec) { s.Design = "" }, "exactly one of design or preset"},
		{"both design and preset", func(s *JobSpec) { s.Preset = &gen.Preset{Name: "x"} }, "exactly one of design or preset"},
		{"unknown design", func(s *JobSpec) { s.Design = "DES-65" }, "unknown preset"},
		{"bad mode", func(s *JobSpec) { s.Mode = "lp" }, "unknown mode"},
		{"negative tau", func(s *JobSpec) { s.TauPs = -1 }, "tau_ps"},
		{"scale too big", func(s *JobSpec) { s.Scale = 1.5 }, "scale"},
		{"empty dose range", func(s *JobSpec) { s.DoseLo, s.DoseHi = 3, -3 }, "dose range"},
		{"bad linsys", func(s *JobSpec) { s.LinSys = "gpu" }, "linear-system backend"},
		{"nameless preset", func(s *JobSpec) { s.Design = ""; s.Preset = &gen.Preset{} }, "needs a name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestNormalizedIdempotent: normalization is a fixed point, so spec
// identity (MarshalCanonical) is stable.
func TestNormalizedIdempotent(t *testing.T) {
	s := JobSpec{Design: "AES-65"}.Normalized()
	if s2 := s.Normalized(); s2 != s {
		t.Fatalf("Normalized not idempotent:\n  once  %+v\n  twice %+v", s, s2)
	}
	if s.Scale != 1 || s.Mode != ModeQP || s.GridUm != 5 || s.Delta != 2 {
		t.Fatalf("defaults not materialized: %+v", s)
	}
	if s.DoseLo >= s.DoseHi {
		t.Fatalf("dose range default empty: [%g, %g]", s.DoseLo, s.DoseHi)
	}
}

func TestDesignKey(t *testing.T) {
	a := JobSpec{Design: "AES-65", Scale: 0.15}.DesignKey()
	b := JobSpec{Design: "AES-65", Scale: 0.2}.DesignKey()
	if a == b {
		t.Fatalf("different scales share key %q", a)
	}
	p := gen.Preset{Name: "mini", Cells: 100}
	inA := JobSpec{Preset: &p}.DesignKey()
	q := p
	q.Cells = 200
	inB := JobSpec{Preset: &q}.DesignKey()
	if inA == inB {
		t.Fatalf("different inline presets share key %q", inA)
	}
}

// TestRunMatchesFlow: the transport-neutral executor must reproduce the
// historical flow entry point bit for bit — the invariant that lets
// cmd/dmopt and dmopt-serve share one contract.
func TestRunMatchesFlow(t *testing.T) {
	spec := JobSpec{Design: "AES-65", Scale: 0.1}
	res, out, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("api.Run: %v", err)
	}

	p, err := spec.GenPreset()
	if err != nil {
		t.Fatalf("GenPreset: %v", err)
	}
	d, err := gen.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg, err := spec.FlowConfig()
	if err != nil {
		t.Fatalf("FlowConfig: %v", err)
	}
	ref, err := core.SolveFlow(context.Background(), core.FlowRequest{Design: d, Config: cfg})
	if err != nil {
		t.Fatalf("core.SolveFlow: %v", err)
	}

	pairs := [][2]float64{
		{out.Final.MCTps, ref.Final.MCTps},
		{out.Final.LeakUW, ref.Final.LeakUW},
		{out.DM.PredMCT, ref.DM.PredMCT},
		{out.DM.PredDeltaLeakNW, ref.DM.PredDeltaLeakNW},
		{res.NominalMCTPs, ref.DM.Nominal.MCTps},
		{res.NominalLeakUW, ref.DM.Nominal.LeakUW},
	}
	for i, p := range pairs {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			t.Fatalf("pair %d: api %v != flow %v (not bit-identical)", i, p[0], p[1])
		}
	}
	if res.SolverStatus != ref.DM.Status {
		t.Fatalf("status %q != %q", res.SolverStatus, ref.DM.Status)
	}
}

// TestResultOfQCP: the QCP mode round-trips through the spec and
// produces an improvement-signed result document.
func TestResultOfQCP(t *testing.T) {
	spec := JobSpec{Design: "AES-65", Scale: 0.1, Mode: "QCP", XiNW: 50}
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	mode, err := spec.FlowMode()
	if err != nil || mode != core.ModeQCPTiming {
		t.Fatalf("FlowMode = %v, %v; want QCP", mode, err)
	}
	res, _, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Schema != Schema || res.Mode != ModeQCP {
		t.Fatalf("result header %q/%q", res.Schema, res.Mode)
	}
	if res.MCTPs <= 0 || res.NominalMCTPs <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.MCTPs > res.NominalMCTPs {
		t.Fatalf("QCP degraded timing: %g > %g ps", res.MCTPs, res.NominalMCTPs)
	}
}
