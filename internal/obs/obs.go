// Package obs is the repo's observability layer: named counters, gauges
// and timers plus hierarchical spans, carried through the existing
// ...Ctx API via a Recorder stored in the context.
//
// The contract is zero overhead when disabled: every operation first
// loads the Recorder from the context (or a cached field) and returns
// immediately when it is nil — no clock reads, no allocations, no
// atomic traffic.  Instrumented code therefore never needs an "if
// telemetry" branch of its own, and a bitwise-equivalence test
// (core.TestObsBitwiseInert) proves that enabling telemetry does not
// perturb any numerical result.
//
// All Recorder methods are safe for concurrent use: the par worker
// pools update counters and open sibling spans from multiple
// goroutines.  Spans with the same parent and name merge into one node
// (count + total duration), so loops and parallel fan-outs produce a
// compact tree instead of one node per iteration.
package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// ctxKey is the private context key type for the Recorder.
type ctxKey struct{}

// With returns a context carrying the Recorder.  A nil Recorder is
// allowed and yields the same behaviour as a bare context.
func With(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the Recorder from the context, or nil when telemetry is
// disabled.  All package operations treat a nil receiver as a no-op, so
// callers can use the result unconditionally.
func From(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

// Recorder accumulates telemetry for one run.  The zero value is not
// usable; construct with New.  A nil *Recorder is the disabled state:
// every method on it returns immediately.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	timers   map[string]*timerCell
	root     *spanNode
}

// timerCell is one named duration accumulator.
type timerCell struct {
	count int64
	total time.Duration
}

// spanNode is one node of the hierarchical span tree.  Children with
// the same name merge into a single node.
type spanNode struct {
	name     string
	count    int64
	total    time.Duration
	children map[string]*spanNode
	order    []string // child names in first-seen order
}

// New returns an enabled Recorder.
func New() *Recorder {
	return &Recorder{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		timers:   map[string]*timerCell{},
		root:     &spanNode{name: ""},
	}
}

// Add increments the named counter by delta.  No-op on a nil Recorder.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set records the last value of the named gauge.  No-op on nil.
func (r *Recorder) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe adds one sample to the named timer.  No-op on nil.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.timers[name]
	if c == nil {
		c = &timerCell{}
		r.timers[name] = c
	}
	c.count++
	c.total += d
	r.mu.Unlock()
}

// Counter returns the current value of a counter (0 when absent or nil).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns the last value of a gauge (0 when absent or nil).
func (r *Recorder) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// child finds or creates the named child of parent.  Caller holds r.mu.
func (n *spanNode) child(name string) *spanNode {
	if n.children == nil {
		n.children = map[string]*spanNode{}
	}
	c := n.children[name]
	if c == nil {
		c = &spanNode{name: name}
		n.children[name] = c
		n.order = append(n.order, name)
	}
	return c
}

// Span is an open span handle.  The zero value (disabled telemetry) is
// valid: End on it is a no-op with no clock read.
type Span struct {
	r     *Recorder
	node  *spanNode
	start time.Time
}

// Start opens a span named name under the context's current span (or
// the root) and returns a derived context whose subsequent Start calls
// nest under it.  When telemetry is disabled it returns ctx unchanged
// and a zero Span — no allocation, no clock read.
func Start(ctx context.Context, name string) (context.Context, Span) {
	r := From(ctx)
	if r == nil {
		return ctx, Span{}
	}
	parent, _ := ctx.Value(spanKey{}).(*spanNode)
	if parent == nil {
		parent = r.root
	}
	r.mu.Lock()
	node := parent.child(name)
	r.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, node), Span{r: r, node: node, start: time.Now()}
}

// spanKey is the private context key for the current span node.
type spanKey struct{}

// End closes the span, merging its duration into the named node.
// No-op on the zero Span.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	s.r.mu.Lock()
	s.node.count++
	s.node.total += d
	s.r.mu.Unlock()
}

// Add increments a counter via the context's Recorder (no-op when
// telemetry is disabled).
func Add(ctx context.Context, name string, delta int64) { From(ctx).Add(name, delta) }

// Set records a gauge via the context's Recorder.
func Set(ctx context.Context, name string, v float64) { From(ctx).Set(name, v) }

// Observe records a timer sample via the context's Recorder.
func Observe(ctx context.Context, name string, d time.Duration) { From(ctx).Observe(name, d) }

// SpanStat is one exported span-tree node.
type SpanStat struct {
	Name     string     `json:"name"`
	Count    int64      `json:"count"`
	TotalNS  int64      `json:"total_ns"`
	Children []SpanStat `json:"children,omitempty"`
}

// TimerStat is one exported timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// Snapshot is a consistent copy of a Recorder's state, safe to read
// and serialize without further locking.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]float64   `json:"gauges,omitempty"`
	Timers   map[string]TimerStat `json:"timers,omitempty"`
	Spans    []SpanStat           `json:"spans,omitempty"`
}

// Snapshot returns a deep copy of the current state.  Nil Recorder
// yields an empty snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
		Timers:   make(map[string]TimerStat, len(r.timers)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, c := range r.timers {
		s.Timers[k] = TimerStat{Count: c.count, TotalNS: int64(c.total)}
	}
	s.Spans = exportChildren(r.root)
	return s
}

// exportChildren converts a node's children (first-seen order) into
// SpanStats.  Caller holds r.mu.
func exportChildren(n *spanNode) []SpanStat {
	if len(n.order) == 0 {
		return nil
	}
	out := make([]SpanStat, 0, len(n.order))
	for _, name := range n.order {
		c := n.children[name]
		out = append(out, SpanStat{
			Name:     c.name,
			Count:    c.count,
			TotalNS:  int64(c.total),
			Children: exportChildren(c),
		})
	}
	return out
}

// sortedKeys returns the map keys in lexical order (export helper).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
