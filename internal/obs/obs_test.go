package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestDisabledIsInert: every operation on a context without a Recorder
// (and on a nil *Recorder) must be a no-op that allocates nothing.
func TestDisabledIsInert(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Fatal("From on bare context should be nil")
	}
	var r *Recorder
	r.Add("x", 1)
	r.Set("x", 1)
	r.Observe("x", time.Second)
	if r.Counter("x") != 0 || r.Gauge("x") != 0 {
		t.Fatal("nil recorder should read as zero")
	}
	ctx2, sp := Start(ctx, "a")
	if ctx2 != ctx {
		t.Fatal("Start on disabled context must return ctx unchanged")
	}
	sp.End()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil recorder snapshot should be empty")
	}

	allocs := testing.AllocsPerRun(100, func() {
		Add(ctx, "c", 1)
		Set(ctx, "g", 2)
		Observe(ctx, "t", time.Millisecond)
		_, sp := Start(ctx, "span")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f objects per op, want 0", allocs)
	}
}

// TestCountersGaugesTimers checks basic accumulation semantics.
func TestCountersGaugesTimers(t *testing.T) {
	r := New()
	ctx := With(context.Background(), r)
	Add(ctx, "c", 2)
	Add(ctx, "c", 3)
	Set(ctx, "g", 1.5)
	Set(ctx, "g", 2.5) // gauge keeps the last value
	Observe(ctx, "t", 10*time.Millisecond)
	Observe(ctx, "t", 30*time.Millisecond)

	if got := r.Counter("c"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.Gauge("g"); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	snap := r.Snapshot()
	tt := snap.Timers["t"]
	if tt.Count != 2 || tt.TotalNS != int64(40*time.Millisecond) {
		t.Fatalf("timer = %+v, want count 2 total 40ms", tt)
	}
}

// TestSpanTreeMerging: same-named spans under one parent merge into one
// node; nesting follows the context chain.
func TestSpanTreeMerging(t *testing.T) {
	r := New()
	root := With(context.Background(), r)
	for i := 0; i < 3; i++ {
		ctx, outer := Start(root, "outer")
		for j := 0; j < 2; j++ {
			_, inner := Start(ctx, "inner")
			inner.End()
		}
		outer.End()
	}
	_, solo := Start(root, "solo")
	solo.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("got %d top-level spans, want 2 (outer, solo): %+v", len(snap.Spans), snap.Spans)
	}
	outer := snap.Spans[0]
	if outer.Name != "outer" || outer.Count != 3 {
		t.Fatalf("outer = %+v, want name outer count 3", outer)
	}
	if len(outer.Children) != 1 || outer.Children[0].Name != "inner" || outer.Children[0].Count != 6 {
		t.Fatalf("inner = %+v, want one child inner with count 6", outer.Children)
	}
	if snap.Spans[1].Name != "solo" || snap.Spans[1].Count != 1 {
		t.Fatalf("solo = %+v", snap.Spans[1])
	}
}

// TestConcurrentUpdates hammers one Recorder from many goroutines —
// counters, gauges, timers, sibling and nested spans — and checks the
// totals.  Run under -race this is the concurrency-safety test for the
// par worker pools.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	root := With(context.Background(), r)
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				Add(root, "n", 1)
				Set(root, "last", float64(i))
				Observe(root, "lap", time.Microsecond)
				ctx, sp := Start(root, "worker")
				_, in := Start(ctx, "inner")
				in.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != workers*iters {
		t.Fatalf("counter n = %d, want %d", got, workers*iters)
	}
	snap := r.Snapshot()
	if snap.Timers["lap"].Count != workers*iters {
		t.Fatalf("timer lap count = %d, want %d", snap.Timers["lap"].Count, workers*iters)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Count != workers*iters {
		t.Fatalf("span worker = %+v, want single node count %d", snap.Spans, workers*iters)
	}
	if c := snap.Spans[0].Children; len(c) != 1 || c[0].Count != workers*iters {
		t.Fatalf("span inner = %+v, want count %d", c, workers*iters)
	}
}

// TestReportJSON writes a report and re-reads it, checking the schema
// stamp and that the recorded metrics survive the round trip.
func TestReportJSON(t *testing.T) {
	r := New()
	ctx := With(context.Background(), r)
	_, sp := Start(ctx, "flow/golden")
	Add(ctx, "sta/analyses", 4)
	sp.End()

	rep := r.Report("tables", 0.15, 2000, 1, 123*time.Millisecond)
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Schema != Schema {
		t.Fatalf("schema = %q, want %q", back.Schema, Schema)
	}
	if back.GitRev == "" || back.GoVersion == "" || back.Timestamp == "" {
		t.Fatalf("missing provenance fields: %+v", back)
	}
	if back.Scale != 0.15 || back.TopK != 2000 || back.WallNS != int64(123*time.Millisecond) {
		t.Fatalf("run parameters did not round-trip: %+v", back)
	}
	if back.Counters["sta/analyses"] != 4 {
		t.Fatalf("counter did not round-trip: %+v", back.Counters)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "flow/golden" {
		t.Fatalf("span tree did not round-trip: %+v", back.Spans)
	}
}

// TestWriteTree smoke-tests the human-readable renderer.
func TestWriteTree(t *testing.T) {
	r := New()
	ctx := With(context.Background(), r)
	c2, sp := Start(ctx, "flow/dmopt")
	_, in := Start(c2, "core/qp")
	in.End()
	sp.End()
	Add(ctx, "qp/iterations", 42)
	Set(ctx, "qp/prim_res", 1e-7)
	Observe(ctx, "sta/update", 3*time.Millisecond)

	var buf bytes.Buffer
	r.WriteTree(&buf, time.Second)
	out := buf.String()
	for _, want := range []string{"flow/dmopt", "core/qp", "qp/iterations", "qp/prim_res", "sta/update"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}
