// Report exporters: a human-readable tree for the -stats flag and a
// schema-versioned JSON document for `cmd/tables -bench-json` / `make
// bench-json`, seeding the repo's benchmark trajectory (BENCH_pr3.json
// and successors).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Schema identifies the JSON report layout.  Bump the suffix on any
// incompatible change so trajectory diffing tools can dispatch.
const Schema = "dmopt-bench/v1"

// Report is the machine-readable run record.
type Report struct {
	Schema    string  `json:"schema"`
	GitRev    string  `json:"git_rev"`
	GoVersion string  `json:"go_version"`
	Timestamp string  `json:"timestamp"`
	Label     string  `json:"label,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	TopK      int     `json:"top_k,omitempty"`
	Workers   int     `json:"workers"`
	WallNS    int64   `json:"wall_ns"`
	// LinSys records the ADMM linear-system backend the run selected
	// ("auto", "cg" or "ldlt"); set by the caller after Report().
	LinSys string `json:"linsys,omitempty"`
	Snapshot
}

// GitRev returns the VCS revision baked into the binary by the Go
// toolchain, suffixed with "+dirty" for modified trees.  Binaries built
// without a VCS stamp (`go test`, `go run` from a subdirectory) fall
// back to asking git at report time; "unknown" only when both fail.
func GitRev() string {
	bi, ok := debug.ReadBuildInfo()
	if ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "+dirty"
			}
			return rev
		}
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// Report assembles the JSON document from the recorder state.  The
// caller supplies run parameters; wall is the end-to-end wall time.
func (r *Recorder) Report(label string, scale float64, topK, workers int, wall time.Duration) Report {
	return Report{
		Schema:    Schema,
		GitRev:    GitRev(),
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Label:     label,
		Scale:     scale,
		TopK:      topK,
		Workers:   workers,
		WallNS:    int64(wall),
		Snapshot:  r.Snapshot(),
	}
}

// WriteJSON writes the report to path (indented, trailing newline).
func (rep Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// WriteTree renders the human-readable stats tree to w: the span
// hierarchy with counts and durations, then counters, gauges and
// timers in lexical order.
func (r *Recorder) WriteTree(w io.Writer, wall time.Duration) {
	snap := r.Snapshot()
	fmt.Fprintf(w, "── run stats (wall %v) ──\n", wall.Round(time.Millisecond))
	if len(snap.Spans) > 0 {
		fmt.Fprintln(w, "spans:")
		writeSpans(w, snap.Spans, 1)
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(snap.Counters) {
			fmt.Fprintf(w, "  %-36s %d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(w, "  %-36s %g\n", k, snap.Gauges[k])
		}
	}
	if len(snap.Timers) > 0 {
		fmt.Fprintln(w, "timers:")
		for _, k := range sortedKeys(snap.Timers) {
			t := snap.Timers[k]
			fmt.Fprintf(w, "  %-36s %d × avg %v = %v\n", k, t.Count,
				avgDur(t), time.Duration(t.TotalNS).Round(time.Microsecond))
		}
	}
}

func avgDur(t TimerStat) time.Duration {
	if t.Count == 0 {
		return 0
	}
	return (time.Duration(t.TotalNS) / time.Duration(t.Count)).Round(time.Microsecond)
}

func writeSpans(w io.Writer, spans []SpanStat, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range spans {
		fmt.Fprintf(w, "%s%-*s ×%-5d %v\n", indent, 38-2*depth, s.Name, s.Count,
			time.Duration(s.TotalNS).Round(time.Microsecond))
		writeSpans(w, s.Children, depth+1)
	}
}
