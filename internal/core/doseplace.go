package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dosemap"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/tech"
)

// DosePlOptions are the γ knobs of the cell-swapping heuristic
// (Appendix, Algorithm 1), with the paper's experimental defaults.
type DosePlOptions struct {
	// K is the number of critical paths extracted per round (10 000).
	K int
	// Rounds is the number of swap-legalize-verify rounds (10).
	Rounds int
	// Gamma1 caps the number of swapped cells per critical path (1).
	Gamma1 int
	// Gamma2 is the swap distance threshold in gate pitches (footnote
	// 10: "chosen proportionally to the gate pitch").
	Gamma2 float64
	// Gamma3 is the allowed fractional HPWL increase of each swapped
	// cell's incident nets (0.20).
	Gamma3 float64
	// Gamma4 is the allowed fractional leakage increase of the swapped
	// pair (0.10).
	Gamma4 float64
	// Gamma5 caps the number of swaps per round (1).
	Gamma5 int
	// MaxPathStates bounds path enumeration work.
	MaxPathStates int
}

// DefaultDosePlOptions returns the paper's experiment configuration.
func DefaultDosePlOptions() DosePlOptions {
	return DosePlOptions{
		K:             10000,
		Rounds:        10,
		Gamma1:        1,
		Gamma2:        12,
		Gamma3:        0.20,
		Gamma4:        0.10,
		Gamma5:        1,
		MaxPathStates: 2_000_000,
	}
}

// RoundLog records one dosePl round.
type RoundLog struct {
	Swaps    int
	MCTps    float64
	Accepted bool
}

// DosePlResult reports the heuristic's outcome.
type DosePlResult struct {
	Before, After Eval
	Rounds        []RoundLog
	SwapsAccepted int
	SwapsTried    int
}

// DosePl runs the dose-map-aware placement optimization: it swaps
// setup-critical cells into higher-dose grid regions (and non-critical
// cells out), filtered by mutual bounding boxes, distance, HPWL and
// leakage-increase checks, with legalization and golden-STA accept /
// rollback per round.  The placement inside golden.In is mutated in
// place when rounds are accepted.
func DosePl(golden *sta.Result, layers dosemap.Layers, opt Options, dopt DosePlOptions) (*DosePlResult, error) {
	return DosePlCtx(context.Background(), golden, layers, opt, dopt)
}

// DosePlCtx is DosePl with cancellation: a canceled context aborts
// between swap rounds (leaving the placement in its last consistent
// accepted-or-rolled-back state) with an error wrapping
// context.Canceled.
func DosePlCtx(ctx context.Context, golden *sta.Result, layers dosemap.Layers, opt Options, dopt DosePlOptions) (*DosePlResult, error) {
	in := golden.In
	pl := in.Pl
	circ := in.Circ
	opt = opt.normalized()
	if layers.Poly == nil {
		return nil, fmt.Errorf("core: dosePl needs a poly dose map")
	}
	res := &DosePlResult{}
	// One incremental timer serves every round: each evalNow re-times
	// only the cones of the cells that moved (swaps + legalization
	// nudges) and the gates whose dose changed with them, bit-identical
	// to the full re-analysis it replaces.
	tm, err := sta.NewTimerCtx(ctx, in, opt.STA, nil)
	if err != nil {
		return nil, err
	}
	evalNow := func() (Eval, *sta.Result) {
		dL, dW := layers.PerGate(circ, pl, opt.Snap)
		r := tm.Update(&sta.Perturb{DL: dL, DW: dW})
		return Eval{MCTps: r.MCT, LeakUW: power.Total(in.Masters, dL, dW)}, r
	}
	before, cur := evalNow()
	res.Before = before
	best := before

	fixed := make([]bool, circ.NumGates())
	gatePitch := pl.GatePitch()
	maxDist := dopt.Gamma2 * gatePitch

	// The dose map is fixed for the whole run, so the dose-descending
	// candidate order of the grid regions is computed once and shared by
	// every trySwap call (which previously sorted the bounding-box grids
	// per attempt).
	grid := layers.Poly.Grid
	ranked := rankGridsByDose(layers.Poly)

	// cellsOf maps grid cells to member cells for candidate lookup.  It
	// is rebuilt only after an accepted round: a rollback restores the
	// exact placement the current index was built from.
	var cellsOf [][]int
	plDirty := true

	for round := 0; round < dopt.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: dosePl canceled at round %d: %w", round, err)
		}
		// Snapshot for rollback: placement arrays plus the timer state
		// they correspond to.
		snapX := append([]float64(nil), pl.X...)
		snapY := append([]float64(nil), pl.Y...)
		snapW := append([]float64(nil), pl.Width...)
		snapT := tm.Snapshot()

		paths := cur.TopPaths(dopt.K, dopt.MaxPathStates)
		if len(paths) == 0 {
			break
		}
		// Critical set and weights (Eq. 13): W(cell) = Σ exp(-slack(C)).
		critical := make(map[int]bool)
		weight := make(map[int]float64)
		for _, p := range paths {
			slackNs := p.Slack(cur.MCT) / 1000
			w := math.Exp(-slackNs)
			for _, id := range p.Nodes {
				if in.Masters[id] == nil {
					continue
				}
				critical[id] = true
				weight[id] += w
			}
		}
		if plDirty {
			cellsOf = make([][]int, grid.Cells())
			for id := range circ.Gates {
				if in.Masters[id] == nil {
					continue
				}
				gi, gj := grid.Index(pl.X[id], pl.Y[id])
				f := grid.Flat(gi, gj)
				cellsOf[f] = append(cellsOf[f], id)
			}
			plDirty = false
		}

		numSwaps := 0
		swappedThisRound := make(map[int]bool)
		swappedPerPath := make([]int, len(paths))
		// Paths arrive most-critical first (non-increasing delay).
		for pi, p := range paths {
			if numSwaps >= dopt.Gamma5 {
				break
			}
			if swappedPerPath[pi] >= dopt.Gamma1 {
				continue
			}
			cells := cellsOnPath(in, p)
			sort.SliceStable(cells, func(a, b int) bool {
				return weight[cells[a]] > weight[cells[b]]
			})
			for _, cell := range cells {
				if fixed[cell] || swappedThisRound[cell] {
					continue
				}
				res.SwapsTried++
				if trySwap(in, layers, grid, ranked, cellsOf, critical, fixed, swappedThisRound,
					cell, maxDist, dopt, opt) {
					numSwaps++
					res.SwapsAccepted++ // provisional; may roll back below
					swappedPerPath[pi]++
					break
				}
			}
		}
		if numSwaps == 0 {
			break // nothing swappable remains
		}
		// Legalize + "ECO route" (wire re-estimation happens inside the
		// next golden analysis) + verify.
		if _, err := pl.Legalize(); err != nil {
			return nil, err
		}
		evalAfter, r2 := evalNow()
		accepted := evalAfter.MCTps < best.MCTps
		res.Rounds = append(res.Rounds, RoundLog{Swaps: numSwaps, MCTps: evalAfter.MCTps, Accepted: accepted})
		if accepted {
			best = evalAfter
			cur = r2
			plDirty = true
			obs.Add(ctx, "core/dosepl_rounds_accepted", 1)
		} else {
			copy(pl.X, snapX)
			copy(pl.Y, snapY)
			copy(pl.Width, snapW)
			tm.Restore(snapT)
			res.SwapsAccepted -= numSwaps
			for id := range swappedThisRound {
				fixed[id] = true // do not retry these cells
			}
			obs.Add(ctx, "core/dosepl_rounds_rejected", 1)
		}
	}
	res.After = best
	if rec := obs.From(ctx); rec != nil {
		rec.Add("core/dosepl_swaps_tried", int64(res.SwapsTried))
		rec.Add("core/dosepl_swaps_accepted", int64(res.SwapsAccepted))
		rec.Add("core/dosepl_swaps_rejected", int64(res.SwapsTried-res.SwapsAccepted))
	}
	return res, nil
}

// cellsOnPath returns the path's swap candidates: placed cells only.
func cellsOnPath(in sta.Input, p *sta.Path) []int {
	var out []int
	for _, id := range p.Nodes {
		if in.Masters[id] != nil {
			out = append(out, id)
		}
	}
	return out
}

// rankedGrid is one grid cell of the poly dose map in the shared
// dose-descending candidate order (ties broken by flat index so the
// order is deterministic).
type rankedGrid struct {
	flat, i, j int
	dose       float64
}

// rankGridsByDose precomputes the dose-descending region order shared by
// every trySwap call of a dosePl run: the dose map never changes during
// the swap rounds, so the per-attempt bounding-box sort reduces to a
// membership filter over this list.
func rankGridsByDose(poly *dosemap.Map) []rankedGrid {
	g := poly.Grid
	out := make([]rankedGrid, 0, g.Cells())
	for i := 0; i < g.M; i++ {
		for j := 0; j < g.N; j++ {
			f := g.Flat(i, j)
			out = append(out, rankedGrid{flat: f, i: i, j: j, dose: poly.D[f]})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].dose > out[b].dose })
	return out
}

// trySwap attempts to find a partner for the critical cell per
// Algorithm 1 lines 11-27; on success the placement is mutated.
func trySwap(in sta.Input, layers dosemap.Layers, grid dosemap.Grid, ranked []rankedGrid,
	cellsOf [][]int, critical map[int]bool, fixed []bool, swapped map[int]bool,
	cell int, maxDist float64, dopt DosePlOptions, opt Options) bool {

	pl := in.Pl
	poly := layers.Poly
	bl := pl.BoundingBox(cell)
	cellDose := poly.DoseAt(pl.X[cell], pl.Y[cell])
	// The cell stays put until a swap succeeds, so its incident HPWL is
	// one loop-invariant value, not one per candidate.
	h1 := pl.IncidentHPWL(cell)

	// Grids intersecting the bounding box, visited in dose-descending
	// order via the precomputed ranking.
	i0, j0 := grid.Index(bl.MinX, bl.MinY)
	i1, j1 := grid.Index(bl.MaxX, bl.MaxY)

	for _, r := range ranked {
		if r.dose <= cellDose {
			break // sorted: no better region follows (line 15)
		}
		if r.i < i0 || r.i > i1 || r.j < j0 || r.j > j1 {
			continue // outside the cell's bounding box
		}
		// Non-critical candidate cells by distance (line 17).
		var cands []int
		for _, c := range cellsOf[r.flat] {
			if c == cell || critical[c] || fixed[c] || swapped[c] {
				continue
			}
			if in.Circ.Gates[c].Kind != netlist.Comb {
				continue // keep registers anchored
			}
			cands = append(cands, c)
		}
		sort.Slice(cands, func(a, b int) bool {
			return pl.Dist(cell, cands[a]) < pl.Dist(cell, cands[b])
		})
		for _, cand := range cands {
			if pl.Dist(cell, cand) > maxDist {
				break // sorted by distance (line 19)
			}
			// Mutual bounding-box membership (line 20).
			bm := pl.BoundingBox(cand)
			if !bm.Contains(pl.X[cell], pl.Y[cell]) || !bl.Contains(pl.X[cand], pl.Y[cand]) {
				continue
			}
			// HPWL filter: estimated incident-net wirelength increase of
			// each swapped cell below γ3.  The leakage "before" value
			// (line 20, ΔLeak < γ4·Leak) is taken at the pre-swap
			// positions so one Swap covers both filters.
			h2 := pl.IncidentHPWL(cand)
			leakBefore := pairLeak(in, layers, cell, cand)
			pl.Swap(cell, cand)
			n1 := pl.IncidentHPWL(cell)
			n2 := pl.IncidentHPWL(cand)
			if n1 <= h1*(1+dopt.Gamma3)+1e-9 && n2 <= h2*(1+dopt.Gamma3)+1e-9 &&
				pairLeak(in, layers, cand, cell) <= leakBefore*(1+dopt.Gamma4) {
				swapped[cell] = true
				swapped[cand] = true
				return true
			}
			pl.Swap(cell, cand) // revert
		}
	}
	return false
}

// pairLeak returns the summed leakage in nW of two cells at their
// current locations' doses.
func pairLeak(in sta.Input, layers dosemap.Layers, a, b int) float64 {
	leakAt := func(id int) float64 {
		m := in.Masters[id]
		if m == nil {
			return 0
		}
		dl := tech.DoseToLength(layers.Poly.DoseAt(in.Pl.X[id], in.Pl.Y[id]))
		dw := 0.0
		if layers.Active != nil {
			dw = tech.DoseToWidth(layers.Active.DoseAt(in.Pl.X[id], in.Pl.Y[id]))
		}
		return m.Leakage(dl, dw)
	}
	return leakAt(a) + leakAt(b)
}
