// Run-request types of the DMopt pipeline: Options parameterize one
// solve (clock-period target, leakage budget, engine, solver budgets),
// while the design-invariant subset — grid geometry, dose range,
// smoothness, layers — is split off by Options.CompileOptions into the
// compile stage (see compile.go).
package core

import (
	"time"

	"repro/internal/dosemap"
	"repro/internal/liberty"
	"repro/internal/qp"
	"repro/internal/sta"
)

// Options configures a DMopt run.
type Options struct {
	// G is the grid granularity in µm (Section II-B; the paper sweeps
	// 5, 10, 30 and 50 µm).
	G float64
	// Delta is the dose smoothness bound δ in percent (Eq. 4/9).
	Delta float64
	// DoseLo, DoseHi are the equipment correction range L, U in percent
	// (Eq. 3/8; ±5% for DoseMapper).
	DoseLo, DoseHi float64
	// BothLayers enables simultaneous poly+active optimization
	// (Section III-B); otherwise poly-only (Section III-A).
	BothLayers bool
	// XiNW is the Δleakage budget ξ in nW for the QCP (Eq. 7/12).
	XiNW float64
	// Snap rounds grid doses to the characterized library steps before
	// golden signoff (footnote 7).
	Snap bool
	// Tiled adds seam smoothness constraints between opposite map edges
	// so the optimized field can be stepped side-by-side across the
	// wafer (Section II-B: "multiple copies of the dose map solution
	// are tiled horizontally and vertically").
	Tiled bool
	// BisectTol is the relative clock-period tolerance of the QCP
	// bisection.
	BisectTol float64
	// SeedTau warm-brackets the QCP bisection: a clock period (ps) that a
	// related run — the previous table row or sweep point — found
	// feasible.  When it falls inside the fresh [lo, hi] interval the
	// bisection probes a tight bracket around it first instead of
	// halving from scratch; a stale seed costs at most two probes and
	// still narrows the interval.  Zero disables the hint.
	SeedTau float64
	// MaxProbes bounds the QCP bisection length.
	MaxProbes int
	// Method selects the solve engine: the default cutting-plane engine
	// or the node-based arrival-variable assembly (kept for
	// cross-validation; slower to converge under ADMM).
	Method Method
	// CutRounds, CutsPerRound and CutTolPs tune the cutting-plane engine
	// (zero values select sensible defaults).
	CutRounds    int
	CutsPerRound int
	CutTolPs     float64
	// QP tunes the inner solver.
	QP qp.Settings
	// STA sets golden-analysis boundary conditions.
	STA sta.Config
	// Workers is the one knob that reaches every layer: golden STA
	// levels, solver reductions, and model fitting all fan out on up to
	// Workers goroutines.  Zero selects runtime.GOMAXPROCS(0).  Results
	// are bit-identical for every worker count.
	Workers int
	// Speculate lets the QCP bisection run probes concurrently,
	// sharing the cut pool under a mutex.  Off by default because the
	// extra probes enrich the pool and thereby change (slightly) the
	// warm-start trajectory: the result is still a valid optimum but
	// not bit-identical to the serial bisection.
	Speculate bool

	// Actuator selection.  The zero values reproduce the dose-only
	// pipeline bit-for-bit.
	//
	// DoseOff removes the dose-map actuator (bias-only mode); it is an
	// error to disable dose without enabling bias.
	DoseOff bool
	// BiasGridUm enables the body-bias actuator when > 0: the pitch in
	// µm of the square bias-domain tiling of the die (all cells in one
	// tile share a well voltage).
	BiasGridUm float64
	// BiasLo, BiasHi bound the per-domain body-bias voltage in V
	// (forward positive).  Both zero selects the default [-0.2, +0.1]
	// box when bias is enabled.
	BiasLo, BiasHi float64
	// BiasStep is the bias quantization ladder step in V used by the
	// Snap path; zero selects liberty.BiasStepV.
	BiasStep float64
}

// useDose reports whether the dose-map actuator is active.
func (o Options) useDose() bool { return !o.DoseOff }

// useBias reports whether the body-bias actuator is active.
func (o Options) useBias() bool { return o.BiasGridUm > 0 }

// normalized propagates the top-level Workers knob into the nested
// solver and STA configurations (without overriding explicit per-layer
// settings).
func (o Options) normalized() Options {
	if o.QP.Workers == 0 {
		o.QP.Workers = o.Workers
	}
	if o.STA.Workers == 0 {
		o.STA.Workers = o.Workers
	}
	if o.useBias() {
		if o.BiasLo == 0 && o.BiasHi == 0 {
			o.BiasLo, o.BiasHi = DefaultBiasLo, DefaultBiasHi
		}
		if o.BiasStep == 0 {
			o.BiasStep = liberty.BiasStepV
		}
	}
	return o
}

// Default body-bias box in V: reverse bias down to -0.2 V (leakage
// recovery) and forward bias up to +0.1 V (timing rescue), the range
// over which the quadratic leakage fit tracks the exponential device
// model tightly.
const (
	DefaultBiasLo = -0.2
	DefaultBiasHi = 0.1
)

// Method selects the DMopt solve engine.
type Method int

const (
	// MethodCuts solves the QP over dose variables with on-demand path
	// cuts (default).
	MethodCuts Method = iota
	// MethodNode solves the full node-based assembly with arrival-time
	// variables (Eq. 5/10 verbatim).
	MethodNode
)

// DefaultOptions returns the paper's main configuration: 5 µm grids,
// δ = 2, ±5% dose range, poly-only, ξ = 0 (no leakage increase allowed).
func DefaultOptions() Options {
	set := qp.DefaultSettings()
	// The outer cut-generation loop supplies the real convergence test
	// (model MCT against τ), so the inner ADMM solves run on a modest
	// budget; this is ~15x faster than solving every QP to 1e-4 with no
	// measurable change in the optimized dose maps.
	set.MaxIter = 1500
	set.EpsAbs, set.EpsRel = 3e-4, 3e-4
	return Options{
		G:         5,
		Delta:     2,
		DoseLo:    -5,
		DoseHi:    5,
		XiNW:      0,
		Snap:      true,
		BisectTol: 1e-3,
		MaxProbes: 24,
		QP:        set,
		STA:       sta.DefaultConfig(),
	}
}

// Result is the outcome of a DMopt run.
type Result struct {
	// Layers holds the optimized dose maps (Active nil for poly-only).
	Layers dosemap.Layers
	// PredMCT is the linear-model minimum cycle time under the solution.
	PredMCT float64
	// PredDeltaLeakNW is the model Δleakage of the solution (Eq. 2).
	PredDeltaLeakNW float64
	// Nominal and Golden are signoff snapshots before and after.
	Nominal, Golden Eval
	// Probes counts QCP bisection iterations (1 for the plain QP).
	Probes int
	// ArrivalVars is the number of timing-relevant gates given arrival
	// variables after pruning.
	ArrivalVars int
	// Rows and Cols are the assembled constraint-matrix dimensions.
	Rows, Cols int
	// BiasV holds the optimized per-domain body-bias voltages in V
	// (unsnapped, like Layers holds unsnapped doses); nil when the bias
	// actuator is off.  BiasDomains is its length.
	BiasV       []float64
	BiasDomains int
	// Status reports the final solver status.
	Status string
	// Runtime is the wall-clock optimization time.
	Runtime time.Duration
}
