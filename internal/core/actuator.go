// Actuator abstraction of the DMopt formulation.
//
// The paper optimizes a single actuator — exposure dose → CD → delay and
// leakage — but the same convex structure (linear per-gate delay
// sensitivities, linear+quadratic per-gate leakage terms, a box, a
// quantization ladder) governs other knobs; body bias is the first one
// landed here.  A Compiled artifact carries an ordered list of
// ActuatorBlocks instead of assuming nVar == nGrids×layers: every stage
// that walks variables — fixed-row assembly, cut construction, clamping,
// extraction, signoff — indexes through the blocks and through the
// concatenated per-gate sensitivity rows (Compiled.sensPtr/Col/Val).
//
// Block order is fixed: dose layer blocks first (offsets 0 and NG), then
// one block of per-domain body-bias voltages.  With only the dose blocks
// present every code path reduces bit-identically to the historical
// dose-only pipeline; that is locked by TestDoseOnlyRegressionLock.
package core

import (
	"errors"
	"math"

	"repro/internal/dosemap"
	"repro/internal/liberty"
	"repro/internal/tech"
)

// ActuatorBlock describes one contiguous variable block of the compiled
// formulation.
type ActuatorBlock struct {
	// Name identifies the actuator: "dose-poly", "dose-active", "bias".
	Name string
	// Off and N locate the block's variables in the concatenated layout.
	Off, N int
	// Lo, Hi are the block's box bounds (percent for dose, V for bias)
	// as compiled into the fixed rows.
	Lo, Hi float64
}

var errNoActuators = errors.New("core: no actuators enabled (dose off, bias off)")

// hasDose reports whether the dose actuator blocks are present.
func (c *Compiled) hasDose() bool { return !c.Opts.DoseOff }

// hasBias reports whether the body-bias actuator block is present.
func (c *Compiled) hasBias() bool { return c.nBias > 0 }

// BiasDomainCount returns the number of per-domain bias variables (0
// when the bias actuator is off).
func (c *Compiled) BiasDomainCount() int { return c.nBias }

// Assignment is a composed solution across all actuator blocks: the
// dose maps plus the per-domain body-bias voltages (nil when the bias
// actuator is off).  Both parts are unsnapped; the signoff applies the
// timing-safe quantization of each actuator.
type Assignment struct {
	Layers dosemap.Layers
	BiasV  []float64
}

// domainBias reads the bias voltage of gate id's domain (0 when the
// gate has no domain or bias is off).
func (c *Compiled) domainBias(bias []float64, id int) float64 {
	if len(bias) == 0 || c.domainOf == nil {
		return 0
	}
	if dom := c.domainOf[id]; dom >= 0 {
		return bias[dom]
	}
	return 0
}

// biasDVth expands per-domain bias voltages to the per-gate ΔVth vector
// (V) the golden analysis consumes, applying the timing-safe ladder snap
// per domain when snap is set (rounding toward forward bias only speeds
// gates up, mirroring SnapDoseUp).
func (c *Compiled) biasDVth(bias []float64, snap bool, step float64) []float64 {
	n := len(c.domainOf)
	snapped := bias
	if snap {
		snapped = make([]float64, len(bias))
		for d, b := range bias {
			snapped[d] = liberty.SnapBiasUp(b, c.Opts.BiasHi, step)
		}
	}
	dvth := make([]float64, n)
	for id, dom := range c.domainOf {
		if dom >= 0 {
			dvth[id] = -c.kGamma * snapped[dom]
		}
	}
	return dvth
}

// biasSnapMarginNW estimates the leakage cost of timing-safe bias
// snapping: each domain rounds up by at most one ladder step, costing
// about step/2 · Σ|BetaB| in expectation — the bias analogue of
// snapLeakMargin.  The QCP subtracts it from its budget ξ.
func biasSnapMarginNW(model *Model, step float64) float64 {
	if step <= 0 {
		step = liberty.BiasStepV
	}
	sum := 0.0
	for _, b := range model.BetaB {
		sum += math.Abs(b)
	}
	return step / 2 * sum
}

// predictAsn evaluates the linear timing model and the leakage model at
// a composed assignment.  With no bias it is exactly predict, keeping
// the dose-only float operations untouched.
func (c *Compiled) predictAsn(asn Assignment) (mct, dleakNW float64) {
	if len(asn.BiasV) == 0 {
		return c.predict(asn.Layers)
	}
	ds := tech.DoseSensitivity
	layers := asn.Layers
	deltaOf := func(id int) float64 {
		v := 0.0
		if c.hasDose() {
			if gidx := c.gridOf[id]; gidx >= 0 {
				v = c.Model.A[id] * ds * layers.Poly.D[gidx]
				if c.Opts.BothLayers && layers.Active != nil {
					v += c.Model.B[id] * ds * layers.Active.D[gidx]
				}
			}
		}
		if dom := c.domainOf[id]; dom >= 0 {
			v += c.Model.DB[id] * asn.BiasV[dom]
		}
		return v
	}
	_, mct = linearArrivalsOrder(c.Golden, c.order, deltaOf)

	n := c.Golden.In.Circ.NumGates()
	dleak := 0.0
	if c.hasDose() {
		dP := make([]float64, n)
		var dA []float64
		if c.Opts.BothLayers && layers.Active != nil {
			dA = make([]float64, n)
		}
		for id := 0; id < n; id++ {
			if g := c.gridOf[id]; g >= 0 {
				dP[id] = layers.Poly.D[g]
				if dA != nil {
					dA[id] = layers.Active.D[g]
				}
			}
		}
		dleak = c.Model.DeltaLeak(dP, dA)
	}
	bv := make([]float64, n)
	for id := 0; id < n; id++ {
		bv[id] = c.domainBias(asn.BiasV, id)
	}
	return mct, dleak + c.Model.DeltaLeakBias(bv)
}
