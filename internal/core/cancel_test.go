package core

import (
	"context"
	"errors"
	"testing"
)

// TestRunCtxCanceled asserts the end-to-end flow surfaces a wrapped
// context.Canceled when the context is canceled before it starts.
func TestRunCtxCanceled(t *testing.T) {
	d, _ := smallGolden(t, 0.03)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, d, FlowConfig{Opt: DefaultOptions(), Mode: ModeQPLeakage})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}

// TestDMoptCtxCanceledMidFlight cancels during the QP cut rounds and
// the QCP bisection; both must abort at the next round boundary with a
// wrapped context.Canceled instead of running to completion.
func TestDMoptCtxCanceledMidFlight(t *testing.T) {
	d, golden := smallGolden(t, 0.03)
	_ = d
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DMoptQPCtx(ctx, golden, model, opt, golden.MCT); !errors.Is(err, context.Canceled) {
		t.Fatalf("QP: want wrapped context.Canceled, got %v", err)
	}
	if _, err := DMoptQCPCtx(ctx, golden, model, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("QCP: want wrapped context.Canceled, got %v", err)
	}
	if _, err := FitModelCtx(ctx, golden, false, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("fit: want wrapped context.Canceled, got %v", err)
	}
}

// TestDosePlCtxCanceled asserts dosePl aborts between rounds with a
// wrapped context.Canceled and leaves the placement restored.
func TestDosePlCtxCanceled(t *testing.T) {
	_, golden := smallGolden(t, 0.03)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	dm, err := DMoptQCP(golden, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dopt := DefaultDosePlOptions()
	dopt.K = 100
	if _, err := DosePlCtx(ctx, golden, dm.Layers, opt, dopt); !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}

// TestWorkersEquivalentQPFlow asserts the whole QP flow — golden STA,
// fit, DMopt, signoff — produces identical signoff numbers at
// workers=1 and workers=8 (the tentpole acceptance criterion).
func TestWorkersEquivalentQPFlow(t *testing.T) {
	d, _ := smallGolden(t, 0.03)
	run := func(workers int) *FlowOutcome {
		opt := DefaultOptions()
		opt.Workers = workers
		out, err := RunCtx(context.Background(), d, FlowConfig{Opt: opt, Mode: ModeQPLeakage})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	a, b := run(1), run(8)
	if a.Final != b.Final {
		t.Fatalf("signoff differs: workers=1 %+v, workers=8 %+v", a.Final, b.Final)
	}
	if a.DM.PredMCT != b.DM.PredMCT {
		t.Fatalf("predicted optimum differs between worker counts")
	}
	if a.Golden.MCT != b.Golden.MCT {
		t.Fatalf("golden MCT differs between worker counts")
	}
}
