package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/sta"
)

func TestRunFlowQP(t *testing.T) {
	d, err := gen.Generate(gen.AES65().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	cfg := FlowConfig{Opt: DefaultOptions(), Mode: ModeQPLeakage}
	out, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.DM == nil || out.DosePl != nil {
		t.Fatal("flow shape wrong")
	}
	if out.Final.LeakUW >= out.DM.Nominal.LeakUW {
		t.Errorf("flow QP did not reduce leakage")
	}
}

func TestRunFlowQCPWithDosePl(t *testing.T) {
	d, err := gen.Generate(gen.AES65().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	dopt := DefaultDosePlOptions()
	dopt.K = 500
	dopt.Rounds = 4
	dopt.Gamma5 = 3
	cfg := FlowConfig{Opt: DefaultOptions(), Mode: ModeQCPTiming, RunDosePl: true, DosePl: dopt}
	out, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.DosePl == nil {
		t.Fatal("dosePl did not run")
	}
	// dosePl must never leave the design worse than DMopt left it.
	if out.Final.MCTps > out.DM.Golden.MCTps+1e-9 {
		t.Errorf("dosePl degraded MCT: %v → %v", out.DM.Golden.MCTps, out.Final.MCTps)
	}
	// And the whole flow must beat nominal timing.
	if out.Final.MCTps >= out.DM.Nominal.MCTps {
		t.Errorf("flow did not improve timing: %v vs nominal %v", out.Final.MCTps, out.DM.Nominal.MCTps)
	}
	t.Logf("flow: nominal %.1f → DMopt %.1f → dosePl %.1f ps (accepted swaps %d, tried %d)",
		out.DM.Nominal.MCTps, out.DM.Golden.MCTps, out.Final.MCTps,
		out.DosePl.SwapsAccepted, out.DosePl.SwapsTried)
}

func TestDosePlRollbackSafety(t *testing.T) {
	// With absurdly large γ5 and tiny HPWL/leak allowances, most swaps
	// are filtered; whatever rounds run must never accept a worse MCT.
	d, err := gen.Generate(gen.AES90().Scaled(0.04))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := GoldenNominal(d, sta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	dm, err := DMoptQCP(golden, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	dopt := DefaultDosePlOptions()
	dopt.K = 300
	dopt.Rounds = 3
	dopt.Gamma5 = 5
	dp, err := DosePl(golden, dm.Layers, opt, dopt)
	if err != nil {
		t.Fatal(err)
	}
	if dp.After.MCTps > dp.Before.MCTps+1e-9 {
		t.Errorf("dosePl must never end worse: %v → %v", dp.Before.MCTps, dp.After.MCTps)
	}
	for _, r := range dp.Rounds {
		if r.Accepted && r.MCTps >= dp.Before.MCTps {
			t.Errorf("accepted a non-improving round: %+v", r)
		}
	}
	// The placement must stay legal.
	if d.Pl.OverlapCount() != 0 {
		t.Errorf("placement has overlaps after dosePl")
	}
	if err := d.Pl.InBounds(); err != nil {
		t.Error(err)
	}
}

func TestBiasPerturbAndSlackProfile(t *testing.T) {
	d, err := gen.Generate(gen.AES65().Scaled(0.04))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := GoldenNominal(d, sta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bias := BiasPerturb(golden, 500, 0, 5)
	biased, err := sta.Analyze(golden.In, golden.Cfg, bias)
	if err != nil {
		t.Fatal(err)
	}
	if biased.MCT >= golden.MCT {
		t.Errorf("bias design must be faster: %v vs %v", biased.MCT, golden.MCT)
	}
	// Slack profiles at the nominal period: bias dominates original.
	p0 := PathSlackProfile(golden, 300, 0, golden.MCT)
	p1 := PathSlackProfile(biased, 300, 0, golden.MCT)
	if len(p0) == 0 || len(p1) == 0 {
		t.Fatal("empty profiles")
	}
	if !(p0[0] >= -1e-6 && math.Abs(p0[0]) < 1e-6) {
		t.Errorf("original worst path slack at T=MCT should be 0, got %v", p0[0])
	}
	if p1[0] <= p0[0] {
		t.Errorf("bias worst slack %v should beat original %v", p1[0], p0[0])
	}
	// Sorted ascending.
	for i := 1; i < len(p0); i++ {
		if p0[i] < p0[i-1] {
			t.Fatal("profile not sorted")
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeQPLeakage.String() != "QP" || ModeQCPTiming.String() != "QCP" {
		t.Error("mode strings")
	}
	if Mode(7).String() == "" {
		t.Error("unknown mode should format")
	}
}
