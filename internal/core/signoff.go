// Signoff stage of the DMopt pipeline: golden-timing and leakage
// evaluation of an optimized dose assignment.  The solve stages talk to
// it through one narrow interface — signoff(ctx, golden, opt, layers) —
// so the optimizer's linear model never leaks into the acceptance
// numbers.
package core

import (
	"context"
	"math"

	"repro/internal/dosemap"
	"repro/internal/liberty"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Eval is a golden-signoff snapshot.
type Eval struct {
	MCTps  float64
	LeakUW float64
}

// signoff applies the layers to the design and runs golden STA + power.
func signoff(ctx context.Context, golden *sta.Result, opt Options, layers dosemap.Layers) (Eval, error) {
	in := golden.In
	dL, dW := layers.PerGate(in.Circ, in.Pl, opt.Snap)
	pert := &sta.Perturb{DL: dL, DW: dW}
	r, err := sta.AnalyzeCtx(ctx, in, opt.STA, pert)
	if err != nil {
		return Eval{}, err
	}
	return Eval{MCTps: r.MCT, LeakUW: power.Total(in.Masters, dL, dW)}, nil
}

// signoffAsn is signoff over a composed actuator assignment: the bias
// part (when present) expands to a per-gate ΔVth perturbation via the
// compiled domain map — snapped onto the bias ladder when opt.Snap is
// set — and leakage is evaluated with the biased device model.  With no
// bias it takes the exact signoff path, so dose-only acceptance numbers
// are bit-identical.
func signoffAsn(ctx context.Context, comp *Compiled, opt Options, asn Assignment) (Eval, error) {
	golden := comp.Golden
	if len(asn.BiasV) == 0 {
		return signoff(ctx, golden, opt, asn.Layers)
	}
	in := golden.In
	dL, dW := asn.Layers.PerGate(in.Circ, in.Pl, opt.Snap)
	dVth := comp.biasDVth(asn.BiasV, opt.Snap, opt.BiasStep)
	pert := &sta.Perturb{DL: dL, DW: dW, DVth: dVth}
	r, err := sta.AnalyzeCtx(ctx, in, opt.STA, pert)
	if err != nil {
		return Eval{}, err
	}
	return Eval{MCTps: r.MCT, LeakUW: power.TotalV(in.Masters, dL, dW, dVth)}, nil
}

// nominalLeak evaluates the zero-dose leakage in µW.
func nominalLeak(golden *sta.Result) float64 {
	return power.Total(golden.In.Masters, nil, nil)
}

// xiTolerance returns the leakage-budget acceptance tolerance in nW:
// one part in 10⁴ of the design's nominal leakage (the solver's dose
// precision maps to roughly this much objective noise), plus a relative
// term for large explicit budgets.
func xiTolerance(golden *sta.Result, xiNW float64) float64 {
	return xiToleranceLeak(nominalLeak(golden), xiNW)
}

// xiToleranceLeak is xiTolerance with the nominal leakage precomputed
// (the compile artifact caches it).
func xiToleranceLeak(nomLeakUW, xiNW float64) float64 {
	return 1e-6*math.Abs(xiNW) + 1e-4*nomLeakUW*power.NWPerUW
}

// snapLeakMargin estimates the leakage the timing-safe snapping adds on
// top of the optimizer's solution: each grid dose rounds up by half a
// characterized step on average, shortening gates by |Ds|·step/2 nm, so
// the expected extra leakage is that length times Σ|β_p|.  The QCP
// subtracts this margin from its budget ξ so the golden signoff still
// lands within the requested leakage bound after rounding.
func snapLeakMargin(model *Model) float64 {
	sum := 0.0
	for _, b := range model.Beta {
		sum += math.Abs(b)
	}
	return math.Abs(tech.DoseSensitivity) * liberty.DoseStep / 2 * sum
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
