package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/power"
	"repro/internal/sta"
)

// smallGolden generates a small design and its golden analysis once per
// test binary (the generator and STA are deterministic).
func smallGolden(t *testing.T, scale float64) (*gen.Design, *sta.Result) {
	t.Helper()
	d, err := gen.Generate(gen.AES65().Scaled(scale))
	if err != nil {
		t.Fatal(err)
	}
	in := sta.Input{Circ: d.Circ, Masters: d.Masters, Pl: d.Pl, Node: d.Node}
	r, err := sta.Analyze(in, sta.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, r
}

func TestFitModelSigns(t *testing.T) {
	_, golden := smallGolden(t, 0.03)
	for _, both := range []bool{false, true} {
		m, err := FitModel(golden, both)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Sanity(); err != nil {
			t.Errorf("bothLayers=%v: %v", both, err)
		}
		if m.MaxDelaySSR <= 0 || m.MaxLeakSSR <= 0 {
			t.Errorf("bothLayers=%v: SSR should be positive (%v, %v)", both, m.MaxDelaySSR, m.MaxLeakSSR)
		}
		// Ports must stay zero.
		for id, master := range golden.In.Masters {
			if master == nil && (m.A[id] != 0 || m.Beta[id] != 0) {
				t.Fatalf("port %d has nonzero coefficients", id)
			}
		}
	}
	// The two-variable fit has more parameters and a larger residual,
	// mirroring the paper's 0.0005 vs 0.0101 observation.
	m1, _ := FitModel(golden, false)
	m2, _ := FitModel(golden, true)
	if m2.MaxDelaySSR < m1.MaxDelaySSR {
		t.Logf("note: 2-var delay SSR %v < 1-var %v (acceptable, shape-dependent)", m2.MaxDelaySSR, m1.MaxDelaySSR)
	}
}

func TestModelTracksGoldenUniformDose(t *testing.T) {
	// The linear/quadratic model evaluated at a uniform dose must agree
	// with golden STA/power within a few percent over the dose range.
	_, golden := smallGolden(t, 0.03)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	in := golden.In
	n := in.Circ.NumGates()
	nomLeak := power.Total(in.Masters, nil, nil)
	for _, dose := range []float64{-4, -2, 2, 4} {
		dP := make([]float64, n)
		dL := make([]float64, n)
		for i := range dP {
			if in.Masters[i] != nil {
				dP[i] = dose
				dL[i] = -2 * dose
			}
		}
		// Leakage.
		predDelta := model.DeltaLeak(dP, nil) / power.NWPerUW
		goldDelta := power.Total(in.Masters, dL, nil) - nomLeak
		// The quadratic leakage model is an acknowledged approximation of
		// the exponential (paper footnote 4): allow a ~25% mid-range gap.
		if math.Abs(predDelta-goldDelta) > 0.25*math.Abs(goldDelta)+0.01*nomLeak {
			t.Errorf("dose %v: Δleak model %v vs golden %v µW", dose, predDelta, goldDelta)
		}
		// Timing.
		_, predMCT := linearArrivals(golden, func(id int) float64 {
			return model.A[id] * (-2) * dP[id]
		})
		gr, err := sta.Analyze(in, golden.Cfg, &sta.Perturb{DL: dL})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(predMCT-gr.MCT) > 0.03*gr.MCT {
			t.Errorf("dose %v: MCT model %v vs golden %v", dose, predMCT, gr.MCT)
		}
	}
}

func TestDMoptQPReducesLeakage(t *testing.T) {
	_, golden := smallGolden(t, 0.05)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	res, err := DMoptQP(golden, model, opt, golden.MCT)
	if err != nil {
		t.Fatal(err)
	}
	// Equipment feasibility.
	if err := res.Layers.Poly.CheckRange(opt.DoseLo-0.01, opt.DoseHi+0.01); err != nil {
		t.Error(err)
	}
	if err := res.Layers.Poly.CheckSmooth(opt.Delta + 0.02); err != nil {
		t.Error(err)
	}
	// Leakage must drop materially at unchanged timing.
	if res.Golden.LeakUW >= res.Nominal.LeakUW {
		t.Errorf("QP did not reduce leakage: %v → %v µW", res.Nominal.LeakUW, res.Golden.LeakUW)
	}
	imp := 1 - res.Golden.LeakUW/res.Nominal.LeakUW
	if imp < 0.02 {
		t.Errorf("leakage improvement only %.2f%%", imp*100)
	}
	if res.Golden.MCTps > res.Nominal.MCTps*1.01 {
		t.Errorf("QP degraded timing: %v → %v ps", res.Nominal.MCTps, res.Golden.MCTps)
	}
	if res.PredDeltaLeakNW >= 0 {
		t.Errorf("predicted Δleak %v should be negative", res.PredDeltaLeakNW)
	}
	t.Logf("QP: MCT %.1f→%.1f ps, leak %.1f→%.1f µW (%.1f%%), vars=%d rows=%d status=%s",
		res.Nominal.MCTps, res.Golden.MCTps, res.Nominal.LeakUW, res.Golden.LeakUW, imp*100,
		res.Cols, res.Rows, res.Status)
}

func TestDMoptQCPImprovesTiming(t *testing.T) {
	_, golden := smallGolden(t, 0.05)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	res, err := DMoptQCP(golden, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Layers.Poly.CheckRange(opt.DoseLo-0.01, opt.DoseHi+0.01); err != nil {
		t.Error(err)
	}
	if err := res.Layers.Poly.CheckSmooth(opt.Delta + 0.02); err != nil {
		t.Error(err)
	}
	if res.Golden.MCTps >= res.Nominal.MCTps {
		t.Errorf("QCP did not improve MCT: %v → %v", res.Nominal.MCTps, res.Golden.MCTps)
	}
	// Leakage must not grow beyond the ξ=0 budget (plus snap noise).
	if res.Golden.LeakUW > res.Nominal.LeakUW*1.02 {
		t.Errorf("QCP leakage grew: %v → %v µW", res.Nominal.LeakUW, res.Golden.LeakUW)
	}
	if res.Probes < 2 {
		t.Errorf("bisection did not iterate (probes=%d)", res.Probes)
	}
	imp := 1 - res.Golden.MCTps/res.Nominal.MCTps
	t.Logf("QCP: MCT %.1f→%.1f ps (%.2f%%), leak %.1f→%.1f µW, probes=%d",
		res.Nominal.MCTps, res.Golden.MCTps, imp*100, res.Nominal.LeakUW, res.Golden.LeakUW, res.Probes)
}

func TestGranularityOrdering(t *testing.T) {
	// Finer grids must give at least as much leakage improvement
	// (Section V: "the finer the rectangular grids, the greater the
	// improvement").
	_, golden := smallGolden(t, 0.05)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	imp := map[float64]float64{}
	for _, g := range []float64{5, 30} {
		opt := DefaultOptions()
		opt.G = g
		res, err := DMoptQP(golden, model, opt, golden.MCT)
		if err != nil {
			t.Fatal(err)
		}
		imp[g] = 1 - res.Golden.LeakUW/res.Nominal.LeakUW
	}
	if imp[5] < imp[30]-0.005 {
		t.Errorf("finer grid should win: 5 µm %.2f%% vs 30 µm %.2f%%", imp[5]*100, imp[30]*100)
	}
	t.Logf("granularity: 5 µm %.2f%%, 30 µm %.2f%%", imp[5]*100, imp[30]*100)
}

func TestDMoptQPErrors(t *testing.T) {
	_, golden := smallGolden(t, 0.03)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DMoptQP(golden, model, DefaultOptions(), 0); err == nil {
		t.Error("non-positive tau should fail")
	}
	bad := DefaultOptions()
	bad.G = -1
	if _, err := DMoptQP(golden, model, bad, golden.MCT); err == nil {
		t.Error("bad grid should fail")
	}
}

// TestCutsVsNodeAgree cross-validates the two solve engines: they target
// the identical mathematical program, so their objectives must agree
// (the node-based ADMM carries a looser feasibility floor, hence the
// generous tolerance).
func TestCutsVsNodeAgree(t *testing.T) {
	_, golden := smallGolden(t, 0.03)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	tau := golden.MCT

	cuts := DefaultOptions()
	rc, err := DMoptQP(golden, model, cuts, tau)
	if err != nil {
		t.Fatal(err)
	}
	node := DefaultOptions()
	node.Method = MethodNode
	rn, err := DMoptQP(golden, model, node, tau)
	if err != nil {
		t.Fatal(err)
	}
	if rc.PredDeltaLeakNW >= 0 || rn.PredDeltaLeakNW >= 0 {
		t.Fatalf("both engines must reduce leakage: cuts %v, node %v", rc.PredDeltaLeakNW, rn.PredDeltaLeakNW)
	}
	rel := math.Abs(rc.PredDeltaLeakNW-rn.PredDeltaLeakNW) / math.Abs(rc.PredDeltaLeakNW)
	if rel > 0.10 {
		t.Errorf("engines disagree: cuts %v vs node %v nW (%.1f%%)",
			rc.PredDeltaLeakNW, rn.PredDeltaLeakNW, rel*100)
	}
	t.Logf("objective: cuts %.1f nW, node %.1f nW (%.2f%% apart)", rc.PredDeltaLeakNW, rn.PredDeltaLeakNW, rel*100)
}

// TestBothLayersEdgeOut checks Section III-B / Tables V-VI: simultaneous
// gate-length + gate-width modulation does at least as well as
// length-only (the extra knob can only help the model optimum).
func TestBothLayersEdgeOut(t *testing.T) {
	_, golden := smallGolden(t, 0.05)
	mL, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	mLW, err := FitModel(golden, true)
	if err != nil {
		t.Fatal(err)
	}
	optL := DefaultOptions()
	rL, err := DMoptQP(golden, mL, optL, golden.MCT)
	if err != nil {
		t.Fatal(err)
	}
	optLW := DefaultOptions()
	optLW.BothLayers = true
	rLW, err := DMoptQP(golden, mLW, optLW, golden.MCT)
	if err != nil {
		t.Fatal(err)
	}
	if rLW.Layers.Active == nil {
		t.Fatal("both-layers run must produce an active map")
	}
	// Model optimum with the extra degree of freedom can only improve.
	if rLW.PredDeltaLeakNW > rL.PredDeltaLeakNW+1 {
		t.Errorf("both-layers model objective %.1f worse than poly-only %.1f",
			rLW.PredDeltaLeakNW, rL.PredDeltaLeakNW)
	}
	t.Logf("poly-only Δleak %.1f nW, both-layers %.1f nW; golden %.2f vs %.2f µW",
		rL.PredDeltaLeakNW, rLW.PredDeltaLeakNW, rL.Golden.LeakUW, rLW.Golden.LeakUW)
}
