package core

import (
	"context"
	"math"
	"testing"
)

// compiledSnapshot captures every slice of the artifact bitwise.
type compiledSnapshot struct {
	gridOf, order         []int
	dosePD, doseQ, cutPD  []float64
	fixedRowPtr, fixedCol []int
	fixedVal              []float64
	fixedL, fixedU        []float64
	worstArr, worstSuf    []float64
	fastMCT, snapMargin   float64
	nomLeak               float64
}

func snapshotCompiled(c *Compiled) compiledSnapshot {
	cpI := func(s []int) []int { return append([]int(nil), s...) }
	cpF := func(s []float64) []float64 { return append([]float64(nil), s...) }
	return compiledSnapshot{
		gridOf: cpI(c.gridOf), order: cpI(c.order),
		dosePD: cpF(c.dosePD), doseQ: cpF(c.doseQ), cutPD: cpF(c.cutPD),
		fixedRowPtr: cpI(c.fixedA.RowPtr), fixedCol: cpI(c.fixedA.Col),
		fixedVal: cpF(c.fixedA.Val),
		fixedL:   cpF(c.fixedL), fixedU: cpF(c.fixedU),
		worstArr: cpF(c.worstArr), worstSuf: cpF(c.worstSuf),
		fastMCT: c.fastMCT, snapMargin: c.snapMarginNW, nomLeak: c.nomLeakUW,
	}
}

func eqI(t *testing.T, name string, a, b []int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d]: %d != %d", name, i, a[i], b[i])
		}
	}
}

func eqF(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: %v != %v", name, i, a[i], b[i])
		}
	}
}

func (s compiledSnapshot) requireEqual(t *testing.T, o compiledSnapshot) {
	t.Helper()
	eqI(t, "gridOf", s.gridOf, o.gridOf)
	eqI(t, "order", s.order, o.order)
	eqF(t, "dosePD", s.dosePD, o.dosePD)
	eqF(t, "doseQ", s.doseQ, o.doseQ)
	eqF(t, "cutPD", s.cutPD, o.cutPD)
	eqI(t, "fixedA.RowPtr", s.fixedRowPtr, o.fixedRowPtr)
	eqI(t, "fixedA.Col", s.fixedCol, o.fixedCol)
	eqF(t, "fixedA.Val", s.fixedVal, o.fixedVal)
	eqF(t, "fixedL", s.fixedL, o.fixedL)
	eqF(t, "fixedU", s.fixedU, o.fixedU)
	eqF(t, "worstArr", s.worstArr, o.worstArr)
	eqF(t, "worstSuf", s.worstSuf, o.worstSuf)
	eqF(t, "scalars",
		[]float64{s.fastMCT, s.snapMargin, s.nomLeak},
		[]float64{o.fastMCT, o.snapMargin, o.nomLeak})
}

// TestCompiledImmutableUnderRuns pins the ownership rule: QCP with cuts
// and the node QP both run off one artifact without mutating a single
// bit of it.
func TestCompiledImmutableUnderRuns(t *testing.T) {
	_, golden := smallGolden(t, 0.03)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.G = 20
	c, err := Compile(golden, model, opt.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotCompiled(c)

	ctx := context.Background()
	if _, err := DMoptQCPCompiled(ctx, c, opt); err != nil {
		t.Fatal(err)
	}
	snapshotCompiled(c).requireEqual(t, before)

	if _, err := DMoptQPCompiled(ctx, c, opt, 0.99*golden.MCT); err != nil {
		t.Fatal(err)
	}
	nopt := opt
	nopt.Method = MethodNode
	if _, err := DMoptQPCompiled(ctx, c, nopt, 0.995*golden.MCT); err != nil {
		t.Fatal(err)
	}
	snapshotCompiled(c).requireEqual(t, before)
}

// TestCompiledRunsDeterministic: two runs off the same shared artifact
// return bit-identical results (the artifact carries no run state).
func TestCompiledRunsDeterministic(t *testing.T) {
	_, golden := smallGolden(t, 0.03)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.G = 20
	c, err := Compile(golden, model, opt.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r1, err := DMoptQCPCompiled(ctx, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DMoptQCPCompiled(ctx, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	// And against the compile-on-demand entry point.
	r3, err := DMoptQCPCtx(ctx, golden, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		a, b *Result
	}{{"shared artifact", r1, r2}, {"fresh compile", r1, r3}} {
		eqF(t, pair.name+" poly", pair.a.Layers.Poly.D, pair.b.Layers.Poly.D)
		eqF(t, pair.name+" scalars",
			[]float64{pair.a.PredMCT, pair.a.PredDeltaLeakNW, pair.a.Golden.MCTps, pair.a.Golden.LeakUW},
			[]float64{pair.b.PredMCT, pair.b.PredDeltaLeakNW, pair.b.Golden.MCTps, pair.b.Golden.LeakUW})
	}
}

// TestCompiledOptionsMismatch: a run whose options project onto a
// different compile key is rejected instead of silently using the wrong
// formulation.
func TestCompiledOptionsMismatch(t *testing.T) {
	_, golden := smallGolden(t, 0.03)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.G = 20
	c, err := Compile(golden, model, opt.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := opt
	bad.G = 10
	if _, err := DMoptQPCompiled(context.Background(), c, bad, 0.99*golden.MCT); err == nil {
		t.Fatal("expected compile-key mismatch error for G=10 run on G=20 artifact")
	}
	bad = opt
	bad.BothLayers = true
	if _, err := DMoptQCPCompiled(context.Background(), c, bad); err == nil {
		t.Fatal("expected compile-key mismatch error for both-layers run on poly artifact")
	}
}
