// Lockstep cut generation for wafer column groups.  The timing model is
// linear in dose, so a tangent (path) cut derived at ANY member's dose
// iterate is globally valid: its coefficients come from the shared
// sensitivity model and its nominal term is the dose-independent path
// delay.  Members of a column group therefore share ONE cut pool, and
// by syncing every member to the same pool snapshot at the top of each
// round their constraint matrices stay bitwise identical — which is
// exactly what qp.SolveBatchCtx validates before collapsing the round's
// per-member QP solves into one lockstep batch whose x-steps are
// multi-RHS triangular solves against a single shared LDLᵀ factor.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/qp"
	"repro/internal/sta"
)

// solveTauGroup runs one cutting-plane probe for every member of a
// column group in lockstep rounds against the members' shared cut pool.
// All members must borrow the same base compilation (identical golden,
// order, objective structure) and share one cutPool; only bounds and
// linear terms may differ.  It returns per-member model objectives and
// feasibility flags, indexed like css.  Unlike solveTau there is no ξ
// budget cut-off: wafer probes run at the fixed common τ̄.
//
// A member whose linear-model clock period reaches τ̄ freezes — later
// rounds (driven by its slower siblings) no longer move its iterate,
// which is sound because convergence is verified on the full arrival
// propagation, not on the cut subset.  When any member's persistent
// solver must be rebuilt (infeasibility certificate or stall retry),
// every member's solver is reset with it: a lone rebuild would
// re-equilibrate against a different row count than its siblings and
// break the shared-factor validation for the rest of the run.
func solveTauGroup(ctx context.Context, css []*cutSolver, tau float64) (objs []float64, feas []bool, err error) {
	rec := obs.From(ctx)
	for _, cs := range css {
		cs.rec = rec
		cs.tangentOK = false
	}
	lead := css[0]
	pool := lead.pool
	c := lead.comp
	opt := lead.opt
	tolPs := opt.CutTolPs
	if tolPs <= 0 {
		tolPs = 2e-4 * c.Golden.MCT
	}
	maxRounds := opt.CutRounds
	if maxRounds <= 0 {
		maxRounds = 60
	}
	perRound := opt.CutsPerRound
	if perRound <= 0 {
		perRound = 64
	}

	nb := len(css)
	objs = make([]float64, nb)
	feas = make([]bool, nb)
	done := make([]bool, nb)
	liveIdx := make([]int, 0, nb)
	solvers := make([]*qp.Solver, 0, nb)

	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: cut probe canceled at round %d: %w", round, err)
		}
		liveIdx = liveIdx[:0]
		for i := range css {
			if !done[i] {
				liveIdx = append(liveIdx, i)
			}
		}
		if len(liveIdx) == 0 {
			return objs, feas, nil
		}
		// One snapshot per round: every live member syncs to the same
		// cut rows in the same order, keeping their matrices bitwise
		// identical for the batch validation.
		snap := pool.snapshot()
		solvers = solvers[:0]
		for _, i := range liveIdx {
			cs := css[i]
			cs.rounds++
			rec.Add("core/cut_rounds", 1)
			if err := cs.ensure(tau, snap); err != nil {
				return nil, nil, err
			}
			solvers = append(solvers, cs.solver)
		}
		results, err := qp.SolveBatchCtx(ctx, solvers)
		if err != nil {
			return nil, nil, err
		}
		resetAny := false
		for k, i := range liveIdx {
			cs := css[i]
			res := results[k]
			cs.solves++
			if res.Status == qp.PrimalInfeasible {
				cs.resetSolver() // certificate duals would poison warm starts
				resetAny = true
				done[i] = true
				continue
			}
			if res.Status != qp.Solved && cs.solver.MaxViolation(res.X) > 0.2 {
				// Same fresh-solver retry as solveTau, run solo: the
				// stalled member leaves the lockstep for this round.
				solver, err := qp.NewSolver(cs.prob, cs.opt.QP)
				if err != nil {
					return nil, nil, err
				}
				if err := solver.WarmStart(res.X, res.Y); err != nil {
					return nil, nil, err
				}
				res2, err := solver.SolveCtx(ctx)
				cs.solves++
				if err != nil {
					return nil, nil, err
				}
				viol := solver.MaxViolation(res2.X)
				cs.resetSolver()
				resetAny = true
				if res2.Status == qp.PrimalInfeasible {
					done[i] = true
					continue
				}
				if res2.Status != qp.Solved && viol > 0.5 {
					return nil, nil, fmt.Errorf("core: cut QP did not converge (τ=%.1f, round %d, viol %.3g)",
						tau, round, viol)
				}
				res = res2
			}
			cs.saveDuals(res.Y)
			copy(cs.x, res.X)
			cs.clampVars()
			objs[i] = cs.objective(cs.x)
			cs.recordTangent(tau, objs[i], res.Y)
			delta := cs.deltaFn(cs.x)
			_, mct := linearArrivalsOrder(c.Golden, c.order, delta)
			if mct <= tau+tolPs {
				done[i] = true
				feas[i] = true
				continue
			}
			// Violated path cuts from this member's iterate, appended in
			// member order so the shared pool grows deterministically.
			arcFn := func(from, to int) float64 {
				a := c.Golden.ArcDelay(from, to)
				if c.Golden.In.Circ.Gates[to].Kind == netlist.Comb {
					a += delta(to)
				}
				return a
			}
			startFn := func(id int) float64 {
				s := c.Golden.StartWeight(id)
				if c.Golden.In.Circ.Gates[id].Kind == netlist.Seq {
					s += delta(id)
				}
				return s
			}
			paths := sta.TopPathsDAG(c.Golden.In.Circ, c.order, arcFn, startFn, c.Golden.EndWeight,
				perRound, 0)
			added := 0
			for _, p := range paths {
				if p.Delay <= tau+tolPs/2 {
					break // paths arrive in non-increasing delay order
				}
				if pool.add(cs.makeCut(p, cs.x)) {
					added++
				}
			}
			rec.Add("core/cuts_added", int64(added))
			rec.Set("core/cut_pool_size", float64(pool.size()))
			if added == 0 {
				// Every violating path is already pooled yet the QP
				// solution still violates.  When the pool grew past the
				// snapshot this member solved against (a sibling added the
				// cuts this very round), that is no stall — the next round
				// re-solves against them.  Only a member that saw the full
				// pool and still cannot progress is stalled; accept if the
				// miss is within the solver tolerance floor.
				if mct <= tau+5*tolPs {
					done[i] = true
					feas[i] = true
					continue
				}
				if pool.size() > len(snap) {
					continue
				}
				return nil, nil, fmt.Errorf("core: cut generation stalled at τ=%.1f (mct %.1f)", tau, mct)
			}
		}
		if resetAny {
			for _, cs := range css {
				cs.resetSolver()
			}
		}
	}
	return nil, nil, errors.New("core: cut generation exceeded round budget")
}
