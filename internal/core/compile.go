// Compile stage of the DMopt pipeline (compile → solve → signoff).
//
// Tables IV-VI and the dose sweeps solve many QP/QCP variants over one
// (design, grid, layers) formulation: the grid geometry, the gate→grid
// map, the worst-case pruning arrivals, the objective coefficients and
// the box/smoothness constraint pattern are all invariant across those
// runs.  Compile builds that invariant state once into an immutable
// *Compiled artifact; the run views in qp_run.go / qcp_run.go / cuts.go
// borrow it together with per-run mutable state (τ bounds, cut pool,
// warm-started solver).
//
// Ownership rule: a Compiled is never mutated after Compile returns.
// Runs copy what they need to mutate (the cut engine copies the
// objective diagonal; buildProblem copies the bound vectors) and lend
// the shared CSRs to qp.NewSolver, which clones its inputs.  This is
// what makes one artifact shareable across concurrent table jobs — the
// expt harness caches Compiled values exactly like designs and goldens.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/dosemap"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/qp"
	"repro/internal/sta"
	"repro/internal/tech"
)

// CompileOptions is the subset of Options that shapes the compiled
// formulation.  It is a comparable value type so callers can use it
// directly as a cache key.
type CompileOptions struct {
	// G is the grid granularity in µm.
	G float64
	// Delta is the dose smoothness bound δ in percent.
	Delta float64
	// DoseLo, DoseHi are the equipment correction range in percent.
	DoseLo, DoseHi float64
	// BothLayers enables simultaneous poly+active optimization.
	BothLayers bool
	// Tiled adds seam smoothness rows between opposite map edges.
	Tiled bool
	// DoseOff removes the dose actuator block (bias-only formulation).
	DoseOff bool
	// BiasGridUm adds the body-bias actuator block when > 0: the pitch
	// in µm of the square bias-domain tiling.
	BiasGridUm float64
	// BiasLo, BiasHi are the per-domain body-bias box in V.
	BiasLo, BiasHi float64
}

// CompileOptions projects the run options onto the compile key: the
// fields every solve over the same formulation must agree on.  The bias
// box defaults are materialized here so that runs and compiles keyed on
// the projection always agree; a disabled bias actuator leaves all bias
// fields zero, keeping legacy cache keys byte-identical.
func (o Options) CompileOptions() CompileOptions {
	co := CompileOptions{
		G: o.G, Delta: o.Delta,
		DoseLo: o.DoseLo, DoseHi: o.DoseHi,
		BothLayers: o.BothLayers, Tiled: o.Tiled,
		DoseOff: o.DoseOff,
	}
	if o.useBias() {
		co.BiasGridUm = o.BiasGridUm
		co.BiasLo, co.BiasHi = o.BiasLo, o.BiasHi
		if co.BiasLo == 0 && co.BiasHi == 0 {
			co.BiasLo, co.BiasHi = DefaultBiasLo, DefaultBiasHi
		}
	}
	return co
}

// Compiled is the immutable per-(design, grid, layers) artifact shared
// by every solve stage.  See the package comment of this file for the
// ownership rules.
type Compiled struct {
	// Golden is the nominal analysis the formulation linearizes around.
	Golden *sta.Result
	// Model holds the fitted per-instance delay/leakage coefficients.
	Model *Model
	// Opts is the compile key this artifact was built for; runs with a
	// different projection are rejected.
	Opts CompileOptions

	// Grid is the dose-map geometry; NG its cell count per layer and
	// NVar the total actuator-variable count across all blocks (NG or
	// 2·NG dose variables, plus one variable per bias domain).
	Grid     dosemap.Grid
	NG, NVar int

	// Blocks is the ordered actuator variable layout: dose layer blocks
	// first (offsets 0 and NG), then the bias block.  Every stage that
	// walks variables — fixed rows, cut assembly, clamping, extraction —
	// indexes through it instead of assuming nVar == nGrids×layers.
	Blocks []ActuatorBlock

	gridOf []int // gate → flat grid index, or -1 for ports
	order  []int // frozen topological order of the circuit

	// Body-bias actuator state (absent: nBias == 0, biasOff == -1).
	domainOf []int   // gate → bias domain, or -1
	nBias    int     // occupied bias domains
	biasOff  int     // variable offset of the bias block
	kGamma   float64 // dVth per volt of forward bias is -kGamma

	// Per-gate delay sensitivity rows, concatenated over all blocks in
	// block order (CSR over gates): d(delay_id)/d(x_col).  Values are
	// precomputed (A·Ds, B·Ds, DB) so the cut engine's evaluations stay
	// bit-identical to the historical inline products.
	sensPtr []int
	sensCol []int
	sensVal []float64

	// Dose-variable objective: ½·dosePD_j·x_j² + doseQ_j·x_j is the
	// Eq. 2 Δleakage model.  cutPD adds the active-layer regularization
	// the cutting-plane engine needs (the node assembly does not).
	dosePD, doseQ []float64
	cutPD         []float64

	// Fixed constraint prefix of the cut engine: box + smoothness
	// (+ seam) rows over the dose variables.  Cut rows are appended
	// after this prefix, so dual indices survive pool growth.
	fixedA         *qp.CSR
	fixedL, fixedU []float64

	// Worst-case (slowest reachable dose) linear arrivals and suffixes,
	// used by the node assembly to prune arrival variables.
	worstArr, worstSuf []float64

	// fastMCT is the linear-model MCT at the fastest reachable dose —
	// the QCP bisection's lower bound.
	fastMCT float64
	// snapMarginNW is the expected leakage cost of timing-safe dose
	// snapping; the QCP subtracts it from its budget ξ.
	snapMarginNW float64
	// nomLeakUW is the zero-dose leakage in µW.
	nomLeakUW float64
}

// ApproxBytes estimates the artifact's resident size (slices and the
// fixed-row CSR; the borrowed Golden/Model pointers are excluded — the
// cache layers account for those stages separately).  Byte-budget
// eviction only needs relative magnitudes, not exact accounting.
func (c *Compiled) ApproxBytes() int64 {
	n := len(c.gridOf) + len(c.order)
	f := len(c.dosePD) + len(c.doseQ) + len(c.cutPD) +
		len(c.fixedL) + len(c.fixedU) + len(c.worstArr) + len(c.worstSuf)
	csr := 0
	if c.fixedA != nil {
		csr = 8*(len(c.fixedA.RowPtr)+len(c.fixedA.Col)) + 8*len(c.fixedA.Val)
	}
	return int64(8*n + 8*f + csr)
}

// check validates that run options match the artifact's compile key.
func (c *Compiled) check(opt Options) error {
	if co := opt.CompileOptions(); co != c.Opts {
		return fmt.Errorf("core: options %+v do not match compiled artifact %+v", co, c.Opts)
	}
	return nil
}

// Compile builds the shared formulation artifact for (golden, model)
// under the given compile options.
func Compile(golden *sta.Result, model *Model, co CompileOptions) (*Compiled, error) {
	return CompileCtx(context.Background(), golden, model, co)
}

// CompileCtx is Compile with cancellation.  Every compile counts as a
// core/compile_misses tick (cache layers above report hits); the build
// time lands in core/compile_ns.
func CompileCtx(ctx context.Context, golden *sta.Result, model *Model, co CompileOptions) (*Compiled, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: compile canceled: %w", err)
	}
	start := time.Now()
	ctx, sp := obs.Start(ctx, "core/compile")
	defer sp.End()

	in := golden.In
	grid, err := dosemap.NewGrid(in.Pl.ChipW, in.Pl.ChipH, co.G)
	if err != nil {
		return nil, err
	}
	order, err := in.Circ.TopoOrder()
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Golden: golden, Model: model, Opts: co,
		Grid: grid, NG: grid.Cells(),
		gridOf: gateGrid(in, grid), order: order,
		biasOff: -1,
	}

	// Actuator block layout: dose layers first, then bias domains.
	if co.DoseOff && co.BiasGridUm <= 0 {
		return nil, errNoActuators
	}
	if co.DoseOff && co.BothLayers {
		return nil, fmt.Errorf("core: BothLayers requires the dose actuator")
	}
	doseVars := 0
	if !co.DoseOff {
		doseVars = c.NG
		if co.BothLayers {
			doseVars = 2 * c.NG
		}
	}
	if co.BiasGridUm > 0 {
		if co.BiasLo > co.BiasHi {
			return nil, fmt.Errorf("core: bias box [%g, %g] is empty", co.BiasLo, co.BiasHi)
		}
		if model.DB == nil || model.AlphaB == nil || model.BetaB == nil {
			return nil, fmt.Errorf("core: bias actuator enabled but model has no fitted bias coefficients")
		}
		c.domainOf, c.nBias = in.Pl.Regions(co.BiasGridUm)
		if c.nBias == 0 {
			return nil, fmt.Errorf("core: bias tiling at %g µm produced no occupied domains", co.BiasGridUm)
		}
		c.biasOff = doseVars
		c.kGamma = in.Node.KGammaBody
	}
	c.NVar = doseVars + c.nBias
	if !co.DoseOff {
		c.Blocks = append(c.Blocks, ActuatorBlock{Name: "dose-poly", Off: 0, N: c.NG, Lo: co.DoseLo, Hi: co.DoseHi})
		if co.BothLayers {
			c.Blocks = append(c.Blocks, ActuatorBlock{Name: "dose-active", Off: c.NG, N: c.NG, Lo: co.DoseLo, Hi: co.DoseHi})
		}
	}
	if c.nBias > 0 {
		c.Blocks = append(c.Blocks, ActuatorBlock{Name: "bias", Off: c.biasOff, N: c.nBias, Lo: co.BiasLo, Hi: co.BiasHi})
	}

	// Objective diagonal and linear term over the actuator variables.
	ds := tech.DoseSensitivity
	c.dosePD = make([]float64, c.NVar)
	c.doseQ = make([]float64, c.NVar)
	if !co.DoseOff {
		for id := range in.Circ.Gates {
			g := c.gridOf[id]
			if g < 0 {
				continue
			}
			c.dosePD[g] += 2 * model.Alpha[id] * ds * ds
			c.doseQ[g] += model.Beta[id] * ds
			if co.BothLayers {
				c.doseQ[c.NG+g] += model.Gamma[id] * ds
			}
		}
	}
	if c.nBias > 0 {
		// Bias leakage model per gate: AlphaB·b² + BetaB·b, aggregated
		// per shared domain variable.
		for id := range in.Circ.Gates {
			dom := c.domainOf[id]
			if dom < 0 {
				continue
			}
			c.dosePD[c.biasOff+dom] += 2 * model.AlphaB[id]
			c.doseQ[c.biasOff+dom] += model.BetaB[id]
		}
	}
	c.cutPD = append([]float64(nil), c.dosePD...)
	if co.BothLayers {
		// The active-layer objective is exactly linear (leakage is linear
		// in gate width), which leaves those variables without curvature
		// and slows the first-order QP solver badly.  A tiny quadratic
		// regularization — three orders below the poly curvature — fixes
		// conditioning while perturbing the optimum negligibly.
		reg := 0.0
		for g := 0; g < c.NG; g++ {
			if c.cutPD[g] > reg {
				reg = c.cutPD[g]
			}
		}
		reg *= 1e-2
		if reg <= 0 {
			reg = 1e-6
		}
		for g := 0; g < c.NG; g++ {
			c.cutPD[c.NG+g] += reg
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: compile canceled: %w", err)
	}

	// Per-gate delay sensitivity rows concatenated over blocks.
	nGates := in.Circ.NumGates()
	c.sensPtr = make([]int, nGates+1)
	for id := 0; id < nGates; id++ {
		c.sensPtr[id] = len(c.sensCol)
		if !co.DoseOff {
			if g := c.gridOf[id]; g >= 0 {
				c.sensCol = append(c.sensCol, g)
				c.sensVal = append(c.sensVal, model.A[id]*ds)
				if co.BothLayers {
					c.sensCol = append(c.sensCol, c.NG+g)
					c.sensVal = append(c.sensVal, model.B[id]*ds)
				}
			}
		}
		if c.nBias > 0 {
			if dom := c.domainOf[id]; dom >= 0 {
				c.sensCol = append(c.sensCol, c.biasOff+dom)
				c.sensVal = append(c.sensVal, model.DB[id])
			}
		}
	}
	c.sensPtr[nGates] = len(c.sensCol)

	// Fixed constraint prefix of the cut engine.
	c.fixedA, c.fixedL, c.fixedU = compileFixedRows(grid, c.NG, c.NVar, co, c.Blocks)

	// Pruning state (node assembly) and the QCP lower bound.
	worstDelta := func(id int) float64 { return maxDelayDeltaFor(model, co, id) }
	c.worstArr, _ = linearArrivalsOrder(golden, order, worstDelta)
	c.worstSuf = linearSuffixOrder(golden, order, worstDelta)
	_, c.fastMCT = linearArrivalsOrder(golden, order, func(id int) float64 {
		if in.Masters[id] == nil {
			return 0
		}
		return minDelayDeltaFor(model, co, id)
	})

	c.snapMarginNW = snapLeakMargin(model)
	c.nomLeakUW = nominalLeak(golden)

	obs.Add(ctx, "core/compile_misses", 1)
	obs.Add(ctx, "core/compile_ns", time.Since(start).Nanoseconds())
	obs.Set(ctx, "core/actuator_blocks", float64(len(c.Blocks)))
	if c.nBias > 0 {
		obs.Set(ctx, "core/bias_domains", float64(c.nBias))
	}
	return c, nil
}

// compileFixedRows assembles the fixed constraint prefix over the
// actuator blocks: box rows per block in block order (Eq. 3/8 for dose,
// the bias voltage box for bias domains), then the dose smoothness rows
// (Eq. 4/9) — bias domains have no smoothness coupling — plus the Tiled
// seam rows.  The triplet route keeps the compiled pattern bit-identical
// to the historical single-matrix assembly (including the degenerate
// 1-cell grids whose seam entries cancel to empty rows); with the dose
// blocks alone it reduces exactly to the pre-actuator emission order.
func compileFixedRows(grid dosemap.Grid, nG, nVar int, co CompileOptions, blocks []ActuatorBlock) (*qp.CSR, []float64, []float64) {
	nLayers := 1
	if co.BothLayers {
		nLayers = 2
	}
	if co.DoseOff {
		nLayers = 0
	}
	type entry struct {
		r, c int
		v    float64
	}
	var entries []entry
	var l, u []float64
	row := 0
	addRow := func(lo, hi float64) int {
		l = append(l, lo)
		u = append(u, hi)
		r := row
		row++
		return r
	}
	for _, b := range blocks {
		for k := 0; k < b.N; k++ {
			r := addRow(b.Lo, b.Hi)
			entries = append(entries, entry{r, b.Off + k, 1})
		}
	}
	for layer := 0; layer < nLayers; layer++ {
		off := layer * nG
		for i := 0; i < grid.M; i++ {
			for j := 0; j < grid.N; j++ {
				a := grid.Flat(i, j)
				if j+1 < grid.N {
					r := addRow(-co.Delta, co.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i, j+1), -1})
				}
				if i+1 < grid.M {
					r := addRow(-co.Delta, co.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i+1, j), -1})
				}
				if i+1 < grid.M && j+1 < grid.N {
					r := addRow(-co.Delta, co.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i+1, j+1), -1})
				}
			}
		}
	}
	if co.Tiled {
		// Seam smoothness: tiling copies of the field places the last
		// column/row against the first of the next copy.
		for layer := 0; layer < nLayers; layer++ {
			off := layer * nG
			for i := 0; i < grid.M; i++ {
				r := addRow(-co.Delta, co.Delta)
				entries = append(entries, entry{r, off + grid.Flat(i, grid.N-1), 1},
					entry{r, off + grid.Flat(i, 0), -1})
			}
			for j := 0; j < grid.N; j++ {
				r := addRow(-co.Delta, co.Delta)
				entries = append(entries, entry{r, off + grid.Flat(grid.M-1, j), 1},
					entry{r, off + grid.Flat(0, j), -1})
			}
		}
	}
	tr := qp.NewTriplet(row, nVar)
	for _, e := range entries {
		tr.Add(e.r, e.c, e.v)
	}
	return tr.Compile(), l, u
}

// gateGrid maps every cell to its flat grid index.
func gateGrid(in sta.Input, grid dosemap.Grid) []int {
	g := make([]int, in.Circ.NumGates())
	for id, gate := range in.Circ.Gates {
		if gate.Kind != netlist.Comb && gate.Kind != netlist.Seq {
			g[id] = -1
			continue
		}
		i, j := grid.Index(in.Pl.X[id], in.Pl.Y[id])
		g[id] = grid.Flat(i, j)
	}
	return g
}

// maxDelayDeltaFor returns the gate's largest possible delay increase
// over the active actuator boxes (used for conservative pruning);
// minDelayDeltaFor the largest possible decrease (most negative delta).
func maxDelayDeltaFor(model *Model, co CompileOptions, id int) float64 {
	ds := tech.DoseSensitivity
	v := 0.0
	if !co.DoseOff {
		// A·Ds·d maximal at d = DoseLo (Ds<0, A≥0); B·Ds·d maximal at DoseHi.
		v = model.A[id] * ds * co.DoseLo
		if co.BothLayers {
			v += model.B[id] * ds * co.DoseHi
		}
	}
	if co.BiasGridUm > 0 && model.DB != nil {
		// DB ≤ 0: delay grows most at the deepest reverse bias.
		v += model.DB[id] * co.BiasLo
	}
	return math.Max(v, 0)
}

func minDelayDeltaFor(model *Model, co CompileOptions, id int) float64 {
	ds := tech.DoseSensitivity
	v := 0.0
	if !co.DoseOff {
		v = model.A[id] * ds * co.DoseHi
		if co.BothLayers {
			v += model.B[id] * ds * co.DoseLo
		}
	}
	if co.BiasGridUm > 0 && model.DB != nil {
		v += model.DB[id] * co.BiasHi
	}
	return math.Min(v, 0)
}

// linearArrivals runs a forward pass over the frozen golden arc delays
// with the given per-gate delay deltas, returning per-gate output
// arrivals and the resulting MCT.  This is the optimizer's linear timing
// model (Eq. 5/10) evaluated at a concrete dose assignment.
func linearArrivals(golden *sta.Result, delta func(id int) float64) ([]float64, float64) {
	order, _ := golden.In.Circ.TopoOrder()
	return linearArrivalsOrder(golden, order, delta)
}

// linearArrivalsOrder is linearArrivals borrowing a precomputed
// topological order (the compile artifact's), saving the per-call sort.
func linearArrivalsOrder(golden *sta.Result, order []int, delta func(id int) float64) ([]float64, float64) {
	in := golden.In
	n := in.Circ.NumGates()
	arr := make([]float64, n)
	// Launches first (order does not cover FF-out edges).
	for id, g := range in.Circ.Gates {
		if g.Kind == netlist.Seq {
			arr[id] = golden.AOut[id] + delta(id)
		}
	}
	mct := 0.0
	for _, id := range order {
		g := in.Circ.Gates[id]
		switch g.Kind {
		case netlist.Comb:
			best := 0.0
			for _, fi := range g.Fanins {
				if a := arr[fi] + golden.ArcDelay(fi, id) + delta(id); a > best {
					best = a
				}
			}
			arr[id] = best
		case netlist.PO, netlist.Seq:
			best := 0.0
			for _, fi := range g.Fanins {
				if a := arr[fi] + golden.ArcDelay(fi, id); a > best {
					best = a
				}
			}
			if g.Kind == netlist.PO {
				arr[id] = best
				if best > mct {
					mct = best
				}
			} else if e := best + golden.EndWeight(id); e > mct {
				mct = e
			}
		}
	}
	return arr, mct
}

// linearSuffixOrder computes, per gate, the largest downstream delay to
// any endpoint under the given per-gate deltas (analogous to the
// path-search suffix but on the linear model), over a precomputed
// topological order.
func linearSuffixOrder(golden *sta.Result, order []int, delta func(id int) float64) []float64 {
	in := golden.In
	n := in.Circ.NumGates()
	suf := make([]float64, n)
	for i := range suf {
		suf[i] = math.Inf(-1)
	}
	relax := func(id int) {
		g := in.Circ.Gates[id]
		best := math.Inf(-1)
		for _, fo := range g.Fanouts {
			fog := in.Circ.Gates[fo]
			arc := golden.ArcDelay(id, fo)
			var v float64
			switch fog.Kind {
			case netlist.PO, netlist.Seq:
				v = arc + golden.EndWeight(fo)
			default:
				if math.IsInf(suf[fo], -1) {
					continue
				}
				v = arc + delta(fo) + suf[fo]
			}
			if v > best {
				best = v
			}
		}
		suf[id] = best
	}
	for i := len(order) - 1; i >= 0; i-- {
		if in.Circ.Gates[order[i]].Kind != netlist.Seq {
			relax(order[i])
		}
	}
	for id, g := range in.Circ.Gates {
		if g.Kind == netlist.Seq {
			relax(id)
		}
	}
	return suf
}

// predict evaluates the linear timing model and Eq. 2 leakage model at a
// solution.
func (c *Compiled) predict(layers dosemap.Layers) (mct, dleakNW float64) {
	ds := tech.DoseSensitivity
	deltaOf := func(id int) float64 {
		gidx := c.gridOf[id]
		if gidx < 0 {
			return 0
		}
		v := c.Model.A[id] * ds * layers.Poly.D[gidx]
		if c.Opts.BothLayers && layers.Active != nil {
			v += c.Model.B[id] * ds * layers.Active.D[gidx]
		}
		return v
	}
	_, mct = linearArrivalsOrder(c.Golden, c.order, deltaOf)
	n := c.Golden.In.Circ.NumGates()
	dP := make([]float64, n)
	var dA []float64
	if c.Opts.BothLayers && layers.Active != nil {
		dA = make([]float64, n)
	}
	for id := 0; id < n; id++ {
		if g := c.gridOf[id]; g >= 0 {
			dP[id] = layers.Poly.D[g]
			if dA != nil {
				dA[id] = layers.Active.D[g]
			}
		}
	}
	return mct, c.Model.DeltaLeak(dP, dA)
}
