package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dosemap"
	"repro/internal/gen"
	"repro/internal/sta"
)

// waferComp compiles one shared artifact for wafer tests (all fields
// print the same design, so every wafer run reuses this).
func waferComp(t testing.TB, scale float64) *Compiled {
	t.Helper()
	d, err := gen.Generate(gen.AES65().Scaled(scale))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := GoldenNominal(d, sta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	comp, err := Compile(golden, model, opt.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// smokeWafer is the tiny end-to-end layout: 58×58 mm fields on a
// 300 mm wafer give 12 fields in 4 scan columns — the smallest layout
// with both multi-field columns and column-signature dedup.
func smokeWafer() WaferOptions {
	return WaferOptions{
		FieldWmm: 58, FieldHmm: 58,
		Fingerprint: dosemap.RadialCD{Center: -2, Edge: 4, Power: 2},
	}
}

func runWafer(t testing.TB, comp *Compiled, workers int, wopt WaferOptions, proc []int) *WaferResult {
	t.Helper()
	opt := DefaultOptions()
	opt.Workers = workers
	r, err := SolveWafer(context.Background(), WaferRequest{
		Compiled: comp, Opt: opt, Wafer: wopt, procOrder: proc,
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return r
}

// waferBitsEq asserts two wafer results are bit-identical in every
// float a caller can observe: per-field dose maps and signoffs, the
// common target, the spreads and the consensus trace.
func waferBitsEq(t *testing.T, a, b *WaferResult) {
	t.Helper()
	if math.Float64bits(a.TauPs) != math.Float64bits(b.TauPs) {
		t.Fatalf("TauPs differs: %v vs %v", a.TauPs, b.TauPs)
	}
	bitsEqSlice(t, "spreads",
		[]float64{a.UniformSpreadPct, a.UncoupledSpreadPct, a.CoupledSpreadPct},
		[]float64{b.UniformSpreadPct, b.UncoupledSpreadPct, b.CoupledSpreadPct})
	bitsEqSlice(t, "residuals", a.Residuals, b.Residuals)
	if len(a.Fields) != len(b.Fields) {
		t.Fatalf("field count differs: %d vs %d", len(a.Fields), len(b.Fields))
	}
	for i := range a.Fields {
		fa, fb := &a.Fields[i], &b.Fields[i]
		bitsEqSlice(t, "field dose", fa.Dose.D, fb.Dose.D)
		bitsEqSlice(t, "field signoffs",
			[]float64{fa.Uniform.MCTps, fa.Uniform.LeakUW, fa.Uncoupled.MCTps, fa.Uncoupled.LeakUW, fa.Coupled.MCTps, fa.Coupled.LeakUW, fa.UncoupledPredMCT},
			[]float64{fb.Uniform.MCTps, fb.Uniform.LeakUW, fb.Uncoupled.MCTps, fb.Uncoupled.LeakUW, fb.Coupled.MCTps, fb.Coupled.LeakUW, fb.UncoupledPredMCT})
	}
	for col, pa := range a.Profiles {
		bitsEqSlice(t, "profile", pa, b.Profiles[col])
	}
}

// checkWaferClaims asserts the experiment's claim on any wafer result:
// the coupled consensus solve equalizes the wafer (spread strictly
// below both the uniform-dose and the uncoupled baselines) without
// blowing the shared leakage budget.
func checkWaferClaims(t *testing.T, r *WaferResult) {
	t.Helper()
	if !(r.CoupledSpreadPct < r.UncoupledSpreadPct) {
		t.Errorf("coupled spread %.4f%% not below uncoupled %.4f%%", r.CoupledSpreadPct, r.UncoupledSpreadPct)
	}
	if !(r.CoupledSpreadPct < r.UniformSpreadPct) {
		t.Errorf("coupled spread %.4f%% not below uniform %.4f%%", r.CoupledSpreadPct, r.UniformSpreadPct)
	}
	for i := range r.Fields {
		f := &r.Fields[i]
		// ξ = 0 here, so each field's coupled leakage must stay at the
		// nominal level up to model-vs-signoff slack.
		if f.Coupled.LeakUW > r.NomLeakUW*1.02 {
			t.Errorf("field (%d,%d): coupled leakage %.2f µW exceeds budget around nominal %.2f µW",
				f.Col, f.Row, f.Coupled.LeakUW, r.NomLeakUW)
		}
		if f.Coupled.MCTps > r.TauPs*1.02 {
			t.Errorf("field (%d,%d): coupled MCT %.2f ps far above target %.2f ps",
				f.Col, f.Row, f.Coupled.MCTps, r.TauPs)
		}
	}
}

// TestWaferSmoke is the CI smoke gate (`make wafer-smoke`): a tiny
// 12-field wafer solved end-to-end, serial versus parallel, must be
// bit-identical and satisfy the equalization claim.
func TestWaferSmoke(t *testing.T) {
	comp := waferComp(t, 0.05)
	serial := runWafer(t, comp, 1, smokeWafer(), nil)
	parallel := runWafer(t, comp, 2, smokeWafer(), nil)
	waferBitsEq(t, serial, parallel)
	checkWaferClaims(t, serial)
	t.Logf("fields=%d groups=%d τ̄=%.1f ps spreads: uniform %.3f%% uncoupled %.3f%% coupled %.4f%% (outer %d, solves %d, residuals %v)",
		len(serial.Fields), serial.Groups, serial.TauPs,
		serial.UniformSpreadPct, serial.UncoupledSpreadPct, serial.CoupledSpreadPct,
		serial.OuterIters, serial.FieldSolves, serial.Residuals)
	if serial.Groups < 2 {
		t.Errorf("smoke wafer collapsed to %d consensus group(s); layout too degenerate to exercise dedup", serial.Groups)
	}
	if len(serial.Fields) != 12 {
		t.Errorf("smoke wafer has %d fields, want 12", len(serial.Fields))
	}
}

// TestWaferWorkerBitIdentity is the wafer determinism gate, same
// discipline as TestQCPWorkerBitIdentity: the full three-stage wafer
// solve must be bit-identical at workers 1, 2 and 8 AND under a
// shuffled field-solve dispatch order, because consensus averaging
// runs serially per group and every result lands in an index-owned
// slot.
func TestWaferWorkerBitIdentity(t *testing.T) {
	comp := waferComp(t, 0.05)
	wopt := smokeWafer()
	base := runWafer(t, comp, 1, wopt, nil)
	for _, w := range []int{2, 8} {
		waferBitsEq(t, base, runWafer(t, comp, w, wopt, nil))
	}
	// Reversed dispatch order: group i is handed to par.Map slot
	// len-1-i, so completion order is scrambled relative to the
	// canonical run while the slots stay index-owned.
	perm := make([]int, base.Groups)
	for i := range perm {
		perm[i] = len(perm) - 1 - i
	}
	waferBitsEq(t, base, runWafer(t, comp, 8, wopt, perm))
}

// TestWaferConsensusConvergence is the convergence property suite: on
// randomized radial CD signatures the consensus residual must fall
// monotonically after burn-in, fields of a scan column must exit with
// an identical shared slit profile, and the coupled spread must not
// exceed the uncoupled one.
func TestWaferConsensusConvergence(t *testing.T) {
	comp := waferComp(t, 0.05)
	rng := rand.New(rand.NewSource(80801))
	for trial := 0; trial < 3; trial++ {
		wopt := smokeWafer()
		wopt.Fingerprint = dosemap.RadialCD{
			Center: -3 + 4*rng.Float64(),  // [-3, 1] nm
			Edge:   rng.Float64() * 4,     // [0, 4] nm
			Power:  1.5 + rng.Float64()*2, // [1.5, 3.5]
		}
		r := runWafer(t, comp, 2, wopt, nil)

		// Residual trace: monotone non-increasing after one burn-in
		// iteration.
		for i := 2; i < len(r.Residuals); i++ {
			if r.Residuals[i] > r.Residuals[i-1]+1e-12 {
				t.Errorf("trial %d: residual rose at outer iter %d: %.3e -> %.3e (trace %v)",
					trial, i, r.Residuals[i-1], r.Residuals[i], r.Residuals)
			}
		}

		// Exit profiles: every field of a scan column agrees with the
		// column's shared consensus profile.  The physical dose map
		// differs from the effective one by a uniform shift, which the
		// zero-mean deviation cancels, so the check runs on the
		// published maps directly.
		dev := make([]float64, comp.Grid.N)
		for i := range r.Fields {
			f := &r.Fields[i]
			slitDeviation(f.Dose.D, comp.Grid, dev)
			z := r.Profiles[f.Col]
			if z == nil {
				t.Fatalf("trial %d: no profile for column %d", trial, f.Col)
			}
			for j := range dev {
				if math.Abs(dev[j]-z[j]) > 1e-4 {
					t.Errorf("trial %d: field (%d,%d) slit deviation [%d] = %.6f differs from consensus %.6f",
						trial, f.Col, f.Row, j, dev[j], z[j])
					break
				}
			}
		}

		if r.CoupledSpreadPct > r.UncoupledSpreadPct {
			t.Errorf("trial %d: coupled spread %.4f%% exceeds uncoupled %.4f%%",
				trial, r.CoupledSpreadPct, r.UncoupledSpreadPct)
		}
	}
}

// BenchmarkWaferSolve times the full three-stage wafer solve on the
// tiny 12-field layout (shared compile excluded, as in production use).
func BenchmarkWaferSolve(b *testing.B) {
	comp := waferComp(b, 0.05)
	wopt := smokeWafer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := DefaultOptions()
		r, err := SolveWafer(context.Background(), WaferRequest{Compiled: comp, Opt: opt, Wafer: wopt})
		if err != nil {
			b.Fatal(err)
		}
		_ = r
	}
}
