package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/dosemap"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/qp"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Options configures a DMopt run.
type Options struct {
	// G is the grid granularity in µm (Section II-B; the paper sweeps
	// 5, 10, 30 and 50 µm).
	G float64
	// Delta is the dose smoothness bound δ in percent (Eq. 4/9).
	Delta float64
	// DoseLo, DoseHi are the equipment correction range L, U in percent
	// (Eq. 3/8; ±5% for DoseMapper).
	DoseLo, DoseHi float64
	// BothLayers enables simultaneous poly+active optimization
	// (Section III-B); otherwise poly-only (Section III-A).
	BothLayers bool
	// XiNW is the Δleakage budget ξ in nW for the QCP (Eq. 7/12).
	XiNW float64
	// Snap rounds grid doses to the characterized library steps before
	// golden signoff (footnote 7).
	Snap bool
	// Tiled adds seam smoothness constraints between opposite map edges
	// so the optimized field can be stepped side-by-side across the
	// wafer (Section II-B: "multiple copies of the dose map solution
	// are tiled horizontally and vertically").
	Tiled bool
	// BisectTol is the relative clock-period tolerance of the QCP
	// bisection.
	BisectTol float64
	// SeedTau warm-brackets the QCP bisection: a clock period (ps) that a
	// related run — the previous table row or sweep point — found
	// feasible.  When it falls inside the fresh [lo, hi] interval the
	// bisection probes a tight bracket around it first instead of
	// halving from scratch; a stale seed costs at most two probes and
	// still narrows the interval.  Zero disables the hint.
	SeedTau float64
	// MaxProbes bounds the QCP bisection length.
	MaxProbes int
	// Method selects the solve engine: the default cutting-plane engine
	// or the node-based arrival-variable assembly (kept for
	// cross-validation; slower to converge under ADMM).
	Method Method
	// CutRounds, CutsPerRound and CutTolPs tune the cutting-plane engine
	// (zero values select sensible defaults).
	CutRounds    int
	CutsPerRound int
	CutTolPs     float64
	// QP tunes the inner solver.
	QP qp.Settings
	// STA sets golden-analysis boundary conditions.
	STA sta.Config
	// Workers is the one knob that reaches every layer: golden STA
	// levels, solver reductions, and model fitting all fan out on up to
	// Workers goroutines.  Zero selects runtime.GOMAXPROCS(0).  Results
	// are bit-identical for every worker count.
	Workers int
	// Speculate lets the QCP bisection run probes concurrently,
	// sharing the cut pool under a mutex.  Off by default because the
	// extra probes enrich the pool and thereby change (slightly) the
	// warm-start trajectory: the result is still a valid optimum but
	// not bit-identical to the serial bisection.
	Speculate bool
}

// normalized propagates the top-level Workers knob into the nested
// solver and STA configurations (without overriding explicit per-layer
// settings).
func (o Options) normalized() Options {
	if o.QP.Workers == 0 {
		o.QP.Workers = o.Workers
	}
	if o.STA.Workers == 0 {
		o.STA.Workers = o.Workers
	}
	return o
}

// Method selects the DMopt solve engine.
type Method int

const (
	// MethodCuts solves the QP over dose variables with on-demand path
	// cuts (default).
	MethodCuts Method = iota
	// MethodNode solves the full node-based assembly with arrival-time
	// variables (Eq. 5/10 verbatim).
	MethodNode
)

// DefaultOptions returns the paper's main configuration: 5 µm grids,
// δ = 2, ±5% dose range, poly-only, ξ = 0 (no leakage increase allowed).
func DefaultOptions() Options {
	set := qp.DefaultSettings()
	// The outer cut-generation loop supplies the real convergence test
	// (model MCT against τ), so the inner ADMM solves run on a modest
	// budget; this is ~15x faster than solving every QP to 1e-4 with no
	// measurable change in the optimized dose maps.
	set.MaxIter = 1500
	set.EpsAbs, set.EpsRel = 3e-4, 3e-4
	return Options{
		G:         5,
		Delta:     2,
		DoseLo:    -5,
		DoseHi:    5,
		XiNW:      0,
		Snap:      true,
		BisectTol: 1e-3,
		MaxProbes: 24,
		QP:        set,
		STA:       sta.DefaultConfig(),
	}
}

// Eval is a golden-signoff snapshot.
type Eval struct {
	MCTps  float64
	LeakUW float64
}

// Result is the outcome of a DMopt run.
type Result struct {
	// Layers holds the optimized dose maps (Active nil for poly-only).
	Layers dosemap.Layers
	// PredMCT is the linear-model minimum cycle time under the solution.
	PredMCT float64
	// PredDeltaLeakNW is the model Δleakage of the solution (Eq. 2).
	PredDeltaLeakNW float64
	// Nominal and Golden are signoff snapshots before and after.
	Nominal, Golden Eval
	// Probes counts QCP bisection iterations (1 for the plain QP).
	Probes int
	// ArrivalVars is the number of timing-relevant gates given arrival
	// variables after pruning.
	ArrivalVars int
	// Rows and Cols are the assembled constraint-matrix dimensions.
	Rows, Cols int
	// Status reports the final solver status.
	Status string
	// Runtime is the wall-clock optimization time.
	Runtime time.Duration
}

// problem is an assembled DMopt instance ready for (repeated) solving.
type problem struct {
	in     sta.Input
	opt    Options
	model  *Model
	golden *sta.Result
	grid   dosemap.Grid

	nG, nVar int
	arrIdx   []int // gate → arrival-variable index, or -1
	gridOf   []int // gate → flat grid index, or -1 for ports

	qpProb   *qp.Problem
	l, u     []float64
	endRows  []endRow
	worstArr []float64
	Rows     int
}

type endRow struct {
	row int
	off float64 // row bound is τ − off
}

// gateGrid maps every cell to its flat grid index.
func gateGrid(in sta.Input, grid dosemap.Grid) []int {
	g := make([]int, in.Circ.NumGates())
	for id, gate := range in.Circ.Gates {
		if gate.Kind != netlist.Comb && gate.Kind != netlist.Seq {
			g[id] = -1
			continue
		}
		i, j := grid.Index(in.Pl.X[id], in.Pl.Y[id])
		g[id] = grid.Flat(i, j)
	}
	return g
}

// maxDelayDelta returns each gate's largest possible delay increase under
// the dose range (used for conservative pruning), and minDelayDelta the
// largest possible decrease (most negative delta).
func (p *problem) maxDelayDelta(id int) float64 {
	ds := tech.DoseSensitivity
	// A·Ds·d maximal at d = DoseLo (Ds<0, A≥0); B·Ds·d maximal at DoseHi.
	v := p.model.A[id] * ds * p.opt.DoseLo
	if p.opt.BothLayers {
		v += p.model.B[id] * ds * p.opt.DoseHi
	}
	return math.Max(v, 0)
}

func (p *problem) minDelayDelta(id int) float64 {
	ds := tech.DoseSensitivity
	v := p.model.A[id] * ds * p.opt.DoseHi
	if p.opt.BothLayers {
		v += p.model.B[id] * ds * p.opt.DoseLo
	}
	return math.Min(v, 0)
}

// linearArrivals runs a forward pass over the frozen golden arc delays
// with the given per-gate delay deltas, returning per-gate output
// arrivals and the resulting MCT.  This is the optimizer's linear timing
// model (Eq. 5/10) evaluated at a concrete dose assignment.
func linearArrivals(golden *sta.Result, delta func(id int) float64) ([]float64, float64) {
	in := golden.In
	order, _ := in.Circ.TopoOrder()
	n := in.Circ.NumGates()
	arr := make([]float64, n)
	// Launches first (order does not cover FF-out edges).
	for id, g := range in.Circ.Gates {
		if g.Kind == netlist.Seq {
			arr[id] = golden.AOut[id] + delta(id)
		}
	}
	mct := 0.0
	for _, id := range order {
		g := in.Circ.Gates[id]
		switch g.Kind {
		case netlist.Comb:
			best := 0.0
			for _, fi := range g.Fanins {
				if a := arr[fi] + golden.ArcDelay(fi, id) + delta(id); a > best {
					best = a
				}
			}
			arr[id] = best
		case netlist.PO, netlist.Seq:
			best := 0.0
			for _, fi := range g.Fanins {
				if a := arr[fi] + golden.ArcDelay(fi, id); a > best {
					best = a
				}
			}
			if g.Kind == netlist.PO {
				arr[id] = best
				if best > mct {
					mct = best
				}
			} else if e := best + golden.EndWeight(id); e > mct {
				mct = e
			}
		}
	}
	return arr, mct
}

// linearSuffix computes, per gate, the largest downstream delay to any
// endpoint under the given per-gate deltas (analogous to the path-search
// suffix but on the linear model).
func linearSuffix(golden *sta.Result, delta func(id int) float64) []float64 {
	in := golden.In
	order, _ := in.Circ.TopoOrder()
	n := in.Circ.NumGates()
	suf := make([]float64, n)
	for i := range suf {
		suf[i] = math.Inf(-1)
	}
	relax := func(id int) {
		g := in.Circ.Gates[id]
		best := math.Inf(-1)
		for _, fo := range g.Fanouts {
			fog := in.Circ.Gates[fo]
			arc := golden.ArcDelay(id, fo)
			var v float64
			switch fog.Kind {
			case netlist.PO, netlist.Seq:
				v = arc + golden.EndWeight(fo)
			default:
				if math.IsInf(suf[fo], -1) {
					continue
				}
				v = arc + delta(fo) + suf[fo]
			}
			if v > best {
				best = v
			}
		}
		suf[id] = best
	}
	for i := len(order) - 1; i >= 0; i-- {
		if in.Circ.Gates[order[i]].Kind != netlist.Seq {
			relax(order[i])
		}
	}
	for id, g := range in.Circ.Gates {
		if g.Kind == netlist.Seq {
			relax(id)
		}
	}
	return suf
}

// assemble builds the QP instance.  pruneThresh is the linear-model path
// delay below which (under the slowest reachable dose) a gate can never
// constrain the clock period; tau0 initializes the endpoint bounds.
func assemble(golden *sta.Result, model *Model, opt Options, pruneThresh, tau0 float64) (*problem, error) {
	in := golden.In
	grid, err := dosemap.NewGrid(in.Pl.ChipW, in.Pl.ChipH, opt.G)
	if err != nil {
		return nil, err
	}
	p := &problem{in: in, opt: opt, model: model, golden: golden, grid: grid}
	p.gridOf = gateGrid(in, grid)
	p.nG = grid.Cells()
	nLayers := 1
	if opt.BothLayers {
		nLayers = 2
	}

	// Pruning: worst-case (slowest-dose) arrivals and suffixes.
	worstArr, _ := linearArrivals(golden, p.maxDelayDelta)
	worstSuf := linearSuffix(golden, p.maxDelayDelta)
	p.worstArr = worstArr
	n := in.Circ.NumGates()
	p.arrIdx = make([]int, n)
	nArr := 0
	base := nLayers * p.nG
	for id, g := range in.Circ.Gates {
		p.arrIdx[id] = -1
		if g.Kind != netlist.Comb && g.Kind != netlist.Seq {
			continue
		}
		if math.IsInf(worstSuf[id], -1) {
			continue // dead end: no path to an endpoint
		}
		if worstArr[id]+worstSuf[id] >= pruneThresh {
			p.arrIdx[id] = base + nArr
			nArr++
		}
	}
	p.nVar = base + nArr

	ds := tech.DoseSensitivity

	// Objective.
	pd := make([]float64, p.nVar) // diagonal of P
	q := make([]float64, p.nVar)
	for id := range in.Circ.Gates {
		gidx := p.gridOf[id]
		if gidx < 0 {
			continue
		}
		pd[gidx] += 2 * model.Alpha[id] * ds * ds
		q[gidx] += model.Beta[id] * ds
		if opt.BothLayers {
			q[p.nG+gidx] += model.Gamma[id] * ds
		}
	}
	ptr := qp.NewTriplet(p.nVar, p.nVar)
	for j, v := range pd {
		if v != 0 {
			ptr.Add(j, j, v)
		}
	}

	// Constraints: collect entries first (the row count is only known at
	// the end), then compile into CSR.
	type entry struct {
		r, c int
		v    float64
	}
	var entries []entry
	var l, u []float64
	row := 0
	addRow := func(lo, hi float64) int {
		l = append(l, lo)
		u = append(u, hi)
		r := row
		row++
		return r
	}
	add := func(r, c int, v float64) { entries = append(entries, entry{r, c, v}) }
	inf := math.Inf(1)

	// Box (Eq. 3/8).
	for layer := 0; layer < nLayers; layer++ {
		for g := 0; g < p.nG; g++ {
			r := addRow(opt.DoseLo, opt.DoseHi)
			add(r, layer*p.nG+g, 1)
		}
	}
	// Smoothness (Eq. 4/9): right, down, and down-right diagonal pairs.
	for layer := 0; layer < nLayers; layer++ {
		off := layer * p.nG
		for i := 0; i < grid.M; i++ {
			for j := 0; j < grid.N; j++ {
				a := grid.Flat(i, j)
				pairs := [][2]int{}
				if j+1 < grid.N {
					pairs = append(pairs, [2]int{a, grid.Flat(i, j+1)})
				}
				if i+1 < grid.M {
					pairs = append(pairs, [2]int{a, grid.Flat(i+1, j)})
				}
				if i+1 < grid.M && j+1 < grid.N {
					pairs = append(pairs, [2]int{a, grid.Flat(i+1, j+1)})
				}
				for _, pr := range pairs {
					r := addRow(-opt.Delta, opt.Delta)
					add(r, off+pr[0], 1)
					add(r, off+pr[1], -1)
				}
			}
		}
	}
	// Timing (Eq. 5/10).
	for id, g := range in.Circ.Gates {
		ai := p.arrIdx[id]
		if ai < 0 {
			continue
		}
		gidx := p.gridOf[id]
		switch g.Kind {
		case netlist.Seq:
			// Launch: a_s ≥ clk2q_nom + A·Ds·dP (+ B·Ds·dA).
			r := addRow(golden.AOut[id], inf)
			add(r, ai, 1)
			add(r, gidx, -model.A[id]*ds)
			if opt.BothLayers {
				add(r, p.nG+gidx, -model.B[id]*ds)
			}
		case netlist.Comb:
			for _, fi := range g.Fanins {
				arc := golden.ArcDelay(fi, id)
				r := addRow(0, inf) // filled below
				add(r, ai, 1)
				add(r, gidx, -model.A[id]*ds)
				if opt.BothLayers {
					add(r, p.nG+gidx, -model.B[id]*ds)
				}
				if fj := p.arrIdx[fi]; fj >= 0 {
					add(r, fj, -1)
					l[r] = arc
				} else {
					// Excluded driver: conservative constant arrival.
					l[r] = arc + worstArr[fi]
				}
			}
		}
	}
	// Endpoint rows: a_r ≤ τ − wire − endWeight for every endpoint fanin.
	for id, g := range in.Circ.Gates {
		if g.Kind != netlist.PO && g.Kind != netlist.Seq {
			continue
		}
		for _, fi := range g.Fanins {
			fj := p.arrIdx[fi]
			if fj < 0 {
				continue // pruned: cannot reach τ by construction
			}
			off := golden.ArcDelay(fi, id) + golden.EndWeight(id)
			r := addRow(-inf, tau0-off)
			add(r, fj, 1)
			p.endRows = append(p.endRows, endRow{row: r, off: off})
		}
	}

	tr := qp.NewTriplet(row, p.nVar)
	for _, e := range entries {
		tr.Add(e.r, e.c, e.v)
	}
	p.qpProb = &qp.Problem{P: ptr.Compile(), Q: q, A: tr.Compile(), L: l, U: u}
	p.l, p.u = l, u
	p.Rows = row
	return p, nil
}

// setBoundsTau rewrites the endpoint-row upper bounds for a new clock
// period probe and pushes them into the warm solver.
func (p *problem) setBoundsTau(s *qp.Solver, tau float64) error {
	for _, er := range p.endRows {
		p.u[er.row] = tau - er.off
	}
	return s.UpdateBounds(p.l, p.u)
}

// extract converts a QP solution into legalized dose maps.
func (p *problem) extract(x []float64) dosemap.Layers {
	poly := dosemap.NewMap(p.grid)
	copy(poly.D, x[:p.nG])
	poly.Legalize(p.opt.DoseLo, p.opt.DoseHi, p.opt.Delta, 50)
	layers := dosemap.Layers{Poly: poly}
	if p.opt.BothLayers {
		act := dosemap.NewMap(p.grid)
		copy(act.D, x[p.nG:2*p.nG])
		act.Legalize(p.opt.DoseLo, p.opt.DoseHi, p.opt.Delta, 50)
		layers.Active = act
	}
	return layers
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// signoff applies the layers to the design and runs golden STA + power.
func signoff(ctx context.Context, golden *sta.Result, opt Options, layers dosemap.Layers) (Eval, error) {
	in := golden.In
	dL, dW := layers.PerGate(in.Circ, in.Pl, opt.Snap)
	pert := &sta.Perturb{DL: dL, DW: dW}
	r, err := sta.AnalyzeCtx(ctx, in, opt.STA, pert)
	if err != nil {
		return Eval{}, err
	}
	return Eval{MCTps: r.MCT, LeakUW: power.Total(in.Masters, dL, dW)}, nil
}

// predict evaluates the linear timing model and Eq. 2 leakage model at a
// solution.
func (p *problem) predict(layers dosemap.Layers) (mct, dleakNW float64) {
	ds := tech.DoseSensitivity
	deltaOf := func(id int) float64 {
		gidx := p.gridOf[id]
		if gidx < 0 {
			return 0
		}
		v := p.model.A[id] * ds * layers.Poly.D[gidx]
		if p.opt.BothLayers && layers.Active != nil {
			v += p.model.B[id] * ds * layers.Active.D[gidx]
		}
		return v
	}
	_, mct = linearArrivals(p.golden, deltaOf)
	n := p.in.Circ.NumGates()
	dP := make([]float64, n)
	var dA []float64
	if p.opt.BothLayers && layers.Active != nil {
		dA = make([]float64, n)
	}
	for id := 0; id < n; id++ {
		if g := p.gridOf[id]; g >= 0 {
			dP[id] = layers.Poly.D[g]
			if dA != nil {
				dA[id] = layers.Active.D[g]
			}
		}
	}
	return mct, p.model.DeltaLeak(dP, dA)
}

// nominalLeak evaluates the zero-dose leakage in µW.
func nominalLeak(golden *sta.Result) float64 {
	return power.Total(golden.In.Masters, nil, nil)
}

// xiTolerance returns the leakage-budget acceptance tolerance in nW:
// one part in 10⁴ of the design's nominal leakage (the solver's dose
// precision maps to roughly this much objective noise), plus a relative
// term for large explicit budgets.
func xiTolerance(golden *sta.Result, xiNW float64) float64 {
	return 1e-6*math.Abs(xiNW) + 1e-4*nominalLeak(golden)*power.NWPerUW
}

// snapLeakMargin estimates the leakage the timing-safe snapping adds on
// top of the optimizer's solution: each grid dose rounds up by half a
// characterized step on average, shortening gates by |Ds|·step/2 nm, so
// the expected extra leakage is that length times Σ|β_p|.  The QCP
// subtracts this margin from its budget ξ so the golden signoff still
// lands within the requested leakage bound after rounding.
func snapLeakMargin(model *Model) float64 {
	sum := 0.0
	for _, b := range model.Beta {
		sum += math.Abs(b)
	}
	return math.Abs(tech.DoseSensitivity) * liberty.DoseStep / 2 * sum
}

// DMoptQP solves "Dose Map Optimization for Improved Leakage Under Timing
// Constraint" (Section III-A.1 / III-B.1): minimize Δleakage subject to
// MCT ≤ tau (ps) plus range and smoothness constraints.
func DMoptQP(golden *sta.Result, model *Model, opt Options, tau float64) (*Result, error) {
	return DMoptQPCtx(context.Background(), golden, model, opt, tau)
}

// DMoptQPCtx is DMoptQP with cancellation: a canceled context aborts
// the solve between cut rounds / ADMM iterations with an error that
// wraps context.Canceled.
func DMoptQPCtx(ctx context.Context, golden *sta.Result, model *Model, opt Options, tau float64) (*Result, error) {
	start := time.Now()
	ctx, sp := obs.Start(ctx, "core/qp")
	defer sp.End()
	opt = opt.normalized()
	if tau <= 0 {
		return nil, errors.New("core: non-positive timing constraint")
	}
	if opt.Method == MethodCuts {
		cs, err := newCutSolver(golden, model, opt)
		if err != nil {
			return nil, err
		}
		_, feasible, err := cs.solveTau(ctx, tau, math.Inf(1))
		if err != nil {
			return nil, err
		}
		if !feasible {
			return nil, fmt.Errorf("core: QP infeasible at τ = %.1f ps", tau)
		}
		r, err := cs.result(ctx, 1)
		if err != nil {
			return nil, err
		}
		r.Runtime = time.Since(start)
		return r, nil
	}
	prob, err := assemble(golden, model, opt, tau-1, tau)
	if err != nil {
		return nil, err
	}
	solver, err := qp.NewSolver(prob.qpProb, opt.QP)
	if err != nil {
		return nil, err
	}
	res, err := solver.SolveCtx(ctx)
	if err != nil {
		return nil, err
	}
	if res.Status == qp.PrimalInfeasible {
		return nil, fmt.Errorf("core: QP infeasible at τ = %.1f ps", tau)
	}
	return finish(ctx, prob, res, 1, start)
}

// DMoptQCP solves "Dose Map Optimization for Improved Timing Under
// Leakage Constraint" (Section III-A.2 / III-B.2): minimize the clock
// period subject to Δleakage ≤ ξ.  The quadratically constrained program
// is solved by monotone bisection on the clock period, using the QP as
// the feasibility oracle: minLeak(τ) is non-increasing in τ, so
// τ is feasible iff minLeak(τ) ≤ ξ.
func DMoptQCP(golden *sta.Result, model *Model, opt Options) (*Result, error) {
	return DMoptQCPCtx(context.Background(), golden, model, opt)
}

// DMoptQCPCtx is DMoptQCP with cancellation: a canceled context aborts
// the bisection between probes (and probes between cut rounds / ADMM
// iterations) with an error that wraps context.Canceled.
func DMoptQCPCtx(ctx context.Context, golden *sta.Result, model *Model, opt Options) (*Result, error) {
	start := time.Now()
	ctx, sp := obs.Start(ctx, "core/qcp")
	defer sp.End()
	opt = opt.normalized()
	// Lower bound: linear-model MCT at the fastest reachable dose.
	_, tLo := linearArrivals(golden, func(id int) float64 {
		if golden.In.Masters[id] == nil {
			return 0
		}
		return minDelayDeltaFor(model, opt, id)
	})
	tHi := golden.MCT
	if tLo >= tHi {
		tLo = tHi * 0.8
	}
	if opt.Snap {
		opt.XiNW -= snapLeakMargin(model)
	}
	if opt.Method == MethodCuts {
		return qcpByCuts(ctx, golden, model, opt, tLo, tHi, start)
	}
	prob, err := assemble(golden, model, opt, tLo-1, tHi)
	if err != nil {
		return nil, err
	}
	solver, err := qp.NewSolver(prob.qpProb, opt.QP)
	if err != nil {
		return nil, err
	}

	var best *qp.Result
	bestTau := tHi
	probes := 0
	lo, hi := tLo, tHi
	xiTol := xiTolerance(golden, opt.XiNW)
	for probes < opt.MaxProbes && (hi-lo) > opt.BisectTol*golden.MCT {
		mid := 0.5 * (lo + hi)
		if probes == 0 {
			mid = hi // first probe at the nominal period must be feasible
		}
		if err := prob.setBoundsTau(solver, mid); err != nil {
			return nil, err
		}
		res, err := solver.SolveCtx(ctx)
		if err != nil {
			return nil, err
		}
		probes++
		feasible := res.Status == qp.Solved && res.Obj <= opt.XiNW+xiTol &&
			prob.qpProb.MaxViolation(res.X) < 0.05
		if feasible {
			hi = mid
			best = res
			bestTau = mid
		} else {
			lo = mid
		}
	}
	if best == nil {
		return nil, errors.New("core: QCP bisection found no feasible clock period")
	}
	obs.Add(ctx, "core/qcp_probes", int64(probes))
	r, err := finish(ctx, prob, best, probes, start)
	if err != nil {
		return nil, err
	}
	if r.PredMCT > bestTau {
		r.PredMCT = bestTau
	}
	return r, nil
}

// qcpByCuts runs the clock-period bisection on the cutting-plane engine.
// The cut pool is shared across probes: a path cut is valid for every τ.
func qcpByCuts(ctx context.Context, golden *sta.Result, model *Model, opt Options, tLo, tHi float64, start time.Time) (*Result, error) {
	cs, err := newCutSolver(golden, model, opt)
	if err != nil {
		return nil, err
	}
	xiTol := xiTolerance(golden, opt.XiNW)
	var bestX []float64
	probes := 0
	lo, hi := tLo, tHi

	// probe solves one clock-period candidate and reports whether it
	// fits the leakage budget; solver trouble counts as infeasible
	// rather than aborting the whole bisection, but cancellation
	// propagates.
	probe := func(s *cutSolver, tau float64) (bool, error) {
		obj, feasible, err := s.solveTau(ctx, tau, opt.XiNW)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return false, err
			}
			return false, nil
		}
		return feasible && obj <= opt.XiNW+xiTol, nil
	}

	// First probe at the nominal period must be feasible.
	ok, err := probe(cs, hi)
	probes++
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errors.New("core: QCP bisection found no feasible clock period")
	}
	bestX = append(bestX[:0], cs.x...)

	// Warm bracket: when a related run already located the feasibility
	// frontier, probe a half-tolerance band around its period.  Both
	// probes landing as predicted collapses the interval to the stop
	// width — the log₂ bisection never runs; a moved frontier degrades
	// to ordinary bisection on a one-sided narrowed interval.
	if seed := opt.SeedTau; seed > lo && seed < hi && probes < opt.MaxProbes {
		guard := 0.5 * opt.BisectTol * golden.MCT
		up := math.Min(seed+guard, hi)
		ok, err := probe(cs, up)
		probes++
		if err != nil {
			return nil, err
		}
		if ok {
			hi = up
			bestX = append(bestX[:0], cs.x...)
			obs.Add(ctx, "core/bisect_bracket_hits", 1)
			if down := seed - guard; down > lo && probes < opt.MaxProbes &&
				(hi-lo) > opt.BisectTol*golden.MCT {
				ok, err = probe(cs, down)
				probes++
				if err != nil {
					return nil, err
				}
				if ok {
					hi = down
					bestX = append(bestX[:0], cs.x...)
				} else {
					lo = down
				}
			}
		} else {
			lo = up
		}
	}

	speculative := opt.Speculate && par.Workers(opt.Workers) > 1
	for probes < opt.MaxProbes && (hi-lo) > opt.BisectTol*golden.MCT {
		if speculative && opt.MaxProbes-probes >= 2 {
			// Trisect: two concurrent probes sharing the cut pool.
			// minLeak(τ) is non-increasing, so feasibility at m1 < m2
			// narrows the interval to a third per round.
			m1 := lo + (hi-lo)/3
			m2 := lo + 2*(hi-lo)/3
			p1, p2 := cs.clone(), cs.clone()
			baseRounds, baseSolves := cs.rounds, cs.solves
			res, err := par.Map(ctx, 2, 2, func(i int) (bool, error) {
				if i == 0 {
					return probe(p1, m1)
				}
				return probe(p2, m2)
			})
			if err != nil {
				return nil, err
			}
			probes += 2
			cs.rounds = baseRounds + (p1.rounds - baseRounds) + (p2.rounds - baseRounds)
			cs.solves = baseSolves + (p1.solves - baseSolves) + (p2.solves - baseSolves)
			switch {
			case res[0]:
				hi = m1
				cs.adopt(p1)
				bestX = append(bestX[:0], p1.x...)
			case res[1]:
				lo, hi = m1, m2
				cs.adopt(p2)
				bestX = append(bestX[:0], p2.x...)
			default:
				lo = m2
			}
			continue
		}
		mid := 0.5 * (lo + hi)
		ok, err := probe(cs, mid)
		probes++
		if err != nil {
			return nil, err
		}
		if ok {
			hi = mid
			bestX = append(bestX[:0], cs.x...)
		} else {
			lo = mid
		}
	}
	if bestX == nil {
		return nil, errors.New("core: QCP bisection found no feasible clock period")
	}
	obs.Add(ctx, "core/qcp_probes", int64(probes))
	copy(cs.x, bestX)
	r, err := cs.result(ctx, probes)
	if err != nil {
		return nil, err
	}
	if r.PredMCT > hi {
		r.PredMCT = hi
	}
	r.Runtime = time.Since(start)
	return r, nil
}

func minDelayDeltaFor(model *Model, opt Options, id int) float64 {
	ds := tech.DoseSensitivity
	v := model.A[id] * ds * opt.DoseHi
	if opt.BothLayers {
		v += model.B[id] * ds * opt.DoseLo
	}
	return math.Min(v, 0)
}

func finish(ctx context.Context, prob *problem, res *qp.Result, probes int, start time.Time) (*Result, error) {
	layers := prob.extract(res.X)
	predMCT, predLeak := prob.predict(layers)
	nominal := Eval{MCTps: prob.golden.MCT, LeakUW: power.Total(prob.in.Masters, nil, nil)}
	golden, err := signoff(ctx, prob.golden, prob.opt, layers)
	if err != nil {
		return nil, err
	}
	nArr := 0
	for _, v := range prob.arrIdx {
		if v >= 0 {
			nArr++
		}
	}
	return &Result{
		Layers:          layers,
		PredMCT:         predMCT,
		PredDeltaLeakNW: predLeak,
		Nominal:         nominal,
		Golden:          golden,
		Probes:          probes,
		ArrivalVars:     nArr,
		Rows:            prob.Rows,
		Cols:            prob.nVar,
		Status:          res.Status.String(),
		Runtime:         time.Since(start),
	}, nil
}
