package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/qp"
	"repro/internal/sta"
)

// cutPoolProblem runs one cut-generation QP on a scaled AES-65 instance
// and assembles the resulting problem — box and smoothness prefix plus
// every path cut the solve generated.  This is the real matrix the
// linear-system backends compete on: a banded grid Laplacian with short
// dense-ish cut rows appended.
func cutPoolProblem(tb testing.TB) (*qp.Problem, float64) {
	tb.Helper()
	return cutPoolProblemScaled(tb, 0.04)
}

// cutPoolProblemScaled is cutPoolProblem at an explicit design scale —
// the parallel-factor tests need an instance wide enough (n ≥ 256
// columns) to clear the backend's serial-below threshold.
func cutPoolProblemScaled(tb testing.TB, scale float64) (*qp.Problem, float64) {
	tb.Helper()
	d, err := gen.Generate(gen.AES65().Scaled(scale))
	if err != nil {
		tb.Fatal(err)
	}
	golden, err := GoldenNominal(d, sta.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	model, err := FitModel(golden, false)
	if err != nil {
		tb.Fatal(err)
	}
	opt := DefaultOptions()
	cs, err := newCutSolver(golden, model, opt)
	if err != nil {
		tb.Fatal(err)
	}
	tau := 0.99 * golden.MCT
	if _, feasible, err := cs.solveTau(context.Background(), tau, math.Inf(1)); err != nil || !feasible {
		tb.Fatalf("cut solve: feasible=%v err=%v", feasible, err)
	}
	if cs.pool.size() == 0 {
		tb.Fatal("cut solve generated no cuts; instance too easy to exercise the pool")
	}
	// Grid cells with no gates carry zero curvature and zero cost, so
	// the optimizer leaves them anywhere inside the smoothness polytope —
	// the optimum is not unique there and a cross-backend x comparison
	// would be ill-posed.  A ridge six orders below the real curvature
	// pins them without perturbing the meaningful coordinates.
	reg := 0.0
	for _, v := range cs.pd {
		if v > reg {
			reg = v
		}
	}
	reg *= 1e-6
	for j := range cs.pd {
		if cs.pd[j] == 0 {
			cs.pd[j] = reg
		}
	}
	return cs.buildProblem(tau, cs.pool.snapshot()), tau
}

// TestCutPoolBackendEquivalence solves the AES-derived cut-pool
// instance through both backends at tight tolerance and demands
// tolerance-identical optima.
func TestCutPoolBackendEquivalence(t *testing.T) {
	prob, _ := cutPoolProblem(t)

	solve := func(ls qp.LinSys) *qp.Result {
		set := qp.DefaultSettings()
		set.EpsAbs, set.EpsRel = 1e-9, 1e-9
		set.MaxIter = 400000
		set.CGTol = 1e-12
		set.LinSys = ls
		s, err := qp.NewSolver(prob, set)
		if err != nil {
			t.Fatalf("%v: %v", ls, err)
		}
		if got := s.Backend(); got != ls {
			t.Fatalf("forced backend %v but solver picked %v", ls, got)
		}
		res, err := s.SolveCtx(context.Background())
		if err != nil {
			t.Fatalf("%v: %v", ls, err)
		}
		return res
	}
	rcg := solve(qp.LinSysCG)
	rld := solve(qp.LinSysLDLT)

	if rcg.Status != rld.Status {
		t.Fatalf("status cg=%v ldlt=%v", rcg.Status, rld.Status)
	}
	diff := 0.0
	for j := range rcg.X {
		if d := math.Abs(rcg.X[j] - rld.X[j]); d > diff {
			diff = d
		}
	}
	if diff > 1e-6 {
		t.Errorf("‖x_cg − x_ldlt‖∞ = %g > 1e-6", diff)
	}
	for _, r := range []*qp.Result{rcg, rld} {
		if v := prob.MaxViolation(r.X); v > 1e-6 {
			t.Errorf("violation %g > 1e-6", v)
		}
		if g := kktResidual(prob, r.X, r.Y); g > 1e-6 {
			t.Errorf("KKT stationarity %g > 1e-6", g)
		}
	}
}

// kktResidual returns ‖Px + q + Aᵀy‖∞ at (x, y).
func kktResidual(p *qp.Problem, x, y []float64) float64 {
	r := make([]float64, len(x))
	if p.P != nil {
		p.P.MulVec(r, x)
	}
	for i := range r {
		r[i] += p.Q[i]
	}
	p.A.AddMulTVec(r, y)
	return qp.InfNorm(r)
}

// BenchmarkLinSys times a full ADMM solve of the cut-pool matrix under
// each backend at the production tolerance — the micro-benchmark behind
// the Auto default.
func BenchmarkLinSys(b *testing.B) {
	prob, _ := cutPoolProblem(b)
	for _, ls := range []qp.LinSys{qp.LinSysCG, qp.LinSysLDLT} {
		b.Run(ls.String(), func(b *testing.B) {
			set := qp.DefaultSettings()
			set.LinSys = ls
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := qp.NewSolver(prob, set)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.SolveCtx(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
