package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/qp"
	"repro/internal/sta"
)

// bitsEqSlice fails on the first element whose Float64bits differ.
func bitsEqSlice(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s length differs: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d] differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestParallelFactorBitIdentity is the direct factor-equivalence proof
// behind the elimination-tree scheduling: solving the AES cut-pool
// instance through the LDLᵀ backend at workers 1, 2 and 8 must leave
// bit-identical L and D factor entries — and a bit-identical solution —
// because the numeric kernel fixes the per-column accumulation order
// regardless of which worker runs the column.
//
// Scale 0.5 (n = 1225, a 35×35 grid) is the smallest AES instance
// whose elimination tree carries a comfortable margin of level sets at
// or above the 32-column dispatch threshold; smaller grids factor
// serially by design and would make this test vacuous, which the
// parallel-level counter assertion below guards against.
func TestParallelFactorBitIdentity(t *testing.T) {
	prob, _ := cutPoolProblemScaled(t, 0.5)

	type outcome struct {
		l, d, x []float64
		par     int64
	}
	solve := func(workers int) outcome {
		set := qp.DefaultSettings()
		set.LinSys = qp.LinSysLDLT
		set.Workers = workers
		s, err := qp.NewSolver(prob, set)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rec := obs.New()
		res, err := s.SolveCtx(obs.With(context.Background(), rec))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		l, d, ok := s.FactorEntries()
		if !ok {
			t.Fatalf("workers=%d: no live LDLᵀ factor after solve", workers)
		}
		return outcome{l, d, res.X, rec.Snapshot().Counters["qp/parallel_factor_levels"]}
	}

	base := solve(1)
	if base.par != 0 {
		t.Errorf("serial run reported %d parallel factor levels", base.par)
	}
	for _, w := range []int{2, 8} {
		r := solve(w)
		bitsEqSlice(t, "L", base.l, r.l)
		bitsEqSlice(t, "D", base.d, r.d)
		bitsEqSlice(t, "x", base.x, r.x)
		if r.par == 0 {
			t.Errorf("workers=%d never dispatched a parallel factor level; instance too small to exercise the schedule", w)
		}
	}
}

// qcpOnce runs the full QCP flow (cut-pool bisection with Newton-on-τ)
// on a shared compiled artifact at the given worker count.
func qcpOnce(t *testing.T, comp *Compiled, workers int) *Result {
	t.Helper()
	opt := DefaultOptions()
	opt.Workers = workers
	r, err := SolveQCP(context.Background(), QCPRequest{Compiled: comp, Opt: opt})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return r
}

// TestQCPWorkerBitIdentity is the end-to-end determinism gate for this
// PR's parallel numeric phase: the full QCP solve — golden STA, model
// fit, cut-pool bisection with warm-started Newton-on-τ, snap and
// signoff — must produce a bit-identical dose map and signoff at
// workers 1, 2 and 8, on every Table IV design (the four Table I
// presets, scaled down for test runtime).
func TestQCPWorkerBitIdentity(t *testing.T) {
	for _, p := range gen.Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			d, err := gen.Generate(p.Scaled(0.05))
			if err != nil {
				t.Fatal(err)
			}
			golden, err := GoldenNominal(d, sta.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			model, err := FitModel(golden, false)
			if err != nil {
				t.Fatal(err)
			}
			opt := DefaultOptions()
			comp, err := Compile(golden, model, opt.CompileOptions())
			if err != nil {
				t.Fatal(err)
			}

			base := qcpOnce(t, comp, 1)
			for _, w := range []int{2, 8} {
				r := qcpOnce(t, comp, w)
				if r.Probes != base.Probes {
					t.Errorf("workers=%d probes %d, want %d", w, r.Probes, base.Probes)
				}
				if math.Float64bits(r.PredMCT) != math.Float64bits(base.PredMCT) {
					t.Errorf("workers=%d PredMCT %v, want %v", w, r.PredMCT, base.PredMCT)
				}
				if math.Float64bits(r.Golden.MCTps) != math.Float64bits(base.Golden.MCTps) {
					t.Errorf("workers=%d signoff MCT %v, want %v", w, r.Golden.MCTps, base.Golden.MCTps)
				}
				if math.Float64bits(r.Golden.LeakUW) != math.Float64bits(base.Golden.LeakUW) {
					t.Errorf("workers=%d signoff leak %v, want %v", w, r.Golden.LeakUW, base.Golden.LeakUW)
				}
				bitsEqSlice(t, "dose map", base.Layers.Poly.D, r.Layers.Poly.D)
			}
		})
	}
}

// BenchmarkTauNewton times the full QCP bisection on a compiled AES
// instance — the loop the warm-started secant/Newton step accelerates.
// core/qcp_probes in -bench-json reports tell the same story at table
// scale.
func BenchmarkTauNewton(b *testing.B) {
	d, err := gen.Generate(gen.AES65().Scaled(0.05))
	if err != nil {
		b.Fatal(err)
	}
	golden, err := GoldenNominal(d, sta.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	model, err := FitModel(golden, false)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	comp, err := Compile(golden, model, opt.CompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveQCP(context.Background(), QCPRequest{Compiled: comp, Opt: opt}); err != nil {
			b.Fatal(err)
		}
	}
}
