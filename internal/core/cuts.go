// Cutting-plane solve stage: the default engine for both DMopt
// formulations.  It solves the identical mathematical program as the
// node-based assembly (Eqs. 2-12) but represents the timing constraints
// by path cuts generated on demand:
//
//	nom(π) + Σ_{p∈π} (A_p·Ds·dP_{g(p)} + B_p·Ds·dA_{g(p)}) ≤ τ
//
// for each path π whose linear-model delay exceeds τ at the current
// dose iterate.  Arrival-time variables — which carry no objective
// curvature and slow the first-order QP solver badly — disappear; the
// QP retains only dose variables with strictly convex leakage cost.
// Cuts are valid for every clock-period probe, so the QCP bisection
// shares one growing pool.
//
// A cutSolver borrows the immutable *Compiled formulation (fixed
// box/smoothness rows, objective terms, grid maps) and owns the per-run
// mutable state: the cut pool, the warm-start iterate, and the
// persistent qp.Solver.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/dosemap"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/qp"
	"repro/internal/sta"
)

// cut is one path constraint over the dose variables.
type cut struct {
	cols []int
	vals []float64
	nom  float64 // dose-independent path delay in ps
}

// cutPool is the growing pool of path cuts, shared by every clock-period
// probe (a path cut is valid for all τ).  The mutex makes it safe for
// the speculative QCP probes, which enrich the pool concurrently.
type cutPool struct {
	mu   sync.Mutex
	cuts []cut
	seen map[string]bool
}

// snapshot returns the current cuts.  The returned slice is never
// mutated in place (add only appends), so callers may read it without
// holding the lock.
func (p *cutPool) snapshot() []cut {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts[:len(p.cuts):len(p.cuts)]
}

// add appends c unless an equivalent cut is already pooled; it reports
// whether the cut was new.
func (p *cutPool) add(c cut) bool {
	sig := c.signature()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen[sig] {
		return false
	}
	p.seen[sig] = true
	p.cuts = append(p.cuts, c)
	return true
}

func (p *cutPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cuts)
}

type cutSolver struct {
	comp *Compiled
	opt  Options

	nG   int
	nVar int
	// clampN bounds the post-solve box clamp: only variables below this
	// index are dose variables subject to [DoseLo, DoseHi].  The wafer
	// consensus formulation appends auxiliary slit-profile variables
	// (column means and deviations) that must not be clamped.
	clampN int

	// pd is the cutSolver's own copy of the compiled objective diagonal
	// (tests perturb it in place to build degenerate instances); q is the
	// shared compiled linear term, read-only by convention.
	pd, q []float64
	pool  *cutPool
	x     []float64 // warm-start iterate

	// Persistent solver state.  The assembled problem and its qp.Solver
	// are kept across cut rounds and bisection probes: when only τ moves
	// the cut-row bounds are updated in place (no CSR rebuild, no
	// re-equilibration), and when the pool grows the problem is rebuilt
	// with the previous duals zero-padded onto the new rows — cut rows
	// are appended after the fixed box/smoothness prefix, so saved dual
	// indices stay valid.  Warm duals are what keeps the ADMM iteration
	// count low round over round; a cold y resets the active-set
	// estimate and regularly forced 6x-budget retries.
	solver    *qp.Solver
	prob      *qp.Problem
	builtCuts int
	builtTau  float64
	y         []float64 // last duals (unscaled), aligned to prob rows

	rounds, solves int

	// Tangent information of the most recent converged cut round: the
	// probed clock period, the model objective there, and the derivative
	// estimate dminLeak/dτ = −Σ y_i over the cut rows (each cut's upper
	// bound is τ − nom, so the bound moves one-for-one with τ and the
	// dual sum prices the move).  The QCP outer loop turns this into a
	// warm-started Newton/secant step on τ; tangentOK is false until a
	// round converges and is reset at every solveTau entry, so stale
	// probes never feed a step.
	tangentTau   float64
	tangentObj   float64
	tangentSlope float64
	tangentOK    bool

	// rec is the telemetry recorder, refreshed from the context at each
	// solveTau entry (ensure has no context of its own).
	rec *obs.Recorder
}

// clone returns a probe-local copy sharing the read-only problem data
// and the cut pool, with an independent warm-start iterate and dual
// state.  Used by the speculative QCP bisection to run probes
// concurrently; the qp.Solver is not shared (each clone builds its own
// on first use).
func (cs *cutSolver) clone() *cutSolver {
	cp := *cs
	cp.x = append([]float64(nil), cs.x...)
	cp.y = append([]float64(nil), cs.y...)
	cp.solver = nil
	cp.prob = nil
	cp.builtCuts = 0
	return &cp
}

// resetSolver drops the persistent solver so the next round rebuilds
// from scratch.  Called when a solve diverged (infeasible certificate or
// stall): its internal iterate would poison later warm starts.
func (cs *cutSolver) resetSolver() {
	cs.solver = nil
	cs.prob = nil
	cs.builtCuts = 0
}

// adopt takes over the iterate, dual and tangent state of a finished
// probe clone (the speculative bisection winner).
func (cs *cutSolver) adopt(p *cutSolver) {
	copy(cs.x, p.x)
	cs.y = append(cs.y[:0], p.y...)
	cs.tangentTau, cs.tangentObj = p.tangentTau, p.tangentObj
	cs.tangentSlope, cs.tangentOK = p.tangentSlope, p.tangentOK
	cs.resetSolver()
}

// newtonCandidate extrapolates the clock period where the leakage
// budget ξ is met exactly, from the last converged round's tangent:
// τ* ≈ τ_p + (ξ − obj_p)/slope_p.  minLeak(τ) is convex and
// non-increasing, so with exact solves the tangent root is a LOWER
// bound on the true τ* — the outer loop probes candidate + guard and
// may raise its lower bracket to the candidate when the probe lands
// feasible.  Reports false when no tangent is available or the slope
// is not usefully negative (no active cuts: τ does not bind).
func (cs *cutSolver) newtonCandidate(xiNW float64) (float64, bool) {
	if !cs.tangentOK || !(cs.tangentSlope < 0) {
		return 0, false
	}
	cand := cs.tangentTau + (xiNW-cs.tangentObj)/cs.tangentSlope
	if math.IsNaN(cand) || math.IsInf(cand, 0) {
		return 0, false
	}
	return cand, true
}

// ensure makes the persistent solver match (tau, cuts) and warm-starts
// it at cs.x: bound update only when just τ moved, rebuild (with dual
// carry-over) when the cut pool grew.
func (cs *cutSolver) ensure(tau float64, cuts []cut) error {
	if cs.solver != nil && len(cuts) == cs.builtCuts {
		cs.rec.Add("core/solver_reuses", 1)
		if tau != cs.builtTau {
			base := len(cs.prob.U) - cs.builtCuts
			for i, c := range cuts {
				cs.prob.U[base+i] = tau - c.nom
			}
			if err := cs.solver.UpdateBounds(cs.prob.L, cs.prob.U); err != nil {
				return err
			}
			cs.builtTau = tau
		}
		// Re-anchor the primal at the clamped iterate; duals persist
		// inside the solver.
		return cs.solver.WarmStart(cs.x, nil)
	}
	if cs.solver != nil && len(cuts) > cs.builtCuts {
		// Append-only growth: cut rows sit after the fixed box/smoothness
		// prefix, so new cuts extend the live solver in place — the
		// factorized/preconditioned state for the old rows survives and
		// only the appended rows cost symbolic work.  Duals persist inside
		// the solver with zeros on the new rows, exactly the zero-padded
		// carry-over the rebuild path used to reconstruct.
		cs.rec.Add("core/solver_row_appends", 1)
		newCuts := cuts[cs.builtCuts:]
		inf := math.Inf(1)
		l := make([]float64, len(newCuts))
		u := make([]float64, len(newCuts))
		cols := make([][]int, len(newCuts))
		vals := make([][]float64, len(newCuts))
		for i, c := range newCuts {
			cols[i], vals[i] = c.cols, c.vals
			l[i] = -inf
			u[i] = tau - c.nom
		}
		newA := qp.CSRFromRows(cs.nVar, cols, vals)
		if err := cs.solver.AppendRows(newA, l, u); err != nil {
			return err
		}
		cs.prob.A = qp.ConcatRows(cs.prob.A, newA)
		cs.prob.L = append(cs.prob.L, l...)
		cs.prob.U = append(cs.prob.U, u...)
		cs.builtCuts = len(cuts)
		if tau != cs.builtTau {
			base := len(cs.prob.U) - cs.builtCuts
			for i, c := range cuts {
				cs.prob.U[base+i] = tau - c.nom
			}
			if err := cs.solver.UpdateBounds(cs.prob.L, cs.prob.U); err != nil {
				return err
			}
			cs.builtTau = tau
		}
		return cs.solver.WarmStart(cs.x, nil)
	}
	cs.rec.Add("core/solver_rebuilds", 1)
	cs.prob = cs.buildProblem(tau, cuts)
	solver, err := qp.NewSolver(cs.prob, cs.opt.QP)
	if err != nil {
		return err
	}
	var y []float64
	if len(cs.y) > 0 {
		y = make([]float64, cs.prob.A.M)
		copy(y, cs.y) // append-only rows: new cut rows start at zero
	}
	if err := solver.WarmStart(cs.x, y); err != nil {
		return err
	}
	cs.solver = solver
	cs.builtCuts = len(cuts)
	cs.builtTau = tau
	return nil
}

// saveDuals records the duals of a converged solve for the next round's
// warm start.
func (cs *cutSolver) saveDuals(y []float64) {
	cs.y = append(cs.y[:0], y...)
}

// recordTangent captures the (τ, obj, dObj/dτ) tangent of a converged
// round.  Cut rows sit after the fixed box/smoothness prefix and their
// upper bounds are τ − nom, so the value-function derivative is the
// negated dual sum over exactly those rows (duals of one-sided upper
// bounds are nonnegative, hence the slope is ≤ 0, matching a
// non-increasing minLeak).
func (cs *cutSolver) recordTangent(tau, obj float64, y []float64) {
	slope := 0.0
	for i := cs.comp.fixedA.M; i < len(y); i++ {
		slope -= y[i]
	}
	cs.tangentTau, cs.tangentObj = tau, obj
	cs.tangentSlope, cs.tangentOK = slope, true
}

// newCutSolverCompiled wires a run view onto a shared artifact.  The
// objective diagonal is copied (the one compiled slice tests may
// perturb); everything else is borrowed read-only.
func newCutSolverCompiled(c *Compiled, opt Options) *cutSolver {
	cs := &cutSolver{
		comp: c, opt: opt,
		nG: c.NG, nVar: c.NVar, clampN: c.NVar,
		pd:   append([]float64(nil), c.cutPD...),
		q:    c.doseQ,
		pool: &cutPool{seen: make(map[string]bool)},
	}
	cs.x = make([]float64, cs.nVar)
	return cs
}

// newCutSolver compiles the formulation and wires a run view onto it in
// one step (the historical constructor, kept for direct callers and
// tests that bypass the cache layer).
func newCutSolver(golden *sta.Result, model *Model, opt Options) (*cutSolver, error) {
	c, err := Compile(golden, model, opt.CompileOptions())
	if err != nil {
		return nil, err
	}
	return newCutSolverCompiled(c, opt), nil
}

// deltaFn returns the per-gate linear delay delta under actuator
// vector x, read through the compiled concatenated sensitivity rows
// (dose layer entries, then the bias-domain entry).  For dose-only
// artifacts the stored values are the same A·Ds (and B·Ds) products the
// historical closure multiplied inline, in the same order, so the sum
// is bit-identical.
func (cs *cutSolver) deltaFn(x []float64) func(id int) float64 {
	c := cs.comp
	return func(id int) float64 {
		s, e := c.sensPtr[id], c.sensPtr[id+1]
		if s == e {
			return 0
		}
		v := c.sensVal[s] * x[c.sensCol[s]]
		for k := s + 1; k < e; k++ {
			v += c.sensVal[k] * x[c.sensCol[k]]
		}
		return v
	}
}

// makeCut converts a path (from the linear-model enumeration at the
// iterate x) into a constraint row over all actuator variables.
func (cs *cutSolver) makeCut(p *sta.Path, x []float64) cut {
	c := cs.comp
	coeff := map[int]float64{}
	for i, id := range p.Nodes {
		s, e := c.sensPtr[id], c.sensPtr[id+1]
		if s == e {
			continue
		}
		kind := c.Golden.In.Circ.Gates[id].Kind
		// Actuators affect the cell delay of combinational nodes and the
		// clock-to-q of the launching register (first node); the
		// capturing endpoint contributes no actuator-dependent delay.
		isLaunch := i == 0 && kind == netlist.Seq
		if kind == netlist.Comb || isLaunch {
			for k := s; k < e; k++ {
				coeff[c.sensCol[k]] += c.sensVal[k]
			}
		}
	}
	// Emit columns in sorted order: map iteration order would vary run
	// to run, reassociating the floating-point sum below and making
	// cut.nom (hence the whole solve trajectory) nondeterministic.
	cols := make([]int, 0, len(coeff))
	for col := range coeff {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	out := cut{}
	lin := 0.0
	for _, col := range cols {
		v := coeff[col]
		out.cols = append(out.cols, col)
		out.vals = append(out.vals, v)
		lin += v * x[col]
	}
	out.nom = p.Delay - lin
	return out
}

func (c cut) signature() string {
	// Columns are emitted sorted by makeCut, so the signature is
	// canonical as-is.
	s := fmt.Sprintf("%.2f|", c.nom)
	for i := range c.cols {
		s += fmt.Sprintf("%d:%.4f;", c.cols[i], c.vals[i])
	}
	return s
}

// buildProblem assembles the current QP: the compiled box/smoothness
// prefix concatenated with the cut rows.  The prefix CSR is shared (the
// solver clones its inputs); the objective diagonal is compiled from
// cs.pd because the run view owns that slice.
func (cs *cutSolver) buildProblem(tau float64, cuts []cut) *qp.Problem {
	c := cs.comp
	ptr := qp.NewTriplet(cs.nVar, cs.nVar)
	for j, v := range cs.pd {
		if v != 0 {
			ptr.Add(j, j, v)
		}
	}
	inf := math.Inf(1)
	nFixed := c.fixedA.M
	l := make([]float64, nFixed, nFixed+len(cuts))
	u := make([]float64, nFixed, nFixed+len(cuts))
	copy(l, c.fixedL)
	copy(u, c.fixedU)
	cols := make([][]int, len(cuts))
	vals := make([][]float64, len(cuts))
	for i, ct := range cuts {
		cols[i], vals[i] = ct.cols, ct.vals
		l = append(l, -inf)
		u = append(u, tau-ct.nom)
	}
	a := qp.ConcatRows(c.fixedA, qp.CSRFromRows(cs.nVar, cols, vals))
	return &qp.Problem{P: ptr.Compile(), Q: cs.q, A: a, L: l, U: u}
}

// solveTau minimizes Δleakage subject to MCT ≤ tau by cut generation,
// abandoning the probe as soon as the objective provably exceeds xiNW
// (cuts only shrink the feasible set, so the round objectives are
// non-decreasing — once above the budget the probe can never recover).
// Pass +Inf for a plain QP solve.  It returns the model objective in nW;
// feasible is false when the probe is infeasible or over budget.  A
// canceled context aborts between cut rounds with an error wrapping
// context.Canceled.
func (cs *cutSolver) solveTau(ctx context.Context, tau, xiNW float64) (obj float64, feasible bool, err error) {
	cs.rec = obs.From(ctx)
	cs.tangentOK = false // only a converged round of THIS probe may feed a Newton step
	c := cs.comp
	opt := cs.opt
	tolPs := opt.CutTolPs
	if tolPs <= 0 {
		tolPs = 2e-4 * c.Golden.MCT
	}
	maxRounds := opt.CutRounds
	if maxRounds <= 0 {
		maxRounds = 60
	}
	perRound := opt.CutsPerRound
	if perRound <= 0 {
		perRound = 64
	}
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return 0, false, fmt.Errorf("core: cut probe canceled at round %d: %w", round, err)
		}
		cs.rounds++
		cs.rec.Add("core/cut_rounds", 1)
		if err := cs.ensure(tau, cs.pool.snapshot()); err != nil {
			return 0, false, err
		}
		res, err := cs.solver.SolveCtx(ctx)
		cs.solves++
		if err != nil {
			return 0, false, err
		}
		if res.Status == qp.PrimalInfeasible {
			cs.resetSolver() // certificate duals would poison warm starts
			return 0, false, nil
		}
		if res.Status != qp.Solved && cs.solver.MaxViolation(res.X) > 0.2 {
			// Still stalled after the in-solver restarts: retry the round
			// once on a completely fresh solver (new equilibration and
			// ADMM state) warm-started at the stalled iterate, under the
			// same iteration budget.  Genuinely infeasible probes fail
			// both attempts and are cut off here rather than after a
			// multiple of the budget.
			solver, err := qp.NewSolver(cs.prob, opt.QP)
			if err != nil {
				return 0, false, err
			}
			if err := solver.WarmStart(res.X, res.Y); err != nil {
				return 0, false, err
			}
			res, err = solver.SolveCtx(ctx)
			cs.solves++
			if err != nil {
				return 0, false, err
			}
			viol := solver.MaxViolation(res.X)
			cs.resetSolver()
			if res.Status == qp.PrimalInfeasible {
				return 0, false, nil
			}
			if res.Status != qp.Solved && viol > 0.5 {
				return 0, false, fmt.Errorf("core: cut QP did not converge (τ=%.1f, round %d, viol %.3g)",
					tau, round, viol)
			}
			// Residual violations below half a percent of dose (or half
			// a picosecond on a cut) are absorbed by map legalization
			// and re-measured by golden signoff.
		}
		cs.saveDuals(res.Y)
		copy(cs.x, res.X)
		cs.clampVars()
		o := cs.objective(cs.x)
		cs.recordTangent(tau, o, res.Y)
		if o > xiNW+xiToleranceLeak(c.nomLeakUW, xiNW) {
			return o, false, nil
		}
		delta := cs.deltaFn(cs.x)
		_, mct := linearArrivalsOrder(c.Golden, c.order, delta)
		if mct <= tau+tolPs {
			return o, true, nil
		}
		// Generate violated path cuts.
		arcFn := func(from, to int) float64 {
			a := c.Golden.ArcDelay(from, to)
			if c.Golden.In.Circ.Gates[to].Kind == netlist.Comb {
				a += delta(to)
			}
			return a
		}
		startFn := func(id int) float64 {
			s := c.Golden.StartWeight(id)
			if c.Golden.In.Circ.Gates[id].Kind == netlist.Seq {
				s += delta(id)
			}
			return s
		}
		paths := sta.TopPathsDAG(c.Golden.In.Circ, c.order, arcFn, startFn, c.Golden.EndWeight,
			perRound, 0)
		added := 0
		for _, p := range paths {
			if p.Delay <= tau+tolPs/2 {
				break // paths arrive in non-increasing delay order
			}
			if cs.pool.add(cs.makeCut(p, cs.x)) {
				added++
			}
		}
		cs.rec.Add("core/cuts_added", int64(added))
		if cs.rec != nil {
			cs.rec.Set("core/cut_pool_size", float64(cs.pool.size()))
		}
		if added == 0 {
			// All violating paths already cut but the QP solution still
			// violates: solver tolerance floor.  Accept if close.
			if mct <= tau+5*tolPs {
				return o, true, nil
			}
			return 0, false, fmt.Errorf("core: cut generation stalled at τ=%.1f (mct %.1f)", tau, mct)
		}
	}
	return 0, false, errors.New("core: cut generation exceeded round budget")
}

// objective evaluates the model Δleakage of dose vector x in nW.
func (cs *cutSolver) objective(x []float64) float64 {
	obj := 0.0
	for j := 0; j < cs.nVar; j++ {
		obj += 0.5*cs.pd[j]*x[j]*x[j] + cs.q[j]*x[j]
	}
	return obj
}

// clampVars clamps the iterate's actuator variables onto their boxes
// after a solve (numerical slop only).  Dose blocks clamp to the RUN
// box [opt.DoseLo, opt.DoseHi] — the wafer consensus shifts it per
// field — while the bias block clamps to its compile-time box.
// Variables at clampN and beyond (auxiliary wafer consensus columns)
// are never clamped.
func (cs *cutSolver) clampVars() {
	for _, b := range cs.comp.Blocks {
		lo, hi := b.Lo, b.Hi
		if b.Name != "bias" {
			lo, hi = cs.opt.DoseLo, cs.opt.DoseHi
		}
		for k := 0; k < b.N; k++ {
			j := b.Off + k
			if j >= cs.clampN {
				return
			}
			cs.x[j] = clamp(cs.x[j], lo, hi)
		}
	}
}

// biasOf extracts the bias-block variables from the iterate (nil when
// the bias actuator is off).
func (cs *cutSolver) biasOf() []float64 {
	c := cs.comp
	if c.nBias == 0 {
		return nil
	}
	return append([]float64(nil), cs.x[c.biasOff:c.biasOff+c.nBias]...)
}

// layers converts the iterate into dose maps, legalized onto the exact
// equipment-feasible set (range + smoothness) so downstream consumers
// never see solver slop.  Without the dose actuator it returns a zero
// poly map (already legal), keeping downstream map consumers total.
func (cs *cutSolver) layers() dosemap.Layers {
	opt := cs.opt
	if !cs.comp.hasDose() {
		return dosemap.Layers{Poly: dosemap.NewMap(cs.comp.Grid)}
	}
	legalize := func(m *dosemap.Map) {
		if opt.Tiled {
			m.LegalizeTiled(opt.DoseLo, opt.DoseHi, opt.Delta, 50)
		} else {
			m.Legalize(opt.DoseLo, opt.DoseHi, opt.Delta, 50)
		}
	}
	poly := dosemap.NewMap(cs.comp.Grid)
	copy(poly.D, cs.x[:cs.nG])
	legalize(poly)
	out := dosemap.Layers{Poly: poly}
	if opt.BothLayers {
		act := dosemap.NewMap(cs.comp.Grid)
		copy(act.D, cs.x[cs.nG:2*cs.nG])
		legalize(act)
		out.Active = act
	}
	return out
}

// result packages the current iterate like the node-based path does.
func (cs *cutSolver) result(ctx context.Context, probes int) (*Result, error) {
	c := cs.comp
	asn := Assignment{Layers: cs.layers(), BiasV: cs.biasOf()}
	predMCT, predLeak := c.predictAsn(asn)
	nominal := Eval{MCTps: c.Golden.MCT, LeakUW: c.nomLeakUW}
	gold, err := signoffAsn(ctx, c, cs.opt, asn)
	if err != nil {
		return nil, err
	}
	nCuts := cs.pool.size()
	return &Result{
		Layers:          asn.Layers,
		PredMCT:         predMCT,
		PredDeltaLeakNW: predLeak,
		Nominal:         nominal,
		Golden:          gold,
		Probes:          probes,
		Rows:            nCuts,
		Cols:            cs.nVar,
		BiasV:           asn.BiasV,
		BiasDomains:     c.nBias,
		Status:          fmt.Sprintf("cuts=%d rounds=%d solves=%d", nCuts, cs.rounds, cs.solves),
	}, nil
}
