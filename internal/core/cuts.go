package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dosemap"
	"repro/internal/netlist"
	"repro/internal/qp"
	"repro/internal/sta"
	"repro/internal/tech"
)

// The cutting-plane solver is the default engine for both DMopt
// formulations.  It solves the identical mathematical program as the
// node-based assembly (Eqs. 2-12) but represents the timing constraints
// by path cuts generated on demand:
//
//	nom(π) + Σ_{p∈π} (A_p·Ds·dP_{g(p)} + B_p·Ds·dA_{g(p)}) ≤ τ
//
// for each path π whose linear-model delay exceeds τ at the current
// dose iterate.  Arrival-time variables — which carry no objective
// curvature and slow the first-order QP solver badly — disappear; the
// QP retains only dose variables with strictly convex leakage cost.
// Cuts are valid for every clock-period probe, so the QCP bisection
// shares one growing pool.

// cut is one path constraint over the dose variables.
type cut struct {
	cols []int
	vals []float64
	nom  float64 // dose-independent path delay in ps
}

type cutSolver struct {
	golden *sta.Result
	model  *Model
	opt    Options
	grid   dosemap.Grid
	gridOf []int
	order  []int
	nG     int
	nVar   int

	pd, q []float64 // objective
	cuts  []cut
	seen  map[string]bool
	x     []float64 // warm-start iterate

	rounds, solves int
}

func newCutSolver(golden *sta.Result, model *Model, opt Options) (*cutSolver, error) {
	in := golden.In
	grid, err := dosemap.NewGrid(in.Pl.ChipW, in.Pl.ChipH, opt.G)
	if err != nil {
		return nil, err
	}
	order, err := in.Circ.TopoOrder()
	if err != nil {
		return nil, err
	}
	cs := &cutSolver{
		golden: golden, model: model, opt: opt, grid: grid,
		gridOf: gateGrid(in, grid), order: order,
		nG:   grid.Cells(),
		seen: make(map[string]bool),
	}
	cs.nVar = cs.nG
	if opt.BothLayers {
		cs.nVar = 2 * cs.nG
	}
	cs.pd = make([]float64, cs.nVar)
	cs.q = make([]float64, cs.nVar)
	ds := tech.DoseSensitivity
	for id := range in.Circ.Gates {
		g := cs.gridOf[id]
		if g < 0 {
			continue
		}
		cs.pd[g] += 2 * model.Alpha[id] * ds * ds
		cs.q[g] += model.Beta[id] * ds
		if opt.BothLayers {
			cs.q[cs.nG+g] += model.Gamma[id] * ds
		}
	}
	if opt.BothLayers {
		// The active-layer objective is exactly linear (leakage is linear
		// in gate width), which leaves those variables without curvature
		// and slows the first-order QP solver badly.  A tiny quadratic
		// regularization — three orders below the poly curvature — fixes
		// conditioning while perturbing the optimum negligibly.
		reg := 0.0
		for g := 0; g < cs.nG; g++ {
			if cs.pd[g] > reg {
				reg = cs.pd[g]
			}
		}
		reg *= 1e-2
		if reg <= 0 {
			reg = 1e-6
		}
		for g := 0; g < cs.nG; g++ {
			cs.pd[cs.nG+g] += reg
		}
	}
	cs.x = make([]float64, cs.nVar)
	return cs, nil
}

// deltaFn returns the per-gate linear delay delta under dose vector x.
func (cs *cutSolver) deltaFn(x []float64) func(id int) float64 {
	ds := tech.DoseSensitivity
	return func(id int) float64 {
		g := cs.gridOf[id]
		if g < 0 {
			return 0
		}
		v := cs.model.A[id] * ds * x[g]
		if cs.opt.BothLayers {
			v += cs.model.B[id] * ds * x[cs.nG+g]
		}
		return v
	}
}

// makeCut converts a path (from the linear-model enumeration at dose x)
// into a constraint row.
func (cs *cutSolver) makeCut(p *sta.Path, x []float64) cut {
	ds := tech.DoseSensitivity
	coeff := map[int]float64{}
	for i, id := range p.Nodes {
		g := cs.gridOf[id]
		if g < 0 {
			continue
		}
		kind := cs.golden.In.Circ.Gates[id].Kind
		// Dose affects the cell delay of combinational nodes and the
		// clock-to-q of the launching register (first node); the
		// capturing endpoint contributes no dose-dependent delay.
		isLaunch := i == 0 && kind == netlist.Seq
		if kind == netlist.Comb || isLaunch {
			coeff[g] += cs.model.A[id] * ds
			if cs.opt.BothLayers {
				coeff[cs.nG+g] += cs.model.B[id] * ds
			}
		}
	}
	c := cut{}
	lin := 0.0
	for col, v := range coeff {
		c.cols = append(c.cols, col)
		c.vals = append(c.vals, v)
		lin += v * x[col]
	}
	c.nom = p.Delay - lin
	return c
}

func (c cut) signature() string {
	// Stable enough: columns are map-ordered, so sort by building a
	// canonical string of col:val pairs rounded to fixed precision.
	type pair struct {
		col int
		val float64
	}
	pairs := make([]pair, len(c.cols))
	for i := range c.cols {
		pairs[i] = pair{c.cols[i], c.vals[i]}
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].col < pairs[j-1].col; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	s := fmt.Sprintf("%.2f|", c.nom)
	for _, p := range pairs {
		s += fmt.Sprintf("%d:%.4f;", p.col, p.val)
	}
	return s
}

// buildProblem assembles the current QP: box + smoothness + cuts.
func (cs *cutSolver) buildProblem(tau float64) *qp.Problem {
	opt := cs.opt
	nLayers := 1
	if opt.BothLayers {
		nLayers = 2
	}
	ptr := qp.NewTriplet(cs.nVar, cs.nVar)
	for j, v := range cs.pd {
		if v != 0 {
			ptr.Add(j, j, v)
		}
	}
	type entry struct {
		r, c int
		v    float64
	}
	var entries []entry
	var l, u []float64
	row := 0
	addRow := func(lo, hi float64) int {
		l = append(l, lo)
		u = append(u, hi)
		r := row
		row++
		return r
	}
	inf := math.Inf(1)
	for layer := 0; layer < nLayers; layer++ {
		for g := 0; g < cs.nG; g++ {
			r := addRow(opt.DoseLo, opt.DoseHi)
			entries = append(entries, entry{r, layer*cs.nG + g, 1})
		}
	}
	grid := cs.grid
	for layer := 0; layer < nLayers; layer++ {
		off := layer * cs.nG
		for i := 0; i < grid.M; i++ {
			for j := 0; j < grid.N; j++ {
				a := grid.Flat(i, j)
				if j+1 < grid.N {
					r := addRow(-opt.Delta, opt.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i, j+1), -1})
				}
				if i+1 < grid.M {
					r := addRow(-opt.Delta, opt.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i+1, j), -1})
				}
				if i+1 < grid.M && j+1 < grid.N {
					r := addRow(-opt.Delta, opt.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i+1, j+1), -1})
				}
			}
		}
	}
	if opt.Tiled {
		// Seam smoothness: tiling copies of the field places the last
		// column/row against the first of the next copy.
		for layer := 0; layer < nLayers; layer++ {
			off := layer * cs.nG
			for i := 0; i < grid.M; i++ {
				r := addRow(-opt.Delta, opt.Delta)
				entries = append(entries, entry{r, off + grid.Flat(i, grid.N-1), 1},
					entry{r, off + grid.Flat(i, 0), -1})
			}
			for j := 0; j < grid.N; j++ {
				r := addRow(-opt.Delta, opt.Delta)
				entries = append(entries, entry{r, off + grid.Flat(grid.M-1, j), 1},
					entry{r, off + grid.Flat(0, j), -1})
			}
		}
	}
	for _, c := range cs.cuts {
		r := addRow(-inf, tau-c.nom)
		for i := range c.cols {
			entries = append(entries, entry{r, c.cols[i], c.vals[i]})
		}
	}
	tr := qp.NewTriplet(row, cs.nVar)
	for _, e := range entries {
		tr.Add(e.r, e.c, e.v)
	}
	return &qp.Problem{P: ptr.Compile(), Q: cs.q, A: tr.Compile(), L: l, U: u}
}

// solveTau minimizes Δleakage subject to MCT ≤ tau by cut generation,
// abandoning the probe as soon as the objective provably exceeds xiNW
// (cuts only shrink the feasible set, so the round objectives are
// non-decreasing — once above the budget the probe can never recover).
// Pass +Inf for a plain QP solve.  It returns the model objective in nW;
// feasible is false when the probe is infeasible or over budget.
func (cs *cutSolver) solveTau(tau, xiNW float64) (obj float64, feasible bool, err error) {
	opt := cs.opt
	tolPs := opt.CutTolPs
	if tolPs <= 0 {
		tolPs = 2e-4 * cs.golden.MCT
	}
	maxRounds := opt.CutRounds
	if maxRounds <= 0 {
		maxRounds = 60
	}
	perRound := opt.CutsPerRound
	if perRound <= 0 {
		perRound = 64
	}
	for round := 0; round < maxRounds; round++ {
		cs.rounds++
		prob := cs.buildProblem(tau)
		solver, err := qp.NewSolver(prob, opt.QP)
		if err != nil {
			return 0, false, err
		}
		if err := solver.WarmStart(cs.x, nil); err != nil {
			return 0, false, err
		}
		res := solver.Solve()
		cs.solves++
		if res.Status == qp.PrimalInfeasible {
			return 0, false, nil
		}
		if res.Status != qp.Solved && prob.MaxViolation(res.X) > 0.2 {
			// Stalled under the fast default budget: retry this round
			// once with a 6x iteration budget before giving up.
			boosted := opt.QP
			boosted.MaxIter *= 6
			solver, err = qp.NewSolver(prob, boosted)
			if err != nil {
				return 0, false, err
			}
			if err := solver.WarmStart(res.X, res.Y); err != nil {
				return 0, false, err
			}
			res = solver.Solve()
			cs.solves++
			if res.Status == qp.PrimalInfeasible {
				return 0, false, nil
			}
			if res.Status != qp.Solved && prob.MaxViolation(res.X) > 0.5 {
				return 0, false, fmt.Errorf("core: cut QP did not converge (τ=%.1f, round %d, viol %.3g)",
					tau, round, prob.MaxViolation(res.X))
			}
			// Residual violations below half a percent of dose (or half
			// a picosecond on a cut) are absorbed by map legalization
			// and re-measured by golden signoff.
		}
		copy(cs.x, res.X)
		// Clamp numerical box slop before evaluating timing.
		for j := 0; j < cs.nVar; j++ {
			cs.x[j] = clamp(cs.x[j], opt.DoseLo, opt.DoseHi)
		}
		if o := cs.objective(cs.x); o > xiNW+xiTolerance(cs.golden, xiNW) {
			return o, false, nil
		}
		delta := cs.deltaFn(cs.x)
		_, mct := linearArrivals(cs.golden, delta)
		if mct <= tau+tolPs {
			return cs.objective(cs.x), true, nil
		}
		// Generate violated path cuts.
		arcFn := func(from, to int) float64 {
			a := cs.golden.ArcDelay(from, to)
			if cs.golden.In.Circ.Gates[to].Kind == netlist.Comb {
				a += delta(to)
			}
			return a
		}
		startFn := func(id int) float64 {
			s := cs.golden.StartWeight(id)
			if cs.golden.In.Circ.Gates[id].Kind == netlist.Seq {
				s += delta(id)
			}
			return s
		}
		paths := sta.TopPathsDAG(cs.golden.In.Circ, cs.order, arcFn, startFn, cs.golden.EndWeight,
			perRound, 0)
		added := 0
		for _, p := range paths {
			if p.Delay <= tau+tolPs/2 {
				break // paths arrive in non-increasing delay order
			}
			c := cs.makeCut(p, cs.x)
			sig := c.signature()
			if cs.seen[sig] {
				continue
			}
			cs.seen[sig] = true
			cs.cuts = append(cs.cuts, c)
			added++
		}
		if added == 0 {
			// All violating paths already cut but the QP solution still
			// violates: solver tolerance floor.  Accept if close.
			if mct <= tau+5*tolPs {
				return cs.objective(cs.x), true, nil
			}
			return 0, false, fmt.Errorf("core: cut generation stalled at τ=%.1f (mct %.1f)", tau, mct)
		}
	}
	return 0, false, errors.New("core: cut generation exceeded round budget")
}

// objective evaluates the model Δleakage of dose vector x in nW.
func (cs *cutSolver) objective(x []float64) float64 {
	obj := 0.0
	for j := 0; j < cs.nVar; j++ {
		obj += 0.5*cs.pd[j]*x[j]*x[j] + cs.q[j]*x[j]
	}
	return obj
}

// layers converts the iterate into dose maps, legalized onto the exact
// equipment-feasible set (range + smoothness) so downstream consumers
// never see solver slop.
func (cs *cutSolver) layers() dosemap.Layers {
	opt := cs.opt
	legalize := func(m *dosemap.Map) {
		if opt.Tiled {
			m.LegalizeTiled(opt.DoseLo, opt.DoseHi, opt.Delta, 50)
		} else {
			m.Legalize(opt.DoseLo, opt.DoseHi, opt.Delta, 50)
		}
	}
	poly := dosemap.NewMap(cs.grid)
	copy(poly.D, cs.x[:cs.nG])
	legalize(poly)
	out := dosemap.Layers{Poly: poly}
	if opt.BothLayers {
		act := dosemap.NewMap(cs.grid)
		copy(act.D, cs.x[cs.nG:2*cs.nG])
		legalize(act)
		out.Active = act
	}
	return out
}

// result packages the current iterate like the node-based path does.
func (cs *cutSolver) result(probes int) (*Result, error) {
	layers := cs.layers()
	// Reuse problem.predict via a light adapter.
	p := &problem{in: cs.golden.In, opt: cs.opt, model: cs.model, golden: cs.golden,
		grid: cs.grid, gridOf: cs.gridOf, nG: cs.nG}
	predMCT, predLeak := p.predict(layers)
	nominal := Eval{MCTps: cs.golden.MCT, LeakUW: nominalLeak(cs.golden)}
	gold, err := signoff(cs.golden, cs.opt, layers)
	if err != nil {
		return nil, err
	}
	return &Result{
		Layers:          layers,
		PredMCT:         predMCT,
		PredDeltaLeakNW: predLeak,
		Nominal:         nominal,
		Golden:          gold,
		Probes:          probes,
		Rows:            len(cs.cuts),
		Cols:            cs.nVar,
		Status:          fmt.Sprintf("cuts=%d rounds=%d solves=%d", len(cs.cuts), cs.rounds, cs.solves),
	}, nil
}
