package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/dosemap"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/qp"
	"repro/internal/sta"
	"repro/internal/tech"
)

// The cutting-plane solver is the default engine for both DMopt
// formulations.  It solves the identical mathematical program as the
// node-based assembly (Eqs. 2-12) but represents the timing constraints
// by path cuts generated on demand:
//
//	nom(π) + Σ_{p∈π} (A_p·Ds·dP_{g(p)} + B_p·Ds·dA_{g(p)}) ≤ τ
//
// for each path π whose linear-model delay exceeds τ at the current
// dose iterate.  Arrival-time variables — which carry no objective
// curvature and slow the first-order QP solver badly — disappear; the
// QP retains only dose variables with strictly convex leakage cost.
// Cuts are valid for every clock-period probe, so the QCP bisection
// shares one growing pool.

// cut is one path constraint over the dose variables.
type cut struct {
	cols []int
	vals []float64
	nom  float64 // dose-independent path delay in ps
}

// cutPool is the growing pool of path cuts, shared by every clock-period
// probe (a path cut is valid for all τ).  The mutex makes it safe for
// the speculative QCP probes, which enrich the pool concurrently.
type cutPool struct {
	mu   sync.Mutex
	cuts []cut
	seen map[string]bool
}

// snapshot returns the current cuts.  The returned slice is never
// mutated in place (add only appends), so callers may read it without
// holding the lock.
func (p *cutPool) snapshot() []cut {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts[:len(p.cuts):len(p.cuts)]
}

// add appends c unless an equivalent cut is already pooled; it reports
// whether the cut was new.
func (p *cutPool) add(c cut) bool {
	sig := c.signature()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen[sig] {
		return false
	}
	p.seen[sig] = true
	p.cuts = append(p.cuts, c)
	return true
}

func (p *cutPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cuts)
}

type cutSolver struct {
	golden *sta.Result
	model  *Model
	opt    Options
	grid   dosemap.Grid
	gridOf []int
	order  []int
	nG     int
	nVar   int

	pd, q []float64 // objective
	pool  *cutPool
	x     []float64 // warm-start iterate

	// Persistent solver state.  The assembled problem and its qp.Solver
	// are kept across cut rounds and bisection probes: when only τ moves
	// the cut-row bounds are updated in place (no CSR rebuild, no
	// re-equilibration), and when the pool grows the problem is rebuilt
	// with the previous duals zero-padded onto the new rows — cut rows
	// are appended after the fixed box/smoothness prefix, so saved dual
	// indices stay valid.  Warm duals are what keeps the ADMM iteration
	// count low round over round; a cold y resets the active-set
	// estimate and regularly forced 6x-budget retries.
	solver    *qp.Solver
	prob      *qp.Problem
	builtCuts int
	builtTau  float64
	y         []float64 // last duals (unscaled), aligned to prob rows

	rounds, solves int

	// rec is the telemetry recorder, refreshed from the context at each
	// solveTau entry (ensure has no context of its own).
	rec *obs.Recorder
}

// clone returns a probe-local copy sharing the read-only problem data
// and the cut pool, with an independent warm-start iterate and dual
// state.  Used by the speculative QCP bisection to run probes
// concurrently; the qp.Solver is not shared (each clone builds its own
// on first use).
func (cs *cutSolver) clone() *cutSolver {
	cp := *cs
	cp.x = append([]float64(nil), cs.x...)
	cp.y = append([]float64(nil), cs.y...)
	cp.solver = nil
	cp.prob = nil
	cp.builtCuts = 0
	return &cp
}

// resetSolver drops the persistent solver so the next round rebuilds
// from scratch.  Called when a solve diverged (infeasible certificate or
// stall): its internal iterate would poison later warm starts.
func (cs *cutSolver) resetSolver() {
	cs.solver = nil
	cs.prob = nil
	cs.builtCuts = 0
}

// adopt takes over the iterate and dual state of a finished probe clone
// (the speculative bisection winner).
func (cs *cutSolver) adopt(p *cutSolver) {
	copy(cs.x, p.x)
	cs.y = append(cs.y[:0], p.y...)
	cs.resetSolver()
}

// ensure makes the persistent solver match (tau, cuts) and warm-starts
// it at cs.x: bound update only when just τ moved, rebuild (with dual
// carry-over) when the cut pool grew.
func (cs *cutSolver) ensure(tau float64, cuts []cut) error {
	if cs.solver != nil && len(cuts) == cs.builtCuts {
		cs.rec.Add("core/solver_reuses", 1)
		if tau != cs.builtTau {
			base := len(cs.prob.U) - cs.builtCuts
			for i, c := range cuts {
				cs.prob.U[base+i] = tau - c.nom
			}
			if err := cs.solver.UpdateBounds(cs.prob.L, cs.prob.U); err != nil {
				return err
			}
			cs.builtTau = tau
		}
		// Re-anchor the primal at the clamped iterate; duals persist
		// inside the solver.
		return cs.solver.WarmStart(cs.x, nil)
	}
	if cs.solver != nil && len(cuts) > cs.builtCuts {
		// Append-only growth: cut rows sit after the fixed box/smoothness
		// prefix, so new cuts extend the live solver in place — the
		// factorized/preconditioned state for the old rows survives and
		// only the appended rows cost symbolic work.  Duals persist inside
		// the solver with zeros on the new rows, exactly the zero-padded
		// carry-over the rebuild path used to reconstruct.
		cs.rec.Add("core/solver_row_appends", 1)
		newCuts := cuts[cs.builtCuts:]
		tr := qp.NewTriplet(len(newCuts), cs.nVar)
		inf := math.Inf(1)
		l := make([]float64, len(newCuts))
		u := make([]float64, len(newCuts))
		for i, c := range newCuts {
			for k := range c.cols {
				tr.Add(i, c.cols[k], c.vals[k])
			}
			l[i] = -inf
			u[i] = tau - c.nom
		}
		newA := tr.Compile()
		if err := cs.solver.AppendRows(newA, l, u); err != nil {
			return err
		}
		cs.prob.A = qp.ConcatRows(cs.prob.A, newA)
		cs.prob.L = append(cs.prob.L, l...)
		cs.prob.U = append(cs.prob.U, u...)
		cs.builtCuts = len(cuts)
		if tau != cs.builtTau {
			base := len(cs.prob.U) - cs.builtCuts
			for i, c := range cuts {
				cs.prob.U[base+i] = tau - c.nom
			}
			if err := cs.solver.UpdateBounds(cs.prob.L, cs.prob.U); err != nil {
				return err
			}
			cs.builtTau = tau
		}
		return cs.solver.WarmStart(cs.x, nil)
	}
	cs.rec.Add("core/solver_rebuilds", 1)
	cs.prob = cs.buildProblem(tau, cuts)
	solver, err := qp.NewSolver(cs.prob, cs.opt.QP)
	if err != nil {
		return err
	}
	var y []float64
	if len(cs.y) > 0 {
		y = make([]float64, cs.prob.A.M)
		copy(y, cs.y) // append-only rows: new cut rows start at zero
	}
	if err := solver.WarmStart(cs.x, y); err != nil {
		return err
	}
	cs.solver = solver
	cs.builtCuts = len(cuts)
	cs.builtTau = tau
	return nil
}

// saveDuals records the duals of a converged solve for the next round's
// warm start.
func (cs *cutSolver) saveDuals(y []float64) {
	cs.y = append(cs.y[:0], y...)
}

func newCutSolver(golden *sta.Result, model *Model, opt Options) (*cutSolver, error) {
	in := golden.In
	grid, err := dosemap.NewGrid(in.Pl.ChipW, in.Pl.ChipH, opt.G)
	if err != nil {
		return nil, err
	}
	order, err := in.Circ.TopoOrder()
	if err != nil {
		return nil, err
	}
	cs := &cutSolver{
		golden: golden, model: model, opt: opt, grid: grid,
		gridOf: gateGrid(in, grid), order: order,
		nG:   grid.Cells(),
		pool: &cutPool{seen: make(map[string]bool)},
	}
	cs.nVar = cs.nG
	if opt.BothLayers {
		cs.nVar = 2 * cs.nG
	}
	cs.pd = make([]float64, cs.nVar)
	cs.q = make([]float64, cs.nVar)
	ds := tech.DoseSensitivity
	for id := range in.Circ.Gates {
		g := cs.gridOf[id]
		if g < 0 {
			continue
		}
		cs.pd[g] += 2 * model.Alpha[id] * ds * ds
		cs.q[g] += model.Beta[id] * ds
		if opt.BothLayers {
			cs.q[cs.nG+g] += model.Gamma[id] * ds
		}
	}
	if opt.BothLayers {
		// The active-layer objective is exactly linear (leakage is linear
		// in gate width), which leaves those variables without curvature
		// and slows the first-order QP solver badly.  A tiny quadratic
		// regularization — three orders below the poly curvature — fixes
		// conditioning while perturbing the optimum negligibly.
		reg := 0.0
		for g := 0; g < cs.nG; g++ {
			if cs.pd[g] > reg {
				reg = cs.pd[g]
			}
		}
		reg *= 1e-2
		if reg <= 0 {
			reg = 1e-6
		}
		for g := 0; g < cs.nG; g++ {
			cs.pd[cs.nG+g] += reg
		}
	}
	cs.x = make([]float64, cs.nVar)
	return cs, nil
}

// deltaFn returns the per-gate linear delay delta under dose vector x.
func (cs *cutSolver) deltaFn(x []float64) func(id int) float64 {
	ds := tech.DoseSensitivity
	return func(id int) float64 {
		g := cs.gridOf[id]
		if g < 0 {
			return 0
		}
		v := cs.model.A[id] * ds * x[g]
		if cs.opt.BothLayers {
			v += cs.model.B[id] * ds * x[cs.nG+g]
		}
		return v
	}
}

// makeCut converts a path (from the linear-model enumeration at dose x)
// into a constraint row.
func (cs *cutSolver) makeCut(p *sta.Path, x []float64) cut {
	ds := tech.DoseSensitivity
	coeff := map[int]float64{}
	for i, id := range p.Nodes {
		g := cs.gridOf[id]
		if g < 0 {
			continue
		}
		kind := cs.golden.In.Circ.Gates[id].Kind
		// Dose affects the cell delay of combinational nodes and the
		// clock-to-q of the launching register (first node); the
		// capturing endpoint contributes no dose-dependent delay.
		isLaunch := i == 0 && kind == netlist.Seq
		if kind == netlist.Comb || isLaunch {
			coeff[g] += cs.model.A[id] * ds
			if cs.opt.BothLayers {
				coeff[cs.nG+g] += cs.model.B[id] * ds
			}
		}
	}
	// Emit columns in sorted order: map iteration order would vary run
	// to run, reassociating the floating-point sum below and making
	// cut.nom (hence the whole solve trajectory) nondeterministic.
	cols := make([]int, 0, len(coeff))
	for col := range coeff {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	c := cut{}
	lin := 0.0
	for _, col := range cols {
		v := coeff[col]
		c.cols = append(c.cols, col)
		c.vals = append(c.vals, v)
		lin += v * x[col]
	}
	c.nom = p.Delay - lin
	return c
}

func (c cut) signature() string {
	// Columns are emitted sorted by makeCut, so the signature is
	// canonical as-is.
	s := fmt.Sprintf("%.2f|", c.nom)
	for i := range c.cols {
		s += fmt.Sprintf("%d:%.4f;", c.cols[i], c.vals[i])
	}
	return s
}

// buildProblem assembles the current QP: box + smoothness + cuts.
func (cs *cutSolver) buildProblem(tau float64, cuts []cut) *qp.Problem {
	opt := cs.opt
	nLayers := 1
	if opt.BothLayers {
		nLayers = 2
	}
	ptr := qp.NewTriplet(cs.nVar, cs.nVar)
	for j, v := range cs.pd {
		if v != 0 {
			ptr.Add(j, j, v)
		}
	}
	type entry struct {
		r, c int
		v    float64
	}
	var entries []entry
	var l, u []float64
	row := 0
	addRow := func(lo, hi float64) int {
		l = append(l, lo)
		u = append(u, hi)
		r := row
		row++
		return r
	}
	inf := math.Inf(1)
	for layer := 0; layer < nLayers; layer++ {
		for g := 0; g < cs.nG; g++ {
			r := addRow(opt.DoseLo, opt.DoseHi)
			entries = append(entries, entry{r, layer*cs.nG + g, 1})
		}
	}
	grid := cs.grid
	for layer := 0; layer < nLayers; layer++ {
		off := layer * cs.nG
		for i := 0; i < grid.M; i++ {
			for j := 0; j < grid.N; j++ {
				a := grid.Flat(i, j)
				if j+1 < grid.N {
					r := addRow(-opt.Delta, opt.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i, j+1), -1})
				}
				if i+1 < grid.M {
					r := addRow(-opt.Delta, opt.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i+1, j), -1})
				}
				if i+1 < grid.M && j+1 < grid.N {
					r := addRow(-opt.Delta, opt.Delta)
					entries = append(entries, entry{r, off + a, 1}, entry{r, off + grid.Flat(i+1, j+1), -1})
				}
			}
		}
	}
	if opt.Tiled {
		// Seam smoothness: tiling copies of the field places the last
		// column/row against the first of the next copy.
		for layer := 0; layer < nLayers; layer++ {
			off := layer * cs.nG
			for i := 0; i < grid.M; i++ {
				r := addRow(-opt.Delta, opt.Delta)
				entries = append(entries, entry{r, off + grid.Flat(i, grid.N-1), 1},
					entry{r, off + grid.Flat(i, 0), -1})
			}
			for j := 0; j < grid.N; j++ {
				r := addRow(-opt.Delta, opt.Delta)
				entries = append(entries, entry{r, off + grid.Flat(grid.M-1, j), 1},
					entry{r, off + grid.Flat(0, j), -1})
			}
		}
	}
	for _, c := range cuts {
		r := addRow(-inf, tau-c.nom)
		for i := range c.cols {
			entries = append(entries, entry{r, c.cols[i], c.vals[i]})
		}
	}
	tr := qp.NewTriplet(row, cs.nVar)
	for _, e := range entries {
		tr.Add(e.r, e.c, e.v)
	}
	return &qp.Problem{P: ptr.Compile(), Q: cs.q, A: tr.Compile(), L: l, U: u}
}

// solveTau minimizes Δleakage subject to MCT ≤ tau by cut generation,
// abandoning the probe as soon as the objective provably exceeds xiNW
// (cuts only shrink the feasible set, so the round objectives are
// non-decreasing — once above the budget the probe can never recover).
// Pass +Inf for a plain QP solve.  It returns the model objective in nW;
// feasible is false when the probe is infeasible or over budget.  A
// canceled context aborts between cut rounds with an error wrapping
// context.Canceled.
func (cs *cutSolver) solveTau(ctx context.Context, tau, xiNW float64) (obj float64, feasible bool, err error) {
	cs.rec = obs.From(ctx)
	opt := cs.opt
	tolPs := opt.CutTolPs
	if tolPs <= 0 {
		tolPs = 2e-4 * cs.golden.MCT
	}
	maxRounds := opt.CutRounds
	if maxRounds <= 0 {
		maxRounds = 60
	}
	perRound := opt.CutsPerRound
	if perRound <= 0 {
		perRound = 64
	}
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return 0, false, fmt.Errorf("core: cut probe canceled at round %d: %w", round, err)
		}
		cs.rounds++
		cs.rec.Add("core/cut_rounds", 1)
		if err := cs.ensure(tau, cs.pool.snapshot()); err != nil {
			return 0, false, err
		}
		res, err := cs.solver.SolveCtx(ctx)
		cs.solves++
		if err != nil {
			return 0, false, err
		}
		if res.Status == qp.PrimalInfeasible {
			cs.resetSolver() // certificate duals would poison warm starts
			return 0, false, nil
		}
		if res.Status != qp.Solved && cs.solver.MaxViolation(res.X) > 0.2 {
			// Still stalled after the in-solver restarts: retry the round
			// once on a completely fresh solver (new equilibration and
			// ADMM state) warm-started at the stalled iterate, under the
			// same iteration budget.  Genuinely infeasible probes fail
			// both attempts and are cut off here rather than after a
			// multiple of the budget.
			solver, err := qp.NewSolver(cs.prob, opt.QP)
			if err != nil {
				return 0, false, err
			}
			if err := solver.WarmStart(res.X, res.Y); err != nil {
				return 0, false, err
			}
			res, err = solver.SolveCtx(ctx)
			cs.solves++
			if err != nil {
				return 0, false, err
			}
			viol := solver.MaxViolation(res.X)
			cs.resetSolver()
			if res.Status == qp.PrimalInfeasible {
				return 0, false, nil
			}
			if res.Status != qp.Solved && viol > 0.5 {
				return 0, false, fmt.Errorf("core: cut QP did not converge (τ=%.1f, round %d, viol %.3g)",
					tau, round, viol)
			}
			// Residual violations below half a percent of dose (or half
			// a picosecond on a cut) are absorbed by map legalization
			// and re-measured by golden signoff.
		}
		cs.saveDuals(res.Y)
		copy(cs.x, res.X)
		// Clamp numerical box slop before evaluating timing.
		for j := 0; j < cs.nVar; j++ {
			cs.x[j] = clamp(cs.x[j], opt.DoseLo, opt.DoseHi)
		}
		if o := cs.objective(cs.x); o > xiNW+xiTolerance(cs.golden, xiNW) {
			return o, false, nil
		}
		delta := cs.deltaFn(cs.x)
		_, mct := linearArrivals(cs.golden, delta)
		if mct <= tau+tolPs {
			return cs.objective(cs.x), true, nil
		}
		// Generate violated path cuts.
		arcFn := func(from, to int) float64 {
			a := cs.golden.ArcDelay(from, to)
			if cs.golden.In.Circ.Gates[to].Kind == netlist.Comb {
				a += delta(to)
			}
			return a
		}
		startFn := func(id int) float64 {
			s := cs.golden.StartWeight(id)
			if cs.golden.In.Circ.Gates[id].Kind == netlist.Seq {
				s += delta(id)
			}
			return s
		}
		paths := sta.TopPathsDAG(cs.golden.In.Circ, cs.order, arcFn, startFn, cs.golden.EndWeight,
			perRound, 0)
		added := 0
		for _, p := range paths {
			if p.Delay <= tau+tolPs/2 {
				break // paths arrive in non-increasing delay order
			}
			if cs.pool.add(cs.makeCut(p, cs.x)) {
				added++
			}
		}
		cs.rec.Add("core/cuts_added", int64(added))
		if cs.rec != nil {
			cs.rec.Set("core/cut_pool_size", float64(cs.pool.size()))
		}
		if added == 0 {
			// All violating paths already cut but the QP solution still
			// violates: solver tolerance floor.  Accept if close.
			if mct <= tau+5*tolPs {
				return cs.objective(cs.x), true, nil
			}
			return 0, false, fmt.Errorf("core: cut generation stalled at τ=%.1f (mct %.1f)", tau, mct)
		}
	}
	return 0, false, errors.New("core: cut generation exceeded round budget")
}

// objective evaluates the model Δleakage of dose vector x in nW.
func (cs *cutSolver) objective(x []float64) float64 {
	obj := 0.0
	for j := 0; j < cs.nVar; j++ {
		obj += 0.5*cs.pd[j]*x[j]*x[j] + cs.q[j]*x[j]
	}
	return obj
}

// layers converts the iterate into dose maps, legalized onto the exact
// equipment-feasible set (range + smoothness) so downstream consumers
// never see solver slop.
func (cs *cutSolver) layers() dosemap.Layers {
	opt := cs.opt
	legalize := func(m *dosemap.Map) {
		if opt.Tiled {
			m.LegalizeTiled(opt.DoseLo, opt.DoseHi, opt.Delta, 50)
		} else {
			m.Legalize(opt.DoseLo, opt.DoseHi, opt.Delta, 50)
		}
	}
	poly := dosemap.NewMap(cs.grid)
	copy(poly.D, cs.x[:cs.nG])
	legalize(poly)
	out := dosemap.Layers{Poly: poly}
	if opt.BothLayers {
		act := dosemap.NewMap(cs.grid)
		copy(act.D, cs.x[cs.nG:2*cs.nG])
		legalize(act)
		out.Active = act
	}
	return out
}

// result packages the current iterate like the node-based path does.
func (cs *cutSolver) result(ctx context.Context, probes int) (*Result, error) {
	layers := cs.layers()
	// Reuse problem.predict via a light adapter.
	p := &problem{in: cs.golden.In, opt: cs.opt, model: cs.model, golden: cs.golden,
		grid: cs.grid, gridOf: cs.gridOf, nG: cs.nG}
	predMCT, predLeak := p.predict(layers)
	nominal := Eval{MCTps: cs.golden.MCT, LeakUW: nominalLeak(cs.golden)}
	gold, err := signoff(ctx, cs.golden, cs.opt, layers)
	if err != nil {
		return nil, err
	}
	nCuts := cs.pool.size()
	return &Result{
		Layers:          layers,
		PredMCT:         predMCT,
		PredDeltaLeakNW: predLeak,
		Nominal:         nominal,
		Golden:          gold,
		Probes:          probes,
		Rows:            nCuts,
		Cols:            cs.nVar,
		Status:          fmt.Sprintf("cuts=%d rounds=%d solves=%d", nCuts, cs.rounds, cs.solves),
	}, nil
}
