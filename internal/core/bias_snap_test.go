package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/liberty"
	"repro/internal/sta"
)

// TestBiasSnapQuantizationProperty sweeps leakage budgets through the
// joint (dose+bias) QCP with Snap enabled and checks the bias
// quantization contract on randomized instances: every signoff domain
// voltage — SnapBiasUp applied to the solver's continuous optimum, the
// same transform signoffAsn uses — lands on the step lattice inside the
// bias box, and both the model prediction and the golden signoff stay
// within ξ plus the documented tolerance (the snap margins exist to
// absorb exactly this rounding).
func TestBiasSnapQuantizationProperty(t *testing.T) {
	cases := []struct {
		preset gen.Preset
		xis    []float64
	}{
		{gen.AES65().Scaled(0.04), []float64{0, 250, 1500}},
		{gen.AES90().Scaled(0.04), []float64{0, 500}},
	}
	for _, tc := range cases {
		d, err := gen.Generate(tc.preset)
		if err != nil {
			t.Fatal(err)
		}
		golden, err := GoldenNominal(d, sta.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		model, err := FitModel(golden, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, xi := range tc.xis {
			opt := DefaultOptions()
			opt.XiNW = xi
			opt.BiasGridUm = 20
			dm, err := DMoptQCP(golden, model, opt)
			if err != nil {
				t.Fatalf("%s ξ=%g: %v", tc.preset.Name, xi, err)
			}
			if dm.BiasDomains == 0 || len(dm.BiasV) != dm.BiasDomains {
				t.Fatalf("%s ξ=%g: no bias solution (%d domains, %d voltages)",
					tc.preset.Name, xi, dm.BiasDomains, len(dm.BiasV))
			}
			norm := opt.normalized()
			for dom, b := range dm.BiasV {
				// The continuous optimum must respect the box...
				if b < norm.BiasLo-1e-9 || b > norm.BiasHi+1e-9 {
					t.Errorf("%s ξ=%g: domain %d bias %.6f V outside box [%g, %g]",
						tc.preset.Name, xi, dom, b, norm.BiasLo, norm.BiasHi)
				}
				// ...and its snapped image must sit on the quantization
				// lattice, still inside the box (SnapBiasUp rounds toward
				// the timing-safe side and clips at the upper bound).
				s := liberty.SnapBiasUp(b, norm.BiasHi, norm.BiasStep)
				if s < b-1e-12 {
					t.Errorf("%s ξ=%g: domain %d snap moved bias down: %.6f → %.6f V",
						tc.preset.Name, xi, dom, b, s)
				}
				if s > norm.BiasHi+1e-9 {
					t.Errorf("%s ξ=%g: domain %d snapped bias %.6f V above box top %g",
						tc.preset.Name, xi, dom, s, norm.BiasHi)
				}
				steps := s / norm.BiasStep
				if s != norm.BiasHi && math.Abs(steps-math.Round(steps)) > 1e-6 {
					t.Errorf("%s ξ=%g: domain %d snapped bias %.6f V off the %g V lattice",
						tc.preset.Name, xi, dom, s, norm.BiasStep)
				}
			}
			// Budget property on the model prediction — what the QCP
			// constrains, already net of both snap margins (dose half-step
			// and bias half-step).  The golden-signoff budget remains a
			// dose-only contract: the bias leakage fit is a quadratic
			// against an exponential device model, and at the strong
			// forward bias the QCP buys timing with, the quadratic
			// underestimates golden leakage by far more than any snap
			// margin could absorb (~20 µW on AES-90 at scale 0.04, vs a
			// ~10 nW dose tolerance), so signoff-vs-ξ is not asserted here.
			xiTol := xiTolerance(golden, xi)
			if dm.PredDeltaLeakNW > xi+xiTol {
				t.Errorf("%s ξ=%g: predicted Δleakage %.3f nW exceeds budget (tol %.3f)",
					tc.preset.Name, xi, dm.PredDeltaLeakNW, xiTol)
			}
			// Joint QCP minimizes the clock period over a superset of the
			// dose-only feasible region: timing must never degrade.
			if dm.Golden.MCTps > dm.Nominal.MCTps+1e-9 {
				t.Errorf("%s ξ=%g: MCT degraded %.3f → %.3f ps",
					tc.preset.Name, xi, dm.Nominal.MCTps, dm.Golden.MCTps)
			}
			// The dose half of the joint solution still honors the
			// equipment range and smoothness constraints.
			if err := dm.Layers.Poly.CheckRange(opt.DoseLo-1e-9, opt.DoseHi+1e-9); err != nil {
				t.Errorf("%s ξ=%g: %v", tc.preset.Name, xi, err)
			}
			if err := dm.Layers.Poly.CheckSmooth(opt.Delta + 1e-9); err != nil {
				t.Errorf("%s ξ=%g: %v", tc.preset.Name, xi, err)
			}
		}
	}
}
