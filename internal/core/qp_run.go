// QP solve stage (Section III-A.1 / III-B.1): minimize Δleakage under a
// fixed clock-period constraint.  DMoptQP* compile on demand;
// DMoptQPCompiled borrows a shared *Compiled artifact so variant jobs
// pay the formulation cost once.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/qp"
	"repro/internal/sta"
)

// DMoptQP solves "Dose Map Optimization for Improved Leakage Under Timing
// Constraint" (Section III-A.1 / III-B.1): minimize Δleakage subject to
// MCT ≤ tau (ps) plus range and smoothness constraints.
func DMoptQP(golden *sta.Result, model *Model, opt Options, tau float64) (*Result, error) {
	return DMoptQPCtx(context.Background(), golden, model, opt, tau)
}

// DMoptQPCtx is DMoptQP with cancellation: a canceled context aborts
// the solve between cut rounds / ADMM iterations with an error that
// wraps context.Canceled.
func DMoptQPCtx(ctx context.Context, golden *sta.Result, model *Model, opt Options, tau float64) (*Result, error) {
	c, err := CompileCtx(ctx, golden, model, opt.CompileOptions())
	if err != nil {
		return nil, err
	}
	return DMoptQPCompiled(ctx, c, opt, tau)
}

// DMoptQPCompiled runs the QP against a previously compiled artifact.
// opt must project onto the artifact's compile key.
func DMoptQPCompiled(ctx context.Context, c *Compiled, opt Options, tau float64) (*Result, error) {
	start := time.Now()
	ctx, sp := obs.Start(ctx, "core/qp")
	defer sp.End()
	opt = opt.normalized()
	if err := c.check(opt); err != nil {
		return nil, err
	}
	if tau <= 0 {
		return nil, errors.New("core: non-positive timing constraint")
	}
	if opt.Method == MethodCuts {
		cs := newCutSolverCompiled(c, opt)
		_, feasible, err := cs.solveTau(ctx, tau, math.Inf(1))
		if err != nil {
			return nil, err
		}
		if !feasible {
			return nil, fmt.Errorf("core: QP infeasible at τ = %.1f ps", tau)
		}
		r, err := cs.result(ctx, 1)
		if err != nil {
			return nil, err
		}
		r.Runtime = time.Since(start)
		return r, nil
	}
	prob, err := assemble(c, opt, tau-1, tau)
	if err != nil {
		return nil, err
	}
	solver, err := qp.NewSolver(prob.qpProb, opt.QP)
	if err != nil {
		return nil, err
	}
	res, err := solver.SolveCtx(ctx)
	if err != nil {
		return nil, err
	}
	if res.Status == qp.PrimalInfeasible {
		return nil, fmt.Errorf("core: QP infeasible at τ = %.1f ps", tau)
	}
	return finish(ctx, prob, res, 1, start)
}

// finish converts a node-assembly solution into a Result: extract,
// model prediction, and golden signoff.
func finish(ctx context.Context, prob *problem, res *qp.Result, probes int, start time.Time) (*Result, error) {
	c := prob.c
	layers := prob.extract(res.X)
	predMCT, predLeak := c.predict(layers)
	nominal := Eval{MCTps: c.Golden.MCT, LeakUW: c.nomLeakUW}
	golden, err := signoff(ctx, c.Golden, prob.opt, layers)
	if err != nil {
		return nil, err
	}
	nArr := 0
	for _, v := range prob.arrIdx {
		if v >= 0 {
			nArr++
		}
	}
	return &Result{
		Layers:          layers,
		PredMCT:         predMCT,
		PredDeltaLeakNW: predLeak,
		Nominal:         nominal,
		Golden:          golden,
		Probes:          probes,
		ArrivalVars:     nArr,
		Rows:            prob.Rows,
		Cols:            prob.nVar,
		Status:          res.Status.String(),
		Runtime:         time.Since(start),
	}, nil
}
