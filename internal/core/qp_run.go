// QP solve stage (Section III-A.1 / III-B.1): minimize Δleakage under a
// fixed clock-period constraint.  SolveQP is the single ctx-first entry
// point; a QPRequest either borrows a shared *Compiled artifact (so
// variant jobs pay the formulation cost once) or compiles on demand
// from (Golden, Model).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/qp"
	"repro/internal/sta"
)

// QPRequest describes one leakage-minimization solve.  Exactly one of
// the two artifact routes must be populated: Compiled (a shared
// pre-built formulation, whose compile key Opt must match) or the
// (Golden, Model) pair, which compiles on demand.
type QPRequest struct {
	// Compiled is an optional pre-built formulation artifact.
	Compiled *Compiled
	// Golden and Model feed the on-demand compile when Compiled is nil.
	Golden *sta.Result
	Model  *Model
	// Opt parameterizes the solve; it must project onto the artifact's
	// compile key when Compiled is set.
	Opt Options
	// TauPs is the clock-period bound in ps (MCT ≤ TauPs).
	TauPs float64
}

// compiled resolves the request's formulation artifact, compiling on
// demand when no shared one was supplied.
func (req QPRequest) compiled(ctx context.Context) (*Compiled, error) {
	if req.Compiled != nil {
		return req.Compiled, nil
	}
	if req.Golden == nil || req.Model == nil {
		return nil, errors.New("core: request needs either Compiled or (Golden, Model)")
	}
	return CompileCtx(ctx, req.Golden, req.Model, req.Opt.CompileOptions())
}

// DMoptQP solves "Dose Map Optimization for Improved Leakage Under Timing
// Constraint" (Section III-A.1 / III-B.1): minimize Δleakage subject to
// MCT ≤ tau (ps) plus range and smoothness constraints.
//
// Deprecated: use SolveQP.
func DMoptQP(golden *sta.Result, model *Model, opt Options, tau float64) (*Result, error) {
	return SolveQP(context.Background(), QPRequest{Golden: golden, Model: model, Opt: opt, TauPs: tau})
}

// DMoptQPCtx is DMoptQP with cancellation.
//
// Deprecated: use SolveQP.
func DMoptQPCtx(ctx context.Context, golden *sta.Result, model *Model, opt Options, tau float64) (*Result, error) {
	return SolveQP(ctx, QPRequest{Golden: golden, Model: model, Opt: opt, TauPs: tau})
}

// DMoptQPCompiled runs the QP against a previously compiled artifact.
//
// Deprecated: use SolveQP.
func DMoptQPCompiled(ctx context.Context, c *Compiled, opt Options, tau float64) (*Result, error) {
	return SolveQP(ctx, QPRequest{Compiled: c, Opt: opt, TauPs: tau})
}

// SolveQP solves the Section III QP: minimize Δleakage subject to
// MCT ≤ req.TauPs plus range and smoothness constraints.  A canceled
// context aborts the solve between cut rounds / ADMM iterations with an
// error that wraps context.Canceled.
func SolveQP(ctx context.Context, req QPRequest) (*Result, error) {
	c, err := req.compiled(ctx)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, sp := obs.Start(ctx, "core/qp")
	defer sp.End()
	opt := req.Opt.normalized()
	tau := req.TauPs
	if err := c.check(opt); err != nil {
		return nil, err
	}
	if tau <= 0 {
		return nil, errors.New("core: non-positive timing constraint")
	}
	if c.hasDose() && c.hasBias() {
		obs.Add(ctx, "core/joint_solves", 1)
	}
	if opt.Method == MethodCuts {
		cs := newCutSolverCompiled(c, opt)
		_, feasible, err := cs.solveTau(ctx, tau, math.Inf(1))
		if err != nil {
			return nil, err
		}
		if !feasible {
			return nil, fmt.Errorf("core: QP infeasible at τ = %.1f ps", tau)
		}
		r, err := cs.result(ctx, 1)
		if err != nil {
			return nil, err
		}
		r.Runtime = time.Since(start)
		return r, nil
	}
	prob, err := assemble(c, opt, tau-1, tau)
	if err != nil {
		return nil, err
	}
	solver, err := qp.NewSolver(prob.qpProb, opt.QP)
	if err != nil {
		return nil, err
	}
	res, err := solver.SolveCtx(ctx)
	if err != nil {
		return nil, err
	}
	if res.Status == qp.PrimalInfeasible {
		return nil, fmt.Errorf("core: QP infeasible at τ = %.1f ps", tau)
	}
	return finish(ctx, prob, res, 1, start)
}

// finish converts a node-assembly solution into a Result: extract,
// model prediction, and golden signoff.
func finish(ctx context.Context, prob *problem, res *qp.Result, probes int, start time.Time) (*Result, error) {
	c := prob.c
	asn := Assignment{Layers: prob.extract(res.X), BiasV: prob.extractBias(res.X)}
	layers := asn.Layers
	predMCT, predLeak := c.predictAsn(asn)
	nominal := Eval{MCTps: c.Golden.MCT, LeakUW: c.nomLeakUW}
	golden, err := signoffAsn(ctx, c, prob.opt, asn)
	if err != nil {
		return nil, err
	}
	nArr := 0
	for _, v := range prob.arrIdx {
		if v >= 0 {
			nArr++
		}
	}
	return &Result{
		Layers:          layers,
		PredMCT:         predMCT,
		PredDeltaLeakNW: predLeak,
		Nominal:         nominal,
		Golden:          golden,
		Probes:          probes,
		ArrivalVars:     nArr,
		Rows:            prob.Rows,
		Cols:            prob.nVar,
		BiasV:           asn.BiasV,
		BiasDomains:     c.nBias,
		Status:          res.Status.String(),
		Runtime:         time.Since(start),
	}, nil
}
