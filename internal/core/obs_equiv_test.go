package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// runFlowOnce generates a fresh design (dosePl mutates the placement, so
// the two runs must not share one) and executes the full QCP+dosePl flow
// under the given context.
func runFlowOnce(t *testing.T, ctx context.Context) *FlowOutcome {
	t.Helper()
	d, err := gen.Generate(gen.AES65().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	dopt := DefaultDosePlOptions()
	dopt.K = 400
	dopt.Rounds = 3
	opt := DefaultOptions()
	opt.Workers = 2 // exercise the par dispatch paths in both runs
	cfg := FlowConfig{Opt: opt, Mode: ModeQCPTiming, RunDosePl: true, DosePl: dopt}
	out, err := RunCtx(ctx, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func bitsEq(t *testing.T, name string, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Errorf("%s differs with telemetry enabled: %v vs %v", name, a, b)
	}
}

// TestObsEnabledBitwiseInert is the telemetry no-interference proof: the
// full flow (golden STA → fit → QCP bisection with cut pool → dosePl
// swapping) must produce bit-identical numerics whether or not a
// Recorder rides the context.
func TestObsEnabledBitwiseInert(t *testing.T) {
	off := runFlowOnce(t, context.Background())

	rec := obs.New()
	on := runFlowOnce(t, obs.With(context.Background(), rec))

	bitsEq(t, "golden MCT", off.Golden.MCT, on.Golden.MCT)
	bitsEq(t, "DM nominal MCT", off.DM.Nominal.MCTps, on.DM.Nominal.MCTps)
	bitsEq(t, "DM nominal leak", off.DM.Nominal.LeakUW, on.DM.Nominal.LeakUW)
	bitsEq(t, "DM golden MCT", off.DM.Golden.MCTps, on.DM.Golden.MCTps)
	bitsEq(t, "DM golden leak", off.DM.Golden.LeakUW, on.DM.Golden.LeakUW)
	bitsEq(t, "final MCT", off.Final.MCTps, on.Final.MCTps)
	bitsEq(t, "final leak", off.Final.LeakUW, on.Final.LeakUW)
	if off.DM.Probes != on.DM.Probes {
		t.Errorf("probe count differs: %d vs %d", off.DM.Probes, on.DM.Probes)
	}

	da, db := off.DM.Layers.Poly.D, on.DM.Layers.Poly.D
	if len(da) != len(db) {
		t.Fatalf("dose map size differs: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
			t.Fatalf("dose map cell %d differs: %v vs %v", i, da[i], db[i])
		}
	}

	if off.DosePl.SwapsTried != on.DosePl.SwapsTried ||
		off.DosePl.SwapsAccepted != on.DosePl.SwapsAccepted {
		t.Errorf("dosePl swap trace differs: tried %d/%d accepted %d/%d",
			off.DosePl.SwapsTried, on.DosePl.SwapsTried,
			off.DosePl.SwapsAccepted, on.DosePl.SwapsAccepted)
	}
	bitsEq(t, "dosePl after MCT", off.DosePl.After.MCTps, on.DosePl.After.MCTps)
	bitsEq(t, "dosePl after leak", off.DosePl.After.LeakUW, on.DosePl.After.LeakUW)

	// The enabled run must actually have recorded something — otherwise
	// this test silently proves nothing.
	snap := rec.Snapshot()
	for _, c := range []string{"qp/solves", "sta/analyses"} {
		if snap.Counters[c] == 0 {
			t.Errorf("telemetry counter %s empty in enabled run", c)
		}
	}
	// Every bisection iteration is either a Newton/secant step or a
	// bisection fallback, so the τ-probe counters cannot both be empty;
	// likewise every LDLᵀ x-step either factors a fresh (ρ, epoch) pair
	// or restores a cached one.  (Zero-valued counters are never
	// recorded, so absence is the failure signature here.)
	if snap.Counters["core/tau_newton_steps"]+snap.Counters["core/tau_bisect_fallbacks"] == 0 {
		t.Error("no τ-probe step counters recorded in enabled run")
	}
	if snap.Counters["qp/factorizations"]+snap.Counters["qp/factor_cache_hits"] == 0 {
		t.Error("no LDLᵀ factor counters recorded in enabled run")
	}
	// Supernodal hot-path telemetry: the dense panel kernels always do
	// work on the dose-map systems, and the solver records the supernode
	// partition shape of its live factor after every solve.
	if snap.Counters["qp/dense_flops"] == 0 {
		t.Error("qp/dense_flops empty in enabled run")
	}
	for _, g := range []string{"qp/supernodes", "qp/supernode_cols_max"} {
		if snap.Gauges[g] == 0 {
			t.Errorf("supernode gauge %s empty in enabled run", g)
		}
	}
	if len(snap.Spans) == 0 {
		t.Error("no spans recorded in enabled run")
	}
}

// TestWaferObsBitwiseInert extends the no-interference proof to the
// wafer consensus path and pins the multi-RHS batching telemetry: the
// coupled solve must be bit-identical with and without a Recorder, and
// the enabled run must show the lockstep batch actually firing
// (qp/solve_batches > 0 with more right-hand sides than batches — the
// whole point of sharing the factor across a column group).
func TestWaferObsBitwiseInert(t *testing.T) {
	comp := waferComp(t, 0.05)
	run := func(ctx context.Context) *WaferResult {
		opt := DefaultOptions()
		opt.Workers = 2
		r, err := SolveWafer(ctx, WaferRequest{Compiled: comp, Opt: opt, Wafer: smokeWafer()})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	off := run(context.Background())
	rec := obs.New()
	on := run(obs.With(context.Background(), rec))
	waferBitsEq(t, off, on)

	snap := rec.Snapshot()
	batches := snap.Counters["qp/solve_batches"]
	rhs := snap.Counters["qp/solve_rhs"]
	if batches == 0 {
		t.Error("qp/solve_batches empty: wafer consensus never used the multi-RHS path")
	}
	if rhs <= batches {
		t.Errorf("qp/solve_rhs = %d not above qp/solve_batches = %d: batches carried no extra right-hand sides", rhs, batches)
	}
	if snap.Counters["qp/batch_lockstep_solves"] == 0 {
		t.Error("qp/batch_lockstep_solves empty: column groups always fell back to sequential solves")
	}
}
