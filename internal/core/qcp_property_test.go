package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/power"
	"repro/internal/sta"
)

// TestQCPLeakageBudgetProperty sweeps leakage budgets ξ on two designs
// and checks the QCP contract from Eq. 7/12 end to end: the golden
// signoff Δleakage respects ξ (within the documented acceptance
// tolerance), timing never degrades versus nominal, and the returned
// dose maps satisfy the equipment range and smoothness constraints the
// optimizer was given.
func TestQCPLeakageBudgetProperty(t *testing.T) {
	cases := []struct {
		preset gen.Preset
		xis    []float64
	}{
		{gen.AES65().Scaled(0.04), []float64{0, 60, 250}},
		{gen.AES90().Scaled(0.04), []float64{0, 120}},
	}
	for _, tc := range cases {
		d, err := gen.Generate(tc.preset)
		if err != nil {
			t.Fatal(err)
		}
		golden, err := GoldenNominal(d, sta.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		model, err := FitModel(golden, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, xi := range tc.xis {
			opt := DefaultOptions()
			opt.XiNW = xi
			dm, err := DMoptQCP(golden, model, opt)
			if err != nil {
				t.Fatalf("%s ξ=%g: %v", tc.preset.Name, xi, err)
			}
			xiTol := xiTolerance(golden, xi)
			// Budget property on the model prediction (what the QCP
			// constrains directly)...
			if dm.PredDeltaLeakNW > xi+xiTol {
				t.Errorf("%s ξ=%g: predicted Δleakage %.3f nW exceeds budget (tol %.3f)",
					tc.preset.Name, xi, dm.PredDeltaLeakNW, xiTol)
			}
			// ...and on the golden signoff after timing-safe snapping,
			// which the snap margin is supposed to keep inside ξ too.
			dLeakNW := (dm.Golden.LeakUW - dm.Nominal.LeakUW) * power.NWPerUW
			if dLeakNW > xi+xiTol {
				t.Errorf("%s ξ=%g: signoff Δleakage %.3f nW exceeds budget (tol %.3f)",
					tc.preset.Name, xi, dLeakNW, xiTol)
			}
			// QCP minimizes the clock period: it must never end slower
			// than nominal.
			if dm.Golden.MCTps > dm.Nominal.MCTps+1e-9 {
				t.Errorf("%s ξ=%g: MCT degraded %.3f → %.3f ps",
					tc.preset.Name, xi, dm.Nominal.MCTps, dm.Golden.MCTps)
			}
			// Dose-map feasibility: equipment range and neighbor
			// smoothness as configured.
			if err := dm.Layers.Poly.CheckRange(opt.DoseLo-1e-9, opt.DoseHi+1e-9); err != nil {
				t.Errorf("%s ξ=%g: %v", tc.preset.Name, xi, err)
			}
			if err := dm.Layers.Poly.CheckSmooth(opt.Delta + 1e-9); err != nil {
				t.Errorf("%s ξ=%g: %v", tc.preset.Name, xi, err)
			}
		}
	}
}
