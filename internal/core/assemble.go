// Node-based assembly (MethodNode): the Eq. 5/10 program verbatim, with
// one arrival variable per timing-relevant gate.  Unlike the cut engine
// the constraint matrix depends on the pruning threshold (and therefore
// on τ), so each run assembles its own instance — but it borrows the
// compiled grid, gate→grid map, objective terms and worst-case pruning
// arrivals instead of rebuilding them.
package core

import (
	"math"

	"repro/internal/dosemap"
	"repro/internal/netlist"
	"repro/internal/qp"
)

// problem is an assembled node-based DMopt instance ready for
// (repeated) solving.  It borrows the *Compiled formulation and owns
// the per-run pruning index, bounds and solver problem.
type problem struct {
	c   *Compiled
	opt Options

	nVar   int   // dose variables + arrival variables
	arrIdx []int // gate → arrival-variable index, or -1

	qpProb  *qp.Problem
	l, u    []float64
	endRows []endRow
	Rows    int
}

type endRow struct {
	row int
	off float64 // row bound is τ − off
}

// assemble builds the QP instance.  pruneThresh is the linear-model path
// delay below which (under the slowest reachable dose) a gate can never
// constrain the clock period; tau0 initializes the endpoint bounds.
func assemble(c *Compiled, opt Options, pruneThresh, tau0 float64) (*problem, error) {
	golden := c.Golden
	in := golden.In
	p := &problem{c: c, opt: opt}
	nG := c.NG

	// Pruning against the compiled worst-case (slowest-dose) arrivals
	// and suffixes.
	worstArr, worstSuf := c.worstArr, c.worstSuf
	n := in.Circ.NumGates()
	p.arrIdx = make([]int, n)
	nArr := 0
	base := c.NVar
	for id, g := range in.Circ.Gates {
		p.arrIdx[id] = -1
		if g.Kind != netlist.Comb && g.Kind != netlist.Seq {
			continue
		}
		if math.IsInf(worstSuf[id], -1) {
			continue // dead end: no path to an endpoint
		}
		if worstArr[id]+worstSuf[id] >= pruneThresh {
			p.arrIdx[id] = base + nArr
			nArr++
		}
	}
	p.nVar = base + nArr

	// Objective: the compiled dose terms widened with zero-cost arrival
	// variables.
	pd := make([]float64, p.nVar) // diagonal of P
	q := make([]float64, p.nVar)
	copy(pd, c.dosePD)
	copy(q, c.doseQ)
	ptr := qp.NewTriplet(p.nVar, p.nVar)
	for j, v := range pd {
		if v != 0 {
			ptr.Add(j, j, v)
		}
	}

	// Constraints: collect entries first (the row count is only known at
	// the end), then compile into CSR.
	type entry struct {
		r, c int
		v    float64
	}
	var entries []entry
	var l, u []float64
	row := 0
	addRow := func(lo, hi float64) int {
		l = append(l, lo)
		u = append(u, hi)
		r := row
		row++
		return r
	}
	add := func(r, c int, v float64) { entries = append(entries, entry{r, c, v}) }
	inf := math.Inf(1)

	nLayers := 1
	if opt.BothLayers {
		nLayers = 2
	}
	if opt.DoseOff {
		nLayers = 0
	}
	// Box (Eq. 3/8) per actuator block: dose blocks take the run range
	// (identical to the compile key), the bias block its compiled box.
	for _, b := range c.Blocks {
		lo, hi := opt.DoseLo, opt.DoseHi
		if b.Name == "bias" {
			lo, hi = b.Lo, b.Hi
		}
		for k := 0; k < b.N; k++ {
			r := addRow(lo, hi)
			add(r, b.Off+k, 1)
		}
	}
	// Smoothness (Eq. 4/9): right, down, and down-right diagonal pairs
	// (dose layers only; bias domains have no smoothness coupling).
	grid := c.Grid
	for layer := 0; layer < nLayers; layer++ {
		off := layer * nG
		for i := 0; i < grid.M; i++ {
			for j := 0; j < grid.N; j++ {
				a := grid.Flat(i, j)
				pairs := [][2]int{}
				if j+1 < grid.N {
					pairs = append(pairs, [2]int{a, grid.Flat(i, j+1)})
				}
				if i+1 < grid.M {
					pairs = append(pairs, [2]int{a, grid.Flat(i+1, j)})
				}
				if i+1 < grid.M && j+1 < grid.N {
					pairs = append(pairs, [2]int{a, grid.Flat(i+1, j+1)})
				}
				for _, pr := range pairs {
					r := addRow(-opt.Delta, opt.Delta)
					add(r, off+pr[0], 1)
					add(r, off+pr[1], -1)
				}
			}
		}
	}
	// Timing (Eq. 5/10).  Each gate's actuator sensitivities enter
	// through its compiled concatenated row (dose layers, then bias
	// domain), negated onto the arrival inequality.
	sens := func(r, id int) {
		for k := c.sensPtr[id]; k < c.sensPtr[id+1]; k++ {
			add(r, c.sensCol[k], -c.sensVal[k])
		}
	}
	for id, g := range in.Circ.Gates {
		ai := p.arrIdx[id]
		if ai < 0 {
			continue
		}
		switch g.Kind {
		case netlist.Seq:
			// Launch: a_s ≥ clk2q_nom + A·Ds·dP (+ B·Ds·dA) (+ DB·b).
			r := addRow(golden.AOut[id], inf)
			add(r, ai, 1)
			sens(r, id)
		case netlist.Comb:
			for _, fi := range g.Fanins {
				arc := golden.ArcDelay(fi, id)
				r := addRow(0, inf) // filled below
				add(r, ai, 1)
				sens(r, id)
				if fj := p.arrIdx[fi]; fj >= 0 {
					add(r, fj, -1)
					l[r] = arc
				} else {
					// Excluded driver: conservative constant arrival.
					l[r] = arc + worstArr[fi]
				}
			}
		}
	}
	// Endpoint rows: a_r ≤ τ − wire − endWeight for every endpoint fanin.
	for id, g := range in.Circ.Gates {
		if g.Kind != netlist.PO && g.Kind != netlist.Seq {
			continue
		}
		for _, fi := range g.Fanins {
			fj := p.arrIdx[fi]
			if fj < 0 {
				continue // pruned: cannot reach τ by construction
			}
			off := golden.ArcDelay(fi, id) + golden.EndWeight(id)
			r := addRow(-inf, tau0-off)
			add(r, fj, 1)
			p.endRows = append(p.endRows, endRow{row: r, off: off})
		}
	}

	tr := qp.NewTriplet(row, p.nVar)
	for _, e := range entries {
		tr.Add(e.r, e.c, e.v)
	}
	p.qpProb = &qp.Problem{P: ptr.Compile(), Q: q, A: tr.Compile(), L: l, U: u}
	p.l, p.u = l, u
	p.Rows = row
	return p, nil
}

// setBoundsTau rewrites the endpoint-row upper bounds for a new clock
// period probe and pushes them into the warm solver.
func (p *problem) setBoundsTau(s *qp.Solver, tau float64) error {
	for _, er := range p.endRows {
		p.u[er.row] = tau - er.off
	}
	return s.UpdateBounds(p.l, p.u)
}

// extract converts a QP solution into legalized dose maps (a zero poly
// map when the dose actuator is off, keeping map consumers total).
func (p *problem) extract(x []float64) dosemap.Layers {
	c := p.c
	poly := dosemap.NewMap(c.Grid)
	if p.opt.DoseOff {
		return dosemap.Layers{Poly: poly}
	}
	copy(poly.D, x[:c.NG])
	poly.Legalize(p.opt.DoseLo, p.opt.DoseHi, p.opt.Delta, 50)
	layers := dosemap.Layers{Poly: poly}
	if p.opt.BothLayers {
		act := dosemap.NewMap(c.Grid)
		copy(act.D, x[c.NG:2*c.NG])
		act.Legalize(p.opt.DoseLo, p.opt.DoseHi, p.opt.Delta, 50)
		layers.Active = act
	}
	return layers
}

// extractBias copies the bias-block variables out of a QP solution,
// clamped onto the compiled bias box (nil when bias is off).
func (p *problem) extractBias(x []float64) []float64 {
	c := p.c
	if c.nBias == 0 {
		return nil
	}
	bv := make([]float64, c.nBias)
	for d := range bv {
		bv[d] = clamp(x[c.biasOff+d], c.Opts.BiasLo, c.Opts.BiasHi)
	}
	return bv
}
