package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Mode selects which DMopt formulation the flow runs.
type Mode int

const (
	// ModeQPLeakage minimizes leakage under a timing constraint
	// (Section III QP).
	ModeQPLeakage Mode = iota
	// ModeQCPTiming minimizes the clock period under a leakage
	// constraint (Section III QCP).
	ModeQCPTiming
)

func (m Mode) String() string {
	switch m {
	case ModeQPLeakage:
		return "QP"
	case ModeQCPTiming:
		return "QCP"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// FlowConfig drives the end-to-end optimization flow of Fig. 7.
type FlowConfig struct {
	Opt Options
	// Mode picks the formulation.
	Mode Mode
	// TauPs is the QP clock-period bound; 0 means the design's nominal
	// MCT ("improve leakage without degrading timing").
	TauPs float64
	// RunDosePl appends the dose-map-aware placement rounds.
	RunDosePl bool
	DosePl    DosePlOptions
}

// FlowOutcome bundles everything the flow produced.
type FlowOutcome struct {
	Golden *sta.Result // nominal golden analysis (pre-optimization)
	Model  *Model
	DM     *Result
	DosePl *DosePlResult // nil unless requested
	// Final is the last signoff: after DMopt, or after dosePl when run.
	Final Eval
}

// InputOf adapts a generated design to the STA view.
func InputOf(d *gen.Design) sta.Input {
	return sta.Input{Circ: d.Circ, Masters: d.Masters, Pl: d.Pl, Node: d.Node}
}

// GoldenNominal analyzes the unoptimized design.
func GoldenNominal(d *gen.Design, cfg sta.Config) (*sta.Result, error) {
	return sta.Analyze(InputOf(d), cfg, nil)
}

// GoldenNominalCtx is GoldenNominal with cancellation.
func GoldenNominalCtx(ctx context.Context, d *gen.Design, cfg sta.Config) (*sta.Result, error) {
	return sta.AnalyzeCtx(ctx, InputOf(d), cfg, nil)
}

// FlowRequest describes one end-to-end Fig. 7 run: the design plus the
// flow configuration.
type FlowRequest struct {
	Design *gen.Design
	Config FlowConfig
}

// Run executes the Fig. 7 flow.
//
// Deprecated: use SolveFlow.
func Run(d *gen.Design, cfg FlowConfig) (*FlowOutcome, error) {
	return SolveFlow(context.Background(), FlowRequest{Design: d, Config: cfg})
}

// RunCtx is Run with cancellation.
//
// Deprecated: use SolveFlow.
func RunCtx(ctx context.Context, d *gen.Design, cfg FlowConfig) (*FlowOutcome, error) {
	return SolveFlow(ctx, FlowRequest{Design: d, Config: cfg})
}

// SolveFlow executes the Fig. 7 flow: golden analysis → coefficient
// fitting → DMopt → golden signoff → optional dosePl rounds.  A
// canceled context aborts whichever stage is in flight — golden
// analysis between levels, fitting between gates, DMopt between cut
// rounds / ADMM iterations / bisection probes, dosePl between rounds —
// with an error wrapping context.Canceled.
func SolveFlow(ctx context.Context, req FlowRequest) (*FlowOutcome, error) {
	d, cfg := req.Design, req.Config
	if d == nil {
		return nil, fmt.Errorf("core: flow request has no design")
	}
	cfg.Opt = cfg.Opt.normalized()
	if cfg.RunDosePl && (cfg.Opt.useBias() || cfg.Opt.DoseOff) {
		// dosePl moves cells across the die, which both needs dose maps
		// to trade against and would invalidate the bias-domain
		// assignment (wells are fixed silicon, not re-floorplanned per
		// optimization round).
		return nil, fmt.Errorf("core: dosePl rounds require the dose-only formulation")
	}
	gctx, sp := obs.Start(ctx, "flow/golden")
	golden, err := GoldenNominalCtx(gctx, d, cfg.Opt.STA)
	sp.End()
	if err != nil {
		return nil, err
	}
	fctx, sp := obs.Start(ctx, "flow/fit")
	model, err := FitModelCtx(fctx, golden, cfg.Opt.BothLayers, cfg.Opt.Workers)
	sp.End()
	if err != nil {
		return nil, err
	}
	var dm *Result
	dctx, sp := obs.Start(ctx, "flow/dmopt")
	switch cfg.Mode {
	case ModeQPLeakage:
		tau := cfg.TauPs
		if tau <= 0 {
			tau = golden.MCT
		}
		dm, err = SolveQP(dctx, QPRequest{Golden: golden, Model: model, Opt: cfg.Opt, TauPs: tau})
	case ModeQCPTiming:
		dm, err = SolveQCP(dctx, QCPRequest{Golden: golden, Model: model, Opt: cfg.Opt})
	default:
		err = fmt.Errorf("core: unknown flow mode %v", cfg.Mode)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	out := &FlowOutcome{Golden: golden, Model: model, DM: dm, Final: dm.Golden}
	if cfg.RunDosePl {
		pctx, sp := obs.Start(ctx, "flow/dosepl")
		dp, err := DosePlCtx(pctx, golden, dm.Layers, cfg.Opt, cfg.DosePl)
		sp.End()
		if err != nil {
			return nil, err
		}
		out.DosePl = dp
		out.Final = dp.After
	}
	return out, nil
}

// BiasPerturb builds the Fig. 10 "Bias" reference design: every gate on
// the top-K critical paths receives the maximum possible exposure dose
// (+5%, i.e. ΔL = -10 nm), showing the optimization headroom left after
// the smoothness- and leakage-constrained DMopt.
func BiasPerturb(golden *sta.Result, k, maxStates int, doseHi float64) *sta.Perturb {
	in := golden.In
	n := in.Circ.NumGates()
	dl := make([]float64, n)
	for _, p := range golden.TopPaths(k, maxStates) {
		for _, id := range p.Nodes {
			if in.Masters[id] != nil {
				dl[id] = tech.DoseToLength(doseHi)
			}
		}
	}
	return &sta.Perturb{DL: dl}
}

// PathSlackProfile returns the sorted (ascending) slacks in ps of the
// top-K paths of the analysis at clock period T — the Fig. 10 y-axis.
func PathSlackProfile(r *sta.Result, k, maxStates int, period float64) []float64 {
	paths := r.TopPaths(k, maxStates)
	out := make([]float64, len(paths))
	for i, p := range paths {
		out[i] = p.Slack(period)
	}
	sort.Float64s(out)
	return out
}

// EvalPerturb runs golden STA + power on an arbitrary perturbation and
// returns the signoff snapshot (used by the uniform-dose sweep tables).
func EvalPerturb(in sta.Input, cfg sta.Config, pert *sta.Perturb) (Eval, *sta.Result, error) {
	return EvalPerturbCtx(context.Background(), in, cfg, pert)
}

// EvalPerturbCtx is EvalPerturb with cancellation.
func EvalPerturbCtx(ctx context.Context, in sta.Input, cfg sta.Config, pert *sta.Perturb) (Eval, *sta.Result, error) {
	r, err := sta.AnalyzeCtx(ctx, in, cfg, pert)
	if err != nil {
		return Eval{}, nil, err
	}
	var dl, dw, dvth []float64
	if pert != nil {
		dl, dw, dvth = pert.DL, pert.DW, pert.DVth
	}
	return Eval{MCTps: r.MCT, LeakUW: power.TotalV(in.Masters, dl, dw, dvth)}, r, nil
}
