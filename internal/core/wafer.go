// Wafer solve stage: full-wafer, multi-field dose co-optimization
// (ROADMAP "Full-wafer, multi-field optimization"; the paper's § II
// equipment model and footnote 1).
//
// Every exposure field prints the same design, so all fields share one
// *Compiled artifact; what differs per field is the across-wafer
// linewidth variation (AWLV) fingerprint — a field-local CD bias b_f in
// nm from dosemap.RadialCD.FieldCD.  The whole formulation runs in
// "effective dose" space: with Ds the dose sensitivity (nm/%), a CD
// bias b_f is indistinguishable from a virtual uniform dose
// δ_f = b_f/Ds, so the field's physical state under actuator dose x is
// fully described by y = x + δ_f (ΔL = Ds·y).  Leakage, timing, path
// cuts, smoothness and golden signoff are all functions of y and are
// therefore IDENTICAL across fields; only the box constraint moves:
// y ∈ [DoseLo+δ_f, DoseHi+δ_f].  A per-field problem is the base
// problem with shifted bounds — nothing else recompiles.
//
// Coupling (§ II equipment model): fields in the same scan column share
// the scanner's cross-slit dose profile.  We express the shared profile
// as the zero-mean column-mean deviation e_j = colmean_j(y) − mean(y)
// (the per-field Dosicom offset — the mean — stays free, and δ_f
// cancels out of e, so the consensus variable is bias-free).  The
// coupling "e identical across fields of a scan column" is resolved by
// consensus-ADMM: each field solves its QP against the current
// consensus profile z and scaled dual u (penalty (ρw/2)·‖e − z + u‖²),
// then z is re-averaged and the duals updated.  The penalty enters the
// per-field QP through auxiliary variables (column means s_j, grand
// mean g, deviations e_j) tied to the dose variables by sparse equality
// rows, keeping the objective diagonal — so the existing cutting-plane
// engine, LDLᵀ backend, ρ-ladder factor cache and warm starts all apply
// unchanged, and the linear penalty target moves between outer
// iterations via qp.Solver.UpdateLinear (no refactorization).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dosemap"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/qp"
	"repro/internal/sta"
	"repro/internal/tech"
)

// WaferOptions parameterizes the wafer layout, the AWLV fingerprint and
// the consensus outer loop.  Zero values select defaults.
type WaferOptions struct {
	// DiameterMM, FieldWmm, FieldHmm, EdgeMM describe the step-and-scan
	// layout (defaults: a 300 mm wafer with 26×33 mm fields and 3 mm
	// edge exclusion — the production geometry).
	DiameterMM, FieldWmm, FieldHmm, EdgeMM float64
	// Fingerprint is the radial CD bias signature in nm.  The zero value
	// is a flat wafer (no bias anywhere).
	Fingerprint dosemap.RadialCD
	// RhoW is the consensus penalty ρw; zero selects the mean dose
	// curvature aggregated over a grid column.
	RhoW float64
	// MaxOuter bounds the consensus-ADMM outer iterations (default 8).
	MaxOuter int
	// ConsensusTol is the convergence tolerance on the slit-profile
	// agreement in dose percent (default 1e-3).
	ConsensusTol float64
	// TauGuard is the relative guard added to the worst uncoupled clock
	// period to form the common wafer target τ̄ (default 0.005).
	TauGuard float64
}

func (w WaferOptions) normalized() WaferOptions {
	if w.DiameterMM <= 0 {
		w.DiameterMM = 300
	}
	if w.FieldWmm <= 0 {
		w.FieldWmm = 26
	}
	if w.FieldHmm <= 0 {
		w.FieldHmm = 33
	}
	if w.EdgeMM < 0 {
		w.EdgeMM = 0
	} else if w.EdgeMM == 0 {
		w.EdgeMM = 3
	}
	if w.MaxOuter <= 0 {
		w.MaxOuter = 8
	}
	if w.ConsensusTol <= 0 {
		w.ConsensusTol = 1e-3
	}
	if w.TauGuard <= 0 {
		w.TauGuard = 0.005
	}
	return w
}

// WaferRequest describes one full-wafer co-optimization.  Artifact
// resolution follows QPRequest: Compiled when set, else an on-demand
// compile from (Golden, Model).  Opt is the per-field configuration
// (poly-only, untiled; Snap is forced off so quantization noise does
// not swamp the across-wafer spread comparison).
type WaferRequest struct {
	Compiled *Compiled
	Golden   *sta.Result
	Model    *Model
	Opt      Options
	Wafer    WaferOptions

	// procOrder optionally permutes the order in which the independent
	// column-group jobs are dispatched; results land in canonical slots
	// regardless, which the determinism tests exploit to shuffle the
	// completion order.
	procOrder []int
}

// WaferField is one exposure field's outcome across the three stages.
type WaferField struct {
	// Col, Row index the field; CX, CY are its center in mm.
	Col, Row int
	CX, CY   float64
	// CDBiasNm is the fingerprint's mean CD bias over the field;
	// BiasDosePct is the equivalent virtual dose δ = bias/Ds.
	CDBiasNm    float64
	BiasDosePct float64
	// Uniform, Uncoupled and Coupled are the golden signoffs of the
	// three stages: uniform nominal dose, an isolated per-field QCP, and
	// the consensus-coupled wafer solve at the common target τ̄.
	Uniform, Uncoupled, Coupled Eval
	// UncoupledPredMCT is the per-field QCP's model clock period; the
	// wafer target τ̄ is the maximum over fields plus a guard.
	UncoupledPredMCT float64
	// Dose is the coupled stage's physical dose map in percent (the
	// solved effective map minus the virtual bias dose).
	Dose *dosemap.Map
}

// WaferResult is the outcome of SolveWafer.
type WaferResult struct {
	// Wafer is the resolved step-and-scan layout.
	Wafer *dosemap.Wafer
	// Fields holds one entry per wafer field, in layout order.
	Fields []WaferField
	// TauPs is the common coupled clock-period target τ̄ in ps.
	TauPs float64
	// Spread of golden MCT across fields per stage, in percent of the
	// per-stage minimum.
	UniformSpreadPct, UncoupledSpreadPct, CoupledSpreadPct float64
	// NomLeakUW is the zero-dose leakage (the shared ξ budget anchor).
	NomLeakUW float64
	// Groups is the number of distinct column-signature consensus
	// groups the wafer collapsed to.
	Groups int
	// OuterIters and FieldSolves count consensus outer iterations and
	// per-field QP solves (dedup-adjusted) across all column groups.
	OuterIters, FieldSolves int
	// Residuals is the per-outer-iteration consensus residual (worst
	// across column groups, dose percent).
	Residuals []float64
	// Profiles maps each wafer scan column to its shared cross-slit
	// consensus profile (zero-mean, dose percent, one entry per grid
	// column).  Columns sharing a bias signature share the same slice.
	Profiles map[int][]float64
	// Runtime is the wall-clock time of the whole wafer solve.
	Runtime time.Duration
}

// polishBoost is the penalty multiplier of the final consensus polish
// solve: after the ADMM loop converges, each field re-solves once with
// the penalty target pinned at the final consensus and the penalty
// boosted, pulling the slit deviation onto z to solver precision before
// the exact column adjustment.
const polishBoost = 1e4

// privatizeLinear replaces the borrowed read-only linear term with the
// cutSolver's own mutable copy (the consensus loop rewrites the penalty
// entries every outer iteration).
func (cs *cutSolver) privatizeLinear() {
	cs.q = append([]float64(nil), cs.q...)
}

// refreshLinear pushes an in-place mutation of cs.q into the live
// persistent solver.  Before the first build this is a no-op —
// buildProblem hands the same slice to the next solver.
func (cs *cutSolver) refreshLinear() error {
	if cs.solver == nil {
		return nil
	}
	return cs.solver.UpdateLinear(cs.q)
}

// deriveField derives a per-field view of the shared artifact in
// effective-dose space: the box rows and options shift by the virtual
// bias dose δ, the QCP lower bound is recomputed for the shifted range,
// and everything else (grid maps, objective, smoothness rows, golden,
// model) is borrowed from the base.
func deriveField(base *Compiled, opt Options, biasDose float64) (*Compiled, Options) {
	d := *base
	d.Opts.DoseLo += biasDose
	d.Opts.DoseHi += biasDose
	fl := append([]float64(nil), base.fixedL...)
	fu := append([]float64(nil), base.fixedU...)
	for g := 0; g < base.NG; g++ {
		fl[g] += biasDose
		fu[g] += biasDose
	}
	d.fixedL, d.fixedU = fl, fu
	in := base.Golden.In
	model, co := base.Model, d.Opts
	_, d.fastMCT = linearArrivalsOrder(base.Golden, base.order, func(id int) float64 {
		if in.Masters[id] == nil {
			return 0
		}
		return minDelayDeltaFor(model, co, id)
	})
	fopt := opt
	fopt.DoseLo += biasDose
	fopt.DoseHi += biasDose
	fopt.SeedTau = 0
	return &d, fopt
}

// deriveConsensus widens a per-field artifact with the slit-profile
// auxiliary variables: column means s_j, the grand mean g and the
// zero-mean deviations e_j, tied to the dose variables by sparse
// equality rows (M+1, N+1 and 3 entries per row — never a dense row, so
// LDLᵀ fill stays benign).  The consensus penalty is the diagonal ρw on
// the e variables; the moving linear target lives in doseQ's e entries.
// Returns the widened artifact, the shifted options and the index of
// the first e variable.
func deriveConsensus(base *Compiled, opt Options, biasDose, rhoW float64) (*Compiled, Options, int) {
	d, fopt := deriveField(base, opt, biasDose)
	nG, grid := base.NG, base.Grid
	nCols, nRows := grid.N, grid.M
	sBase := nG
	gIdx := nG + nCols
	eBase := nG + nCols + 1
	nVarW := nG + 2*nCols + 1
	d.NVar = nVarW

	pd := make([]float64, nVarW)
	copy(pd, base.cutPD)
	for j := 0; j < nCols; j++ {
		pd[eBase+j] = rhoW
	}
	d.cutPD = pd
	q := make([]float64, nVarW)
	copy(q, base.doseQ)
	d.doseQ = q

	// Same fixed rows over the widened variable space (shared slices —
	// a CSR never stores its column count in the data), then the link
	// rows: s_j − colmean_j(y) = 0, g − mean_j(s_j) = 0, e_j − s_j + g = 0.
	wide := &qp.CSR{M: base.fixedA.M, N: nVarW,
		RowPtr: base.fixedA.RowPtr, Col: base.fixedA.Col, Val: base.fixedA.Val}
	tr := qp.NewTriplet(2*nCols+1, nVarW)
	row := 0
	invM := 1 / float64(nRows)
	for j := 0; j < nCols; j++ {
		tr.Add(row, sBase+j, 1)
		for i := 0; i < nRows; i++ {
			tr.Add(row, grid.Flat(i, j), -invM)
		}
		row++
	}
	tr.Add(row, gIdx, 1)
	invN := 1 / float64(nCols)
	for j := 0; j < nCols; j++ {
		tr.Add(row, sBase+j, -invN)
	}
	row++
	for j := 0; j < nCols; j++ {
		tr.Add(row, eBase+j, 1)
		tr.Add(row, sBase+j, -1)
		tr.Add(row, gIdx, 1)
		row++
	}
	d.fixedA = qp.ConcatRows(wide, tr.Compile())
	zeros := make([]float64, 2*nCols+1)
	d.fixedL = append(d.fixedL, zeros...)
	d.fixedU = append(d.fixedU, zeros...)
	return d, fopt, eBase
}

// slitDeviation computes the zero-mean column-mean profile of a dose
// vector in a fixed summation order (deterministic regardless of where
// the vector came from).
func slitDeviation(x []float64, grid dosemap.Grid, out []float64) {
	total := 0.0
	for j := 0; j < grid.N; j++ {
		s := 0.0
		for i := 0; i < grid.M; i++ {
			s += x[grid.Flat(i, j)]
		}
		out[j] = s / float64(grid.M)
		total += out[j]
	}
	mean := total / float64(grid.N)
	for j := range out {
		out[j] -= mean
	}
}

// waferGroup is one consensus unit: the distinct biases of a scan
// column (with multiplicities), shared by every wafer column with the
// same bias signature.
type waferGroup struct {
	cols    []int // wafer columns sharing this signature
	biases  []float64
	weights []float64
}

// groupOutcome is the coupled solve of one column group.
type groupOutcome struct {
	z         []float64      // shared slit profile
	evals     []Eval         // per distinct bias, group order
	doses     []*dosemap.Map // physical dose maps, group order
	residuals []float64
	iters     int
	solves    int
}

// solveWaferGroup runs the consensus-ADMM loop of one column group at
// the common clock period tau: parallel-safe (everything is local), but
// internally serial over the group members so the averaging order — and
// therefore every float — is fixed.
func solveWaferGroup(ctx context.Context, base *Compiled, opt Options, gr waferGroup, tau, rhoW float64, wopt WaferOptions) (*groupOutcome, error) {
	grid := base.Grid
	nG, nCols := base.NG, grid.N
	out := &groupOutcome{z: make([]float64, nCols)}

	type member struct {
		cs    *cutSolver
		eBase int
		u, e  []float64
		bias  float64
	}
	// One cut pool for the whole group: path cuts are linearizations of
	// a linear timing model, hence valid for every member, and a shared
	// pool is what lets the members' constraint matrices stay bitwise
	// identical round over round — the precondition for collapsing the
	// per-member QP solves into one multi-RHS lockstep batch.
	pool := &cutPool{seen: make(map[string]bool)}
	members := make([]*member, len(gr.biases))
	css := make([]*cutSolver, len(gr.biases))
	for i, b := range gr.biases {
		fc, fopt, eBase := deriveConsensus(base, opt, b/tech.DoseSensitivity, rhoW)
		cs := newCutSolverCompiled(fc, fopt)
		cs.clampN = nG
		cs.privatizeLinear()
		cs.pool = pool
		members[i] = &member{cs: cs, eBase: eBase,
			u: make([]float64, nCols), e: make([]float64, nCols), bias: b}
		css[i] = cs
	}

	wSum := 0.0
	for _, w := range gr.weights {
		wSum += w
	}
	zOld := make([]float64, nCols)
	for it := 0; it < wopt.MaxOuter; it++ {
		for _, m := range members {
			for j := 0; j < nCols; j++ {
				m.cs.q[m.eBase+j] = -rhoW * (out.z[j] - m.u[j])
			}
			if err := m.cs.refreshLinear(); err != nil {
				return nil, err
			}
		}
		_, feas, err := solveTauGroup(ctx, css, tau)
		if err != nil {
			return nil, err
		}
		for i, m := range members {
			if !feas[i] {
				return nil, fmt.Errorf("core: wafer field (bias %.2f nm) infeasible at τ̄ = %.1f ps", m.bias, tau)
			}
			slitDeviation(m.cs.x[:nG], grid, m.e)
			out.solves++
		}
		copy(zOld, out.z)
		for j := 0; j < nCols; j++ {
			acc := 0.0
			for i, m := range members {
				acc += gr.weights[i] * (m.e[j] + m.u[j])
			}
			out.z[j] = acc / wSum
		}
		res := 0.0
		for j := 0; j < nCols; j++ {
			if d := math.Abs(out.z[j] - zOld[j]); d > res {
				res = d
			}
			for _, m := range members {
				if d := math.Abs(m.e[j] - out.z[j]); d > res {
					res = d
				}
			}
		}
		for _, m := range members {
			for j := 0; j < nCols; j++ {
				m.u[j] += m.e[j] - out.z[j]
			}
		}
		out.residuals = append(out.residuals, res)
		out.iters++
		if res < wopt.ConsensusTol && it >= 1 {
			break
		}
	}

	// Polish: pin the penalty target at the final consensus and boost
	// the penalty, then adjust each grid column exactly onto z so every
	// field of the column exits with the same slit profile.  The pinned
	// target is the SHARED consensus, so the polished linear terms are
	// identical across members and the rebuilt family batches again.
	for _, m := range members {
		cs := m.cs
		for j := 0; j < nCols; j++ {
			cs.pd[m.eBase+j] *= polishBoost
			cs.q[m.eBase+j] = -cs.pd[m.eBase+j] * out.z[j]
		}
		cs.resetSolver() // the penalty diagonal changed: rebuild once
	}
	_, feas, err := solveTauGroup(ctx, css, tau)
	if err != nil {
		return nil, err
	}
	for i, m := range members {
		if !feas[i] {
			return nil, fmt.Errorf("core: wafer polish (bias %.2f nm) infeasible at τ̄ = %.1f ps", m.bias, tau)
		}
	}
	for _, m := range members {
		cs := m.cs
		out.solves++
		slitDeviation(cs.x[:nG], grid, m.e)
		for j := 0; j < nCols; j++ {
			d := out.z[j] - m.e[j]
			for r := 0; r < grid.M; r++ {
				cs.x[grid.Flat(r, j)] += d
			}
		}
		layers := cs.layers()
		ev, err := signoff(ctx, base.Golden, cs.opt, layers)
		if err != nil {
			return nil, err
		}
		// Physical actuator dose: the solved effective map minus the
		// virtual bias dose.
		phys := layers.Poly.Clone()
		delta := m.bias / tech.DoseSensitivity
		for k := range phys.D {
			phys.D[k] -= delta
		}
		out.evals = append(out.evals, ev)
		out.doses = append(out.doses, phys)
	}
	return out, nil
}

// mctSpreadPct returns 100·(max−min)/min of the golden MCTs.
func mctSpreadPct(evals []Eval) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range evals {
		lo = math.Min(lo, e.MCTps)
		hi = math.Max(hi, e.MCTps)
	}
	if !(lo > 0) {
		return 0
	}
	return 100 * (hi - lo) / lo
}

// SolveWafer runs the three-stage full-wafer co-optimization:
//
//  1. uniform — nominal dose everywhere; the fingerprint shows through
//     unattenuated (the "before" picture).
//  2. uncoupled — an isolated QCP per field in effective-dose space;
//     each field races to its own minimum clock period under the shared
//     leakage budget, so faster fields overshoot and the across-wafer
//     spread remains.
//  3. coupled — the consensus-ADMM solve at the common target τ̄ (the
//     worst uncoupled period plus a guard): every field lands just
//     under τ̄ while fields of a scan column agree on the cross-slit
//     profile, equalizing the wafer.
//
// Fields with bit-equal sub-problems (same bias, same column signature)
// are solved once and fanned out — the result is identical either way,
// and a radial fingerprint collapses ~100 fields to a handful of
// distinct solves.  Results are bit-identical for every worker count.
func SolveWafer(ctx context.Context, req WaferRequest) (*WaferResult, error) {
	c, err := QPRequest{Compiled: req.Compiled, Golden: req.Golden, Model: req.Model, Opt: req.Opt}.compiled(ctx)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, sp := obs.Start(ctx, "core/wafer")
	defer sp.End()
	opt := req.Opt.normalized()
	opt.Snap = false
	opt.Speculate = false
	if err := c.check(opt); err != nil {
		return nil, err
	}
	if opt.BothLayers || opt.Tiled {
		return nil, errors.New("core: wafer solve supports poly-only, untiled formulations")
	}
	if c.hasBias() || opt.DoseOff {
		// The consensus couples fields through the shared slit profile of
		// the DOSE variables; body-bias wells are per-die silicon with no
		// wafer-level coupling, so actuator composition stops at the field.
		return nil, errors.New("core: wafer solve supports dose-only formulations")
	}
	wopt := req.Wafer.normalized()
	wafer, err := dosemap.NewWafer(wopt.DiameterMM, wopt.FieldWmm, wopt.FieldHmm, wopt.EdgeMM)
	if err != nil {
		return nil, err
	}
	fieldCD := wopt.Fingerprint.FieldCD(wafer)

	// Canonical field order: sort by (Col, Row) so grouping and dedup
	// never depend on layout enumeration details.
	order := make([]int, len(wafer.Fields))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		fa, fb := wafer.Fields[order[a]], wafer.Fields[order[b]]
		if fa.Col != fb.Col {
			return fa.Col < fb.Col
		}
		return fa.Row < fb.Row
	})

	// Every field's virtual bias dose must leave the nominal state
	// reachable, or the QCP's first probe cannot be feasible.
	for _, f := range order {
		delta := fieldCD[f] / tech.DoseSensitivity
		if opt.DoseLo+delta > 0 || opt.DoseHi+delta < 0 {
			return nil, fmt.Errorf("core: field (%d,%d) CD bias %.2f nm exceeds the correctable dose range",
				wafer.Fields[f].Col, wafer.Fields[f].Row, fieldCD[f])
		}
	}

	// Distinct biases in canonical order (stage A and B dedup unit).
	biasIdx := map[uint64]int{}
	var biases []float64
	fieldBias := make([]int, len(wafer.Fields))
	for _, f := range order {
		key := math.Float64bits(fieldCD[f])
		bi, ok := biasIdx[key]
		if !ok {
			bi = len(biases)
			biasIdx[key] = bi
			biases = append(biases, fieldCD[f])
		}
		fieldBias[f] = bi
	}
	obs.Add(ctx, "wafer/field_dedup", int64(len(wafer.Fields)-len(biases)))

	workers := par.Workers(opt.Workers)
	in := c.Golden.In

	// Stage A: uniform nominal dose — golden signoff of each distinct
	// bias applied as a uniform ΔL.
	uniform, err := par.Map(ctx, len(biases), workers, func(i int) (Eval, error) {
		dl := make([]float64, in.Circ.NumGates())
		for id, m := range in.Masters {
			if m != nil {
				dl[id] = biases[i]
			}
		}
		ev, _, err := EvalPerturbCtx(ctx, in, opt.STA, &sta.Perturb{DL: dl})
		return ev, err
	})
	if err != nil {
		return nil, err
	}

	// Stage B: uncoupled per-field QCP in effective-dose space.
	type uncoupledOut struct {
		eval Eval
		pred float64
	}
	uncoupled, err := par.Map(ctx, len(biases), workers, func(i int) (uncoupledOut, error) {
		fc, fopt := deriveField(c, opt, biases[i]/tech.DoseSensitivity)
		r, err := SolveQCP(ctx, QCPRequest{Compiled: fc, Opt: fopt})
		if err != nil {
			return uncoupledOut{}, fmt.Errorf("core: uncoupled field solve (bias %.2f nm): %w", biases[i], err)
		}
		return uncoupledOut{eval: r.Golden, pred: r.PredMCT}, nil
	})
	if err != nil {
		return nil, err
	}
	tau := 0.0
	for _, u := range uncoupled {
		tau = math.Max(tau, u.pred)
	}
	tau *= 1 + wopt.TauGuard

	// Stage C: consensus-coupled solve per column group.  Wafer columns
	// with the same bias signature are one group.
	rhoW := wopt.RhoW
	if rhoW <= 0 {
		sum := 0.0
		for g := 0; g < c.NG; g++ {
			sum += c.cutPD[g]
		}
		rhoW = sum / float64(c.NG) * float64(c.Grid.M)
		if rhoW <= 0 {
			rhoW = 1
		}
	}
	var groups []waferGroup
	groupOf := map[string]int{}
	fieldGroup := make([]int, len(wafer.Fields))
	fieldMember := make([]int, len(wafer.Fields))
	colFields := map[int][]int{} // wafer column -> field indices, canonical order
	var colOrder []int
	for _, f := range order {
		col := wafer.Fields[f].Col
		if _, ok := colFields[col]; !ok {
			colOrder = append(colOrder, col)
		}
		colFields[col] = append(colFields[col], f)
	}
	for _, col := range colOrder {
		sig := ""
		for _, f := range colFields[col] {
			sig += fmt.Sprintf("%x;", math.Float64bits(fieldCD[f]))
		}
		gi, ok := groupOf[sig]
		if !ok {
			gi = len(groups)
			groupOf[sig] = gi
			gr := waferGroup{}
			memberOf := map[uint64]int{}
			for _, f := range colFields[col] {
				key := math.Float64bits(fieldCD[f])
				mi, seen := memberOf[key]
				if !seen {
					mi = len(gr.biases)
					memberOf[key] = mi
					gr.biases = append(gr.biases, fieldCD[f])
					gr.weights = append(gr.weights, 0)
				}
				gr.weights[mi]++
			}
			groups = append(groups, gr)
		}
		groups[gi].cols = append(groups[gi].cols, col)
		memberOf := map[uint64]int{}
		for mi, b := range groups[gi].biases {
			memberOf[math.Float64bits(b)] = mi
		}
		for _, f := range colFields[col] {
			fieldGroup[f] = gi
			fieldMember[f] = memberOf[math.Float64bits(fieldCD[f])]
		}
	}
	obs.Add(ctx, "wafer/groups", int64(len(groups)))

	// Dispatch the group solves, optionally in a permuted order; the
	// outcomes land in canonical slots so the permutation (like the
	// worker count) cannot leak into the result.
	proc := req.procOrder
	if len(proc) != len(groups) {
		proc = nil
	}
	outcomes := make([]*groupOutcome, len(groups))
	_, err = par.Map(ctx, len(groups), workers, func(i int) (struct{}, error) {
		gi := i
		if proc != nil {
			gi = proc[i]
		}
		o, err := solveWaferGroup(ctx, c, opt, groups[gi], tau, rhoW, wopt)
		if err != nil {
			return struct{}{}, err
		}
		outcomes[gi] = o
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &WaferResult{
		Wafer:     wafer,
		TauPs:     tau,
		NomLeakUW: c.nomLeakUW,
		Groups:    len(groups),
		Profiles:  make(map[int][]float64, len(colOrder)),
	}
	for gi, o := range outcomes {
		res.OuterIters += o.iters
		res.FieldSolves += o.solves
		for it, r := range o.residuals {
			if it == len(res.Residuals) {
				res.Residuals = append(res.Residuals, r)
			} else if r > res.Residuals[it] {
				res.Residuals[it] = r
			}
		}
		for _, col := range groups[gi].cols {
			res.Profiles[col] = o.z
		}
	}
	obs.Add(ctx, "wafer/outer_iters", int64(res.OuterIters))
	obs.Add(ctx, "wafer/field_solves", int64(res.FieldSolves))
	if len(res.Residuals) > 0 {
		obs.Set(ctx, "wafer/consensus_residual", res.Residuals[len(res.Residuals)-1])
	}

	res.Fields = make([]WaferField, len(wafer.Fields))
	for f, fld := range wafer.Fields {
		bi := fieldBias[f]
		o := outcomes[fieldGroup[f]]
		mi := fieldMember[f]
		res.Fields[f] = WaferField{
			Col: fld.Col, Row: fld.Row, CX: fld.CX, CY: fld.CY,
			CDBiasNm:         fieldCD[f],
			BiasDosePct:      fieldCD[f] / tech.DoseSensitivity,
			Uniform:          uniform[bi],
			Uncoupled:        uncoupled[bi].eval,
			UncoupledPredMCT: uncoupled[bi].pred,
			Coupled:          o.evals[mi],
			Dose:             o.doses[mi].Clone(),
		}
	}
	evalsOf := func(pick func(WaferField) Eval) []Eval {
		out := make([]Eval, len(res.Fields))
		for i, f := range res.Fields {
			out[i] = pick(f)
		}
		return out
	}
	res.UniformSpreadPct = mctSpreadPct(evalsOf(func(f WaferField) Eval { return f.Uniform }))
	res.UncoupledSpreadPct = mctSpreadPct(evalsOf(func(f WaferField) Eval { return f.Uncoupled }))
	res.CoupledSpreadPct = mctSpreadPct(evalsOf(func(f WaferField) Eval { return f.Coupled }))
	res.Runtime = time.Since(start)
	return res, nil
}
