package core

import (
	"math"
	"testing"

	"repro/internal/sta"
	"repro/internal/tech"
)

// TestSingleGridDegeneratesToUniform pins the optimizer to the Table
// II/III observation: with one grid cell covering the whole die (G =
// die size) the dose map is necessarily uniform, and a uniform dose
// cannot improve leakage without hurting timing or vice versa.  The QP
// at τ = nominal MCT must therefore return ~zero dose, and the QCP at
// ξ = 0 must find ~zero timing headroom.
func TestSingleGridDegeneratesToUniform(t *testing.T) {
	_, golden := smallGolden(t, 0.05)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.G = math.Max(golden.In.Pl.ChipW, golden.In.Pl.ChipH) + 1
	opt.Snap = false // snapping noise would hide the degeneracy

	qp, err := DMoptQP(golden, model, opt, golden.MCT)
	if err != nil {
		t.Fatal(err)
	}
	if n := qp.Layers.Poly.Grid.Cells(); n != 1 {
		t.Fatalf("expected a single grid cell, got %d", n)
	}
	dose := qp.Layers.Poly.D[0]
	// The optimal uniform dose under a no-degradation timing bound is
	// (close to) zero: negative dose slows the wall, positive leaks.
	if math.Abs(dose) > 0.35 {
		t.Errorf("single-grid QP dose = %.3f%%, want ≈0", dose)
	}
	if qp.PredDeltaLeakNW < -0.02*1000*qp.Nominal.LeakUW {
		t.Errorf("single-grid QP claims %.1f nW savings; uniform dose cannot deliver that",
			qp.PredDeltaLeakNW)
	}

	qcp, err := DMoptQCP(golden, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	imp := 1 - qcp.PredMCT/qcp.Nominal.MCTps
	if imp > 0.02 {
		t.Errorf("single-grid QCP claims %.2f%% timing gain at ξ=0; uniform dose cannot deliver that",
			100*imp)
	}

	// Sanity of the contrast: the real 5 µm grid finds substantial
	// leakage savings on the very same instance.
	fine := DefaultOptions()
	fine.Snap = false
	fineRes, err := DMoptQP(golden, model, fine, golden.MCT)
	if err != nil {
		t.Fatal(err)
	}
	if fineRes.PredDeltaLeakNW > qp.PredDeltaLeakNW-100 {
		t.Errorf("fine grid (%.1f nW) should far outperform the uniform map (%.1f nW)",
			fineRes.PredDeltaLeakNW, qp.PredDeltaLeakNW)
	}
}

// TestDMoptNeverBeatsMaxDose pins the Fig. 10 headroom argument: no
// smoothness- and leakage-constrained dose map can beat the hard floor
// in which EVERY gate receives maximum dose.  (The paper's "Bias"
// reference — max dose on the top-K paths only — is not a true bound
// when more than K paths sit near the wall: biasing the top K promotes
// path K+1 to critical.  The all-gates variant is the real floor.)
func TestDMoptNeverBeatsMaxDose(t *testing.T) {
	_, golden := smallGolden(t, 0.05)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	qcp, err := DMoptQCP(golden, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	n := golden.In.Circ.NumGates()
	dl := make([]float64, n)
	for id, m := range golden.In.Masters {
		if m != nil {
			dl[id] = tech.DoseToLength(opt.DoseHi)
		}
	}
	_, floor, err := EvalPerturb(golden.In, golden.Cfg, &sta.Perturb{DL: dl})
	if err != nil {
		t.Fatal(err)
	}
	if qcp.Golden.MCTps < floor.MCT-1e-6 {
		t.Errorf("QCP MCT %.1f beats the all-gates max-dose floor %.1f — impossible",
			qcp.Golden.MCTps, floor.MCT)
	}
	// And the constrained optimum must leave SOME headroom on a
	// wall-heavy design (Fig. 10's gap between DMopt and Bias).
	if qcp.Golden.MCTps <= floor.MCT+1 {
		t.Logf("note: QCP nearly closed the headroom gap (%.1f vs %.1f)", qcp.Golden.MCTps, floor.MCT)
	}
}

// TestTiledOptionSeamSmooth verifies the Section II-B tiling extension:
// with Options.Tiled, the optimized map can be stepped side-by-side —
// opposite edges also satisfy the smoothness bound — at a small cost in
// objective versus the untiled solve.
func TestTiledOptionSeamSmooth(t *testing.T) {
	_, golden := smallGolden(t, 0.05)
	model, err := FitModel(golden, false)
	if err != nil {
		t.Fatal(err)
	}
	plain := DefaultOptions()
	rp, err := DMoptQP(golden, model, plain, golden.MCT)
	if err != nil {
		t.Fatal(err)
	}
	tiled := DefaultOptions()
	tiled.Tiled = true
	rt, err := DMoptQP(golden, model, tiled, golden.MCT)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Layers.Poly.CheckTiledSmooth(tiled.Delta + 0.02); err != nil {
		t.Errorf("tiled map seams not smooth: %v", err)
	}
	// The extra constraints can only cost objective (up to ADMM solve
	// noise, ~1% at the default 3e-4 tolerance).
	if rt.PredDeltaLeakNW < rp.PredDeltaLeakNW-0.02*math.Abs(rp.PredDeltaLeakNW) {
		t.Errorf("tiled objective %.1f better than unconstrained %.1f — impossible",
			rt.PredDeltaLeakNW, rp.PredDeltaLeakNW)
	}
}
