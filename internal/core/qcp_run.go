// QCP solve stage (Section III-A.2 / III-B.2): minimize the clock
// period under a leakage budget, by monotone bisection with the QP as
// the feasibility oracle.  SolveQCP is the single ctx-first entry
// point; a QCPRequest either borrows a shared *Compiled artifact or
// compiles on demand from (Golden, Model).
package core

import (
	"context"
	"errors"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/qp"
	"repro/internal/sta"
)

// QCPRequest describes one clock-period-minimization solve.  Artifact
// resolution follows the same rule as QPRequest: Compiled when set,
// else an on-demand compile from (Golden, Model).
type QCPRequest struct {
	// Compiled is an optional pre-built formulation artifact.
	Compiled *Compiled
	// Golden and Model feed the on-demand compile when Compiled is nil.
	Golden *sta.Result
	Model  *Model
	// Opt parameterizes the solve; Opt.XiNW is the leakage budget ξ.
	Opt Options
}

// DMoptQCP solves "Dose Map Optimization for Improved Timing Under
// Leakage Constraint" (Section III-A.2 / III-B.2).
//
// Deprecated: use SolveQCP.
func DMoptQCP(golden *sta.Result, model *Model, opt Options) (*Result, error) {
	return SolveQCP(context.Background(), QCPRequest{Golden: golden, Model: model, Opt: opt})
}

// DMoptQCPCtx is DMoptQCP with cancellation.
//
// Deprecated: use SolveQCP.
func DMoptQCPCtx(ctx context.Context, golden *sta.Result, model *Model, opt Options) (*Result, error) {
	return SolveQCP(ctx, QCPRequest{Golden: golden, Model: model, Opt: opt})
}

// DMoptQCPCompiled runs the QCP bisection against a previously compiled
// artifact.
//
// Deprecated: use SolveQCP.
func DMoptQCPCompiled(ctx context.Context, c *Compiled, opt Options) (*Result, error) {
	return SolveQCP(ctx, QCPRequest{Compiled: c, Opt: opt})
}

// SolveQCP solves the Section III QCP: minimize the clock period subject
// to Δleakage ≤ Opt.XiNW, by monotone bisection on the clock period with
// the QP as the feasibility oracle: minLeak(τ) is non-increasing in τ,
// so τ is feasible iff minLeak(τ) ≤ ξ.  A canceled context aborts the
// bisection between probes (and probes between cut rounds / ADMM
// iterations) with an error that wraps context.Canceled.
func SolveQCP(ctx context.Context, req QCPRequest) (*Result, error) {
	c, err := QPRequest{Compiled: req.Compiled, Golden: req.Golden, Model: req.Model, Opt: req.Opt}.compiled(ctx)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, sp := obs.Start(ctx, "core/qcp")
	defer sp.End()
	opt := req.Opt.normalized()
	if err := c.check(opt); err != nil {
		return nil, err
	}
	golden := c.Golden
	// Lower bound: linear-model MCT at the fastest reachable dose
	// (precomputed by the compile stage).
	tLo := c.fastMCT
	tHi := golden.MCT
	if tLo >= tHi {
		tLo = tHi * 0.8
	}
	if opt.Snap {
		opt.XiNW -= c.snapMarginNW
		if c.hasBias() {
			opt.XiNW -= biasSnapMarginNW(c.Model, opt.BiasStep)
		}
	}
	if c.hasDose() && c.hasBias() {
		obs.Add(ctx, "core/joint_solves", 1)
	}
	if opt.Method == MethodCuts {
		return qcpByCuts(ctx, c, opt, tLo, tHi, start)
	}
	prob, err := assemble(c, opt, tLo-1, tHi)
	if err != nil {
		return nil, err
	}
	solver, err := qp.NewSolver(prob.qpProb, opt.QP)
	if err != nil {
		return nil, err
	}

	var best *qp.Result
	bestTau := tHi
	probes := 0
	lo, hi := tLo, tHi
	xiTol := xiToleranceLeak(c.nomLeakUW, opt.XiNW)
	for probes < opt.MaxProbes && (hi-lo) > opt.BisectTol*golden.MCT {
		mid := 0.5 * (lo + hi)
		if probes == 0 {
			mid = hi // first probe at the nominal period must be feasible
		}
		if err := prob.setBoundsTau(solver, mid); err != nil {
			return nil, err
		}
		res, err := solver.SolveCtx(ctx)
		if err != nil {
			return nil, err
		}
		probes++
		feasible := res.Status == qp.Solved && res.Obj <= opt.XiNW+xiTol &&
			prob.qpProb.MaxViolation(res.X) < 0.05
		if feasible {
			hi = mid
			best = res
			bestTau = mid
		} else {
			lo = mid
		}
	}
	if best == nil {
		return nil, errors.New("core: QCP bisection found no feasible clock period")
	}
	obs.Add(ctx, "core/qcp_probes", int64(probes))
	r, err := finish(ctx, prob, best, probes, start)
	if err != nil {
		return nil, err
	}
	if r.PredMCT > bestTau {
		r.PredMCT = bestTau
	}
	return r, nil
}

// qcpByCuts runs the clock-period bisection on the cutting-plane engine.
// The cut pool is shared across probes: a path cut is valid for every τ.
func qcpByCuts(ctx context.Context, c *Compiled, opt Options, tLo, tHi float64, start time.Time) (*Result, error) {
	golden := c.Golden
	cs := newCutSolverCompiled(c, opt)
	xiTol := xiToleranceLeak(c.nomLeakUW, opt.XiNW)
	var bestX []float64
	probes := 0
	lo, hi := tLo, tHi

	// Secant state: the last two feasible probe evaluations (τ, minLeak),
	// most recent last.  When the dual-based tangent is useless — early
	// probes bind few cuts, so the local slope extrapolates the frontier
	// far below the bracket — the secant through two actual evaluations
	// still tracks how minLeak steepens as the cut pool grows, and under
	// convexity its downward extrapolation lower-bounds τ* exactly like
	// the tangent root does.
	type tauEval struct{ tau, obj float64 }
	var feasPrev, feasLast tauEval

	// probe solves one clock-period candidate and reports whether it
	// fits the leakage budget; solver trouble counts as infeasible
	// rather than aborting the whole bisection, but cancellation
	// propagates.  Feasible evaluations feed the secant state.
	probe := func(s *cutSolver, tau float64) (bool, error) {
		obj, feasible, err := s.solveTau(ctx, tau, opt.XiNW)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return false, err
			}
			return false, nil
		}
		ok := feasible && obj <= opt.XiNW+xiTol
		if ok && s == cs {
			feasPrev, feasLast = feasLast, tauEval{tau, obj}
		}
		return ok, nil
	}

	// secantCandidate extrapolates the two stored feasible evaluations
	// down to where the leakage budget binds.  Both points sit on the
	// feasible side (obj < ξ), so the chord's root below them is a
	// convexity-certified lower bound on τ*, same as the tangent root.
	secantCandidate := func() (float64, bool) {
		if feasPrev.tau <= feasLast.tau || feasLast.obj <= feasPrev.obj {
			return 0, false
		}
		slope := (feasLast.obj - feasPrev.obj) / (feasLast.tau - feasPrev.tau)
		cand := feasLast.tau + (opt.XiNW-feasLast.obj)/slope
		if math.IsNaN(cand) || math.IsInf(cand, 0) {
			return 0, false
		}
		return cand, true
	}

	// First probe at the nominal period must be feasible.
	ok, err := probe(cs, hi)
	probes++
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errors.New("core: QCP bisection found no feasible clock period")
	}
	bestX = append(bestX[:0], cs.x...)

	// Warm bracket: when a related run already located the feasibility
	// frontier, probe a half-tolerance band around its period.  Both
	// probes landing as predicted collapses the interval to the stop
	// width — the log₂ bisection never runs; a moved frontier degrades
	// to ordinary bisection on a one-sided narrowed interval.
	if seed := opt.SeedTau; seed > lo && seed < hi && probes < opt.MaxProbes {
		guard := 0.5 * opt.BisectTol * golden.MCT
		up := math.Min(seed+guard, hi)
		ok, err := probe(cs, up)
		probes++
		if err != nil {
			return nil, err
		}
		if ok {
			hi = up
			bestX = append(bestX[:0], cs.x...)
			obs.Add(ctx, "core/bisect_bracket_hits", 1)
			if down := seed - guard; down > lo && probes < opt.MaxProbes &&
				(hi-lo) > opt.BisectTol*golden.MCT {
				ok, err = probe(cs, down)
				probes++
				if err != nil {
					return nil, err
				}
				if ok {
					hi = down
					bestX = append(bestX[:0], cs.x...)
				} else {
					lo = down
				}
			}
		} else {
			lo = up
		}
	}

	// Main loop: warm-started Newton on τ with bisection as the
	// safeguard.  Each converged probe leaves a tangent of the value
	// function minLeak(τ) behind (objective + cut-row dual sum); its
	// root extrapolates where the leakage budget binds exactly.
	// minLeak is convex non-increasing, so with exact solves the
	// tangent root lower-bounds the optimum: the step probes
	// candidate + guard (landing just inside the feasible side) and a
	// feasible hit both drops hi to the probe and raises lo to the
	// candidate, collapsing the bracket in one round trip instead of a
	// log₂ cascade.  A candidate outside the central band of the
	// bracket (stale tangent, flat slope, inexact duals) falls back to
	// plain bisection — which also bounds the worst case, since every
	// accepted probe shrinks the bracket by ≥ 5%.
	guard := 0.5 * opt.BisectTol * golden.MCT
	newtonSteps, bisectFallbacks := 0, 0
	floorTried := false
	speculative := opt.Speculate && par.Workers(opt.Workers) > 1
	for probes < opt.MaxProbes && (hi-lo) > opt.BisectTol*golden.MCT {
		if speculative && opt.MaxProbes-probes >= 2 {
			// Trisect: two concurrent probes sharing the cut pool.
			// minLeak(τ) is non-increasing, so feasibility at m1 < m2
			// narrows the interval to a third per round.
			m1 := lo + (hi-lo)/3
			m2 := lo + 2*(hi-lo)/3
			p1, p2 := cs.clone(), cs.clone()
			baseRounds, baseSolves := cs.rounds, cs.solves
			res, err := par.Map(ctx, 2, 2, func(i int) (bool, error) {
				if i == 0 {
					return probe(p1, m1)
				}
				return probe(p2, m2)
			})
			if err != nil {
				return nil, err
			}
			probes += 2
			cs.rounds = baseRounds + (p1.rounds - baseRounds) + (p2.rounds - baseRounds)
			cs.solves = baseSolves + (p1.solves - baseSolves) + (p2.solves - baseSolves)
			switch {
			case res[0]:
				hi = m1
				cs.adopt(p1)
				bestX = append(bestX[:0], p1.x...)
			case res[1]:
				lo, hi = m1, m2
				cs.adopt(p2)
				bestX = append(bestX[:0], p2.x...)
			default:
				lo = m2
			}
			continue
		}
		t, candLo, newton := 0.0, 0.0, false
		inBand := func(tn float64) bool {
			w := hi - lo
			return tn > lo+0.05*w && tn < hi-0.05*w
		}
		nc, nok := cs.newtonCandidate(opt.XiNW)
		sc, sok := secantCandidate()
		switch {
		case nok && inBand(nc+guard):
			t, candLo, newton = nc+guard, nc, true
		case sok && inBand(sc+guard):
			t, candLo, newton = sc+guard, sc, true
		case (nok && nc+guard <= lo+0.05*(hi-lo) || sok && sc+guard <= lo+0.05*(hi-lo)) && !floorTried:
			// Both model candidates certify a lower bound at or below the
			// bracket floor: the budget looks slack on the whole interval
			// and bisection would spend log₂(w/tol) feasible probes
			// marching hi down to lo.  Probe just above the floor instead —
			// a feasible hit collapses the bracket to the guard width in
			// one step.  One attempt per run: a miss costs a single probe
			// and hands back to bisection.
			floorTried = true
			cand := lo
			if nok && nc > cand {
				cand = nc
			}
			if sok && sc > cand {
				cand = sc
			}
			t, candLo, newton = cand+guard, cand, true
		}
		if newton {
			newtonSteps++
		} else {
			t = 0.5 * (lo + hi)
			bisectFallbacks++
		}
		ok, err := probe(cs, t)
		probes++
		if err != nil {
			return nil, err
		}
		if ok {
			hi = t
			bestX = append(bestX[:0], cs.x...)
			if newton && candLo > lo {
				// Convexity certifies the tangent root as a lower bound
				// on τ*, so a feasible Newton probe closes the bracket
				// from BOTH sides (to the guard width).  Correctness
				// does not ride on it: the answer returned is always a
				// probed-feasible hi.
				lo = candLo
			}
		} else {
			lo = t
		}
	}
	if bestX == nil {
		return nil, errors.New("core: QCP bisection found no feasible clock period")
	}
	obs.Add(ctx, "core/qcp_probes", int64(probes))
	obs.Add(ctx, "core/tau_newton_steps", int64(newtonSteps))
	obs.Add(ctx, "core/tau_bisect_fallbacks", int64(bisectFallbacks))
	copy(cs.x, bestX)
	r, err := cs.result(ctx, probes)
	if err != nil {
		return nil, err
	}
	if r.PredMCT > hi {
		r.PredMCT = hi
	}
	r.Runtime = time.Since(start)
	return r, nil
}
