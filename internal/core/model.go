// Package core implements the paper's contribution: the design-aware
// dose-map optimization (DMopt) formulated as a quadratic program (QP:
// minimize Δleakage under a clock-period bound) and a quadratically
// constrained program (QCP: minimize clock period under a Δleakage
// bound), each on the poly layer only (gate-length modulation) or on
// poly and active layers simultaneously (length and width); plus the
// complementary dose-map-aware placement heuristic (dosePl, Appendix),
// and the end-to-end optimization flow of Figs. 7-8.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fit"
	"repro/internal/liberty"
	"repro/internal/par"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Model holds the fitted per-instance coefficients of Section II-C:
//
//	Δdelay_p   ≈ A_p·ΔL + B_p·ΔW                       (ps, nm)
//	Δleakage_p ≈ α_p·ΔL² + β_p·ΔL + γ_p·ΔW            (nW, nm)
//
// The paper calibrates (A, B) per Liberty-table entry and applies the
// entry nearest each instance's (input slew, load); we fit directly at
// each instance's analyzed operating point, which is the interpolated
// limit of the same procedure.
type Model struct {
	A, B               []float64 // per gate ID; zero for ports
	Alpha, Beta, Gamma []float64
	// MaxDelaySSR and MaxLeakSSR are the worst normalized sum of squared
	// residuals across all fitted cells — the fit-quality metric the
	// paper reports (0.0005 single-variable vs 0.0101 two-variable).
	MaxDelaySSR, MaxLeakSSR float64

	// Body-bias sensitivities, for the second actuator:
	//
	//	Δdelay_p   ≈ DB_p·b                     (ps, V of forward bias)
	//	Δleakage_p ≈ AlphaB_p·b² + BetaB_p·b    (nW, V)
	//
	// DB ≤ 0 (forward bias lowers Vth, speeding the gate up); AlphaB ≥ 0
	// and BetaB ≥ 0 (leakage is convex increasing in forward bias).
	// These live in separate arrays so the dose-only objective and cut
	// assembly never touch them — dose-only numerics stay bit-identical.
	DB, AlphaB, BetaB []float64
}

// biasVSamples is the body-bias sample lattice in V for coefficient
// fitting: liberty.BiasStepV steps spanning slightly beyond the default
// [-0.2, +0.1] box, mirroring the 21-step dose variant grid.
func biasVSamples() []float64 {
	var s []float64
	for b := -0.25; b <= 0.15+1e-9; b += liberty.BiasStepV {
		s = append(s, b)
	}
	return s
}

// doseLSamples is the ΔL sample grid in nm (the 21 characterized dose
// steps at Ds = -2 nm/%).
func doseLSamples() []float64 {
	var s []float64
	for _, d := range liberty.DoseSteps() {
		s = append(s, tech.DoseToLength(d))
	}
	return s
}

// coarse 2-D sample grid for simultaneous (ΔL, ΔW) fitting: 5×5 of the
// 21×21 characterized variants (sufficient for a 4-parameter surface and
// two orders of magnitude cheaper).
var coarseDeltas = []float64{-10, -5, 0, 5, 10}

// FitModel calibrates the per-gate coefficients at the operating points
// (input slew, output load) of the golden analysis r.  If bothLayers is
// false the width terms B and γ stay zero (poly-only optimization).
func FitModel(r *sta.Result, bothLayers bool) (*Model, error) {
	return FitModelCtx(context.Background(), r, bothLayers, 0)
}

// FitModelCtx is FitModel with cancellation and a worker-count knob:
// the per-gate fits are independent (each writes only its own
// coefficient slots) and fan out across up to workers goroutines, with
// the SSR maxima reduced serially in gate order afterwards — the
// fitted model is bit-identical for every worker count.
func FitModelCtx(ctx context.Context, r *sta.Result, bothLayers bool, workers int) (*Model, error) {
	in := r.In
	n := in.Circ.NumGates()
	m := &Model{
		A: make([]float64, n), B: make([]float64, n),
		Alpha: make([]float64, n), Beta: make([]float64, n), Gamma: make([]float64, n),
		DB: make([]float64, n), AlphaB: make([]float64, n), BetaB: make([]float64, n),
	}
	delaySSR := make([]float64, n)
	leakSSR := make([]float64, n)
	dls := doseLSamples()
	bvs := biasVSamples()
	err := par.Do(ctx, n, workers, func(id int) error {
		master := in.Masters[id]
		if master == nil {
			return nil
		}
		slew, load := r.InSlew[id], r.Load[id]
		nomD := master.Delay(0, 0, slew, load)
		nomL := master.Leakage(0, 0)
		// Body-bias sensitivities are fitted unconditionally (cheap, and
		// independent of the dose-layer mode): sample the device model
		// over the bias lattice and fit the same linear-delay /
		// quadratic-leakage forms used for dose, with b in place of ΔL.
		{
			bd := make([]float64, len(bvs))
			bk := make([]float64, len(bvs))
			for i, b := range bvs {
				dvth := in.Node.BodyBiasDVth(b)
				bd[i] = master.DelayV(0, 0, dvth, slew, load) - nomD
				bk[i] = master.LeakageV(0, 0, dvth) - nomL
			}
			dc, err := fit.FitDelayL(bvs, bd, nomD)
			if err != nil {
				return fmt.Errorf("core: bias delay fit for gate %d: %w", id, err)
			}
			lc, err := fit.FitLeakL(bvs, bk, nomL)
			if err != nil {
				return fmt.Errorf("core: bias leakage fit for gate %d: %w", id, err)
			}
			m.DB[id] = dc.A
			m.AlphaB[id], m.BetaB[id] = lc.Alpha, lc.Beta
		}
		if !bothLayers {
			dd := make([]float64, len(dls))
			dk := make([]float64, len(dls))
			for i, dl := range dls {
				dd[i] = master.Delay(dl, 0, slew, load) - nomD
				dk[i] = master.Leakage(dl, 0) - nomL
			}
			dc, err := fit.FitDelayL(dls, dd, nomD)
			if err != nil {
				return fmt.Errorf("core: delay fit for gate %d: %w", id, err)
			}
			lc, err := fit.FitLeakL(dls, dk, nomL)
			if err != nil {
				return fmt.Errorf("core: leakage fit for gate %d: %w", id, err)
			}
			m.A[id] = dc.A
			m.Alpha[id], m.Beta[id] = lc.Alpha, lc.Beta
			delaySSR[id], leakSSR[id] = dc.SSR, lc.SSR
			return nil
		}
		var sdl, sdw, dd, dk []float64
		for _, dl := range coarseDeltas {
			for _, dw := range coarseDeltas {
				sdl = append(sdl, dl)
				sdw = append(sdw, dw)
				dd = append(dd, master.Delay(dl, dw, slew, load)-nomD)
				dk = append(dk, master.Leakage(dl, dw)-nomL)
			}
		}
		dc, err := fit.FitDelay(sdl, sdw, dd, nomD)
		if err != nil {
			return fmt.Errorf("core: delay fit for gate %d: %w", id, err)
		}
		lc, err := fit.FitLeak(sdl, sdw, dk, nomL)
		if err != nil {
			return fmt.Errorf("core: leakage fit for gate %d: %w", id, err)
		}
		m.A[id], m.B[id] = dc.A, dc.B
		m.Alpha[id], m.Beta[id], m.Gamma[id] = lc.Alpha, lc.Beta, lc.Gamma
		delaySSR[id], leakSSR[id] = dc.SSR, lc.SSR
		return nil
	})
	if err != nil {
		return nil, err
	}
	for id := 0; id < n; id++ {
		m.MaxDelaySSR = maxf(m.MaxDelaySSR, delaySSR[id])
		m.MaxLeakSSR = maxf(m.MaxLeakSSR, leakSSR[id])
	}
	return m, nil
}

// DeltaLeak evaluates the model's total leakage change in nW for
// per-gate dose deltas dP, dA (percent, indexed by gate ID; dA nil for
// poly-only) — Eq. 2.
func (m *Model) DeltaLeak(dP, dA []float64) float64 {
	ds := tech.DoseSensitivity
	total := 0.0
	for id := range m.A {
		dl := ds * dP[id]
		total += m.Alpha[id]*dl*dl + m.Beta[id]*dl
		if dA != nil {
			total += m.Gamma[id] * ds * dA[id]
		}
	}
	return total
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// DeltaLeakBias evaluates the model's total leakage change in nW for
// per-gate forward body-bias voltages bv (V, indexed by gate ID).
func (m *Model) DeltaLeakBias(bv []float64) float64 {
	total := 0.0
	for id := range m.DB {
		b := bv[id]
		total += m.AlphaB[id]*b*b + m.BetaB[id]*b
	}
	return total
}

// Sanity validates the fitted signs: delay must grow with L (A ≥ 0),
// shrink with W (B ≤ 0); leakage curvature must be convex (α ≥ 0) with
// negative slope (β ≤ 0) and positive width sensitivity (γ ≥ 0).  For
// the body-bias terms: forward bias speeds gates up (DB ≤ 0) and leaks
// more, convexly (AlphaB ≥ 0, BetaB ≥ 0).
func (m *Model) Sanity() error {
	for id := range m.A {
		if m.A[id] < 0 || m.B[id] > 1e-9 || m.Alpha[id] < 0 || m.Beta[id] > 1e-9 || m.Gamma[id] < 0 {
			return errors.New("core: fitted coefficient sign violation")
		}
	}
	for id := range m.DB {
		if m.DB[id] > 1e-9 || m.AlphaB[id] < -1e-12 || m.BetaB[id] < -1e-9 {
			return errors.New("core: fitted bias coefficient sign violation")
		}
	}
	return nil
}
