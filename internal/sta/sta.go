// Package sta provides the static-timing-analysis substrate standing in
// for the paper's golden signoff tool (Synopsys PrimeTime): block-based
// arrival/required/slack analysis with slew propagation, a placement-
// driven wire-delay model, minimum-cycle-time extraction, and exact
// top-K critical-path enumeration (the paper extracts the top 10 000
// paths to drive the dosePl heuristic).
//
// Timing conventions (all times in ps):
//
//   - primary inputs launch at t = 0 with a configured input slew;
//   - flip-flops launch at their clock-to-q delay and capture at their
//     data input with a setup margin;
//   - the minimum cycle time (MCT) is the largest endpoint arrival, i.e.
//     the smallest clock period at which every endpoint meets setup.
package sta

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/place"
	"repro/internal/tech"
)

// Input bundles the design views STA needs.
type Input struct {
	Circ    *netlist.Circuit
	Masters []*liberty.Master // per gate ID; nil for ports
	Pl      *place.Placement
	Node    *tech.Node
}

// Perturb carries per-gate dose-induced geometry deltas in nm and
// body-bias-induced threshold shifts in V.  Nil slices mean zero
// everywhere; a nil DVth keeps every delay/leakage evaluation on the
// exact unbiased code path, bit-identical to the pre-bias analysis.
type Perturb struct {
	DL   []float64 // gate-length delta per gate ID
	DW   []float64 // gate-width delta per gate ID
	DVth []float64 // threshold-voltage delta per gate ID (V)
}

func (p *Perturb) dl(id int) float64 {
	if p == nil || p.DL == nil {
		return 0
	}
	return p.DL[id]
}

func (p *Perturb) dw(id int) float64 {
	if p == nil || p.DW == nil {
		return 0
	}
	return p.DW[id]
}

func (p *Perturb) dvth(id int) float64 {
	if p == nil || p.DVth == nil {
		return 0
	}
	return p.DVth[id]
}

// Config holds boundary-condition knobs.
type Config struct {
	// InputSlew is the transition time in ps at primary inputs.
	InputSlew float64
	// ClockSlew is the transition time in ps at flip-flop clock pins.
	ClockSlew float64
	// POLoad is the capacitive load in fF at primary outputs.
	POLoad float64
	// SlewWireFactor converts wire delay into added input slew.
	SlewWireFactor float64
	// Workers bounds the analysis fan-out: gates within one topological
	// level are evaluated concurrently on up to Workers goroutines.
	// Zero (the default) selects runtime.GOMAXPROCS(0).  Results are
	// bit-identical for every worker count: gates in a level are
	// mutually independent, each writes only its own slots, and the
	// min/max reductions used here are exactly order-independent.
	Workers int
}

// DefaultConfig returns the boundary conditions used across the flow.
func DefaultConfig() Config {
	return Config{InputSlew: 20, ClockSlew: 25, POLoad: 4, SlewWireFactor: 0.5}
}

// Result is a full timing analysis of one design state.
type Result struct {
	In   Input
	Cfg  Config
	Pert *Perturb

	// AOut is the arrival time at each gate's output: launch time for
	// startpoints, propagated arrival for combinational gates, data-pin
	// arrival for POs.
	AOut []float64
	// AEnd is the endpoint arrival (data arrival plus setup for FFs,
	// AOut for POs); NaN for non-endpoints.
	AEnd []float64
	// ROut is the required time at each gate's output for clock period
	// T = MCT (so the most critical node has zero slack).
	ROut []float64
	// Slew is the output transition time at each gate.
	Slew []float64
	// InSlew is the input transition time of each gate's worst arc
	// (wire-degraded); boundary slew for startpoints.  The coefficient
	// fitting evaluates cell delays at this operating point.
	InSlew []float64
	// Load is the total capacitive load in fF at each gate's output.
	Load []float64
	// MCT is the minimum cycle time in ps.
	MCT float64
	// CritEnd is the endpoint gate ID achieving MCT.
	CritEnd int

	order []int
}

// Slack returns the output slack of gate id at clock period T:
// (required at T) − arrival.  ROut is stored for T = MCT, so the shift
// is a constant.
func (r *Result) Slack(id int, period float64) float64 {
	return r.ROut[id] + (period - r.MCT) - r.AOut[id]
}

// WorstSlack returns the design's worst slack at clock period T, which
// is T − MCT by construction.
func (r *Result) WorstSlack(period float64) float64 { return period - r.MCT }

// WireDelay returns the interconnect delay in ps of the arc from gate
// from to gate to, using a distance-based Elmore-style model on the
// placed locations.
func (in Input) WireDelay(from, to int) float64 {
	d := in.Pl.Dist(from, to)
	r := in.Node.WireRPerUm * d
	c := in.Node.WireCPerUm * d
	return 0.5 * r * c
}

// netLoad returns the capacitive load at gate id's output: wire cap of
// the net (HPWL-based) plus the input pin caps of all fanouts.
func (in Input) netLoad(id int, cfg Config) float64 {
	g := in.Circ.Gates[id]
	load := in.Node.WireCPerUm * in.Pl.NetHPWL(id)
	for _, fo := range g.Fanouts {
		fog := in.Circ.Gates[fo]
		switch fog.Kind {
		case netlist.PO:
			load += cfg.POLoad
		default:
			if m := in.Masters[fo]; m != nil {
				load += m.CIn
			}
		}
	}
	return load
}

// Analyze performs a full forward/backward timing analysis.
func Analyze(in Input, cfg Config, pert *Perturb) (*Result, error) {
	return AnalyzeCtx(context.Background(), in, cfg, pert)
}

// levelGrain is the minimum number of gates in one topological level
// worth fanning out to the worker pool; below it goroutine dispatch
// costs more than the arithmetic it hides.
const levelGrain = 16

// eachGate applies f to every gate in ids, concurrently when the level
// is large enough, serially (with one cancellation check) otherwise.
// Either path yields bit-identical results: f writes only the slots of
// its own gate.
func eachGate(ctx context.Context, ids []int, workers int, f func(id int)) error {
	if workers == 1 || len(ids) < levelGrain {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sta: canceled: %w", err)
		}
		for _, id := range ids {
			f(id)
		}
		return nil
	}
	return par.Do(ctx, len(ids), workers, func(i int) error {
		f(ids[i])
		return nil
	})
}

// AnalyzeCtx is Analyze with cancellation: the analysis aborts between
// topological levels when ctx is canceled, returning an error that
// wraps context.Canceled.
//
// The forward and backward passes are levelized: gates within one
// topological level are mutually independent (every unblocked timing
// edge strictly increases the level), so they are evaluated
// concurrently on up to cfg.Workers goroutines with results
// bit-identical to the serial order.
func AnalyzeCtx(ctx context.Context, in Input, cfg Config, pert *Perturb) (*Result, error) {
	n := in.Circ.NumGates()
	if n == 0 {
		return nil, errors.New("sta: empty circuit")
	}
	if len(in.Masters) != n {
		return nil, fmt.Errorf("sta: %d masters for %d gates", len(in.Masters), n)
	}
	order, err := in.Circ.TopoOrder()
	if err != nil {
		return nil, err
	}
	levels, err := in.Circ.Levelize()
	if err != nil {
		return nil, err
	}
	workers := par.Workers(cfg.Workers)
	r := &Result{
		In: in, Cfg: cfg, Pert: pert,
		AOut:   make([]float64, n),
		AEnd:   make([]float64, n),
		ROut:   make([]float64, n),
		Slew:   make([]float64, n),
		InSlew: make([]float64, n),
		Load:   make([]float64, n),
		order:  order,
	}
	for i := range r.AEnd {
		r.AEnd[i] = math.NaN()
	}

	// Bucket gates by level (in topological order, so bucket contents
	// are deterministic) and collect the sequential nodes, whose
	// required times are gathered last in the backward pass.
	maxLv := 0
	for _, lv := range levels {
		if lv > maxLv {
			maxLv = lv
		}
	}
	buckets := make([][]int, maxLv+1)
	var seqIDs, allIDs []int
	allIDs = make([]int, n)
	for _, id := range order {
		buckets[levels[id]] = append(buckets[levels[id]], id)
		if in.Circ.Gates[id].Kind == netlist.Seq {
			seqIDs = append(seqIDs, id)
		}
	}
	for i := range allIDs {
		allIDs[i] = i
	}

	// Loads first (they depend only on placement and fanout pins), then
	// sequential launch values: launches depend only on loads, and the
	// topological order does not constrain a flip-flop to precede its
	// fanouts (edges out of registers cut the timing graph), so fanouts
	// may be visited first and must already see the launch arrival.
	if err := eachGate(ctx, allIDs, workers, func(id int) {
		r.Load[id] = in.netLoad(id, cfg)
	}); err != nil {
		return nil, err
	}
	if err := eachGate(ctx, allIDs, workers, func(id int) {
		if in.Circ.Gates[id].Kind != netlist.Seq {
			return
		}
		m := in.Masters[id]
		r.AOut[id] = m.DelayV(pert.dl(id), pert.dw(id), pert.dvth(id), cfg.ClockSlew, r.Load[id])
		r.Slew[id] = m.OutSlewV(pert.dl(id), pert.dw(id), pert.dvth(id), cfg.ClockSlew, r.Load[id])
		r.InSlew[id] = cfg.ClockSlew
	}); err != nil {
		return nil, err
	}

	// Forward pass, level by level.  A gate reads only its fanins'
	// arrival/slew — all at strictly lower levels or precomputed
	// flip-flop launch values — so gates within a level are independent.
	for lv := 0; lv <= maxLv; lv++ {
		if err := eachGate(ctx, buckets[lv], workers, func(id int) {
			forwardGate(r, in, cfg, pert, id)
		}); err != nil {
			return nil, err
		}
	}

	// MCT = max endpoint arrival.
	r.MCT = 0
	r.CritEnd = -1
	for id, a := range r.AEnd {
		if !math.IsNaN(a) && a > r.MCT {
			r.MCT = a
			r.CritEnd = id
		}
	}

	// Backward pass: required times at T = MCT, in gather form — each
	// node takes the min over its own fanout edges, which equals the
	// serial scatter relaxation exactly (min is order-independent).
	// Non-sequential nodes run in descending level order: an unblocked
	// edge u→v puts v at a strictly higher level, so ROut[v] is final
	// before u gathers it.  Sequential nodes run last: nothing reads a
	// flip-flop's required time (edges *into* a register need only MCT
	// and its setup), while its own gather may read combinational
	// fanouts at arbitrary levels.
	for i := range r.ROut {
		r.ROut[i] = math.Inf(1)
	}
	for lv := maxLv; lv >= 0; lv-- {
		ids := buckets[lv]
		nonSeq := ids[:0:0]
		for _, id := range ids {
			if in.Circ.Gates[id].Kind != netlist.Seq {
				nonSeq = append(nonSeq, id)
			}
		}
		if err := eachGate(ctx, nonSeq, workers, func(id int) {
			gatherRequired(r, in, cfg, pert, id)
		}); err != nil {
			return nil, err
		}
	}
	if err := eachGate(ctx, seqIDs, workers, func(id int) {
		gatherRequired(r, in, cfg, pert, id)
	}); err != nil {
		return nil, err
	}
	// Unloaded nodes: required defaults to MCT.
	for id := range r.ROut {
		if math.IsInf(r.ROut[id], 1) {
			r.ROut[id] = r.MCT
		}
	}
	if rec := obs.From(ctx); rec != nil {
		rec.Add("sta/analyses", 1)
		rec.Add("sta/analyze_gate_evals", int64(3*n+len(seqIDs)))
	}
	return r, nil
}

// forwardGate computes the arrival/slew of one gate from its fanins.
func forwardGate(r *Result, in Input, cfg Config, pert *Perturb, id int) {
	g := in.Circ.Gates[id]
	switch g.Kind {
	case netlist.PI:
		r.AOut[id] = 0
		r.Slew[id] = cfg.InputSlew
		r.InSlew[id] = cfg.InputSlew
	case netlist.Seq:
		// Capture: data arrival plus setup (endpoint); the launch side
		// was precomputed before the forward pass.
		r.AEnd[id] = dataArrival(r, in, id) + in.Masters[id].Setup
	case netlist.Comb:
		m := in.Masters[id]
		best := math.Inf(-1)
		var bestSlew, bestIn float64
		for _, fi := range g.Fanins {
			wd := in.WireDelay(fi, id)
			slewIn := r.Slew[fi] + cfg.SlewWireFactor*wd
			d := m.DelayV(pert.dl(id), pert.dw(id), pert.dvth(id), slewIn, r.Load[id])
			if a := r.AOut[fi] + wd + d; a > best {
				best = a
				bestSlew = m.OutSlewV(pert.dl(id), pert.dw(id), pert.dvth(id), slewIn, r.Load[id])
				bestIn = slewIn
			}
		}
		if math.IsInf(best, -1) {
			best = 0
			bestSlew = cfg.InputSlew
			bestIn = cfg.InputSlew
		}
		r.AOut[id] = best
		r.Slew[id] = bestSlew
		r.InSlew[id] = bestIn
	case netlist.PO:
		arr := dataArrival(r, in, id)
		r.AOut[id] = arr
		r.AEnd[id] = arr
		r.Slew[id] = cfg.InputSlew
	}
}

// gatherRequired computes one node's required time as the min over its
// fanout edges.  Dead ends stay +Inf; the caller's final pass defaults
// them to MCT, matching the serial scatter formulation.
func gatherRequired(r *Result, in Input, cfg Config, pert *Perturb, id int) {
	g := in.Circ.Gates[id]
	if g.Kind == netlist.PO {
		r.ROut[id] = r.MCT
		return
	}
	req := math.Inf(1)
	for _, fo := range g.Fanouts {
		og := in.Circ.Gates[fo]
		wd := in.WireDelay(id, fo)
		var q float64
		switch og.Kind {
		case netlist.PO:
			q = r.MCT - wd
		case netlist.Seq:
			q = r.MCT - in.Masters[fo].Setup - wd
		case netlist.Comb:
			m := in.Masters[fo]
			slewIn := r.Slew[id] + cfg.SlewWireFactor*wd
			d := m.DelayV(pert.dl(fo), pert.dw(fo), pert.dvth(fo), slewIn, r.Load[fo])
			q = r.ROut[fo] - d - wd
		default:
			continue
		}
		if q < req {
			req = q
		}
	}
	r.ROut[id] = req
}

func dataArrival(r *Result, in Input, id int) float64 {
	g := in.Circ.Gates[id]
	best := 0.0
	for _, fi := range g.Fanins {
		wd := in.WireDelay(fi, id)
		if a := r.AOut[fi] + wd; a > best {
			best = a
		}
	}
	return best
}

// ArcDelay returns the frozen arc delay from gate from into gate to as
// used by the analysis: wire delay plus the receiving cell's delay under
// the analyzed slews and loads (zero cell delay into POs and FF D pins).
func (r *Result) ArcDelay(from, to int) float64 {
	in := r.In
	g := in.Circ.Gates[to]
	wd := in.WireDelay(from, to)
	switch g.Kind {
	case netlist.PO, netlist.Seq:
		return wd
	case netlist.Comb:
		m := in.Masters[to]
		slewIn := r.Slew[from] + r.Cfg.SlewWireFactor*wd
		return wd + m.DelayV(r.Pert.dl(to), r.Pert.dw(to), r.Pert.dvth(to), slewIn, r.Load[to])
	}
	return wd
}

// EndWeight returns the terminal weight of an endpoint (setup for FFs).
func (r *Result) EndWeight(id int) float64 {
	g := r.In.Circ.Gates[id]
	if g.Kind == netlist.Seq {
		return r.In.Masters[id].Setup
	}
	return 0
}

// StartWeight returns the launch weight of a startpoint (clock-to-q for
// FFs, zero for PIs).
func (r *Result) StartWeight(id int) float64 {
	g := r.In.Circ.Gates[id]
	if g.Kind == netlist.Seq {
		return r.AOut[id] // clk-to-q as computed in the forward pass
	}
	return 0
}
