package sta

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/tech"
)

// TestTimerAdversarialSameCells hammers one small, fixed set of cells
// with the worst interleaving dosePl can produce: swap → snapshot →
// divergent swap → restore → perturb the very same cells → swap them
// again (including swap-backs that exactly undo a prior move), with a
// repeated restore from a single snapshot.  Every step must stay
// bit-identical to a cold analysis — this is the access pattern where a
// stale dirty set or a generation-stamp bug would surface.
func TestTimerAdversarialSameCells(t *testing.T) {
	in := mesh(t, 11)
	cfg := DefaultConfig()
	cfg.Workers = 1
	n := in.Circ.NumGates()
	tm, err := NewTimer(in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := placedCells(in)
	// The adversarial set: four cells reused by every operation.
	a, b, c, d := cells[3], cells[len(cells)/2], cells[len(cells)/3], cells[len(cells)-4]

	dl := make([]float64, n)
	pert := func() *Perturb { return &Perturb{DL: append([]float64(nil), dl...)} }

	for round := 0; round < 8; round++ {
		name := fmt.Sprintf("round%d", round)

		in.Pl.Swap(a, b)
		checkAgainstCold(t, name+"-swap-ab", in, cfg, pert(), tm.SwapUpdate(a, b))

		snap := tm.Snapshot()
		snapX := append([]float64(nil), in.Pl.X...)
		snapY := append([]float64(nil), in.Pl.Y...)
		snapPert := pert()

		// Diverge on the same cells, then roll back — twice, from the
		// same snapshot, proving Restore does not consume its argument.
		for rb := 0; rb < 2; rb++ {
			in.Pl.Swap(c, d)
			tm.SwapUpdate(c, d)
			in.Pl.Swap(a, d)
			tm.SwapUpdate(a, d)
			copy(in.Pl.X, snapX)
			copy(in.Pl.Y, snapY)
			tm.Restore(snap)
			checkAgainstCold(t, fmt.Sprintf("%s-restore%d", name, rb), in, cfg, snapPert, tm.Result())
		}

		// Perturb exactly the cells just swapped and restored.
		for i, id := range []int{a, b, c, d} {
			dl[id] = -8 + 3*float64(i) + float64(round)
		}
		checkAgainstCold(t, name+"-pert-same", in, cfg, pert(), tm.Update(pert()))

		// Swap the same pair back — the placement returns to its exact
		// pre-round coordinates while the perturbation does not.
		in.Pl.Swap(a, b)
		checkAgainstCold(t, name+"-swap-back", in, cfg, pert(), tm.SwapUpdate(a, b))

		// A self-swap is a legal no-op and must not corrupt state.
		in.Pl.Swap(c, c)
		checkAgainstCold(t, name+"-self-swap", in, cfg, pert(), tm.SwapUpdate(c, c))
	}
}

// tinyInput builds the degenerate design: one PI, one combinational
// cell, one FF and one PO on a chip the size of a single dose-map grid
// cell, so every dirty cone is the whole design and the wavefront and
// cutoff logic run at their boundary conditions.
func tinyInput(t *testing.T) Input {
	t.Helper()
	node := tech.N65()
	lib := liberty.New(node)
	c := netlist.New("tiny")
	pi := c.AddGate("pi", "", netlist.PI)
	g := c.AddGate("g", "INVX1", netlist.Comb)
	ff := c.AddGate("ff", "DFFX1", netlist.Seq)
	po := c.AddGate("po", "", netlist.PO)
	for _, e := range [][2]int{{pi.ID, g.ID}, {g.ID, ff.ID}, {ff.ID, po.ID}} {
		if err := c.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ms := make([]*liberty.Master, c.NumGates())
	ms[g.ID] = lib.MustMaster("INVX1")
	ms[ff.ID] = lib.MustMaster("DFFX1")
	pl := place.New(c, 5, 5, 1.4)
	pl.X[pi.ID], pl.Y[pi.ID] = 0, 0
	pl.X[g.ID], pl.Y[g.ID] = 1, 1
	pl.X[ff.ID], pl.Y[ff.ID] = 2, 2
	pl.X[po.ID], pl.Y[po.ID] = 4, 4
	return Input{Circ: c, Masters: ms, Pl: pl, Node: node}
}

// TestTimerDegenerateSingleGrid runs the full incremental repertoire on
// the tiny single-grid design: perturbations of the only two cells,
// swaps between them, snapshot/restore, and extreme dose deltas at the
// equipment limits, each checked bit-identical against cold analysis.
func TestTimerDegenerateSingleGrid(t *testing.T) {
	in := tinyInput(t)
	cfg := DefaultConfig()
	cfg.Workers = 1
	n := in.Circ.NumGates()
	tm, err := NewTimer(in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstCold(t, "tiny-initial", in, cfg, nil, tm.Result())

	cells := placedCells(in)
	if len(cells) != 2 {
		t.Fatalf("tiny design has %d placed cells, want 2", len(cells))
	}
	g, ff := cells[0], cells[1]

	dl := make([]float64, n)
	// Equipment-limit deltas: ±5% dose maps to ∓10 nm gate length.
	for step, v := range []float64{-10, 10, 0, -10, -10, 0} {
		dl[g] = v
		dl[ff] = -v
		p := &Perturb{DL: append([]float64(nil), dl...)}
		checkAgainstCold(t, fmt.Sprintf("tiny-pert%d", step), in, cfg, p, tm.Update(p))
	}

	snap := tm.Snapshot()
	snapX := append([]float64(nil), in.Pl.X...)
	snapY := append([]float64(nil), in.Pl.Y...)
	last := &Perturb{DL: append([]float64(nil), dl...)}

	in.Pl.Swap(g, ff)
	checkAgainstCold(t, "tiny-swap", in, cfg, last, tm.SwapUpdate(g, ff))
	in.Pl.Swap(g, ff)
	checkAgainstCold(t, "tiny-swap-back", in, cfg, last, tm.SwapUpdate(g, ff))

	copy(in.Pl.X, snapX)
	copy(in.Pl.Y, snapY)
	tm.Restore(snap)
	checkAgainstCold(t, "tiny-restore", in, cfg, last, tm.Result())

	// The MCT of a one-gate design must still be finite and positive.
	if r := tm.Result(); !(r.MCT > 0) || math.IsInf(r.MCT, 0) {
		t.Fatalf("tiny design MCT not finite positive: %v", r.MCT)
	}
}
