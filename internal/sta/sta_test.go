package sta

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/tech"
)

// tiny builds a hand-wired design: pi → inv1 → nand(a,b) → ff, with a
// parallel branch pi2 → inv2 → nand.
func tiny(t *testing.T) (Input, map[string]int) {
	t.Helper()
	node := tech.N65()
	lib := liberty.New(node)
	c := netlist.New("tiny")
	ids := map[string]int{}
	add := func(name, master string, kind netlist.Kind) int {
		id := c.AddGate(name, master, kind).ID
		ids[name] = id
		return id
	}
	pi := add("pi", "", netlist.PI)
	pi2 := add("pi2", "", netlist.PI)
	i1 := add("inv1", "INVX1", netlist.Comb)
	i2 := add("inv2", "INVX2", netlist.Comb)
	nd := add("nand", "NAND2X1", netlist.Comb)
	ff := add("ff", "DFFX1", netlist.Seq)
	po := add("po", "", netlist.PO)
	for _, e := range [][2]int{{pi, i1}, {pi2, i2}, {i1, nd}, {i2, nd}, {nd, ff}, {ff, po}} {
		if err := c.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	masters := make([]*liberty.Master, c.NumGates())
	for _, g := range c.Gates {
		if g.Master != "" {
			masters[g.ID] = lib.MustMaster(g.Master)
		}
	}
	pl := place.New(c, 100, 100, 1.4)
	// Simple spread so wire delays are nonzero but small.
	for i := range pl.X {
		pl.X[i] = float64(i) * 10
		pl.Y[i] = float64(i%2) * 5
	}
	return Input{Circ: c, Masters: masters, Pl: pl, Node: node}, ids
}

func TestAnalyzeTiny(t *testing.T) {
	in, ids := tiny(t)
	cfg := DefaultConfig()
	r, err := Analyze(in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Manual check of the inv1 arc: arrival(inv1) = wire(pi,inv1) +
	// delay(INVX1, slew, load).
	pi, i1 := ids["pi"], ids["inv1"]
	wd := in.WireDelay(pi, i1)
	slewIn := cfg.InputSlew + cfg.SlewWireFactor*wd
	m := in.Masters[i1]
	want := wd + m.Delay(0, 0, slewIn, r.Load[i1])
	if math.Abs(r.AOut[i1]-want) > 1e-9 {
		t.Errorf("AOut(inv1) = %v, want %v", r.AOut[i1], want)
	}

	// MCT must equal the FF endpoint arrival (the only register capture
	// is deeper than the PO path through clk-to-q).
	ff := ids["ff"]
	if math.IsNaN(r.AEnd[ff]) {
		t.Fatal("FF must be an endpoint")
	}
	if r.MCT < r.AEnd[ff]-1e-9 {
		t.Errorf("MCT %v below FF endpoint arrival %v", r.MCT, r.AEnd[ff])
	}

	// Worst slack at T = MCT is zero; no node on a live path is negative.
	worst := math.Inf(1)
	for id := range in.Circ.Gates {
		s := r.Slack(id, r.MCT)
		if s < worst {
			worst = s
		}
	}
	if math.Abs(worst) > 1e-6 {
		t.Errorf("worst slack at MCT = %v, want 0", worst)
	}
	if r.WorstSlack(r.MCT+100) != 100 {
		t.Error("WorstSlack shift wrong")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	in, _ := tiny(t)
	bad := in
	bad.Masters = bad.Masters[:2]
	if _, err := Analyze(bad, DefaultConfig(), nil); err == nil {
		t.Error("master length mismatch should fail")
	}
	empty := Input{Circ: netlist.New("e"), Node: in.Node}
	if _, err := Analyze(empty, DefaultConfig(), nil); err == nil {
		t.Error("empty circuit should fail")
	}
}

func TestPerturbMonotone(t *testing.T) {
	in, _ := tiny(t)
	cfg := DefaultConfig()
	base, err := Analyze(in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := in.Circ.NumGates()
	shorter := &Perturb{DL: make([]float64, n)}
	longer := &Perturb{DL: make([]float64, n)}
	for i := 0; i < n; i++ {
		shorter.DL[i] = -10 // dose +5%
		longer.DL[i] = 10   // dose -5%
	}
	fast, err := Analyze(in, cfg, shorter)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Analyze(in, cfg, longer)
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.MCT < base.MCT && base.MCT < slow.MCT) {
		t.Errorf("MCT ordering violated: %v %v %v", fast.MCT, base.MCT, slow.MCT)
	}
	// Width increase speeds the circuit up (slightly).
	wider := &Perturb{DW: make([]float64, n)}
	for i := 0; i < n; i++ {
		wider.DW[i] = 10
	}
	fastW, err := Analyze(in, cfg, wider)
	if err != nil {
		t.Fatal(err)
	}
	if fastW.MCT >= base.MCT {
		t.Errorf("wider devices should be faster: %v vs %v", fastW.MCT, base.MCT)
	}
}

func TestTopPathsTiny(t *testing.T) {
	in, ids := tiny(t)
	r, err := Analyze(in, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	paths := r.TopPaths(10, 0)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// Longest path delay equals MCT.
	if math.Abs(paths[0].Delay-r.MCT) > 1e-6 {
		t.Errorf("top path delay %v != MCT %v", paths[0].Delay, r.MCT)
	}
	// Non-increasing order.
	for i := 1; i < len(paths); i++ {
		if paths[i].Delay > paths[i-1].Delay+1e-9 {
			t.Errorf("paths out of order at %d", i)
		}
	}
	// The tiny circuit has exactly 3 endpoint-terminated paths:
	// pi→inv1→nand→ff, pi2→inv2→nand→ff, ff→po.
	if len(paths) != 3 {
		t.Errorf("path count = %d, want 3", len(paths))
	}
	// Path structure sanity.
	for _, p := range paths {
		if p.Start() != ids["pi"] && p.Start() != ids["pi2"] && p.Start() != ids["ff"] {
			t.Errorf("path starts at non-startpoint %d", p.Start())
		}
		end := p.End()
		if end != ids["ff"] && end != ids["po"] {
			t.Errorf("path ends at non-endpoint %d", end)
		}
		if s := p.Slack(r.MCT); s < -1e-9 {
			t.Errorf("negative slack %v at T=MCT", s)
		}
	}
}

func TestPathCountsAndFraction(t *testing.T) {
	in, ids := tiny(t)
	r, err := Analyze(in, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	paths := r.TopPaths(10, 0)
	counts := PathCounts(in.Circ.NumGates(), paths)
	// nand is on two of the three paths.
	if counts[ids["nand"]] != 2 {
		t.Errorf("nand path count = %d, want 2", counts[ids["nand"]])
	}
	f := FractionAbove(paths, r.MCT, 0.0)
	if f != 1 {
		t.Errorf("FractionAbove(0) = %v, want 1", f)
	}
	if FractionAbove(nil, r.MCT, 0.5) != 0 {
		t.Error("FractionAbove(nil) should be 0")
	}
	f95 := FractionAbove(paths, r.MCT, 0.95)
	if f95 <= 0 || f95 > 1 {
		t.Errorf("FractionAbove(0.95) = %v", f95)
	}
}

// randomDesign builds a random layered DAG design with real masters for
// property tests.
func randomDesign(rng *rand.Rand) Input {
	node := tech.N65()
	lib := liberty.New(node)
	c := netlist.New("rand")
	var level0 []int
	for i := 0; i < 1+rng.Intn(3); i++ {
		level0 = append(level0, c.AddGate("pi", "", netlist.PI).ID)
	}
	ffid := c.AddGate("ff0", "DFFX1", netlist.Seq).ID
	level0 = append(level0, ffid)
	layers := [][]int{level0}
	combMasters := []string{"INVX1", "INVX2", "NAND2X1", "NOR2X1", "BUFX1"}
	nL := 2 + rng.Intn(4)
	for l := 0; l < nL; l++ {
		var cur []int
		for i := 0; i < 1+rng.Intn(4); i++ {
			m := combMasters[rng.Intn(len(combMasters))]
			g := c.AddGate("g", m, netlist.Comb)
			nIn := 1
			if m == "NAND2X1" || m == "NOR2X1" {
				nIn = 2
			}
			for k := 0; k < nIn; k++ {
				ll := layers[rng.Intn(len(layers))]
				_ = c.Connect(ll[rng.Intn(len(ll))], g.ID)
			}
			cur = append(cur, g.ID)
		}
		layers = append(layers, cur)
	}
	// Terminate: every last-layer gate feeds a PO; one feeds the FF.
	last := layers[len(layers)-1]
	_ = c.Connect(last[0], ffid)
	for _, id := range last {
		po := c.AddGate("po", "", netlist.PO)
		_ = c.Connect(id, po.ID)
	}
	masters := make([]*liberty.Master, c.NumGates())
	for _, g := range c.Gates {
		if g.Master != "" {
			masters[g.ID] = lib.MustMaster(g.Master)
		}
	}
	pl := place.New(c, 200, 200, 1.4)
	for i := range pl.X {
		pl.X[i] = rng.Float64() * 180
		pl.Y[i] = rng.Float64() * 180
	}
	return Input{Circ: c, Masters: masters, Pl: pl, Node: node}
}

// bruteForcePaths enumerates every endpoint-terminated path by DFS.
func bruteForcePaths(r *Result) []*Path {
	in := r.In
	var out []*Path
	var dfs func(node int, delay float64, prefix []int)
	dfs = func(node int, delay float64, prefix []int) {
		g := in.Circ.Gates[node]
		prefix = append(prefix, node)
		for _, fo := range g.Fanouts {
			fog := in.Circ.Gates[fo]
			arc := r.ArcDelay(node, fo)
			if fog.Kind == netlist.PO || fog.Kind == netlist.Seq {
				nodes := append(append([]int{}, prefix...), fo)
				out = append(out, &Path{Nodes: nodes, Delay: delay + arc + r.EndWeight(fo)})
			} else {
				dfs(fo, delay+arc, prefix)
			}
		}
	}
	for _, sp := range in.Circ.StartPoints() {
		dfs(sp, r.StartWeight(sp), nil)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Delay > out[b].Delay })
	return out
}

// Property: TopPaths matches brute-force enumeration in count, order and
// delay on random designs, and the longest equals the MCT.
func TestPropertyTopPathsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomDesign(rng)
		r, err := Analyze(in, DefaultConfig(), nil)
		if err != nil {
			return false
		}
		brute := bruteForcePaths(r)
		got := r.TopPaths(len(brute)+10, 0)
		if len(got) != len(brute) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Delay-brute[i].Delay) > 1e-6 {
				return false
			}
		}
		if len(brute) > 0 && math.Abs(brute[0].Delay-r.MCT) > 1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: uniformly shortening every gate (higher dose) never increases
// any arrival time, and the MCT strictly improves.
func TestPropertyUniformDoseMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomDesign(rng)
		cfg := DefaultConfig()
		base, err := Analyze(in, cfg, nil)
		if err != nil {
			return false
		}
		n := in.Circ.NumGates()
		p := &Perturb{DL: make([]float64, n)}
		for i := range p.DL {
			p.DL[i] = -4
		}
		fast, err := Analyze(in, cfg, p)
		if err != nil {
			return false
		}
		for id := range in.Circ.Gates {
			if fast.AOut[id] > base.AOut[id]+1e-9 {
				return false
			}
		}
		return fast.MCT < base.MCT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTopPathsRepeatDeterministic asserts repeated TopPaths calls on the
// same Result return identical paths: the enumeration reads only frozen
// analysis state, so callers (the dosePl rounds, the cut generator) may
// re-extract paths at will without perturbing each other.
func TestTopPathsRepeatDeterministic(t *testing.T) {
	in := mesh(t, 77)
	r, err := Analyze(in, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const k, maxStates = 50, 100000
	a := r.TopPaths(k, maxStates)
	b := r.TopPaths(k, maxStates)
	if len(a) == 0 {
		t.Fatal("no paths enumerated")
	}
	if len(a) != len(b) {
		t.Fatalf("path counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i].Delay) != math.Float64bits(b[i].Delay) {
			t.Fatalf("path %d delay differs: %v vs %v", i, a[i].Delay, b[i].Delay)
		}
		if len(a[i].Nodes) != len(b[i].Nodes) {
			t.Fatalf("path %d node counts differ", i)
		}
		for j := range a[i].Nodes {
			if a[i].Nodes[j] != b[i].Nodes[j] {
				t.Fatalf("path %d diverges at node %d: %d vs %d", i, j, a[i].Nodes[j], b[i].Nodes[j])
			}
		}
	}
}

func TestTopPathsLimits(t *testing.T) {
	in, _ := tiny(t)
	r, err := Analyze(in, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.TopPaths(0, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := r.TopPaths(1, 0); len(got) != 1 {
		t.Errorf("k=1 returned %d", len(got))
	}
	// maxStates cap truncates.
	if got := r.TopPaths(10, 1); len(got) > 1 {
		t.Errorf("maxStates=1 returned %d paths", len(got))
	}
}
