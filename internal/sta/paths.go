package sta

import (
	"container/heap"
	"math"

	"repro/internal/netlist"
)

// Path is one register-to-register (or port-to-port) timing path.
type Path struct {
	// Nodes lists gate IDs from startpoint to endpoint inclusive.
	Nodes []int
	// Delay is the total path delay in ps, including the startpoint
	// launch (clock-to-q) and the endpoint setup.
	Delay float64
}

// Slack returns the path slack at clock period T.
func (p *Path) Slack(period float64) float64 { return period - p.Delay }

// Start and End return the path's terminal gate IDs.
func (p *Path) Start() int { return p.Nodes[0] }
func (p *Path) End() int   { return p.Nodes[len(p.Nodes)-1] }

// pathState is a node in the implicit prefix tree of the best-first
// search.
type pathState struct {
	node     int
	g        float64 // exact delay of the prefix up to (and including) node
	bound    float64 // g + best possible suffix
	parent   int     // index into the arena; -1 for roots
	terminal bool
}

type stateHeap struct {
	arena *[]pathState
	idx   []int
}

func (h stateHeap) Len() int { return len(h.idx) }
func (h stateHeap) Less(a, b int) bool {
	return (*h.arena)[h.idx[a]].bound > (*h.arena)[h.idx[b]].bound
}
func (h stateHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *stateHeap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *stateHeap) Pop() any {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}

// TopPaths enumerates the K longest paths in exact non-increasing delay
// order, the stand-in for the paper's "top-K (e.g., K = 10,000) critical
// paths" extraction.  Fewer than K paths are returned if the design has
// fewer distinct paths (enumeration also stops after visiting maxStates
// prefix states as a safety valve; 0 means no limit).
func (r *Result) TopPaths(k int, maxStates int) []*Path {
	return TopPathsDAG(r.In.Circ, r.order, r.ArcDelay, r.StartWeight, r.EndWeight, k, maxStates)
}

// TopPathsDAG is the graph-generic K-longest-path enumeration underlying
// TopPaths: arc gives the delay of edge from→to, start the launch weight
// of a startpoint, end the terminal weight of an endpoint.  The
// optimizer reuses it on its linear delay model.
func TopPathsDAG(circ *netlist.Circuit, order []int, arc func(from, to int) float64,
	start, end func(id int) float64, k, maxStates int) []*Path {
	if k <= 0 {
		return nil
	}
	n := circ.NumGates()

	// suffix[id] = best achievable delay from id's output to any
	// endpoint (excluding id's own launch weight); -inf for dead ends.
	suffix := make([]float64, n)
	for i := range suffix {
		suffix[i] = math.Inf(-1)
	}
	relax := func(id int) {
		g := circ.Gates[id]
		best := math.Inf(-1)
		for _, fo := range g.Fanouts {
			fog := circ.Gates[fo]
			a := arc(id, fo)
			var v float64
			if fog.Kind == netlist.PO || fog.Kind == netlist.Seq {
				v = a + end(fo)
			} else if !math.IsInf(suffix[fo], -1) {
				v = a + suffix[fo]
			} else {
				continue
			}
			if v > best {
				best = v
			}
		}
		suffix[id] = best
	}
	// Reverse topological pass fixes combinational/PI suffixes; a second
	// pass fixes sequential launch nodes (their fanouts are already
	// final).
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if circ.Gates[id].Kind != netlist.Seq {
			relax(id)
		}
	}
	for id, g := range circ.Gates {
		if g.Kind == netlist.Seq {
			relax(id)
		}
	}

	arena := make([]pathState, 0, 4*k)
	h := &stateHeap{arena: &arena}
	push := func(s pathState) {
		arena = append(arena, s)
		heap.Push(h, len(arena)-1)
	}
	// Roots: all startpoints with a live suffix.
	for _, sp := range circ.StartPoints() {
		if math.IsInf(suffix[sp], -1) {
			continue
		}
		g0 := start(sp)
		push(pathState{node: sp, g: g0, bound: g0 + suffix[sp], parent: -1})
	}

	var paths []*Path
	visited := 0
	for h.Len() > 0 && len(paths) < k {
		si := heap.Pop(h).(int)
		s := arena[si]
		visited++
		if maxStates > 0 && visited > maxStates {
			break
		}
		if s.terminal {
			// Reconstruct.
			var rev []int
			for i := si; i >= 0; i = arena[i].parent {
				rev = append(rev, arena[i].node)
			}
			nodes := make([]int, len(rev))
			for i, v := range rev {
				nodes[len(rev)-1-i] = v
			}
			paths = append(paths, &Path{Nodes: nodes, Delay: s.g})
			continue
		}
		g := circ.Gates[s.node]
		for _, fo := range g.Fanouts {
			fog := circ.Gates[fo]
			a := arc(s.node, fo)
			if fog.Kind == netlist.PO || fog.Kind == netlist.Seq {
				tot := s.g + a + end(fo)
				push(pathState{node: fo, g: tot, bound: tot, parent: si, terminal: true})
			} else if !math.IsInf(suffix[fo], -1) {
				ng := s.g + a
				push(pathState{node: fo, g: ng, bound: ng + suffix[fo], parent: si})
			}
		}
	}
	return paths
}

// PathCounts returns, for each gate, the number of the given paths that
// pass through it — the first dosePl priority factor ("number of critical
// paths that pass through the cell").
func PathCounts(nGates int, paths []*Path) []int {
	counts := make([]int, nGates)
	for _, p := range paths {
		for _, id := range p.Nodes {
			counts[id]++
		}
	}
	return counts
}

// FractionAbove returns the fraction of paths whose delay is at least
// frac·mct — the Table VII criticality metric.
func FractionAbove(paths []*Path, mct, frac float64) float64 {
	if len(paths) == 0 {
		return 0
	}
	n := 0
	for _, p := range paths {
		if p.Delay >= frac*mct {
			n++
		}
	}
	return float64(n) / float64(len(paths))
}
