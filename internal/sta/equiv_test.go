package sta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/tech"
)

// wide builds a design with many parallel inverter chains so that the
// topological levels are wide enough (≥ levelGrain gates) to exercise
// the per-level parallel path of AnalyzeCtx.
func wide(t *testing.T) Input {
	t.Helper()
	node := tech.N65()
	lib := liberty.New(node)
	c := netlist.New("wide")
	const chains, depth = 48, 4
	invs := []string{"INVX1", "INVX2", "INVX4"}
	masters := map[int]string{}
	add := func(name, master string, kind netlist.Kind) int {
		id := c.AddGate(name, master, kind).ID
		if master != "" {
			masters[id] = master
		}
		return id
	}
	for i := 0; i < chains; i++ {
		prev := add(fmt.Sprintf("pi%d", i), "", netlist.PI)
		for l := 0; l < depth; l++ {
			g := add(fmt.Sprintf("inv%d_%d", i, l), invs[(i+l)%len(invs)], netlist.Comb)
			if err := c.Connect(prev, g); err != nil {
				t.Fatal(err)
			}
			prev = g
		}
		ff := add(fmt.Sprintf("ff%d", i), "DFFX1", netlist.Seq)
		po := add(fmt.Sprintf("po%d", i), "", netlist.PO)
		if err := c.Connect(prev, ff); err != nil {
			t.Fatal(err)
		}
		if err := c.Connect(ff, po); err != nil {
			t.Fatal(err)
		}
	}
	ms := make([]*liberty.Master, c.NumGates())
	for id, name := range masters {
		ms[id] = lib.MustMaster(name)
	}
	pl := place.New(c, 400, 400, 1.4)
	for i := range pl.X {
		pl.X[i] = float64((i * 37) % 400)
		pl.Y[i] = float64((i * 13) % 400)
	}
	return Input{Circ: c, Masters: ms, Pl: pl, Node: node}
}

func sameBits(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: %v != %v (not bit-identical)", name, i, a[i], b[i])
		}
	}
}

// TestAnalyzeWorkersEquivalent asserts the tentpole determinism
// contract: the analysis is bit-identical for every worker count.
func TestAnalyzeWorkersEquivalent(t *testing.T) {
	in := wide(t)
	cfg := DefaultConfig()
	cfg.Workers = 1
	n := in.Circ.NumGates()
	dl := make([]float64, n)
	dw := make([]float64, n)
	for i := 0; i < n; i++ {
		dl[i] = -10 + float64(i%21)
		dw[i] = -5 + float64(i%11)
	}
	pert := &Perturb{DL: dl, DW: dw}
	ref, err := Analyze(in, cfg, pert)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 0} {
		cfg.Workers = w
		r, err := AnalyzeCtx(context.Background(), in, cfg, pert)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if math.Float64bits(r.MCT) != math.Float64bits(ref.MCT) {
			t.Fatalf("workers=%d: MCT %v != %v", w, r.MCT, ref.MCT)
		}
		if r.CritEnd != ref.CritEnd {
			t.Fatalf("workers=%d: CritEnd %d != %d", w, r.CritEnd, ref.CritEnd)
		}
		sameBits(t, "AOut", r.AOut, ref.AOut)
		sameBits(t, "AEnd", r.AEnd, ref.AEnd)
		sameBits(t, "ROut", r.ROut, ref.ROut)
		sameBits(t, "Slew", r.Slew, ref.Slew)
		sameBits(t, "InSlew", r.InSlew, ref.InSlew)
		sameBits(t, "Load", r.Load, ref.Load)
	}
}

// TestAnalyzeCtxCanceled asserts cancellation surfaces as a wrapped
// context.Canceled before any level is evaluated.
func TestAnalyzeCtxCanceled(t *testing.T) {
	in := wide(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AnalyzeCtx(ctx, in, DefaultConfig(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}
