package sta

import (
	"context"
	"math"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Timer is a reusable incremental timing engine.  It is constructed once
// per design — freezing the topological order, level buckets and
// sequential/dead-end node sets, and allocating every scratch buffer —
// and then answers repeated timing queries by re-propagating only the
// cones affected by what actually changed:
//
//   - Update(pert) diffs the new perturbation against the previous one
//     AND the current placement against the positions seen last (so
//     legalization moves are picked up automatically), seeds the dirty
//     set with the changed gates, and re-propagates forward through the
//     fanout cones (with bitwise early cut-off when a gate's
//     arrival/slew is unchanged) and backward through the affected
//     required-time cone only;
//   - SwapUpdate(a, b) invalidates exactly the nets incident to a
//     swapped pair of cells and re-propagates the same way.
//
// The contract is strict bitwise equivalence: after every update the
// Timer's Result is identical under math.Float64bits to a cold full
// Analyze of the same design state.  This holds because every value the
// Timer writes is produced by the very same expressions Analyze uses
// (forwardGate, gatherRequired, the launch block, netLoad and the MCT
// scan), evaluated in an order where every operand already carries its
// cold-analysis bits.
//
// A Timer is not safe for concurrent use.  The Result returned by
// Update/SwapUpdate/Result aliases the Timer's internal buffers and is
// only valid until the next update (or Restore).
type Timer struct {
	in  Input
	cfg Config
	res *Result

	// pert is the dense current perturbation, owned by the Timer (the
	// caller's Perturb slices are copied, so they may be reused).
	pert *Perturb

	// Frozen topology.
	buckets [][]int // gates per level, in topological order
	maxLv   int
	seqIDs  []int // flip-flops in topological order (backward pass tail)
	// deadIDs are the structurally unloaded nodes whose raw backward
	// value is +Inf; Analyze defaults them to MCT in a final pass.  The
	// set is placement- and dose-independent, so it is frozen here and
	// the stored MCT values are flipped back to +Inf around each
	// incremental backward pass (see incrementalBackward).
	deadIDs []int

	// prevX/prevY are the placement coordinates the current timing state
	// corresponds to; Update diffs against them to find moved cells.
	prevX, prevY []float64

	// Dirty stamps (generation-tagged so no per-update clearing).
	gen               uint32
	fdirty            []uint32 // forward: re-run forwardGate
	bdirty            []uint32 // backward: re-run gatherRequired
	loadMark, relMark []uint32
	loadList, relList []int // drivers needing netLoad; FFs needing relaunch

	// evals counts gate evaluations (load recomputes, launch updates,
	// forwardGate and gatherRequired calls) for perf accounting.
	evals uint64

	// rec is the telemetry recorder captured at construction (nil when
	// disabled); updates emit aggregate counters once per finish, never
	// inside the per-gate loops.
	rec *obs.Recorder
}

// NewTimer builds a Timer for the design, running one full analysis to
// seed the timing state at the given perturbation (nil means nominal).
func NewTimer(in Input, cfg Config, pert *Perturb) (*Timer, error) {
	return NewTimerCtx(context.Background(), in, cfg, pert)
}

// NewTimerCtx is NewTimer with cancellation of the initial full
// analysis.  Subsequent updates are cheap and not cancellable.
func NewTimerCtx(ctx context.Context, in Input, cfg Config, pert *Perturb) (*Timer, error) {
	res, err := AnalyzeCtx(ctx, in, cfg, pert)
	if err != nil {
		return nil, err
	}
	n := in.Circ.NumGates()
	levels, err := in.Circ.Levelize()
	if err != nil {
		return nil, err
	}
	t := &Timer{
		in: in, cfg: cfg, res: res, rec: obs.From(ctx),
		prevX:    append([]float64(nil), in.Pl.X...),
		prevY:    append([]float64(nil), in.Pl.Y...),
		fdirty:   make([]uint32, n),
		bdirty:   make([]uint32, n),
		loadMark: make([]uint32, n),
		relMark:  make([]uint32, n),
	}
	t.pert = &Perturb{DL: make([]float64, n), DW: make([]float64, n), DVth: make([]float64, n)}
	for id := 0; id < n; id++ {
		t.pert.DL[id] = pert.dl(id)
		t.pert.DW[id] = pert.dw(id)
		t.pert.DVth[id] = pert.dvth(id)
	}
	res.Pert = t.pert

	for _, lv := range levels {
		if lv > t.maxLv {
			t.maxLv = lv
		}
	}
	t.buckets = make([][]int, t.maxLv+1)
	for _, id := range res.order {
		t.buckets[levels[id]] = append(t.buckets[levels[id]], id)
		if in.Circ.Gates[id].Kind == netlist.Seq {
			t.seqIDs = append(t.seqIDs, id)
		}
	}
	t.findDeadEnds()
	return t, nil
}

// findDeadEnds computes the structural set of nodes whose gathered
// required time is +Inf: non-endpoints all of whose fanout edges lead
// only to other dead ends.  The set depends only on the netlist.
func (t *Timer) findDeadEnds() {
	n := t.in.Circ.NumGates()
	dead := make([]bool, n)
	alive := func(id int) bool {
		g := t.in.Circ.Gates[id]
		if g.Kind == netlist.PO {
			return true
		}
		for _, fo := range g.Fanouts {
			switch t.in.Circ.Gates[fo].Kind {
			case netlist.PO, netlist.Seq:
				return true
			case netlist.Comb:
				if !dead[fo] {
					return true
				}
			}
		}
		return false
	}
	// Mirror the backward-pass order: non-sequential nodes in descending
	// level order (every live fanout of a Comb node sits at a higher
	// level, so its deadness is final when read), flip-flops last.
	for lv := t.maxLv; lv >= 0; lv-- {
		for _, id := range t.buckets[lv] {
			if t.in.Circ.Gates[id].Kind != netlist.Seq {
				dead[id] = !alive(id)
			}
		}
	}
	for _, id := range t.seqIDs {
		dead[id] = !alive(id)
	}
	for id, d := range dead {
		if d {
			t.deadIDs = append(t.deadIDs, id)
		}
	}
}

// Result returns the timing of the current design state.  The pointer
// aliases the Timer's buffers: valid until the next update or Restore.
func (t *Timer) Result() *Result { return t.res }

// Evals returns the cumulative gate-evaluation count (loads, launches,
// forward and backward gate visits) across all updates, for comparing
// incremental work against full re-analysis (which costs about 2·N gate
// visits plus N load computations per call).
func (t *Timer) Evals() uint64 { return t.evals }

// FullEvalCost returns the gate-evaluation cost of one cold Analyze in
// the same units as Evals: one load, one forward and one backward visit
// per gate, plus one launch update per flip-flop.
func (t *Timer) FullEvalCost() uint64 {
	return uint64(3*t.in.Circ.NumGates() + len(t.seqIDs))
}

func (t *Timer) markF(id int)    { t.fdirty[id] = t.gen }
func (t *Timer) markB(id int)    { t.bdirty[id] = t.gen }
func (t *Timer) isF(id int) bool { return t.fdirty[id] == t.gen }
func (t *Timer) isB(id int) bool { return t.bdirty[id] == t.gen }

func (t *Timer) markLoad(id int) {
	if t.loadMark[id] != t.gen {
		t.loadMark[id] = t.gen
		t.loadList = append(t.loadList, id)
	}
}

func (t *Timer) markRelaunch(id int) {
	if t.relMark[id] != t.gen {
		t.relMark[id] = t.gen
		t.relList = append(t.relList, id)
	}
}

// Update re-times the design after the perturbation changed to pert
// and/or cells moved (swaps, legalization).  It returns the updated
// Result, bit-identical to a cold Analyze of the same state.
func (t *Timer) Update(pert *Perturb) *Result {
	t.begin()
	// Placement diff: a moved cell invalidates the wire delays of every
	// incident arc and the wire caps of every net it belongs to (its own
	// net and each fanin's net).
	for id := range t.prevX {
		x, y := t.in.Pl.X[id], t.in.Pl.Y[id]
		if math.Float64bits(x) != math.Float64bits(t.prevX[id]) ||
			math.Float64bits(y) != math.Float64bits(t.prevY[id]) {
			t.prevX[id], t.prevY[id] = x, y
			t.seedMoved(id)
		}
	}
	// Perturbation diff: a changed gate re-evaluates its own delay (or
	// its launch, for flip-flops) and the required times of its fanins,
	// whose gather walks through this gate's cell delay.
	for id := 0; id < len(t.pert.DL); id++ {
		ndl, ndw, ndv := pert.dl(id), pert.dw(id), pert.dvth(id)
		if math.Float64bits(ndl) == math.Float64bits(t.pert.DL[id]) &&
			math.Float64bits(ndw) == math.Float64bits(t.pert.DW[id]) &&
			math.Float64bits(ndv) == math.Float64bits(t.pert.DVth[id]) {
			continue
		}
		t.pert.DL[id], t.pert.DW[id], t.pert.DVth[id] = ndl, ndw, ndv
		t.seedPertChange(id)
	}
	return t.finish()
}

// SwapUpdate re-times the design after the caller swapped the placement
// of cells a and b (e.g. via Placement.Swap).  Only the nets incident
// to the pair are invalidated.  The result is bit-identical to a cold
// Analyze of the swapped state.
func (t *Timer) SwapUpdate(a, b int) *Result {
	t.begin()
	for _, id := range [2]int{a, b} {
		x, y := t.in.Pl.X[id], t.in.Pl.Y[id]
		if math.Float64bits(x) != math.Float64bits(t.prevX[id]) ||
			math.Float64bits(y) != math.Float64bits(t.prevY[id]) {
			t.prevX[id], t.prevY[id] = x, y
			t.seedMoved(id)
		}
	}
	return t.finish()
}

func (t *Timer) begin() {
	t.gen++
	t.loadList = t.loadList[:0]
	t.relList = t.relList[:0]
}

// seedMoved records the timing consequences of one cell changing
// position: stale wire caps on every net containing it, stale wire
// delays on every incident arc.
func (t *Timer) seedMoved(c int) {
	g := t.in.Circ.Gates[c]
	t.markLoad(c)
	// Arcs fi→c: forward of c and gather of each fi use WireDelay(fi, c).
	t.markF(c)
	for _, fi := range g.Fanins {
		t.markLoad(fi) // c is on fi's net: its HPWL changed
		t.markB(fi)
	}
	// Arcs c→fo: forward of each fo and gather of c use WireDelay(c, fo).
	t.markB(c)
	for _, fo := range g.Fanouts {
		t.markF(fo)
	}
}

// seedPertChange records the consequences of gate id's dose-induced
// geometry delta changing.
func (t *Timer) seedPertChange(id int) {
	g := t.in.Circ.Gates[id]
	switch g.Kind {
	case netlist.Comb:
		t.markF(id)
		// gather of a fanin evaluates this gate's cell delay.
		for _, fi := range g.Fanins {
			t.markB(fi)
		}
	case netlist.Seq:
		t.markRelaunch(id)
	}
}

// finish runs the staged recomputation — loads, launches, forward cone,
// MCT, backward cone — mirroring Analyze's phase order exactly.
func (t *Timer) finish() *Result {
	r, in, cfg := t.res, t.in, t.cfg
	evalsBefore := t.evals
	var fwdVisits, cutoffs int64

	// Loads first (they depend only on placement and fanout pins).  A
	// changed load re-evaluates the gate's own delay, its launch if it
	// is a flip-flop, and the gathers of its fanins (which walk through
	// the gate's delay at its load).
	for _, d := range t.loadList {
		old := math.Float64bits(r.Load[d])
		r.Load[d] = in.netLoad(d, cfg)
		t.evals++
		if math.Float64bits(r.Load[d]) == old {
			continue
		}
		g := in.Circ.Gates[d]
		switch g.Kind {
		case netlist.Comb:
			t.markF(d)
			for _, fi := range g.Fanins {
				t.markB(fi)
			}
		case netlist.Seq:
			t.markRelaunch(d)
		}
	}

	// Sequential launches next: fanouts of a flip-flop may sit at lower
	// levels (edges out of registers cut the timing graph), so launch
	// changes must mark them dirty before the level sweep starts.
	for _, s := range t.relList {
		m := in.Masters[s]
		oldA := math.Float64bits(r.AOut[s])
		oldS := math.Float64bits(r.Slew[s])
		r.AOut[s] = m.DelayV(t.pert.dl(s), t.pert.dw(s), t.pert.dvth(s), cfg.ClockSlew, r.Load[s])
		r.Slew[s] = m.OutSlewV(t.pert.dl(s), t.pert.dw(s), t.pert.dvth(s), cfg.ClockSlew, r.Load[s])
		r.InSlew[s] = cfg.ClockSlew
		t.evals++
		slewChanged := math.Float64bits(r.Slew[s]) != oldS
		if slewChanged || math.Float64bits(r.AOut[s]) != oldA {
			for _, fo := range in.Circ.Gates[s].Fanouts {
				t.markF(fo)
			}
		}
		if slewChanged {
			t.markB(s) // gather of s reads its own output slew
		}
	}

	// Forward cone, level by level, with bitwise early cut-off: a dirty
	// gate whose recomputed arrival AND slew are unchanged stops the
	// wavefront (its fanouts never see a difference).
	for lv := 0; lv <= t.maxLv; lv++ {
		for _, id := range t.buckets[lv] {
			if !t.isF(id) {
				continue
			}
			oldA := math.Float64bits(r.AOut[id])
			oldS := math.Float64bits(r.Slew[id])
			forwardGate(r, in, cfg, t.pert, id)
			t.evals++
			fwdVisits++
			slewChanged := math.Float64bits(r.Slew[id]) != oldS
			if slewChanged || math.Float64bits(r.AOut[id]) != oldA {
				for _, fo := range in.Circ.Gates[id].Fanouts {
					t.markF(fo)
				}
			} else {
				cutoffs++ // bitwise unchanged: wavefront stops here
			}
			if slewChanged {
				t.markB(id) // gather of id reads its own output slew
			}
		}
	}

	// MCT: always the same full endpoint scan Analyze runs, so ties
	// break identically.
	oldMCT := math.Float64bits(r.MCT)
	r.MCT = 0
	r.CritEnd = -1
	for id, a := range r.AEnd {
		if !math.IsNaN(a) && a > r.MCT {
			r.MCT = a
			r.CritEnd = id
		}
	}

	// Backward: every stored required time is anchored to MCT, so a
	// changed MCT invalidates all of them — replay Analyze's full pass.
	// Otherwise only the dirty cone is re-gathered.
	fullB := math.Float64bits(r.MCT) != oldMCT
	if fullB {
		t.fullBackward()
	} else {
		t.incrementalBackward()
	}
	if t.rec != nil {
		t.rec.Add("sta/updates", 1)
		t.rec.Add("sta/update_gate_evals", int64(t.evals-evalsBefore))
		t.rec.Add("sta/dirty_cone_gates", fwdVisits)
		t.rec.Add("sta/early_cutoffs", cutoffs)
		if fullB {
			t.rec.Add("sta/full_backward_passes", 1)
		} else {
			t.rec.Add("sta/incremental_backward_passes", 1)
		}
	}
	return r
}

// fullBackward replays Analyze's backward pass verbatim.
func (t *Timer) fullBackward() {
	r, in, cfg := t.res, t.in, t.cfg
	for i := range r.ROut {
		r.ROut[i] = math.Inf(1)
	}
	for lv := t.maxLv; lv >= 0; lv-- {
		for _, id := range t.buckets[lv] {
			if in.Circ.Gates[id].Kind != netlist.Seq {
				gatherRequired(r, in, cfg, t.pert, id)
				t.evals++
			}
		}
	}
	for _, id := range t.seqIDs {
		gatherRequired(r, in, cfg, t.pert, id)
		t.evals++
	}
	for id := range r.ROut {
		if math.IsInf(r.ROut[id], 1) {
			r.ROut[id] = r.MCT
		}
	}
}

// incrementalBackward re-gathers only the dirty required-time cone.
//
// Analyze's backward pass computes raw values where dead ends are +Inf
// and defaults them to MCT afterwards; any gather that reads a dead-end
// fanout must therefore see +Inf, not the stored MCT.  The dead-end set
// is structural, so the stored values are flipped to +Inf for the
// duration of the pass and back to MCT after it — restoring exactly the
// representation a cold analysis would have produced.
func (t *Timer) incrementalBackward() {
	r, in, cfg := t.res, t.in, t.cfg
	for _, id := range t.deadIDs {
		r.ROut[id] = math.Inf(1)
	}
	for lv := t.maxLv; lv >= 0; lv-- {
		for _, id := range t.buckets[lv] {
			if !t.isB(id) {
				continue
			}
			g := in.Circ.Gates[id]
			if g.Kind == netlist.Seq {
				continue // gathered last, below
			}
			old := math.Float64bits(r.ROut[id])
			gatherRequired(r, in, cfg, t.pert, id)
			t.evals++
			// Only combinational required times feed further gathers
			// (fanins read ROut[fo] in the Comb branch only).
			if g.Kind == netlist.Comb && math.Float64bits(r.ROut[id]) != old {
				for _, fi := range g.Fanins {
					t.markB(fi)
				}
			}
		}
	}
	for _, id := range t.seqIDs {
		if t.isB(id) {
			gatherRequired(r, in, cfg, t.pert, id)
			t.evals++
		}
	}
	for _, id := range t.deadIDs {
		r.ROut[id] = r.MCT
	}
}

// TimerState is an opaque snapshot of a Timer's mutable state, used for
// cheap rollback (e.g. dosePl rejecting a swap round).
type TimerState struct {
	aout, aend, rout, slew, inslew, load []float64
	dl, dw                               []float64
	px, py                               []float64
	mct                                  float64
	critEnd                              int
}

// Snapshot captures the current timing state.  Restoring it later (with
// the placement restored to the same coordinates by the caller) resumes
// incremental updates from this exact point.
func (t *Timer) Snapshot() *TimerState {
	t.rec.Add("sta/snapshots", 1)
	r := t.res
	return &TimerState{
		aout:    append([]float64(nil), r.AOut...),
		aend:    append([]float64(nil), r.AEnd...),
		rout:    append([]float64(nil), r.ROut...),
		slew:    append([]float64(nil), r.Slew...),
		inslew:  append([]float64(nil), r.InSlew...),
		load:    append([]float64(nil), r.Load...),
		dl:      append([]float64(nil), t.pert.DL...),
		dw:      append([]float64(nil), t.pert.DW...),
		px:      append([]float64(nil), t.prevX...),
		py:      append([]float64(nil), t.prevY...),
		mct:     r.MCT,
		critEnd: r.CritEnd,
	}
}

// Restore rewinds the Timer to a snapshot taken earlier on the same
// Timer.  The caller is responsible for restoring the placement to the
// coordinates it had at snapshot time (dosePl's rollback does exactly
// that); the Timer re-syncs its position mirror from the snapshot.
func (t *Timer) Restore(s *TimerState) {
	t.rec.Add("sta/restores", 1)
	r := t.res
	copy(r.AOut, s.aout)
	copy(r.AEnd, s.aend)
	copy(r.ROut, s.rout)
	copy(r.Slew, s.slew)
	copy(r.InSlew, s.inslew)
	copy(r.Load, s.load)
	copy(t.pert.DL, s.dl)
	copy(t.pert.DW, s.dw)
	copy(t.prevX, s.px)
	copy(t.prevY, s.py)
	r.MCT = s.mct
	r.CritEnd = s.critEnd
}
