package sta

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/tech"
)

// mesh builds a random layered DAG with cross-links, multi-fanout nets,
// mid-cone flip-flops and dead-end stubs, so incremental updates face
// reconvergence, register cuts and the +Inf required-time default.
func mesh(t testing.TB, seed int64) Input {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	node := tech.N65()
	lib := liberty.New(node)
	c := netlist.New("mesh")
	const width, depth = 24, 8
	invs := []string{"INVX1", "INVX2", "INVX4"}
	masters := map[int]string{}
	add := func(name, master string, kind netlist.Kind) int {
		id := c.AddGate(name, master, kind).ID
		if master != "" {
			masters[id] = master
		}
		return id
	}
	connect := func(from, to int) {
		if err := c.Connect(from, to); err != nil {
			t.Fatal(err)
		}
	}
	var prev []int
	for i := 0; i < width; i++ {
		prev = append(prev, add(fmt.Sprintf("pi%d", i), "", netlist.PI))
	}
	for l := 0; l < depth; l++ {
		var cur []int
		for i := 0; i < width; i++ {
			if l == depth/2 && i%5 == 0 {
				// A register mid-cone: cuts the timing graph, so its
				// fanouts sit at lower levels than the FF itself.
				ff := add(fmt.Sprintf("ff%d_%d", l, i), "DFFX1", netlist.Seq)
				connect(prev[i], ff)
				cur = append(cur, ff)
				continue
			}
			g := add(fmt.Sprintf("g%d_%d", l, i), invs[rng.Intn(len(invs))], netlist.Comb)
			connect(prev[i], g)
			// Cross-links: up to two extra fanins from the previous layer.
			for k := 0; k < rng.Intn(3); k++ {
				fi := prev[rng.Intn(len(prev))]
				if fi != prev[i] {
					connect(fi, g)
				}
			}
			cur = append(cur, g)
		}
		prev = cur
	}
	for i, id := range prev {
		switch i % 3 {
		case 0:
			po := add(fmt.Sprintf("po%d", i), "", netlist.PO)
			connect(id, po)
		case 1:
			ff := add(fmt.Sprintf("ffo%d", i), "DFFX1", netlist.Seq)
			connect(id, ff)
			// case 2: dead end — exercises the +Inf→MCT default.
		}
	}
	ms := make([]*liberty.Master, c.NumGates())
	for id, name := range masters {
		ms[id] = lib.MustMaster(name)
	}
	pl := place.New(c, 300, 300, 1.4)
	for i := range pl.X {
		pl.X[i] = math.Round(rng.Float64()*300*10) / 10
		pl.Y[i] = math.Round(rng.Float64()*300*10) / 10
	}
	return Input{Circ: c, Masters: ms, Pl: pl, Node: node}
}

// checkAgainstCold asserts the timer state is bit-identical to a cold
// full analysis of the current design state.
func checkAgainstCold(t *testing.T, step string, in Input, cfg Config, pert *Perturb, got *Result) {
	t.Helper()
	ref, err := Analyze(in, cfg, pert)
	if err != nil {
		t.Fatalf("%s: cold analyze: %v", step, err)
	}
	if math.Float64bits(got.MCT) != math.Float64bits(ref.MCT) {
		t.Fatalf("%s: MCT %v != %v", step, got.MCT, ref.MCT)
	}
	if got.CritEnd != ref.CritEnd {
		t.Fatalf("%s: CritEnd %d != %d", step, got.CritEnd, ref.CritEnd)
	}
	sameBits(t, step+" AOut", got.AOut, ref.AOut)
	sameBits(t, step+" AEnd", got.AEnd, ref.AEnd)
	sameBits(t, step+" ROut", got.ROut, ref.ROut)
	sameBits(t, step+" Slew", got.Slew, ref.Slew)
	sameBits(t, step+" InSlew", got.InSlew, ref.InSlew)
	sameBits(t, step+" Load", got.Load, ref.Load)
}

// placedCells returns the IDs with a master (swappable cells).
func placedCells(in Input) []int {
	var out []int
	for id, m := range in.Masters {
		if m != nil {
			out = append(out, id)
		}
	}
	return out
}

// TestTimerUpdateEquivalence drives a Timer through 120 random steps —
// dose-perturbation changes, cell swaps, legalization-style bulk moves —
// and asserts bit-identity against a cold Analyze after every one.
func TestTimerUpdateEquivalence(t *testing.T) {
	in := mesh(t, 1)
	cfg := DefaultConfig()
	cfg.Workers = 1
	n := in.Circ.NumGates()
	rng := rand.New(rand.NewSource(2))

	tm, err := NewTimer(in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := placedCells(in)
	// Cumulative perturbation state; scratch is handed to Update and
	// mutated afterwards, proving the Timer copies rather than aliases.
	dl := make([]float64, n)
	dw := make([]float64, n)
	scratch := &Perturb{DL: make([]float64, n), DW: make([]float64, n)}
	for step := 0; step < 120; step++ {
		name := fmt.Sprintf("step%d", step)
		switch step % 3 {
		case 0: // sparse dose-perturbation change
			for k := 0; k <= rng.Intn(6); k++ {
				id := cells[rng.Intn(len(cells))]
				dl[id] = -10 + 20*rng.Float64()
				dw[id] = -5 + 10*rng.Float64()
			}
			copy(scratch.DL, dl)
			copy(scratch.DW, dw)
			got := tm.Update(scratch)
			for i := range scratch.DL {
				scratch.DL[i] = math.NaN() // must not leak into the Timer
				scratch.DW[i] = math.NaN()
			}
			checkAgainstCold(t, name+"-pert", in, cfg, &Perturb{DL: dl, DW: dw}, got)
		case 1: // swap a random pair
			a := cells[rng.Intn(len(cells))]
			b := cells[rng.Intn(len(cells))]
			in.Pl.Swap(a, b)
			got := tm.SwapUpdate(a, b)
			checkAgainstCold(t, name+"-swap", in, cfg, &Perturb{DL: dl, DW: dw}, got)
		case 2: // legalization-style bulk move
			for k := 0; k <= rng.Intn(8); k++ {
				id := cells[rng.Intn(len(cells))]
				in.Pl.X[id] = math.Round(rng.Float64()*300*10) / 10
				in.Pl.Y[id] = math.Round(rng.Float64()*300*10) / 10
			}
			copy(scratch.DL, dl)
			copy(scratch.DW, dw)
			got := tm.Update(scratch)
			checkAgainstCold(t, name+"-move", in, cfg, &Perturb{DL: dl, DW: dw}, got)
		}
	}
}

// TestTimerSwapEquivalence runs 100 consecutive random swaps through
// SwapUpdate under a fixed nonzero perturbation.
func TestTimerSwapEquivalence(t *testing.T) {
	in := mesh(t, 3)
	cfg := DefaultConfig()
	cfg.Workers = 1
	n := in.Circ.NumGates()
	dl := make([]float64, n)
	dw := make([]float64, n)
	for i := 0; i < n; i++ {
		dl[i] = -10 + float64(i%21)
		dw[i] = -5 + float64(i%11)
	}
	pert := &Perturb{DL: dl, DW: dw}
	tm, err := NewTimer(in, cfg, pert)
	if err != nil {
		t.Fatal(err)
	}
	cells := placedCells(in)
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 100; step++ {
		a := cells[rng.Intn(len(cells))]
		b := cells[rng.Intn(len(cells))]
		in.Pl.Swap(a, b)
		got := tm.SwapUpdate(a, b)
		checkAgainstCold(t, fmt.Sprintf("swap%d", step), in, cfg, pert, got)
	}
}

// TestTimerSnapshotRestore asserts rollback semantics: restoring a
// snapshot (with the caller restoring the placement, as dosePl does)
// rewinds the Timer to the exact cold-analysis state, and incremental
// updates continue correctly from the restored point.
func TestTimerSnapshotRestore(t *testing.T) {
	in := mesh(t, 5)
	cfg := DefaultConfig()
	cfg.Workers = 1
	n := in.Circ.NumGates()
	tm, err := NewTimer(in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := placedCells(in)
	rng := rand.New(rand.NewSource(6))

	dl := make([]float64, n)
	for k := 0; k < 10; k++ {
		dl[cells[rng.Intn(len(cells))]] = -5 + 10*rng.Float64()
	}
	tm.Update(&Perturb{DL: dl})

	snap := tm.Snapshot()
	snapX := append([]float64(nil), in.Pl.X...)
	snapY := append([]float64(nil), in.Pl.Y...)
	snapPert := &Perturb{DL: append([]float64(nil), dl...)}

	// Diverge: swaps and a different perturbation.
	for k := 0; k < 5; k++ {
		a, b := cells[rng.Intn(len(cells))], cells[rng.Intn(len(cells))]
		in.Pl.Swap(a, b)
		tm.SwapUpdate(a, b)
	}
	dl2 := append([]float64(nil), dl...)
	for k := 0; k < 10; k++ {
		dl2[cells[rng.Intn(len(cells))]] = -5 + 10*rng.Float64()
	}
	tm.Update(&Perturb{DL: dl2})

	// Roll back and verify the restored state matches a cold analysis.
	copy(in.Pl.X, snapX)
	copy(in.Pl.Y, snapY)
	tm.Restore(snap)
	checkAgainstCold(t, "restored", in, cfg, snapPert, tm.Result())

	// And the Timer keeps working incrementally after the rollback.
	a, b := cells[0], cells[len(cells)-1]
	in.Pl.Swap(a, b)
	got := tm.SwapUpdate(a, b)
	checkAgainstCold(t, "post-restore-swap", in, cfg, snapPert, got)
}

// regionPert builds the dense gate-length delta of a uniform dose delta
// applied to one grid-cell-sized region of the chip, zero elsewhere —
// the single-grid dirty pattern of a DMopt dose-map refinement.
func regionPert(in Input, x0, y0, size, dl float64) *Perturb {
	out := &Perturb{DL: make([]float64, in.Circ.NumGates())}
	for id, m := range in.Masters {
		if m == nil {
			continue
		}
		x, y := in.Pl.X[id], in.Pl.Y[id]
		if x >= x0 && x < x0+size && y >= y0 && y < y0+size {
			out.DL[id] = dl
		}
	}
	return out
}

// TestIncrementalUpdateEvalSavings is the acceptance bound behind
// BenchmarkIncrementalUpdate: a single-grid dose delta must re-evaluate
// at least 5x fewer gates than a full analysis.
func TestIncrementalUpdateEvalSavings(t *testing.T) {
	in := mesh(t, 7)
	cfg := DefaultConfig()
	cfg.Workers = 1
	tm, err := NewTimer(in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := tm.FullEvalCost()
	const steps = 10
	before := tm.Evals()
	for i := 0; i < steps; i++ {
		delta := 1.0 + 0.1*float64(i)
		tm.Update(regionPert(in, 30, 30, 60, delta))
	}
	avg := float64(tm.Evals()-before) / steps
	if ratio := float64(full) / avg; ratio < 5 {
		t.Fatalf("single-grid update averaged %.0f gate evals vs %d for full analysis (%.1fx < 5x)",
			avg, full, ratio)
	}
}

// BenchmarkIncrementalUpdate times single-grid dose-delta updates and
// reports gate evaluations per update against the full-analysis cost.
func BenchmarkIncrementalUpdate(b *testing.B) {
	in := mesh(b, 7)
	cfg := DefaultConfig()
	cfg.Workers = 1
	tm, err := NewTimer(in, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	perts := []*Perturb{
		regionPert(in, 30, 30, 60, 1.5),
		regionPert(in, 30, 30, 60, 2.5),
	}
	b.ResetTimer()
	before := tm.Evals()
	for i := 0; i < b.N; i++ {
		tm.Update(perts[i%2])
	}
	b.StopTimer()
	evals := float64(tm.Evals()-before) / float64(b.N)
	b.ReportMetric(evals, "gate-evals/op")
	b.ReportMetric(float64(tm.FullEvalCost())/evals, "x-fewer-than-full")
}
