package cli

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/qp"
)

func TestSharedFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := AddFlagsTo(fs, "t")
	if err := fs.Parse([]string{"-workers", "3", "-linsys", "ldlt", "-stats"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	c.Init()
	defer c.Close()
	if c.Workers != 3 || !c.Stats {
		t.Fatalf("flag values: %+v", c)
	}
	if c.LinSys != qp.LinSysLDLT {
		t.Fatalf("linsys = %v, want ldlt", c.LinSys)
	}
	ctx := c.Context()
	if obs.From(ctx) == nil {
		t.Fatal("-stats did not attach a recorder")
	}
	if c.Recorder() == nil {
		t.Fatal("Recorder() nil after Context()")
	}
}

func TestNoTelemetryByDefault(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := AddFlagsTo(fs, "t")
	if err := fs.Parse(nil); err != nil {
		t.Fatalf("parse: %v", err)
	}
	c.Init()
	defer c.Close()
	if obs.From(c.Context()) != nil {
		t.Fatal("recorder attached without -stats or -bench-json")
	}
}

func TestFinishWritesBenchReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := AddFlagsTo(fs, "t")
	if err := fs.Parse([]string{"-bench-json", path}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	c.Init()
	defer c.Close()
	rec := obs.From(c.Context())
	if rec == nil {
		t.Fatal("-bench-json did not attach a recorder")
	}
	rec.Add("test/counter", 7)
	c.Finish("label", 0.5, 12, 2, time.Second)

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep obs.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Schema != obs.Schema || rep.Label != "label" || rep.Scale != 0.5 || rep.TopK != 12 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Counters["test/counter"] != 7 {
		t.Fatalf("report counters: %v", rep.Counters)
	}
	if rep.LinSys != "auto" {
		t.Fatalf("report linsys %q", rep.LinSys)
	}
}
