// Package cli is the shared flag surface and run scaffolding of the
// repro commands.  Every binary speaks the same dialect — -workers,
// -linsys, -stats, -bench-json, -cpuprofile, -memprofile — and the
// boilerplate around it (linsys validation, profile lifecycles,
// recorder wiring, the dmopt-bench/v1 report) lives here once instead
// of being copy-pasted per main.
//
// Usage shape:
//
//	com := cli.AddFlags("dmopt")
//	flag.Parse()
//	com.Init()
//	defer com.Close()
//	ctx := com.Context()
//	... run ...
//	com.Finish("dmopt", scale, 0, time.Since(start))
package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/qp"
)

// Common holds the shared flag values after flag.Parse.
type Common struct {
	// Prog prefixes error messages ("prog: err").
	Prog string
	// Workers bounds the command's parallel fan-out; 0 = GOMAXPROCS.
	Workers int
	// Stats requests the stderr telemetry tree.
	Stats bool
	// BenchJSON is the machine-readable report path ("" disables).
	BenchJSON string
	// LinSys is the validated ADMM backend selection (set by Init).
	LinSys qp.LinSys

	linsysName string
	cpuprofile string
	memprofile string

	rec      *obs.Recorder
	profStop func()
}

// AddFlags registers the shared flags on the default flag set and
// returns the holder to query after flag.Parse.
func AddFlags(prog string) *Common {
	return AddFlagsTo(flag.CommandLine, prog)
}

// AddFlagsTo registers the shared flags on an explicit flag set.
func AddFlagsTo(fs *flag.FlagSet, prog string) *Common {
	c := &Common{Prog: prog, profStop: func() {}}
	fs.IntVar(&c.Workers, "workers", 0, "parallel fan-out of STA/fit/solver; 0 = GOMAXPROCS (bit-identical results)")
	fs.StringVar(&c.linsysName, "linsys", "auto", "ADMM linear-system backend: auto, cg or ldlt")
	fs.BoolVar(&c.Stats, "stats", false, "print run telemetry (spans, counters) to stderr")
	fs.StringVar(&c.BenchJSON, "bench-json", "", "write a machine-readable benchmark report to this file")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// ActuatorFlags is the shared actuator flag group of the dmopt-family
// commands: which knobs to optimize and the body-bias domain/box
// parameters.  Zero values reproduce the dose-only pipeline.
type ActuatorFlags struct {
	// Actuators is the selection string: dose (default), bias,
	// dose+bias or joint.
	Actuators string
	// BiasGridUm is the bias-domain tiling pitch in µm (0 = default).
	BiasGridUm float64
	// BiasLoV, BiasHiV bound the per-domain bias voltage in V.
	BiasLoV, BiasHiV float64
}

// AddActuatorFlags registers the actuator flag group on fs.
func AddActuatorFlags(fs *flag.FlagSet) *ActuatorFlags {
	a := &ActuatorFlags{}
	fs.StringVar(&a.Actuators, "actuators", "dose", "optimization knobs: dose, bias, dose+bias (alias: joint)")
	fs.Float64Var(&a.BiasGridUm, "bias-grid", 0, "body-bias domain pitch in µm (0 = default 20; bias actuators only)")
	fs.Float64Var(&a.BiasLoV, "bias-lo", 0, "lower body-bias bound in V (0 with -bias-hi 0 = default box)")
	fs.Float64Var(&a.BiasHiV, "bias-hi", 0, "upper body-bias bound in V")
	return a
}

// Apply copies the actuator flag group onto a job spec.  The "dose"
// default maps to the spec's empty selection so legacy invocations
// produce byte-identical canonical specs.
func (a *ActuatorFlags) Apply(spec *api.JobSpec) {
	if a.Actuators == "" || a.Actuators == api.ActuatorsDose {
		return
	}
	spec.Actuators = a.Actuators
	spec.BiasGridUm = a.BiasGridUm
	spec.BiasLoV, spec.BiasHiV = a.BiasLoV, a.BiasHiV
}

// Init validates the shared flags (call after flag.Parse) and starts
// the CPU profile; pair it with a deferred Close.
func (c *Common) Init() {
	linsys, err := qp.ParseLinSys(c.linsysName)
	c.Check(err)
	c.LinSys = linsys
	if c.cpuprofile != "" {
		f, err := os.Create(c.cpuprofile)
		c.Check(err)
		c.Check(pprof.StartCPUProfile(f))
		c.profStop = func() {
			pprof.StopCPUProfile()
			c.Check(f.Close())
		}
	}
}

// Close stops the CPU profile and dumps the post-GC heap profile.
func (c *Common) Close() {
	c.profStop()
	c.profStop = func() {}
	if c.memprofile != "" {
		f, err := os.Create(c.memprofile)
		c.Check(err)
		runtime.GC()
		c.Check(pprof.WriteHeapProfile(f))
		c.Check(f.Close())
	}
}

// Check prints "prog: err" and exits nonzero on a non-nil error.
func (c *Common) Check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", c.Prog, err)
		os.Exit(1)
	}
}

// Fatalf prints a formatted "prog: ..." message and exits nonzero.
func (c *Common) Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, c.Prog+": "+format+"\n", args...)
	os.Exit(1)
}

// Context returns the run context, with a telemetry Recorder attached
// when -stats or -bench-json asked for one.
func (c *Common) Context() context.Context {
	if c.rec == nil && (c.Stats || c.BenchJSON != "") {
		c.rec = obs.New()
	}
	if c.rec == nil {
		return context.Background()
	}
	return obs.With(context.Background(), c.rec)
}

// Recorder exposes the telemetry recorder (nil unless requested).
func (c *Common) Recorder() *obs.Recorder { return c.rec }

// Finish emits the requested telemetry: the stderr tree under -stats
// and the dmopt-bench/v1 report under -bench-json.  label, scale, topK
// and workers annotate the report; wall is the run wall time.
func (c *Common) Finish(label string, scale float64, topK int, workers int, wall time.Duration) {
	if c.rec == nil {
		return
	}
	if c.Stats {
		c.rec.WriteTree(os.Stderr, wall)
	}
	if c.BenchJSON != "" {
		rep := c.rec.Report(label, scale, topK, par.Workers(workers), wall)
		rep.LinSys = c.LinSys.String()
		c.Check(rep.WriteJSON(c.BenchJSON))
		fmt.Fprintf(os.Stderr, "%s: wrote benchmark report to %s\n", c.Prog, c.BenchJSON)
	}
}
