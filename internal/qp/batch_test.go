package qp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// batchFamily builds nb solvers over the SAME matrices (diagonal P, an
// identity box prefix plus shared coupling rows) with per-member linear
// terms and shifted box bounds — the wafer column-group shape at
// miniature scale.  All members equilibrate identically because the
// matrices are identical, so the family passes batchCompatible.
func batchFamily(t testing.TB, rng *rand.Rand, n, nb, workers int) ([]*Solver, []*Problem) {
	t.Helper()
	pd := make([]float64, n)
	for i := range pd {
		pd[i] = 0.5 + rng.Float64()
	}
	extra := n / 2
	tr := NewTriplet(n+extra, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
	}
	for r := 0; r < extra; r++ {
		nz := 2 + rng.Intn(3)
		for k := 0; k < nz; k++ {
			tr.Add(n+r, rng.Intn(n), rng.NormFloat64())
		}
	}
	a := tr.Compile()
	inf := math.Inf(1)

	set := DefaultSettings()
	set.LinSys = LinSysLDLT
	set.Workers = workers

	solvers := make([]*Solver, nb)
	probs := make([]*Problem, nb)
	for q := 0; q < nb; q++ {
		shift := float64(q) * 0.3
		l := make([]float64, n+extra)
		u := make([]float64, n+extra)
		for i := 0; i < n; i++ {
			l[i], u[i] = -5+shift, 5+shift
		}
		for i := n; i < n+extra; i++ {
			l[i], u[i] = -inf, 2+rng.Float64()
		}
		// Build with a zero linear term so every member equilibrates to
		// the same cost scaling, then move q through UpdateLinear — the
		// wafer consensus loop's exact protocol (the penalty target
		// moves every outer iteration, the matrices never do).
		probs[q] = &Problem{P: diagCSRBench(pd), Q: make([]float64, n), A: a.Clone(), L: l, U: u}
		s, err := NewSolver(probs[q], set)
		if err != nil {
			t.Fatalf("member %d: %v", q, err)
		}
		for j := range probs[q].Q {
			probs[q].Q[j] = rng.NormFloat64()
		}
		if err := s.UpdateLinear(probs[q].Q); err != nil {
			t.Fatal(err)
		}
		solvers[q] = s
	}
	return solvers, probs
}

// TestSolveBatchLockstep checks the lockstep path end to end: every
// member of a compatible family solves to tolerance, matches a solo
// fresh-solver solve of the same problem to solver accuracy, and a
// second (warm) batch call still works with the family's shared ρ.
func TestSolveBatchLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	solvers, probs := batchFamily(t, rng, 60, 4, 1)
	if !batchCompatible(solvers) {
		t.Fatal("family unexpectedly incompatible")
	}
	results, err := SolveBatchCtx(context.Background(), solvers)
	if err != nil {
		t.Fatal(err)
	}
	for q, res := range results {
		if res.Status != Solved {
			t.Fatalf("member %d: status %v (iters %d, prim %g, dual %g)",
				q, res.Status, res.Iters, res.PrimRes, res.DualRes)
		}
		if v := probs[q].MaxViolation(res.X); v > 1e-3 {
			t.Errorf("member %d: constraint violation %g", q, v)
		}
		solo, err := NewSolver(probs[q], solvers[q].set)
		if err != nil {
			t.Fatal(err)
		}
		sr := solo.Solve()
		if sr.Status != Solved {
			t.Fatalf("member %d solo: status %v", q, sr.Status)
		}
		scale := math.Max(math.Abs(sr.Obj), 1)
		if d := math.Abs(res.Obj - sr.Obj); d > 1e-2*scale {
			t.Errorf("member %d: batch obj %g vs solo %g", q, res.Obj, sr.Obj)
		}
	}
	// Warm second call: the family stayed ρ-synced, so it batches again.
	results, err = SolveBatchCtx(context.Background(), solvers)
	if err != nil {
		t.Fatal(err)
	}
	for q, res := range results {
		if res.Status != Solved {
			t.Fatalf("warm member %d: status %v", q, res.Status)
		}
	}
}

// TestSolveBatchWorkerBitIdentity pins the determinism contract: the
// whole lockstep trajectory — every member's solution and duals — is
// bit-identical at any worker count.
func TestSolveBatchWorkerBitIdentity(t *testing.T) {
	run := func(workers int) []*Result {
		rng := rand.New(rand.NewSource(43))
		solvers, _ := batchFamily(t, rng, 60, 4, workers)
		results, err := SolveBatchCtx(context.Background(), solvers)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for q := range base {
			for j := range base[q].X {
				if math.Float64bits(got[q].X[j]) != math.Float64bits(base[q].X[j]) {
					t.Fatalf("workers=%d member %d: X[%d] differs", w, q, j)
				}
			}
			for i := range base[q].Y {
				if math.Float64bits(got[q].Y[i]) != math.Float64bits(base[q].Y[i]) {
					t.Fatalf("workers=%d member %d: Y[%d] differs", w, q, i)
				}
			}
		}
	}
}

// TestSolveBatchFallbackBitIdentity checks the validation gate: a
// family whose members do NOT share bitwise-identical data degrades to
// sequential SolveCtx calls, bit-identical to running the members by
// hand.
func TestSolveBatchFallbackBitIdentity(t *testing.T) {
	build := func() []*Solver {
		rng := rand.New(rand.NewSource(47))
		solvers, _ := batchFamily(t, rng, 50, 3, 1)
		return solvers
	}
	batch := build()
	// Perturb one member's scaled data so validation must fail.
	batch[1].q[0] += 1e-9
	batch[1].p.Val[0] *= 1 + 1e-12
	if batchCompatible(batch) {
		t.Fatal("perturbed family still compatible")
	}
	results, err := SolveBatchCtx(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	seq := build()
	seq[1].q[0] += 1e-9
	seq[1].p.Val[0] *= 1 + 1e-12
	for q, s := range seq {
		sr := s.Solve()
		for j := range sr.X {
			if math.Float64bits(results[q].X[j]) != math.Float64bits(sr.X[j]) {
				t.Fatalf("member %d: fallback X[%d] differs from sequential", q, j)
			}
		}
		if results[q].Status != sr.Status || results[q].Iters != sr.Iters {
			t.Fatalf("member %d: fallback status/iters differ", q)
		}
	}
}

// TestSolveBatchInfeasibleMember checks per-member freezing: a member
// with contradictory bounds certifies primal infeasibility while its
// siblings continue to convergence in the same lockstep run.
func TestSolveBatchInfeasibleMember(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	solvers, _ := batchFamily(t, rng, 40, 3, 1)
	// Member 1 gets bounds that cannot be met: raise the box to
	// x ≥ 0.3 everywhere, then cap the first coupling row strictly
	// below its minimum over that box.  Bounds do not enter K, so the
	// family stays batch-compatible.
	s := solvers[1]
	l := make([]float64, s.m)
	u := make([]float64, s.m)
	n := s.n
	for i := 0; i < n; i++ {
		l[i], u[i] = 0.3, 5.3 // x ≥ 0.3 on every variable
	}
	inf := math.Inf(1)
	for i := n; i < s.m; i++ {
		l[i], u[i] = -inf, 2+rng.Float64()
	}
	// First coupling row: force its value below what x ≥ 0.3 allows.
	// Row n has only positive or mixed coefficients; compute the row
	// minimum over the box [0.3, 5.3] and demand less.
	lo := 0.0
	for k := s.orig.A.RowPtr[n]; k < s.orig.A.RowPtr[n+1]; k++ {
		v := s.orig.A.Val[k]
		if v > 0 {
			lo += 0.3 * v
		} else {
			lo += 5.3 * v
		}
	}
	u[n] = lo - 1 // strictly unreachable
	if err := s.UpdateBounds(l, u); err != nil {
		t.Fatal(err)
	}
	results, err := SolveBatchCtx(context.Background(), solvers)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Status != PrimalInfeasible {
		t.Errorf("member 1: status %v, want primal-infeasible", results[1].Status)
	}
	for _, q := range []int{0, 2} {
		if results[q].Status != Solved {
			t.Errorf("member %d: status %v, want solved", q, results[q].Status)
		}
	}
}
