package qp

import (
	"math"
	"math/rand"
	"testing"
)

// randomFeasibleQP draws a strictly convex QP with a known interior
// point: a diagonally dominant (hence PSD) P, box rows on every
// variable, and a handful of general rows — some of them equalities —
// whose bounds are placed around A·x0 so the instance is guaranteed
// feasible.
func randomFeasibleQP(rng *rand.Rand) *Problem {
	n := 5 + rng.Intn(26)
	pt := NewTriplet(n, n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 1 + rng.Float64()
	}
	for k := 0; k < n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := 0.3 * (rng.Float64() - 0.5)
		pt.Add(i, j, v)
		pt.Add(j, i, v)
		// Keep diagonal dominance so P stays PSD.
		diag[i] += math.Abs(v)
		diag[j] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		pt.Add(i, i, diag[i])
	}
	q := make([]float64, n)
	x0 := make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64()
		x0[i] = 2*rng.Float64() - 1
	}
	mExtra := 1 + rng.Intn(8)
	at := NewTriplet(n+mExtra, n)
	l := make([]float64, n+mExtra)
	u := make([]float64, n+mExtra)
	for i := 0; i < n; i++ {
		at.Add(i, i, 1)
		l[i], u[i] = -2, 2
	}
	for r := 0; r < mExtra; r++ {
		row := make([]float64, n)
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			row[j] += 2*rng.Float64() - 1
		}
		ax := 0.0
		for j, v := range row {
			if v != 0 {
				at.Add(n+r, j, v)
				ax += v * x0[j]
			}
		}
		if rng.Float64() < 0.3 {
			l[n+r], u[n+r] = ax, ax // equality constraint
		} else {
			l[n+r] = ax - (0.1 + rng.Float64())
			u[n+r] = ax + (0.1 + rng.Float64())
		}
	}
	return &Problem{P: pt.Compile(), Q: q, A: at.Compile(), L: l, U: u}
}

// kktStationarity returns ‖Px + q + Aᵀy‖∞, the unscaled Lagrangian
// gradient norm at (x, y).
func kktStationarity(p *Problem, x, y []float64) float64 {
	r := make([]float64, len(x))
	if p.P != nil {
		p.P.MulVec(r, x)
	}
	for i := range r {
		r[i] += p.Q[i]
	}
	p.A.AddMulTVec(r, y)
	return InfNorm(r)
}

// TestSolveKKTProperty solves a batch of randomized feasible instances
// at tight tolerance and checks the first-order optimality certificate
// directly: primal feasibility within tolerance, KKT stationarity below
// 1e-6, and dual sign consistency at inactive constraints.
func TestSolveKKTProperty(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prob := randomFeasibleQP(rng)
		if err := prob.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid problem: %v", seed, err)
		}
		set := DefaultSettings()
		set.EpsAbs, set.EpsRel = 1e-9, 1e-9
		set.MaxIter = 200000
		set.CGTol = 1e-12
		res, err := Solve(prob, set)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Status != Solved {
			t.Fatalf("seed %d: status %v after %d iters", seed, res.Status, res.Iters)
		}
		if v := prob.MaxViolation(res.X); v > 1e-6 {
			t.Errorf("seed %d: constraint violation %g > 1e-6", seed, v)
		}
		if g := kktStationarity(prob, res.X, res.Y); g > 1e-6 {
			t.Errorf("seed %d: KKT stationarity %g > 1e-6", seed, g)
		}
		// Dual feasibility: a multiplier may only push at an active
		// bound — strictly interior rows must carry a ~zero multiplier,
		// and at one-sided activity its sign is determined.
		ax := make([]float64, prob.A.M)
		prob.A.MulVec(ax, res.X)
		const act, ytol = 1e-5, 1e-5
		for i := range ax {
			if prob.L[i] == prob.U[i] {
				continue // equality rows: any sign
			}
			loAct := ax[i]-prob.L[i] < act
			hiAct := prob.U[i]-ax[i] < act
			switch {
			case !loAct && !hiAct:
				if math.Abs(res.Y[i]) > ytol {
					t.Errorf("seed %d: inactive row %d has multiplier %g", seed, i, res.Y[i])
				}
			case loAct && !hiAct:
				if res.Y[i] > ytol {
					t.Errorf("seed %d: lower-active row %d has positive multiplier %g", seed, i, res.Y[i])
				}
			case hiAct && !loAct:
				if res.Y[i] < -ytol {
					t.Errorf("seed %d: upper-active row %d has negative multiplier %g", seed, i, res.Y[i])
				}
			}
		}
		// The reported objective must match a direct evaluation.
		if math.Abs(res.Obj-prob.Objective(res.X)) > 1e-8*(1+math.Abs(res.Obj)) {
			t.Errorf("seed %d: reported objective %g vs evaluated %g", seed, res.Obj, prob.Objective(res.X))
		}
	}
}
