package qp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/par"
)

// Status reports how a solve terminated.
type Status int

const (
	// Solved means both primal and dual residuals met tolerance.
	Solved Status = iota
	// MaxIterations means the iteration budget expired first; the best
	// iterate so far is returned and may still be usable.
	MaxIterations
	// PrimalInfeasible means a certificate of primal infeasibility was
	// detected (the constraints admit no solution).
	PrimalInfeasible
)

func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case MaxIterations:
		return "max-iterations"
	case PrimalInfeasible:
		return "primal-infeasible"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Problem is a convex quadratic program
//
//	minimize   ½ xᵀPx + qᵀx
//	subject to l ≤ Ax ≤ u .
//
// P must be symmetric positive semidefinite (nil means zero, i.e. an LP).
// Equality constraints are expressed with l[i] == u[i].
type Problem struct {
	P    *CSR
	Q    []float64
	A    *CSR
	L, U []float64
}

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	n := len(p.Q)
	if n == 0 {
		return errors.New("qp: empty objective")
	}
	if p.P != nil && (p.P.M != n || p.P.N != n) {
		return fmt.Errorf("qp: P is %d×%d, want %d×%d", p.P.M, p.P.N, n, n)
	}
	if p.A == nil {
		if len(p.L) != 0 || len(p.U) != 0 {
			return errors.New("qp: bounds without constraint matrix")
		}
		return nil
	}
	if p.A.N != n {
		return fmt.Errorf("qp: A has %d columns, want %d", p.A.N, n)
	}
	if len(p.L) != p.A.M || len(p.U) != p.A.M {
		return fmt.Errorf("qp: bounds length %d/%d, want %d", len(p.L), len(p.U), p.A.M)
	}
	for i := range p.L {
		if p.L[i] > p.U[i] {
			return fmt.Errorf("qp: constraint %d has l > u (%g > %g)", i, p.L[i], p.U[i])
		}
	}
	return nil
}

// Objective evaluates ½ xᵀPx + qᵀx.
func (p *Problem) Objective(x []float64) float64 {
	obj := Dot(p.Q, x)
	if p.P != nil {
		px := make([]float64, len(x))
		p.P.MulVec(px, x)
		obj += 0.5 * Dot(x, px)
	}
	return obj
}

// MaxViolation returns the largest constraint violation of x.
func (p *Problem) MaxViolation(x []float64) float64 {
	if p.A == nil {
		return 0
	}
	ax := make([]float64, p.A.M)
	p.A.MulVec(ax, x)
	v := 0.0
	for i := range ax {
		if d := p.L[i] - ax[i]; d > v {
			v = d
		}
		if d := ax[i] - p.U[i]; d > v {
			v = d
		}
	}
	return v
}

// Settings tunes the ADMM solver.  The zero value is not usable; start
// from DefaultSettings.
type Settings struct {
	MaxIter     int
	EpsAbs      float64
	EpsRel      float64
	Rho         float64 // initial ADMM step size
	Sigma       float64 // x-regularization
	Alpha       float64 // over-relaxation in (0, 2)
	AdaptiveRho bool
	CheckEvery  int // residual/infeasibility check interval
	ScaleIters  int // Ruiz equilibration iterations (0 disables scaling)
	CGTol       float64
	CGMaxIter   int
	// TimeLimitIter aborts CG-heavy stalls; 0 means no extra bound.
	EpsInfeas float64
	// LinSys selects the x-step linear-system backend: the cached
	// sparse LDLᵀ factorization or the preconditioned CG loop.  The
	// zero value (Auto) picks LDLᵀ when the symbolic fill estimate is
	// low and CG otherwise; see linsys.go.
	LinSys LinSys
	// Workers bounds the fan-out of the CSR mat-vec and dot-product
	// kernels inside CG and of the LDLᵀ numeric factorization and
	// triangular solves (elimination-tree level sets).  Zero selects
	// runtime.GOMAXPROCS(0).  All reductions use a fixed block order
	// and the factor kernel a fixed per-column accumulation order, so
	// the solve trajectory is bit-identical for every worker count.
	Workers int
	// FactorCache sizes the LDLᵀ ρ-ladder factor cache: an LRU of
	// numeric factors keyed by (ρ, pattern epoch) that turns adaptive-ρ
	// flips and stall restarts into snapshot restores instead of
	// refactorizations.  Zero selects the default capacity
	// (defaultFactorCache); a negative value disables caching.
	FactorCache int
}

// DefaultSettings returns the settings used across the flow.
func DefaultSettings() Settings {
	return Settings{
		MaxIter:     20000,
		EpsAbs:      1e-4,
		EpsRel:      1e-4,
		Rho:         0.1,
		Sigma:       1e-6,
		Alpha:       1.6,
		AdaptiveRho: true,
		CheckEvery:  25,
		ScaleIters:  10,
		CGTol:       1e-7,
		CGMaxIter:   500,
		EpsInfeas:   1e-5,
	}
}

// Result carries the outcome of a solve.
type Result struct {
	Status   Status
	X        []float64 // primal solution
	Y        []float64 // dual multipliers of l ≤ Ax ≤ u
	Obj      float64
	Iters    int
	PrimRes  float64
	DualRes  float64
	CGIters  int // cumulative inner CG iterations
	Restarts int // in-place stall restarts (z re-anchored, ρ reset)
	RhoFinal float64
}

// stallWindow is the number of consecutive residual checks without at
// least 1% progress on the tolerance-normalized residual score before
// SolveCtx restarts the splitting in place.  At the default CheckEvery
// of 25 this reacts within ~100 wasted iterations.
const stallWindow = 4

// Solver holds problem data in scaled form plus iterate state, so a
// sequence of related solves (the QCP bisection) can warm-start.
type Solver struct {
	set Settings

	n, m int
	// Scaled copies.
	p      *CSR
	q      []float64
	a      *CSR
	l, u   []float64
	d, e   []float64 // column / row equilibration scalings
	cinv   float64   // inverse cost scaling
	diagP  []float64
	diagTA []float64

	// Iterates (scaled space).
	x, y, z                   []float64
	xt, zt                    []float64
	rhs, tmp                  []float64
	cgR, cgZ, cgP, cgAp, cgAx []float64

	// Reusable scratch for the per-check residual evaluation, the
	// infeasibility certificate, and the unscaled Objective /
	// MaxViolation helpers, so per-probe signoff checks stop churning
	// the garbage collector.
	resAx, resPx, resAty []float64
	dyAcc                []float64
	objPx                []float64
	vioAx                []float64

	rho float64

	// lin is the x-step linear-system backend (LDLᵀ or CG); the
	// counters feed the qp/factorizations, qp/refactorizations and
	// qp/triangular_solves telemetry.
	lin          linsys
	nFactor      int64
	nRefactor    int64
	nTriSolve    int64
	nCacheHit    int64
	nCacheEvict  int64
	nParLevels   int64
	linFallbacks int64
	nDenseFlops  int64
	nSolveBatch  int64
	nSolveRHS    int64

	// solves counts completed SolveCtx calls; warmed records an explicit
	// WarmStart.  Together they classify a solve as warm-started (reusing
	// iterate state) for telemetry.
	solves int
	warmed bool

	orig *Problem
}

// NewSolver prepares a solver for the given problem.  The problem data is
// copied; later mutations of prob do not affect the solver.
func NewSolver(prob *Problem, set Settings) (*Solver, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	n := len(prob.Q)
	m := 0
	if prob.A != nil {
		m = prob.A.M
	}
	s := &Solver{set: set, n: n, m: m, orig: prob, rho: set.Rho, cinv: 1}
	s.q = append([]float64(nil), prob.Q...)
	if prob.P != nil {
		s.p = prob.P.Clone()
	}
	if prob.A != nil {
		s.a = prob.A.Clone()
		s.a.markOneRows()
		s.l = append([]float64(nil), prob.L...)
		s.u = append([]float64(nil), prob.U...)
	} else {
		s.a = (&Triplet{m: 0, n: n}).Compile()
		s.l = nil
		s.u = nil
	}
	s.d = make([]float64, n)
	s.e = make([]float64, m)
	for i := range s.d {
		s.d[i] = 1
	}
	for i := range s.e {
		s.e[i] = 1
	}
	s.equilibrate()
	s.diagP = diagOf(s.p, n)
	s.diagTA = s.a.DiagATA()
	s.x = make([]float64, n)
	s.y = make([]float64, m)
	s.z = make([]float64, m)
	s.xt = make([]float64, n)
	s.zt = make([]float64, m)
	s.rhs = make([]float64, n)
	s.tmp = make([]float64, m)
	s.cgR = make([]float64, n)
	s.cgZ = make([]float64, n)
	s.cgP = make([]float64, n)
	s.cgAp = make([]float64, n)
	s.cgAx = make([]float64, m)
	s.resAx = make([]float64, m)
	s.resPx = make([]float64, n)
	s.resAty = make([]float64, n)
	s.dyAcc = make([]float64, m)
	s.objPx = make([]float64, n)
	s.vioAx = make([]float64, m)
	s.initLinsys()
	return s, nil
}

// Backend reports which linear-system backend the solver selected
// (after Auto resolution, and after any runtime fallback to CG).
func (s *Solver) Backend() LinSys { return s.lin.kind() }

// Objective evaluates ½ xᵀPx + qᵀx of the ORIGINAL (unscaled) problem
// using solver scratch — the allocation-free twin of
// Problem.Objective for the hot per-probe signoff path.
func (s *Solver) Objective(x []float64) float64 {
	p := s.orig
	obj := Dot(p.Q, x)
	if p.P != nil {
		p.P.MulVec(s.objPx, x)
		obj += 0.5 * Dot(x, s.objPx)
	}
	return obj
}

// MaxViolation returns the largest original-space constraint violation
// of x using solver scratch.  Unlike Problem.MaxViolation it also
// covers rows appended with AppendRows after construction.
func (s *Solver) MaxViolation(x []float64) float64 {
	if s.m == 0 {
		return 0
	}
	// Evaluate in scaled space and unscale per row: scaled row i is
	// e_i·(row of A)·D, so violation against the scaled bounds divides
	// by e_i to recover original units.
	for j := 0; j < s.n; j++ {
		s.objPx[j] = x[j] / s.d[j]
	}
	s.a.MulVec(s.vioAx, s.objPx)
	v := 0.0
	for i := 0; i < s.m; i++ {
		ei := 1 / s.e[i]
		if dlt := (s.l[i] - s.vioAx[i]) * ei; dlt > v {
			v = dlt
		}
		if dlt := (s.vioAx[i] - s.u[i]) * ei; dlt > v {
			v = dlt
		}
	}
	return v
}

// AppendRows appends constraint rows (unscaled, with bounds l ≤ a·x ≤ u)
// to the solver in place: no re-equilibration, no symbolic
// factorization from scratch.  Columns are scaled by the existing
// equilibration; the new rows receive one-shot row scalings.  Appended
// duals start at zero, matching the zero-padded warm start the cut
// engine previously obtained from a full rebuild.  The LDLᵀ backend
// extends its pattern in place and refactors on the next solve.
func (s *Solver) AppendRows(a *CSR, l, u []float64) error {
	if a == nil || a.M == 0 {
		return nil
	}
	if a.N != s.n {
		return fmt.Errorf("qp: appended rows have %d columns, want %d", a.N, s.n)
	}
	if len(l) != a.M || len(u) != a.M {
		return fmt.Errorf("qp: appended bounds length %d/%d, want %d", len(l), len(u), a.M)
	}
	for i := range l {
		if l[i] > u[i] {
			return fmt.Errorf("qp: appended constraint %d has l > u", i)
		}
	}
	scaled := a.Clone()
	scaled.ScaleCols(s.d)
	eNew := scaled.RowInfNorms()
	for i := range eNew {
		eNew[i] = invSqrtSafe(eNew[i])
	}
	scaled.ScaleRows(eNew)

	mOld := s.m
	s.a = ConcatRows(s.a, scaled)
	s.a.markOneRows()
	s.m = s.a.M
	for k, col := range scaled.Col {
		s.diagTA[col] += scaled.Val[k] * scaled.Val[k]
	}
	s.e = append(s.e, eNew...)
	for i := 0; i < a.M; i++ {
		s.l = append(s.l, l[i]*eNew[i])
		s.u = append(s.u, u[i]*eNew[i])
	}
	grow := func(v []float64) []float64 { return append(v, make([]float64, a.M)...) }
	s.y = grow(s.y)
	s.z = grow(s.z)
	s.zt = grow(s.zt)
	s.tmp = grow(s.tmp)
	s.cgAx = grow(s.cgAx)
	s.resAx = grow(s.resAx)
	s.dyAcc = grow(s.dyAcc)
	s.vioAx = grow(s.vioAx)
	// Anchor the splitting variable of the new rows at their current
	// constraint value so the first residual check is not dominated by
	// a z = 0 artifact.
	for i := mOld; i < s.m; i++ {
		sum := 0.0
		for k := s.a.RowPtr[i]; k < s.a.RowPtr[i+1]; k++ {
			sum += s.a.Val[k] * s.x[s.a.Col[k]]
		}
		s.z[i] = sum
	}
	s.lin.appendRows(mOld)
	return nil
}

func diagOf(p *CSR, n int) []float64 {
	d := make([]float64, n)
	if p == nil {
		return d
	}
	for r := 0; r < p.M; r++ {
		for k := p.RowPtr[r]; k < p.RowPtr[r+1]; k++ {
			if p.Col[k] == r {
				d[r] += p.Val[k]
			}
		}
	}
	return d
}

// equilibrate applies modified Ruiz equilibration to the stacked matrix
// [P; A] (columns) and A (rows), plus a scalar cost scaling, following
// the OSQP paper.  Badly mixed scales — dose percentages (≈ ±5) against
// arrival times (≈ thousands of ps) — make this essential.
func (s *Solver) equilibrate() {
	if s.set.ScaleIters <= 0 {
		return
	}
	n, m := s.n, s.m
	for it := 0; it < s.set.ScaleIters; it++ {
		colA := s.a.ColInfNorms()
		var colP []float64
		if s.p != nil {
			colP = s.p.ColInfNorms()
		}
		dd := make([]float64, n)
		for j := 0; j < n; j++ {
			norm := colA[j]
			if colP != nil && colP[j] > norm {
				norm = colP[j]
			}
			dd[j] = invSqrtSafe(norm)
		}
		ee := make([]float64, m)
		rowA := s.a.RowInfNorms()
		for i := 0; i < m; i++ {
			ee[i] = invSqrtSafe(rowA[i])
		}
		// Apply: P ← D P D, q ← D q, A ← E A D, l/u ← E l/u.
		if s.p != nil {
			s.p.ScaleRows(dd)
			s.p.ScaleCols(dd)
		}
		for j := 0; j < n; j++ {
			s.q[j] *= dd[j]
			s.d[j] *= dd[j]
		}
		s.a.ScaleCols(dd)
		s.a.ScaleRows(ee)
		for i := 0; i < m; i++ {
			s.l[i] *= ee[i]
			s.u[i] *= ee[i]
			s.e[i] *= ee[i]
		}
	}
	// Cost scaling: normalize the gradient magnitude.
	g := InfNorm(s.q)
	if s.p != nil {
		cols := s.p.ColInfNorms()
		mean := 0.0
		for _, v := range cols {
			mean += v
		}
		if len(cols) > 0 {
			mean /= float64(len(cols))
		}
		if mean > g {
			g = mean
		}
	}
	if g > 0 && !math.IsInf(g, 0) {
		c := 1 / g
		if s.p != nil {
			Scale(s.p.Val, c)
		}
		Scale(s.q, c)
		s.cinv = g
	}
}

func invSqrtSafe(v float64) float64 {
	if v <= 1e-12 || math.IsInf(v, 0) {
		return 1
	}
	r := 1 / math.Sqrt(v)
	// Clamp extreme scalings for numerical sanity.
	if r > 1e6 {
		r = 1e6
	}
	if r < 1e-6 {
		r = 1e-6
	}
	return r
}

// WarmStart seeds the next Solve with an unscaled primal (and optionally
// dual) iterate.  Pass nil to leave a component unchanged.
func (s *Solver) WarmStart(x, y []float64) error {
	if x != nil {
		if len(x) != s.n {
			return fmt.Errorf("qp: warm-start x has length %d, want %d", len(x), s.n)
		}
		for j := 0; j < s.n; j++ {
			s.x[j] = x[j] / s.d[j]
		}
		s.a.MulVec(s.z, s.x)
	}
	if y != nil {
		if len(y) != s.m {
			return fmt.Errorf("qp: warm-start y has length %d, want %d", len(y), s.m)
		}
		for i := 0; i < s.m; i++ {
			s.y[i] = y[i] / (s.e[i] * s.cinv)
		}
	}
	s.warmed = true
	return nil
}

// UpdateLinear replaces the objective's linear term q (unscaled)
// without re-equilibrating or refactorizing: q enters only the x-step
// right-hand side, so the cached K = P + σI + ρAᵀA factorization stays
// valid.  Used by the wafer consensus-ADMM outer loop, whose penalty
// target moves every iteration while the matrices do not.  The caller's
// original Problem.Q should be updated in tandem (Objective reads it).
func (s *Solver) UpdateLinear(q []float64) error {
	if len(q) != s.n {
		return fmt.Errorf("qp: linear term has length %d, want %d", len(q), s.n)
	}
	for j := 0; j < s.n; j++ {
		s.q[j] = q[j] * s.d[j] / s.cinv
	}
	return nil
}

// UpdateBounds replaces the constraint bounds (unscaled) without
// re-equilibrating, preserving warm-start state.  Used by the QCP
// bisection, which only moves the clock-period bound between probes.
func (s *Solver) UpdateBounds(l, u []float64) error {
	if len(l) != s.m || len(u) != s.m {
		return fmt.Errorf("qp: bounds length %d/%d, want %d", len(l), len(u), s.m)
	}
	for i := 0; i < s.m; i++ {
		if l[i] > u[i] {
			return fmt.Errorf("qp: constraint %d has l > u", i)
		}
		s.l[i] = l[i] * s.e[i]
		s.u[i] = u[i] * s.e[i]
	}
	return nil
}

// Solve runs ADMM from the current iterate (zero on first use, or the
// previous solution / warm start on subsequent calls).
func (s *Solver) Solve() *Result {
	res, _ := s.SolveCtx(context.Background())
	return res
}

// assembleXStepRHS builds the x-step right-hand side
// σx − q + Aᵀ(ρz − y) into s.rhs (s.tmp is scratch).
func (s *Solver) assembleXStepRHS() {
	rho, tmp, z, y := s.rho, s.tmp[:s.m], s.z[:s.m], s.y[:s.m]
	for i := range tmp {
		tmp[i] = rho*z[i] - y[i]
	}
	sigma := s.set.Sigma
	rhs, x, q := s.rhs[:s.n], s.x[:s.n], s.q[:s.n]
	for j := range rhs {
		rhs[j] = sigma*x[j] - q[j]
	}
	s.a.AddMulTVec(s.rhs, s.tmp)
}

// cgTolFor is the inexact-ADMM tolerance schedule of the iterative
// x-step backends: loose while the outer residuals are still large,
// tightening to the configured floor as they fall.  Direct backends
// ignore the tolerance.
func cgTolFor(set Settings, lastPrim, lastDual float64) float64 {
	tol := set.CGTol
	if lastPrim > 0 {
		t := 0.05 * math.Min(lastPrim, lastDual)
		if t > tol {
			tol = t
		}
		if tol > 1e-3 {
			tol = 1e-3
		}
	}
	return tol
}

// applyRelaxation applies the over-relaxed ADMM iterate updates after
// an x-step: x blends toward x̃, z projects the relaxed constraint value
// onto [l, u], y takes the matching dual step, and the per-row dual
// movement accumulates into s.dyAcc for the infeasibility certificate.
func (s *Solver) applyRelaxation() {
	alpha, beta := s.set.Alpha, 1-s.set.Alpha
	x, xt := s.x[:s.n], s.xt[:s.n]
	for j := range x {
		x[j] = alpha*xt[j] + beta*x[j]
	}
	rho := s.rho
	z, zt, y, l, u, dy := s.z[:s.m], s.zt[:s.m], s.y[:s.m], s.l[:s.m], s.u[:s.m], s.dyAcc[:s.m]
	for i := range z {
		zc := alpha*zt[i] + beta*z[i] + y[i]/rho
		zNew := zc
		if zNew < l[i] {
			zNew = l[i]
		} else if zNew > u[i] {
			zNew = u[i]
		}
		yNew := rho * (zc - zNew)
		dy[i] += yNew - y[i]
		z[i] = zNew
		y[i] = yNew
	}
}

// ctrSnap freezes the solver's backend counters at solve entry so the
// telemetry block can report per-solve deltas.
type ctrSnap struct {
	factor, refactor, trisolve, fallback int64
	cacheHit, cacheEvict, parLevels      int64
	denseFlops, solveBatch, solveRHS     int64
}

func (s *Solver) snapCounters() ctrSnap {
	return ctrSnap{s.nFactor, s.nRefactor, s.nTriSolve, s.linFallbacks,
		s.nCacheHit, s.nCacheEvict, s.nParLevels,
		s.nDenseFlops, s.nSolveBatch, s.nSolveRHS}
}

// emitTelemetry publishes the per-solve observation block: pure
// observation after the solve, so it cannot perturb the trajectory.
func (s *Solver) emitTelemetry(ctx context.Context, res *Result, c0 ctrSnap, warm bool) {
	rec := obs.From(ctx)
	if rec == nil {
		return
	}
	rec.Add("qp/solves", 1)
	rec.Add("qp/iterations", int64(res.Iters))
	rec.Add("qp/cg_iterations", int64(res.CGIters))
	rec.Add("qp/restarts", int64(res.Restarts))
	rec.Add("qp/factorizations", s.nFactor-c0.factor)
	rec.Add("qp/refactorizations", s.nRefactor-c0.refactor)
	rec.Add("qp/triangular_solves", s.nTriSolve-c0.trisolve)
	rec.Add("qp/factor_cache_hits", s.nCacheHit-c0.cacheHit)
	rec.Add("qp/factor_cache_evictions", s.nCacheEvict-c0.cacheEvict)
	rec.Add("qp/parallel_factor_levels", s.nParLevels-c0.parLevels)
	rec.Add("qp/linsys_fallbacks", s.linFallbacks-c0.fallback)
	rec.Add("qp/linsys_"+s.lin.kind().String()+"_solves", 1)
	rec.Add("qp/dense_flops", s.nDenseFlops-c0.denseFlops)
	rec.Add("qp/solve_batches", s.nSolveBatch-c0.solveBatch)
	rec.Add("qp/solve_rhs", s.nSolveRHS-c0.solveRHS)
	if warm {
		rec.Add("qp/warm_start_hits", 1)
	}
	rec.Set("qp/prim_res", res.PrimRes)
	rec.Set("qp/dual_res", res.DualRes)
	rec.Set("qp/linsys_backend", float64(s.lin.kind()))
	if b, ok := s.lin.(*ldltBackend); ok {
		rec.Set("qp/supernodes", float64(len(b.f.sPtr)-1))
		rec.Set("qp/supernode_cols_max", float64(b.f.maxSuperCols))
	}
}

// SolveCtx is Solve with cancellation: the context is checked at every
// ADMM iteration boundary, and a canceled context stops the loop
// within one iteration, returning the best iterate so far together
// with an error that wraps context.Canceled.
func (s *Solver) SolveCtx(ctx context.Context) (*Result, error) {
	n, m := s.n, s.m
	set := s.set
	workers := par.Workers(set.Workers)
	res := &Result{Status: MaxIterations, RhoFinal: s.rho}

	dyAcc := s.dyAcc // accumulated δy for infeasibility cert
	for i := range dyAcc {
		dyAcc[i] = 0
	}
	c0 := s.snapCounters()
	var lastPrim, lastDual float64
	var cause error

	// Stall-restart state: ADMM with a drifted splitting variable or a
	// runaway adaptive ρ can wedge — residuals flat for hundreds of
	// iterations — while the same iterate re-anchored (z ← Ax, ρ ← ρ₀)
	// converges in a few dozen.  Track the best tolerance-normalized
	// residual score seen; after stallWindow consecutive checks without
	// meaningful progress, restart in place.
	bestScore := math.Inf(1)
	stalledChecks := 0

	for iter := 1; iter <= set.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			cause = fmt.Errorf("qp: canceled at iteration %d: %w", iter, err)
			res.Iters = iter - 1
			break
		}
		// x-step: (P + σI + ρAᵀA) x̃ = σx − q + Aᵀ(ρz − y)
		s.assembleXStepRHS()
		cgTol := cgTolFor(set, lastPrim, lastDual)
		if s.lin.kind() != LinSysLDLT {
			copy(s.xt, s.x) // warm start (iterative backends) from current x
		}
		iters, lerr := s.lin.solve(s.xt, s.rhs, cgTol)
		if lerr != nil {
			// LDLᵀ numeric breakdown: fall back to CG for good and
			// redo this x-step (the iterate is untouched on error).
			s.fallbackToCG()
			copy(s.xt, s.x)
			iters, _ = s.lin.solve(s.xt, s.rhs, cgTol)
		}
		res.CGIters += iters

		// z̃ = A x̃, then the over-relaxed iterate updates.
		s.a.MulVecW(s.zt, s.xt, workers)
		s.applyRelaxation()

		if iter%set.CheckEvery != 0 && iter != set.MaxIter {
			continue
		}

		prim, dual, epsP, epsD := s.residuals()
		lastPrim, lastDual = prim, dual
		res.Iters = iter
		res.PrimRes, res.DualRes = prim, dual
		if prim <= epsP && dual <= epsD {
			res.Status = Solved
			break
		}
		if s.primalInfeasible(dyAcc) {
			res.Status = PrimalInfeasible
			break
		}
		for i := range dyAcc {
			dyAcc[i] = 0
		}
		if set.AdaptiveRho {
			s.adaptRho(prim, dual, epsP, epsD)
		}
		if score := math.Max(prim/epsP, dual/epsD); score < 0.99*bestScore {
			bestScore = score
			stalledChecks = 0
		} else if stalledChecks++; stalledChecks >= stallWindow {
			s.a.MulVec(s.z, s.x)
			s.rho = set.Rho
			lastPrim, lastDual = 0, 0
			stalledChecks = 0
			res.Restarts++
		}
	}

	// Unscale solution.
	res.X = make([]float64, n)
	for j := 0; j < n; j++ {
		res.X[j] = s.d[j] * s.x[j]
	}
	res.Y = make([]float64, m)
	for i := 0; i < m; i++ {
		res.Y[i] = s.cinv * s.e[i] * s.y[i]
	}
	res.Obj = s.Objective(res.X)
	res.RhoFinal = s.rho

	// A solve is a warm-start hit when it reuses iterate state — any
	// solve after the first, or after an explicit WarmStart.
	warm := s.solves > 0 || s.warmed
	s.solves++
	s.emitTelemetry(ctx, res, c0, warm)
	return res, cause
}

// residuals computes unscaled primal/dual residuals and their tolerances.
func (s *Solver) residuals() (prim, dual, epsP, epsD float64) {
	n, m := s.n, s.m
	// Unscaled primal residual: ‖E⁻¹(Ax̄ − z̄)‖∞ with per-row unscaling.
	ax := s.resAx
	s.a.MulVec(ax, s.x)
	var normAx, normZ float64
	for i := 0; i < m; i++ {
		ei := 1 / s.e[i]
		r := math.Abs(ax[i]-s.z[i]) * ei
		if r > prim {
			prim = r
		}
		if v := math.Abs(ax[i]) * ei; v > normAx {
			normAx = v
		}
		if v := math.Abs(s.z[i]) * ei; v > normZ {
			normZ = v
		}
	}
	// Unscaled dual residual: ‖c⁻¹D⁻¹(P̄x̄ + q̄ + Āᵀȳ)‖∞.
	px := s.resPx
	if s.p != nil {
		s.p.MulVec(px, s.x)
	} else {
		for j := range px {
			px[j] = 0
		}
	}
	aty := s.resAty
	s.a.MulTVec(aty, s.y)
	var normPx, normATy, normQ float64
	for j := 0; j < n; j++ {
		dj := s.cinv / s.d[j]
		r := math.Abs(px[j]+s.q[j]+aty[j]) * dj
		if r > dual {
			dual = r
		}
		if v := math.Abs(px[j]) * dj; v > normPx {
			normPx = v
		}
		if v := math.Abs(aty[j]) * dj; v > normATy {
			normATy = v
		}
		if v := math.Abs(s.q[j]) * dj; v > normQ {
			normQ = v
		}
	}
	epsP = s.set.EpsAbs + s.set.EpsRel*math.Max(normAx, normZ)
	epsD = s.set.EpsAbs + s.set.EpsRel*math.Max(normPx, math.Max(normATy, normQ))
	return prim, dual, epsP, epsD
}

// primalInfeasible tests the OSQP primal-infeasibility certificate on the
// accumulated dual step δy: Aᵀδy ≈ 0 with uᵀ(δy)₊ + lᵀ(δy)₋ < 0.
func (s *Solver) primalInfeasible(dy []float64) bool {
	normDy := InfNorm(dy)
	if normDy < 1e-12 {
		return false
	}
	eps := s.set.EpsInfeas * normDy
	aty := s.resAty
	s.a.MulTVec(aty, dy)
	// Unscale: columns j carry d[j]; certificate needs ‖D⁻¹?‖... we work
	// in scaled space consistently: both thresholds use scaled norms.
	if InfNorm(aty) > eps {
		return false
	}
	support := 0.0
	for i := range dy {
		if dy[i] > 0 {
			if math.IsInf(s.u[i], 1) {
				return false
			}
			support += s.u[i] * dy[i]
		} else if dy[i] < 0 {
			if math.IsInf(s.l[i], -1) {
				return false
			}
			support += s.l[i] * dy[i]
		}
	}
	return support < -eps
}

func (s *Solver) adaptRho(prim, dual, epsP, epsD float64) {
	if dual <= 0 || prim <= 0 {
		return
	}
	// Normalize residuals by their tolerances so the ratio is unitless.
	// The 2× trigger is deliberately eager: a mild ρ misfit that the
	// classical 5× threshold tolerates can grind for hundreds of
	// iterations, and with the ρ-ladder factor cache an adaptation that
	// revisits a known rung costs a snapshot restore, not a numeric
	// refactorization.
	ratio := math.Sqrt((prim / epsP) / (dual / epsD))
	if ratio > 2 || ratio < 0.5 {
		rho := s.rho * ratio
		if rho < 1e-6 {
			rho = 1e-6
		}
		if rho > 1e6 {
			rho = 1e6
		}
		s.rho = rhoRung(rho)
	}
}

// rhoRung quantizes ρ onto the geometric quarter-decade ladder
// 10^(k/4), k ∈ ℤ.  Adaptive moves only fire on a ≥2× residual
// imbalance (≈ 1.2 rungs), so the ≤ 1.33× snap never suppresses a
// genuine adaptation — but it collapses the continuum of adapted ρ
// values onto a handful of rungs that the LDLᵀ factor cache (and the
// CG preconditioner) can actually revisit.  Stall restarts reset to
// the initial Settings.Rho, which re-hits the first factor's exact key
// without being snapped itself.
func rhoRung(rho float64) float64 {
	return math.Pow(10, math.Round(4*math.Log10(rho))/4)
}

// cg solves (P + σI + ρAᵀA) x = b by preconditioned conjugate gradients,
// starting from the value already in x.  The Jacobi preconditioner is
// supplied by the backend (rebuilt only when ρ moves).  It returns the
// iteration count.
func (s *Solver) cg(x, b []float64, tol float64, precond []float64) int {
	n := s.n
	set := s.set
	workers := par.Workers(set.Workers)
	apply := func(dst, v []float64) {
		// dst = P v + σ v + ρ Aᵀ(A v).  The mat-vecs are row-partitioned
		// across workers; the Aᵀ scatter stays serial (deterministic).
		if s.p != nil {
			s.p.MulVecW(dst, v, workers)
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
		for j := 0; j < n; j++ {
			dst[j] += set.Sigma * v[j]
		}
		s.a.MulVecW(s.cgAx, v, workers)
		Scale(s.cgAx, s.rho)
		s.a.AddMulTVec(dst, s.cgAx)
	}
	r, z, p, ap := s.cgR, s.cgZ, s.cgP, s.cgAp
	apply(ap, x)
	for j := 0; j < n; j++ {
		r[j] = b[j] - ap[j]
	}
	bnorm := InfNorm(b)
	if bnorm == 0 {
		bnorm = 1
	}
	if InfNorm(r) <= tol*bnorm {
		return 0
	}
	for j := 0; j < n; j++ {
		z[j] = precond[j] * r[j]
	}
	copy(p, z)
	rz := DotW(r, z, workers)
	for it := 1; it <= set.CGMaxIter; it++ {
		apply(ap, p)
		pap := DotW(p, ap, workers)
		if pap <= 0 {
			return it
		}
		alpha := rz / pap
		AXPY(x, alpha, p)
		AXPY(r, -alpha, ap)
		if InfNorm(r) <= tol*bnorm {
			return it
		}
		for j := 0; j < n; j++ {
			z[j] = precond[j] * r[j]
		}
		rzNew := DotW(r, z, workers)
		beta := rzNew / rz
		rz = rzNew
		for j := 0; j < n; j++ {
			p[j] = z[j] + beta*p[j]
		}
	}
	return set.CGMaxIter
}

// Solve is the one-shot convenience wrapper: build a solver, run it once.
func Solve(prob *Problem, set Settings) (*Result, error) {
	s, err := NewSolver(prob, set)
	if err != nil {
		return nil, err
	}
	return s.Solve(), nil
}
