package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTripletCompile(t *testing.T) {
	tr := NewTriplet(3, 4)
	tr.Add(0, 1, 2)
	tr.Add(2, 3, -1)
	tr.Add(0, 1, 3) // duplicate: must sum to 5
	tr.Add(1, 0, 4)
	tr.Add(1, 2, 0) // exact zero: dropped
	if tr.NNZ() != 4 {
		t.Errorf("triplet NNZ = %d, want 4 (zero dropped at insert)", tr.NNZ())
	}
	c := tr.Compile()
	if c.M != 3 || c.N != 4 {
		t.Fatalf("dims = %d×%d", c.M, c.N)
	}
	d := c.Dense()
	want := [][]float64{{0, 5, 0, 0}, {4, 0, 0, 0}, {0, 0, 0, -1}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("dense[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
	if c.NNZ() != 3 {
		t.Errorf("CSR NNZ = %d, want 3", c.NNZ())
	}
}

func TestTripletCancellation(t *testing.T) {
	tr := NewTriplet(1, 1)
	tr.Add(0, 0, 2)
	tr.Add(0, 0, -2)
	c := tr.Compile()
	if c.NNZ() != 0 {
		t.Errorf("cancelled entry should be dropped, NNZ = %d", c.NNZ())
	}
}

func TestTripletPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	NewTriplet(2, 2).Add(2, 0, 1)
}

func randCSR(rng *rand.Rand, m, n int, density float64) *CSR {
	tr := NewTriplet(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				tr.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return tr.Compile()
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randCSR(rng, m, n, 0.4)
		d := a.Dense()
		x := make([]float64, n)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := make([]float64, m)
		a.MulVec(y, x)
		for i := 0; i < m; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-12 {
				t.Fatalf("MulVec mismatch at row %d: %v vs %v", i, y[i], want)
			}
		}
		// Transpose product.
		v := make([]float64, m)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		yt := make([]float64, n)
		a.MulTVec(yt, v)
		for j := 0; j < n; j++ {
			want := 0.0
			for i := 0; i < m; i++ {
				want += d[i][j] * v[i]
			}
			if math.Abs(yt[j]-want) > 1e-12 {
				t.Fatalf("MulTVec mismatch at col %d: %v vs %v", j, yt[j], want)
			}
		}
		// AddMulTVec accumulates.
		y2 := append([]float64(nil), yt...)
		a.AddMulTVec(y2, v)
		for j := range y2 {
			if math.Abs(y2[j]-2*yt[j]) > 1e-12 {
				t.Fatalf("AddMulTVec should accumulate")
			}
		}
	}
}

func TestDiagATA(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 3)
	tr.Add(1, 0, 4)
	tr.Add(1, 1, -2)
	d := tr.Compile().DiagATA()
	if d[0] != 25 || d[1] != 4 {
		t.Errorf("DiagATA = %v, want [25 4]", d)
	}
}

func TestRowColNorms(t *testing.T) {
	tr := NewTriplet(2, 3)
	tr.Add(0, 0, -3)
	tr.Add(0, 2, 1)
	tr.Add(1, 1, 2)
	c := tr.Compile()
	rn := c.RowInfNorms()
	if rn[0] != 3 || rn[1] != 2 {
		t.Errorf("RowInfNorms = %v", rn)
	}
	cn := c.ColInfNorms()
	if cn[0] != 3 || cn[1] != 2 || cn[2] != 1 {
		t.Errorf("ColInfNorms = %v", cn)
	}
}

func TestScaleRowsCols(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 2)
	tr.Add(1, 1, 3)
	c := tr.Compile()
	c.ScaleRows([]float64{2, 10})
	c.ScaleCols([]float64{1, 0.5})
	d := c.Dense()
	want := [][]float64{{2, 2}, {0, 15}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("scaled[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := NewTriplet(1, 1)
	tr.Add(0, 0, 1)
	c := tr.Compile()
	cl := c.Clone()
	cl.Val[0] = 99
	if c.Val[0] != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot")
	}
	if InfNorm([]float64{-3, 2}) != 3 {
		t.Error("InfNorm")
	}
	if InfNorm(nil) != 0 {
		t.Error("InfNorm(nil)")
	}
	y := []float64{1, 1}
	AXPY(y, 2, []float64{1, -1})
	if y[0] != 3 || y[1] != -1 {
		t.Errorf("AXPY = %v", y)
	}
	Scale(y, -1)
	if y[0] != -3 || y[1] != 1 {
		t.Errorf("Scale = %v", y)
	}
	v := []float64{-5, 0.5, 5}
	Clamp(v, []float64{0, 0, 0}, []float64{1, 1, 1})
	if v[0] != 0 || v[1] != 0.5 || v[2] != 1 {
		t.Errorf("Clamp = %v", v)
	}
}

// Property: (Ax)ᵀy == xᵀ(Aᵀy) for random sparse matrices — adjoint
// consistency of MulVec and MulTVec.
func TestPropertyAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(12), 1+rng.Intn(12)
		a := randCSR(rng, m, n, 0.3)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ax := make([]float64, m)
		a.MulVec(ax, x)
		aty := make([]float64, n)
		a.MulTVec(aty, y)
		lhs, rhs := Dot(ax, y), Dot(x, aty)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
