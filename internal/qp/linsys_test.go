package qp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// tightSettings returns the property-test solver configuration with a
// forced linear-system backend.
func tightSettings(ls LinSys) Settings {
	set := DefaultSettings()
	set.EpsAbs, set.EpsRel = 1e-9, 1e-9
	set.MaxIter = 200000
	set.CGTol = 1e-12
	set.LinSys = ls
	return set
}

func TestParseLinSys(t *testing.T) {
	cases := []struct {
		in   string
		want LinSys
	}{{"", LinSysAuto}, {"auto", LinSysAuto}, {"cg", LinSysCG}, {"ldlt", LinSysLDLT}}
	for _, c := range cases {
		got, err := ParseLinSys(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLinSys(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if s := got.String(); s == "" {
			t.Errorf("LinSys(%d).String() empty", int(got))
		}
	}
	if _, err := ParseLinSys("cholmod"); err == nil {
		t.Error("ParseLinSys accepted an unknown backend")
	}
}

// TestBackendEquivalenceProperty runs the randomized PSD instances
// through both backends and demands tolerance-identical optima: same
// status, ‖x_cg − x_ldlt‖∞ ≤ 1e-6, and a first-order certificate
// (KKT stationarity and feasibility ≤ 1e-6) from each.
func TestBackendEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prob := randomFeasibleQP(rng)

		solve := func(ls LinSys) *Result {
			s, err := NewSolver(prob, tightSettings(ls))
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, ls, err)
			}
			if got := s.Backend(); got != ls {
				t.Fatalf("seed %d: forced backend %v but solver picked %v", seed, ls, got)
			}
			res, err := s.SolveCtx(context.Background())
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, ls, err)
			}
			return res
		}
		rcg := solve(LinSysCG)
		rld := solve(LinSysLDLT)

		if rcg.Status != rld.Status {
			t.Fatalf("seed %d: status cg=%v ldlt=%v", seed, rcg.Status, rld.Status)
		}
		diff := 0.0
		for j := range rcg.X {
			if d := math.Abs(rcg.X[j] - rld.X[j]); d > diff {
				diff = d
			}
		}
		if diff > 1e-6 {
			t.Errorf("seed %d: ‖x_cg − x_ldlt‖∞ = %g > 1e-6", seed, diff)
		}
		for _, r := range []*Result{rcg, rld} {
			if v := prob.MaxViolation(r.X); v > 1e-6 {
				t.Errorf("seed %d: violation %g > 1e-6", seed, v)
			}
			if g := kktStationarity(prob, r.X, r.Y); g > 1e-6 {
				t.Errorf("seed %d: KKT stationarity %g > 1e-6", seed, g)
			}
		}
	}
}

// csrRows extracts rows [lo, hi) of a as a fresh CSR.
func csrRows(a *CSR, lo, hi int) *CSR {
	tr := NewTriplet(hi-lo, a.N)
	for r := lo; r < hi; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			tr.Add(r-lo, a.Col[k], a.Val[k])
		}
	}
	return tr.Compile()
}

// TestLDLTAppendMatchesColdFactor appends constraint rows to a live
// factor and checks the refactorized solve against a cold factor of the
// full matrix, plus a direct residual check against K itself.
func TestLDLTAppendMatchesColdFactor(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		prob := randomFeasibleQP(rng)
		n := prob.A.N
		m := prob.A.M
		split := m - 1 - rng.Intn(3)
		a1 := csrRows(prob.A, 0, split)
		const sigma, rho = 1e-6, 0.34

		f := newLDLTFactor(prob.P, sigma, a1, n)
		f.AppendRows(prob.A, split)
		if err := f.Refactor(rho); err != nil {
			t.Fatalf("seed %d: append refactor: %v", seed, err)
		}
		cold := newLDLTFactor(prob.P, sigma, prob.A, n)
		if err := cold.Refactor(rho); err != nil {
			t.Fatalf("seed %d: cold refactor: %v", seed, err)
		}
		// The two factors use different permutations (the merged one keeps
		// the subset-derived RCM order), so nnz(L) may differ; the solves
		// below must still agree exactly on the same K.

		b := make([]float64, n)
		for j := range b {
			b[j] = rng.NormFloat64()
		}
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		f.Solve(x1, b)
		cold.Solve(x2, b)
		for j := range x1 {
			if d := math.Abs(x1[j] - x2[j]); d > 1e-9*(1+math.Abs(x2[j])) {
				t.Fatalf("seed %d: appended vs cold solve differ at %d: %g vs %g", seed, j, x1[j], x2[j])
			}
		}

		// Residual check: K x = (P + σI + ρAᵀA) x must reproduce b.
		kx := make([]float64, n)
		prob.P.MulVec(kx, x1)
		ax := make([]float64, m)
		prob.A.MulVec(ax, x1)
		aty := make([]float64, n)
		prob.A.MulTVec(aty, ax)
		res := 0.0
		for j := 0; j < n; j++ {
			r := kx[j] + sigma*x1[j] + rho*aty[j] - b[j]
			if math.Abs(r) > res {
				res = math.Abs(r)
			}
		}
		if res > 1e-8*(1+InfNorm(b)) {
			t.Errorf("seed %d: ‖Kx − b‖∞ = %g", seed, res)
		}
	}
}

// TestSolverAppendRowsMatchesCold appends rows to a live LDLᵀ-backed
// solver mid-stream and checks the re-solved optimum against a cold
// solver built on the full problem.
func TestSolverAppendRowsMatchesCold(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		prob := randomFeasibleQP(rng)
		m := prob.A.M
		split := m - 1 - rng.Intn(3)

		sub := &Problem{P: prob.P, Q: prob.Q,
			A: csrRows(prob.A, 0, split),
			L: prob.L[:split], U: prob.U[:split]}
		warm, err := NewSolver(sub, tightSettings(LinSysLDLT))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := warm.SolveCtx(context.Background()); err != nil {
			t.Fatalf("seed %d: pre-append solve: %v", seed, err)
		}
		if err := warm.AppendRows(csrRows(prob.A, split, m), prob.L[split:], prob.U[split:]); err != nil {
			t.Fatalf("seed %d: AppendRows: %v", seed, err)
		}
		rw, err := warm.SolveCtx(context.Background())
		if err != nil {
			t.Fatalf("seed %d: post-append solve: %v", seed, err)
		}

		cold, err := NewSolver(prob, tightSettings(LinSysLDLT))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rc, err := cold.SolveCtx(context.Background())
		if err != nil {
			t.Fatalf("seed %d: cold solve: %v", seed, err)
		}
		if rw.Status != rc.Status {
			t.Fatalf("seed %d: status warm=%v cold=%v", seed, rw.Status, rc.Status)
		}
		for j := range rw.X {
			if d := math.Abs(rw.X[j] - rc.X[j]); d > 1e-5 {
				t.Errorf("seed %d: x[%d] warm %g vs cold %g (Δ %g)", seed, j, rw.X[j], rc.X[j], d)
				break
			}
		}
		if v := prob.MaxViolation(rw.X); v > 1e-6 {
			t.Errorf("seed %d: post-append violation %g > 1e-6", seed, v)
		}
		if g := kktStationarity(prob, rw.X, rw.Y); g > 1e-6 {
			t.Errorf("seed %d: post-append KKT %g > 1e-6", seed, g)
		}
	}
}
