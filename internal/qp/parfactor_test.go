package qp

import (
	"fmt"
	"testing"
)

// gridDoseFactor builds the LDLᵀ factor of the matrix the production
// dose QP hands the x-step: a g×g grid with box rows on every cell and
// 4-neighbour smoothness rows, unit curvature — K = P + σI + ρAᵀA is
// the usual banded grid Laplacian.
func gridDoseFactor(g int) *ldltFactor {
	n := g * g
	pd := make([]float64, n)
	for i := range pd {
		pd[i] = 1
	}
	rows := n + 2*g*(g-1)
	tr := NewTriplet(rows, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
	}
	r := n
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			j := y*g + x
			if x+1 < g {
				tr.Add(r, j, 1)
				tr.Add(r, j+1, -1)
				r++
			}
			if y+1 < g {
				tr.Add(r, j, 1)
				tr.Add(r, j+g, -1)
				r++
			}
		}
	}
	return newLDLTFactor(diagCSRBench(pd), DefaultSettings().Sigma, tr.Compile(), n)
}

func diagCSRBench(d []float64) *CSR {
	tr := NewTriplet(len(d), len(d))
	for i, v := range d {
		tr.Add(i, i, v)
	}
	return tr.Compile()
}

// BenchmarkLDLTParallelFactor times the numeric phase of the
// elimination-tree-scheduled factorization on a 64×64 grid dose matrix
// at increasing worker counts.  The ρ argument alternates between two
// rungs so every iteration runs the full numeric phase instead of the
// factored-already fast path.
func BenchmarkLDLTParallelFactor(b *testing.B) {
	f := gridDoseFactor(64)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rhos := [2]float64{0.1, 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.RefactorW(rhos[i&1], workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSupernodalSolve compares the blocked supernodal triangular
// sweeps against the scalar column-at-a-time reference on the 64×64
// grid dose matrix, then scales the supernodal path over batched
// right-hand sides (SolveBatchW streams the factor once per supernode
// for the whole block).  Every variant computes bit-identical results;
// only the wall differs.
func BenchmarkSupernodalSolve(b *testing.B) {
	f := gridDoseFactor(64)
	if err := f.RefactorW(0.5, 1); err != nil {
		b.Fatal(err)
	}
	n := f.n
	lx, d := scalarFactor(b, f, 0.5)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%17) - 8
	}
	x := make([]float64, n)
	b.Run("scalar/rhs=1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scalarSolve(f, lx, d, x, rhs)
		}
	})
	for _, nrhs := range []int{1, 4, 8} {
		xs := make([][]float64, nrhs)
		bs := make([][]float64, nrhs)
		for q := range xs {
			xs[q] = make([]float64, n)
			bs[q] = append([]float64(nil), rhs...)
		}
		b.Run(fmt.Sprintf("supernodal/rhs=%d", nrhs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.SolveBatchW(xs, bs, 1)
			}
		})
	}
}
