package qp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomBoxQP builds a strictly convex box-and-coupling QP large enough
// to push the blocked mat-vec/dot kernels through several CG blocks.
func randomBoxQP(n, m int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	pt := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		pt.Add(i, i, 1+rng.Float64())
		if i+1 < n {
			v := 0.2 * rng.Float64()
			pt.Add(i, i+1, v)
			pt.Add(i+1, i, v)
		}
	}
	at := NewTriplet(m+n, n)
	l := make([]float64, m+n)
	u := make([]float64, m+n)
	for r := 0; r < m; r++ {
		for k := 0; k < 4; k++ {
			at.Add(r, rng.Intn(n), rng.NormFloat64())
		}
		l[r] = -5
		u[r] = 5
	}
	for i := 0; i < n; i++ {
		at.Add(m+i, i, 1)
		l[m+i] = -1
		u[m+i] = 1
	}
	q := make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return &Problem{P: pt.Compile(), Q: q, A: at.Compile(), L: l, U: u}
}

// TestSolveWorkersEquivalent asserts the solve trajectory — not just
// the solution — is bit-identical for every worker count: same iterate,
// same iteration count, same CG work.
func TestSolveWorkersEquivalent(t *testing.T) {
	prob := randomBoxQP(400, 120, 7)
	set := DefaultSettings()
	set.Workers = 1
	ref, err := Solve(prob, set)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Status != Solved {
		t.Fatalf("reference status %v", ref.Status)
	}
	for _, w := range []int{2, 3, 8, 0} {
		set.Workers = w
		res, err := Solve(prob, set)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.Iters != ref.Iters || res.CGIters != ref.CGIters {
			t.Fatalf("workers=%d: iters %d/%d != %d/%d", w, res.Iters, res.CGIters, ref.Iters, ref.CGIters)
		}
		if math.Float64bits(res.Obj) != math.Float64bits(ref.Obj) {
			t.Fatalf("workers=%d: obj %v != %v", w, res.Obj, ref.Obj)
		}
		for i := range res.X {
			if math.Float64bits(res.X[i]) != math.Float64bits(ref.X[i]) {
				t.Fatalf("workers=%d: x[%d] %v != %v (not bit-identical)", w, i, res.X[i], ref.X[i])
			}
		}
	}
}

// TestSolveCtxCanceledAtIterationBoundary asserts the cancellation
// property: a canceled context stops the ADMM loop at the very next
// iteration boundary (zero completed iterations for a pre-canceled
// context) and surfaces a wrapped context.Canceled.
func TestSolveCtxCanceledAtIterationBoundary(t *testing.T) {
	prob := randomBoxQP(100, 30, 11)
	s, err := NewSolver(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.SolveCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("canceled solve must still return the best iterate")
	}
	if res.Iters != 0 {
		t.Fatalf("pre-canceled solve completed %d iterations, want 0", res.Iters)
	}
}
