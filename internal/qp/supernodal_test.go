package qp

import (
	"math"
	"math/rand"
	"testing"
)

// This file checks the supernodal factorization against a scalar
// column-at-a-time reference built on the SAME symbolic views (perm,
// CSC pattern, row lists).  The production kernels guarantee that every
// element accumulates its terms in ascending source column with padded
// panel slots contributing exact zeros, so the supernodal L, D and
// solves must agree with the scalar ones to the last bit — not just to
// a tolerance.

// scalarFactor runs the classic up-looking column-at-a-time LDLᵀ over
// the factor's symbolic structure: for each column k, scatter the
// lower column of K = base + ρ·AᵀA, subtract one rank-1 term per entry
// of row k of L in ascending source column, divide by the pivot.  This
// is exactly the op sequence the supernodal kernel reproduces (plus
// bitwise-inert padded-zero terms), making the Float64bits comparison
// meaningful.
func scalarFactor(t testing.TB, f *ldltFactor, rho float64) (lx, d []float64) {
	t.Helper()
	n := f.n
	lx = make([]float64, f.lp[n])
	d = make([]float64, n)
	w := make([]float64, n)
	for k := 0; k < n; k++ {
		for t := f.lowPtr[k]; t < f.lowPtr[k+1]; t++ {
			src := f.lowSrc[t]
			w[f.lowRow[t]] = f.baseVal[src] + rho*f.ataVal[src]
		}
		dk := w[k]
		w[k] = 0
		for t := f.rowPtr[k]; t < f.rowPtr[k+1]; t++ {
			p := f.rowPos[t]
			lkj := lx[p]
			sj := d[f.rowCol[t]] * lkj
			dk -= lkj * sj
			for q := p + 1; q < f.lp[f.rowCol[t]+1]; q++ {
				w[f.li[q]] -= lx[q] * sj
			}
		}
		if dk == 0 {
			t.Fatalf("scalar reference: zero pivot at column %d", k)
		}
		d[k] = dk
		for p := f.lp[k]; p < f.lp[k+1]; p++ {
			i := f.li[p]
			lx[p] = w[i] / dk
			w[i] = 0
		}
	}
	return lx, d
}

// scalarSolve is the scalar reference for SolveW: permute, push-mode
// forward solve (ascending source column per element), diagonal scale,
// pull-mode backward solve, unpermute.  The backward sweep follows the
// production accumulation convention: per column, below-supernode rows
// first (ascending), then the rows inside the column's own supernode —
// the order bwdSuper fixes so its external phase can run blocked.
func scalarSolve(f *ldltFactor, lx, d, x, b []float64) {
	n := f.n
	w := make([]float64, n)
	for k := 0; k < n; k++ {
		w[k] = b[f.perm[k]]
	}
	for j := 0; j < n; j++ {
		wj := w[j]
		for p := f.lp[j]; p < f.lp[j+1]; p++ {
			w[f.li[p]] -= lx[p] * wj
		}
	}
	for j := range w {
		w[j] /= d[j]
	}
	for j := n - 1; j >= 0; j-- {
		c1 := f.sPtr[f.snode[j]+1]
		wj := w[j]
		for p := f.lp[j]; p < f.lp[j+1]; p++ {
			if f.li[p] >= c1 {
				wj -= lx[p] * w[f.li[p]]
			}
		}
		for p := f.lp[j]; p < f.lp[j+1]; p++ {
			i := f.li[p]
			if i >= c1 {
				break
			}
			wj -= lx[p] * w[i]
		}
		w[j] = wj
	}
	for k := 0; k < n; k++ {
		x[f.perm[k]] = w[k]
	}
}

// randomFactor builds the factor of K = P + σI + ρAᵀA for a random
// diagonal P and a random sparse A with a single-entry box prefix —
// the production problem shape at a miniature scale.
func randomFactor(rng *rand.Rand, n, extraRows int) *ldltFactor {
	pd := make([]float64, n)
	for i := range pd {
		pd[i] = 0.5 + rng.Float64()
	}
	tr := NewTriplet(n+extraRows, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
	}
	for r := 0; r < extraRows; r++ {
		nz := 2 + rng.Intn(4)
		for k := 0; k < nz; k++ {
			tr.Add(n+r, rng.Intn(n), rng.NormFloat64())
		}
	}
	return newLDLTFactor(diagCSRBench(pd), DefaultSettings().Sigma, tr.Compile(), n)
}

// TestSupernodePartition checks the structural invariants of supernode
// detection on random patterns: the column ranges partition 0..n, the
// columns of one supernode form an elimination-tree chain whose
// below-group structure is contained in the panel's shared row list,
// and every amalgamated panel respects the padding budget.
func TestSupernodePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(120)
		f := randomFactor(rng, n, n/2+rng.Intn(2*n))
		ns := len(f.sPtr) - 1

		// Partition of 0..n.
		if f.sPtr[0] != 0 || f.sPtr[ns] != n {
			t.Fatalf("trial %d: sPtr does not span 0..%d: %v", trial, n, f.sPtr)
		}
		for s := 0; s < ns; s++ {
			if f.sPtr[s+1] <= f.sPtr[s] {
				t.Fatalf("trial %d: empty or reversed supernode %d", trial, s)
			}
			for k := f.sPtr[s]; k < f.sPtr[s+1]; k++ {
				if f.snode[k] != s {
					t.Fatalf("trial %d: snode[%d] = %d, want %d", trial, k, f.snode[k], s)
				}
			}
		}

		trueEntries := 0
		for s := 0; s < ns; s++ {
			c0, c1 := f.sPtr[s], f.sPtr[s+1]
			width := c1 - c0

			// Chain: each non-leading column is its predecessor's etree
			// parent (the amalgamation walk never crosses a chain break).
			for k := c0 + 1; k < c1; k++ {
				if f.parent[k-1] != k {
					t.Fatalf("trial %d: supernode %d columns %d..%d break the etree chain at %d", trial, s, c0, c1-1, k)
				}
			}

			// Shared pattern: every column's below-group structure is in
			// the panel row list (the last column's structure).
			srows := f.sRows[f.sRowPtr[s]:f.sRowPtr[s+1]]
			inPanel := map[int]bool{}
			for _, i := range srows {
				inPanel[i] = true
			}
			cols := 0
			for k := c0; k < c1; k++ {
				for p := f.lp[k]; p < f.lp[k+1]; p++ {
					if i := f.li[p]; i >= c1 {
						if !inPanel[i] {
							t.Fatalf("trial %d: supernode %d: column %d row %d missing from panel rows", trial, s, k, i)
						}
					} else if i < k {
						t.Fatalf("trial %d: supernode %d: column %d lists upper row %d", trial, s, k, i)
					}
					cols++
				}
			}
			trueEntries += cols

			// Padding budget: a lone fundamental block has none; a merged
			// panel stays within the amalgamation thresholds (the greedy
			// test evaluates the cumulative fraction of the whole group).
			panel := width*len(srows) + width*(width-1)/2
			pad := panel - cols
			if pad < 0 {
				t.Fatalf("trial %d: supernode %d: negative padding %d", trial, s, pad)
			}
			frac := float64(pad) / float64(max(panel, 1))
			if pad != 0 && frac > amalgZeroFrac && !(width <= amalgMaxTiny && frac <= amalgTinyFrac) {
				t.Fatalf("trial %d: supernode %d: padding %d/%d over budget (width %d)", trial, s, pad, panel, width)
			}
		}
		if trueEntries != f.lp[n] {
			t.Fatalf("trial %d: supernode columns cover %d entries, want nnz(L) = %d", trial, trueEntries, f.lp[n])
		}
	}
}

// TestSupernodalMatchesScalarBits factors random problems with the
// supernodal kernels and with the scalar reference and demands exact
// Float64bits agreement on L, D, single solves, worker solves and
// batched solves.
func TestSupernodalMatchesScalarBits(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		n := 30 + rng.Intn(100)
		f := randomFactor(rng, n, n+rng.Intn(n))
		rho := math.Exp(rng.NormFloat64())
		if err := f.RefactorW(rho, 1); err != nil {
			t.Fatalf("trial %d: refactor: %v", trial, err)
		}
		lx, d := scalarFactor(t, f, rho)

		gotL := f.factorL()
		for p := range lx {
			if math.Float64bits(gotL[p]) != math.Float64bits(lx[p]) {
				t.Fatalf("trial %d: L[%d] = %x, scalar %x", trial, p, math.Float64bits(gotL[p]), math.Float64bits(lx[p]))
			}
		}
		for k := range d {
			if math.Float64bits(f.d[k]) != math.Float64bits(d[k]) {
				t.Fatalf("trial %d: D[%d] = %x, scalar %x", trial, k, math.Float64bits(f.d[k]), math.Float64bits(d[k]))
			}
		}

		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		scalarSolve(f, lx, d, want, b)
		got := make([]float64, n)
		f.SolveW(got, b, 1)
		diffCount := 0
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				diffCount++
			}
		}
		if diffCount > 0 {
			t.Fatalf("trial %d: serial solve differs from scalar reference at %d/%d entries", trial, diffCount, n)
		}
		f.SolveW(got, b, 4)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: workers=4 solve differs at %d", trial, i)
			}
		}

		// Batched solves: every RHS bitwise equal to its solo solve, for
		// the serial chain and the per-RHS parallel dispatch alike.
		const nrhs = 5
		bs := make([][]float64, nrhs)
		wantq := make([][]float64, nrhs)
		for q := range bs {
			bs[q] = make([]float64, n)
			for i := range bs[q] {
				bs[q][i] = rng.NormFloat64()
			}
			wantq[q] = make([]float64, n)
			f.SolveW(wantq[q], bs[q], 1)
		}
		for _, workers := range []int{1, 4} {
			xs := make([][]float64, nrhs)
			for q := range xs {
				xs[q] = make([]float64, n)
			}
			f.SolveBatchW(xs, bs, workers)
			for q := range xs {
				for i := range xs[q] {
					if math.Float64bits(xs[q][i]) != math.Float64bits(wantq[q][i]) {
						t.Fatalf("trial %d: batch workers=%d rhs %d differs at %d", trial, workers, q, i)
					}
				}
			}
		}
	}
}
