// Sparse LDLᵀ factorization of the ADMM KKT matrix K = P + σI + ρAᵀA.
//
// The factorization is split the classical way:
//
//   - the SYMBOLIC phase — merged nonzero pattern of P and AᵀA, a
//     fill-reducing ordering (generalized nested dissection vs reverse
//     Cuthill–McKee, whichever the exact symbolic count predicts is
//     cheaper), the elimination tree and per-column fill counts —
//     depends only on the sparsity structure and is computed once per
//     Solver, then refreshed when cut-row appends merge new cliques in;
//   - the NUMERIC phase re-runs only when ρ changes (adaptive-ρ steps
//     and stall restarts) or when constraint rows are appended, reusing
//     the symbolic analysis every time.
//
// Between refactorizations every ADMM x-step is two sparse triangular
// solves plus a diagonal scale — O(nnz(L)) with no inner iteration —
// which is what kills the conjugate-gradient loop on the cut-generation
// hot path: the cut QP's KKT matrix is τ-invariant, so whole bisection
// probes run on a single factor.
//
// The numeric kernel is a LEFT-LOOKING per-column factorization over a
// pattern that the symbolic phase makes fully explicit: column k of L
// is assembled from the lower column k of K minus one update per
// nonzero of row k of L, each update reading only columns that are
// proper descendants of k in the elimination tree.  Because the
// per-column accumulation order is fixed by the precomputed row-major
// view of L (ascending source column, then ascending position), the
// result is bit-identical no matter how columns are scheduled — which
// is what lets the numeric phase and both triangular solves run in
// parallel across elimination-tree LEVEL SETS (all columns of equal
// etree height are mutually independent) while keeping the package-wide
// determinism contract: identical bits for workers 1..N.  No pivoting
// is needed because K is symmetric positive definite for σ > 0, ρ > 0.
package qp

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/par"
)

// ldltFactor holds the symbolic analysis and, after Refactor, the
// numeric factors of K = P + σI + ρAᵀA under a fill-reducing
// permutation.
type ldltFactor struct {
	n int

	// perm maps factor position → original index; iperm is its inverse.
	perm, iperm []int

	// Upper-triangular pattern of the permuted K in compressed-sparse-
	// column form (diagonal included, rows sorted within a column).
	// The numeric values split into a ρ-independent part (P + σI) and
	// the AᵀA part, so a ρ change re-assembles K in O(nnz) without
	// touching P or A.
	kp      []int // column pointers, len n+1
	ki      []int // row indices, len nnz
	baseVal []float64
	ataVal  []float64

	// Symbolic output: elimination tree and per-column counts of L.
	parent []int
	lnz    []int
	lp     []int // column pointers of L, len n+1

	// Numeric factors: strictly lower L (CSC, rows sorted ascending
	// within a column — li is filled symbolically, so only lx and d
	// change between refactorizations) and diagonal D.
	li []int
	lx []float64
	d  []float64

	// Row-major view of the strictly lower L: row k holds the columns
	// j < k with L[k,j] ≠ 0 (ascending j) and, aligned, the position of
	// that entry inside li/lx.  This is both the update list of the
	// left-looking numeric kernel and the gather list of the pull-mode
	// forward solve.  rowVal caches lx in row-major order (rowVal[t] =
	// lx[rowPos[t]], refreshed lazily per numeric generation) so the
	// forward solve streams values sequentially instead of gathering
	// through rowPos on every ADMM iteration.
	rowPtr []int // len n+1
	rowCol []int
	rowPos []int
	rowVal []float64
	rowGen int // numeric generation rowVal was built from
	numGen int // bumped whenever lx changes

	// Lower-triangular view of the stored upper K pattern: lower column
	// k lists the columns c ≥ k with K[k,c] ≠ 0 (ascending, diagonal
	// first) and the source position in baseVal/ataVal, so the numeric
	// kernel scatters K's column without searching the upper CSC.
	lowPtr []int // len n+1
	lowRow []int
	lowSrc []int

	// Elimination-tree level sets: levelNode[levelPtr[l]:levelPtr[l+1]]
	// are the columns of etree height l, ascending.  Columns within a
	// level are mutually independent — the parallel schedule.
	levelPtr  []int
	levelNode []int
	nLevels   int

	// lastParLevels counts the level sets the most recent RefactorW
	// dispatched through the worker pool (0 on serial runs) — the
	// qp/parallel_factor_levels telemetry feed.
	lastParLevels int

	// Scratch reused across factorizations and solves.  w backs the
	// serial numeric kernel and every solve; wk holds one all-zero
	// dense workspace per factorization worker (the column kernel
	// restores its workspace to zero on every path, so the buffers
	// never need re-clearing between levels).
	flag []int
	w    []float64
	wk   [][]float64
}

// upperEntry is one upper-triangular entry contribution before
// compilation: (row, col) in permuted coordinates with row ≤ col.
type upperEntry struct {
	row, col int
	base     float64
	ata      float64
}

// newLDLTFactor runs the symbolic analysis for K = P + σI + ρAᵀA over
// the patterns of p (may be nil) and a (may have zero rows).  No
// numeric work happens here; call Refactor with a concrete ρ before
// Solve.
func newLDLTFactor(p *CSR, sigma float64, a *CSR, n int) *ldltFactor {
	f := &ldltFactor{n: n}
	adj := adjacencyOf(p, a, n)
	f.perm, _ = bestOrder(adj)
	f.iperm = make([]int, n)
	for k, v := range f.perm {
		f.iperm[v] = k
	}
	f.compilePattern(collectUpper(p, sigma, a, n, f.iperm))
	f.symbolic()
	return f
}

// bestOrder evaluates the two candidate fill-reducing orderings —
// nested dissection and reverse Cuthill–McKee — against the exact
// symbolic fill count and keeps the cheaper factor.  On the grid-
// Laplacian smoothness structure the O(√n) dissection separators beat
// RCM's bandwidth ordering decisively (every ADMM iteration sweeps
// nnz(L) twice, so predicted fill is exactly the cost that matters);
// RCM remains better on long path-like patterns.
func bestOrder(adj *CSR) ([]int, int) {
	n := adj.N
	iperm := make([]int, n)
	parent := make([]int, n)
	flag := make([]int, n)
	fill := func(perm []int) int {
		for k, v := range perm {
			iperm[v] = k
		}
		return fillOf(adj, perm, iperm, parent, flag)
	}
	nd := ndOrder(adj)
	rcm := rcmOrder(adj)
	fnd, frcm := fill(nd), fill(rcm)
	if fnd <= frcm {
		return nd, fnd
	}
	return rcm, frcm
}

// fillOf counts nnz(L) for a candidate ordering directly from the
// adjacency structure via the elimination-tree flag-path walk — no
// pattern compilation, O(nnz(K)) plus path lengths.
func fillOf(adj *CSR, perm, iperm, parent, flag []int) int {
	n := adj.N
	nnz := 0
	for k := 0; k < n; k++ {
		parent[k] = -1
		flag[k] = k
		v := perm[k]
		for p := adj.RowPtr[v]; p < adj.RowPtr[v+1]; p++ {
			i := iperm[adj.Col[p]]
			if i >= k {
				continue
			}
			for ; flag[i] != k; i = parent[i] {
				if parent[i] == -1 {
					parent[i] = k
				}
				nnz++
				flag[i] = k
			}
		}
	}
	return nnz
}

// adjacencyOf builds the symmetric adjacency structure of K (off-
// diagonal pattern of P plus the per-row cliques of A) as a CSR graph.
func adjacencyOf(p *CSR, a *CSR, n int) *CSR {
	t := NewTriplet(n, n)
	if p != nil {
		for r := 0; r < p.M; r++ {
			for k := p.RowPtr[r]; k < p.RowPtr[r+1]; k++ {
				if c := p.Col[k]; c != r {
					t.Add(r, c, 1)
				}
			}
		}
	}
	if a != nil {
		for r := 0; r < a.M; r++ {
			lo, hi := a.RowPtr[r], a.RowPtr[r+1]
			for i := lo; i < hi; i++ {
				for j := i + 1; j < hi; j++ {
					t.Add(a.Col[i], a.Col[j], 1)
					t.Add(a.Col[j], a.Col[i], 1)
				}
			}
		}
	}
	return t.Compile()
}

// rcmOrder returns a reverse Cuthill–McKee ordering of the graph: BFS
// from a low-degree peripheral node, neighbors visited in increasing-
// degree order, then the whole order reversed.  RCM concentrates the
// grid-Laplacian smoothness structure into a narrow band, which keeps
// LDLᵀ fill close to the bandwidth.
func rcmOrder(adj *CSR) []int {
	n := adj.N
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = adj.RowPtr[v+1] - adj.RowPtr[v]
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	nbuf := make([]int, 0, 16)
	for {
		// Start the next component at its minimum-degree node (a cheap
		// pseudo-peripheral choice that is deterministic).
		start := -1
		for v := 0; v < n; v++ {
			if !visited[v] && (start < 0 || deg[v] < deg[start]) {
				start = v
			}
		}
		if start < 0 {
			break
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			order = append(order, v)
			nbuf = nbuf[:0]
			for k := adj.RowPtr[v]; k < adj.RowPtr[v+1]; k++ {
				if w := adj.Col[k]; !visited[w] {
					visited[w] = true
					nbuf = append(nbuf, w)
				}
			}
			sort.Slice(nbuf, func(a, b int) bool {
				if deg[nbuf[a]] != deg[nbuf[b]] {
					return deg[nbuf[a]] < deg[nbuf[b]]
				}
				return nbuf[a] < nbuf[b]
			})
			queue = append(queue, nbuf...)
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// ndOrder returns a generalized nested-dissection ordering (George &
// Liu's automatic scheme): recursively split each subgraph on the
// middle level set of a pseudo-peripheral BFS, number the separator
// last, and Cuthill–McKee the small leaves.  On a w×w grid Laplacian
// the separators are O(w) while RCM's band is O(w) PER ROW, so the
// factor fill drops from O(n·w) toward O(n log n).  Everything is
// index-deterministic: component roots and BFS tie-breaks follow
// vertex order, never map iteration.
func ndOrder(adj *CSR) []int {
	n := adj.N
	const leafSize = 32
	order := make([]int, 0, n)
	sub := make([]int, n) // vertex → current subgraph id (always ≥ 1)
	for i := range sub {
		sub[i] = 1
	}
	level := make([]int, n)
	queue := make([]int, 0, n)
	nextID := 2

	// bfs runs a breadth-first sweep from root restricted to vertices
	// with sub[v] == id, filling queue with the visited set in order
	// and level with BFS depths.  Returns the number of levels.
	bfs := func(root, id int) int {
		queue = queue[:0]
		queue = append(queue, root)
		level[root] = 0
		sub[root] = -id // negative marks visited-within-this-sweep
		depth := 0
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for k := adj.RowPtr[v]; k < adj.RowPtr[v+1]; k++ {
				if w := adj.Col[k]; sub[w] == id {
					sub[w] = -id
					level[w] = level[v] + 1
					depth = level[w]
					queue = append(queue, w)
				}
			}
		}
		for _, v := range queue {
			sub[v] = id
		}
		return depth + 1
	}

	// cmLeaf appends a Cuthill–McKee order of the (possibly
	// disconnected) subgraph id to order.
	var nbuf []int
	cmLeaf := func(verts []int, id int) {
		for {
			root := -1
			for _, v := range verts {
				if sub[v] != id {
					continue
				}
				if root < 0 || adj.RowPtr[v+1]-adj.RowPtr[v] < adj.RowPtr[root+1]-adj.RowPtr[root] {
					root = v
				}
			}
			if root < 0 {
				return
			}
			queue = queue[:0]
			queue = append(queue, root)
			sub[root] = -id
			for qi := 0; qi < len(queue); qi++ {
				v := queue[qi]
				order = append(order, v)
				nbuf = nbuf[:0]
				for k := adj.RowPtr[v]; k < adj.RowPtr[v+1]; k++ {
					if w := adj.Col[k]; sub[w] == id {
						sub[w] = -id
						nbuf = append(nbuf, w)
					}
				}
				sort.Ints(nbuf)
				queue = append(queue, nbuf...)
			}
		}
	}

	var rec func(verts []int, id int)
	rec = func(verts []int, id int) {
		if len(verts) <= leafSize {
			cmLeaf(verts, id)
			return
		}
		// Pseudo-peripheral root: BFS from the min-degree vertex, then
		// once more from the deepest last-visited vertex.
		root := verts[0]
		for _, v := range verts {
			if adj.RowPtr[v+1]-adj.RowPtr[v] < adj.RowPtr[root+1]-adj.RowPtr[root] {
				root = v
			}
		}
		depth := bfs(root, id)
		if len(queue) < len(verts) {
			// Disconnected subgraph: order the components separately.
			comp := append([]int(nil), queue...)
			compID := nextID
			nextID++
			for _, v := range comp {
				sub[v] = compID
			}
			rest := make([]int, 0, len(verts)-len(comp))
			for _, v := range verts {
				if sub[v] == id {
					rest = append(rest, v)
				}
			}
			restID := nextID
			nextID++
			for _, v := range rest {
				sub[v] = restID
			}
			rec(comp, compID)
			rec(rest, restID)
			return
		}
		if far := queue[len(queue)-1]; far != root {
			depth = bfs(far, id)
		}
		if depth < 3 {
			cmLeaf(verts, id)
			return
		}
		mid := depth / 2
		left := make([]int, 0, len(verts))
		right := make([]int, 0, len(verts))
		sep := make([]int, 0, 64)
		for _, v := range queue {
			switch {
			case level[v] < mid:
				left = append(left, v)
			case level[v] > mid:
				right = append(right, v)
			default:
				sep = append(sep, v)
			}
		}
		leftID, rightID := nextID, nextID+1
		nextID += 2
		for _, v := range left {
			sub[v] = leftID
		}
		for _, v := range right {
			sub[v] = rightID
		}
		rec(left, leftID)
		rec(right, rightID)
		sort.Ints(sep)
		order = append(order, sep...)
	}

	all := make([]int, n)
	for v := range all {
		all[v] = v
	}
	rec(all, 1)
	return order
}

// collectUpper gathers the upper-triangular entries of the permuted K,
// with the P + σI contribution and the AᵀA contribution kept separate.
// P must be stored symmetrically (both halves); only its i ≤ j half is
// read so each logical entry contributes once.
func collectUpper(p *CSR, sigma float64, a *CSR, n int, iperm []int) []upperEntry {
	var ents []upperEntry
	put := func(i, j int, base, ata float64) {
		pi, pj := iperm[i], iperm[j]
		if pi > pj {
			pi, pj = pj, pi
		}
		ents = append(ents, upperEntry{row: pi, col: pj, base: base, ata: ata})
	}
	for j := 0; j < n; j++ {
		put(j, j, sigma, 0)
	}
	if p != nil {
		for r := 0; r < p.M; r++ {
			for k := p.RowPtr[r]; k < p.RowPtr[r+1]; k++ {
				if c := p.Col[k]; r <= c {
					put(r, c, p.Val[k], 0)
				}
			}
		}
	}
	if a != nil {
		ents = append(ents, ataEntries(a, 0, iperm)...)
	}
	return ents
}

// ataEntries emits the upper-triangular AᵀA contributions of rows
// [fromRow, a.M) in permuted coordinates: each constraint row is a
// clique over its columns.
func ataEntries(a *CSR, fromRow int, iperm []int) []upperEntry {
	var ents []upperEntry
	for r := fromRow; r < a.M; r++ {
		lo, hi := a.RowPtr[r], a.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			for j := i; j < hi; j++ {
				pi, pj := iperm[a.Col[i]], iperm[a.Col[j]]
				if pi > pj {
					pi, pj = pj, pi
				}
				ents = append(ents, upperEntry{row: pi, col: pj, ata: a.Val[i] * a.Val[j]})
			}
		}
	}
	return ents
}

// compilePattern sorts and deduplicates entries into the CSC-upper
// pattern with the two aligned value streams.
func (f *ldltFactor) compilePattern(ents []upperEntry) {
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].col != ents[b].col {
			return ents[a].col < ents[b].col
		}
		return ents[a].row < ents[b].row
	})
	f.kp = make([]int, f.n+1)
	f.ki = f.ki[:0]
	f.baseVal = f.baseVal[:0]
	f.ataVal = f.ataVal[:0]
	for i := 0; i < len(ents); {
		j := i + 1
		base, ata := ents[i].base, ents[i].ata
		for j < len(ents) && ents[j].col == ents[i].col && ents[j].row == ents[i].row {
			base += ents[j].base
			ata += ents[j].ata
			j++
		}
		f.ki = append(f.ki, ents[i].row)
		f.baseVal = append(f.baseVal, base)
		f.ataVal = append(f.ataVal, ata)
		f.kp[ents[i].col+1]++
		i = j
	}
	for c := 0; c < f.n; c++ {
		f.kp[c+1] += f.kp[c]
	}
}

// mergeAppended folds extra AᵀA entries (already permuted, upper, from
// appended constraint rows) into the existing pattern in place: the
// two sorted streams merge column by column, existing slots accumulate
// and new slots carry a zero base value.  The ordering is NOT
// recomputed — appended cut rows ride on the original permutation —
// but the elimination tree and fill counts are refreshed, which is the
// cheap part of the analysis.
func (f *ldltFactor) mergeAppended(extra []upperEntry) {
	if len(extra) == 0 {
		return
	}
	sort.Slice(extra, func(a, b int) bool {
		if extra[a].col != extra[b].col {
			return extra[a].col < extra[b].col
		}
		return extra[a].row < extra[b].row
	})
	// Deduplicate the extra stream first.
	dst := 0
	for i := 0; i < len(extra); {
		j := i + 1
		e := extra[i]
		for j < len(extra) && extra[j].col == e.col && extra[j].row == e.row {
			e.ata += extra[j].ata
			j++
		}
		extra[dst] = e
		dst++
		i = j
	}
	extra = extra[:dst]

	newKP := make([]int, f.n+1)
	newKI := make([]int, 0, len(f.ki)+len(extra))
	newBase := make([]float64, 0, cap(newKI))
	newATA := make([]float64, 0, cap(newKI))
	xi := 0
	for c := 0; c < f.n; c++ {
		p := f.kp[c]
		end := f.kp[c+1]
		for p < end || (xi < len(extra) && extra[xi].col == c) {
			switch {
			case xi >= len(extra) || extra[xi].col != c || (p < end && f.ki[p] < extra[xi].row):
				newKI = append(newKI, f.ki[p])
				newBase = append(newBase, f.baseVal[p])
				newATA = append(newATA, f.ataVal[p])
				p++
			case p < end && f.ki[p] == extra[xi].row:
				newKI = append(newKI, f.ki[p])
				newBase = append(newBase, f.baseVal[p])
				newATA = append(newATA, f.ataVal[p]+extra[xi].ata)
				p++
				xi++
			default:
				newKI = append(newKI, extra[xi].row)
				newBase = append(newBase, 0)
				newATA = append(newATA, extra[xi].ata)
				xi++
			}
		}
		newKP[c+1] = len(newKI)
	}
	f.kp, f.ki, f.baseVal, f.ataVal = newKP, newKI, newBase, newATA
	f.symbolic()
}

// AppendRows extends the pattern with the AᵀA cliques of rows
// [fromRow, a.M) of the (scaled) constraint matrix, recomputes the
// fill-reducing ordering for the merged pattern, and re-runs the
// symbolic analysis.  Re-ordering costs one graph traversal per append
// — appends are rare (once per cut round) while every ADMM iteration
// pays nnz(L) twice, and cut cliques merged into a stale permutation
// can double the fill.  The caller must Refactor before the next
// Solve.
func (f *ldltFactor) AppendRows(a *CSR, fromRow int) {
	f.mergeAppended(ataEntries(a, fromRow, f.iperm))
	f.reorder()
}

// reorder recomputes the fill-reducing permutation from the current
// merged pattern and recompiles it, composing the new relative order
// onto the existing permutation.  Needs no access to the original P
// and A: the stored pattern and split values carry everything.
func (f *ldltFactor) reorder() {
	n := f.n
	t := NewTriplet(n, n)
	for c := 0; c < n; c++ {
		for p := f.kp[c]; p < f.kp[c+1]; p++ {
			if r := f.ki[p]; r != c {
				t.Add(r, c, 1)
				t.Add(c, r, 1)
			}
		}
	}
	rel, relFill := bestOrder(t.Compile())
	if relFill >= f.lp[n] {
		return // the merged-in-place ordering is already at least as good
	}
	irel := make([]int, n)
	for k, v := range rel {
		irel[v] = k
	}
	ents := make([]upperEntry, 0, len(f.ki))
	for c := 0; c < n; c++ {
		for p := f.kp[c]; p < f.kp[c+1]; p++ {
			pi, pj := irel[f.ki[p]], irel[c]
			if pi > pj {
				pi, pj = pj, pi
			}
			ents = append(ents, upperEntry{row: pi, col: pj, base: f.baseVal[p], ata: f.ataVal[p]})
		}
	}
	newPerm := make([]int, n)
	for k := 0; k < n; k++ {
		newPerm[k] = f.perm[rel[k]]
	}
	f.perm = newPerm
	for k, v := range f.perm {
		f.iperm[v] = k
	}
	f.compilePattern(ents)
	f.symbolic()
}

// symbolic computes the elimination tree and column counts of L for
// the current pattern, fills the pattern of L explicitly (row indices,
// row-major view), compiles the lower-triangular K view and the etree
// level sets, and sizes the numeric arrays.  After symbolic returns,
// the numeric phase touches only lx and d — which is what makes both
// factor caching (snapshot/restore of lx, d) and level-parallel
// factorization (fixed disjoint write ranges per column) sound.
func (f *ldltFactor) symbolic() {
	n := f.n
	if f.parent == nil {
		f.parent = make([]int, n)
		f.lnz = make([]int, n)
		f.lp = make([]int, n+1)
		f.flag = make([]int, n)
		f.w = make([]float64, n)
	}
	for k := 0; k < n; k++ {
		f.parent[k] = -1
		f.flag[k] = k
		f.lnz[k] = 0
		for p := f.kp[k]; p < f.kp[k+1]; p++ {
			for i := f.ki[p]; f.flag[i] != k; i = f.parent[i] {
				if f.parent[i] == -1 {
					f.parent[i] = k
				}
				f.lnz[i]++
				f.flag[i] = k
			}
		}
	}
	f.lp[0] = 0
	for k := 0; k < n; k++ {
		f.lp[k+1] = f.lp[k] + f.lnz[k]
	}
	nnz := f.lp[n]
	if cap(f.li) < nnz {
		f.li = make([]int, nnz)
		f.lx = make([]float64, nnz)
	} else {
		f.li = f.li[:nnz]
		f.lx = f.lx[:nnz]
	}
	if f.d == nil {
		f.d = make([]float64, n)
	}

	// Fill li by a second flag-path walk: visiting rows k in ascending
	// order appends k to every column on the path, so each column's row
	// indices come out sorted without a sort.
	next := make([]int, n)
	for k := 0; k < n; k++ {
		f.flag[k] = -1
	}
	for k := 0; k < n; k++ {
		f.flag[k] = k
		for p := f.kp[k]; p < f.kp[k+1]; p++ {
			for i := f.ki[p]; f.flag[i] != k; i = f.parent[i] {
				f.li[f.lp[i]+next[i]] = k
				next[i]++
				f.flag[i] = k
			}
		}
	}

	// Row-major view of L.  Iterating source columns in ascending order
	// makes each row's column list ascending — the fixed accumulation
	// order of the numeric kernel and the forward solve.
	f.rowPtr = growInts(f.rowPtr, n+1)
	clear(f.rowPtr)
	for _, r := range f.li {
		f.rowPtr[r+1]++
	}
	for k := 0; k < n; k++ {
		f.rowPtr[k+1] += f.rowPtr[k]
	}
	f.rowCol = growInts(f.rowCol, nnz)
	f.rowPos = growInts(f.rowPos, nnz)
	clear(next)
	for j := 0; j < n; j++ {
		for p := f.lp[j]; p < f.lp[j+1]; p++ {
			r := f.li[p]
			slot := f.rowPtr[r] + next[r]
			f.rowCol[slot] = j
			f.rowPos[slot] = p
			next[r]++
		}
	}

	// Lower-triangular view of K: transpose the stored upper CSC into
	// per-column (row ≥ diagonal) gather lists carrying source
	// positions into baseVal/ataVal.  σI puts the diagonal in every
	// column, and ascending source columns keep it first.
	nk := len(f.ki)
	f.lowPtr = growInts(f.lowPtr, n+1)
	clear(f.lowPtr)
	for _, r := range f.ki {
		f.lowPtr[r+1]++
	}
	for k := 0; k < n; k++ {
		f.lowPtr[k+1] += f.lowPtr[k]
	}
	f.lowRow = growInts(f.lowRow, nk)
	f.lowSrc = growInts(f.lowSrc, nk)
	clear(next)
	for c := 0; c < n; c++ {
		for p := f.kp[c]; p < f.kp[c+1]; p++ {
			r := f.ki[p]
			slot := f.lowPtr[r] + next[r]
			f.lowRow[slot] = c
			f.lowSrc[slot] = p
			next[r]++
		}
	}

	// Level sets by etree height.  parent[k] > k always, so a single
	// ascending pass settles every height; columns of equal height have
	// no ancestor relation and factor (and solve) independently.
	lev := next // reuse the scratch; heights start at zero
	clear(lev)
	f.nLevels = 0
	for k := 0; k < n; k++ {
		if p := f.parent[k]; p >= 0 && lev[k]+1 > lev[p] {
			lev[p] = lev[k] + 1
		}
		if lev[k]+1 > f.nLevels {
			f.nLevels = lev[k] + 1
		}
	}
	f.levelPtr = growInts(f.levelPtr, f.nLevels+1)
	clear(f.levelPtr)
	for k := 0; k < n; k++ {
		f.levelPtr[lev[k]+1]++
	}
	for l := 0; l < f.nLevels; l++ {
		f.levelPtr[l+1] += f.levelPtr[l]
	}
	f.levelNode = growInts(f.levelNode, n)
	fill := make([]int, f.nLevels)
	for k := 0; k < n; k++ {
		l := lev[k]
		f.levelNode[f.levelPtr[l]+fill[l]] = k
		fill[l]++
	}

	// The pattern moved: any row-major value cache is stale.
	f.numGen = 0
	f.rowGen = -1
}

// syncRowVal refreshes the row-major copy of lx after a numeric change
// (refactorization or cache restore), so the forward solve reads
// values sequentially.  One nnz(L) gather per factor amortized over
// the hundreds of ADMM iterations that solve against it.
func (f *ldltFactor) syncRowVal() {
	if f.rowGen == f.numGen {
		return
	}
	nnz := len(f.rowPos)
	if cap(f.rowVal) < nnz {
		f.rowVal = make([]float64, nnz)
	} else {
		f.rowVal = f.rowVal[:nnz]
	}
	for t, p := range f.rowPos {
		f.rowVal[t] = f.lx[p]
	}
	f.rowGen = f.numGen
}

// restore overwrites the numeric factor with a cached snapshot.
func (f *ldltFactor) restore(lx, d []float64) {
	copy(f.lx, lx)
	copy(f.d, d)
	f.numGen++
}

// growInts resizes an int scratch slice to exactly n elements, reusing
// capacity when it suffices (contents unspecified).
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// NNZL returns the fill count nnz(L) predicted by the symbolic phase,
// and NNZK the stored upper-triangular pattern size of K.  Their ratio
// is the fill estimate the Auto backend selection uses.
func (f *ldltFactor) NNZL() int { return f.lp[f.n] }
func (f *ldltFactor) NNZK() int { return len(f.ki) }

// errNotPositiveDefinite reports a zero pivot during the numeric
// phase; the caller falls back to the CG backend.
var errNotPositiveDefinite = errors.New("qp: ldlt: zero pivot (matrix not positive definite)")

// Parallel dispatch thresholds.  Below minParCols the whole matrix
// factors serially regardless of the worker budget; a level set is
// dispatched to the pool only when it holds at least minParLevelCols
// columns (tiny levels near the etree root run inline — scheduling
// them costs more than the flops).  Both are fixed constants, never
// derived from the worker count: they gate WHETHER work is dispatched,
// and the per-column kernel is schedule-invariant, so the bits match
// either way.
const (
	minParCols      = 256
	minParLevelCols = 32
)

// column computes column k of L and d[k] by the left-looking update:
// scatter the lower column k of K = base + ρ·AᵀA into the dense
// workspace, subtract one rank-1 contribution per nonzero of row k of
// L (ascending source column — the fixed accumulation order), then
// scale by the pivot.  It reads only columns that are finalized etree
// descendants of k and writes only lx[lp[k]:lp[k+1]] and d[k], so
// columns of one level set run concurrently without synchronization.
// w must be all-zero on entry and is restored to all-zero on every
// path, including the zero-pivot abort (reported as false).
func (f *ldltFactor) column(k int, rho float64, w []float64) bool {
	for t := f.lowPtr[k]; t < f.lowPtr[k+1]; t++ {
		s := f.lowSrc[t]
		w[f.lowRow[t]] = f.baseVal[s] + rho*f.ataVal[s]
	}
	dk := w[k]
	w[k] = 0
	for t := f.rowPtr[k]; t < f.rowPtr[k+1]; t++ {
		j, p := f.rowCol[t], f.rowPos[t]
		lkj := f.lx[p]
		s := f.d[j] * lkj
		dk -= lkj * s
		for q := p + 1; q < f.lp[j+1]; q++ {
			w[f.li[q]] -= f.lx[q] * s
		}
	}
	end := f.lp[k+1]
	if dk == 0 {
		for p := f.lp[k]; p < end; p++ {
			w[f.li[p]] = 0
		}
		return false
	}
	f.d[k] = dk
	for p := f.lp[k]; p < end; p++ {
		i := f.li[p]
		f.lx[p] = w[i] / dk
		w[i] = 0
	}
	return true
}

// Refactor runs the numeric phase serially for a concrete ρ.
func (f *ldltFactor) Refactor(rho float64) error { return f.RefactorW(rho, 1) }

// RefactorW runs the numeric phase on up to workers goroutines,
// scheduling elimination-tree level sets bottom-up: all columns of one
// level are independent, and every column a level depends on lives in
// a strictly lower level.  Results are bit-identical for any worker
// count because each column's arithmetic order is fixed by the
// symbolic views, not by the schedule.
func (f *ldltFactor) RefactorW(rho float64, workers int) error {
	n := f.n
	f.lastParLevels = 0
	workers = par.Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParCols {
		w := f.w
		clear(w) // w doubles as the solve vector, so it arrives dirty
		for k := 0; k < n; k++ {
			if !f.column(k, rho, w) {
				return fmt.Errorf("%w at column %d", errNotPositiveDefinite, k)
			}
		}
		f.numGen++
		return nil
	}
	if len(f.wk) < workers {
		old := len(f.wk)
		f.wk = append(f.wk, make([][]float64, workers-old)...)
		for i := old; i < workers; i++ {
			f.wk[i] = make([]float64, n)
		}
	}
	for l := 0; l < f.nLevels; l++ {
		lo, hi := f.levelPtr[l], f.levelPtr[l+1]
		if hi-lo < minParLevelCols {
			w := f.wk[0]
			for t := lo; t < hi; t++ {
				if k := f.levelNode[t]; !f.column(k, rho, w) {
					return fmt.Errorf("%w at column %d", errNotPositiveDefinite, k)
				}
			}
			continue
		}
		f.lastParLevels++
		var bad atomic.Int64
		bad.Store(int64(n))
		par.DoWorker(hi-lo, workers, func(worker, i int) {
			k := f.levelNode[lo+i]
			if !f.column(k, rho, f.wk[worker]) {
				// Smallest failing column wins, matching the serial
				// error regardless of completion order.
				for {
					old := bad.Load()
					if int64(k) >= old || bad.CompareAndSwap(old, int64(k)) {
						break
					}
				}
			}
		})
		if b := bad.Load(); b < int64(n) {
			return fmt.Errorf("%w at column %d", errNotPositiveDefinite, b)
		}
	}
	f.numGen++
	return nil
}

// Solve overwrites x with K⁻¹ b serially.  x and b may alias.
func (f *ldltFactor) Solve(x, b []float64) { f.SolveW(x, b, 1) }

// SolveW overwrites x with K⁻¹ b via permute → L solve → D scale → Lᵀ
// solve → unpermute, on up to workers goroutines.  The forward solve
// is pull-mode by ROW (row k gathers L[k,j]·w[j] in ascending j — the
// same element order as the classical push-mode sweep, so the serial
// bits are unchanged) and the backward solve is pull-mode by column;
// both parallelize over the same etree level sets as the
// factorization, forward bottom-up and backward top-down, each element
// computed by exactly one owner with its operand order fixed.  x and b
// may alias.
func (f *ldltFactor) SolveW(x, b []float64, workers int) {
	n := f.n
	w := f.w
	for k := 0; k < n; k++ {
		w[k] = b[f.perm[k]]
	}
	workers = par.Workers(workers)
	if workers > n {
		workers = n
	}
	f.syncRowVal()
	if workers <= 1 || n < minParCols {
		for k := 0; k < n; k++ {
			wk := w[k]
			for t := f.rowPtr[k]; t < f.rowPtr[k+1]; t++ {
				wk -= f.rowVal[t] * w[f.rowCol[t]]
			}
			w[k] = wk
		}
		for j := 0; j < n; j++ {
			w[j] /= f.d[j]
		}
		for j := n - 1; j >= 0; j-- {
			wj := w[j]
			for p := f.lp[j]; p < f.lp[j+1]; p++ {
				wj -= f.lx[p] * w[f.li[p]]
			}
			w[j] = wj
		}
	} else {
		fwd := func(k int) {
			wk := w[k]
			for t := f.rowPtr[k]; t < f.rowPtr[k+1]; t++ {
				wk -= f.rowVal[t] * w[f.rowCol[t]]
			}
			w[k] = wk
		}
		for l := 0; l < f.nLevels; l++ {
			lo, hi := f.levelPtr[l], f.levelPtr[l+1]
			if hi-lo < minParLevelCols {
				for t := lo; t < hi; t++ {
					fwd(f.levelNode[t])
				}
				continue
			}
			par.DoWorker(hi-lo, workers, func(_, i int) { fwd(f.levelNode[lo+i]) })
		}
		for j := 0; j < n; j++ {
			w[j] /= f.d[j]
		}
		bwd := func(j int) {
			wj := w[j]
			for p := f.lp[j]; p < f.lp[j+1]; p++ {
				wj -= f.lx[p] * w[f.li[p]]
			}
			w[j] = wj
		}
		for l := f.nLevels - 1; l >= 0; l-- {
			lo, hi := f.levelPtr[l], f.levelPtr[l+1]
			if hi-lo < minParLevelCols {
				for t := lo; t < hi; t++ {
					bwd(f.levelNode[t])
				}
				continue
			}
			par.DoWorker(hi-lo, workers, func(_, i int) { bwd(f.levelNode[lo+i]) })
		}
	}
	for k := 0; k < n; k++ {
		x[f.perm[k]] = w[k]
	}
}
