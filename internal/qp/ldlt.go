// Sparse LDLᵀ factorization of the ADMM KKT matrix K = P + σI + ρAᵀA.
//
// The factorization is split the classical way:
//
//   - the SYMBOLIC phase — merged nonzero pattern of P and AᵀA, a
//     fill-reducing ordering (generalized nested dissection vs reverse
//     Cuthill–McKee, whichever the exact symbolic count predicts is
//     cheaper), the elimination tree and per-column fill counts —
//     depends only on the sparsity structure and is computed once per
//     Solver, then refreshed when cut-row appends merge new cliques in;
//   - the NUMERIC phase re-runs only when ρ changes (adaptive-ρ steps
//     and stall restarts) or when constraint rows are appended, reusing
//     the symbolic analysis every time.
//
// Between refactorizations every ADMM x-step is two sparse triangular
// solves plus a diagonal scale — O(nnz(L)) with no inner iteration —
// which is what kills the conjugate-gradient loop on the cut-generation
// hot path: the cut QP's KKT matrix is τ-invariant, so whole bisection
// probes run on a single factor.
//
// The numeric phase is SUPERNODAL: the symbolic phase groups maximal
// chains of elimination-tree columns with identical below-diagonal
// pattern (relaxed by amalgamation up to a small fill budget, see
// amalgMaxTiny/amalgZeroFrac) into supernodes, and stores each
// supernode's columns contiguously in a dense column-major panel.  The
// left-looking kernel then assembles column k of L from the lower
// column k of K minus one update per nonzero of row k of L — external
// updates stream the SOURCE supernode's panel contiguously, internal
// updates are dense rank-1 sweeps inside the panel — and the
// triangular solves run as dense unit-lower diagonal-block solves plus
// dense panel-times-vector updates, two contiguous arrays instead of
// the scalar gather through li/lx.  Padded panel slots introduced by
// amalgamation hold exact zeros, whose updates are bitwise inert, so
// the per-element accumulation order (ascending source column, fixed
// by the symbolic views) is unchanged from the scalar kernel: results
// stay bit-identical no matter how supernodes are scheduled.  That is
// what lets the numeric phase and both triangular solves run in
// parallel across SUPERNODAL level sets (supernodes of equal height in
// the supernodal etree are mutually independent) while keeping the
// package-wide determinism contract: identical bits for workers 1..N.
// No pivoting is needed because K is symmetric positive definite for
// σ > 0, ρ > 0.
//
// Multi-RHS solves (SolveBatchW) stream the factor through cache once
// per supernode for the whole right-hand-side block instead of once
// per RHS — the wafer consensus loop batches its per-member x-steps
// through this path.
package qp

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/par"
)

// ldltFactor holds the symbolic analysis and, after Refactor, the
// numeric factors of K = P + σI + ρAᵀA under a fill-reducing
// permutation.
type ldltFactor struct {
	n int

	// perm maps factor position → original index; iperm is its inverse.
	perm, iperm []int

	// Upper-triangular pattern of the permuted K in compressed-sparse-
	// column form (diagonal included, rows sorted within a column).
	// The numeric values split into a ρ-independent part (P + σI) and
	// the AᵀA part, so a ρ change re-assembles K in O(nnz) without
	// touching P or A.
	kp      []int // column pointers, len n+1
	ki      []int // row indices, len nnz
	baseVal []float64
	ataVal  []float64

	// Symbolic output: elimination tree and per-column counts of L.
	parent []int
	lnz    []int
	lp     []int // column pointers of L, len n+1

	// Pattern of the strictly lower L (CSC, rows sorted ascending
	// within a column, filled symbolically) and the numeric diagonal D.
	// The numeric off-diagonal values live in the supernodal panels
	// (px); cscPos maps each CSC position into its panel slot.
	li []int
	d  []float64

	// Supernodal partition: supernode s covers columns
	// [sPtr[s], sPtr[s+1]) and snode[k] is the supernode of column k.
	// sRows[sRowPtr[s]:sRowPtr[s+1]] are the below-panel rows of
	// supernode s — the structure of its LAST column, which contains
	// every member column's structure below the panel (the columns form
	// an etree chain).
	sPtr    []int
	snode   []int
	sRowPtr []int
	sRows   []int

	// Dense panels: supernode s with width w and r below-panel rows is
	// a column-major w×(w+r) panel at px[pOff[s]:pOff[s]+w*(w+r)].
	// Column k of the supernode (kk = k−sPtr[s], leading dimension
	// ld = w+r) stores L[sPtr[s]+i, k] at slot kk*ld+i for i in (kk, w)
	// and L[sRows[i−w], k] at slot kk*ld+i for i in [w, ld).  Slots on
	// or above the diagonal and slots padded in by amalgamation hold
	// exact zeros, whose updates are bitwise inert.  cscPos[p] is the
	// panel slot of CSC position p; rowSlot[t] = cscPos[rowPos[t]]
	// addresses panels straight from the row-major view.  extEnd[k]
	// splits row k of L into external entries (source column in an
	// earlier supernode, t < extEnd[k]) and internal ones.
	pOff    []int
	px      []float64
	cscPos  []int
	rowSlot []int
	extEnd  []int

	// Supernodal elimination-tree level sets (the parallel schedule):
	// sLevelNode[sLevelPtr[l]:sLevelPtr[l+1]] are the supernodes of
	// height l, ascending; sLevelCols[l] is the total column count of
	// level l (the dispatch-gate metric, mirroring the scalar gate).
	sLevelPtr  []int
	sLevelNode []int
	sLevelCols []int
	nSLevels   int

	// Analytics from the supernodal symbolic phase: dense-equivalent
	// flop counts of one numeric factorization (Σ lnz·(lnz+3)) and of
	// one two-sweep triangular solve (4·Σ panel entries), the widest
	// supernode, and the longest below-panel row list (solve-scratch
	// size).
	denseFactorFlops int64
	denseSolveFlops  int64
	maxSuperCols     int
	maxRows          int

	// Row-major view of the strictly lower L: row k holds the columns
	// j < k with L[k,j] ≠ 0 (ascending j) and, aligned, the position of
	// that entry inside li.  This is the external-update list of the
	// left-looking numeric kernel and the gather list of the pull-mode
	// parallel forward solve.  rowVal caches the numeric values in
	// row-major order (rowVal[t] = px[rowSlot[t]], refreshed lazily per
	// numeric generation, parallel solves only) so the pull-mode sweep
	// streams values sequentially.
	rowPtr []int // len n+1
	rowCol []int
	rowPos []int
	rowVal []float64
	rowGen int // numeric generation rowVal was built from
	numGen int // bumped whenever lx changes

	// Lower-triangular view of the stored upper K pattern: lower column
	// k lists the columns c ≥ k with K[k,c] ≠ 0 (ascending, diagonal
	// first) and the source position in baseVal/ataVal, so the numeric
	// kernel scatters K's column without searching the upper CSC.
	lowPtr []int // len n+1
	lowRow []int
	lowSrc []int

	// Elimination-tree level sets: levelNode[levelPtr[l]:levelPtr[l+1]]
	// are the columns of etree height l, ascending.  Columns within a
	// level are mutually independent — the parallel schedule.
	levelPtr  []int
	levelNode []int
	nLevels   int

	// lastParLevels counts the SUPERNODAL level sets the most recent
	// RefactorW dispatched through the worker pool (0 on serial runs) —
	// the qp/parallel_factor_levels telemetry feed.
	lastParLevels int

	// Scratch reused across factorizations and solves.  w backs the
	// serial numeric kernel and every single-RHS solve; wk holds one
	// all-zero dense workspace per factorization worker (the supernode
	// kernel restores its workspace to zero on every path, so the
	// buffers never need re-clearing between levels); tb holds one
	// below-panel gather buffer (len maxRows) per solve worker; wb
	// holds one dense workspace per right-hand side of a batched
	// solve.
	flag []int
	w    []float64
	wk   [][]float64
	tb   [][]float64
	wb   [][]float64
}

// upperEntry is one upper-triangular entry contribution before
// compilation: (row, col) in permuted coordinates with row ≤ col.
type upperEntry struct {
	row, col int
	base     float64
	ata      float64
}

// newLDLTFactor runs the symbolic analysis for K = P + σI + ρAᵀA over
// the patterns of p (may be nil) and a (may have zero rows).  No
// numeric work happens here; call Refactor with a concrete ρ before
// Solve.
func newLDLTFactor(p *CSR, sigma float64, a *CSR, n int) *ldltFactor {
	f := &ldltFactor{n: n}
	adj := adjacencyOf(p, a, n)
	f.perm, _ = bestOrder(adj)
	f.iperm = make([]int, n)
	for k, v := range f.perm {
		f.iperm[v] = k
	}
	f.compilePattern(collectUpper(p, sigma, a, n, f.iperm))
	f.symbolic()
	return f
}

// bestOrder evaluates the two candidate fill-reducing orderings —
// nested dissection and reverse Cuthill–McKee — against the exact
// symbolic fill count and keeps the cheaper factor.  On the grid-
// Laplacian smoothness structure the O(√n) dissection separators beat
// RCM's bandwidth ordering decisively (every ADMM iteration sweeps
// nnz(L) twice, so predicted fill is exactly the cost that matters);
// RCM remains better on long path-like patterns.
func bestOrder(adj *CSR) ([]int, int) {
	n := adj.N
	iperm := make([]int, n)
	parent := make([]int, n)
	flag := make([]int, n)
	fill := func(perm []int) int {
		for k, v := range perm {
			iperm[v] = k
		}
		return fillOf(adj, perm, iperm, parent, flag)
	}
	nd := ndOrder(adj)
	rcm := rcmOrder(adj)
	fnd, frcm := fill(nd), fill(rcm)
	if fnd <= frcm {
		return nd, fnd
	}
	return rcm, frcm
}

// fillOf counts nnz(L) for a candidate ordering directly from the
// adjacency structure via the elimination-tree flag-path walk — no
// pattern compilation, O(nnz(K)) plus path lengths.
func fillOf(adj *CSR, perm, iperm, parent, flag []int) int {
	n := adj.N
	nnz := 0
	for k := 0; k < n; k++ {
		parent[k] = -1
		flag[k] = k
		v := perm[k]
		for p := adj.RowPtr[v]; p < adj.RowPtr[v+1]; p++ {
			i := iperm[adj.Col[p]]
			if i >= k {
				continue
			}
			for ; flag[i] != k; i = parent[i] {
				if parent[i] == -1 {
					parent[i] = k
				}
				nnz++
				flag[i] = k
			}
		}
	}
	return nnz
}

// adjacencyOf builds the symmetric adjacency structure of K (off-
// diagonal pattern of P plus the per-row cliques of A) as a CSR graph.
func adjacencyOf(p *CSR, a *CSR, n int) *CSR {
	t := NewTriplet(n, n)
	if p != nil {
		for r := 0; r < p.M; r++ {
			for k := p.RowPtr[r]; k < p.RowPtr[r+1]; k++ {
				if c := p.Col[k]; c != r {
					t.Add(r, c, 1)
				}
			}
		}
	}
	if a != nil {
		for r := 0; r < a.M; r++ {
			lo, hi := a.RowPtr[r], a.RowPtr[r+1]
			for i := lo; i < hi; i++ {
				for j := i + 1; j < hi; j++ {
					t.Add(a.Col[i], a.Col[j], 1)
					t.Add(a.Col[j], a.Col[i], 1)
				}
			}
		}
	}
	return t.Compile()
}

// rcmOrder returns a reverse Cuthill–McKee ordering of the graph: BFS
// from a low-degree peripheral node, neighbors visited in increasing-
// degree order, then the whole order reversed.  RCM concentrates the
// grid-Laplacian smoothness structure into a narrow band, which keeps
// LDLᵀ fill close to the bandwidth.
func rcmOrder(adj *CSR) []int {
	n := adj.N
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = adj.RowPtr[v+1] - adj.RowPtr[v]
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	nbuf := make([]int, 0, 16)
	for {
		// Start the next component at its minimum-degree node (a cheap
		// pseudo-peripheral choice that is deterministic).
		start := -1
		for v := 0; v < n; v++ {
			if !visited[v] && (start < 0 || deg[v] < deg[start]) {
				start = v
			}
		}
		if start < 0 {
			break
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			order = append(order, v)
			nbuf = nbuf[:0]
			for k := adj.RowPtr[v]; k < adj.RowPtr[v+1]; k++ {
				if w := adj.Col[k]; !visited[w] {
					visited[w] = true
					nbuf = append(nbuf, w)
				}
			}
			sort.Slice(nbuf, func(a, b int) bool {
				if deg[nbuf[a]] != deg[nbuf[b]] {
					return deg[nbuf[a]] < deg[nbuf[b]]
				}
				return nbuf[a] < nbuf[b]
			})
			queue = append(queue, nbuf...)
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// ndOrder returns a generalized nested-dissection ordering (George &
// Liu's automatic scheme): recursively split each subgraph on the
// middle level set of a pseudo-peripheral BFS, number the separator
// last, and Cuthill–McKee the small leaves.  On a w×w grid Laplacian
// the separators are O(w) while RCM's band is O(w) PER ROW, so the
// factor fill drops from O(n·w) toward O(n log n).  Everything is
// index-deterministic: component roots and BFS tie-breaks follow
// vertex order, never map iteration.
func ndOrder(adj *CSR) []int {
	n := adj.N
	const leafSize = 32
	order := make([]int, 0, n)
	sub := make([]int, n) // vertex → current subgraph id (always ≥ 1)
	for i := range sub {
		sub[i] = 1
	}
	level := make([]int, n)
	queue := make([]int, 0, n)
	nextID := 2

	// bfs runs a breadth-first sweep from root restricted to vertices
	// with sub[v] == id, filling queue with the visited set in order
	// and level with BFS depths.  Returns the number of levels.
	bfs := func(root, id int) int {
		queue = queue[:0]
		queue = append(queue, root)
		level[root] = 0
		sub[root] = -id // negative marks visited-within-this-sweep
		depth := 0
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for k := adj.RowPtr[v]; k < adj.RowPtr[v+1]; k++ {
				if w := adj.Col[k]; sub[w] == id {
					sub[w] = -id
					level[w] = level[v] + 1
					depth = level[w]
					queue = append(queue, w)
				}
			}
		}
		for _, v := range queue {
			sub[v] = id
		}
		return depth + 1
	}

	// cmLeaf appends a Cuthill–McKee order of the (possibly
	// disconnected) subgraph id to order.
	var nbuf []int
	cmLeaf := func(verts []int, id int) {
		for {
			root := -1
			for _, v := range verts {
				if sub[v] != id {
					continue
				}
				if root < 0 || adj.RowPtr[v+1]-adj.RowPtr[v] < adj.RowPtr[root+1]-adj.RowPtr[root] {
					root = v
				}
			}
			if root < 0 {
				return
			}
			queue = queue[:0]
			queue = append(queue, root)
			sub[root] = -id
			for qi := 0; qi < len(queue); qi++ {
				v := queue[qi]
				order = append(order, v)
				nbuf = nbuf[:0]
				for k := adj.RowPtr[v]; k < adj.RowPtr[v+1]; k++ {
					if w := adj.Col[k]; sub[w] == id {
						sub[w] = -id
						nbuf = append(nbuf, w)
					}
				}
				sort.Ints(nbuf)
				queue = append(queue, nbuf...)
			}
		}
	}

	var rec func(verts []int, id int)
	rec = func(verts []int, id int) {
		if len(verts) <= leafSize {
			cmLeaf(verts, id)
			return
		}
		// Pseudo-peripheral root: BFS from the min-degree vertex, then
		// once more from the deepest last-visited vertex.
		root := verts[0]
		for _, v := range verts {
			if adj.RowPtr[v+1]-adj.RowPtr[v] < adj.RowPtr[root+1]-adj.RowPtr[root] {
				root = v
			}
		}
		depth := bfs(root, id)
		if len(queue) < len(verts) {
			// Disconnected subgraph: order the components separately.
			comp := append([]int(nil), queue...)
			compID := nextID
			nextID++
			for _, v := range comp {
				sub[v] = compID
			}
			rest := make([]int, 0, len(verts)-len(comp))
			for _, v := range verts {
				if sub[v] == id {
					rest = append(rest, v)
				}
			}
			restID := nextID
			nextID++
			for _, v := range rest {
				sub[v] = restID
			}
			rec(comp, compID)
			rec(rest, restID)
			return
		}
		if far := queue[len(queue)-1]; far != root {
			depth = bfs(far, id)
		}
		if depth < 3 {
			cmLeaf(verts, id)
			return
		}
		mid := depth / 2
		left := make([]int, 0, len(verts))
		right := make([]int, 0, len(verts))
		sep := make([]int, 0, 64)
		for _, v := range queue {
			switch {
			case level[v] < mid:
				left = append(left, v)
			case level[v] > mid:
				right = append(right, v)
			default:
				sep = append(sep, v)
			}
		}
		leftID, rightID := nextID, nextID+1
		nextID += 2
		for _, v := range left {
			sub[v] = leftID
		}
		for _, v := range right {
			sub[v] = rightID
		}
		rec(left, leftID)
		rec(right, rightID)
		sort.Ints(sep)
		order = append(order, sep...)
	}

	all := make([]int, n)
	for v := range all {
		all[v] = v
	}
	rec(all, 1)
	return order
}

// collectUpper gathers the upper-triangular entries of the permuted K,
// with the P + σI contribution and the AᵀA contribution kept separate.
// P must be stored symmetrically (both halves); only its i ≤ j half is
// read so each logical entry contributes once.
func collectUpper(p *CSR, sigma float64, a *CSR, n int, iperm []int) []upperEntry {
	var ents []upperEntry
	put := func(i, j int, base, ata float64) {
		pi, pj := iperm[i], iperm[j]
		if pi > pj {
			pi, pj = pj, pi
		}
		ents = append(ents, upperEntry{row: pi, col: pj, base: base, ata: ata})
	}
	for j := 0; j < n; j++ {
		put(j, j, sigma, 0)
	}
	if p != nil {
		for r := 0; r < p.M; r++ {
			for k := p.RowPtr[r]; k < p.RowPtr[r+1]; k++ {
				if c := p.Col[k]; r <= c {
					put(r, c, p.Val[k], 0)
				}
			}
		}
	}
	if a != nil {
		ents = append(ents, ataEntries(a, 0, iperm)...)
	}
	return ents
}

// ataEntries emits the upper-triangular AᵀA contributions of rows
// [fromRow, a.M) in permuted coordinates: each constraint row is a
// clique over its columns.
func ataEntries(a *CSR, fromRow int, iperm []int) []upperEntry {
	var ents []upperEntry
	for r := fromRow; r < a.M; r++ {
		lo, hi := a.RowPtr[r], a.RowPtr[r+1]
		for i := lo; i < hi; i++ {
			for j := i; j < hi; j++ {
				pi, pj := iperm[a.Col[i]], iperm[a.Col[j]]
				if pi > pj {
					pi, pj = pj, pi
				}
				ents = append(ents, upperEntry{row: pi, col: pj, ata: a.Val[i] * a.Val[j]})
			}
		}
	}
	return ents
}

// compilePattern sorts and deduplicates entries into the CSC-upper
// pattern with the two aligned value streams.
func (f *ldltFactor) compilePattern(ents []upperEntry) {
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].col != ents[b].col {
			return ents[a].col < ents[b].col
		}
		return ents[a].row < ents[b].row
	})
	f.kp = make([]int, f.n+1)
	f.ki = f.ki[:0]
	f.baseVal = f.baseVal[:0]
	f.ataVal = f.ataVal[:0]
	for i := 0; i < len(ents); {
		j := i + 1
		base, ata := ents[i].base, ents[i].ata
		for j < len(ents) && ents[j].col == ents[i].col && ents[j].row == ents[i].row {
			base += ents[j].base
			ata += ents[j].ata
			j++
		}
		f.ki = append(f.ki, ents[i].row)
		f.baseVal = append(f.baseVal, base)
		f.ataVal = append(f.ataVal, ata)
		f.kp[ents[i].col+1]++
		i = j
	}
	for c := 0; c < f.n; c++ {
		f.kp[c+1] += f.kp[c]
	}
}

// mergeAppended folds extra AᵀA entries (already permuted, upper, from
// appended constraint rows) into the existing pattern in place: the
// two sorted streams merge column by column, existing slots accumulate
// and new slots carry a zero base value.  The ordering is NOT
// recomputed — appended cut rows ride on the original permutation —
// but the elimination tree and fill counts are refreshed, which is the
// cheap part of the analysis.
func (f *ldltFactor) mergeAppended(extra []upperEntry) {
	if len(extra) == 0 {
		return
	}
	sort.Slice(extra, func(a, b int) bool {
		if extra[a].col != extra[b].col {
			return extra[a].col < extra[b].col
		}
		return extra[a].row < extra[b].row
	})
	// Deduplicate the extra stream first.
	dst := 0
	for i := 0; i < len(extra); {
		j := i + 1
		e := extra[i]
		for j < len(extra) && extra[j].col == e.col && extra[j].row == e.row {
			e.ata += extra[j].ata
			j++
		}
		extra[dst] = e
		dst++
		i = j
	}
	extra = extra[:dst]

	newKP := make([]int, f.n+1)
	newKI := make([]int, 0, len(f.ki)+len(extra))
	newBase := make([]float64, 0, cap(newKI))
	newATA := make([]float64, 0, cap(newKI))
	xi := 0
	for c := 0; c < f.n; c++ {
		p := f.kp[c]
		end := f.kp[c+1]
		for p < end || (xi < len(extra) && extra[xi].col == c) {
			switch {
			case xi >= len(extra) || extra[xi].col != c || (p < end && f.ki[p] < extra[xi].row):
				newKI = append(newKI, f.ki[p])
				newBase = append(newBase, f.baseVal[p])
				newATA = append(newATA, f.ataVal[p])
				p++
			case p < end && f.ki[p] == extra[xi].row:
				newKI = append(newKI, f.ki[p])
				newBase = append(newBase, f.baseVal[p])
				newATA = append(newATA, f.ataVal[p]+extra[xi].ata)
				p++
				xi++
			default:
				newKI = append(newKI, extra[xi].row)
				newBase = append(newBase, 0)
				newATA = append(newATA, extra[xi].ata)
				xi++
			}
		}
		newKP[c+1] = len(newKI)
	}
	f.kp, f.ki, f.baseVal, f.ataVal = newKP, newKI, newBase, newATA
	f.symbolic()
}

// AppendRows extends the pattern with the AᵀA cliques of rows
// [fromRow, a.M) of the (scaled) constraint matrix, recomputes the
// fill-reducing ordering for the merged pattern, and re-runs the
// symbolic analysis.  Re-ordering costs one graph traversal per append
// — appends are rare (once per cut round) while every ADMM iteration
// pays nnz(L) twice, and cut cliques merged into a stale permutation
// can double the fill.  The caller must Refactor before the next
// Solve.
func (f *ldltFactor) AppendRows(a *CSR, fromRow int) {
	f.mergeAppended(ataEntries(a, fromRow, f.iperm))
	f.reorder()
}

// reorder recomputes the fill-reducing permutation from the current
// merged pattern and recompiles it, composing the new relative order
// onto the existing permutation.  Needs no access to the original P
// and A: the stored pattern and split values carry everything.
func (f *ldltFactor) reorder() {
	n := f.n
	t := NewTriplet(n, n)
	for c := 0; c < n; c++ {
		for p := f.kp[c]; p < f.kp[c+1]; p++ {
			if r := f.ki[p]; r != c {
				t.Add(r, c, 1)
				t.Add(c, r, 1)
			}
		}
	}
	rel, relFill := bestOrder(t.Compile())
	if relFill >= f.lp[n] {
		return // the merged-in-place ordering is already at least as good
	}
	irel := make([]int, n)
	for k, v := range rel {
		irel[v] = k
	}
	ents := make([]upperEntry, 0, len(f.ki))
	for c := 0; c < n; c++ {
		for p := f.kp[c]; p < f.kp[c+1]; p++ {
			pi, pj := irel[f.ki[p]], irel[c]
			if pi > pj {
				pi, pj = pj, pi
			}
			ents = append(ents, upperEntry{row: pi, col: pj, base: f.baseVal[p], ata: f.ataVal[p]})
		}
	}
	newPerm := make([]int, n)
	for k := 0; k < n; k++ {
		newPerm[k] = f.perm[rel[k]]
	}
	f.perm = newPerm
	for k, v := range f.perm {
		f.iperm[v] = k
	}
	f.compilePattern(ents)
	f.symbolic()
}

// symbolic computes the elimination tree and column counts of L for
// the current pattern, fills the pattern of L explicitly (row indices,
// row-major view), compiles the lower-triangular K view and the etree
// level sets, and sizes the numeric arrays.  After symbolic returns,
// the numeric phase touches only lx and d — which is what makes both
// factor caching (snapshot/restore of lx, d) and level-parallel
// factorization (fixed disjoint write ranges per column) sound.
func (f *ldltFactor) symbolic() {
	n := f.n
	if f.parent == nil {
		f.parent = make([]int, n)
		f.lnz = make([]int, n)
		f.lp = make([]int, n+1)
		f.flag = make([]int, n)
		f.w = make([]float64, n)
	}
	for k := 0; k < n; k++ {
		f.parent[k] = -1
		f.flag[k] = k
		f.lnz[k] = 0
		for p := f.kp[k]; p < f.kp[k+1]; p++ {
			for i := f.ki[p]; f.flag[i] != k; i = f.parent[i] {
				if f.parent[i] == -1 {
					f.parent[i] = k
				}
				f.lnz[i]++
				f.flag[i] = k
			}
		}
	}
	f.lp[0] = 0
	for k := 0; k < n; k++ {
		f.lp[k+1] = f.lp[k] + f.lnz[k]
	}
	nnz := f.lp[n]
	if cap(f.li) < nnz {
		f.li = make([]int, nnz)
	} else {
		f.li = f.li[:nnz]
	}
	if f.d == nil {
		f.d = make([]float64, n)
	}

	// Fill li by a second flag-path walk: visiting rows k in ascending
	// order appends k to every column on the path, so each column's row
	// indices come out sorted without a sort.
	next := make([]int, n)
	for k := 0; k < n; k++ {
		f.flag[k] = -1
	}
	for k := 0; k < n; k++ {
		f.flag[k] = k
		for p := f.kp[k]; p < f.kp[k+1]; p++ {
			for i := f.ki[p]; f.flag[i] != k; i = f.parent[i] {
				f.li[f.lp[i]+next[i]] = k
				next[i]++
				f.flag[i] = k
			}
		}
	}

	// Row-major view of L.  Iterating source columns in ascending order
	// makes each row's column list ascending — the fixed accumulation
	// order of the numeric kernel and the forward solve.
	f.rowPtr = growInts(f.rowPtr, n+1)
	clear(f.rowPtr)
	for _, r := range f.li {
		f.rowPtr[r+1]++
	}
	for k := 0; k < n; k++ {
		f.rowPtr[k+1] += f.rowPtr[k]
	}
	f.rowCol = growInts(f.rowCol, nnz)
	f.rowPos = growInts(f.rowPos, nnz)
	clear(next)
	for j := 0; j < n; j++ {
		for p := f.lp[j]; p < f.lp[j+1]; p++ {
			r := f.li[p]
			slot := f.rowPtr[r] + next[r]
			f.rowCol[slot] = j
			f.rowPos[slot] = p
			next[r]++
		}
	}

	// Lower-triangular view of K: transpose the stored upper CSC into
	// per-column (row ≥ diagonal) gather lists carrying source
	// positions into baseVal/ataVal.  σI puts the diagonal in every
	// column, and ascending source columns keep it first.
	nk := len(f.ki)
	f.lowPtr = growInts(f.lowPtr, n+1)
	clear(f.lowPtr)
	for _, r := range f.ki {
		f.lowPtr[r+1]++
	}
	for k := 0; k < n; k++ {
		f.lowPtr[k+1] += f.lowPtr[k]
	}
	f.lowRow = growInts(f.lowRow, nk)
	f.lowSrc = growInts(f.lowSrc, nk)
	clear(next)
	for c := 0; c < n; c++ {
		for p := f.kp[c]; p < f.kp[c+1]; p++ {
			r := f.ki[p]
			slot := f.lowPtr[r] + next[r]
			f.lowRow[slot] = c
			f.lowSrc[slot] = p
			next[r]++
		}
	}

	// Level sets by etree height.  parent[k] > k always, so a single
	// ascending pass settles every height; columns of equal height have
	// no ancestor relation and factor (and solve) independently.
	lev := next // reuse the scratch; heights start at zero
	clear(lev)
	f.nLevels = 0
	for k := 0; k < n; k++ {
		if p := f.parent[k]; p >= 0 && lev[k]+1 > lev[p] {
			lev[p] = lev[k] + 1
		}
		if lev[k]+1 > f.nLevels {
			f.nLevels = lev[k] + 1
		}
	}
	f.levelPtr = growInts(f.levelPtr, f.nLevels+1)
	clear(f.levelPtr)
	for k := 0; k < n; k++ {
		f.levelPtr[lev[k]+1]++
	}
	for l := 0; l < f.nLevels; l++ {
		f.levelPtr[l+1] += f.levelPtr[l]
	}
	f.levelNode = growInts(f.levelNode, n)
	fill := make([]int, f.nLevels)
	for k := 0; k < n; k++ {
		l := lev[k]
		f.levelNode[f.levelPtr[l]+fill[l]] = k
		fill[l]++
	}

	// Supernodal partition, dense panels and the supernodal schedule —
	// everything the blocked numeric kernels address through.
	f.buildSupernodes()

	// The pattern moved: any row-major value cache is stale.
	f.numGen = 0
	f.rowGen = -1
}

// buildSupernodes partitions the columns into supernodes, lays out the
// dense panels, and compiles every index view the blocked kernels use.
//
// Detection starts from FUNDAMENTAL supernodes — column k extends the
// block of k−1 exactly when parent[k−1] == k and lnz[k−1] == lnz[k]+1,
// i.e. column k−1's below-diagonal structure is {k} ∪ struct(k) — and
// then amalgamates: a group [a..b] absorbs the next fundamental block
// ending at c when parent[b] == b+1 (the chain continues) and either
// the merged width stays at most amalgMaxTiny, or the padding the
// merge introduces stays within amalgZeroFrac of the merged panel
// (width·R + width·(width−1)/2 entries with R = lnz[c], versus
// Σ lnz[k] true entries).  Because every group is an etree chain,
// struct(k) below the group is contained in the structure of the LAST
// column, so the last column's row list is the below-panel row list of
// the whole supernode and padded slots hold exact zeros.
func (f *ldltFactor) buildSupernodes() {
	n := f.n
	nnz := f.lp[n]

	// Fundamental block starts (sentinel n closes the last block).
	fund := make([]int, 0, n+1)
	for k := 0; k < n; k++ {
		if k == 0 || f.parent[k-1] != k || f.lnz[k-1] != f.lnz[k]+1 {
			fund = append(fund, k)
		}
	}
	fund = append(fund, n)

	// Amalgamation over fundamental blocks, greedy left to right.
	lnzSum := make([]int, n+1)
	for k := 0; k < n; k++ {
		lnzSum[k+1] = lnzSum[k] + f.lnz[k]
	}
	sPtr := make([]int, 0, len(fund))
	sPtr = append(sPtr, 0)
	for bi := 0; bi+1 < len(fund); {
		a := fund[bi]
		ci := bi + 1
		for ci+1 < len(fund) {
			b := fund[ci] - 1   // last column of the current group
			c := fund[ci+1] - 1 // last column of the candidate block
			if f.parent[b] != b+1 {
				break
			}
			width := c - a + 1
			panelEntries := width*f.lnz[c] + width*(width-1)/2
			padding := panelEntries - (lnzSum[c+1] - lnzSum[a])
			frac := float64(padding) / float64(panelEntries)
			if frac > amalgZeroFrac && (width > amalgMaxTiny || frac > amalgTinyFrac) {
				break
			}
			ci++
		}
		sPtr = append(sPtr, fund[ci])
		bi = ci
	}
	f.sPtr = sPtr
	ns := len(sPtr) - 1

	f.snode = growInts(f.snode, n)
	for s := 0; s < ns; s++ {
		for k := sPtr[s]; k < sPtr[s+1]; k++ {
			f.snode[k] = s
		}
	}

	// Below-panel rows: the structure of each supernode's last column.
	f.sRowPtr = growInts(f.sRowPtr, ns+1)
	f.sRowPtr[0] = 0
	for s := 0; s < ns; s++ {
		f.sRowPtr[s+1] = f.sRowPtr[s] + f.lnz[sPtr[s+1]-1]
	}
	f.sRows = growInts(f.sRows, f.sRowPtr[ns])
	for s := 0; s < ns; s++ {
		last := sPtr[s+1] - 1
		copy(f.sRows[f.sRowPtr[s]:f.sRowPtr[s+1]], f.li[f.lp[last]:f.lp[last+1]])
	}

	// Panel offsets and storage.  Padded slots must be exact zeros and
	// the numeric kernels only ever write true-entry slots, so the
	// buffer is cleared once here and stays clean forever after.
	f.pOff = growInts(f.pOff, ns+1)
	off := 0
	for s := 0; s < ns; s++ {
		f.pOff[s] = off
		width := sPtr[s+1] - sPtr[s]
		off += width * (width + f.sRowPtr[s+1] - f.sRowPtr[s])
	}
	f.pOff[ns] = off
	if cap(f.px) < off {
		f.px = make([]float64, off)
	} else {
		f.px = f.px[:off]
		clear(f.px)
	}

	// CSC position → panel slot.  Rows inside the panel map by offset;
	// rows below merge against the sorted sRows list.
	f.cscPos = growInts(f.cscPos, nnz)
	for s := 0; s < ns; s++ {
		c0, c1 := sPtr[s], sPtr[s+1]
		width := c1 - c0
		srows := f.sRows[f.sRowPtr[s]:f.sRowPtr[s+1]]
		ld := width + len(srows)
		for k := c0; k < c1; k++ {
			colBase := f.pOff[s] + (k-c0)*ld
			ri := 0
			for p := f.lp[k]; p < f.lp[k+1]; p++ {
				if i := f.li[p]; i < c1 {
					f.cscPos[p] = colBase + (i - c0)
				} else {
					for srows[ri] != i {
						ri++
					}
					f.cscPos[p] = colBase + width + ri
				}
			}
		}
	}
	f.rowSlot = growInts(f.rowSlot, nnz)
	for t, p := range f.rowPos {
		f.rowSlot[t] = f.cscPos[p]
	}

	// Split each L row into external (earlier supernode) and internal
	// entries; rowCol is ascending, so one scan finds the boundary.
	f.extEnd = growInts(f.extEnd, n)
	for k := 0; k < n; k++ {
		c0 := sPtr[f.snode[k]]
		t := f.rowPtr[k]
		for t < f.rowPtr[k+1] && f.rowCol[t] < c0 {
			t++
		}
		f.extEnd[k] = t
	}

	// Supernodal etree level sets by height.  The parent supernode of s
	// is the supernode of parent[last column of s] (always > s, columns
	// being contiguous), so one ascending pass settles all heights.
	slev := make([]int, ns)
	f.nSLevels = 0
	for s := 0; s < ns; s++ {
		if p := f.parent[sPtr[s+1]-1]; p >= 0 {
			if sp := f.snode[p]; slev[s]+1 > slev[sp] {
				slev[sp] = slev[s] + 1
			}
		}
		if slev[s]+1 > f.nSLevels {
			f.nSLevels = slev[s] + 1
		}
	}
	f.sLevelPtr = growInts(f.sLevelPtr, f.nSLevels+1)
	clear(f.sLevelPtr)
	for s := 0; s < ns; s++ {
		f.sLevelPtr[slev[s]+1]++
	}
	for l := 0; l < f.nSLevels; l++ {
		f.sLevelPtr[l+1] += f.sLevelPtr[l]
	}
	f.sLevelNode = growInts(f.sLevelNode, ns)
	f.sLevelCols = growInts(f.sLevelCols, f.nSLevels)
	clear(f.sLevelCols)
	fillS := make([]int, f.nSLevels)
	for s := 0; s < ns; s++ {
		l := slev[s]
		f.sLevelNode[f.sLevelPtr[l]+fillS[l]] = s
		fillS[l]++
		f.sLevelCols[l] += sPtr[s+1] - sPtr[s]
	}

	// Analytics and scratch sizing.
	f.maxSuperCols, f.maxRows = 0, 0
	var solveFlops, factorFlops int64
	for s := 0; s < ns; s++ {
		width := sPtr[s+1] - sPtr[s]
		r := f.sRowPtr[s+1] - f.sRowPtr[s]
		if width > f.maxSuperCols {
			f.maxSuperCols = width
		}
		if r > f.maxRows {
			f.maxRows = r
		}
		solveFlops += int64(4) * int64(width*(width-1)/2+width*r)
	}
	for k := 0; k < n; k++ {
		factorFlops += int64(f.lnz[k]) * int64(f.lnz[k]+3)
	}
	f.denseSolveFlops = solveFlops
	f.denseFactorFlops = factorFlops
	f.tb = nil // gather buffers are sized maxRows, which just moved
}

// syncRowVal refreshes the row-major copy of the factor values after a
// numeric change (refactorization or cache restore).  Only the
// PARALLEL pull-mode forward solve reads it — the serial sweeps stream
// the panels directly — so the nnz(L) gather is paid lazily, never on
// the serial hot path.
func (f *ldltFactor) syncRowVal() {
	if f.rowGen == f.numGen {
		return
	}
	nnz := len(f.rowSlot)
	if cap(f.rowVal) < nnz {
		f.rowVal = make([]float64, nnz)
	} else {
		f.rowVal = f.rowVal[:nnz]
	}
	for t, slot := range f.rowSlot {
		f.rowVal[t] = f.px[slot]
	}
	f.rowGen = f.numGen
}

// restore overwrites the numeric factor with a cached snapshot of the
// panel storage and diagonal.
// adopt makes px and d the factor's live numeric arrays without
// copying; the caller manages buffer ownership.  Both must be full
// same-pattern arrays: px with the padded slots zero (any buffer that
// held a factor of this pattern qualifies — the kernels never write
// padding — as does a fresh allocation), d of length n.
func (f *ldltFactor) adopt(px, d []float64) {
	f.px = px
	f.d = d
	f.numGen++
}

// factorL materializes the factor's off-diagonal values in CSC order
// (aligned with li/lp) — the layout FactorEntries and the golden
// factor-regression tests expect.
func (f *ldltFactor) factorL() []float64 {
	l := make([]float64, f.lp[f.n])
	for p, slot := range f.cscPos {
		l[p] = f.px[slot]
	}
	return l
}

// growInts resizes an int scratch slice to exactly n elements, reusing
// capacity when it suffices (contents unspecified).
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// NNZL returns the fill count nnz(L) predicted by the symbolic phase,
// and NNZK the stored upper-triangular pattern size of K.  Their ratio
// is the fill estimate the Auto backend selection uses.
func (f *ldltFactor) NNZL() int { return f.lp[f.n] }
func (f *ldltFactor) NNZK() int { return len(f.ki) }

// errNotPositiveDefinite reports a zero pivot during the numeric
// phase; the caller falls back to the CG backend.
var errNotPositiveDefinite = errors.New("qp: ldlt: zero pivot (matrix not positive definite)")

// Parallel dispatch thresholds.  Below minParCols total columns the
// whole matrix factors and solves serially regardless of the worker
// budget; a supernodal level set is dispatched to the pool only when
// it covers at least minParLevelCols COLUMNS (sLevelCols — tiny levels
// near the root run inline, because scheduling them costs more than
// the flops; gating on column count rather than supernode count keeps
// the dispatch density of the old scalar schedule).  Both are fixed
// constants, never derived from the worker count: they gate WHETHER
// work is dispatched, and the per-supernode kernels are
// schedule-invariant, so the bits match either way.
//
// Amalgamation thresholds.  A supernode absorbs the next fundamental
// block while the explicit zeros the merge pads into the panel stay
// within amalgZeroFrac of the merged panel's entries; merges that keep
// the width at most amalgMaxTiny columns get the looser amalgTinyFrac
// budget instead, because turning width-1/2 chains into small panels
// buys more in loop overhead than the padding costs in inert flops.
// Larger values make wider panels (better dense-kernel throughput,
// more padding); all three are structure-only decisions, so they
// cannot affect result bits — padded slots hold exact zeros whose
// updates are bitwise inert.
const (
	minParCols      = 256
	minParLevelCols = 32
	amalgMaxTiny    = 8
	amalgZeroFrac   = 0.125
	amalgTinyFrac   = 0.25
)

// factorSuper runs the left-looking numeric kernel over all columns of
// supernode s: scatter the lower column k of K = base + ρ·AᵀA into the
// dense workspace, subtract one rank-1 contribution per nonzero of row
// k of L — EXTERNAL sources (earlier supernodes, t < extEnd[k]) walk
// the source panel's contiguous below-panel rows, INTERNAL sources
// (earlier columns of this panel) are dense in-panel sweeps — then
// scale by the pivot and gather into the panel column.  Per target
// element the subtraction order is ascending source column, exactly
// the scalar kernel's order (row k of L lists external then internal
// columns, both ascending), and padded source slots contribute exact-
// zero updates, so the bits match the scalar reference.  It reads only
// panels of finalized supernodal-etree descendants and writes only its
// own panel and d range, so supernodes of one level set run
// concurrently without synchronization.  w must be all-zero on entry
// and is restored to all-zero on every path, including the zero-pivot
// abort.  Returns the failing column, or −1 on success.
func (f *ldltFactor) factorSuper(s int, rho float64, w []float64) int {
	c0, c1 := f.sPtr[s], f.sPtr[s+1]
	width := c1 - c0
	srows := f.sRows[f.sRowPtr[s]:f.sRowPtr[s+1]]
	ld := width + len(srows)
	base := f.pOff[s]
	px := f.px
	for k := c0; k < c1; k++ {
		kk := k - c0
		for t := f.lowPtr[k]; t < f.lowPtr[k+1]; t++ {
			src := f.lowSrc[t]
			w[f.lowRow[t]] = f.baseVal[src] + rho*f.ataVal[src]
		}
		dk := w[k]
		w[k] = 0
		for t := f.rowPtr[k]; t < f.extEnd[k]; t++ {
			slot := f.rowSlot[t]
			lkj := px[slot]
			j := f.rowCol[t]
			sj := f.d[j] * lkj
			dk -= lkj * sj
			// Row k sits strictly below the source supernode's columns,
			// so it is always a below-panel row there: stream the rest
			// of that contiguous row list.
			js := f.snode[j]
			jw := f.sPtr[js+1] - f.sPtr[js]
			jrows := f.sRows[f.sRowPtr[js]:f.sRowPtr[js+1]]
			colStart := f.pOff[js] + (j-f.sPtr[js])*(jw+len(jrows))
			rr := slot - colStart - jw
			col := px[colStart+jw : colStart+jw+len(jrows)]
			for r := rr + 1; r < len(jrows); r++ {
				w[jrows[r]] -= col[r] * sj
			}
		}
		for jj := 0; jj < kk; jj++ {
			jcol := base + jj*ld
			lkj := px[jcol+kk]
			sj := f.d[c0+jj] * lkj
			dk -= lkj * sj
			for r := kk + 1; r < width; r++ {
				w[c0+r] -= px[jcol+r] * sj
			}
			bcol := px[jcol+width : jcol+ld]
			for r, i := range srows {
				w[i] -= bcol[r] * sj
			}
		}
		end := f.lp[k+1]
		if dk == 0 {
			for p := f.lp[k]; p < end; p++ {
				w[f.li[p]] = 0
			}
			return k
		}
		f.d[k] = dk
		for p := f.lp[k]; p < end; p++ {
			i := f.li[p]
			px[f.cscPos[p]] = w[i] / dk
			w[i] = 0
		}
	}
	return -1
}

// Refactor runs the numeric phase serially for a concrete ρ.
func (f *ldltFactor) Refactor(rho float64) error { return f.RefactorW(rho, 1) }

// RefactorW runs the numeric phase on up to workers goroutines,
// scheduling supernodal level sets bottom-up: all supernodes of one
// level are independent, and every panel a level depends on lives in a
// strictly lower level.  Results are bit-identical for any worker
// count because each supernode's arithmetic order is fixed by the
// symbolic views, not by the schedule.
func (f *ldltFactor) RefactorW(rho float64, workers int) error {
	n := f.n
	ns := len(f.sPtr) - 1
	f.lastParLevels = 0
	workers = par.Workers(workers)
	if workers > ns {
		workers = ns
	}
	if workers <= 1 || n < minParCols {
		w := f.w
		clear(w) // w doubles as the solve vector, so it arrives dirty
		for s := 0; s < ns; s++ {
			if k := f.factorSuper(s, rho, w); k >= 0 {
				return fmt.Errorf("%w at column %d", errNotPositiveDefinite, k)
			}
		}
		f.numGen++
		return nil
	}
	if len(f.wk) < workers {
		old := len(f.wk)
		f.wk = append(f.wk, make([][]float64, workers-old)...)
		for i := old; i < workers; i++ {
			f.wk[i] = make([]float64, n)
		}
	}
	for l := 0; l < f.nSLevels; l++ {
		lo, hi := f.sLevelPtr[l], f.sLevelPtr[l+1]
		if f.sLevelCols[l] < minParLevelCols {
			w := f.wk[0]
			for t := lo; t < hi; t++ {
				if k := f.factorSuper(f.sLevelNode[t], rho, w); k >= 0 {
					return fmt.Errorf("%w at column %d", errNotPositiveDefinite, k)
				}
			}
			continue
		}
		f.lastParLevels++
		var bad atomic.Int64
		bad.Store(int64(n))
		par.DoWorker(hi-lo, workers, func(worker, i int) {
			if k := f.factorSuper(f.sLevelNode[lo+i], rho, f.wk[worker]); k >= 0 {
				// Smallest failing column wins, matching the serial
				// error regardless of completion order.
				for {
					old := bad.Load()
					if int64(k) >= old || bad.CompareAndSwap(old, int64(k)) {
						break
					}
				}
			}
		})
		if b := bad.Load(); b < int64(n) {
			return fmt.Errorf("%w at column %d", errNotPositiveDefinite, b)
		}
	}
	f.numGen++
	return nil
}

// ensureTB sizes the per-worker below-panel gather buffers.
func (f *ldltFactor) ensureTB(workers int) [][]float64 {
	for len(f.tb) < workers {
		f.tb = append(f.tb, make([]float64, f.maxRows))
	}
	return f.tb
}

// ensureWB sizes the per-RHS workspaces of a batched solve.
func (f *ldltFactor) ensureWB(nrhs int) [][]float64 {
	for len(f.wb) < nrhs {
		f.wb = append(f.wb, make([]float64, f.n))
	}
	return f.wb
}

// fwdSuper applies supernode s to the forward solve Lw = b in PUSH
// mode: a dense unit-lower solve on the diagonal block, then one dense
// panel-column axpy per column into the below-panel rows, gathered
// once into tt so the inner loops run over two contiguous arrays.
// Once a supernode's pushes are out, its own entries are final, so the
// diagonal scale w ← D⁻¹w is folded in per supernode (the division is
// element-independent — same bits as a separate pass), saving one full
// sweep over w per solve.  Every target element accumulates its
// subtractions in ascending source column — the same per-element order
// as the scalar pull-mode sweep, with padded slots contributing
// exact-zero terms — so serial push and parallel pull produce
// identical bits.
func (f *ldltFactor) fwdSuper(s int, w, tt []float64) {
	c0 := f.sPtr[s]
	width := f.sPtr[s+1] - c0
	srows := f.sRows[f.sRowPtr[s]:f.sRowPtr[s+1]]
	ld := width + len(srows)
	base := f.pOff[s]
	px := f.px
	if width == 1 {
		// Single column: skip the gather/scatter round trip and push
		// straight into w.
		wj := w[c0]
		bcol := px[base+1 : base+ld]
		for r, i := range srows {
			w[i] -= bcol[r] * wj
		}
		w[c0] = wj / f.d[c0]
		return
	}
	wc := w[c0 : c0+width]
	// In-panel unit-lower solve, blocked four source columns per pass:
	// finalize the block's own little triangle first (each value
	// subtracts its terms in ascending source column, exactly as the
	// column-at-a-time sweep), then push all four into the remainder of
	// the panel in one pass — same per-element op sequence, a quarter of
	// the wc load/store traffic.
	jj := 0
	for ; jj+4 <= width; jj += 4 {
		col0 := px[base+jj*ld : base+jj*ld+width]
		col1 := px[base+(jj+1)*ld : base+(jj+1)*ld+width]
		col2 := px[base+(jj+2)*ld : base+(jj+2)*ld+width]
		col3 := px[base+(jj+3)*ld : base+(jj+3)*ld+width]
		w0 := wc[jj]
		w1 := wc[jj+1] - col0[jj+1]*w0
		w2 := wc[jj+2] - col0[jj+2]*w0
		w2 -= col1[jj+2] * w1
		w3 := wc[jj+3] - col0[jj+3]*w0
		w3 -= col1[jj+3] * w1
		w3 -= col2[jj+3] * w2
		wc[jj+1], wc[jj+2], wc[jj+3] = w1, w2, w3
		for r := jj + 4; r < width; r++ {
			t := wc[r] - col0[r]*w0
			t -= col1[r] * w1
			t -= col2[r] * w2
			t -= col3[r] * w3
			wc[r] = t
		}
	}
	for ; jj < width; jj++ {
		wj := wc[jj]
		col := px[base+jj*ld : base+jj*ld+width]
		for r := jj + 1; r < width; r++ {
			wc[r] -= col[r] * wj
		}
	}
	if len(srows) == 0 {
		dc := f.d[c0 : c0+width]
		for jj := range wc {
			wc[jj] /= dc[jj]
		}
		return
	}
	tt = tt[:len(srows)]
	for r, i := range srows {
		tt[r] = w[i]
	}
	// Rank-4 panel update: four columns per pass halve the tt traffic.
	// Each element still subtracts its terms one by one in ascending
	// source column — the same op sequence as four separate sweeps, so
	// the bits are unchanged.  Rows go two per pass: each row's chain is
	// a serial multiply-subtract dependency, so pairing rows keeps two
	// independent chains in flight without touching either one's order.
	for jj = 0; jj+4 <= width; jj += 4 {
		b0 := px[base+jj*ld+width : base+(jj+1)*ld][:len(tt)]
		b1 := px[base+(jj+1)*ld+width : base+(jj+2)*ld][:len(tt)]
		b2 := px[base+(jj+2)*ld+width : base+(jj+3)*ld][:len(tt)]
		b3 := px[base+(jj+3)*ld+width : base+(jj+4)*ld][:len(tt)]
		w0, w1, w2, w3 := wc[jj], wc[jj+1], wc[jj+2], wc[jj+3]
		r := 0
		for ; r+2 <= len(tt); r += 2 {
			t0 := tt[r] - b0[r]*w0
			t1 := tt[r+1] - b0[r+1]*w0
			t0 -= b1[r] * w1
			t1 -= b1[r+1] * w1
			t0 -= b2[r] * w2
			t1 -= b2[r+1] * w2
			t0 -= b3[r] * w3
			t1 -= b3[r+1] * w3
			tt[r], tt[r+1] = t0, t1
		}
		for ; r < len(tt); r++ {
			t0 := tt[r] - b0[r]*w0
			t0 -= b1[r] * w1
			t0 -= b2[r] * w2
			t0 -= b3[r] * w3
			tt[r] = t0
		}
	}
	for ; jj+2 <= width; jj += 2 {
		b0 := px[base+jj*ld+width : base+(jj+1)*ld][:len(tt)]
		b1 := px[base+(jj+1)*ld+width : base+(jj+2)*ld][:len(tt)]
		w0, w1 := wc[jj], wc[jj+1]
		for r := range tt {
			t0 := tt[r] - b0[r]*w0
			t0 -= b1[r] * w1
			tt[r] = t0
		}
	}
	for ; jj < width; jj++ {
		bcol := px[base+jj*ld+width : base+(jj+1)*ld][:len(tt)]
		wj := wc[jj]
		for r := range tt {
			tt[r] -= bcol[r] * wj
		}
	}
	for r, i := range srows {
		w[i] = tt[r]
	}
	dc := f.d[c0 : c0+width]
	for jj := range wc {
		wc[jj] /= dc[jj]
	}
}

// fwdPull computes the forward-solve values of supernode s in PULL
// mode: each column k first gathers its external row entries through
// the row-major value cache (true entries only, ascending source
// column), then finishes against the already-final earlier columns of
// its own panel.  Used by the parallel schedule, where pushing into
// below-panel rows would race across same-level supernodes; bitwise
// equal to fwdSuper because every element's subtraction order is
// ascending source column either way.  Requires syncRowVal.
func (f *ldltFactor) fwdPull(s int, w []float64) {
	c0, c1 := f.sPtr[s], f.sPtr[s+1]
	width := c1 - c0
	ld := width + f.sRowPtr[s+1] - f.sRowPtr[s]
	base := f.pOff[s]
	px := f.px
	for k := c0; k < c1; k++ {
		wk := w[k]
		for t := f.rowPtr[k]; t < f.extEnd[k]; t++ {
			wk -= f.rowVal[t] * w[f.rowCol[t]]
		}
		kk := k - c0
		for jj := 0; jj < kk; jj++ {
			wk -= px[base+jj*ld+kk] * w[c0+jj]
		}
		w[k] = wk
	}
}

// bwdSuper applies supernode s to the backward solve Lᵀw = b.  Each
// column's accumulation chain subtracts its EXTERNAL terms first (the
// dense dot against the below-panel rows, gathered once into tt,
// ascending row) and its in-panel terms second — that convention frees
// the external phase to run four columns per tt pass with independent
// accumulators, where the one-chain-per-column form is pure multiply-
// subtract latency.  The order is fixed per element and identical on
// the serial sweep and the top-down parallel schedule (same kernel,
// reads only strictly-later supernodes and finalized own columns), so
// worker counts cannot change the bits.
func (f *ldltFactor) bwdSuper(s int, w, tt []float64) {
	c0 := f.sPtr[s]
	width := f.sPtr[s+1] - c0
	srows := f.sRows[f.sRowPtr[s]:f.sRowPtr[s+1]]
	ld := width + len(srows)
	base := f.pOff[s]
	px := f.px
	if width == 1 {
		// Single column: one dot straight off w, no gather.
		wj := w[c0]
		bcol := px[base+1 : base+ld]
		for r, i := range srows {
			wj -= bcol[r] * w[i]
		}
		w[c0] = wj
		return
	}
	wc := w[c0 : c0+width]
	if len(srows) > 0 {
		tt = tt[:len(srows)]
		for r, i := range srows {
			tt[r] = w[i]
		}
		// External phase: four independent dot chains per pass.  Each
		// chain subtracts its terms one by one in ascending row — the
		// same sequence as a lone dot, so blocking is bitwise inert.
		jj := 0
		for ; jj+8 <= width; jj += 8 {
			b0 := px[base+jj*ld+width : base+(jj+1)*ld][:len(tt)]
			b1 := px[base+(jj+1)*ld+width : base+(jj+2)*ld][:len(tt)]
			b2 := px[base+(jj+2)*ld+width : base+(jj+3)*ld][:len(tt)]
			b3 := px[base+(jj+3)*ld+width : base+(jj+4)*ld][:len(tt)]
			b4 := px[base+(jj+4)*ld+width : base+(jj+5)*ld][:len(tt)]
			b5 := px[base+(jj+5)*ld+width : base+(jj+6)*ld][:len(tt)]
			b6 := px[base+(jj+6)*ld+width : base+(jj+7)*ld][:len(tt)]
			b7 := px[base+(jj+7)*ld+width : base+(jj+8)*ld][:len(tt)]
			a0, a1, a2, a3 := wc[jj], wc[jj+1], wc[jj+2], wc[jj+3]
			a4, a5, a6, a7 := wc[jj+4], wc[jj+5], wc[jj+6], wc[jj+7]
			for r := range tt {
				t := tt[r]
				a0 -= b0[r] * t
				a1 -= b1[r] * t
				a2 -= b2[r] * t
				a3 -= b3[r] * t
				a4 -= b4[r] * t
				a5 -= b5[r] * t
				a6 -= b6[r] * t
				a7 -= b7[r] * t
			}
			wc[jj], wc[jj+1], wc[jj+2], wc[jj+3] = a0, a1, a2, a3
			wc[jj+4], wc[jj+5], wc[jj+6], wc[jj+7] = a4, a5, a6, a7
		}
		for ; jj+4 <= width; jj += 4 {
			b0 := px[base+jj*ld+width : base+(jj+1)*ld][:len(tt)]
			b1 := px[base+(jj+1)*ld+width : base+(jj+2)*ld][:len(tt)]
			b2 := px[base+(jj+2)*ld+width : base+(jj+3)*ld][:len(tt)]
			b3 := px[base+(jj+3)*ld+width : base+(jj+4)*ld][:len(tt)]
			a0, a1, a2, a3 := wc[jj], wc[jj+1], wc[jj+2], wc[jj+3]
			for r := range tt {
				t := tt[r]
				a0 -= b0[r] * t
				a1 -= b1[r] * t
				a2 -= b2[r] * t
				a3 -= b3[r] * t
			}
			wc[jj], wc[jj+1], wc[jj+2], wc[jj+3] = a0, a1, a2, a3
		}
		for ; jj+2 <= width; jj += 2 {
			b0 := px[base+jj*ld+width : base+(jj+1)*ld][:len(tt)]
			b1 := px[base+(jj+1)*ld+width : base+(jj+2)*ld][:len(tt)]
			a0, a1 := wc[jj], wc[jj+1]
			for r := range tt {
				t := tt[r]
				a0 -= b0[r] * t
				a1 -= b1[r] * t
			}
			wc[jj], wc[jj+1] = a0, a1
		}
		for ; jj < width; jj++ {
			bcol := px[base+jj*ld+width : base+(jj+1)*ld][:len(tt)]
			wj := wc[jj]
			for r := range tt {
				wj -= bcol[r] * tt[r]
			}
			wc[jj] = wj
		}
	}
	// In-panel phase: the unit-upper dense solve against the now-final
	// later columns, descending.
	for jj := width - 2; jj >= 0; jj-- {
		jcol := base + jj*ld
		wj := wc[jj]
		col := px[jcol : jcol+width]
		for r := jj + 1; r < width; r++ {
			wj -= col[r] * wc[r]
		}
		wc[jj] = wj
	}
}

// solveSerial runs the serial sweeps over the permuted workspace in
// place: push-mode forward (diagonal scale folded in per supernode),
// then backward.
func (f *ldltFactor) solveSerial(w, tt []float64) {
	ns := len(f.sPtr) - 1
	for s := 0; s < ns; s++ {
		f.fwdSuper(s, w, tt)
	}
	for s := ns - 1; s >= 0; s-- {
		f.bwdSuper(s, w, tt)
	}
}

// Solve overwrites x with K⁻¹ b serially.  x and b may alias.
func (f *ldltFactor) Solve(x, b []float64) { f.SolveW(x, b, 1) }

// SolveW overwrites x with K⁻¹ b via permute → L solve → D scale → Lᵀ
// solve → unpermute, on up to workers goroutines.  The serial path
// streams the panels push-mode (fwdSuper/bwdSuper); the parallel path
// runs pull-mode forward (fwdPull, no cross-supernode writes) and the
// shared backward kernel over supernodal level sets, forward bottom-up
// and backward top-down, each element computed by exactly one owner
// with its operand order fixed — identical bits either way.  x and b
// may alias.
func (f *ldltFactor) SolveW(x, b []float64, workers int) {
	n := f.n
	ns := len(f.sPtr) - 1
	w := f.w
	for k := 0; k < n; k++ {
		w[k] = b[f.perm[k]]
	}
	workers = par.Workers(workers)
	if workers > ns {
		workers = ns
	}
	if workers <= 1 || n < minParCols {
		f.solveSerial(w, f.ensureTB(1)[0])
	} else {
		f.solveParallel(w, workers)
	}
	for k := 0; k < n; k++ {
		x[f.perm[k]] = w[k]
	}
}

func (f *ldltFactor) solveParallel(w []float64, workers int) {
	f.syncRowVal()
	tb := f.ensureTB(workers)
	for l := 0; l < f.nSLevels; l++ {
		lo, hi := f.sLevelPtr[l], f.sLevelPtr[l+1]
		if f.sLevelCols[l] < minParLevelCols {
			for t := lo; t < hi; t++ {
				f.fwdPull(f.sLevelNode[t], w)
			}
			continue
		}
		par.DoWorker(hi-lo, workers, func(_, i int) { f.fwdPull(f.sLevelNode[lo+i], w) })
	}
	d := f.d
	for j := range w {
		w[j] /= d[j]
	}
	for l := f.nSLevels - 1; l >= 0; l-- {
		lo, hi := f.sLevelPtr[l], f.sLevelPtr[l+1]
		if f.sLevelCols[l] < minParLevelCols {
			for t := lo; t < hi; t++ {
				f.bwdSuper(f.sLevelNode[t], w, tb[0])
			}
			continue
		}
		par.DoWorker(hi-lo, workers, func(worker, i int) { f.bwdSuper(f.sLevelNode[lo+i], w, tb[worker]) })
	}
}

// SolveBatchW overwrites xs[q] with K⁻¹ bs[q] for every right-hand
// side q, streaming the factor through cache ONCE per supernode for
// the whole block on the serial path (supernode-outer, RHS-inner) —
// the point of batching the ADMM x-steps of a wafer consensus group.
// The parallel path dispatches whole right-hand sides to workers, each
// running the full serial sweep in its own workspace; every RHS is
// computed by exactly one owner with the serial kernel sequence, so
// the result is bitwise identical to nrhs separate SolveW calls at any
// worker count.  xs[q] and bs[q] may alias.
func (f *ldltFactor) SolveBatchW(xs, bs [][]float64, workers int) {
	nrhs := len(xs)
	if nrhs == 0 {
		return
	}
	if nrhs == 1 {
		f.SolveW(xs[0], bs[0], workers)
		return
	}
	n := f.n
	ns := len(f.sPtr) - 1
	wb := f.ensureWB(nrhs)
	workers = par.Workers(workers)
	if workers > nrhs {
		workers = nrhs
	}
	if workers <= 1 {
		tt := f.ensureTB(1)[0]
		for q := 0; q < nrhs; q++ {
			w, b := wb[q], bs[q]
			for k := 0; k < n; k++ {
				w[k] = b[f.perm[k]]
			}
		}
		for s := 0; s < ns; s++ {
			for q := 0; q < nrhs; q++ {
				f.fwdSuper(s, wb[q], tt)
			}
		}
		for s := ns - 1; s >= 0; s-- {
			for q := 0; q < nrhs; q++ {
				f.bwdSuper(s, wb[q], tt)
			}
		}
		for q := 0; q < nrhs; q++ {
			w, x := wb[q], xs[q]
			for k := 0; k < n; k++ {
				x[f.perm[k]] = w[k]
			}
		}
		return
	}
	tb := f.ensureTB(workers)
	par.DoWorker(nrhs, workers, func(worker, q int) {
		w, b, x := wb[q], bs[q], xs[q]
		for k := 0; k < n; k++ {
			w[k] = b[f.perm[k]]
		}
		f.solveSerial(w, tb[worker])
		for k := 0; k < n; k++ {
			x[f.perm[k]] = w[k]
		}
	})
}
