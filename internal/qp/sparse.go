// Package qp provides the mathematical-programming substrate for the
// dose-map optimization: sparse matrices, a conjugate-gradient linear
// solver, and a convex quadratic-program solver based on the operator-
// splitting (ADMM) method popularized by OSQP.
//
// The paper solves its QP and QCP instances with ILOG CPLEX; no such
// solver exists in the Go stdlib ecosystem, so this package implements
// one from scratch.  It solves problems of the form
//
//	minimize   ½ xᵀPx + qᵀx
//	subject to l ≤ Ax ≤ u
//
// with P positive semidefinite and sparse A.  The quadratically
// constrained variant (minimize T s.t. ΔLeakage ≤ ξ) is handled by the
// core package via monotone bisection on T, using this QP as the
// feasibility oracle.
package qp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// Triplet accumulates matrix entries in coordinate form.  Duplicate
// entries at the same (row, col) are summed when compiled to CSR, which
// makes constraint assembly straightforward.
type Triplet struct {
	rows, cols []int
	vals       []float64
	m, n       int
}

// NewTriplet returns an empty m×n triplet accumulator.
func NewTriplet(m, n int) *Triplet {
	return &Triplet{m: m, n: n}
}

// Add records the entry (i, j) += v.  It panics on out-of-range indices:
// constraint assembly bugs should fail loudly during development.
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.m || j < 0 || j >= t.n {
		panic(fmt.Sprintf("qp: triplet index (%d,%d) out of range %d×%d", i, j, t.m, t.n))
	}
	if v == 0 {
		return
	}
	t.rows = append(t.rows, i)
	t.cols = append(t.cols, j)
	t.vals = append(t.vals, v)
}

// Dims returns the matrix dimensions.
func (t *Triplet) Dims() (m, n int) { return t.m, t.n }

// NNZ returns the number of accumulated entries (before duplicate
// summing).
func (t *Triplet) NNZ() int { return len(t.vals) }

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	M, N   int
	RowPtr []int
	Col    []int
	Val    []float64

	// ones is the length of the leading run of single-entry rows, set by
	// markOneRows.  The dose-map constraint matrices open with one box
	// row per variable, so both mat-vec kernels take a branch-free fast
	// path over that prefix (where RowPtr[r] == r by construction).
	// Zero means "not analyzed" — the generic loops handle everything.
	ones int
}

// markOneRows measures the single-entry row prefix for the mat-vec fast
// path.  Callers that own the matrix exclusively (the Solver marks its
// private clone) invoke it once after the structure is final.
func (c *CSR) markOneRows() {
	r := 0
	for r < c.M && c.RowPtr[r+1]-c.RowPtr[r] == 1 {
		r++
	}
	c.ones = r
}

// Compile converts the triplet form to CSR, summing duplicates and
// dropping exact zeros that result from cancellation.
func (t *Triplet) Compile() *CSR {
	type ent struct {
		r, c int
		v    float64
	}
	ents := make([]ent, len(t.vals))
	for i := range t.vals {
		ents[i] = ent{t.rows[i], t.cols[i], t.vals[i]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].r != ents[b].r {
			return ents[a].r < ents[b].r
		}
		return ents[a].c < ents[b].c
	})
	c := &CSR{M: t.m, N: t.n, RowPtr: make([]int, t.m+1)}
	for i := 0; i < len(ents); {
		j := i + 1
		v := ents[i].v
		for j < len(ents) && ents[j].r == ents[i].r && ents[j].c == ents[i].c {
			v += ents[j].v
			j++
		}
		if v != 0 {
			c.Col = append(c.Col, ents[i].c)
			c.Val = append(c.Val, v)
			c.RowPtr[ents[i].r+1]++
		}
		i = j
	}
	for r := 0; r < t.m; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	return c
}

// NNZ returns the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.Val) }

// MulVec computes y = A·x.  y must have length M and is overwritten.
func (c *CSR) MulVec(y, x []float64) { c.MulVecW(y, x, 1) }

// MulVecW is MulVec with the rows partitioned across up to workers
// goroutines.  Each row's sum is accumulated in the same order no
// matter which worker owns it, so the result is bit-identical to the
// serial product for every worker count.
func (c *CSR) MulVecW(y, x []float64, workers int) {
	rp, col, val := c.RowPtr, c.Col, c.Val
	ones := c.ones
	par.Blocks(c.M, workers, func(_, lo, hi int) {
		r := lo
		// Single-entry prefix: RowPtr[r] == r there, so the row loop
		// collapses to one multiply with no pointer loads.  Same single
		// product as the generic row body, hence bit-identical.
		for hi1 := min(hi, ones); r < hi1; r++ {
			y[r] = val[r] * x[col[r]]
		}
		for ; r < hi; r++ {
			s := 0.0
			end := rp[r+1]
			for k := rp[r]; k < end; k++ {
				s += val[k] * x[col[k]]
			}
			y[r] = s
		}
	})
}

// MulTVec computes y = Aᵀ·x.  y must have length N and is overwritten.
func (c *CSR) MulTVec(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	c.AddMulTVec(y, x)
}

// AddMulTVec computes y += Aᵀ·x without zeroing y first.
func (c *CSR) AddMulTVec(y, x []float64) {
	rp, col, val := c.RowPtr, c.Col, c.Val
	r := 0
	// Single-entry prefix fast path (see MulVecW): one scatter per row,
	// keeping the exact-zero skip so the op sequence matches the generic
	// loop bit for bit.
	for ; r < c.ones; r++ {
		if xr := x[r]; xr != 0 {
			y[col[r]] += val[r] * xr
		}
	}
	for ; r < c.M; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		end := rp[r+1]
		for k := rp[r]; k < end; k++ {
			y[col[k]] += val[k] * xr
		}
	}
}

// DiagATA returns the diagonal of AᵀA (the per-column sums of squares),
// used to build the Jacobi preconditioner of the ADMM KKT operator.
func (c *CSR) DiagATA() []float64 {
	d := make([]float64, c.N)
	for k, col := range c.Col {
		d[col] += c.Val[k] * c.Val[k]
	}
	return d
}

// RowInfNorms returns the infinity norm of each row.
func (c *CSR) RowInfNorms() []float64 {
	norms := make([]float64, c.M)
	for r := 0; r < c.M; r++ {
		for k := c.RowPtr[r]; k < c.RowPtr[r+1]; k++ {
			if a := math.Abs(c.Val[k]); a > norms[r] {
				norms[r] = a
			}
		}
	}
	return norms
}

// ColInfNorms returns the infinity norm of each column.
func (c *CSR) ColInfNorms() []float64 {
	norms := make([]float64, c.N)
	for k, col := range c.Col {
		if a := math.Abs(c.Val[k]); a > norms[col] {
			norms[col] = a
		}
	}
	return norms
}

// ScaleRows multiplies row r by s[r] in place.
func (c *CSR) ScaleRows(s []float64) {
	for r := 0; r < c.M; r++ {
		for k := c.RowPtr[r]; k < c.RowPtr[r+1]; k++ {
			c.Val[k] *= s[r]
		}
	}
}

// ScaleCols multiplies column j by s[j] in place.
func (c *CSR) ScaleCols(s []float64) {
	for k, col := range c.Col {
		c.Val[k] *= s[col]
	}
}

// Clone returns a deep copy.
func (c *CSR) Clone() *CSR {
	out := &CSR{M: c.M, N: c.N,
		RowPtr: append([]int(nil), c.RowPtr...),
		Col:    append([]int(nil), c.Col...),
		Val:    append([]float64(nil), c.Val...),
		ones:   c.ones,
	}
	return out
}

// csrEqual reports whether two matrices hold the identical structure
// and bitwise-equal values.  The batched lockstep solver uses it to
// validate that a family of Solvers may share one LDLᵀ factor: equal
// bits in — equal bits out, so the shared-factor solve is exactly the
// solve each member's own factor would have produced.
func csrEqual(a, b *CSR) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.M != b.M || a.N != b.N || len(a.Col) != len(b.Col) {
		return false
	}
	for i, v := range a.RowPtr {
		if b.RowPtr[i] != v {
			return false
		}
	}
	for i, v := range a.Col {
		if b.Col[i] != v {
			return false
		}
	}
	return floatBitsEqual(a.Val, b.Val)
}

// floatBitsEqual reports element-wise Float64bits equality (so NaN
// payloads and signed zeros are distinguished, unlike ==).
func floatBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(b[i]) != math.Float64bits(v) {
			return false
		}
	}
	return true
}

// CSRFromRows builds a CSR directly from per-row column/value lists.
// Each row's columns must be strictly increasing (already canonical);
// exact zeros are dropped, matching Triplet.Add/Compile semantics, so
// the result is bit-identical to the triplet route without the global
// sort.
func CSRFromRows(n int, cols [][]int, vals [][]float64) *CSR {
	m := len(cols)
	nnz := 0
	for _, c := range cols {
		nnz += len(c)
	}
	out := &CSR{M: m, N: n,
		RowPtr: make([]int, m+1),
		Col:    make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for r := range cols {
		prev := -1
		for k, c := range cols[r] {
			if c <= prev || c >= n {
				panic(fmt.Sprintf("qp: CSRFromRows row %d columns not strictly increasing in [0,%d)", r, n))
			}
			prev = c
			if v := vals[r][k]; v != 0 {
				out.Col = append(out.Col, c)
				out.Val = append(out.Val, v)
			}
		}
		out.RowPtr[r+1] = len(out.Col)
	}
	return out
}

// ConcatRows returns a new CSR stacking b's rows below a's.  Both
// matrices must share the same column count.
func ConcatRows(a, b *CSR) *CSR {
	if a.N != b.N {
		panic("qp: ConcatRows column mismatch")
	}
	out := &CSR{M: a.M + b.M, N: a.N,
		RowPtr: make([]int, a.M+b.M+1),
		Col:    make([]int, 0, len(a.Col)+len(b.Col)),
		Val:    make([]float64, 0, len(a.Val)+len(b.Val)),
	}
	copy(out.RowPtr, a.RowPtr)
	out.Col = append(out.Col, a.Col...)
	out.Val = append(out.Val, a.Val...)
	off := a.RowPtr[a.M]
	for r := 0; r < b.M; r++ {
		out.RowPtr[a.M+r+1] = off + b.RowPtr[r+1]
	}
	out.Col = append(out.Col, b.Col...)
	out.Val = append(out.Val, b.Val...)
	return out
}

// Dense expands the matrix into a dense row-major [][]float64, for tests
// and debugging only.
func (c *CSR) Dense() [][]float64 {
	d := make([][]float64, c.M)
	for r := range d {
		d[r] = make([]float64, c.N)
		for k := c.RowPtr[r]; k < c.RowPtr[r+1]; k++ {
			d[r][c.Col[k]] += c.Val[k]
		}
	}
	return d
}

// Vector helpers.  All operate element-wise on equal-length slices.

// Dot returns aᵀb.  The sum uses the fixed blocked reduction of
// par.SumBlocks, so Dot and DotW agree bitwise for every worker count.
func Dot(a, b []float64) float64 { return DotW(a, b, 1) }

// DotW computes aᵀb with block partials evaluated on up to workers
// goroutines.  The reduction tree is fixed by par.SumBlockSize —
// independent of the worker count — so no floating-point
// reassociation occurs across workers.
func DotW(a, b []float64, workers int) float64 {
	return par.SumBlocks(len(a), workers, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		return s
	})
}

// InfNorm returns max|a_i| (0 for an empty slice).
func InfNorm(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// AXPY computes y += alpha·x.
func AXPY(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies a by s in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Clamp projects v onto [lo, hi] element-wise in place.
func Clamp(v, lo, hi []float64) {
	for i := range v {
		if v[i] < lo[i] {
			v[i] = lo[i]
		} else if v[i] > hi[i] {
			v[i] = hi[i]
		}
	}
}
