// Linear-system backends for the ADMM x-step.  Every iteration solves
//
//	(P + σI + ρAᵀA) x̃ = σx − q + Aᵀ(ρz − y)
//
// against the same matrix K until ρ adapts or constraint rows are
// appended.  Two interchangeable backends exist:
//
//   - cgBackend: the original Jacobi-preconditioned conjugate-gradient
//     loop — matrix-free, O(nnz) per iteration, worker-parallel
//     mat-vecs, robust for any fill;
//   - ldltBackend: a cached sparse LDLᵀ factor of K — factor once per
//     ρ, then every x-step is two triangular solves, no inner loop.
//
// Settings.LinSys selects a backend; the Auto default measures the
// symbolic fill estimate and picks LDLᵀ when the factor stays sparse
// (the dose-map QPs: banded grid Laplacian plus short cut rows), CG
// otherwise.  A numeric breakdown in LDLᵀ (zero pivot) falls back to
// CG for the remainder of the solver's life.
package qp

import "fmt"

// LinSys selects the ADMM x-step linear-system backend.
type LinSys int

const (
	// LinSysAuto picks LDLᵀ when the symbolic fill estimate is below
	// autoFillLimit, CG otherwise.
	LinSysAuto LinSys = iota
	// LinSysCG forces the preconditioned conjugate-gradient backend.
	LinSysCG
	// LinSysLDLT forces the cached sparse LDLᵀ backend.
	LinSysLDLT
)

func (l LinSys) String() string {
	switch l {
	case LinSysAuto:
		return "auto"
	case LinSysCG:
		return "cg"
	case LinSysLDLT:
		return "ldlt"
	}
	return fmt.Sprintf("linsys(%d)", int(l))
}

// ParseLinSys parses a -linsys flag value.
func ParseLinSys(s string) (LinSys, error) {
	switch s {
	case "", "auto":
		return LinSysAuto, nil
	case "cg":
		return LinSysCG, nil
	case "ldlt":
		return LinSysLDLT, nil
	}
	return LinSysAuto, fmt.Errorf("qp: unknown linear-system backend %q (want auto, cg or ldlt)", s)
}

// autoFillLimit is the Auto-selection threshold: LDLᵀ is chosen when
// nnz(L) ≤ autoFillLimit × nnz(triu K).  Beyond that the factor's
// triangular solves cost more than the few CG iterations the warm-
// started ADMM x-step typically needs.
const autoFillLimit = 20

// linsys is the x-step solver contract.  Implementations live inside
// one Solver and work on its scaled data.
type linsys interface {
	// solve overwrites x with (an approximation of) K⁻¹b for the
	// current s.rho, starting from the initial guess already in x
	// (iterative backends) and stopping at tol.  It returns the inner
	// iteration count (0 for direct backends).
	solve(x, b []float64, tol float64) (int, error)
	// solveBatch solves K x[q] = b[q] for every right-hand side against
	// one factorization pass: the direct backend streams the factor
	// through cache once per supernode for the whole block, iterative
	// backends degrade to per-RHS solves.  Each x[q] is bitwise
	// identical to a solo solve(x[q], b[q], tol) call.
	solveBatch(xs, bs [][]float64, tol float64) (int, error)
	// appendRows re-syncs the backend after rows were appended to s.a.
	appendRows(fromRow int)
	// kind names the backend for telemetry.
	kind() LinSys
}

// --- CG backend -----------------------------------------------------------

// cgBackend wraps the historical preconditioned CG loop.  The Jacobi
// preconditioner is rebuilt into solver scratch whenever ρ moved.
type cgBackend struct {
	s       *Solver
	precond []float64
	rho     float64 // ρ the preconditioner was built for (NaN-safe: 0 = never)
	fresh   bool
}

func newCGBackend(s *Solver) *cgBackend {
	return &cgBackend{s: s, precond: make([]float64, s.n)}
}

func (b *cgBackend) solve(x, bvec []float64, tol float64) (int, error) {
	s := b.s
	if !b.fresh || b.rho != s.rho {
		for j := 0; j < s.n; j++ {
			b.precond[j] = 1 / (s.diagP[j] + s.set.Sigma + s.rho*s.diagTA[j])
		}
		b.rho = s.rho
		b.fresh = true
	}
	return s.cg(x, bvec, tol, b.precond), nil
}

func (b *cgBackend) solveBatch(xs, bs [][]float64, tol float64) (int, error) {
	// No factor to stream: a batch is just the member solves in order.
	total := 0
	for q := range xs {
		it, err := b.solve(xs[q], bs[q], tol)
		total += it
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (b *cgBackend) appendRows(int) {
	// diagTA already carries the appended rows; just force a
	// preconditioner rebuild.
	b.fresh = false
}

func (b *cgBackend) kind() LinSys { return LinSysCG }

// --- LDLᵀ backend ---------------------------------------------------------

// defaultFactorCache is the ρ-ladder factor-cache capacity when
// Settings.FactorCache is zero.  Ten slots cover the working set the
// adaptive-ρ trajectory actually revisits: the initial rung, the
// settled rung, and the handful of rungs the eager adapter walks
// through on the way (plus stall-restart returns to the initial rung).
const defaultFactorCache = 10

// factorSnap is one cached numeric factor: the (panel storage, d) pair
// of a finished factorization, keyed by the exact ρ it was computed
// for and the pattern epoch it belongs to.  Snapshots are immutable
// once stored; restoring one is two flat copies — orders of magnitude
// cheaper than the factorization flops it replaces.
type factorSnap struct {
	rho   float64
	epoch int
	px    []float64
	d     []float64
	use   int64
}

// ldltBackend caches one live sparse factor of K plus a small LRU of
// numeric snapshots keyed by (ρ, pattern epoch).  ADMM ρ-adaptation
// quantizes onto the ρ-ladder (see Solver.adaptRho), so stall restarts
// and ρ flips revisit previously factored rungs and restore the cached
// (lx, d) instead of re-running the numeric phase.  Appending rows
// bumps the epoch and flushes the cache — a snapshot never outlives
// its pattern.
type ldltBackend struct {
	s        *Solver
	f        *ldltFactor
	rho      float64
	factored bool
	epoch    int
	cache    []*factorSnap
	cacheCap int
	useSeq   int64
	// Snapshots are stored and restored by pointer swap, never by copy:
	// aliased is the cache entry whose buffers the live factor currently
	// uses (nil when the live buffers are private), and freePx/freeD
	// recycle the buffers of evicted entries for the next numeric
	// factorization.  Sound because the numeric kernels overwrite every
	// true-pattern slot and never touch padding, so any same-epoch
	// buffer (or a fresh zeroed allocation) keeps the padded-zeros
	// invariant; the pools are dropped with the cache on epoch bumps.
	aliased *factorSnap
	freePx  [][]float64
	freeD   [][]float64
	// built records the ρ rungs numerically factored in the current
	// epoch.  It splits the factor counters by the work they represent:
	// the first build of an (epoch, rung) pair is a factorization —
	// unavoidable, the numbers did not exist — while building a pair
	// again is a refactorization, repeat work the snapshot cache exists
	// to eliminate (it only happens after an eviction or with caching
	// disabled).
	built map[float64]bool
}

func newLDLTBackend(s *Solver, f *ldltFactor) *ldltBackend {
	capacity := s.set.FactorCache
	if capacity == 0 {
		capacity = defaultFactorCache
	}
	if capacity < 0 {
		capacity = 0
	}
	return &ldltBackend{s: s, f: f, cacheCap: capacity, built: make(map[float64]bool)}
}

// lookup returns the cached snapshot for ρ in the current pattern
// epoch, refreshing its LRU stamp, or nil.
func (b *ldltBackend) lookup(rho float64) *factorSnap {
	for _, snap := range b.cache {
		if snap.rho == rho && snap.epoch == b.epoch {
			b.useSeq++
			snap.use = b.useSeq
			return snap
		}
	}
	return nil
}

// store snapshots the live factor for ρ by taking ownership of its
// buffers (zero copies), evicting the least-recently used entry at
// capacity and recycling the evicted buffers.
func (b *ldltBackend) store(rho float64) {
	if b.cacheCap <= 0 {
		return
	}
	if len(b.cache) >= b.cacheCap {
		lru := 0
		for i, snap := range b.cache {
			if snap.use < b.cache[lru].use {
				lru = i
			}
		}
		if ev := b.cache[lru]; ev != b.aliased {
			b.freePx = append(b.freePx, ev.px)
			b.freeD = append(b.freeD, ev.d)
		}
		b.cache[lru] = b.cache[len(b.cache)-1]
		b.cache = b.cache[:len(b.cache)-1]
		b.s.nCacheEvict++
	}
	b.useSeq++
	snap := &factorSnap{rho: rho, epoch: b.epoch, px: b.f.px, d: b.f.d, use: b.useSeq}
	b.cache = append(b.cache, snap)
	b.aliased = snap
}

// ensureFactored makes the live factor current for s.rho: restore a
// cached snapshot when the rung was factored before in this pattern
// epoch, run the numeric phase otherwise.
func (b *ldltBackend) ensureFactored() error {
	s := b.s
	if b.factored && b.rho == s.rho {
		return nil
	}
	if snap := b.lookup(s.rho); snap != nil {
		b.f.adopt(snap.px, snap.d)
		b.aliased = snap
		s.nCacheHit++
	} else {
		if b.aliased != nil {
			// The live buffers belong to a cache entry: factor into a
			// recycled (same-pattern, padding still zero) or fresh pair
			// so the snapshot survives intact.
			var px, d []float64
			if k := len(b.freePx); k > 0 {
				px, b.freePx = b.freePx[k-1], b.freePx[:k-1]
				d, b.freeD = b.freeD[k-1], b.freeD[:k-1]
			} else {
				px = make([]float64, len(b.f.px))
				d = make([]float64, len(b.f.d))
			}
			b.f.adopt(px, d)
			b.aliased = nil
		}
		if err := b.f.RefactorW(s.rho, s.set.Workers); err != nil {
			return err
		}
		s.nParLevels += int64(b.f.lastParLevels)
		s.nDenseFlops += b.f.denseFactorFlops
		if b.built[s.rho] {
			s.nRefactor++
		} else {
			s.nFactor++
			b.built[s.rho] = true
		}
		b.store(s.rho)
	}
	b.rho = s.rho
	b.factored = true
	return nil
}

func (b *ldltBackend) solve(x, bvec []float64, _ float64) (int, error) {
	if err := b.ensureFactored(); err != nil {
		return 0, err
	}
	s := b.s
	b.f.SolveW(x, bvec, s.set.Workers)
	s.nTriSolve++
	s.nDenseFlops += b.f.denseSolveFlops
	return 0, nil
}

func (b *ldltBackend) solveBatch(xs, bs [][]float64, _ float64) (int, error) {
	if err := b.ensureFactored(); err != nil {
		return 0, err
	}
	s := b.s
	b.f.SolveBatchW(xs, bs, s.set.Workers)
	nrhs := int64(len(xs))
	s.nTriSolve += nrhs
	s.nDenseFlops += nrhs * b.f.denseSolveFlops
	s.nSolveBatch++
	s.nSolveRHS += nrhs
	return 0, nil
}

func (b *ldltBackend) appendRows(fromRow int) {
	b.f.AppendRows(b.s.a, fromRow)
	b.factored = false
	b.epoch++
	// New pattern: snapshots, buffer pools and the alias all describe
	// the old one.  Dropping the alias makes the live buffers private
	// again (every snapshot that could claim them is gone).
	b.cache = nil
	b.freePx, b.freeD = nil, nil
	b.aliased = nil
	clear(b.built)
}

func (b *ldltBackend) kind() LinSys { return LinSysLDLT }

// initLinsys chooses and constructs the backend after the scaled
// problem data is final.  Auto runs the symbolic analysis either way
// (it is cheap — pattern merge plus an elimination-tree pass) and keeps
// the factor only when the fill estimate clears the threshold.
func (s *Solver) initLinsys() {
	switch s.set.LinSys {
	case LinSysCG:
		s.lin = newCGBackend(s)
		return
	case LinSysLDLT:
		s.lin = newLDLTBackend(s, newLDLTFactor(s.p, s.set.Sigma, s.a, s.n))
		return
	}
	f := newLDLTFactor(s.p, s.set.Sigma, s.a, s.n)
	if f.NNZL() <= autoFillLimit*f.NNZK() {
		s.lin = newLDLTBackend(s, f)
		return
	}
	s.lin = newCGBackend(s)
}

// fallbackToCG permanently switches a solver whose LDLᵀ factor broke
// down (zero pivot on a numerically semidefinite K) to the CG backend.
func (s *Solver) fallbackToCG() {
	s.lin = newCGBackend(s)
	s.linFallbacks++
}

// FactorEntries exposes a copy of the live LDLᵀ numeric factor — the
// off-diagonal values of L (materialized from the supernodal panels
// into the internal column-compressed order) and the pivot diagonal D
// — when the x-step backend currently holds one.  It exists for
// determinism audits: the bit-identity tests compare factors produced
// at different worker counts entry by entry.
func (s *Solver) FactorEntries() (l, d []float64, ok bool) {
	b, isLDLT := s.lin.(*ldltBackend)
	if !isLDLT || !b.factored {
		return nil, nil, false
	}
	return b.f.factorL(), append([]float64(nil), b.f.d...), true
}
