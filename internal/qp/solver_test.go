package qp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fit"
)

func diagCSR(d []float64) *CSR {
	tr := NewTriplet(len(d), len(d))
	for i, v := range d {
		tr.Add(i, i, v)
	}
	return tr.Compile()
}

func inf() float64 { return math.Inf(1) }

func TestValidate(t *testing.T) {
	p := &Problem{Q: []float64{1}}
	if err := p.Validate(); err != nil {
		t.Errorf("minimal problem should validate: %v", err)
	}
	bad := &Problem{Q: nil}
	if err := bad.Validate(); err == nil {
		t.Error("empty objective should fail")
	}
	tr := NewTriplet(1, 2)
	tr.Add(0, 0, 1)
	bad2 := &Problem{Q: []float64{1}, A: tr.Compile(), L: []float64{0}, U: []float64{1}}
	if err := bad2.Validate(); err == nil {
		t.Error("column mismatch should fail")
	}
	tr3 := NewTriplet(1, 1)
	tr3.Add(0, 0, 1)
	bad3 := &Problem{Q: []float64{1}, A: tr3.Compile(), L: []float64{2}, U: []float64{1}}
	if err := bad3.Validate(); err == nil {
		t.Error("l > u should fail")
	}
}

func TestUnconstrainedQP(t *testing.T) {
	// min ½(2x² + 4y²) + (-2x + 8y)  →  x = 1, y = -2.
	prob := &Problem{
		P: diagCSR([]float64{2, 4}),
		Q: []float64{-2, 8},
	}
	res, err := Solve(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Solved {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]+2) > 1e-3 {
		t.Errorf("x = %v, want [1 -2]", res.X)
	}
}

func TestBoxConstrainedProjection(t *testing.T) {
	// min ½‖x − c‖²  s.t. 0 ≤ x ≤ 1  →  x = clamp(c, 0, 1).
	c := []float64{-0.5, 0.3, 2.0, 1.0, 0.0}
	n := len(c)
	q := make([]float64, n)
	pd := make([]float64, n)
	for i := range c {
		q[i] = -c[i]
		pd[i] = 1
	}
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
	}
	lo, hi := make([]float64, n), make([]float64, n)
	for i := range hi {
		hi[i] = 1
	}
	prob := &Problem{P: diagCSR(pd), Q: q, A: tr.Compile(), L: lo, U: hi}
	res, err := Solve(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Solved {
		t.Fatalf("status = %v", res.Status)
	}
	for i := range c {
		want := math.Max(0, math.Min(1, c[i]))
		if math.Abs(res.X[i]-want) > 2e-3 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], want)
		}
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x² + y²  s.t. x + y = 1  →  (0.5, 0.5).
	tr := NewTriplet(1, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 1)
	prob := &Problem{
		P: diagCSR([]float64{2, 2}),
		Q: []float64{0, 0},
		A: tr.Compile(),
		L: []float64{1},
		U: []float64{1},
	}
	res, err := Solve(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Solved {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[0]-0.5) > 1e-3 || math.Abs(res.X[1]-0.5) > 1e-3 {
		t.Errorf("x = %v, want [0.5 0.5]", res.X)
	}
}

func TestLinearProgram(t *testing.T) {
	// min -x - 2y  s.t. x + y ≤ 4, 0 ≤ x ≤ 3, 0 ≤ y ≤ 3  → (1, 3), obj -7.
	tr := NewTriplet(3, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	tr.Add(2, 1, 1)
	prob := &Problem{
		Q: []float64{-1, -2},
		A: tr.Compile(),
		L: []float64{-inf(), 0, 0},
		U: []float64{4, 3, 3},
	}
	res, err := Solve(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Solved {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj+7) > 5e-3 {
		t.Errorf("obj = %v, want -7 (x = %v)", res.Obj, res.X)
	}
}

func TestPrimalInfeasibleDetection(t *testing.T) {
	// x ≤ 1 and x ≥ 2 simultaneously.
	tr := NewTriplet(2, 1)
	tr.Add(0, 0, 1)
	tr.Add(1, 0, 1)
	prob := &Problem{
		P: diagCSR([]float64{1}),
		Q: []float64{0},
		A: tr.Compile(),
		L: []float64{-inf(), 2},
		U: []float64{1, inf()},
	}
	res, err := Solve(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != PrimalInfeasible {
		t.Errorf("status = %v, want primal-infeasible", res.Status)
	}
}

// TestAgainstDenseKKT cross-checks the ADMM solver against a direct dense
// KKT solve on random equality-constrained convex QPs:
//
//	min ½xᵀPx + qᵀx  s.t.  Ax = b   ⇔   [P Aᵀ; A 0][x; ν] = [-q; b].
func TestAgainstDenseKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(5)
		m := 1 + rng.Intn(n-1)
		pd := make([]float64, n)
		q := make([]float64, n)
		for i := range pd {
			pd[i] = 0.5 + rng.Float64()*3
			q[i] = rng.NormFloat64()
		}
		tr := NewTriplet(m, n)
		dense := make([][]float64, m)
		for i := 0; i < m; i++ {
			dense[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				dense[i][j] = v
				tr.Add(i, j, v)
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		// Dense KKT reference.
		kkt := make([][]float64, n+m)
		rhs := make([]float64, n+m)
		for i := range kkt {
			kkt[i] = make([]float64, n+m)
		}
		for i := 0; i < n; i++ {
			kkt[i][i] = pd[i]
			rhs[i] = -q[i]
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				kkt[n+i][j] = dense[i][j]
				kkt[j][n+i] = dense[i][j]
			}
			rhs[n+i] = b[i]
		}
		ref, err := fit.Solve(kkt, rhs)
		if err != nil {
			continue // singular draw; skip
		}

		prob := &Problem{P: diagCSR(pd), Q: q, A: tr.Compile(), L: b, U: append([]float64(nil), b...)}
		set := DefaultSettings()
		set.EpsAbs, set.EpsRel = 1e-6, 1e-6
		res, err := Solve(prob, set)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Solved {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		for j := 0; j < n; j++ {
			if math.Abs(res.X[j]-ref[j]) > 1e-3*(1+math.Abs(ref[j])) {
				t.Errorf("trial %d: x[%d] = %v, KKT ref %v", trial, j, res.X[j], ref[j])
			}
		}
	}
}

// TestDoseShapedProblem exercises the exact structure the flow generates:
// dose variables with box bounds and chain smoothness constraints, convex
// separable objective pulling toward a per-grid target.
func TestDoseShapedProblem(t *testing.T) {
	n := 12
	delta := 0.7
	target := make([]float64, n)
	for i := range target {
		if i%2 == 0 {
			target[i] = 5
		} else {
			target[i] = -5
		}
	}
	pd := make([]float64, n)
	q := make([]float64, n)
	for i := range pd {
		pd[i] = 1
		q[i] = -target[i]
	}
	rows := n + (n - 1)
	tr := NewTriplet(rows, n)
	l := make([]float64, rows)
	u := make([]float64, rows)
	for i := 0; i < n; i++ { // box ±5
		tr.Add(i, i, 1)
		l[i], u[i] = -5, 5
	}
	for i := 0; i < n-1; i++ { // smoothness
		tr.Add(n+i, i, 1)
		tr.Add(n+i, i+1, -1)
		l[n+i], u[n+i] = -delta, delta
	}
	prob := &Problem{P: diagCSR(pd), Q: q, A: tr.Compile(), L: l, U: u}
	res, err := Solve(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Solved {
		t.Fatalf("status = %v", res.Status)
	}
	if v := prob.MaxViolation(res.X); v > 1e-3 {
		t.Errorf("constraint violation %v", v)
	}
	// With alternating ±5 targets and tight smoothness, neighbours must
	// differ by exactly ±δ at optimum (the smoothness bound is active).
	for i := 0; i+1 < n; i++ {
		if d := math.Abs(res.X[i] - res.X[i+1]); d > delta+2e-3 {
			t.Errorf("smoothness violated between %d and %d: %v", i, i+1, d)
		}
	}
	// Objective must beat the zero map.
	if res.Obj >= 0 {
		t.Errorf("objective %v should beat zero map", res.Obj)
	}
}

func TestWarmStartAndUpdateBounds(t *testing.T) {
	// Same dose-shaped problem; after solving, tighten the box and
	// warm-start: result must satisfy the new bounds and converge.
	n := 8
	pd := make([]float64, n)
	q := make([]float64, n)
	for i := range pd {
		pd[i] = 1
		q[i] = -4 // pull toward +4
	}
	tr := NewTriplet(n, n)
	l := make([]float64, n)
	u := make([]float64, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
		l[i], u[i] = -5, 5
	}
	prob := &Problem{P: diagCSR(pd), Q: q, A: tr.Compile(), L: l, U: u}
	s, err := NewSolver(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	res1 := s.Solve()
	if res1.Status != Solved {
		t.Fatalf("first solve: %v", res1.Status)
	}
	for i := range res1.X {
		if math.Abs(res1.X[i]-4) > 2e-3 {
			t.Fatalf("x[%d] = %v, want 4", i, res1.X[i])
		}
	}
	// Tighten upper bounds to 2.
	for i := range u {
		u[i] = 2
	}
	if err := s.UpdateBounds(l, u); err != nil {
		t.Fatal(err)
	}
	res2 := s.Solve()
	if res2.Status != Solved {
		t.Fatalf("second solve: %v", res2.Status)
	}
	for i := range res2.X {
		if math.Abs(res2.X[i]-2) > 2e-3 {
			t.Errorf("after tightening, x[%d] = %v, want 2", i, res2.X[i])
		}
	}
	// Warm start with explicit vectors must be accepted.
	if err := s.WarmStart(res2.X, res2.Y); err != nil {
		t.Fatal(err)
	}
	res3 := s.Solve()
	if res3.Status != Solved {
		t.Errorf("warm-started solve: %v", res3.Status)
	}
	// Error paths.
	if err := s.WarmStart(make([]float64, n+1), nil); err == nil {
		t.Error("expected warm-start length error")
	}
	if err := s.UpdateBounds(make([]float64, n+1), u); err == nil {
		t.Error("expected bounds length error")
	}
}

func TestMixedScaleProblem(t *testing.T) {
	// Variables with wildly different magnitudes, as in the real
	// formulation (dose ≈ ±5, arrival times ≈ 2000).  Equilibration must
	// make this converge: min (x−2000)² + (y−3)² s.t. x − 100y ≤ 1800,
	// 0 ≤ y ≤ 5, x ≥ 0.
	tr := NewTriplet(3, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, -100)
	tr.Add(1, 1, 1)
	tr.Add(2, 0, 1)
	prob := &Problem{
		P: diagCSR([]float64{2, 2}),
		Q: []float64{-4000, -6},
		A: tr.Compile(),
		L: []float64{-inf(), 0, 0},
		U: []float64{1800, 5, inf()},
	}
	res, err := Solve(prob, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Solved {
		t.Fatalf("status = %v", res.Status)
	}
	if v := prob.MaxViolation(res.X); v > 1e-2 {
		t.Errorf("violation = %v", v)
	}
	// KKT reference: unconstrained optimum (2000, 3) violates row 0 by
	// 2000-300-1800 = -100 ≤ 0... actually 2000-300=1700 ≤ 1800 feasible.
	if math.Abs(res.X[0]-2000) > 1 || math.Abs(res.X[1]-3) > 0.01 {
		t.Errorf("x = %v, want [2000 3]", res.X)
	}
}

func TestObjectiveAndViolationHelpers(t *testing.T) {
	prob := &Problem{P: diagCSR([]float64{2}), Q: []float64{1}}
	if got := prob.Objective([]float64{3}); got != 0.5*2*9+3 {
		t.Errorf("Objective = %v", got)
	}
	if got := prob.MaxViolation([]float64{3}); got != 0 {
		t.Errorf("MaxViolation with no constraints = %v", got)
	}
}

func TestStatusString(t *testing.T) {
	if Solved.String() != "solved" || MaxIterations.String() != "max-iterations" ||
		PrimalInfeasible.String() != "primal-infeasible" {
		t.Error("Status strings")
	}
	if Status(42).String() == "" {
		t.Error("unknown status should still format")
	}
}
