// Lockstep batched ADMM.  SolveBatchCtx advances a family of Solvers
// whose scaled matrices are bitwise identical through their ADMM
// iterations in lockstep: every iteration assembles one right-hand side
// per member and hands the block to the lead solver's linear backend as
// a single multi-RHS solve (linsys.solveBatch), so the LDLᵀ factor is
// streamed through cache once per iteration instead of once per member.
// The wafer consensus loop is the producer of such families: every
// field of a column group shares P, A and the equilibration by
// construction and differs only in its bounds (the bias-shifted box)
// and the moving penalty target q — neither enters K = P + σI + ρAᵀA.
//
// Determinism: members are visited in slice order at every step, the
// shared ρ adaptation aggregates the members' residual scores with max
// (order-free), and the multi-RHS solve itself is bit-identical to
// per-RHS solves at any worker count (see ldlt.go).  A batch solve is
// therefore reproducible for every worker count — the property
// TestWaferWorkerBitIdentity pins end to end.
package qp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/par"
)

// batchCompatible reports whether the family can share the lead
// solver's factor: identical dimensions and settings, bitwise-identical
// scaled matrices and scalings, equal ρ, and a direct (LDLᵀ) backend on
// every member.  Bounds l/u, linear terms q and iterate state are free
// to differ.  The check is O(nnz) — trivial against the factorization
// and solve work it guards — and failing it is never an error: the
// caller degrades to sequential per-member solves.
func batchCompatible(ss []*Solver) bool {
	h := ss[0]
	if h.lin.kind() != LinSysLDLT {
		return false
	}
	for _, s := range ss[1:] {
		if s.n != h.n || s.m != h.m || s.set != h.set {
			return false
		}
		if s.lin.kind() != LinSysLDLT {
			return false
		}
		if math.Float64bits(s.rho) != math.Float64bits(h.rho) ||
			math.Float64bits(s.cinv) != math.Float64bits(h.cinv) {
			return false
		}
		if !floatBitsEqual(s.d, h.d) || !floatBitsEqual(s.e, h.e) {
			return false
		}
		if !csrEqual(s.p, h.p) || !csrEqual(s.a, h.a) {
			return false
		}
	}
	return true
}

// SolveBatchCtx runs ADMM on every solver in lockstep, sharing the lead
// solver's factorization for the per-iteration x-steps when the family
// passes the bitwise compatibility validation; otherwise it degrades to
// sequential SolveCtx calls (counted as qp/batch_fallbacks).  The
// returned slice is index-aligned with solvers.  A member that
// converges (or certifies infeasibility) freezes — its iterate stops
// moving while the rest of the family continues — and ρ is adapted
// once for the whole family from the worst tolerance-normalized
// residuals, staying equal across members so the family remains
// batchable on the next call.  A canceled context stops every member
// within one iteration, returning the usual wrapped error.
func SolveBatchCtx(ctx context.Context, solvers []*Solver) ([]*Result, error) {
	if len(solvers) == 0 {
		return nil, nil
	}
	for i, s := range solvers {
		for _, t := range solvers[:i] {
			if s == t {
				return nil, errors.New("qp: solver batch lists the same solver twice")
			}
		}
	}
	if len(solvers) == 1 {
		res, err := solvers[0].SolveCtx(ctx)
		return []*Result{res}, err
	}
	if !batchCompatible(solvers) {
		obs.From(ctx).Add("qp/batch_fallbacks", 1)
		return solveSequential(ctx, solvers)
	}

	host := solvers[0]
	set := host.set
	workers := par.Workers(set.Workers)
	n, m := host.n, host.m
	nb := len(solvers)

	results := make([]*Result, nb)
	snaps := make([]ctrSnap, nb)
	warms := make([]bool, nb)
	lastPrim := make([]float64, nb)
	lastDual := make([]float64, nb)
	bestScore := make([]float64, nb)
	stalledChecks := make([]int, nb)
	for q, s := range solvers {
		results[q] = &Result{Status: MaxIterations, RhoFinal: s.rho}
		snaps[q] = s.snapCounters()
		warms[q] = s.solves > 0 || s.warmed
		for i := range s.dyAcc {
			s.dyAcc[i] = 0
		}
		bestScore[q] = math.Inf(1)
	}

	live := make([]int, nb)
	for q := range live {
		live[q] = q
	}
	xs := make([][]float64, 0, nb)
	bs := make([][]float64, 0, nb)

	var cause error
	for iter := 1; iter <= set.MaxIter && len(live) > 0; iter++ {
		if err := ctx.Err(); err != nil {
			cause = fmt.Errorf("qp: canceled at iteration %d: %w", iter, err)
			for _, q := range live {
				results[q].Iters = iter - 1
			}
			break
		}

		// x-step: one right-hand side per live member, one multi-RHS
		// solve against the lead solver's backend.  The tolerance is the
		// tightest of the members' inexact-ADMM schedules (only the CG
		// path reads it; a mid-flight LDLᵀ breakdown lands there).
		tol := math.Inf(1)
		for _, q := range live {
			s := solvers[q]
			s.assembleXStepRHS()
			if t := cgTolFor(set, lastPrim[q], lastDual[q]); t < tol {
				tol = t
			}
		}
		if host.lin.kind() != LinSysLDLT {
			for _, q := range live {
				copy(solvers[q].xt, solvers[q].x) // CG warm start from x
			}
		}
		xs, bs = xs[:0], bs[:0]
		for _, q := range live {
			xs = append(xs, solvers[q].xt)
			bs = append(bs, solvers[q].rhs)
		}
		iters, lerr := host.lin.solveBatch(xs, bs, tol)
		if lerr != nil {
			// LDLᵀ numeric breakdown on the shared factor: the matrices
			// are identical, so the lead's CG fallback serves the whole
			// family (its solveBatch degrades to per-RHS CG runs).
			host.fallbackToCG()
			for _, q := range live {
				copy(solvers[q].xt, solvers[q].x)
			}
			iters, _ = host.lin.solveBatch(xs, bs, tol)
		}
		// Inner iterations come back as a per-batch total (the backend
		// does not split them by member); attribute them to the first
		// live member rather than multi-counting.
		results[live[0]].CGIters += iters

		for _, q := range live {
			s := solvers[q]
			s.a.MulVecW(s.zt, s.xt, workers)
			s.applyRelaxation()
		}

		if iter%set.CheckEvery != 0 && iter != set.MaxIter {
			continue
		}

		// Residual checks per live member; converged and infeasible
		// members freeze.  The worst tolerance-normalized residuals
		// across the members that remain drive the shared ρ.
		keep := live[:0]
		primScore, dualScore := 0.0, 0.0
		restart := false
		for _, q := range live {
			s := solvers[q]
			res := results[q]
			prim, dual, epsP, epsD := s.residuals()
			lastPrim[q], lastDual[q] = prim, dual
			res.Iters = iter
			res.PrimRes, res.DualRes = prim, dual
			if prim <= epsP && dual <= epsD {
				res.Status = Solved
				continue
			}
			if s.primalInfeasible(s.dyAcc) {
				res.Status = PrimalInfeasible
				continue
			}
			for i := range s.dyAcc {
				s.dyAcc[i] = 0
			}
			if v := prim / epsP; v > primScore {
				primScore = v
			}
			if v := dual / epsD; v > dualScore {
				dualScore = v
			}
			if score := math.Max(prim/epsP, dual/epsD); score < 0.99*bestScore[q] {
				bestScore[q] = score
				stalledChecks[q] = 0
			} else if stalledChecks[q]++; stalledChecks[q] >= stallWindow {
				// Per-member in-place restart (z re-anchored), exactly as
				// in SolveCtx; the ρ part of the restart is shared below.
				s.a.MulVec(s.z, s.x)
				lastPrim[q], lastDual[q] = 0, 0
				stalledChecks[q] = 0
				res.Restarts++
				restart = true
			}
			keep = append(keep, q)
		}
		live = keep
		if len(live) == 0 {
			break
		}
		// Shared ρ: one factor means one ρ for the family.  A stall
		// restart resets to the initial rung (re-hitting the first
		// factor's cache key); otherwise adapt from the aggregated
		// residual scores on the usual 2× trigger and ρ-ladder.  Frozen
		// members track the shared ρ too, so the family stays
		// batch-compatible for the caller's next round.
		newRho := host.rho
		if restart {
			newRho = set.Rho
		} else if set.AdaptiveRho && primScore > 0 && dualScore > 0 {
			ratio := math.Sqrt(primScore / dualScore)
			if ratio > 2 || ratio < 0.5 {
				r := host.rho * ratio
				if r < 1e-6 {
					r = 1e-6
				}
				if r > 1e6 {
					r = 1e6
				}
				newRho = rhoRung(r)
			}
		}
		if newRho != host.rho {
			for _, s := range solvers {
				s.rho = newRho
			}
		}
	}

	// Unscale and publish every member.  Frozen members kept the iterate
	// of the check they terminated at; the rest hold the final iterate.
	for q, s := range solvers {
		res := results[q]
		res.X = make([]float64, n)
		for j := 0; j < n; j++ {
			res.X[j] = s.d[j] * s.x[j]
		}
		res.Y = make([]float64, m)
		for i := 0; i < m; i++ {
			res.Y[i] = s.cinv * s.e[i] * s.y[i]
		}
		res.Obj = s.Objective(res.X)
		res.RhoFinal = s.rho
		warm := warms[q]
		s.solves++
		s.emitTelemetry(ctx, res, snaps[q], warm)
	}
	obs.From(ctx).Add("qp/batch_lockstep_solves", 1)
	return results, cause
}

// solveSequential is the degraded path: per-member SolveCtx calls in
// slice order.  Results stay index-aligned; the first error aborts the
// remaining members (matching the lockstep path, where a canceled
// context stops the whole family).
func solveSequential(ctx context.Context, solvers []*Solver) ([]*Result, error) {
	results := make([]*Result, len(solvers))
	for i, s := range solvers {
		res, err := s.SolveCtx(ctx)
		results[i] = res
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
