package gen

import (
	"math"
	"testing"
)

func TestPresetsMatchTableI(t *testing.T) {
	cases := []struct {
		p     Preset
		cells int
		areaM float64 // mm²
	}{
		{AES65(), 16187, 0.058},
		{JPEG65(), 68286, 0.268},
		{AES90(), 21944, 0.25},
		{JPEG90(), 98555, 1.09},
	}
	for _, c := range cases {
		if c.p.Cells != c.cells {
			t.Errorf("%s: cells = %d, want %d", c.p.Name, c.p.Cells, c.cells)
		}
		area := c.p.ChipW * c.p.ChipH / 1e6
		if math.Abs(area-c.areaM) > 0.05*c.areaM {
			t.Errorf("%s: area = %.3f mm², want %.3f", c.p.Name, area, c.areaM)
		}
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("AES-90")
	if err != nil || p.Tech != "N90" {
		t.Errorf("PresetByName: %+v, %v", p, err)
	}
	if _, err := PresetByName("DES-45"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestScaled(t *testing.T) {
	p := AES65().Scaled(0.25)
	if p.Cells != 16187/4 {
		t.Errorf("scaled cells = %d", p.Cells)
	}
	// Density (cells per area) preserved.
	d0 := float64(AES65().Cells) / (AES65().ChipW * AES65().ChipH)
	d1 := float64(p.Cells) / (p.ChipW * p.ChipH)
	if math.Abs(d1-d0) > 0.02*d0 {
		t.Errorf("density changed: %v vs %v", d1, d0)
	}
	// Bad factors are no-ops.
	if q := AES65().Scaled(0); q.Cells != AES65().Cells {
		t.Error("Scaled(0) should be a no-op")
	}
	if q := AES65().Scaled(2); q.Cells != AES65().Cells {
		t.Error("Scaled(2) should be a no-op")
	}
}

func TestGenerateSmall(t *testing.T) {
	p := AES65().Scaled(0.05) // ~800 cells
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Circ.Validate(); err != nil {
		t.Fatal(err)
	}
	st, err := d.Circ.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Pad-buffer insertion (endpoint retargeting) makes the exact count
	// fluctuate a few percent around the Table I target.
	if math.Abs(float64(st.Cells-p.Cells)) > 0.06*float64(p.Cells) {
		t.Errorf("cells = %d, want ≈%d", st.Cells, p.Cells)
	}
	if st.Seq == 0 {
		t.Error("no flip-flops generated")
	}
	if st.Depth < p.Depth/2 {
		t.Errorf("depth = %d, want ≥ %d", st.Depth, p.Depth/2)
	}
	// Every cell has a master and placed width.
	for _, g := range d.Circ.Gates {
		switch g.Kind {
		case 0, 1: // Comb, Seq
			if d.Master(g.ID) == nil {
				t.Fatalf("cell %q lacks a master", g.Name)
			}
		}
	}
	// Placement legal and on-die.
	if d.Pl.OverlapCount() != 0 {
		t.Errorf("placement has %d overlaps", d.Pl.OverlapCount())
	}
	if err := d.Pl.InBounds(); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := AES90().Scaled(0.03)
	d1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Circ.NumGates() != d2.Circ.NumGates() {
		t.Fatal("non-deterministic gate count")
	}
	for i := range d1.Circ.Gates {
		g1, g2 := d1.Circ.Gates[i], d2.Circ.Gates[i]
		if g1.Master != g2.Master || len(g1.Fanins) != len(g2.Fanins) {
			t.Fatalf("non-deterministic gate %d", i)
		}
		if d1.Pl.X[i] != d2.Pl.X[i] || d1.Pl.Y[i] != d2.Pl.Y[i] {
			t.Fatalf("non-deterministic placement at %d", i)
		}
	}
}

func TestGenerateLocality(t *testing.T) {
	// Placed netlists must have wire locality: the average net HPWL must
	// be far below the die diagonal (random placement would be ~half the
	// half-perimeter).
	p := JPEG65().Scaled(0.02)
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	total := d.Pl.TotalHPWL()
	nets := d.Circ.NumNets()
	avg := total / float64(nets)
	halfPerim := p.ChipW + p.ChipH
	if avg > 0.35*halfPerim {
		t.Errorf("average net HPWL %.1f µm too large vs half-perimeter %.1f", avg, halfPerim)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Preset{Name: "bad", Tech: "N13", Cells: 1000, Depth: 10}); err == nil {
		t.Error("unknown tech should fail")
	}
	if _, err := Generate(Preset{Name: "tiny", Tech: "N65", Cells: 5, Depth: 10, ChipW: 10, ChipH: 10}); err == nil {
		t.Error("tiny preset should fail")
	}
}

func TestSetMaster(t *testing.T) {
	d, err := Generate(AES65().Scaled(0.03))
	if err != nil {
		t.Fatal(err)
	}
	// Find a combinational gate and rebind it.
	for _, g := range d.Circ.Gates {
		if d.Master(g.ID) != nil && !d.Master(g.ID).Seq {
			m := d.Lib.MustMaster("INVX8")
			d.SetMaster(g.ID, m)
			if d.Master(g.ID) != m || g.Master != "INVX8" {
				t.Error("SetMaster did not rebind")
			}
			return
		}
	}
	t.Fatal("no combinational gate found")
}
