// Package gen provides the testcase substrate: a deterministic synthetic
// netlist-plus-placement generator with presets that stand in for the
// paper's industrial AES and JPEG designs (Table I).
//
// The original testcases are proprietary Artisan TSMC implementations.
// What the dose-map optimization actually responds to is (a) the cell
// count and die area — which set the cells-per-grid density the paper
// analyses in Section V — and (b) the slack distribution — the "slack
// wall" of Table VII that separates the easy 90 nm cases from the hard
// 65 nm ones.  The generator therefore exposes both as parameters, and
// the presets reproduce Table I's cell counts, die areas, and Table VII's
// criticality profiles.
//
// Layout: gates are placed in dataflow order (logic level → x band, fanin
// locality → y) and legalized into rows, giving connected cells spatial
// locality so that the bounding-box-based dosePl heuristic has realistic
// structure to work with.
package gen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sta"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/tech"
)

// Preset parameterizes one synthetic design.
type Preset struct {
	Name string
	// Tech is the technology node name ("N65" or "N90").
	Tech string
	// Cells is the target standard-cell instance count.
	Cells int
	// ChipW, ChipH are die dimensions in µm.
	ChipW, ChipH float64
	// Depth is the target combinational depth (logic levels).
	Depth int
	// CriticalFrac is the fraction of gates biased into the deepest
	// levels, shaping the body of the endpoint-arrival distribution.
	CriticalFrac float64
	// Crit95, Crit90 and Crit80 are the target cumulative fractions of
	// timing endpoints whose arrival falls within 95-100%, 90-100% and
	// 80-100% of the MCT — the Table VII criticality profile the
	// generator reproduces by arrival-targeted endpoint wiring.
	Crit95, Crit90, Crit80 float64
	// FFFrac is the flip-flop fraction of all cells.
	FFFrac float64
	// PIs, POs are the port counts.
	PIs, POs int
	// LeakAdjust scales library leakage for this design (1 = library
	// default), modelling per-design Vth-assignment mixes; see
	// Library.ScaleLeakage.
	LeakAdjust float64
	// Seed makes generation deterministic.
	Seed int64
}

// The four presets mirror Table I: cell counts and die areas match the
// paper (AES-65: 0.058 mm², 16 187 cells; JPEG-65: 0.268 mm², 68 286;
// AES-90: 0.25 mm², 21 944; JPEG-90: 1.09 mm², 98 555).  Depth and
// criticality are tuned to Table VII's slack profiles: the 65 nm cases
// have a wall of near-critical paths, the 90 nm cases almost none.

// AES65 returns the AES-65 preset.
func AES65() Preset {
	return Preset{
		Name: "AES-65", Tech: "N65", Cells: 16187,
		ChipW: 241, ChipH: 241,
		Depth: 34, CriticalFrac: 0.32, Crit95: 0.1654, Crit90: 0.2898, Crit80: 0.4198, FFFrac: 0.08,
		PIs: 64, POs: 64, Seed: 650001,
	}
}

// JPEG65 returns the JPEG-65 preset.
func JPEG65() Preset {
	return Preset{
		Name: "JPEG-65", Tech: "N65", Cells: 68286,
		ChipW: 518, ChipH: 518,
		Depth: 40, CriticalFrac: 0.12, Crit95: 0.0480, Crit90: 0.0989, Crit80: 0.3023, FFFrac: 0.07,
		PIs: 96, POs: 96, LeakAdjust: 1.56, Seed: 650002,
	}
}

// AES90 returns the AES-90 preset.
func AES90() Preset {
	return Preset{
		Name: "AES-90", Tech: "N90", Cells: 21944,
		ChipW: 500, ChipH: 500,
		Depth: 30, CriticalFrac: 0.03, Crit95: 0.0040, Crit90: 0.0300, Crit80: 0.1900, FFFrac: 0.08,
		PIs: 64, POs: 64, Seed: 900001,
	}
}

// JPEG90 returns the JPEG-90 preset.
func JPEG90() Preset {
	return Preset{
		Name: "JPEG-90", Tech: "N90", Cells: 98555,
		ChipW: 1044, ChipH: 1044,
		Depth: 30, CriticalFrac: 0.008, Crit95: 0.0012, Crit90: 0.0035, Crit80: 0.0392, FFFrac: 0.07,
		PIs: 96, POs: 96, LeakAdjust: 0.40, Seed: 900002,
	}
}

// Presets returns all four Table I presets in paper order.
func Presets() []Preset {
	return []Preset{AES65(), JPEG65(), AES90(), JPEG90()}
}

// PresetByName resolves a preset from its Table I name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("gen: unknown preset %q", name)
}

// Scaled returns a copy of the preset shrunk by the given factor f in
// cell count (die dimensions shrink by √f so the cells-per-grid density
// is preserved).  Useful for fast tests and benchmarks.
func (p Preset) Scaled(f float64) Preset {
	if f <= 0 || f > 1 {
		return p
	}
	q := p
	q.Cells = int(float64(p.Cells) * f)
	if q.Cells < 200 {
		q.Cells = 200
	}
	s := math.Sqrt(f)
	q.ChipW = p.ChipW * s
	q.ChipH = p.ChipH * s
	if q.Depth > 10 {
		// Keep depth but trim a little so tiny instances still have
		// enough gates per level.
		q.Depth = int(float64(p.Depth) * math.Max(0.5, s))
	}
	q.PIs = max(8, int(float64(p.PIs)*s))
	q.POs = max(8, int(float64(p.POs)*s))
	q.Name = fmt.Sprintf("%s(x%.2f)", p.Name, f)
	return q
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Design bundles everything the flow needs: netlist, library, placement.
type Design struct {
	Preset  Preset
	Node    *tech.Node
	Lib     *liberty.Library
	Circ    *netlist.Circuit
	Pl      *place.Placement
	Masters []*liberty.Master // per gate ID; nil for ports
}

// Master returns the master of gate id (nil for ports).
func (d *Design) Master(id int) *liberty.Master { return d.Masters[id] }

// SetMaster rebinds gate id to a master (used by sizing-style updates).
func (d *Design) SetMaster(id int, m *liberty.Master) {
	d.Masters[id] = m
	d.Circ.Gates[id].Master = m.Name
}

// combFamilies maps fanin count to candidate function families with
// selection weights (roughly production-mix proportions).
var combFamilies = map[int][]struct {
	fn string
	w  float64
}{
	1: {{"INV", 0.7}, {"BUF", 0.3}},
	2: {{"NAND2", 0.35}, {"NOR2", 0.25}, {"XOR2", 0.12}, {"XNOR2", 0.08}, {"AND2", 0.1}, {"OR2", 0.1}},
	3: {{"NAND3", 0.3}, {"NOR3", 0.2}, {"AOI21", 0.2}, {"OAI21", 0.2}, {"MUX2", 0.1}},
	4: {{"NAND4", 0.4}, {"AOI22", 0.3}, {"OAI22", 0.3}},
}

func pickFamily(rng *rand.Rand, fanins int) string {
	fams := combFamilies[fanins]
	r := rng.Float64()
	acc := 0.0
	for _, f := range fams {
		acc += f.w
		if r < acc {
			return f.fn
		}
	}
	return fams[len(fams)-1].fn
}

// driveFor picks a drive strength for the expected fanout count from the
// available variants of the family.
func driveFor(lib *liberty.Library, fn string, fanouts int) *liberty.Master {
	want := 1
	switch {
	case fanouts >= 24:
		want = 16
	case fanouts >= 8:
		want = 8
	case fanouts >= 5:
		want = 4
	case fanouts >= 3:
		want = 2
	}
	best := lib.MustMaster(fmt.Sprintf("%sX1", fn))
	for want > 1 {
		if m, ok := lib.Master(fmt.Sprintf("%sX%d", fn, want)); ok {
			return m
		}
		want /= 2
	}
	return best
}

// Generate builds the design for a preset.
func Generate(p Preset) (*Design, error) {
	return GenerateCtx(context.Background(), p)
}

// GenerateCtx is Generate with cancellation: a canceled context aborts
// the endpoint-rewiring analyses (the expensive phase) with an error
// wrapping context.Canceled.
func GenerateCtx(ctx context.Context, p Preset) (*Design, error) {
	node, err := tech.ByName(p.Tech)
	if err != nil {
		return nil, err
	}
	if p.Cells < 10 || p.Depth < 2 {
		return nil, fmt.Errorf("gen: preset %q too small (cells=%d depth=%d)", p.Name, p.Cells, p.Depth)
	}
	lib := liberty.New(node)
	if p.LeakAdjust > 0 && p.LeakAdjust != 1 {
		lib.ScaleLeakage(p.LeakAdjust)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	circ := netlist.New(p.Name)

	nFF := int(float64(p.Cells) * p.FFFrac)
	if nFF < 1 {
		nFF = 1
	}
	nComb := p.Cells - nFF
	// Reserve headroom for the pad buffers rewireEndpoints inserts
	// (~0.7 per endpoint empirically), keeping the final cell count on
	// the Table I target.
	if p.Crit95 > 0 {
		reserve := int(0.7 * float64(nFF+p.POs))
		if reserve < nComb/2 {
			nComb -= reserve
		}
	}

	// Ports and flip-flops.
	var pis, ffs, pos []int
	for i := 0; i < p.PIs; i++ {
		pis = append(pis, circ.AddGate(fmt.Sprintf("pi%d", i), "", netlist.PI).ID)
	}
	ffMasters := []string{"DFFX1", "DFFX2", "DFFX1", "DFFRX1", "DFFX1", "SDFFX1"}
	for i := 0; i < nFF; i++ {
		m := ffMasters[rng.Intn(len(ffMasters))]
		ffs = append(ffs, circ.AddGate(fmt.Sprintf("ff%d", i), m, netlist.Seq).ID)
	}
	for i := 0; i < p.POs; i++ {
		pos = append(pos, circ.AddGate(fmt.Sprintf("po%d", i), "", netlist.PO).ID)
	}

	// Level plan: distribute combinational gates over levels 1..Depth.
	// CriticalFrac of the gates are biased into the top decile of levels
	// to build the near-critical wall; the rest spread uniformly with a
	// mild front-load (real designs have wide shallow logic).
	levelOf := make([]int, nComb)
	for i := range levelOf {
		if rng.Float64() < p.CriticalFrac {
			lo := int(0.9 * float64(p.Depth))
			levelOf[i] = lo + rng.Intn(p.Depth-lo+1)
		} else {
			// Triangular-ish toward shallow levels.
			a, b := rng.Float64(), rng.Float64()
			levelOf[i] = 1 + int(math.Min(a, b)*float64(p.Depth))
		}
		if levelOf[i] < 1 {
			levelOf[i] = 1
		}
		if levelOf[i] > p.Depth {
			levelOf[i] = p.Depth
		}
	}
	// Bucket by level; every level must be populated or deep chains break.
	buckets := make([][]int, p.Depth+1)
	for i, l := range levelOf {
		buckets[l] = append(buckets[l], i)
	}
	for l := 1; l <= p.Depth; l++ {
		if len(buckets[l]) == 0 {
			// Steal a gate from the largest bucket.
			big := 1
			for k := 1; k <= p.Depth; k++ {
				if len(buckets[k]) > len(buckets[big]) {
					big = k
				}
			}
			g := buckets[big][len(buckets[big])-1]
			buckets[big] = buckets[big][:len(buckets[big])-1]
			buckets[l] = append(buckets[l], g)
		}
	}

	// Spatial clusters (datapath bit-slice analogue): gates connect
	// mostly within their own cluster, and clusters map to horizontal
	// placement bands.  This gives the netlist the wire locality of a
	// real placed-and-routed design; without it nets span the die and
	// wire capacitance dominates every stage delay.
	nClusters := int(math.Max(4, math.Min(64, p.ChipH/16)))
	clusterOf := make(map[int]int)
	level0 := append(append([]int{}, pis...), ffs...)
	for i, id := range level0 {
		clusterOf[id] = i % nClusters
	}
	byLevel := make([][][]int, p.Depth+1) // [level][cluster][]gate
	for l := range byLevel {
		byLevel[l] = make([][]int, nClusters)
	}
	for _, id := range level0 {
		byLevel[0][clusterOf[id]] = append(byLevel[0][clusterOf[id]], id)
	}
	fanoutCount := make(map[int]int)

	pickDriver := func(maxLevel, cluster int, rng *rand.Rand) int {
		// Prefer the immediately preceding level in the same cluster
		// (chain structure); otherwise a recent level in the same or a
		// neighboring cluster.  Real netlists are local — long
		// cross-chip nets are rare.
		const window = 6
		for tries := 0; tries < 12; tries++ {
			l := maxLevel
			c := cluster
			if tries > 0 {
				lo := maxLevel - window
				if lo < 0 {
					lo = 0
				}
				l = lo + rng.Intn(maxLevel-lo+1)
				if tries > 6 {
					// Occasional neighbor-cluster (global net) hop.
					c = cluster + rng.Intn(3) - 1
					if c < 0 {
						c = 0
					}
					if c >= nClusters {
						c = nClusters - 1
					}
				}
			}
			cands := byLevel[l][c]
			if len(cands) == 0 {
				continue
			}
			id := cands[rng.Intn(len(cands))]
			if fanoutCount[id] < 10 {
				return id
			}
		}
		// Give up on cluster and fanout caps.
		for l := maxLevel; l >= 0; l-- {
			for c := 0; c < nClusters; c++ {
				if len(byLevel[l][c]) > 0 {
					return byLevel[l][c][rng.Intn(len(byLevel[l][c]))]
				}
			}
		}
		return level0[0]
	}

	// Instantiate combinational gates level by level.
	for l := 1; l <= p.Depth; l++ {
		for range buckets[l] {
			nIn := 1 + rng.Intn(4)
			fn := pickFamily(rng, nIn)
			fo := 1 + rng.Intn(4) // estimated fanout for drive selection
			m := driveFor(lib, fn, fo)
			g := circ.AddGate(fmt.Sprintf("u%d", circ.NumGates()), m.Name, netlist.Comb)
			cluster := rng.Intn(nClusters)
			// First fanin from level l-1 to guarantee the level.
			d0 := pickDriver(l-1, cluster, rng)
			// Inherit the first driver's cluster: chains stay in-band.
			cluster = clusterOf[d0]
			clusterOf[g.ID] = cluster
			if err := circ.Connect(d0, g.ID); err != nil {
				return nil, err
			}
			fanoutCount[d0]++
			for k := 1; k < nIn; k++ {
				d := pickDriver(l-1, cluster, rng)
				if err := circ.Connect(d, g.ID); err != nil {
					return nil, err
				}
				fanoutCount[d]++
			}
			byLevel[l][cluster] = append(byLevel[l][cluster], g.ID)
		}
	}

	// Terminate dangling outputs into FF D-inputs and POs (every FF
	// needs exactly one D driver; every PO exactly one driver).  This is
	// seed wiring only: after placement, rewireEndpoints retargets each
	// endpoint to a driver whose arrival matches the preset's Table VII
	// criticality profile.  Unused dangling gates remain as dead logic
	// (they still contribute area and leakage, like real spare cells).
	var dangling []int
	for _, g := range circ.Gates {
		if (g.Kind == netlist.Comb) && len(g.Fanouts) == 0 {
			dangling = append(dangling, g.ID)
		}
	}
	rng.Shuffle(len(dangling), func(i, j int) { dangling[i], dangling[j] = dangling[j], dangling[i] })
	anyDeepGate := func() int {
		for l := p.Depth; l >= 1; l-- {
			for c := 0; c < nClusters; c++ {
				if len(byLevel[l][c]) > 0 {
					return byLevel[l][c][rng.Intn(len(byLevel[l][c]))]
				}
			}
		}
		return level0[0]
	}
	di := 0
	takeDriver := func() int {
		if di < len(dangling) {
			di++
			return dangling[di-1]
		}
		return anyDeepGate()
	}
	for _, ep := range append(append([]int{}, ffs...), pos...) {
		if err := circ.Connect(takeDriver(), ep); err != nil {
			return nil, err
		}
	}

	if err := circ.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated netlist invalid: %w", err)
	}

	// Resolve masters per gate.
	masters := make([]*liberty.Master, circ.NumGates())
	for _, g := range circ.Gates {
		if g.Master == "" {
			continue
		}
		m, ok := lib.Master(g.Master)
		if !ok {
			return nil, fmt.Errorf("gen: gate %q references unknown master %q", g.Name, g.Master)
		}
		masters[g.ID] = m
	}

	// Placement: dataflow x bands by level, fanin-locality y, legalized.
	rowH := 1.4 * node.Lnom / 65
	pl := place.New(circ, p.ChipW, p.ChipH, rowH)
	levels, err := circ.Levelize()
	if err != nil {
		return nil, err
	}
	maxLevel := 1
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	margin := 2.0
	for _, g := range circ.Gates {
		id := g.ID
		switch g.Kind {
		case netlist.PI:
			pl.X[id] = 0
			pl.Y[id] = p.ChipH * float64(id%len(pis)) / float64(len(pis))
		case netlist.PO:
			pl.X[id] = p.ChipW
			pl.Y[id] = p.ChipH * rng.Float64()
		default:
			frac := float64(levels[id]) / float64(maxLevel)
			pl.X[id] = margin + frac*(p.ChipW-2*margin)*0.92 + rng.Float64()*0.08*p.ChipW
			band := p.ChipH / float64(nClusters)
			c, ok := clusterOf[id]
			if !ok {
				c = rng.Intn(nClusters)
			}
			pl.Y[id] = (float64(c) + rng.Float64()) * band
			if pl.Y[id] > p.ChipH-rowH {
				pl.Y[id] = p.ChipH - rowH
			}
			pl.Width[id] = masters[id].Area / rowH
			if pl.X[id]+pl.Width[id] > p.ChipW {
				pl.X[id] = p.ChipW - pl.Width[id]
			}
		}
	}
	if err := pl.AssignRows(0.92); err != nil {
		return nil, fmt.Errorf("gen: row assignment failed: %w", err)
	}
	if _, err := pl.Legalize(); err != nil {
		return nil, fmt.Errorf("gen: legalization failed: %w", err)
	}

	d := &Design{Preset: p, Node: node, Lib: lib, Circ: circ, Pl: pl, Masters: masters}
	if err := rewireEndpoints(ctx, d, rng); err != nil {
		return nil, err
	}
	if err := circ.Validate(); err != nil {
		return nil, fmt.Errorf("gen: netlist invalid after endpoint rewiring: %w", err)
	}
	return d, nil
}

// rewireEndpoints retargets every flip-flop D input and primary output
// so that endpoint arrival times reproduce the preset's Table VII
// criticality profile (the 65 nm "slack wall" versus the relaxed 90 nm
// distributions).
//
// Each endpoint gets a target arrival sampled from the profile; it is
// rewired to the combinational driver whose arrival sits closest below
// the target, and the residual gap is padded with a buffer chain whose
// delay is computed from the device model — exactly how synthesized
// netlists hit register timing with buffer insertion.  One analysis
// drives the whole assignment, so the procedure is deterministic and
// does not oscillate.
func rewireEndpoints(ctx context.Context, d *Design, rng *rand.Rand) error {
	p := d.Preset
	if p.Crit95 <= 0 {
		return nil // no profile requested
	}
	cfg := sta.DefaultConfig()
	in := sta.Input{Circ: d.Circ, Masters: d.Masters, Pl: d.Pl, Node: d.Node}
	r, err := sta.AnalyzeCtx(ctx, in, cfg, nil)
	if err != nil {
		return err
	}

	// Candidate drivers sorted by arrival.
	type cand struct {
		id  int
		arr float64
	}
	var cands []cand
	maxArr := 0.0
	argMax := -1
	for id, g := range d.Circ.Gates {
		if g.Kind != netlist.Comb {
			continue
		}
		cands = append(cands, cand{id, r.AOut[id]})
		if r.AOut[id] > maxArr {
			maxArr = r.AOut[id]
			argMax = id
		}
	}
	if argMax < 0 {
		return fmt.Errorf("gen: no combinational drivers for endpoint rewiring")
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].arr < cands[b].arr })

	var endpoints []int
	for id, g := range d.Circ.Gates {
		if (g.Kind == netlist.Seq || g.Kind == netlist.PO) && len(g.Fanins) == 1 {
			endpoints = append(endpoints, id)
		}
	}
	rng.Shuffle(len(endpoints), func(i, j int) { endpoints[i], endpoints[j] = endpoints[j], endpoints[i] })

	// The anchor endpoint captures the deepest cone and defines the MCT
	// everything else is targeted against.
	anchor := endpoints[0]
	over := func(ep int) float64 {
		g := d.Circ.Gates[ep]
		o := in.WireDelay(g.Fanins[0], ep)
		if m := d.Masters[ep]; m != nil {
			o += m.Setup
		}
		return o
	}
	mct0 := maxArr + over(anchor)

	fanout := func(id int) int { return len(d.Circ.Gates[id].Fanouts) }
	// closestBelow returns the candidate with the largest arrival ≤ want
	// that still has fanout headroom.
	closestBelow := func(want float64) cand {
		lo, hi := 0, len(cands)
		for lo < hi {
			mid := (lo + hi) / 2
			if cands[mid].arr <= want {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for idx := lo - 1; idx >= 0; idx-- {
			if fanout(cands[idx].id) < 12 {
				return cands[idx]
			}
		}
		return cands[0]
	}

	buf := d.Lib.MustMaster("BUFX2")
	rowH := d.Pl.RowHeight
	node := d.Node
	cwire := func(dist float64) float64 { return 0.5 * node.WireRPerUm * dist * node.WireCPerUm * dist }

	// planChain sizes a pad chain to consume a delay gap.  Small gaps use
	// tightly packed buffers; large gaps use wire-detour stages (a buffer
	// placed ~hop µm away), which is both how real slow paths look and
	// far cheaper in cell count than hundreds of back-to-back buffers.
	const hop = 140.0
	type stage struct{ dist float64 }
	planChain := func(startSlew, gap float64) []stage {
		if gap <= 0 {
			return nil
		}
		slew := startSlew
		total := 0.0
		var plan []stage
		for len(plan) < 64 {
			dist := 3.0
			load := buf.CIn + node.WireCPerUm*dist
			wd := cwire(dist)
			slewIn := slew + cfg.SlewWireFactor*wd
			small := wd + buf.Delay(0, 0, slewIn, load)
			// Try a wire-detour stage when the gap warrants it.
			distL := hop
			loadL := buf.CIn + node.WireCPerUm*distL
			wdL := cwire(distL)
			slewInL := slew + cfg.SlewWireFactor*wdL
			large := wdL + buf.Delay(0, 0, slewInL, loadL)
			var st float64
			if gap-total > large+small/2 {
				dist, st = distL, large
				slew = buf.OutSlew(0, 0, slewInL, loadL)
			} else {
				st = small
				slew = buf.OutSlew(0, 0, slewIn, load)
			}
			if total+st/2 >= gap {
				break
			}
			plan = append(plan, stage{dist})
			total += st
		}
		return plan
	}

	// addChain realizes a planned chain from drv, returning its last gate.
	addChain := func(drv int, plan []stage) (int, error) {
		prev := drv
		dir := 1.0
		for k, st := range plan {
			g := d.Circ.AddGate(fmt.Sprintf("pad%d", d.Circ.NumGates()), buf.Name, netlist.Comb)
			d.Masters = append(d.Masters, buf)
			x := d.Pl.X[prev] + dir*st.dist
			if x < 1 || x > d.Pl.ChipW-2 {
				dir = -dir
				x = d.Pl.X[prev] + dir*st.dist
				if x < 1 {
					x = 1
				}
				if x > d.Pl.ChipW-2 {
					x = d.Pl.ChipW - 2
				}
			}
			y := d.Pl.Y[prev] + rowH*float64(1+k%3)
			if y > d.Pl.ChipH-rowH {
				y = d.Pl.ChipH - rowH
			}
			d.Pl.X = append(d.Pl.X, x)
			d.Pl.Y = append(d.Pl.Y, y)
			d.Pl.Width = append(d.Pl.Width, buf.Area/rowH)
			if err := d.Circ.Connect(prev, g.ID); err != nil {
				return -1, err
			}
			prev = g.ID
		}
		return prev, nil
	}

	// Sample stable per-endpoint targets once.
	target := make(map[int]float64, len(endpoints))
	for i, ep := range endpoints {
		if i == 0 {
			target[ep] = 1 // the anchor defines the MCT
			continue
		}
		u := rng.Float64()
		switch {
		case u < p.Crit95:
			target[ep] = 0.952 + 0.032*rng.Float64()
		case u < p.Crit90:
			target[ep] = 0.903 + 0.048*rng.Float64()
		case u < p.Crit80:
			target[ep] = 0.803 + 0.098*rng.Float64()
		default:
			target[ep] = 0.45 + 0.35*rng.Float64()
		}
	}

	touched := make(map[int]bool)
	retarget := func(ep int, tgt, mct float64, slews []float64) error {
		g := d.Circ.Gates[ep]
		old := g.Fanins[0]
		epOver := over(ep)
		var drv cand
		if tgt >= 1 {
			drv = cand{argMax, maxArr}
		} else {
			drv = closestBelow(tgt*mct - epOver)
		}
		if old == drv.id {
			return nil
		}
		if !d.Circ.Disconnect(old, ep) {
			return fmt.Errorf("gen: failed to disconnect endpoint %d", ep)
		}
		src := drv.id
		touched[drv.id] = true
		if tgt < 1 {
			gap := tgt*mct - epOver - drv.arr
			if plan := planChain(slews[drv.id], gap); len(plan) > 0 {
				last, err := addChain(drv.id, plan)
				if err != nil {
					return err
				}
				src = last
			}
		}
		return d.Circ.Connect(src, ep)
	}

	sort.SliceStable(endpoints, func(a, b int) bool { return target[endpoints[a]] > target[endpoints[b]] })
	for _, ep := range endpoints {
		if err := retarget(ep, target[ep], mct0, r.Slew); err != nil {
			return err
		}
	}

	// Resize only the drivers that accumulated endpoint fanout, as an
	// incremental synthesis fix-up; then re-legalize the rows including
	// the pad buffers.
	for id := range touched {
		g := d.Circ.Gates[id]
		m := d.Masters[id]
		if m == nil || g.Kind != netlist.Comb {
			continue
		}
		up := driveFor(d.Lib, m.Func, len(g.Fanouts))
		if up != nil && up.Drive > m.Drive {
			d.SetMaster(id, up)
		}
	}
	if err := d.Pl.AssignRows(0.92); err != nil {
		return err
	}
	if _, err := d.Pl.Legalize(); err != nil {
		return err
	}

	// Refinement: the resizing and pad loads inflate the final MCT above
	// the first estimate; re-pad endpoints that drifted out of band,
	// now against the measured MCT.  Padding is accurate, so two passes
	// suffice.
	tols := []float64{0.02, 0.012, 0.009, 0.007, 0.006, 0.006}
	for pass := 0; pass < len(tols); pass++ {
		// Rebuild the input view: addChain appends to the design slices,
		// so earlier slice headers are stale.
		in = sta.Input{Circ: d.Circ, Masters: d.Masters, Pl: d.Pl, Node: d.Node}
		r, err = sta.AnalyzeCtx(ctx, in, cfg, nil)
		if err != nil {
			return err
		}
		// Refresh candidate arrivals (same gates + any pads).
		cands = cands[:0]
		for id, g := range d.Circ.Gates {
			if g.Kind == netlist.Comb {
				cands = append(cands, cand{id, r.AOut[id]})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].arr < cands[b].arr })
		mctRef := r.MCT
		moved := 0
		for _, ep := range endpoints {
			tgt := target[ep]
			if tgt >= 1 {
				continue
			}
			cur := r.AEnd[ep] / mctRef
			// Endpoints that crept above the anchor cone would ratchet
			// the MCT upward pass after pass; always pull them back.
			overshoot := cur > 0.99 && tgt < 0.99
			if !overshoot && math.Abs(cur-tgt) <= tols[pass] {
				continue
			}
			if err := retarget(ep, tgt, mctRef, r.Slew); err != nil {
				return err
			}
			moved++
		}
		if moved <= len(endpoints)/100 {
			break
		}
		if err := d.Pl.AssignRows(0.92); err != nil {
			return err
		}
		if _, err := d.Pl.Legalize(); err != nil {
			return err
		}
	}
	return nil
}
