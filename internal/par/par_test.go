package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		out, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestDoSmallestIndexError(t *testing.T) {
	// Several items fail; the error of the smallest index must win no
	// matter which goroutine observes its failure first.
	for _, workers := range []int{1, 4, 16} {
		err := Do(context.Background(), 64, workers, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, …
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: err = %v, want item 3", workers, err)
		}
	}
}

func TestDoCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, 1_000_000, 4, func(i int) error {
			if started.Add(1) == 8 {
				cancel()
			}
			time.Sleep(50 * time.Microsecond)
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if n := started.Load(); n >= 1_000_000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d items)", n)
	}
}

func TestDoPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Do(ctx, 10, 1, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("no item may start on a pre-canceled context")
	}
}

func TestSumBlocksDeterministic(t *testing.T) {
	// The reduction must be bit-identical for every worker count,
	// including sizes around the block boundary.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 1023, 1024, 1025, 10_000, 100_000} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * float64(i%13)
		}
		sum := func(workers int) float64 {
			return SumBlocks(n, workers, func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += v[i]
				}
				return s
			})
		}
		want := sum(1)
		for _, w := range []int{2, 3, 8, 64} {
			if got := sum(w); got != want {
				t.Fatalf("n=%d workers=%d: %v != %v (reduction not deterministic)", n, w, got, want)
			}
		}
	}
}

func TestBlocksCoverage(t *testing.T) {
	for _, n := range []int{1, 1024, 5000} {
		for _, w := range []int{1, 4} {
			seen := make([]atomic.Bool, n)
			Blocks(n, w, func(b, lo, hi int) {
				for i := lo; i < hi; i++ {
					if seen[i].Swap(true) {
						t.Errorf("index %d covered twice", i)
					}
				}
			})
			for i := range seen {
				if !seen[i].Load() {
					t.Fatalf("n=%d workers=%d: index %d not covered", n, w, i)
				}
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count must pass through")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}
