// Package par is the deterministic parallel-execution substrate shared
// by every hot layer of the flow: a bounded worker pool with ordered
// result collection, deterministic error propagation, and
// context.Context cancellation.
//
// Determinism contract.  Every helper in this package produces results
// that are bit-identical for any worker count, including workers = 1:
//
//   - Do/Map dispatch items by index and each item writes only its own
//     result slot, so the output never depends on completion order;
//   - on error, the error of the *smallest* item index is returned, not
//     the first one observed;
//   - SumBlocks fixes the floating-point reduction tree by a constant
//     block size chosen independently of the worker count, so partial
//     sums are combined in the same order no matter how many goroutines
//     computed them (no floating-point reassociation across workers).
//
// Cancellation contract.  When the context is canceled, in-flight items
// finish but no new item starts, and the returned error wraps
// ctx.Err(), so errors.Is(err, context.Canceled) holds.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Workers resolves a worker-count knob: n > 0 is used as given, any
// other value selects runtime.GOMAXPROCS(0) (one worker per schedulable
// CPU, the package-wide default).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs f(i) for every i in [0, n) on at most workers goroutines.
// Items are dispatched in index order from a shared counter.  The first
// error by item index aborts the remaining (not yet started) items and
// is returned; a canceled context stops dispatch and returns an error
// wrapping ctx.Err().
func Do(ctx context.Context, n, workers int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("par: canceled after %d/%d items: %w", i, n, err)
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}

	// Telemetry is observational only: when no Recorder rides the
	// context (rec == nil) the loop below is byte-for-byte the untimed
	// dispatch, so the disabled path stays allocation- and
	// syscall-free.  When enabled, each worker accumulates its busy
	// time locally and folds it in once on exit, so nothing is shared
	// per item.
	rec := obs.From(ctx)
	var wallStart time.Time
	var busyNS atomic.Int64
	if rec != nil {
		wallStart = time.Now()
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		errIdx  = n
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			var busy time.Duration
			defer func() {
				if rec != nil {
					busyNS.Add(int64(busy))
				}
				wg.Done()
			}()
			for {
				if stopped.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					stopped.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var err error
				if rec != nil {
					t0 := time.Now()
					err = f(i)
					busy += time.Since(t0)
				} else {
					err = f(i)
				}
				if err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if rec != nil {
		wall := time.Since(wallStart)
		rec.Add("par/do_calls", 1)
		rec.Add("par/items", int64(min(int(next.Load()), n)))
		rec.Observe("par/worker_busy", time.Duration(busyNS.Load()))
		if wall > 0 {
			// Occupancy ∈ (0, 1]: fraction of worker·wall capacity
			// spent inside f.
			rec.Set("par/occupancy", float64(busyNS.Load())/(float64(workers)*float64(wall)))
		}
	}
	if firstEr != nil {
		return firstEr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("par: canceled after %d/%d items: %w", min(int(next.Load()), n), n, err)
	}
	return nil
}

// Map runs f over [0, n) like Do and collects the results in index
// order.  On error or cancellation the partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(ctx, n, workers, func(i int) error {
		v, err := f(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DoWorker runs f(worker, i) for every i in [0, n) on at most workers
// goroutines, passing each invocation the stable index of the worker
// executing it (0 ≤ worker < effective workers).  The worker index
// exists so callers can hand each goroutine private scratch memory (a
// dense workspace per factorization worker, say); the RESULT of f must
// not depend on it, and f must write only state owned by item i — then
// the output is bit-identical for every worker count, including the
// inline workers == 1 path.  Unlike Do there is no error or context
// plumbing: DoWorker is for small fixed-shape kernels (one level set of
// an elimination tree) where items cannot fail individually and
// cancellation is handled between calls.
func DoWorker(n, workers int, f func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// SumBlockSize is the fixed reduction-block length of SumBlocks.  It is
// a package constant — never derived from the worker count — so the
// floating-point reduction tree is identical for every worker count.
const SumBlockSize = 1024

// SumBlocks computes Σ f(lo, hi) over consecutive [lo, hi) blocks of
// fixed size SumBlockSize covering [0, n).  Blocks are evaluated
// concurrently on up to workers goroutines; the block partials are then
// folded serially in block order.  f must be a pure function of its
// range (typically a partial dot product or partial norm).
func SumBlocks(n, workers int, f func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nb := (n + SumBlockSize - 1) / SumBlockSize
	if nb == 1 {
		return f(0, n)
	}
	partial := make([]float64, nb)
	Blocks(n, workers, func(b, lo, hi int) { partial[b] = f(lo, hi) })
	s := 0.0
	for _, p := range partial {
		s += p
	}
	return s
}

// Blocks runs f(b, lo, hi) for each fixed-size block b covering [0, n):
// block b spans [b·SumBlockSize, min((b+1)·SumBlockSize, n)).  Blocks
// run concurrently on up to workers goroutines.  Use it for row-
// partitioned matrix kernels where each output element is owned by
// exactly one block.
func Blocks(n, workers int, f func(b, lo, hi int)) {
	if n <= 0 {
		return
	}
	nb := (n + SumBlockSize - 1) / SumBlockSize
	workers = Workers(workers)
	if workers > nb {
		workers = nb
	}
	if workers == 1 || nb == 1 {
		for b := 0; b < nb; b++ {
			lo := b * SumBlockSize
			hi := min(lo+SumBlockSize, n)
			f(b, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				lo := b * SumBlockSize
				hi := min(lo+SumBlockSize, n)
				f(b, lo, hi)
			}
		}()
	}
	wg.Wait()
}
