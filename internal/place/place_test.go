package place

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

// smallCircuit: pi → a → b → po, plus a second load on a.
func smallCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("small")
	pi := c.AddGate("in", "", netlist.PI)
	a := c.AddGate("a", "INVX1", netlist.Comb)
	b := c.AddGate("b", "INVX1", netlist.Comb)
	d := c.AddGate("d", "INVX1", netlist.Comb)
	po := c.AddGate("out", "", netlist.PO)
	for _, e := range [][2]int{{pi.ID, a.ID}, {a.ID, b.ID}, {a.ID, d.ID}, {b.ID, po.ID}} {
		if err := c.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestNetHPWL(t *testing.T) {
	c := smallCircuit(t)
	p := New(c, 100, 100, 2)
	// pi=0 a=1 b=2 d=3 po=4
	p.X = []float64{0, 10, 20, 10, 30}
	p.Y = []float64{0, 0, 10, 20, 10}
	// Net driven by a (id 1): pins at a(10,0), b(20,10), d(10,20):
	// HPWL = (20-10) + (20-0) = 30.
	if got := p.NetHPWL(1); got != 30 {
		t.Errorf("NetHPWL(a) = %v, want 30", got)
	}
	// PO has no fanouts → zero.
	if got := p.NetHPWL(4); got != 0 {
		t.Errorf("NetHPWL(po) = %v, want 0", got)
	}
	total := p.TotalHPWL()
	want := p.NetHPWL(0) + p.NetHPWL(1) + p.NetHPWL(2) + p.NetHPWL(3)
	if total != want {
		t.Errorf("TotalHPWL = %v, want %v", total, want)
	}
}

func TestIncidentHPWL(t *testing.T) {
	c := smallCircuit(t)
	p := New(c, 100, 100, 2)
	p.X = []float64{0, 10, 20, 10, 30}
	p.Y = []float64{0, 0, 10, 20, 10}
	// Gate b (id 2): own net (b→po) + fanin net (a's net).
	want := p.NetHPWL(2) + p.NetHPWL(1)
	if got := p.IncidentHPWL(2); got != want {
		t.Errorf("IncidentHPWL(b) = %v, want %v", got, want)
	}
}

func TestBoundingBox(t *testing.T) {
	c := smallCircuit(t)
	p := New(c, 100, 100, 2)
	p.X = []float64{0, 10, 20, 10, 30}
	p.Y = []float64{0, 0, 10, 20, 10}
	// Box of a (id 1): fanin pi(0,0), fanouts b(20,10), d(10,20), self(10,0).
	b := p.BoundingBox(1)
	if b.MinX != 0 || b.MaxX != 20 || b.MinY != 0 || b.MaxY != 20 {
		t.Errorf("BoundingBox = %+v", b)
	}
	if !b.Contains(10, 10) || b.Contains(30, 30) {
		t.Error("Contains misbehaves")
	}
	if b.Area() != 400 {
		t.Errorf("Area = %v, want 400", b.Area())
	}
}

func TestSwapAndDist(t *testing.T) {
	c := smallCircuit(t)
	p := New(c, 100, 100, 2)
	p.X = []float64{0, 10, 20, 10, 30}
	p.Y = []float64{0, 0, 10, 20, 10}
	p.Width = []float64{0, 1, 2, 3, 0}
	if got := p.Dist(1, 2); got != 20 {
		t.Errorf("Dist = %v, want 20", got)
	}
	p.Swap(1, 2)
	if p.X[1] != 20 || p.Y[1] != 10 || p.X[2] != 10 || p.Y[2] != 0 {
		t.Error("Swap positions wrong")
	}
	if p.Width[1] != 2 || p.Width[2] != 1 {
		t.Error("Swap widths wrong")
	}
	// Swap twice restores.
	p.Swap(1, 2)
	if p.X[1] != 10 || p.X[2] != 20 || p.Width[1] != 1 {
		t.Error("double swap must restore")
	}
}

func TestGatePitch(t *testing.T) {
	c := smallCircuit(t) // 3 cells
	p := New(c, 90, 90, 2)
	want := 90 / math.Sqrt(3)
	if got := p.GatePitch(); math.Abs(got-want) > 1e-9 {
		t.Errorf("GatePitch = %v, want %v", got, want)
	}
	empty := New(netlist.New("e"), 50, 40, 2)
	if got := empty.GatePitch(); got != 50 {
		t.Errorf("empty GatePitch = %v, want 50", got)
	}
}

func TestLegalizeResolvesOverlaps(t *testing.T) {
	c := netlist.New("over")
	pi := c.AddGate("in", "", netlist.PI)
	var ids []int
	for i := 0; i < 10; i++ {
		g := c.AddGate("g", "INVX1", netlist.Comb)
		_ = c.Connect(pi.ID, g.ID)
		ids = append(ids, g.ID)
	}
	p := New(c, 50, 10, 2)
	// Pile everything at the same spot with width 3.
	for _, id := range ids {
		p.X[id], p.Y[id], p.Width[id] = 5, 3.1, 3
	}
	if p.OverlapCount() == 0 {
		t.Fatal("expected overlaps before legalization")
	}
	disp, err := p.Legalize()
	if err != nil {
		t.Fatal(err)
	}
	if disp <= 0 {
		t.Error("legalization should report displacement")
	}
	if got := p.OverlapCount(); got != 0 {
		t.Errorf("overlaps after legalize = %d", got)
	}
	if err := p.InBounds(); err != nil {
		t.Errorf("off-die after legalize: %v", err)
	}
	// All snapped to a row grid.
	for _, id := range ids {
		r := p.Y[id] / p.RowHeight
		if math.Abs(r-math.Round(r)) > 1e-9 {
			t.Errorf("cell %d not on a row: y = %v", id, p.Y[id])
		}
	}
}

// TestLegalizeIdempotent asserts that legalizing an already-legal
// placement is a no-op: zero displacement and bit-identical coordinates.
// The dosePl loop relies on this when a round's swaps land on legal
// sites already.
func TestLegalizeIdempotent(t *testing.T) {
	c := netlist.New("idem")
	pi := c.AddGate("in", "", netlist.PI)
	var ids []int
	for i := 0; i < 12; i++ {
		g := c.AddGate("g", "INVX1", netlist.Comb)
		_ = c.Connect(pi.ID, g.ID)
		ids = append(ids, g.ID)
	}
	p := New(c, 60, 12, 2)
	rng := rand.New(rand.NewSource(9))
	for _, id := range ids {
		p.X[id] = rng.Float64() * 50
		p.Y[id] = rng.Float64() * 10
		p.Width[id] = 2.5
	}
	if _, err := p.Legalize(); err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), p.X...)
	y := append([]float64(nil), p.Y...)
	disp, err := p.Legalize()
	if err != nil {
		t.Fatal(err)
	}
	if disp != 0 {
		t.Errorf("second Legalize moved cells: displacement = %v, want 0", disp)
	}
	for id := range p.X {
		if math.Float64bits(p.X[id]) != math.Float64bits(x[id]) ||
			math.Float64bits(p.Y[id]) != math.Float64bits(y[id]) {
			t.Fatalf("cell %d moved on second Legalize: (%v,%v) -> (%v,%v)",
				id, x[id], y[id], p.X[id], p.Y[id])
		}
	}
}

func TestLegalizeOverflowError(t *testing.T) {
	c := netlist.New("ovf")
	pi := c.AddGate("in", "", netlist.PI)
	var ids []int
	for i := 0; i < 4; i++ {
		g := c.AddGate("g", "INVX1", netlist.Comb)
		_ = c.Connect(pi.ID, g.ID)
		ids = append(ids, g.ID)
	}
	p := New(c, 10, 2, 2) // a single 10 µm row
	for _, id := range ids {
		p.X[id], p.Y[id], p.Width[id] = 0, 0, 4 // 16 µm of cells
	}
	if _, err := p.Legalize(); err == nil {
		t.Error("expected row-overflow error")
	}
	p.RowHeight = 0
	if _, err := p.Legalize(); err == nil {
		t.Error("expected row-height error")
	}
}

func TestInBoundsDetectsEscape(t *testing.T) {
	c := smallCircuit(t)
	p := New(c, 10, 10, 2)
	p.X[1] = 50
	if err := p.InBounds(); err == nil {
		t.Error("expected off-die error")
	}
}

// Property: HPWL is invariant under translation of all cells.
func TestPropertyHPWLTranslationInvariant(t *testing.T) {
	c := smallCircuit(t)
	f := func(dx, dy float64, seed int64) bool {
		dx = math.Mod(dx, 1000)
		dy = math.Mod(dy, 1000)
		if math.IsNaN(dx) || math.IsNaN(dy) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		p := New(c, 1e6, 1e6, 2)
		for i := range p.X {
			p.X[i] = rng.Float64() * 100
			p.Y[i] = rng.Float64() * 100
		}
		before := p.TotalHPWL()
		for i := range p.X {
			p.X[i] += dx
			p.Y[i] += dy
		}
		after := p.TotalHPWL()
		return math.Abs(before-after) < 1e-6*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: swapping two cells and swapping back restores total HPWL.
func TestPropertySwapInvolution(t *testing.T) {
	c := smallCircuit(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(c, 1000, 1000, 2)
		for i := range p.X {
			p.X[i] = rng.Float64() * 100
			p.Y[i] = rng.Float64() * 100
			p.Width[i] = rng.Float64()
		}
		before := p.TotalHPWL()
		a, b := 1+rng.Intn(3), 1+rng.Intn(3)
		p.Swap(a, b)
		p.Swap(a, b)
		return math.Abs(p.TotalHPWL()-before) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: legalization never leaves overlaps when total cell width per
// row fits on the die.
func TestPropertyLegalizeNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := netlist.New("p")
		pi := c.AddGate("in", "", netlist.PI)
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			g := c.AddGate("g", "INVX1", netlist.Comb)
			_ = c.Connect(pi.ID, g.ID)
		}
		p := New(c, 200, 20, 2)
		for id := 1; id <= n; id++ {
			p.X[id] = rng.Float64() * 190
			p.Y[id] = rng.Float64() * 18
			p.Width[id] = 0.5 + rng.Float64()*2
		}
		if _, err := p.Legalize(); err != nil {
			return false
		}
		return p.OverlapCount() == 0 && p.InBounds() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
