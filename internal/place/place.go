// Package place provides the placement substrate: cell coordinates on a
// row-based layout, half-perimeter wirelength (HPWL) estimation, the
// fanin∪fanout bounding boxes used by the dose-map-aware cell-swapping
// heuristic, Manhattan distances, gate pitch, and a row legalizer that
// stands in for the paper's ECO legalization step.
package place

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/netlist"
)

// Placement assigns coordinates (µm) to every gate of a circuit.
type Placement struct {
	Circ *netlist.Circuit
	// X, Y are cell-origin coordinates in µm, indexed by gate ID.
	X, Y []float64
	// Width is each cell's placed width in µm (0 for ports).
	Width []float64
	// ChipW, ChipH are the die dimensions in µm.
	ChipW, ChipH float64
	// RowHeight is the placement row pitch in µm.
	RowHeight float64
}

// New allocates an empty placement for the circuit.
func New(c *netlist.Circuit, chipW, chipH, rowHeight float64) *Placement {
	n := len(c.Gates)
	return &Placement{
		Circ:      c,
		X:         make([]float64, n),
		Y:         make([]float64, n),
		Width:     make([]float64, n),
		ChipW:     chipW,
		ChipH:     chipH,
		RowHeight: rowHeight,
	}
}

// Dist returns the Manhattan distance between two gates' origins in µm.
func (p *Placement) Dist(a, b int) float64 {
	return math.Abs(p.X[a]-p.X[b]) + math.Abs(p.Y[a]-p.Y[b])
}

// GatePitch returns the chip dimension divided by the square root of the
// cell count — the distance threshold unit of the dosePl heuristic
// (paper footnote 10).
func (p *Placement) GatePitch() float64 {
	n := p.Circ.NumCells()
	if n == 0 {
		return math.Max(p.ChipW, p.ChipH)
	}
	return math.Max(p.ChipW, p.ChipH) / math.Sqrt(float64(n))
}

// NetHPWL returns the half-perimeter wirelength in µm of the net driven
// by gate driver (the driver plus all its fanout loads).
func (p *Placement) NetHPWL(driver int) float64 {
	g := p.Circ.Gates[driver]
	if len(g.Fanouts) == 0 {
		return 0
	}
	minX, maxX := p.X[driver], p.X[driver]
	minY, maxY := p.Y[driver], p.Y[driver]
	for _, fo := range g.Fanouts {
		minX = math.Min(minX, p.X[fo])
		maxX = math.Max(maxX, p.X[fo])
		minY = math.Min(minY, p.Y[fo])
		maxY = math.Max(maxY, p.Y[fo])
	}
	return (maxX - minX) + (maxY - minY)
}

// TotalHPWL sums NetHPWL over all driving gates.
func (p *Placement) TotalHPWL() float64 {
	total := 0.0
	for id := range p.Circ.Gates {
		total += p.NetHPWL(id)
	}
	return total
}

// IncidentHPWL sums the HPWL of every net incident to the gate: its own
// output net plus each fanin net.  This is the quantity the dosePl swap
// filter re-estimates ("the four nets incident to the NAND cell").
func (p *Placement) IncidentHPWL(gate int) float64 {
	g := p.Circ.Gates[gate]
	total := p.NetHPWL(gate)
	for _, fi := range g.Fanins {
		total += p.NetHPWL(fi)
	}
	return total
}

// Box is an axis-aligned rectangle in µm.
type Box struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the point (x, y) lies inside the box.
func (b Box) Contains(x, y float64) bool {
	return x >= b.MinX && x <= b.MaxX && y >= b.MinY && y <= b.MaxY
}

// Area returns the box area in µm².
func (b Box) Area() float64 { return (b.MaxX - b.MinX) * (b.MaxY - b.MinY) }

// BoundingBox returns the dosePl bounding box of a cell: the box spanning
// all its fanin cells, all its fanout cells, and the cell itself
// (Appendix A, Fig. 9).
func (p *Placement) BoundingBox(gate int) Box {
	g := p.Circ.Gates[gate]
	b := Box{MinX: p.X[gate], MaxX: p.X[gate], MinY: p.Y[gate], MaxY: p.Y[gate]}
	grow := func(id int) {
		b.MinX = math.Min(b.MinX, p.X[id])
		b.MaxX = math.Max(b.MaxX, p.X[id])
		b.MinY = math.Min(b.MinY, p.Y[id])
		b.MaxY = math.Max(b.MaxY, p.Y[id])
	}
	for _, fi := range g.Fanins {
		grow(fi)
	}
	for _, fo := range g.Fanouts {
		grow(fo)
	}
	return b
}

// Swap exchanges the positions of two gates (cell masters stay put; the
// instances trade locations).
func (p *Placement) Swap(a, b int) {
	p.X[a], p.X[b] = p.X[b], p.X[a]
	p.Y[a], p.Y[b] = p.Y[b], p.Y[a]
	p.Width[a], p.Width[b] = p.Width[b], p.Width[a]
}

// InBounds reports whether every cell lies on the die.
func (p *Placement) InBounds() error {
	for id, g := range p.Circ.Gates {
		if g.Kind != netlist.Comb && g.Kind != netlist.Seq {
			continue
		}
		if p.X[id] < -1e-9 || p.X[id]+p.Width[id] > p.ChipW+1e-9 ||
			p.Y[id] < -1e-9 || p.Y[id] > p.ChipH+1e-9 {
			return fmt.Errorf("place: cell %d (%q) at (%.2f, %.2f) off-die", id, g.Name, p.X[id], p.Y[id])
		}
	}
	return nil
}

// AssignRows distributes cells to rows respecting a per-row capacity
// limit of maxUtil·ChipW, preserving the vertical ordering of the cells'
// desired y coordinates (so locality survives).  It rewrites Y to row
// positions; X is untouched.  Use before Legalize when the incoming
// y distribution may be clustered.
func (p *Placement) AssignRows(maxUtil float64) error {
	if p.RowHeight <= 0 {
		return errors.New("place: non-positive row height")
	}
	if maxUtil <= 0 || maxUtil > 1 {
		return fmt.Errorf("place: bad row utilization %v", maxUtil)
	}
	nRows := int(math.Max(1, math.Floor(p.ChipH/p.RowHeight)))
	cap := maxUtil * p.ChipW
	var cells []int
	total := 0.0
	for id, g := range p.Circ.Gates {
		if g.Kind != netlist.Comb && g.Kind != netlist.Seq {
			continue
		}
		cells = append(cells, id)
		total += p.Width[id]
	}
	if total > cap*float64(nRows) {
		return fmt.Errorf("place: design width %.1f µm exceeds die capacity %.1f µm", total, cap*float64(nRows))
	}
	sort.SliceStable(cells, func(a, b int) bool { return p.Y[cells[a]] < p.Y[cells[b]] })
	// Greedy fill, but target proportional occupancy so the last rows
	// are not starved: advance rows once the running share is consumed.
	row := 0
	used := 0.0
	share := total / float64(nRows)
	for _, id := range cells {
		if used+p.Width[id] > cap || (used > share && row < nRows-1) {
			row++
			used = 0
			if row >= nRows {
				row = nRows - 1
			}
		}
		p.Y[id] = float64(row) * p.RowHeight
		used += p.Width[id]
	}
	return nil
}

// Legalize snaps every cell to the nearest row and resolves overlaps
// within each row by packing cells in x order with their placed widths,
// shifting as little as possible.  It returns the total displacement in
// µm.  This is the stand-in for the ECO legalization step the dosePl
// loop invokes after swapping.
func (p *Placement) Legalize() (displacement float64, err error) {
	if p.RowHeight <= 0 {
		return 0, errors.New("place: non-positive row height")
	}
	nRows := int(math.Max(1, math.Floor(p.ChipH/p.RowHeight)))
	rows := make([][]int, nRows)
	for id, g := range p.Circ.Gates {
		if g.Kind != netlist.Comb && g.Kind != netlist.Seq {
			continue
		}
		r := int(math.Round(p.Y[id] / p.RowHeight))
		if r < 0 {
			r = 0
		}
		if r >= nRows {
			r = nRows - 1
		}
		rows[r] = append(rows[r], id)
	}
	for r, ids := range rows {
		y := float64(r) * p.RowHeight
		sort.Slice(ids, func(a, b int) bool { return p.X[ids[a]] < p.X[ids[b]] })
		// Forward pack: enforce non-overlap left to right.
		cursor := 0.0
		newX := make([]float64, len(ids))
		for i, id := range ids {
			x := p.X[id]
			if x < cursor {
				x = cursor
			}
			newX[i] = x
			cursor = x + p.Width[id]
		}
		// If the row overflows, shift the tail back left.
		if len(ids) > 0 {
			last := len(ids) - 1
			over := newX[last] + p.Width[ids[last]] - p.ChipW
			if over > 0 {
				limit := p.ChipW
				for i := last; i >= 0; i-- {
					id := ids[i]
					if newX[i]+p.Width[id] > limit {
						newX[i] = limit - p.Width[id]
					}
					if newX[i] < 0 {
						return 0, fmt.Errorf("place: row %d overflows die width", r)
					}
					limit = newX[i]
				}
			}
		}
		for i, id := range ids {
			displacement += math.Abs(p.X[id]-newX[i]) + math.Abs(p.Y[id]-y)
			p.X[id] = newX[i]
			p.Y[id] = y
		}
	}
	return displacement, nil
}

// OverlapCount returns the number of overlapping cell pairs within rows;
// zero after a successful Legalize.  Quadratic per row; intended for
// validation and tests.
func (p *Placement) OverlapCount() int {
	byRow := map[int][]int{}
	for id, g := range p.Circ.Gates {
		if g.Kind != netlist.Comb && g.Kind != netlist.Seq {
			continue
		}
		r := int(math.Round(p.Y[id] / p.RowHeight))
		byRow[r] = append(byRow[r], id)
	}
	count := 0
	for _, ids := range byRow {
		sort.Slice(ids, func(a, b int) bool { return p.X[ids[a]] < p.X[ids[b]] })
		for i := 1; i < len(ids); i++ {
			prev, cur := ids[i-1], ids[i]
			if p.X[prev]+p.Width[prev] > p.X[cur]+1e-9 {
				count++
			}
		}
	}
	return count
}

// Regions partitions the placed cells into rectangular bias domains: a
// square tiling of the die with the given pitch in µm, compacted to the
// occupied tiles.  It returns a per-gate domain index (−1 for ports and
// unplaced rows) and the number of occupied domains.  Domains are
// numbered by row-major tile order, so the assignment is a pure function
// of coordinates — deterministic across worker counts and runs.  This is
// the placement-side substrate of body-bias co-optimization: all cells
// sharing a well tile share one bias voltage.
func (p *Placement) Regions(pitch float64) (regionOf []int, n int) {
	nGates := len(p.Circ.Gates)
	regionOf = make([]int, nGates)
	if pitch <= 0 {
		for id := range regionOf {
			regionOf[id] = -1
		}
		return regionOf, 0
	}
	cols := int(math.Ceil(p.ChipW / pitch))
	if cols < 1 {
		cols = 1
	}
	rows := int(math.Ceil(p.ChipH / pitch))
	if rows < 1 {
		rows = 1
	}
	tileOf := make([]int, nGates)
	occupied := make([]bool, rows*cols)
	for id, g := range p.Circ.Gates {
		tileOf[id] = -1
		if g.Kind != netlist.Comb && g.Kind != netlist.Seq {
			continue
		}
		i := int(p.Y[id] / pitch)
		if i < 0 {
			i = 0
		} else if i >= rows {
			i = rows - 1
		}
		j := int(p.X[id] / pitch)
		if j < 0 {
			j = 0
		} else if j >= cols {
			j = cols - 1
		}
		t := i*cols + j
		tileOf[id] = t
		occupied[t] = true
	}
	compact := make([]int, rows*cols)
	for t := range compact {
		compact[t] = -1
		if occupied[t] {
			compact[t] = n
			n++
		}
	}
	for id := range regionOf {
		regionOf[id] = -1
		if t := tileOf[id]; t >= 0 {
			regionOf[id] = compact[t]
		}
	}
	return regionOf, n
}
