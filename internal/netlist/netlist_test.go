package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildChain makes PI → g1 → g2 → ... → gN → PO and returns the circuit.
func buildChain(t *testing.T, n int) *Circuit {
	t.Helper()
	c := New("chain")
	pi := c.AddGate("in", "", PI)
	prev := pi.ID
	for i := 0; i < n; i++ {
		g := c.AddGate("g", "INVX1", Comb)
		if err := c.Connect(prev, g.ID); err != nil {
			t.Fatal(err)
		}
		prev = g.ID
	}
	po := c.AddGate("out", "", PO)
	if err := c.Connect(prev, po.ID); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainBasics(t *testing.T) {
	c := buildChain(t, 5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumCells() != 5 {
		t.Errorf("NumCells = %d, want 5", c.NumCells())
	}
	// Nets: PI net + 5 gate outputs (last drives PO) = 6.
	if c.NumNets() != 6 {
		t.Errorf("NumNets = %d, want 6", c.NumNets())
	}
	depth, err := c.MaxLevel()
	if err != nil {
		t.Fatal(err)
	}
	// Levels: PI=0, g1..g5 = 1..5, PO = 6.
	if depth != 6 {
		t.Errorf("depth = %d, want 6", depth)
	}
}

func TestConnectErrors(t *testing.T) {
	c := New("t")
	pi := c.AddGate("in", "", PI)
	po := c.AddGate("out", "", PO)
	g := c.AddGate("g", "INVX1", Comb)
	if err := c.Connect(99, g.ID); err == nil {
		t.Error("out-of-range connect should fail")
	}
	if err := c.Connect(g.ID, g.ID); err == nil {
		t.Error("self-loop should fail")
	}
	if err := c.Connect(po.ID, g.ID); err == nil {
		t.Error("PO driving should fail")
	}
	if err := c.Connect(g.ID, pi.ID); err == nil {
		t.Error("driving a PI should fail")
	}
}

func TestValidateCatchesBadStructure(t *testing.T) {
	c := New("bad")
	c.AddGate("g", "INVX1", Comb) // no fanins
	if err := c.Validate(); err == nil {
		t.Error("dangling comb gate should fail validation")
	}

	c2 := New("bad2")
	pi := c2.AddGate("in", "", PI)
	g := c2.AddGate("g", "", Comb) // no master
	_ = c2.Connect(pi.ID, g.ID)
	if err := c2.Validate(); err == nil {
		t.Error("masterless comb gate should fail validation")
	}

	c3 := New("bad3")
	p1 := c3.AddGate("in", "", PI)
	p2 := c3.AddGate("in2", "", PI)
	po := c3.AddGate("out", "", PO)
	_ = c3.Connect(p1.ID, po.ID)
	_ = c3.Connect(p2.ID, po.ID)
	if err := c3.Validate(); err == nil {
		t.Error("PO with two fanins should fail validation")
	}
}

func TestCombCycleDetected(t *testing.T) {
	c := New("cyc")
	pi := c.AddGate("in", "", PI)
	a := c.AddGate("a", "NAND2X1", Comb)
	b := c.AddGate("b", "NAND2X1", Comb)
	_ = c.Connect(pi.ID, a.ID)
	_ = c.Connect(a.ID, b.ID)
	_ = c.Connect(b.ID, a.ID) // combinational loop
	if _, err := c.TopoOrder(); err == nil {
		t.Error("combinational cycle must be detected")
	}
}

func TestSequentialLoopIsLegal(t *testing.T) {
	// FF → INV → FF (a classic toggle): legal because the FF cuts the
	// timing loop.
	c := New("seqloop")
	ff := c.AddGate("ff", "DFFX1", Seq)
	inv := c.AddGate("inv", "INVX1", Comb)
	if err := c.Connect(ff.ID, inv.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(inv.ID, ff.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("sequential loop should validate: %v", err)
	}
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Errorf("order length = %d, want 2", len(order))
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	c := buildChain(t, 10)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for p, id := range order {
		pos[id] = p
	}
	for _, g := range c.Gates {
		if g.Kind == Seq {
			continue
		}
		for _, fo := range g.Fanouts {
			if pos[g.ID] >= pos[fo] {
				t.Fatalf("topo violation: %d before %d", g.ID, fo)
			}
		}
	}
}

func TestReverseTopoIndex(t *testing.T) {
	c := buildChain(t, 3)
	idx, err := c.ReverseTopoIndex()
	if err != nil {
		t.Fatal(err)
	}
	// Indices must be a permutation of 1..n with sources high, sinks low.
	seen := make(map[int]bool)
	for _, v := range idx {
		if v < 1 || v > len(c.Gates) {
			t.Fatalf("index %d out of 1..n", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	// Edge u→v implies idx[u] > idx[v] (reverse topological).
	for _, g := range c.Gates {
		if g.Kind == Seq {
			continue
		}
		for _, fo := range g.Fanouts {
			if idx[g.ID] <= idx[fo] {
				t.Errorf("reverse index violation on edge %d→%d", g.ID, fo)
			}
		}
	}
}

func TestStartEndPoints(t *testing.T) {
	c := New("se")
	pi := c.AddGate("in", "", PI)
	ff := c.AddGate("ff", "DFFX1", Seq)
	g := c.AddGate("g", "INVX1", Comb)
	po := c.AddGate("out", "", PO)
	_ = c.Connect(pi.ID, g.ID)
	_ = c.Connect(g.ID, ff.ID)
	_ = c.Connect(ff.ID, po.ID)
	sp := c.StartPoints()
	ep := c.EndPoints()
	if len(sp) != 2 { // PI + FF
		t.Errorf("StartPoints = %v", sp)
	}
	if len(ep) != 2 { // PO + FF
		t.Errorf("EndPoints = %v", ep)
	}
	_ = pi
}

func TestStats(t *testing.T) {
	c := New("s")
	pi := c.AddGate("in", "", PI)
	ff := c.AddGate("ff", "DFFX1", Seq)
	g := c.AddGate("g", "INVX1", Comb)
	po := c.AddGate("out", "", PO)
	_ = c.Connect(pi.ID, g.ID)
	_ = c.Connect(g.ID, ff.ID)
	_ = c.Connect(ff.ID, po.ID)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 2 || st.Seq != 1 || st.PIs != 1 || st.POs != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Comb: "comb", Seq: "seq", PI: "pi", PO: "po"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should format")
	}
}

// randomDAG builds a random layered DAG; used for property tests.
func randomDAG(rng *rand.Rand) *Circuit {
	c := New("rand")
	nLayers := 2 + rng.Intn(5)
	var layers [][]int
	// Input layer.
	var ins []int
	for i := 0; i < 1+rng.Intn(4); i++ {
		ins = append(ins, c.AddGate("in", "", PI).ID)
	}
	layers = append(layers, ins)
	for l := 0; l < nLayers; l++ {
		var cur []int
		for i := 0; i < 1+rng.Intn(5); i++ {
			g := c.AddGate("g", "NAND2X1", Comb)
			// Connect to 1-3 gates from any earlier layer.
			nIn := 1 + rng.Intn(3)
			for k := 0; k < nIn; k++ {
				ll := layers[rng.Intn(len(layers))]
				src := ll[rng.Intn(len(ll))]
				_ = c.Connect(src, g.ID)
			}
			cur = append(cur, g.ID)
		}
		layers = append(layers, cur)
	}
	for _, id := range layers[len(layers)-1] {
		po := c.AddGate("out", "", PO)
		_ = c.Connect(id, po.ID)
	}
	return c
}

// Property: every randomly generated layered DAG validates, and its
// topological order places every driver before every load.
func TestPropertyRandomDAGsOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomDAG(rng)
		order, err := c.TopoOrder()
		if err != nil {
			return false
		}
		pos := make(map[int]int)
		for p, id := range order {
			pos[id] = p
		}
		for _, g := range c.Gates {
			for _, fo := range g.Fanouts {
				if pos[g.ID] >= pos[fo] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: levelization is consistent — level(load) > level(driver) for
// every combinational timing edge.
func TestPropertyLevelsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomDAG(rng)
		levels, err := c.Levelize()
		if err != nil {
			return false
		}
		for _, g := range c.Gates {
			if g.Kind == Seq {
				continue
			}
			for _, fo := range g.Fanouts {
				if levels[fo] <= levels[g.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
