// Package netlist provides the circuit-graph substrate: gate-level
// netlists with combinational timing-graph views, topological ordering,
// and the fictitious source/sink convention of the paper (Section II-C:
// "Nodes are indexed by a reverse topological ordering of the circuit
// graph, with the source and sink nodes indexed as n+1 and 0").
//
// Sequential circuits are handled the way the paper prescribes: flip-flop
// outputs act as timing start points (like primary inputs) and flip-flop
// data inputs act as timing end points (like primary outputs), which
// "unrolls" the design into a combinational graph.
package netlist

import (
	"errors"
	"fmt"
	"sync"
)

// Kind classifies a node in the netlist.
type Kind uint8

const (
	// Comb is a combinational standard cell instance.
	Comb Kind = iota
	// Seq is a sequential cell (flip-flop): a timing end point at its
	// D input and a timing start point at its Q output.
	Seq
	// PI is a primary input port.
	PI
	// PO is a primary output port.
	PO
)

func (k Kind) String() string {
	switch k {
	case Comb:
		return "comb"
	case Seq:
		return "seq"
	case PI:
		return "pi"
	case PO:
		return "po"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Gate is one node of the netlist.  Every gate has a single output net;
// the net is identified with the driving gate's index.
type Gate struct {
	// ID is the gate's index in Circuit.Gates.
	ID int
	// Name is the instance name.
	Name string
	// Master names the standard-cell master implementing this gate
	// (resolved by the liberty package); empty for ports.
	Master string
	// Kind classifies the node.
	Kind Kind
	// Fanins lists driver gate IDs, one per input pin, in pin order.
	Fanins []int
	// Fanouts lists the gate IDs whose inputs this gate's output drives.
	Fanouts []int
}

// Circuit is a gate-level netlist.  Once construction is complete the
// circuit is safe for concurrent readers: the lazily computed caches
// are guarded internally.  Mutations (AddGate, Connect, Disconnect)
// must not race with readers.
type Circuit struct {
	Name  string
	Gates []*Gate

	topoMu sync.Mutex
	topo   []int // cached forward topological order
	levels []int // cached logic levels (same guard and invalidation)
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name}
}

// AddGate appends a gate of the given kind and master and returns it.
// Connectivity is added later via Connect.
func (c *Circuit) AddGate(name, master string, kind Kind) *Gate {
	g := &Gate{ID: len(c.Gates), Name: name, Master: master, Kind: kind}
	c.Gates = append(c.Gates, g)
	c.topo, c.levels = nil, nil
	return g
}

// Connect wires the output of gate from into an input pin of gate to.
func (c *Circuit) Connect(from, to int) error {
	if from < 0 || from >= len(c.Gates) || to < 0 || to >= len(c.Gates) {
		return fmt.Errorf("netlist: connect %d→%d out of range (n=%d)", from, to, len(c.Gates))
	}
	if from == to {
		return fmt.Errorf("netlist: self-loop on gate %d", from)
	}
	f, t := c.Gates[from], c.Gates[to]
	if f.Kind == PO {
		return fmt.Errorf("netlist: primary output %q cannot drive", f.Name)
	}
	if t.Kind == PI {
		return fmt.Errorf("netlist: primary input %q cannot be driven", t.Name)
	}
	f.Fanouts = append(f.Fanouts, to)
	t.Fanins = append(t.Fanins, from)
	c.topo, c.levels = nil, nil
	return nil
}

// Disconnect removes one instance of the edge from→to (the first match
// in each adjacency list).  It reports whether an edge was removed.
func (c *Circuit) Disconnect(from, to int) bool {
	if from < 0 || from >= len(c.Gates) || to < 0 || to >= len(c.Gates) {
		return false
	}
	f, t := c.Gates[from], c.Gates[to]
	removed := false
	for i, fo := range f.Fanouts {
		if fo == to {
			f.Fanouts = append(f.Fanouts[:i], f.Fanouts[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		return false
	}
	for i, fi := range t.Fanins {
		if fi == from {
			t.Fanins = append(t.Fanins[:i], t.Fanins[i+1:]...)
			break
		}
	}
	c.topo, c.levels = nil, nil
	return true
}

// NumGates returns the total node count including ports.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumCells returns the number of standard-cell instances (combinational
// plus sequential), the quantity Table I reports as "#Cell Instances".
func (c *Circuit) NumCells() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == Comb || g.Kind == Seq {
			n++
		}
	}
	return n
}

// NumNets returns the number of nets: one per driving node (cells and
// primary inputs) that has at least one fanout, matching Table I's
// "#Nets" accounting where each PI port and each cell output is a net.
func (c *Circuit) NumNets() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind != PO && len(g.Fanouts) > 0 {
			n++
		}
	}
	return n
}

// timingEdgeBlocked reports whether the timing arc from gate f into gate
// t is cut for combinational analysis: arcs into a flip-flop D pin end a
// path, and arcs out of a flip-flop Q pin begin one, so neither blocks
// traversal; the cut happens *inside* the flip-flop (no D→Q arc).
// In graph terms: edges are traversed unless the source is Seq — those
// edges still exist but start a new path segment.  For ordering purposes
// no edge is blocked; cycles through flip-flops are legal.
func timingEdgeBlocked(f *Gate) bool { return f.Kind == Seq }

// TopoOrder returns a forward topological order over the combinational
// timing graph (edges out of flip-flops are treated as sources, so
// sequential loops do not prevent ordering).  It returns an error if the
// combinational logic itself contains a cycle.
func (c *Circuit) TopoOrder() ([]int, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if c.topo != nil {
		return c.topo, nil
	}
	n := len(c.Gates)
	indeg := make([]int, n)
	// Count indegrees over timing edges: an edge f→t contributes unless
	// f is sequential (FF outputs are start points).
	for _, g := range c.Gates {
		for _, fi := range g.Fanins {
			if !timingEdgeBlocked(c.Gates[fi]) {
				indeg[g.ID]++
			}
		}
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		if timingEdgeBlocked(c.Gates[v]) {
			continue // successors were never blocked on v
		}
		for _, w := range c.Gates[v].Fanouts {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("netlist: combinational cycle detected")
	}
	c.topo = order
	return order, nil
}

// ReverseTopoIndex returns the paper's node indexing: a map from gate ID
// to an index in 1..n assigned in reverse topological order (nodes close
// to the sink get small indices; the fictitious sink is 0 and the
// fictitious source is n+1).
func (c *Circuit) ReverseTopoIndex() (map[int]int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	idx := make(map[int]int, len(order))
	n := len(order)
	for pos, id := range order {
		idx[id] = n - pos
	}
	return idx, nil
}

// StartPoints returns the timing start points: primary inputs and
// flip-flop outputs.
func (c *Circuit) StartPoints() []int {
	var s []int
	for _, g := range c.Gates {
		if g.Kind == PI || g.Kind == Seq {
			s = append(s, g.ID)
		}
	}
	return s
}

// EndPoints returns the timing end points: primary outputs and flip-flop
// data inputs (represented by the flip-flop node itself).
func (c *Circuit) EndPoints() []int {
	var s []int
	for _, g := range c.Gates {
		if g.Kind == PO || g.Kind == Seq {
			s = append(s, g.ID)
		}
	}
	return s
}

// Levelize returns, for each gate, its logic level: the length of the
// longest combinational path (in gate count) from any start point.
// The result is cached and shared; callers must not mutate it.
func (c *Circuit) Levelize() ([]int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if c.levels != nil {
		return c.levels, nil
	}
	level := make([]int, len(c.Gates))
	for _, id := range order {
		g := c.Gates[id]
		for _, fi := range g.Fanins {
			if timingEdgeBlocked(c.Gates[fi]) {
				continue
			}
			if l := level[fi] + 1; l > level[id] {
				level[id] = l
			}
		}
	}
	c.levels = level
	return level, nil
}

// MaxLevel returns the maximum logic level (combinational depth).
func (c *Circuit) MaxLevel() (int, error) {
	levels, err := c.Levelize()
	if err != nil {
		return 0, err
	}
	m := 0
	for _, l := range levels {
		if l > m {
			m = l
		}
	}
	return m, nil
}

// Validate performs structural checks: connectivity ranges, port
// conventions, dangling combinational gates, and acyclicity.
func (c *Circuit) Validate() error {
	for _, g := range c.Gates {
		switch g.Kind {
		case PI:
			if len(g.Fanins) != 0 {
				return fmt.Errorf("netlist: PI %q has fanins", g.Name)
			}
		case PO:
			if len(g.Fanins) != 1 {
				return fmt.Errorf("netlist: PO %q has %d fanins, want 1", g.Name, len(g.Fanins))
			}
			if len(g.Fanouts) != 0 {
				return fmt.Errorf("netlist: PO %q has fanouts", g.Name)
			}
		case Comb:
			if len(g.Fanins) == 0 {
				return fmt.Errorf("netlist: combinational gate %q has no fanins", g.Name)
			}
			if g.Master == "" {
				return fmt.Errorf("netlist: combinational gate %q has no master", g.Name)
			}
		case Seq:
			if g.Master == "" {
				return fmt.Errorf("netlist: sequential gate %q has no master", g.Name)
			}
		}
		for _, fi := range g.Fanins {
			if fi < 0 || fi >= len(c.Gates) {
				return fmt.Errorf("netlist: gate %q fanin %d out of range", g.Name, fi)
			}
		}
		for _, fo := range g.Fanouts {
			if fo < 0 || fo >= len(c.Gates) {
				return fmt.Errorf("netlist: gate %q fanout %d out of range", g.Name, fo)
			}
		}
	}
	_, err := c.TopoOrder()
	return err
}

// Stats summarizes the circuit the way the paper's Table I does.
type Stats struct {
	Name     string
	Cells    int
	Nets     int
	Seq      int
	PIs, POs int
	Depth    int
}

// Stats computes summary statistics.
func (c *Circuit) Stats() (Stats, error) {
	depth, err := c.MaxLevel()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{Name: c.Name, Cells: c.NumCells(), Nets: c.NumNets(), Depth: depth}
	for _, g := range c.Gates {
		switch g.Kind {
		case Seq:
			s.Seq++
		case PI:
			s.PIs++
		case PO:
			s.POs++
		}
	}
	return s, nil
}
