package netlist_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

// seedCircuits builds representative circuits for the fuzz corpus: a
// tiny hand-wired pipeline plus a real generated design (external test
// package, so importing gen creates no cycle).
func seedCircuits(tb testing.TB) []*netlist.Circuit {
	tb.Helper()
	c := netlist.New("hand")
	pi := c.AddGate("in0", "", netlist.PI)
	g1 := c.AddGate("u1", "INVX1", netlist.Comb)
	g2 := c.AddGate("u2 with space", `NAND2X1"q`, netlist.Comb)
	ff := c.AddGate("ff", "DFFX1", netlist.Seq)
	po := c.AddGate("out0", "", netlist.PO)
	for _, e := range [][2]int{{pi.ID, g1.ID}, {g1.ID, g2.ID}, {pi.ID, g2.ID}, {g2.ID, ff.ID}, {ff.ID, g1.ID}, {g2.ID, po.ID}} {
		if err := c.Connect(e[0], e[1]); err != nil {
			tb.Fatal(err)
		}
	}
	d, err := gen.Generate(gen.AES65().Scaled(0.02))
	if err != nil {
		tb.Fatal(err)
	}
	return []*netlist.Circuit{c, d.Circ}
}

// TestNetlistRoundTrip checks the exact contract on well-formed input:
// Serialize∘Parse is the identity on the serialized form, and the
// reconstructed circuit preserves every gate and every fanin pin order.
func TestNetlistRoundTrip(t *testing.T) {
	for _, c := range seedCircuits(t) {
		s := netlist.Serialize(c)
		c2, err := netlist.Parse(s)
		if err != nil {
			t.Fatalf("parse of serialized %q: %v", c.Name, err)
		}
		if got := netlist.Serialize(c2); got != s {
			t.Errorf("%q: serialize∘parse not idempotent", c.Name)
		}
		if c2.NumGates() != c.NumGates() {
			t.Fatalf("%q: gate count %d vs %d", c.Name, c2.NumGates(), c.NumGates())
		}
		for i, g := range c.Gates {
			h := c2.Gates[i]
			if g.Name != h.Name || g.Master != h.Master || g.Kind != h.Kind {
				t.Errorf("%q gate %d metadata differs", c.Name, i)
			}
			if len(g.Fanins) != len(h.Fanins) {
				t.Fatalf("%q gate %d fanin count differs", c.Name, i)
			}
			for p := range g.Fanins {
				if g.Fanins[p] != h.Fanins[p] {
					t.Errorf("%q gate %d fanin pin %d differs", c.Name, i, p)
				}
			}
		}
	}
}

// FuzzParseNetlist asserts Parse never panics on arbitrary input, and
// that any input it accepts reaches a serialize→parse fixed point with
// an internally consistent circuit.
func FuzzParseNetlist(f *testing.F) {
	for _, c := range seedCircuits(f) {
		f.Add(netlist.Serialize(c))
	}
	f.Add("circuit \"x\"\ngate \"a\" \"\" pi\ngate \"b\" \"\" po\nconn 0 1\n")
	f.Add("circuit \"dup\"\nconn 0 0\n")
	f.Add("gate \"orphan\" \"\" comb\n")
	f.Add("circuit \"bad\"\ngate \"a\" \"\" zzz\n")
	f.Add("# comment only\n\n")
	f.Add("circuit \"q\"\ngate \"unterminated\n")
	f.Fuzz(func(t *testing.T, s string) {
		// A panic here is reported by the fuzz engine as a crash — the
		// no-panic property needs no explicit recover.
		c, err := netlist.Parse(s)
		if err != nil {
			return // malformed input must error, not panic — done
		}
		s1 := netlist.Serialize(c)
		c2, err := netlist.Parse(s1)
		if err != nil {
			t.Fatalf("re-parse of serialized accepted input failed: %v\ninput: %q", err, s)
		}
		if s2 := netlist.Serialize(c2); s2 != s1 {
			t.Fatalf("serialize→parse→serialize not stable\nfirst:  %q\nsecond: %q", s1, s2)
		}
		// Accepted circuits must uphold the adjacency invariant Connect
		// maintains: every fanin edge has a matching fanout entry.
		for _, g := range c.Gates {
			for _, from := range g.Fanins {
				found := false
				for _, fo := range c.Gates[from].Fanouts {
					if fo == g.ID {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("gate %d fanin %d lacks reciprocal fanout", g.ID, from)
				}
			}
		}
	})
}
