package netlist

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Serialize renders the circuit in the canonical text form read back by
// Parse.  Gates appear in ID order; edges appear grouped by sink gate in
// fanin pin order, which is the only edge order that carries timing
// semantics (pin order selects the input-pin capacitance and arc).
// Re-parsing the output therefore reconstructs every Fanins slice
// exactly; Fanouts slices are rebuilt in edge-replay order, which
// Serialize itself never observes, making Serialize∘Parse idempotent.
func Serialize(c *Circuit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s\n", strconv.Quote(c.Name))
	for _, g := range c.Gates {
		fmt.Fprintf(&b, "gate %s %s %s\n", strconv.Quote(g.Name), strconv.Quote(g.Master), g.Kind)
	}
	for _, g := range c.Gates {
		for _, from := range g.Fanins {
			fmt.Fprintf(&b, "conn %d %d\n", from, g.ID)
		}
	}
	return b.String()
}

// parseKind inverts Kind.String.
func parseKind(s string) (Kind, error) {
	switch s {
	case "comb":
		return Comb, nil
	case "seq":
		return Seq, nil
	case "pi":
		return PI, nil
	case "po":
		return PO, nil
	}
	return 0, fmt.Errorf("netlist: unknown gate kind %q", s)
}

// Parse reads the text form produced by Serialize.  The format is
// line-oriented: a "circuit" header, one "gate" line per node in ID
// order, then "conn FROM TO" edge lines replayed through Connect (so all
// structural invariants — range checks, no self-loops, port
// directionality — are enforced during parsing).  Blank lines and
// #-comments are ignored.  Malformed input returns an error, never
// panics.
func Parse(s string) (*Circuit, error) {
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitQuoted(line)
		if err != nil {
			return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "circuit":
			if c != nil {
				return nil, fmt.Errorf("netlist: line %d: duplicate circuit header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: want 'circuit NAME'", lineNo)
			}
			c = New(fields[1])
		case "gate":
			if c == nil {
				return nil, fmt.Errorf("netlist: line %d: gate before circuit header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("netlist: line %d: want 'gate NAME MASTER KIND'", lineNo)
			}
			kind, err := parseKind(fields[3])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			c.AddGate(fields[1], fields[2], kind)
		case "conn":
			if c == nil {
				return nil, fmt.Errorf("netlist: line %d: conn before circuit header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("netlist: line %d: want 'conn FROM TO'", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("netlist: line %d: non-integer gate id", lineNo)
			}
			if err := c.Connect(from, to); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %v", err)
	}
	if c == nil {
		return nil, fmt.Errorf("netlist: missing circuit header")
	}
	return c, nil
}

// splitQuoted tokenizes a line into whitespace-separated fields where a
// field may be a Go-quoted string (names can hold spaces or any bytes).
// Quoted fields are unquoted in the result.
func splitQuoted(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			// Find the end of the quoted token: the next unescaped quote.
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			tok, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field %s: %v", line[i:j+1], err)
			}
			out = append(out, tok)
			i = j + 1
		} else {
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			out = append(out, line[i:j])
			i = j
		}
	}
	return out, nil
}
