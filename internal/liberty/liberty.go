// Package liberty provides the standard-cell-library substrate: cell
// masters with drive strengths, NLDM-style delay/slew lookup tables
// characterized from the tech device model, leakage values, and the
// dose-variant grid the paper's flow characterizes libraries over
// ("21 different characterized libraries … corresponding to the 21
// different dose values", Section V).
//
// The paper's library is the Artisan TSMC 65 nm / 90 nm production
// library (36 combinational and nine sequential cell masters).  We build
// the same master count programmatically from the analytic device model
// so the downstream coefficient-fitting and optimization code sees
// identically shaped data.
package liberty

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// Master describes one standard-cell master.
type Master struct {
	// Name is the library cell name, e.g. "NAND2X2".
	Name string
	// Func is the logic function family, e.g. "NAND2".
	Func string
	// Inputs is the number of data input pins.
	Inputs int
	// Drive is the relative drive strength (X1 = 1).
	Drive float64
	// Seq marks sequential cells (flip-flops, latches).
	Seq bool
	// Area is the placement footprint in µm².
	Area float64
	// CIn is the input pin capacitance in fF (per pin).
	CIn float64
	// Setup is the setup time in ps (sequential cells only).
	Setup float64
	// Dev is the output-driver device model.
	Dev tech.Device
}

// Delay returns the propagation delay in ps at gate-length delta dL and
// gate-width delta dW (nm), input slew (ps) and output load (fF).
func (m *Master) Delay(dL, dW, slew, load float64) float64 {
	return m.Dev.Delay(m.Dev.Node.Lnom+dL, dW, slew, load)
}

// OutSlew returns the output transition time in ps under the same
// conditions as Delay.
func (m *Master) OutSlew(dL, dW, slew, load float64) float64 {
	return m.Dev.OutSlew(m.Dev.Node.Lnom+dL, dW, slew, load)
}

// Leakage returns the cell leakage in nW at deltas (dL, dW) in nm.
func (m *Master) Leakage(dL, dW float64) float64 {
	return m.Dev.Leakage(m.Dev.Node.Lnom+dL, dW)
}

// DelayV is Delay with an additional threshold-voltage shift dvth (V),
// e.g. from body bias; dvth = 0 takes the exact unbiased path.
func (m *Master) DelayV(dL, dW, dvth, slew, load float64) float64 {
	return m.Dev.DelayV(m.Dev.Node.Lnom+dL, dW, dvth, slew, load)
}

// OutSlewV is OutSlew with a threshold shift dvth (V); dvth = 0 takes the
// exact unbiased path.
func (m *Master) OutSlewV(dL, dW, dvth, slew, load float64) float64 {
	return m.Dev.OutSlewV(m.Dev.Node.Lnom+dL, dW, dvth, slew, load)
}

// LeakageV is Leakage with a threshold shift dvth (V); dvth = 0 takes the
// exact unbiased path.
func (m *Master) LeakageV(dL, dW, dvth float64) float64 {
	return m.Dev.LeakageV(m.Dev.Node.Lnom+dL, dW, dvth)
}

// Library is a characterized standard-cell library for one node.
type Library struct {
	Node    *tech.Node
	Masters []*Master
	byName  map[string]*Master
}

// funcSpec captures how a logic family scales the unit device.
type funcSpec struct {
	fn      string
	inputs  int
	rMul    float64 // series-stack resistance multiplier
	cparMul float64 // parasitic cap multiplier
	cinMul  float64 // input cap multiplier per pin
	leakMul float64 // leakage multiplier (more devices leak more)
	areaMul float64
	intrMul float64 // intrinsic delay multiplier
	wMul    float64 // transistor width multiplier vs node Wnom
	seq     bool
}

var combSpecs = []funcSpec{
	{fn: "INV", inputs: 1, rMul: 1.0, cparMul: 1.0, cinMul: 1.0, leakMul: 1.0, areaMul: 1.0, intrMul: 1.0, wMul: 1.0},
	{fn: "BUF", inputs: 1, rMul: 1.0, cparMul: 1.3, cinMul: 0.9, leakMul: 1.6, areaMul: 1.6, intrMul: 1.9, wMul: 1.0},
	{fn: "NAND2", inputs: 2, rMul: 1.25, cparMul: 1.3, cinMul: 1.1, leakMul: 1.5, areaMul: 1.5, intrMul: 1.25, wMul: 1.15},
	{fn: "NAND3", inputs: 3, rMul: 1.5, cparMul: 1.6, cinMul: 1.2, leakMul: 1.9, areaMul: 2.0, intrMul: 1.5, wMul: 1.3},
	{fn: "NAND4", inputs: 4, rMul: 1.8, cparMul: 1.9, cinMul: 1.3, leakMul: 2.3, areaMul: 2.5, intrMul: 1.8, wMul: 1.45},
	{fn: "NOR2", inputs: 2, rMul: 1.4, cparMul: 1.35, cinMul: 1.15, leakMul: 1.5, areaMul: 1.5, intrMul: 1.35, wMul: 1.35},
	{fn: "NOR3", inputs: 3, rMul: 1.8, cparMul: 1.7, cinMul: 1.3, leakMul: 1.9, areaMul: 2.1, intrMul: 1.7, wMul: 1.6},
	{fn: "AND2", inputs: 2, rMul: 1.25, cparMul: 1.5, cinMul: 1.0, leakMul: 2.0, areaMul: 2.0, intrMul: 2.1, wMul: 1.15},
	{fn: "OR2", inputs: 2, rMul: 1.4, cparMul: 1.55, cinMul: 1.05, leakMul: 2.0, areaMul: 2.0, intrMul: 2.2, wMul: 1.35},
	{fn: "AOI21", inputs: 3, rMul: 1.6, cparMul: 1.7, cinMul: 1.2, leakMul: 2.1, areaMul: 2.2, intrMul: 1.6, wMul: 1.4},
	{fn: "AOI22", inputs: 4, rMul: 1.75, cparMul: 1.9, cinMul: 1.25, leakMul: 2.5, areaMul: 2.6, intrMul: 1.75, wMul: 1.5},
	{fn: "OAI21", inputs: 3, rMul: 1.6, cparMul: 1.7, cinMul: 1.2, leakMul: 2.1, areaMul: 2.2, intrMul: 1.6, wMul: 1.4},
	{fn: "OAI22", inputs: 4, rMul: 1.75, cparMul: 1.9, cinMul: 1.25, leakMul: 2.5, areaMul: 2.6, intrMul: 1.75, wMul: 1.5},
	{fn: "XOR2", inputs: 2, rMul: 1.7, cparMul: 2.1, cinMul: 1.6, leakMul: 2.8, areaMul: 3.0, intrMul: 2.4, wMul: 1.3},
	{fn: "XNOR2", inputs: 2, rMul: 1.7, cparMul: 2.1, cinMul: 1.6, leakMul: 2.8, areaMul: 3.0, intrMul: 2.4, wMul: 1.3},
	{fn: "MUX2", inputs: 3, rMul: 1.6, cparMul: 2.0, cinMul: 1.3, leakMul: 2.6, areaMul: 2.8, intrMul: 2.0, wMul: 1.3},
}

var seqSpecs = []funcSpec{
	{fn: "DFF", inputs: 1, rMul: 1.3, cparMul: 2.2, cinMul: 1.3, leakMul: 4.0, areaMul: 5.0, intrMul: 4.5, wMul: 1.2, seq: true},
	{fn: "DFFR", inputs: 2, rMul: 1.3, cparMul: 2.3, cinMul: 1.3, leakMul: 4.5, areaMul: 5.6, intrMul: 4.7, wMul: 1.2, seq: true},
	{fn: "DFFS", inputs: 2, rMul: 1.3, cparMul: 2.3, cinMul: 1.3, leakMul: 4.5, areaMul: 5.6, intrMul: 4.7, wMul: 1.2, seq: true},
	{fn: "SDFF", inputs: 2, rMul: 1.35, cparMul: 2.5, cinMul: 1.4, leakMul: 5.0, areaMul: 6.2, intrMul: 5.0, wMul: 1.25, seq: true},
	{fn: "LATCH", inputs: 1, rMul: 1.2, cparMul: 1.8, cinMul: 1.2, leakMul: 3.0, areaMul: 3.6, intrMul: 3.0, wMul: 1.1, seq: true},
}

// drivesFor returns the drive strengths offered for a function family so
// that the library totals 36 combinational and 9 sequential masters,
// matching the paper's production-library inventory.
func drivesFor(fn string) []float64 {
	switch fn {
	case "INV":
		return []float64{1, 2, 4, 8, 16}
	case "BUF":
		return []float64{1, 2, 4, 8}
	case "NAND2", "NOR2":
		return []float64{1, 2, 4}
	case "NAND3", "NOR3", "XOR2", "XNOR2", "MUX2", "AND2", "OR2", "AOI21", "OAI21":
		return []float64{1, 2}
	case "DFF":
		return []float64{1, 2, 4}
	case "DFFR", "SDFF":
		return []float64{1, 2}
	case "DFFS", "LATCH":
		return []float64{1}
	default:
		return []float64{1}
	}
}

// New builds the characterized library for the given node.
func New(node *tech.Node) *Library {
	lib := &Library{Node: node, byName: make(map[string]*Master)}
	add := func(spec funcSpec, drive float64) {
		// Unit cell height ~ 9 tracks; area scales with drive and
		// complexity.  A 65 nm X1 inverter is about 1.0 µm².
		baseArea := 1.0 * (node.Lnom / 65) * (node.Lnom / 65)
		w := node.Wnom * spec.wMul
		if w > node.Wmax {
			w = node.Wmax
		}
		m := &Master{
			Name:   fmt.Sprintf("%sX%d", spec.fn, int(drive)),
			Func:   spec.fn,
			Inputs: spec.inputs,
			Drive:  drive,
			Seq:    spec.seq,
			Area:   baseArea * spec.areaMul * (0.6 + 0.4*drive),
			CIn:    node.Cg0 * spec.cinMul * drive,
			Dev: tech.Device{
				Node:    node,
				Drive:   drive,
				WNom:    w,
				TIntr:   3.6 * spec.intrMul * (node.Lnom / 65),
				CPar:    1.0 * spec.cparMul,
				LeakNom: node.Leak0 * spec.leakMul * spec.wMul,
			},
		}
		// The rMul stack factor raises the effective drive resistance:
		// fold it into the device by reducing effective drive.
		m.Dev.Drive = drive / spec.rMul
		m.Dev.LeakNom *= spec.rMul // keep leakage tied to device count, not Dev.Drive
		if spec.seq {
			m.Setup = 25 * (node.Lnom / 65)
		}
		lib.Masters = append(lib.Masters, m)
		lib.byName[m.Name] = m
	}
	for _, spec := range combSpecs {
		for _, d := range drivesFor(spec.fn) {
			add(spec, d)
		}
	}
	for _, spec := range seqSpecs {
		for _, d := range drivesFor(spec.fn) {
			add(spec, d)
		}
	}
	return lib
}

// ScaleLeakage multiplies every master's leakage by f.  The paper's
// testcases run through Vth/Vdd assignment before dose optimization and
// end up with very different per-cell leakage mixes; this knob lets a
// design preset reproduce its documented total without touching timing.
func (l *Library) ScaleLeakage(f float64) {
	for _, m := range l.Masters {
		m.Dev.LeakNom *= f
	}
}

// Master looks a cell master up by name.
func (l *Library) Master(name string) (*Master, bool) {
	m, ok := l.byName[name]
	return m, ok
}

// MustMaster is Master but panics on unknown names; for generator code
// where a miss is a programming error.
func (l *Library) MustMaster(name string) *Master {
	m, ok := l.byName[name]
	if !ok {
		panic(fmt.Sprintf("liberty: unknown master %q", name))
	}
	return m
}

// CombMasters returns the combinational masters.
func (l *Library) CombMasters() []*Master {
	var out []*Master
	for _, m := range l.Masters {
		if !m.Seq {
			out = append(out, m)
		}
	}
	return out
}

// SeqMasters returns the sequential masters.
func (l *Library) SeqMasters() []*Master {
	var out []*Master
	for _, m := range l.Masters {
		if m.Seq {
			out = append(out, m)
		}
	}
	return out
}

// DoseStep is the dose granularity of the characterized variant grid, in
// percent.  The paper characterizes 21 libraries from -5% to +5%.
const DoseStep = 0.5

// DoseSteps returns the 21 characterized dose values -5, -4.5, …, +5.
func DoseSteps() []float64 {
	var steps []float64
	for d := -5.0; d <= 5.0+1e-9; d += DoseStep {
		steps = append(steps, math.Round(d/DoseStep)*DoseStep)
	}
	return steps
}

// SnapDose rounds a dose percentage to the nearest characterized variant
// step, clamped to the equipment range.  This is the paper's "rounding
// step … to snap the computed gate lengths and widths to the cell
// masters" (footnote 7).
func SnapDose(d float64) float64 {
	if d < -5 {
		d = -5
	}
	if d > 5 {
		d = 5
	}
	return math.Round(d/DoseStep) * DoseStep
}

// SnapDoseUp rounds a dose percentage up to the next characterized
// variant step (clamped).  Rounding doses upward can only shorten gates,
// so a timing-feasible optimizer solution stays timing-feasible after
// snapping — at the cost of a sliver of leakage.  The golden-signoff
// path uses this "timing-safe" variant.
func SnapDoseUp(d float64) float64 {
	if d < -5 {
		d = -5
	}
	if d > 5 {
		d = 5
	}
	return math.Min(5, math.Ceil(d/DoseStep-1e-9)*DoseStep)
}

// BiasStepV is the default body-bias quantization step in V: on-chip
// bias generators deliver a small discrete ladder of well voltages, the
// bias analogue of the 21-step dose variant grid.
const BiasStepV = 0.05

// SnapBias rounds a body-bias voltage to the nearest step on the ladder,
// clamped to [lo, hi].
func SnapBias(b, lo, hi, step float64) float64 {
	if step <= 0 {
		step = BiasStepV
	}
	if b < lo {
		b = lo
	}
	if b > hi {
		b = hi
	}
	return math.Round(b/step) * step
}

// SnapBiasUp rounds a body-bias voltage up to the next ladder step
// (clamped to hi).  Rounding toward forward bias can only speed gates
// up, so a timing-feasible solution stays feasible after snapping — the
// bias analogue of SnapDoseUp, paid for in a sliver of leakage.
func SnapBiasUp(b, hi, step float64) float64 {
	if step <= 0 {
		step = BiasStepV
	}
	return math.Min(hi, math.Ceil(b/step-1e-9)*step)
}

// Table is an NLDM-style lookup table over input slew × output load for
// one master at one (dL, dW) characterization point.
type Table struct {
	Master *Master
	DL, DW float64
	// Slews (ps) and Loads (fF) are the table axes.
	Slews, Loads []float64
	// Delay[i][j] and Slew[i][j] are values at Slews[i] × Loads[j].
	Delay, Slew [][]float64
}

// DefaultSlewAxis and DefaultLoadAxis are the characterization axes
// (7×7 tables, typical for production NLDM libraries).
func DefaultSlewAxis() []float64 { return []float64{5, 15, 30, 60, 100, 160, 240} }
func DefaultLoadAxis() []float64 { return []float64{0.5, 1.5, 3, 6, 12, 24, 48} }

// CharacterizeTable builds the NLDM table of a master at (dL, dW).
func (m *Master) CharacterizeTable(dL, dW float64) *Table {
	t := &Table{Master: m, DL: dL, DW: dW, Slews: DefaultSlewAxis(), Loads: DefaultLoadAxis()}
	t.Delay = make([][]float64, len(t.Slews))
	t.Slew = make([][]float64, len(t.Slews))
	for i, s := range t.Slews {
		t.Delay[i] = make([]float64, len(t.Loads))
		t.Slew[i] = make([]float64, len(t.Loads))
		for j, c := range t.Loads {
			t.Delay[i][j] = m.Delay(dL, dW, s, c)
			t.Slew[i][j] = m.OutSlew(dL, dW, s, c)
		}
	}
	return t
}

// Lookup bilinearly interpolates delay and output slew at (slew, load),
// clamping to the table edges outside the characterized region.
func (t *Table) Lookup(slew, load float64) (delay, oslew float64) {
	i, fi := locate(t.Slews, slew)
	j, fj := locate(t.Loads, load)
	bil := func(v [][]float64) float64 {
		v00 := v[i][j]
		v01 := v[i][j+1]
		v10 := v[i+1][j]
		v11 := v[i+1][j+1]
		return v00*(1-fi)*(1-fj) + v01*(1-fi)*fj + v10*fi*(1-fj) + v11*fi*fj
	}
	return bil(t.Delay), bil(t.Slew)
}

// locate finds the cell index and fraction for x on axis ax; clamped.
func locate(ax []float64, x float64) (int, float64) {
	n := len(ax)
	if x <= ax[0] {
		return 0, 0
	}
	if x >= ax[n-1] {
		return n - 2, 1
	}
	for i := 0; i < n-1; i++ {
		if x < ax[i+1] {
			return i, (x - ax[i]) / (ax[i+1] - ax[i])
		}
	}
	return n - 2, 1
}
