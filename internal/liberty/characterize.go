package liberty

import (
	"context"

	"repro/internal/par"
	"repro/internal/tech"
)

// Variant is one characterized (master, dose) point of the library
// variant grid: the NLDM table and leakage of a master at the
// gate-length delta induced by a poly-layer dose offset.
type Variant struct {
	Master *Master
	// Dose is the poly-dose offset in percent.
	Dose float64
	// DL is the induced gate-length delta in nm.
	DL float64
	// Table is the NLDM delay/slew table at (DL, 0).
	Table *Table
	// Leak is the cell leakage in nW at (DL, 0).
	Leak float64
}

// Characterize builds the NLDM tables of every master × dose variant on
// up to workers goroutines (zero selects runtime.GOMAXPROCS(0)).  The
// result is ordered master-major — variants[i*len(doses)+j] is
// masters[i] at doses[j] — independent of the worker count: each
// variant is computed in isolation, so the tables are bit-identical to
// a serial characterization.  A canceled context aborts mid-grid with
// an error wrapping context.Canceled.
func Characterize(ctx context.Context, masters []*Master, doses []float64, workers int) ([]Variant, error) {
	nd := len(doses)
	return par.Map(ctx, len(masters)*nd, workers, func(i int) (Variant, error) {
		m, dose := masters[i/nd], doses[i%nd]
		dl := tech.DoseToLength(dose)
		return Variant{
			Master: m,
			Dose:   dose,
			DL:     dl,
			Table:  m.CharacterizeTable(dl, 0),
			Leak:   m.Leakage(dl, 0),
		}, nil
	})
}

// Characterize builds the full 21-dose variant grid for every master in
// the library.  See the package-level Characterize for ordering and
// determinism guarantees.
func (l *Library) Characterize(ctx context.Context, workers int) ([]Variant, error) {
	return Characterize(ctx, l.Masters, DoseSteps(), workers)
}
