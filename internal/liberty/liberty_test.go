package liberty

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

func TestLibraryInventory(t *testing.T) {
	for _, node := range []*tech.Node{tech.N65(), tech.N90()} {
		lib := New(node)
		comb := len(lib.CombMasters())
		seq := len(lib.SeqMasters())
		// The paper's production library: 36 combinational + 9 sequential.
		if comb != 36 {
			t.Errorf("%s: %d combinational masters, want 36", node.Name, comb)
		}
		if seq != 9 {
			t.Errorf("%s: %d sequential masters, want 9", node.Name, seq)
		}
		if len(lib.Masters) != 45 {
			t.Errorf("%s: %d masters total, want 45", node.Name, len(lib.Masters))
		}
		// Names must be unique and resolvable.
		seen := map[string]bool{}
		for _, m := range lib.Masters {
			if seen[m.Name] {
				t.Errorf("duplicate master %q", m.Name)
			}
			seen[m.Name] = true
			got, ok := lib.Master(m.Name)
			if !ok || got != m {
				t.Errorf("Master(%q) lookup failed", m.Name)
			}
		}
	}
}

func TestMustMasterPanics(t *testing.T) {
	lib := New(tech.N65())
	defer func() {
		if recover() == nil {
			t.Error("MustMaster should panic on unknown name")
		}
	}()
	lib.MustMaster("FROBX1")
}

func TestDriveStrengthOrdering(t *testing.T) {
	lib := New(tech.N65())
	x1 := lib.MustMaster("INVX1")
	x4 := lib.MustMaster("INVX4")
	// Same conditions: stronger drive is faster and leakier, with more
	// input capacitance.
	if d1, d4 := x1.Delay(0, 0, 30, 6), x4.Delay(0, 0, 30, 6); d4 >= d1 {
		t.Errorf("INVX4 delay %v should beat INVX1 %v", d4, d1)
	}
	if x4.Leakage(0, 0) <= x1.Leakage(0, 0) {
		t.Error("INVX4 should leak more than INVX1")
	}
	if x4.CIn <= x1.CIn {
		t.Error("INVX4 input cap should exceed INVX1")
	}
	if x4.Area <= x1.Area {
		t.Error("INVX4 area should exceed INVX1")
	}
}

func TestComplexGatesSlower(t *testing.T) {
	lib := New(tech.N65())
	inv := lib.MustMaster("INVX1")
	nand4 := lib.MustMaster("NAND4X1")
	if nand4.Delay(0, 0, 30, 6) <= inv.Delay(0, 0, 30, 6) {
		t.Error("NAND4X1 should be slower than INVX1 at equal drive")
	}
}

// TestDoseShapeOnCells reproduces the Fig. 3-6 shapes at the cell level:
// delay ~linear in ΔL and ΔW; leakage exponential in ΔL, linear in ΔW.
func TestDoseShapeOnCells(t *testing.T) {
	lib := New(tech.N65())
	m := lib.MustMaster("INVX1")

	// Fig. 3: delay vs L near-linear, increasing.
	var prev float64
	for i, dl := range []float64{-10, -5, 0, 5, 10} {
		d := m.Delay(dl, 0, 30, 6)
		if i > 0 && d <= prev {
			t.Errorf("delay must increase with L (ΔL=%v)", dl)
		}
		prev = d
	}
	// Fig. 4: delay decreasing in ΔW.
	if m.Delay(0, 10, 30, 6) >= m.Delay(0, -10, 30, 6) {
		t.Error("delay must decrease as width grows")
	}
	// Fig. 5: leakage convex decreasing in L (exponential shape).
	l1 := m.Leakage(-10, 0)
	l2 := m.Leakage(0, 0)
	l3 := m.Leakage(10, 0)
	if !(l1 > l2 && l2 > l3) {
		t.Errorf("leakage must decrease with L: %v %v %v", l1, l2, l3)
	}
	if (l1 - l2) <= (l2 - l3) {
		t.Error("leakage vs L must be convex (exponential-like)")
	}
	// Fig. 6: leakage linear increasing in ΔW.
	a := m.Leakage(0, -10)
	b := m.Leakage(0, 0)
	c := m.Leakage(0, 10)
	if !(a < b && b < c) {
		t.Errorf("leakage must increase with W: %v %v %v", a, b, c)
	}
	if math.Abs((c-b)-(b-a)) > 1e-9*b {
		t.Error("leakage vs W must be linear")
	}
}

func TestDoseSteps(t *testing.T) {
	steps := DoseSteps()
	if len(steps) != 21 {
		t.Fatalf("DoseSteps length = %d, want 21", len(steps))
	}
	if steps[0] != -5 || steps[20] != 5 {
		t.Errorf("endpoints = %v, %v", steps[0], steps[20])
	}
	for i := 1; i < len(steps); i++ {
		if math.Abs(steps[i]-steps[i-1]-DoseStep) > 1e-9 {
			t.Errorf("non-uniform step at %d", i)
		}
	}
}

func TestSnapDose(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.24, 0}, {0.26, 0.5}, {4.9, 5}, {7, 5}, {-7, -5}, {-0.75, -1}, {-0.7, -0.5}, {2.5, 2.5},
	}
	for _, c := range cases {
		if got := SnapDose(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SnapDose(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTableMatchesAnalyticOnGrid(t *testing.T) {
	lib := New(tech.N65())
	m := lib.MustMaster("NAND2X2")
	tab := m.CharacterizeTable(3, -2)
	for i, s := range tab.Slews {
		for j, c := range tab.Loads {
			d, os := tab.Lookup(s, c)
			wantD := m.Delay(3, -2, s, c)
			wantS := m.OutSlew(3, -2, s, c)
			if math.Abs(d-wantD) > 1e-9 || math.Abs(os-wantS) > 1e-9 {
				t.Fatalf("grid point (%d,%d): lookup (%v,%v) vs analytic (%v,%v)", i, j, d, os, wantD, wantS)
			}
		}
	}
}

func TestTableInterpolationAccuracy(t *testing.T) {
	lib := New(tech.N65())
	m := lib.MustMaster("INVX2")
	tab := m.CharacterizeTable(0, 0)
	// Off-grid points: bilinear interpolation of a bilinear-ish function
	// must be within a few percent.
	for _, s := range []float64{10, 45, 130} {
		for _, c := range []float64{1, 4.5, 18} {
			d, _ := tab.Lookup(s, c)
			want := m.Delay(0, 0, s, c)
			if math.Abs(d-want) > 0.05*want {
				t.Errorf("interp at (%v,%v): %v vs %v", s, c, d, want)
			}
		}
	}
}

func TestTableClampsOutside(t *testing.T) {
	lib := New(tech.N65())
	m := lib.MustMaster("INVX1")
	tab := m.CharacterizeTable(0, 0)
	dLo, _ := tab.Lookup(-100, -100)
	if dLo != tab.Delay[0][0] {
		t.Errorf("low clamp = %v, want corner %v", dLo, tab.Delay[0][0])
	}
	dHi, _ := tab.Lookup(1e6, 1e6)
	n, k := len(tab.Slews)-1, len(tab.Loads)-1
	if dHi != tab.Delay[n][k] {
		t.Errorf("high clamp = %v, want corner %v", dHi, tab.Delay[n][k])
	}
}

func TestSequentialMasters(t *testing.T) {
	lib := New(tech.N65())
	dff := lib.MustMaster("DFFX1")
	if !dff.Seq {
		t.Error("DFFX1 must be sequential")
	}
	if dff.Setup <= 0 {
		t.Error("DFFX1 must have a setup time")
	}
	inv := lib.MustMaster("INVX1")
	if inv.Seq || inv.Setup != 0 {
		t.Error("INVX1 must be combinational with zero setup")
	}
}

// Property: table lookup is monotone in both slew and load anywhere in
// the characterized region (delay tables of real libraries are monotone;
// our analytic model guarantees it, the interpolation must preserve it).
func TestPropertyTableMonotone(t *testing.T) {
	lib := New(tech.N90())
	tab := lib.MustMaster("NOR2X1").CharacterizeTable(-4, 3)
	f := func(s1, s2, c1, c2 float64) bool {
		norm := func(x, lo, hi float64) float64 {
			return lo + math.Mod(math.Abs(x), hi-lo)
		}
		sa, sb := norm(s1, 5, 240), norm(s2, 5, 240)
		ca, cb := norm(c1, 0.5, 48), norm(c2, 0.5, 48)
		if sa > sb {
			sa, sb = sb, sa
		}
		if ca > cb {
			ca, cb = cb, ca
		}
		dLo, _ := tab.Lookup(sa, ca)
		dHi, _ := tab.Lookup(sb, cb)
		return dHi >= dLo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: snapped doses stay within the equipment range and within half
// a step of the request (when the request is in range).
func TestPropertySnapDose(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		s := SnapDose(d)
		if s < -5 || s > 5 {
			return false
		}
		if d >= -5 && d <= 5 && math.Abs(s-d) > DoseStep/2+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSnapDoseUp(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.1, 0.5}, {0.5, 0.5}, {-0.1, 0}, {-0.6, -0.5}, {4.8, 5}, {7, 5}, {-7, -5},
	}
	for _, c := range cases {
		if got := SnapDoseUp(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SnapDoseUp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Property: result is always ≥ the (clamped) input and on-grid.
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		s := SnapDoseUp(d)
		cl := math.Max(-5, math.Min(5, d))
		return s >= cl-1e-9 && s <= 5 && math.Abs(s/DoseStep-math.Round(s/DoseStep)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
