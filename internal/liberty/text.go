package liberty

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tech"
)

// Serialize renders the library in the canonical text form read back by
// Parse: a "library" header naming the tech node, then one "cell" block
// per master in inventory order.  Floats are formatted with
// strconv.FormatFloat(v, 'g', -1, 64), the shortest representation that
// round-trips the exact float64 bits, so Parse∘Serialize reproduces
// every characterized value bit-for-bit.
func Serialize(l *Library) string {
	var b strings.Builder
	fmt.Fprintf(&b, "library %s\n", strconv.Quote(l.Node.Name))
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, m := range l.Masters {
		fmt.Fprintf(&b, "cell %s %s %d %s %t %s %s %s\n",
			strconv.Quote(m.Name), strconv.Quote(m.Func), m.Inputs,
			g(m.Drive), m.Seq, g(m.Area), g(m.CIn), g(m.Setup))
		fmt.Fprintf(&b, "  dev %s %s %s %s %s\n",
			g(m.Dev.Drive), g(m.Dev.WNom), g(m.Dev.TIntr), g(m.Dev.CPar), g(m.Dev.LeakNom))
	}
	return b.String()
}

// Parse reads the text form produced by Serialize.  The tech node is
// resolved by name through tech.ByName, so the device physics backing
// every master is the node's analytic model, not free-floating numbers.
// Malformed input returns an error, never panics.
func Parse(s string) (*Library, error) {
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var lib *Library
	var cur *Master
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitQuoted(line)
		if err != nil {
			return nil, fmt.Errorf("liberty: line %d: %v", lineNo, err)
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "library":
			if lib != nil {
				return nil, fmt.Errorf("liberty: line %d: duplicate library header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("liberty: line %d: want 'library NODE'", lineNo)
			}
			node, err := tech.ByName(fields[1])
			if err != nil {
				return nil, fmt.Errorf("liberty: line %d: %v", lineNo, err)
			}
			lib = &Library{Node: node, byName: make(map[string]*Master)}
		case "cell":
			if lib == nil {
				return nil, fmt.Errorf("liberty: line %d: cell before library header", lineNo)
			}
			if len(fields) != 9 {
				return nil, fmt.Errorf("liberty: line %d: want 'cell NAME FUNC INPUTS DRIVE SEQ AREA CIN SETUP'", lineNo)
			}
			if cur != nil {
				return nil, fmt.Errorf("liberty: line %d: cell %q missing its dev line", lineNo, cur.Name)
			}
			if _, dup := lib.byName[fields[1]]; dup {
				return nil, fmt.Errorf("liberty: line %d: duplicate cell %q", lineNo, fields[1])
			}
			inputs, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("liberty: line %d: bad inputs: %v", lineNo, err)
			}
			seq, err := strconv.ParseBool(fields[5])
			if err != nil {
				return nil, fmt.Errorf("liberty: line %d: bad seq flag: %v", lineNo, err)
			}
			var fs [4]float64 // DRIVE AREA CIN SETUP
			for i, fld := range []string{fields[4], fields[6], fields[7], fields[8]} {
				if fs[i], err = strconv.ParseFloat(fld, 64); err != nil {
					return nil, fmt.Errorf("liberty: line %d: bad float %q: %v", lineNo, fld, err)
				}
			}
			cur = &Master{
				Name: fields[1], Func: fields[2], Inputs: inputs,
				Drive: fs[0], Seq: seq, Area: fs[1], CIn: fs[2], Setup: fs[3],
			}
			lib.Masters = append(lib.Masters, cur)
			lib.byName[cur.Name] = cur
		case "dev":
			if cur == nil {
				return nil, fmt.Errorf("liberty: line %d: dev outside a cell block", lineNo)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("liberty: line %d: want 'dev DRIVE WNOM TINTR CPAR LEAKNOM'", lineNo)
			}
			var vs [5]float64
			for i := 0; i < 5; i++ {
				v, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("liberty: line %d: bad float %q: %v", lineNo, fields[i+1], err)
				}
				vs[i] = v
			}
			cur.Dev = tech.Device{Node: lib.Node, Drive: vs[0], WNom: vs[1], TIntr: vs[2], CPar: vs[3], LeakNom: vs[4]}
			cur = nil
		default:
			return nil, fmt.Errorf("liberty: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("liberty: %v", err)
	}
	if lib == nil {
		return nil, fmt.Errorf("liberty: missing library header")
	}
	if cur != nil {
		return nil, fmt.Errorf("liberty: cell %q missing its dev line", cur.Name)
	}
	return lib, nil
}

// splitQuoted tokenizes a line into whitespace-separated fields where a
// field may be a Go-quoted string.  (Duplicated from the netlist text
// reader by design: the two formats evolve independently.)
func splitQuoted(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			tok, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field %s: %v", line[i:j+1], err)
			}
			out = append(out, tok)
			i = j + 1
		} else {
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			out = append(out, line[i:j])
			i = j
		}
	}
	return out, nil
}
