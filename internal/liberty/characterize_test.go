package liberty

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/tech"
)

// TestCharacterizeWorkersEquivalent asserts the per-master × per-dose
// characterization is bit-identical for every worker count and keeps
// the fixed (master-major, dose-minor) order.
func TestCharacterizeWorkersEquivalent(t *testing.T) {
	lib := New(tech.N65())
	ref, err := lib.Characterize(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	nd := len(DoseSteps())
	if len(ref) != len(lib.Masters)*nd {
		t.Fatalf("got %d variants, want %d", len(ref), len(lib.Masters)*nd)
	}
	for i, v := range ref {
		if v.Master != lib.Masters[i/nd] {
			t.Fatalf("variant %d: master order broken", i)
		}
		if v.Dose != DoseSteps()[i%nd] {
			t.Fatalf("variant %d: dose order broken", i)
		}
	}
	for _, w := range []int{2, 8, 0} {
		vs, err := lib.Characterize(context.Background(), w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range vs {
			if math.Float64bits(vs[i].Leak) != math.Float64bits(ref[i].Leak) ||
				math.Float64bits(vs[i].DL) != math.Float64bits(ref[i].DL) {
				t.Fatalf("workers=%d: variant %d differs", w, i)
			}
			if !reflect.DeepEqual(vs[i].Table, ref[i].Table) {
				t.Fatalf("workers=%d: variant %d NLDM table differs", w, i)
			}
		}
	}
}

// TestCharacterizeCanceled asserts cancellation surfaces as a wrapped
// context.Canceled.
func TestCharacterizeCanceled(t *testing.T) {
	lib := New(tech.N65())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lib.Characterize(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}
