package liberty_test

import (
	"math"
	"testing"

	"repro/internal/liberty"
	"repro/internal/tech"
)

// TestLibertyRoundTrip checks the exact contract on the two real
// libraries: every master survives Serialize→Parse with bit-identical
// floats, and the reconstructed library produces bit-identical delay,
// slew, and leakage evaluations.
func TestLibertyRoundTrip(t *testing.T) {
	for _, name := range []string{"N65", "N90"} {
		node, err := tech.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		lib := liberty.New(node)
		s := liberty.Serialize(lib)
		lib2, err := liberty.Parse(s)
		if err != nil {
			t.Fatalf("%s: parse of serialized library: %v", name, err)
		}
		if got := liberty.Serialize(lib2); got != s {
			t.Errorf("%s: serialize∘parse not idempotent", name)
		}
		if len(lib2.Masters) != len(lib.Masters) {
			t.Fatalf("%s: master count %d vs %d", name, len(lib2.Masters), len(lib.Masters))
		}
		for i, m := range lib.Masters {
			m2 := lib2.Masters[i]
			if m.Name != m2.Name || m.Func != m2.Func || m.Inputs != m2.Inputs || m.Seq != m2.Seq {
				t.Errorf("%s master %s metadata differs", name, m.Name)
			}
			for _, p := range [][2]float64{
				{m.Drive, m2.Drive}, {m.Area, m2.Area}, {m.CIn, m2.CIn}, {m.Setup, m2.Setup},
				{m.Dev.Drive, m2.Dev.Drive}, {m.Dev.WNom, m2.Dev.WNom},
				{m.Dev.TIntr, m2.Dev.TIntr}, {m.Dev.CPar, m2.Dev.CPar}, {m.Dev.LeakNom, m2.Dev.LeakNom},
			} {
				if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
					t.Fatalf("%s master %s float field differs: %v vs %v", name, m.Name, p[0], p[1])
				}
			}
			// The fields feed the same analytic model, so evaluations
			// must be bit-identical too.
			if math.Float64bits(m.Delay(0, 0, 30, 6)) != math.Float64bits(m2.Delay(0, 0, 30, 6)) ||
				math.Float64bits(m.Leakage(-5, 0)) != math.Float64bits(m2.Leakage(-5, 0)) {
				t.Fatalf("%s master %s evaluation differs after round trip", name, m.Name)
			}
		}
		if _, ok := lib2.Master("INVX1"); !ok {
			t.Errorf("%s: byName index not rebuilt", name)
		}
	}
}

// FuzzParseLiberty asserts Parse never panics on arbitrary input and
// that accepted inputs reach a serialize→parse fixed point.
func FuzzParseLiberty(f *testing.F) {
	for _, name := range []string{"N65", "N90"} {
		node, err := tech.ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(liberty.Serialize(liberty.New(node)))
	}
	f.Add("library \"N65\"\ncell \"A\" \"INV\" 1 1 false 1 1 0\n  dev 1 200 3.6 1 4\n")
	f.Add("library \"N65\"\ncell \"A\" \"INV\" 1 1 false 1 1 0\n")
	f.Add("library \"NOPE\"\n")
	f.Add("cell before header\n")
	f.Add("library \"N65\"\ncell \"A\" \"INV\" 1 NaN false 1 1 0\n  dev 1 2 3 4 5\n")
	f.Add("# empty\n")
	f.Fuzz(func(t *testing.T, s string) {
		lib, err := liberty.Parse(s)
		if err != nil {
			return // malformed input must error, not panic
		}
		s1 := liberty.Serialize(lib)
		lib2, err := liberty.Parse(s1)
		if err != nil {
			t.Fatalf("re-parse of serialized accepted input failed: %v\ninput: %q", err, s)
		}
		if s2 := liberty.Serialize(lib2); s2 != s1 {
			t.Fatalf("serialize→parse→serialize not stable\nfirst:  %q\nsecond: %q", s1, s2)
		}
		// Every master must be reachable through the byName index.
		for _, m := range lib.Masters {
			got, ok := lib.Master(m.Name)
			if !ok || got != m {
				t.Fatalf("master %q not indexed", m.Name)
			}
		}
	})
}
