// Package expt is the benchmark harness: it regenerates every table and
// figure of the paper's evaluation (Tables I-VIII, Figs. 2-6 and 10) as
// structured row data, shared by cmd/tables, the examples and the
// testing.B benchmarks at the module root.
//
// Absolute numbers come from the synthetic substrate and differ from the
// paper's testbed; the harness exists to reproduce the *shape* of each
// result: who wins, by what factor, and where the crossovers fall.
package expt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/dosemap"
	"repro/internal/gen"
	"repro/internal/liberty"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/qp"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Table is one reproduced table or figure as printable rows.
type Table struct {
	ID     string // e.g. "Table IV", "Fig. 3"
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries reproduction caveats for EXPERIMENTS.md.
	Notes string
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Notes)
	}
	return b.String()
}

// Context caches generated designs and golden analyses across
// experiments (several tables share the same testcases).
//
// A Context is safe for concurrent use: the design and golden caches
// are built at most once per testcase even under concurrent callers,
// and the experiments that mutate a cached design's placement in place
// (TableVIII, Fig10Profiles) serialize on an internal lock.  Every
// experiment's numbers are bit-identical for every worker count.
type Context struct {
	// Scale shrinks every preset (1 = the full Table I sizes).
	Scale float64
	// K is the top-path count for path-based experiments.
	K int
	// Workers bounds the fan-out of every parallel stage the harness
	// drives: concurrent table regeneration, the 21-point dose sweeps,
	// and the Workers knobs of the underlying STA/fit/QP layers.  Zero
	// selects runtime.GOMAXPROCS(0).
	Workers int
	// LinSys selects the ADMM x-step backend for every QP the harness
	// solves (auto / cg / ldlt).
	LinSys qp.LinSys

	mu       sync.Mutex
	designs  map[string]*memo[*gen.Design]
	goldens  map[string]*memo[*sta.Result]
	models   map[modelKey]*memo[*core.Model]
	compiles map[compileKey]*memo[*core.Compiled]
	// noCompileCache bypasses the model and compile memo layers; the
	// equivalence tests use it to force cold builds for every job.
	noCompileCache bool
	// plMu serializes the experiments that mutate a cached design's
	// placement (TableVIII, Fig10Profiles): they snapshot and restore
	// cell positions and must not interleave with each other or with
	// concurrent placement readers of the same design.
	plMu sync.Mutex
}

// modelKey identifies a fitted delay/leakage model: the fit depends only
// on the design's golden analysis and the layer mode.
type modelKey struct {
	design string
	both   bool
}

// compileKey identifies a compiled DMopt formulation: everything the
// artifact depends on beyond the golden analysis is in CompileOptions.
type compileKey struct {
	design string
	co     core.CompileOptions
}

// memo is a build-once cache slot.  Unlike sync.Once, a build aborted
// by context cancellation is NOT memoized: the next caller retries, so
// one canceled table run cannot poison the harness cache forever.
type memo[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
	err  error
}

func (m *memo[T]) get(build func() (T, error)) (T, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return m.val, m.err
	}
	v, err := build()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return v, err
	}
	m.done, m.val, m.err = true, v, err
	return v, err
}

// Option configures a Context.
type Option func(*Context)

// WithScale shrinks every preset by the given factor in (0, 1];
// anything out of range selects the full Table I sizes.
func WithScale(scale float64) Option {
	return func(c *Context) { c.Scale = scale }
}

// WithTopK sets the top-path count for path-based experiments; k ≤ 0
// selects the paper's 10 000.
func WithTopK(k int) Option {
	return func(c *Context) { c.K = k }
}

// WithWorkers bounds the harness's parallel fan-out; n ≤ 0 selects
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(c *Context) { c.Workers = n }
}

// WithLinSys selects the ADMM x-step linear-system backend for every QP
// the harness solves.
func WithLinSys(l qp.LinSys) Option {
	return func(c *Context) { c.LinSys = l }
}

// New returns a harness context with the paper's configuration (full
// Table I design sizes, K = 10 000, GOMAXPROCS workers), adjusted by
// the options.
func New(opts ...Option) *Context {
	c := &Context{Scale: 1, K: 10000}
	for _, o := range opts {
		o(c)
	}
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.K <= 0 {
		c.K = 10000
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	c.designs = make(map[string]*memo[*gen.Design])
	c.goldens = make(map[string]*memo[*sta.Result])
	c.models = make(map[modelKey]*memo[*core.Model])
	c.compiles = make(map[compileKey]*memo[*core.Compiled])
	return c
}

// staCfg is the golden-analysis config with the harness worker knob.
func (c *Context) staCfg() sta.Config {
	cfg := sta.DefaultConfig()
	cfg.Workers = c.Workers
	return cfg
}

// Design returns the (cached) design for a preset name.
func (c *Context) Design(name string) (*gen.Design, error) {
	return c.DesignCtx(context.Background(), name)
}

// DesignCtx is Design with cancellation.  Concurrent callers for the
// same preset share a single generation.
func (c *Context) DesignCtx(ctx context.Context, name string) (*gen.Design, error) {
	c.mu.Lock()
	if c.designs == nil {
		c.designs = make(map[string]*memo[*gen.Design])
	}
	e, ok := c.designs[name]
	if !ok {
		e = &memo[*gen.Design]{}
		c.designs[name] = e
	}
	c.mu.Unlock()
	return e.get(func() (*gen.Design, error) {
		p, err := gen.PresetByName(name)
		if err != nil {
			return nil, err
		}
		if c.Scale < 1 {
			p = p.Scaled(c.Scale)
		}
		return gen.GenerateCtx(ctx, p)
	})
}

// Golden returns the (cached) nominal analysis for a preset name.
func (c *Context) Golden(name string) (*sta.Result, error) {
	return c.GoldenCtx(context.Background(), name)
}

// GoldenCtx is Golden with cancellation.  Concurrent callers for the
// same preset share a single analysis.
func (c *Context) GoldenCtx(ctx context.Context, name string) (*sta.Result, error) {
	c.mu.Lock()
	if c.goldens == nil {
		c.goldens = make(map[string]*memo[*sta.Result])
	}
	e, ok := c.goldens[name]
	if !ok {
		e = &memo[*sta.Result]{}
		c.goldens[name] = e
	}
	c.mu.Unlock()
	return e.get(func() (*sta.Result, error) {
		d, err := c.DesignCtx(ctx, name)
		if err != nil {
			return nil, err
		}
		return core.GoldenNominalCtx(ctx, d, c.staCfg())
	})
}

// modelCtx returns the (cached) fitted delay/leakage model for a preset
// and layer mode.  Concurrent callers for the same key share one fit.
func (c *Context) modelCtx(ctx context.Context, design string, both bool) (*core.Model, error) {
	build := func() (*core.Model, error) {
		golden, err := c.GoldenCtx(ctx, design)
		if err != nil {
			return nil, err
		}
		return core.FitModelCtx(ctx, golden, both, c.Workers)
	}
	if c.noCompileCache {
		return build()
	}
	key := modelKey{design: design, both: both}
	c.mu.Lock()
	if c.models == nil {
		c.models = make(map[modelKey]*memo[*core.Model])
	}
	e, ok := c.models[key]
	if !ok {
		e = &memo[*core.Model]{}
		c.models[key] = e
	}
	c.mu.Unlock()
	return e.get(build)
}

// compiledCtx returns the (cached) compiled DMopt formulation for a
// preset under the given compile options.  Like the design and golden
// memos, concurrent callers for the same key share one build and a
// canceled build is never cached.  A served-from-cache call ticks
// core/compile_hits; the build itself ticks core/compile_misses.
func (c *Context) compiledCtx(ctx context.Context, design string, co core.CompileOptions) (*core.Compiled, error) {
	build := func() (*core.Compiled, error) {
		golden, err := c.GoldenCtx(ctx, design)
		if err != nil {
			return nil, err
		}
		model, err := c.modelCtx(ctx, design, co.BothLayers)
		if err != nil {
			return nil, err
		}
		return core.CompileCtx(ctx, golden, model, co)
	}
	if c.noCompileCache {
		return build()
	}
	key := compileKey{design: design, co: co}
	c.mu.Lock()
	if c.compiles == nil {
		c.compiles = make(map[compileKey]*memo[*core.Compiled])
	}
	e, ok := c.compiles[key]
	if !ok {
		e = &memo[*core.Compiled]{}
		c.compiles[key] = e
	}
	c.mu.Unlock()
	built := false
	comp, err := e.get(func() (*core.Compiled, error) {
		built = true
		return build()
	})
	if err == nil && !built {
		obs.Add(ctx, "core/compile_hits", 1)
	}
	return comp, err
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.2f", 100*v)
}

// --- Figs. 3-6: cell-level dose response ---------------------------------

// figCell sweeps an INVX1 and reports delay or leakage against ΔL or ΔW.
func figCell(id, title string, node *tech.Node, vsLength, delay bool) *Table {
	lib := liberty.New(node)
	m := lib.MustMaster("INVX1")
	t := &Table{ID: id, Title: title}
	if vsLength {
		t.Header = []string{"Lgate (nm)"}
	} else {
		t.Header = []string{"ΔW (nm)"}
	}
	if delay {
		t.Header = append(t.Header, "delay (ps)")
	} else {
		t.Header = append(t.Header, "leakage (nW)")
	}
	const slew, load = 30.0, 4.0
	for d := -10.0; d <= 10.0+1e-9; d += 2 {
		var x, v float64
		if vsLength {
			x = node.Lnom + d
			if delay {
				v = m.Delay(d, 0, slew, load)
			} else {
				v = m.Leakage(d, 0)
			}
		} else {
			x = d
			if delay {
				v = m.Delay(0, d, slew, load)
			} else {
				v = m.Leakage(0, d)
			}
		}
		t.Rows = append(t.Rows, []string{f1(x), f3(v)})
	}
	return t
}

// Fig3 reproduces "Delay of an inverter versus gate length" (≈linear).
func Fig3() *Table {
	return figCell("Fig. 3", "INVX1 delay vs gate length (65 nm)", tech.N65(), true, true)
}

// Fig4 reproduces "Delay of an inverter versus change in gate width".
func Fig4() *Table {
	return figCell("Fig. 4", "INVX1 delay vs gate-width change (65 nm)", tech.N65(), false, true)
}

// Fig5 reproduces "Average leakage vs gate length" (exponential).
func Fig5() *Table {
	return figCell("Fig. 5", "INVX1 leakage vs gate length (65 nm)", tech.N65(), true, false)
}

// Fig6 reproduces "Average leakage vs change in gate width" (linear).
func Fig6() *Table {
	return figCell("Fig. 6", "INVX1 leakage vs gate-width change (65 nm)", tech.N65(), false, false)
}

// Fig2 reports the dose-to-CD relation (dose sensitivity, Section II-A).
func Fig2() *Table {
	t := &Table{
		ID:     "Fig. 2",
		Title:  fmt.Sprintf("dose sensitivity: CD vs dose change (Ds = %g nm/%%)", tech.DoseSensitivity),
		Header: []string{"dose Δ (%)", "ΔCD (nm)", "CD at 65 nm (nm)"},
	}
	for d := -5.0; d <= 5.0+1e-9; d += 1 {
		dl := tech.DoseToLength(d)
		t.Rows = append(t.Rows, []string{f1(d), f1(dl), f1(65 + dl)})
	}
	return t
}

// --- Table I: testcase characteristics -----------------------------------

// TableI reports the generated designs' characteristics.
func (c *Context) TableI() (*Table, error) {
	return c.TableICtx(context.Background())
}

// TableICtx is TableI with cancellation; the per-design generations fan
// out across workers.
func (c *Context) TableICtx(ctx context.Context) (*Table, error) {
	ctx, sp := obs.Start(ctx, "expt/Table I")
	defer sp.End()
	t := &Table{
		ID:     "Table I",
		Title:  "characteristics of the synthetic testcases (Artisan TSMC stand-ins)",
		Header: []string{"Design", "Chip size (mm²)", "#Cell instances", "#Nets", "depth", "#FF"},
	}
	presets := gen.Presets()
	rows, err := par.Map(ctx, len(presets), par.Workers(c.Workers), func(i int) ([]string, error) {
		p := presets[i]
		d, err := c.DesignCtx(ctx, p.Name)
		if err != nil {
			return nil, err
		}
		st, err := d.Circ.Stats()
		if err != nil {
			return nil, err
		}
		area := d.Pl.ChipW * d.Pl.ChipH / 1e6
		return []string{
			p.Name, f3(area), fmt.Sprint(st.Cells), fmt.Sprint(st.Nets),
			fmt.Sprint(st.Depth), fmt.Sprint(st.Seq),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	if c.Scale < 1 {
		t.Notes = fmt.Sprintf("designs scaled by %.2f for this run", c.Scale)
	}
	return t, nil
}

// --- Tables II-III: uniform dose sweep -----------------------------------

// DoseSweepRow is one point of the uniform-dose sweep.
type DoseSweepRow struct {
	Dose    float64
	MCTns   float64
	MCTImp  float64 // percent, positive is better
	LeakUW  float64
	LeakImp float64 // percent, positive is better
}

// DoseSweep sweeps a uniform poly-layer dose across the whole design and
// reports golden MCT and leakage at each point (Tables II and III).
func (c *Context) DoseSweep(design string, doses []float64) ([]DoseSweepRow, error) {
	return c.DoseSweepCtx(context.Background(), design, doses)
}

// DoseSweepCtx is DoseSweep with cancellation.  The sweep points are
// independent full golden analyses and fan out across workers; rows
// come back in dose order and are bit-identical for every worker count.
func (c *Context) DoseSweepCtx(ctx context.Context, design string, doses []float64) ([]DoseSweepRow, error) {
	d, err := c.DesignCtx(ctx, design)
	if err != nil {
		return nil, err
	}
	in := core.InputOf(d)
	cfg := c.staCfg()
	n := d.Circ.NumGates()
	workers := par.Workers(c.Workers)

	if workers == 1 {
		// Serial sweep: one incremental timer shared by every point
		// re-times only the dose-change cones instead of running a cold
		// analysis per dose.  The timer's bit-identity contract keeps the
		// rows equal to the parallel path's full analyses.
		tm, err := sta.NewTimerCtx(ctx, in, cfg, nil)
		if err != nil {
			return nil, err
		}
		nomMCT := tm.Result().MCT
		nomLeak := power.Total(in.Masters, nil, nil)
		rows := make([]DoseSweepRow, len(doses))
		dl := make([]float64, n) // reused: Update copies the perturbation
		for i, dose := range doses {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for id, m := range d.Masters {
				if m != nil {
					dl[id] = tech.DoseToLength(dose)
				}
			}
			r := tm.Update(&sta.Perturb{DL: dl})
			leak := power.Total(in.Masters, dl, nil)
			rows[i] = DoseSweepRow{
				Dose:    dose,
				MCTns:   r.MCT / 1000,
				MCTImp:  100 * (1 - r.MCT/nomMCT),
				LeakUW:  leak,
				LeakImp: 100 * (1 - leak/nomLeak),
			}
		}
		return rows, nil
	}

	nomEval, _, err := core.EvalPerturbCtx(ctx, in, cfg, nil)
	if err != nil {
		return nil, err
	}
	// The points fan out across workers; keep each point's analysis
	// serial inside to avoid nested oversubscription.  Either split
	// of the same work yields bit-identical rows.
	ptCfg := cfg
	ptCfg.Workers = 1
	return par.Map(ctx, len(doses), workers, func(i int) (DoseSweepRow, error) {
		dose := doses[i]
		dl := make([]float64, n)
		for id, m := range d.Masters {
			if m != nil {
				dl[id] = tech.DoseToLength(dose)
			}
		}
		ev, _, err := core.EvalPerturbCtx(ctx, in, ptCfg, &sta.Perturb{DL: dl})
		if err != nil {
			return DoseSweepRow{}, err
		}
		return DoseSweepRow{
			Dose:    dose,
			MCTns:   ev.MCTps / 1000,
			MCTImp:  100 * (1 - ev.MCTps/nomEval.MCTps),
			LeakUW:  ev.LeakUW,
			LeakImp: 100 * (1 - ev.LeakUW/nomEval.LeakUW),
		}, nil
	})
}

// SweepDoses returns the paper's 21 sweep points 0, ±0.5, …, ±5.
func SweepDoses() []float64 {
	out := []float64{0}
	for d := 0.5; d <= 5+1e-9; d += 0.5 {
		out = append(out, -d, d)
	}
	sort.Float64s(out)
	return out
}

// BiasSweepRow is one point of the uniform body-bias sweep.
type BiasSweepRow struct {
	BiasV   float64
	MCTns   float64
	MCTImp  float64 // percent, positive is better
	LeakUW  float64
	LeakImp float64 // percent, positive is better
}

// BiasSweepCtx sweeps a uniform body-bias voltage across the whole
// design — the bias analogue of the Tables II-III dose sweep: each
// point shifts every cell's threshold by the node's body factor and
// re-runs golden timing and leakage.  Like a uniform dose, a uniform
// bias trades the two metrics and cannot win both; the per-domain
// co-optimization is what breaks the tradeoff.
func (c *Context) BiasSweepCtx(ctx context.Context, design string, biases []float64) ([]BiasSweepRow, error) {
	d, err := c.DesignCtx(ctx, design)
	if err != nil {
		return nil, err
	}
	in := core.InputOf(d)
	cfg := c.staCfg()
	n := d.Circ.NumGates()
	workers := par.Workers(c.Workers)

	nomEval, _, err := core.EvalPerturbCtx(ctx, in, cfg, nil)
	if err != nil {
		return nil, err
	}
	ptCfg := cfg
	ptCfg.Workers = 1
	if workers == 1 {
		ptCfg = cfg
	}
	return par.Map(ctx, len(biases), workers, func(i int) (BiasSweepRow, error) {
		b := biases[i]
		dvth := make([]float64, n)
		for id, m := range d.Masters {
			if m != nil {
				dvth[id] = in.Node.BodyBiasDVth(b)
			}
		}
		ev, _, err := core.EvalPerturbCtx(ctx, in, ptCfg, &sta.Perturb{DVth: dvth})
		if err != nil {
			return BiasSweepRow{}, err
		}
		return BiasSweepRow{
			BiasV:   b,
			MCTns:   ev.MCTps / 1000,
			MCTImp:  100 * (1 - ev.MCTps/nomEval.MCTps),
			LeakUW:  ev.LeakUW,
			LeakImp: 100 * (1 - ev.LeakUW/nomEval.LeakUW),
		}, nil
	})
}

// SweepBiases returns the body-bias sweep lattice -0.2, …, +0.1 V in
// liberty.BiasStepV steps.
func SweepBiases() []float64 {
	var out []float64
	for b := core.DefaultBiasLo; b <= core.DefaultBiasHi+1e-9; b += liberty.BiasStepV {
		out = append(out, b)
	}
	return out
}

func (c *Context) doseSweepTable(ctx context.Context, id, design string) (*Table, error) {
	ctx, sp := obs.Start(ctx, "expt/"+id)
	defer sp.End()
	rows, err := c.DoseSweepCtx(ctx, design, SweepDoses())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("delay and leakage of %s under uniform poly-layer dose change", design),
		Header: []string{"dose Δ (%)", "MCT (ns)", "imp. (%)", "Leakage (µW)", "imp. (%)"},
		Notes:  "uniform dose trades timing against leakage and cannot win both (Section V)",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			f1(r.Dose), f3(r.MCTns), f2(r.MCTImp), f1(r.LeakUW), f2(r.LeakImp),
		})
	}
	return t, nil
}

// TableII is the AES-65 uniform dose sweep.
func (c *Context) TableII() (*Table, error) { return c.TableIICtx(context.Background()) }

// TableIICtx is TableII with cancellation.
func (c *Context) TableIICtx(ctx context.Context) (*Table, error) {
	return c.doseSweepTable(ctx, "Table II", "AES-65")
}

// TableIII is the AES-90 uniform dose sweep.
func (c *Context) TableIII() (*Table, error) { return c.TableIIICtx(context.Background()) }

// TableIIICtx is TableIII with cancellation.
func (c *Context) TableIIICtx(ctx context.Context) (*Table, error) {
	return c.doseSweepTable(ctx, "Table III", "AES-90")
}

// --- Table IV: DMopt on poly layer ----------------------------------------

// DMRow is one optimization outcome for the results tables.
type DMRow struct {
	Design  string
	GridUm  float64
	Kind    string // "QP" or "QCP" (or an actuator mode label)
	MCTns   float64
	MCTImp  float64
	LeakUW  float64
	LeakImp float64
	Domains int // bias domains (0 for dose-only rows)
	Runtime time.Duration
}

// gridsFor returns the paper's grid sizes per node: 5/10/30 µm at 65 nm
// and 5/10/50 µm at 90 nm.  Grid sizes are NOT scaled with the design:
// a scaled die with the same G preserves the paper's cells-per-grid
// density, which is what drives the optimization quality (Section V).
func gridsFor(design string, scale float64) []float64 {
	if strings.HasSuffix(design, "-90") {
		return []float64{5, 10, 50}
	}
	return []float64{5, 10, 30}
}

// RunDM runs one DMopt configuration on a design.
func (c *Context) RunDM(design string, gridUm float64, qcp, bothLayers bool) (*core.Result, error) {
	return c.RunDMCtx(context.Background(), design, gridUm, qcp, bothLayers)
}

// RunDMCtx is RunDM with cancellation; the fit, solver and signoff all
// run with the harness worker knob.
func (c *Context) RunDMCtx(ctx context.Context, design string, gridUm float64, qcp, bothLayers bool) (*core.Result, error) {
	return c.runDM(ctx, design, gridUm, qcp, bothLayers, 0)
}

// runDM is RunDMCtx with a warm-bracket seed: seedTau > 0 passes a
// related run's achieved clock period into the QCP bisection.
func (c *Context) runDM(ctx context.Context, design string, gridUm float64, qcp, bothLayers bool, seedTau float64) (*core.Result, error) {
	return c.runDMActuators(ctx, design, gridUm, qcp, bothLayers, seedTau, "")
}

// runDMActuators is runDM with an actuator mode: "" or "dose" for the
// historical dose-only run, "bias" for body-bias only, "joint" for the
// co-optimization (bias domains at the default 20 µm pitch and box).
func (c *Context) runDMActuators(ctx context.Context, design string, gridUm float64, qcp, bothLayers bool, seedTau float64, actuators string) (*core.Result, error) {
	opt := core.DefaultOptions()
	opt.G = gridUm
	opt.BothLayers = bothLayers
	opt.Workers = c.Workers
	opt.QP.LinSys = c.LinSys
	switch actuators {
	case "", "dose":
	case "bias":
		opt.DoseOff = true
		opt.BiasGridUm = api.DefaultBiasGridUm
	case "joint":
		opt.BiasGridUm = api.DefaultBiasGridUm
	default:
		return nil, fmt.Errorf("expt: unknown actuator mode %q", actuators)
	}
	comp, err := c.compiledCtx(ctx, design, opt.CompileOptions())
	if err != nil {
		return nil, err
	}
	if qcp {
		opt.SeedTau = seedTau
		return core.SolveQCP(ctx, core.QCPRequest{Compiled: comp, Opt: opt})
	}
	// Tighten τ a hair below the nominal MCT: the optimizer's linear
	// delay model misses the slew compounding the golden analysis sees,
	// so a small guard band keeps the signoff at or under nominal.
	return core.SolveQP(ctx, core.QPRequest{Compiled: comp, Opt: opt, TauPs: 0.99 * comp.Golden.MCT})
}

func dmRow(design string, g float64, kind string, r *core.Result) DMRow {
	return DMRow{
		Design: design, GridUm: g, Kind: kind,
		MCTns:   r.Golden.MCTps / 1000,
		MCTImp:  100 * (1 - r.Golden.MCTps/r.Nominal.MCTps),
		LeakUW:  r.Golden.LeakUW,
		LeakImp: 100 * (1 - r.Golden.LeakUW/r.Nominal.LeakUW),
		Domains: r.BiasDomains,
		Runtime: r.Runtime,
	}
}

// dmJob is one independent optimization run of a results table.
type dmJob struct {
	design string
	grid   float64
	qcp    bool
	both   bool
	label  string // engine or mode column
	mode   string // actuator mode: "", "bias" or "joint"
}

// runDMJobs fans the optimization runs across workers and returns their
// results in job order.  QCP runs of the same design and mode form a
// serial chain in the given grid order, each seeded with the previous
// grid's achieved clock period (the warm bracket); QP runs stay
// independent singletons.  Chains are internally serial and mutually
// independent, so the rows stay bit-identical for every worker count —
// only the Runtime column varies.
func (c *Context) runDMJobs(ctx context.Context, jobs []dmJob) ([]DMRow, error) {
	type item struct {
		idx int
		job dmJob
	}
	var chains [][]item
	chainOf := map[string]int{}
	for idx, j := range jobs {
		if !j.qcp {
			chains = append(chains, []item{{idx, j}})
			continue
		}
		key := fmt.Sprintf("%s|%s|%t|%s", j.design, j.label, j.both, j.mode)
		if ci, ok := chainOf[key]; ok {
			chains[ci] = append(chains[ci], item{idx, j})
		} else {
			chainOf[key] = len(chains)
			chains = append(chains, []item{{idx, j}})
		}
	}
	rows := make([]DMRow, len(jobs))
	_, err := par.Map(ctx, len(chains), par.Workers(c.Workers), func(i int) (struct{}, error) {
		seed := 0.0
		for _, it := range chains[i] {
			j := it.job
			r, err := c.runDMActuators(ctx, j.design, j.grid, j.qcp, j.both, seed, j.mode)
			if err != nil {
				return struct{}{}, fmt.Errorf("%s %s %g µm: %w", j.design, j.label, j.grid, err)
			}
			if j.qcp {
				seed = r.PredMCT
			}
			rows[it.idx] = dmRow(j.design, j.grid, j.label, r)
		}
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// TableIV runs QP and QCP poly-layer optimization over every design and
// grid size.
func (c *Context) TableIV() (*Table, []DMRow, error) {
	return c.TableIVCtx(context.Background())
}

// TableIVCtx is TableIV with cancellation.  The 24 optimization runs
// (4 designs × 3 grids × {QP, QCP}) are independent and fan out across
// workers; rows assemble in the paper's fixed order afterwards.
func (c *Context) TableIVCtx(ctx context.Context) (*Table, []DMRow, error) {
	ctx, sp := obs.Start(ctx, "expt/Table IV")
	defer sp.End()
	t := &Table{
		ID:     "Table IV",
		Title:  "dose map optimization on poly layer (Lgate modulation), δ=2, range ±5%",
		Header: []string{"Design", "grid (µm)", "engine", "MCT (ns)", "imp. (%)", "Leakage (µW)", "imp. (%)", "runtime"},
	}
	presets := gen.Presets()
	var jobs []dmJob
	for _, p := range presets {
		for _, g := range gridsFor(p.Name, c.Scale) {
			jobs = append(jobs,
				dmJob{design: p.Name, grid: g, qcp: false, label: "QP"},
				dmJob{design: p.Name, grid: g, qcp: true, label: "QCP"})
		}
	}
	rows, err := c.runDMJobs(ctx, jobs)
	if err != nil {
		return nil, nil, err
	}
	ji := 0
	for _, p := range presets {
		golden, err := c.GoldenCtx(ctx, p.Name)
		if err != nil {
			return nil, nil, err
		}
		t.Rows = append(t.Rows, []string{p.Name, "-", "Nom Lgate",
			f3(golden.MCT / 1000), "-", f1(nominalLeakUW(c, p.Name)), "-", "-"})
		for range gridsFor(p.Name, c.Scale) {
			for k := 0; k < 2; k++ {
				row := rows[ji]
				ji++
				t.Rows = append(t.Rows, []string{
					row.Design, f1(row.GridUm), row.Kind, f3(row.MCTns), f2(row.MCTImp),
					f1(row.LeakUW), f2(row.LeakImp), row.Runtime.Round(time.Millisecond).String(),
				})
			}
		}
	}
	return t, rows, nil
}

func nominalLeakUW(c *Context, design string) float64 {
	d, err := c.Design(design)
	if err != nil {
		return math.NaN()
	}
	return power.Total(d.Masters, nil, nil)
}

// --- Tables V-VI: both layers ---------------------------------------------

// tableBoth compares Lgate-only against Lgate+Wgate modulation on the
// 65 nm designs (QCP for Table V, QP for Table VI).
func (c *Context) tableBoth(ctx context.Context, id string, qcp bool) (*Table, []DMRow, error) {
	ctx, sp := obs.Start(ctx, "expt/"+id)
	defer sp.End()
	title := "QCP for improved timing"
	if !qcp {
		title = "QP for improved leakage"
	}
	t := &Table{
		ID:     id,
		Title:  title + " on poly and active layers (Lgate and Wgate modulation), 65 nm designs",
		Header: []string{"Design", "grid (µm)", "mode", "MCT (ns)", "imp. (%)", "Leakage (µW)", "imp. (%)"},
		Notes:  "gate-width modulation is a weak knob (±10 nm on ≥200 nm transistors), so 'Both' edges out 'Lgate' only slightly (Section V)",
	}
	var jobs []dmJob
	for _, name := range []string{"AES-65", "JPEG-65"} {
		for _, g := range gridsFor(name, c.Scale) {
			jobs = append(jobs,
				dmJob{design: name, grid: g, qcp: qcp, both: false, label: "Lgate"},
				dmJob{design: name, grid: g, qcp: qcp, both: true, label: "Both"})
		}
	}
	rows, err := c.runDMJobs(ctx, jobs)
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.Design, f1(row.GridUm), row.Kind, f3(row.MCTns), f2(row.MCTImp), f1(row.LeakUW), f2(row.LeakImp),
		})
	}
	return t, rows, nil
}

// TableV is the QCP (timing) comparison on both layers.
func (c *Context) TableV() (*Table, []DMRow, error) { return c.TableVCtx(context.Background()) }

// TableVCtx is TableV with cancellation.
func (c *Context) TableVCtx(ctx context.Context) (*Table, []DMRow, error) {
	return c.tableBoth(ctx, "Table V", true)
}

// TableVI is the QP (leakage) comparison on both layers.
func (c *Context) TableVI() (*Table, []DMRow, error) { return c.TableVICtx(context.Background()) }

// TableVICtx is TableVI with cancellation.
func (c *Context) TableVICtx(ctx context.Context) (*Table, []DMRow, error) {
	return c.tableBoth(ctx, "Table VI", false)
}

// --- Table X: actuator ablation -------------------------------------------

// TableX runs the actuator ablation: dose-only vs body-bias-only vs the
// joint co-optimization on every design, QP at τ = 0.99·nominal MCT.
func (c *Context) TableX() (*Table, []DMRow, error) { return c.TableXCtx(context.Background()) }

// TableXCtx is TableX with cancellation.  The 12 runs (4 designs × 3
// actuator modes) are independent QP solves at the same τ, so the leakage
// columns are directly comparable per design; the joint row must come in
// at or below both single-actuator rows (a superset feasible region).
func (c *Context) TableXCtx(ctx context.Context) (*Table, []DMRow, error) {
	ctx, sp := obs.Start(ctx, "expt/Table X")
	defer sp.End()
	t := &Table{
		ID:    "Table X",
		Title: "actuator ablation: dose-only vs body-bias vs joint (QP at τ = 0.99·nominal MCT, G=5 µm, bias pitch 20 µm)",
		Header: []string{"Design", "actuators", "MCT (ns)", "imp. (%)",
			"Leakage (µW)", "imp. (%)", "bias domains", "runtime"},
		Notes: "joint optimizes over the union of both knob sets, so its leakage is ≤ min(dose, bias) at equal τ",
	}
	modes := []struct{ mode, label string }{
		{"", "dose"}, {"bias", "bias"}, {"joint", "dose+bias"},
	}
	presets := gen.Presets()
	var jobs []dmJob
	for _, p := range presets {
		for _, m := range modes {
			jobs = append(jobs, dmJob{design: p.Name, grid: 5, qcp: false, label: m.label, mode: m.mode})
		}
	}
	rows, err := c.runDMJobs(ctx, jobs)
	if err != nil {
		return nil, nil, err
	}
	ji := 0
	for _, p := range presets {
		golden, err := c.GoldenCtx(ctx, p.Name)
		if err != nil {
			return nil, nil, err
		}
		t.Rows = append(t.Rows, []string{p.Name, "nominal",
			f3(golden.MCT / 1000), "-", f1(nominalLeakUW(c, p.Name)), "-", "-", "-"})
		for range modes {
			row := rows[ji]
			ji++
			dom := "-"
			if row.Domains > 0 {
				dom = fmt.Sprintf("%d", row.Domains)
			}
			t.Rows = append(t.Rows, []string{
				row.Design, row.Kind, f3(row.MCTns), f2(row.MCTImp),
				f1(row.LeakUW), f2(row.LeakImp), dom, row.Runtime.Round(time.Millisecond).String(),
			})
		}
	}
	return t, rows, nil
}

// --- Table VII: criticality profile ---------------------------------------

// Criticality returns the fraction of timing endpoints with arrival in
// the given fraction bands of the MCT.
func (c *Context) Criticality(design string) (f95, f90, f80 float64, err error) {
	return c.CriticalityCtx(context.Background(), design)
}

// CriticalityCtx is Criticality with cancellation.
func (c *Context) CriticalityCtx(ctx context.Context, design string) (f95, f90, f80 float64, err error) {
	r, err := c.GoldenCtx(ctx, design)
	if err != nil {
		return 0, 0, 0, err
	}
	var n, c95, c90, c80 int
	for id := range r.In.Circ.Gates {
		a := r.AEnd[id]
		if math.IsNaN(a) {
			continue
		}
		n++
		if a >= 0.95*r.MCT {
			c95++
		}
		if a >= 0.90*r.MCT {
			c90++
		}
		if a >= 0.80*r.MCT {
			c80++
		}
	}
	if n == 0 {
		return 0, 0, 0, fmt.Errorf("expt: design %s has no endpoints", design)
	}
	fn := float64(n)
	return float64(c95) / fn, float64(c90) / fn, float64(c80) / fn, nil
}

// TableVII reports the percentage of critical timing paths (endpoints)
// within delay bands of the MCT.
func (c *Context) TableVII() (*Table, error) {
	return c.TableVIICtx(context.Background())
}

// TableVIICtx is TableVII with cancellation; the per-design analyses
// fan out across workers.
func (c *Context) TableVIICtx(ctx context.Context) (*Table, error) {
	ctx, sp := obs.Start(ctx, "expt/Table VII")
	defer sp.End()
	t := &Table{
		ID:     "Table VII",
		Title:  "percentage of critical timing endpoints near the MCT",
		Header: []string{"Design", "95-100% MCT (%)", "90-100% MCT (%)", "80-100% MCT (%)"},
		Notes:  "the 65 nm testcases carry a near-critical 'slack wall' that limits DMopt headroom; the 90 nm testcases do not (Section V)",
	}
	presets := gen.Presets()
	rows, err := par.Map(ctx, len(presets), par.Workers(c.Workers), func(i int) ([]string, error) {
		f95, f90, f80, err := c.CriticalityCtx(ctx, presets[i].Name)
		if err != nil {
			return nil, err
		}
		return []string{presets[i].Name, pct(f95), pct(f90), pct(f80)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// --- Table VIII + Fig. 10: dosePl and slack profiles -----------------------

// restorePlacement snapshots a design's placement and returns a restore
// function: dosePl mutates cell positions, and the harness caches
// designs across experiments.
func restorePlacement(d *gen.Design) func() {
	x := append([]float64(nil), d.Pl.X...)
	y := append([]float64(nil), d.Pl.Y...)
	w := append([]float64(nil), d.Pl.Width...)
	return func() {
		copy(d.Pl.X, x)
		copy(d.Pl.Y, y)
		copy(d.Pl.Width, w)
	}
}

// TableVIII runs QCP followed by the cell-swapping placement rounds.
func (c *Context) TableVIII() (*Table, error) {
	return c.TableVIIICtx(context.Background())
}

// TableVIIICtx is TableVIII with cancellation.  It mutates cached
// placements (restoring them afterwards) and therefore serializes with
// Fig10Profiles on the harness placement lock.
func (c *Context) TableVIIICtx(ctx context.Context) (*Table, error) {
	ctx, sp := obs.Start(ctx, "expt/Table VIII")
	defer sp.End()
	c.plMu.Lock()
	defer c.plMu.Unlock()
	t := &Table{
		ID:     "Table VIII",
		Title:  "QCP for improved timing followed by incremental placement (dosePl)",
		Header: []string{"Testcase", "stage", "MCT (ns)", "Leakage (µW)"},
	}
	for _, name := range []string{"AES-65", "JPEG-65"} {
		golden, err := c.GoldenCtx(ctx, name)
		if err != nil {
			return nil, err
		}
		d, err := c.DesignCtx(ctx, name)
		if err != nil {
			return nil, err
		}
		restore := restorePlacement(d)
		opt := core.DefaultOptions()
		opt.G = gridsFor(name, c.Scale)[0]
		opt.Workers = c.Workers
		opt.QP.LinSys = c.LinSys
		// Compile while the placement is pristine: the artifact snapshots
		// the gate→grid map, and dosePl moves cells afterwards.
		comp, err := c.compiledCtx(ctx, name, opt.CompileOptions())
		if err != nil {
			restore()
			return nil, err
		}
		dm, err := core.SolveQCP(ctx, core.QCPRequest{Compiled: comp, Opt: opt})
		if err != nil {
			restore()
			return nil, err
		}
		dopt := core.DefaultDosePlOptions()
		dopt.K = c.K
		dp, err := core.DosePlCtx(ctx, golden, dm.Layers, opt, dopt)
		restore()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows,
			[]string{name, "Nom Lgate", f3(dm.Nominal.MCTps / 1000), f1(dm.Nominal.LeakUW)},
			[]string{name, "QCP", f3(dm.Golden.MCTps / 1000), f1(dm.Golden.LeakUW)},
			[]string{name, "dosePl", f3(dp.After.MCTps / 1000), f1(dp.After.LeakUW)},
		)
	}
	return t, nil
}

// Fig10Profiles returns the four slack profiles of Fig. 10 for a design:
// original, after DMopt (QCP), after dosePl, and the "Bias" reference
// where every gate on the top-K paths gets maximum dose.
func (c *Context) Fig10Profiles(design string) (map[string][]float64, error) {
	return c.Fig10ProfilesCtx(context.Background(), design)
}

// Fig10ProfilesCtx is Fig10Profiles with cancellation.  It mutates the
// cached placement (restoring it afterwards) and therefore serializes
// with TableVIII on the harness placement lock.
func (c *Context) Fig10ProfilesCtx(ctx context.Context, design string) (map[string][]float64, error) {
	ctx, sp := obs.Start(ctx, "expt/Fig. 10")
	defer sp.End()
	c.plMu.Lock()
	defer c.plMu.Unlock()
	golden, err := c.GoldenCtx(ctx, design)
	if err != nil {
		return nil, err
	}
	d, err := c.DesignCtx(ctx, design)
	if err != nil {
		return nil, err
	}
	defer restorePlacement(d)()
	opt := core.DefaultOptions()
	opt.G = gridsFor(design, c.Scale)[0]
	opt.Workers = c.Workers
	opt.QP.LinSys = c.LinSys
	opt.STA.Workers = c.Workers
	// Compile while the placement is pristine (dosePl moves cells below).
	comp, err := c.compiledCtx(ctx, design, opt.CompileOptions())
	if err != nil {
		return nil, err
	}
	k := c.K
	maxStates := 60 * k

	period := golden.MCT
	out := map[string][]float64{}
	out["Orig"] = core.PathSlackProfile(golden, k, maxStates, period)

	dm, err := core.SolveQCP(ctx, core.QCPRequest{Compiled: comp, Opt: opt})
	if err != nil {
		return nil, err
	}
	in := golden.In
	dl, dw := dm.Layers.PerGate(in.Circ, in.Pl, opt.Snap)
	dmRes, err := sta.AnalyzeCtx(ctx, in, opt.STA, &sta.Perturb{DL: dl, DW: dw})
	if err != nil {
		return nil, err
	}
	out["DMopt"] = core.PathSlackProfile(dmRes, k, maxStates, period)

	dopt := core.DefaultDosePlOptions()
	dopt.K = k
	if _, err := core.DosePlCtx(ctx, golden, dm.Layers, opt, dopt); err != nil {
		return nil, err
	}
	dl2, dw2 := dm.Layers.PerGate(in.Circ, in.Pl, opt.Snap)
	plRes, err := sta.AnalyzeCtx(ctx, in, opt.STA, &sta.Perturb{DL: dl2, DW: dw2})
	if err != nil {
		return nil, err
	}
	out["dosePl"] = core.PathSlackProfile(plRes, k, maxStates, period)

	bias := core.BiasPerturb(golden, k, maxStates, opt.DoseHi)
	biasRes, err := sta.AnalyzeCtx(ctx, in, opt.STA, bias)
	if err != nil {
		return nil, err
	}
	out["Bias"] = core.PathSlackProfile(biasRes, k, maxStates, period)
	return out, nil
}

// Fig10 renders the slack profiles as a downsampled table.
func (c *Context) Fig10(design string, points int) (*Table, error) {
	return c.Fig10Ctx(context.Background(), design, points)
}

// Fig10Ctx is Fig10 with cancellation.
func (c *Context) Fig10Ctx(ctx context.Context, design string, points int) (*Table, error) {
	profiles, err := c.Fig10ProfilesCtx(ctx, design)
	if err != nil {
		return nil, err
	}
	if points <= 1 {
		points = 20
	}
	order := []string{"Orig", "DMopt", "dosePl", "Bias"}
	t := &Table{
		ID:     "Fig. 10",
		Title:  fmt.Sprintf("slack profiles of %s at the nominal clock period (ns)", design),
		Header: append([]string{"path #"}, order...),
		Notes:  "slacks sorted ascending; Bias shows the headroom left by the smoothness- and leakage-constrained DMopt",
	}
	n := len(profiles["Orig"])
	if n == 0 {
		return nil, fmt.Errorf("expt: empty slack profile")
	}
	for i := 0; i < points; i++ {
		idx := i * (n - 1) / (points - 1)
		row := []string{fmt.Sprint(idx)}
		for _, k := range order {
			p := profiles[k]
			j := idx
			if j >= len(p) {
				j = len(p) - 1
			}
			row = append(row, f3(p[j]/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// --- full evaluation sweep -------------------------------------------------

// AllTables regenerates the paper's whole evaluation in one call: the
// read-only tables and figures fan out across workers (each internally
// parallel as well), then the placement-mutating experiments
// (Table VIII, Fig. 10) run serially.  Tables come back in the paper's
// order and are bit-identical for every worker count (except reported
// runtimes).
func (c *Context) AllTables(ctx context.Context, fig10Design string) ([]*Table, error) {
	if fig10Design == "" {
		fig10Design = "AES-65"
	}
	readonly := []func(context.Context) (*Table, error){
		func(context.Context) (*Table, error) { return Fig2(), nil },
		func(context.Context) (*Table, error) { return Fig3(), nil },
		func(context.Context) (*Table, error) { return Fig4(), nil },
		func(context.Context) (*Table, error) { return Fig5(), nil },
		func(context.Context) (*Table, error) { return Fig6(), nil },
		c.TableICtx,
		c.TableIICtx,
		c.TableIIICtx,
		func(ctx context.Context) (*Table, error) { t, _, err := c.TableIVCtx(ctx); return t, err },
		func(ctx context.Context) (*Table, error) { t, _, err := c.TableVCtx(ctx); return t, err },
		func(ctx context.Context) (*Table, error) { t, _, err := c.TableVICtx(ctx); return t, err },
		c.TableVIICtx,
	}
	out, err := par.Map(ctx, len(readonly), par.Workers(c.Workers), func(i int) (*Table, error) {
		return readonly[i](ctx)
	})
	if err != nil {
		return nil, err
	}
	t8, err := c.TableVIIICtx(ctx)
	if err != nil {
		return nil, err
	}
	f10, err := c.Fig10Ctx(ctx, fig10Design, 24)
	if err != nil {
		return nil, err
	}
	return append(out, t8, f10), nil
}

// --- Extension: across-wafer delay variation (Section VI future work) ----

// WaferVariation evaluates the paper's stated future-work direction:
// minimize the delay variation of chips across the wafer.  A radial
// across-wafer CD fingerprint biases every chip's gate lengths by its
// field position; per-field dose offsets (the Dosicom per-field
// actuator) cancel the mean bias.  The table reports the across-wafer
// MCT spread before and after correction, measured by golden STA at the
// best, median and worst field.
func (c *Context) WaferVariation(design string) (*Table, error) {
	return c.WaferVariationCtx(context.Background(), design)
}

// WaferVariationCtx is WaferVariation with cancellation.
func (c *Context) WaferVariationCtx(ctx context.Context, design string) (*Table, error) {
	d, err := c.DesignCtx(ctx, design)
	if err != nil {
		return nil, err
	}
	in := core.InputOf(d)
	cfg := c.staCfg()
	w, err := dosemap.NewWafer(300, 26, 33, 3)
	if err != nil {
		return nil, err
	}
	fp := dosemap.RadialCD{Center: -2, Edge: 4, Power: 2}
	fieldCD := fp.FieldCD(w)
	offsets, residual := dosemap.AWLVCorrection(w, fp, -5, 5)

	// Golden MCT of a chip whose every gate carries the field's CD bias.
	mctAt := func(biasNm float64) (float64, error) {
		n := d.Circ.NumGates()
		dl := make([]float64, n)
		for id, m := range d.Masters {
			if m != nil {
				dl[id] = biasNm
			}
		}
		r, err := sta.AnalyzeCtx(ctx, in, cfg, &sta.Perturb{DL: dl})
		if err != nil {
			return 0, err
		}
		return r.MCT, nil
	}
	mctSpread := func(biases []float64) (lo, hi float64, err error) {
		lo, hi = math.Inf(1), math.Inf(-1)
		// The golden MCT is monotone in a uniform bias, so the spread is
		// set by the extreme fields.
		bLo, bHi := biases[0], biases[0]
		for _, b := range biases {
			bLo = math.Min(bLo, b)
			bHi = math.Max(bHi, b)
		}
		for _, b := range []float64{bLo, bHi} {
			m, err := mctAt(b)
			if err != nil {
				return 0, 0, err
			}
			lo = math.Min(lo, m)
			hi = math.Max(hi, m)
		}
		return lo, hi, nil
	}
	loB, hiB, err := mctSpread(fieldCD)
	if err != nil {
		return nil, err
	}
	loA, hiA, err := mctSpread(residual)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ext. wafer",
		Title:  fmt.Sprintf("across-wafer MCT variation of %s under a radial CD fingerprint (%d fields)", design, len(w.Fields)),
		Header: []string{"stage", "CD spread (nm)", "MCT min (ns)", "MCT max (ns)", "MCT spread (%)"},
		Notes:  "Section VI future work: per-field dose offsets cancel the across-wafer fingerprint",
	}
	row := func(stage string, cd []float64, lo, hi float64) {
		t.Rows = append(t.Rows, []string{
			stage, f2(dosemap.Spread(cd)), f3(lo / 1000), f3(hi / 1000),
			f2(100 * (hi - lo) / lo),
		})
	}
	row("uncorrected", fieldCD, loB, hiB)
	row("corrected", residual, loA, hiA)
	_ = offsets
	return t, nil
}

// --- Extension: full-wafer consensus co-optimization (Table IX) ---------

// WaferGeometry is the production step-and-scan layout with the radial
// fingerprint used throughout the wafer experiments: 26×33 mm fields on
// a 300 mm wafer (88 fields) with a −2/+4 nm center-to-edge CD bias.
func WaferGeometry() core.WaferOptions {
	return core.WaferOptions{
		Fingerprint: dosemap.RadialCD{Center: -2, Edge: 4, Power: 2},
	}
}

// WaferRunCtx runs the full three-stage wafer co-optimization of one
// design: uniform dose, uncoupled per-field QCPs, and the
// consensus-ADMM coupled solve at the common clock-period target.
func (c *Context) WaferRunCtx(ctx context.Context, design string, gridUm float64, wopt core.WaferOptions) (*core.WaferResult, error) {
	opt := core.DefaultOptions()
	opt.G = gridUm
	opt.Workers = c.Workers
	opt.QP.LinSys = c.LinSys
	comp, err := c.compiledCtx(ctx, design, opt.CompileOptions())
	if err != nil {
		return nil, err
	}
	return core.SolveWafer(ctx, core.WaferRequest{Compiled: comp, Opt: opt, Wafer: wopt})
}

// WaferTable renders a wafer run as the Table IX row data: one row per
// exposure field with the three stages' golden signoff, plus the
// per-stage across-wafer spread in the notes.
func WaferTable(design string, r *core.WaferResult) *Table {
	t := &Table{
		ID: "Table IX",
		Title: fmt.Sprintf("full-wafer consensus co-optimization of %s (%d fields, %d consensus groups)",
			design, len(r.Fields), r.Groups),
		Header: []string{"field", "bias (nm)", "uniform MCT (ns)", "uncoupled MCT (ns)",
			"coupled MCT (ns)", "coupled leak (µW)", "leak vs nom (%)"},
		Notes: fmt.Sprintf("τ̄ = %.1f ps; MCT spread %% uniform/uncoupled/coupled = %.3f/%.3f/%.4f; %d outer iters, %d field solves",
			r.TauPs, r.UniformSpreadPct, r.UncoupledSpreadPct, r.CoupledSpreadPct,
			r.OuterIters, r.FieldSolves),
	}
	for i := range r.Fields {
		f := &r.Fields[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("(%d,%d)", f.Col, f.Row),
			f2(f.CDBiasNm),
			f3(f.Uniform.MCTps / 1000),
			f3(f.Uncoupled.MCTps / 1000),
			f3(f.Coupled.MCTps / 1000),
			f1(f.Coupled.LeakUW),
			f2(100 * (f.Coupled.LeakUW/r.NomLeakUW - 1)),
		})
	}
	return t
}

// TableIXCtx reproduces the wafer-scale extension experiment: the
// across-wafer MCT spread must shrink strictly from the uniform-dose
// baseline to the uncoupled per-field solves to the consensus-coupled
// solve, with every field's leakage at the shared budget.  The 10 µm
// grid keeps the 64-field run affordable; the equalization story is
// grid-independent.
func (c *Context) TableIXCtx(ctx context.Context, design string) (*Table, error) {
	r, err := c.WaferRunCtx(ctx, design, 10, WaferGeometry())
	if err != nil {
		return nil, err
	}
	return WaferTable(design, r), nil
}
