// Package expt is the benchmark harness: it regenerates every table and
// figure of the paper's evaluation (Tables I-VIII, Figs. 2-6 and 10) as
// structured row data, shared by cmd/tables, the examples and the
// testing.B benchmarks at the module root.
//
// Absolute numbers come from the synthetic substrate and differ from the
// paper's testbed; the harness exists to reproduce the *shape* of each
// result: who wins, by what factor, and where the crossovers fall.
package expt

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dosemap"
	"repro/internal/gen"
	"repro/internal/liberty"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Table is one reproduced table or figure as printable rows.
type Table struct {
	ID     string // e.g. "Table IV", "Fig. 3"
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries reproduction caveats for EXPERIMENTS.md.
	Notes string
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Notes)
	}
	return b.String()
}

// Context caches generated designs and golden analyses across
// experiments (several tables share the same testcases).
type Context struct {
	// Scale shrinks every preset (1 = the full Table I sizes).
	Scale float64
	// K is the top-path count for path-based experiments.
	K int

	designs map[string]*gen.Design
	goldens map[string]*sta.Result
}

// NewContext returns a harness context.  scale in (0, 1]; k ≤ 0 selects
// the paper's 10 000.
func NewContext(scale float64, k int) *Context {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	if k <= 0 {
		k = 10000
	}
	return &Context{
		Scale:   scale,
		K:       k,
		designs: make(map[string]*gen.Design),
		goldens: make(map[string]*sta.Result),
	}
}

// Design returns the (cached) design for a preset name.
func (c *Context) Design(name string) (*gen.Design, error) {
	if d, ok := c.designs[name]; ok {
		return d, nil
	}
	p, err := gen.PresetByName(name)
	if err != nil {
		return nil, err
	}
	if c.Scale < 1 {
		p = p.Scaled(c.Scale)
	}
	d, err := gen.Generate(p)
	if err != nil {
		return nil, err
	}
	c.designs[name] = d
	return d, nil
}

// Golden returns the (cached) nominal analysis for a preset name.
func (c *Context) Golden(name string) (*sta.Result, error) {
	if r, ok := c.goldens[name]; ok {
		return r, nil
	}
	d, err := c.Design(name)
	if err != nil {
		return nil, err
	}
	r, err := core.GoldenNominal(d, sta.DefaultConfig())
	if err != nil {
		return nil, err
	}
	c.goldens[name] = r
	return r, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.2f", 100*v)
}

// --- Figs. 3-6: cell-level dose response ---------------------------------

// figCell sweeps an INVX1 and reports delay or leakage against ΔL or ΔW.
func figCell(id, title string, node *tech.Node, vsLength, delay bool) *Table {
	lib := liberty.New(node)
	m := lib.MustMaster("INVX1")
	t := &Table{ID: id, Title: title}
	if vsLength {
		t.Header = []string{"Lgate (nm)"}
	} else {
		t.Header = []string{"ΔW (nm)"}
	}
	if delay {
		t.Header = append(t.Header, "delay (ps)")
	} else {
		t.Header = append(t.Header, "leakage (nW)")
	}
	const slew, load = 30.0, 4.0
	for d := -10.0; d <= 10.0+1e-9; d += 2 {
		var x, v float64
		if vsLength {
			x = node.Lnom + d
			if delay {
				v = m.Delay(d, 0, slew, load)
			} else {
				v = m.Leakage(d, 0)
			}
		} else {
			x = d
			if delay {
				v = m.Delay(0, d, slew, load)
			} else {
				v = m.Leakage(0, d)
			}
		}
		t.Rows = append(t.Rows, []string{f1(x), f3(v)})
	}
	return t
}

// Fig3 reproduces "Delay of an inverter versus gate length" (≈linear).
func Fig3() *Table {
	return figCell("Fig. 3", "INVX1 delay vs gate length (65 nm)", tech.N65(), true, true)
}

// Fig4 reproduces "Delay of an inverter versus change in gate width".
func Fig4() *Table {
	return figCell("Fig. 4", "INVX1 delay vs gate-width change (65 nm)", tech.N65(), false, true)
}

// Fig5 reproduces "Average leakage vs gate length" (exponential).
func Fig5() *Table {
	return figCell("Fig. 5", "INVX1 leakage vs gate length (65 nm)", tech.N65(), true, false)
}

// Fig6 reproduces "Average leakage vs change in gate width" (linear).
func Fig6() *Table {
	return figCell("Fig. 6", "INVX1 leakage vs gate-width change (65 nm)", tech.N65(), false, false)
}

// Fig2 reports the dose-to-CD relation (dose sensitivity, Section II-A).
func Fig2() *Table {
	t := &Table{
		ID:     "Fig. 2",
		Title:  fmt.Sprintf("dose sensitivity: CD vs dose change (Ds = %g nm/%%)", tech.DoseSensitivity),
		Header: []string{"dose Δ (%)", "ΔCD (nm)", "CD at 65 nm (nm)"},
	}
	for d := -5.0; d <= 5.0+1e-9; d += 1 {
		dl := tech.DoseToLength(d)
		t.Rows = append(t.Rows, []string{f1(d), f1(dl), f1(65 + dl)})
	}
	return t
}

// --- Table I: testcase characteristics -----------------------------------

// TableI reports the generated designs' characteristics.
func (c *Context) TableI() (*Table, error) {
	t := &Table{
		ID:     "Table I",
		Title:  "characteristics of the synthetic testcases (Artisan TSMC stand-ins)",
		Header: []string{"Design", "Chip size (mm²)", "#Cell instances", "#Nets", "depth", "#FF"},
	}
	for _, p := range gen.Presets() {
		d, err := c.Design(p.Name)
		if err != nil {
			return nil, err
		}
		st, err := d.Circ.Stats()
		if err != nil {
			return nil, err
		}
		area := d.Pl.ChipW * d.Pl.ChipH / 1e6
		t.Rows = append(t.Rows, []string{
			p.Name, f3(area), fmt.Sprint(st.Cells), fmt.Sprint(st.Nets),
			fmt.Sprint(st.Depth), fmt.Sprint(st.Seq),
		})
	}
	if c.Scale < 1 {
		t.Notes = fmt.Sprintf("designs scaled by %.2f for this run", c.Scale)
	}
	return t, nil
}

// --- Tables II-III: uniform dose sweep -----------------------------------

// DoseSweepRow is one point of the uniform-dose sweep.
type DoseSweepRow struct {
	Dose    float64
	MCTns   float64
	MCTImp  float64 // percent, positive is better
	LeakUW  float64
	LeakImp float64 // percent, positive is better
}

// DoseSweep sweeps a uniform poly-layer dose across the whole design and
// reports golden MCT and leakage at each point (Tables II and III).
func (c *Context) DoseSweep(design string, doses []float64) ([]DoseSweepRow, error) {
	d, err := c.Design(design)
	if err != nil {
		return nil, err
	}
	in := core.InputOf(d)
	cfg := sta.DefaultConfig()
	n := d.Circ.NumGates()

	nomEval, _, err := core.EvalPerturb(in, cfg, nil)
	if err != nil {
		return nil, err
	}
	rows := make([]DoseSweepRow, 0, len(doses))
	for _, dose := range doses {
		dl := make([]float64, n)
		for id, m := range d.Masters {
			if m != nil {
				dl[id] = tech.DoseToLength(dose)
			}
		}
		ev, _, err := core.EvalPerturb(in, cfg, &sta.Perturb{DL: dl})
		if err != nil {
			return nil, err
		}
		rows = append(rows, DoseSweepRow{
			Dose:    dose,
			MCTns:   ev.MCTps / 1000,
			MCTImp:  100 * (1 - ev.MCTps/nomEval.MCTps),
			LeakUW:  ev.LeakUW,
			LeakImp: 100 * (1 - ev.LeakUW/nomEval.LeakUW),
		})
	}
	return rows, nil
}

// SweepDoses returns the paper's 21 sweep points 0, ±0.5, …, ±5.
func SweepDoses() []float64 {
	out := []float64{0}
	for d := 0.5; d <= 5+1e-9; d += 0.5 {
		out = append(out, -d, d)
	}
	sort.Float64s(out)
	return out
}

func (c *Context) doseSweepTable(id, design string) (*Table, error) {
	rows, err := c.DoseSweep(design, SweepDoses())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("delay and leakage of %s under uniform poly-layer dose change", design),
		Header: []string{"dose Δ (%)", "MCT (ns)", "imp. (%)", "Leakage (µW)", "imp. (%)"},
		Notes:  "uniform dose trades timing against leakage and cannot win both (Section V)",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			f1(r.Dose), f3(r.MCTns), f2(r.MCTImp), f1(r.LeakUW), f2(r.LeakImp),
		})
	}
	return t, nil
}

// TableII is the AES-65 uniform dose sweep.
func (c *Context) TableII() (*Table, error) { return c.doseSweepTable("Table II", "AES-65") }

// TableIII is the AES-90 uniform dose sweep.
func (c *Context) TableIII() (*Table, error) { return c.doseSweepTable("Table III", "AES-90") }

// --- Table IV: DMopt on poly layer ----------------------------------------

// DMRow is one optimization outcome for the results tables.
type DMRow struct {
	Design  string
	GridUm  float64
	Kind    string // "QP" or "QCP"
	MCTns   float64
	MCTImp  float64
	LeakUW  float64
	LeakImp float64
	Runtime time.Duration
}

// gridsFor returns the paper's grid sizes per node: 5/10/30 µm at 65 nm
// and 5/10/50 µm at 90 nm.  Grid sizes are NOT scaled with the design:
// a scaled die with the same G preserves the paper's cells-per-grid
// density, which is what drives the optimization quality (Section V).
func gridsFor(design string, scale float64) []float64 {
	if strings.HasSuffix(design, "-90") {
		return []float64{5, 10, 50}
	}
	return []float64{5, 10, 30}
}

// RunDM runs one DMopt configuration on a design.
func (c *Context) RunDM(design string, gridUm float64, qcp, bothLayers bool) (*core.Result, error) {
	golden, err := c.Golden(design)
	if err != nil {
		return nil, err
	}
	model, err := core.FitModel(golden, bothLayers)
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.G = gridUm
	opt.BothLayers = bothLayers
	if qcp {
		return core.DMoptQCP(golden, model, opt)
	}
	// Tighten τ a hair below the nominal MCT: the optimizer's linear
	// delay model misses the slew compounding the golden analysis sees,
	// so a small guard band keeps the signoff at or under nominal.
	return core.DMoptQP(golden, model, opt, 0.99*golden.MCT)
}

func dmRow(design string, g float64, kind string, r *core.Result) DMRow {
	return DMRow{
		Design: design, GridUm: g, Kind: kind,
		MCTns:   r.Golden.MCTps / 1000,
		MCTImp:  100 * (1 - r.Golden.MCTps/r.Nominal.MCTps),
		LeakUW:  r.Golden.LeakUW,
		LeakImp: 100 * (1 - r.Golden.LeakUW/r.Nominal.LeakUW),
		Runtime: r.Runtime,
	}
}

// TableIV runs QP and QCP poly-layer optimization over every design and
// grid size.
func (c *Context) TableIV() (*Table, []DMRow, error) {
	t := &Table{
		ID:     "Table IV",
		Title:  "dose map optimization on poly layer (Lgate modulation), δ=2, range ±5%",
		Header: []string{"Design", "grid (µm)", "engine", "MCT (ns)", "imp. (%)", "Leakage (µW)", "imp. (%)", "runtime"},
	}
	var rows []DMRow
	for _, p := range gen.Presets() {
		golden, err := c.Golden(p.Name)
		if err != nil {
			return nil, nil, err
		}
		nomRow := []string{p.Name, "-", "Nom Lgate",
			f3(golden.MCT / 1000), "-", f1(nominalLeakUW(c, p.Name)), "-", "-"}
		t.Rows = append(t.Rows, nomRow)
		for _, g := range gridsFor(p.Name, c.Scale) {
			for _, qcp := range []bool{false, true} {
				kind := "QP"
				if qcp {
					kind = "QCP"
				}
				r, err := c.RunDM(p.Name, g, qcp, false)
				if err != nil {
					return nil, nil, fmt.Errorf("%s %s %g µm: %w", p.Name, kind, g, err)
				}
				row := dmRow(p.Name, g, kind, r)
				rows = append(rows, row)
				t.Rows = append(t.Rows, []string{
					p.Name, f1(g), kind, f3(row.MCTns), f2(row.MCTImp),
					f1(row.LeakUW), f2(row.LeakImp), row.Runtime.Round(time.Millisecond).String(),
				})
			}
		}
	}
	return t, rows, nil
}

func nominalLeakUW(c *Context, design string) float64 {
	d, err := c.Design(design)
	if err != nil {
		return math.NaN()
	}
	return power.Total(d.Masters, nil, nil)
}

// --- Tables V-VI: both layers ---------------------------------------------

// tableBoth compares Lgate-only against Lgate+Wgate modulation on the
// 65 nm designs (QCP for Table V, QP for Table VI).
func (c *Context) tableBoth(id string, qcp bool) (*Table, []DMRow, error) {
	title := "QCP for improved timing"
	if !qcp {
		title = "QP for improved leakage"
	}
	t := &Table{
		ID:     id,
		Title:  title + " on poly and active layers (Lgate and Wgate modulation), 65 nm designs",
		Header: []string{"Design", "grid (µm)", "mode", "MCT (ns)", "imp. (%)", "Leakage (µW)", "imp. (%)"},
		Notes:  "gate-width modulation is a weak knob (±10 nm on ≥200 nm transistors), so 'Both' edges out 'Lgate' only slightly (Section V)",
	}
	var rows []DMRow
	for _, name := range []string{"AES-65", "JPEG-65"} {
		for _, g := range gridsFor(name, c.Scale) {
			for _, both := range []bool{false, true} {
				mode := "Lgate"
				if both {
					mode = "Both"
				}
				r, err := c.RunDM(name, g, qcp, both)
				if err != nil {
					return nil, nil, fmt.Errorf("%s %s %g µm: %w", name, mode, g, err)
				}
				row := dmRow(name, g, mode, r)
				rows = append(rows, row)
				t.Rows = append(t.Rows, []string{
					name, f1(g), mode, f3(row.MCTns), f2(row.MCTImp), f1(row.LeakUW), f2(row.LeakImp),
				})
			}
		}
	}
	return t, rows, nil
}

// TableV is the QCP (timing) comparison on both layers.
func (c *Context) TableV() (*Table, []DMRow, error) { return c.tableBoth("Table V", true) }

// TableVI is the QP (leakage) comparison on both layers.
func (c *Context) TableVI() (*Table, []DMRow, error) { return c.tableBoth("Table VI", false) }

// --- Table VII: criticality profile ---------------------------------------

// Criticality returns the fraction of timing endpoints with arrival in
// the given fraction bands of the MCT.
func (c *Context) Criticality(design string) (f95, f90, f80 float64, err error) {
	r, err := c.Golden(design)
	if err != nil {
		return 0, 0, 0, err
	}
	var n, c95, c90, c80 int
	for id := range r.In.Circ.Gates {
		a := r.AEnd[id]
		if math.IsNaN(a) {
			continue
		}
		n++
		if a >= 0.95*r.MCT {
			c95++
		}
		if a >= 0.90*r.MCT {
			c90++
		}
		if a >= 0.80*r.MCT {
			c80++
		}
	}
	if n == 0 {
		return 0, 0, 0, fmt.Errorf("expt: design %s has no endpoints", design)
	}
	fn := float64(n)
	return float64(c95) / fn, float64(c90) / fn, float64(c80) / fn, nil
}

// TableVII reports the percentage of critical timing paths (endpoints)
// within delay bands of the MCT.
func (c *Context) TableVII() (*Table, error) {
	t := &Table{
		ID:     "Table VII",
		Title:  "percentage of critical timing endpoints near the MCT",
		Header: []string{"Design", "95-100% MCT (%)", "90-100% MCT (%)", "80-100% MCT (%)"},
		Notes:  "the 65 nm testcases carry a near-critical 'slack wall' that limits DMopt headroom; the 90 nm testcases do not (Section V)",
	}
	for _, p := range gen.Presets() {
		f95, f90, f80, err := c.Criticality(p.Name)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{p.Name, pct(f95), pct(f90), pct(f80)})
	}
	return t, nil
}

// --- Table VIII + Fig. 10: dosePl and slack profiles -----------------------

// restorePlacement snapshots a design's placement and returns a restore
// function: dosePl mutates cell positions, and the harness caches
// designs across experiments.
func restorePlacement(d *gen.Design) func() {
	x := append([]float64(nil), d.Pl.X...)
	y := append([]float64(nil), d.Pl.Y...)
	w := append([]float64(nil), d.Pl.Width...)
	return func() {
		copy(d.Pl.X, x)
		copy(d.Pl.Y, y)
		copy(d.Pl.Width, w)
	}
}

// TableVIII runs QCP followed by the cell-swapping placement rounds.
func (c *Context) TableVIII() (*Table, error) {
	t := &Table{
		ID:     "Table VIII",
		Title:  "QCP for improved timing followed by incremental placement (dosePl)",
		Header: []string{"Testcase", "stage", "MCT (ns)", "Leakage (µW)"},
	}
	for _, name := range []string{"AES-65", "JPEG-65"} {
		golden, err := c.Golden(name)
		if err != nil {
			return nil, err
		}
		d, err := c.Design(name)
		if err != nil {
			return nil, err
		}
		restore := restorePlacement(d)
		model, err := core.FitModel(golden, false)
		if err != nil {
			return nil, err
		}
		opt := core.DefaultOptions()
		opt.G = gridsFor(name, c.Scale)[0]
		dm, err := core.DMoptQCP(golden, model, opt)
		if err != nil {
			restore()
			return nil, err
		}
		dopt := core.DefaultDosePlOptions()
		dopt.K = c.K
		dp, err := core.DosePl(golden, dm.Layers, opt, dopt)
		restore()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows,
			[]string{name, "Nom Lgate", f3(dm.Nominal.MCTps / 1000), f1(dm.Nominal.LeakUW)},
			[]string{name, "QCP", f3(dm.Golden.MCTps / 1000), f1(dm.Golden.LeakUW)},
			[]string{name, "dosePl", f3(dp.After.MCTps / 1000), f1(dp.After.LeakUW)},
		)
	}
	return t, nil
}

// Fig10Profiles returns the four slack profiles of Fig. 10 for a design:
// original, after DMopt (QCP), after dosePl, and the "Bias" reference
// where every gate on the top-K paths gets maximum dose.
func (c *Context) Fig10Profiles(design string) (map[string][]float64, error) {
	golden, err := c.Golden(design)
	if err != nil {
		return nil, err
	}
	d, err := c.Design(design)
	if err != nil {
		return nil, err
	}
	defer restorePlacement(d)()
	model, err := core.FitModel(golden, false)
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.G = gridsFor(design, c.Scale)[0]
	k := c.K
	maxStates := 60 * k

	period := golden.MCT
	out := map[string][]float64{}
	out["Orig"] = core.PathSlackProfile(golden, k, maxStates, period)

	dm, err := core.DMoptQCP(golden, model, opt)
	if err != nil {
		return nil, err
	}
	in := golden.In
	dl, dw := dm.Layers.PerGate(in.Circ, in.Pl, opt.Snap)
	dmRes, err := sta.Analyze(in, opt.STA, &sta.Perturb{DL: dl, DW: dw})
	if err != nil {
		return nil, err
	}
	out["DMopt"] = core.PathSlackProfile(dmRes, k, maxStates, period)

	dopt := core.DefaultDosePlOptions()
	dopt.K = k
	if _, err := core.DosePl(golden, dm.Layers, opt, dopt); err != nil {
		return nil, err
	}
	dl2, dw2 := dm.Layers.PerGate(in.Circ, in.Pl, opt.Snap)
	plRes, err := sta.Analyze(in, opt.STA, &sta.Perturb{DL: dl2, DW: dw2})
	if err != nil {
		return nil, err
	}
	out["dosePl"] = core.PathSlackProfile(plRes, k, maxStates, period)

	bias := core.BiasPerturb(golden, k, maxStates, opt.DoseHi)
	biasRes, err := sta.Analyze(in, opt.STA, bias)
	if err != nil {
		return nil, err
	}
	out["Bias"] = core.PathSlackProfile(biasRes, k, maxStates, period)
	return out, nil
}

// Fig10 renders the slack profiles as a downsampled table.
func (c *Context) Fig10(design string, points int) (*Table, error) {
	profiles, err := c.Fig10Profiles(design)
	if err != nil {
		return nil, err
	}
	if points <= 1 {
		points = 20
	}
	order := []string{"Orig", "DMopt", "dosePl", "Bias"}
	t := &Table{
		ID:     "Fig. 10",
		Title:  fmt.Sprintf("slack profiles of %s at the nominal clock period (ns)", design),
		Header: append([]string{"path #"}, order...),
		Notes:  "slacks sorted ascending; Bias shows the headroom left by the smoothness- and leakage-constrained DMopt",
	}
	n := len(profiles["Orig"])
	if n == 0 {
		return nil, fmt.Errorf("expt: empty slack profile")
	}
	for i := 0; i < points; i++ {
		idx := i * (n - 1) / (points - 1)
		row := []string{fmt.Sprint(idx)}
		for _, k := range order {
			p := profiles[k]
			j := idx
			if j >= len(p) {
				j = len(p) - 1
			}
			row = append(row, f3(p[j]/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// --- Extension: across-wafer delay variation (Section VI future work) ----

// WaferVariation evaluates the paper's stated future-work direction:
// minimize the delay variation of chips across the wafer.  A radial
// across-wafer CD fingerprint biases every chip's gate lengths by its
// field position; per-field dose offsets (the Dosicom per-field
// actuator) cancel the mean bias.  The table reports the across-wafer
// MCT spread before and after correction, measured by golden STA at the
// best, median and worst field.
func (c *Context) WaferVariation(design string) (*Table, error) {
	d, err := c.Design(design)
	if err != nil {
		return nil, err
	}
	in := core.InputOf(d)
	cfg := sta.DefaultConfig()
	w, err := dosemap.NewWafer(300, 26, 33, 3)
	if err != nil {
		return nil, err
	}
	fp := dosemap.RadialCD{Center: -2, Edge: 4, Power: 2}
	fieldCD := fp.FieldCD(w)
	offsets, residual := dosemap.AWLVCorrection(w, fp, -5, 5)

	// Golden MCT of a chip whose every gate carries the field's CD bias.
	mctAt := func(biasNm float64) (float64, error) {
		n := d.Circ.NumGates()
		dl := make([]float64, n)
		for id, m := range d.Masters {
			if m != nil {
				dl[id] = biasNm
			}
		}
		r, err := sta.Analyze(in, cfg, &sta.Perturb{DL: dl})
		if err != nil {
			return 0, err
		}
		return r.MCT, nil
	}
	mctSpread := func(biases []float64) (lo, hi float64, err error) {
		lo, hi = math.Inf(1), math.Inf(-1)
		// The golden MCT is monotone in a uniform bias, so the spread is
		// set by the extreme fields.
		bLo, bHi := biases[0], biases[0]
		for _, b := range biases {
			bLo = math.Min(bLo, b)
			bHi = math.Max(bHi, b)
		}
		for _, b := range []float64{bLo, bHi} {
			m, err := mctAt(b)
			if err != nil {
				return 0, 0, err
			}
			lo = math.Min(lo, m)
			hi = math.Max(hi, m)
		}
		return lo, hi, nil
	}
	loB, hiB, err := mctSpread(fieldCD)
	if err != nil {
		return nil, err
	}
	loA, hiA, err := mctSpread(residual)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ext. wafer",
		Title:  fmt.Sprintf("across-wafer MCT variation of %s under a radial CD fingerprint (%d fields)", design, len(w.Fields)),
		Header: []string{"stage", "CD spread (nm)", "MCT min (ns)", "MCT max (ns)", "MCT spread (%)"},
		Notes:  "Section VI future work: per-field dose offsets cancel the across-wafer fingerprint",
	}
	row := func(stage string, cd []float64, lo, hi float64) {
		t.Rows = append(t.Rows, []string{
			stage, f2(dosemap.Spread(cd)), f3(lo / 1000), f3(hi / 1000),
			f2(100 * (hi - lo) / lo),
		})
	}
	row("uncorrected", fieldCD, loB, hiB)
	row("corrected", residual, loA, hiA)
	_ = offsets
	return t, nil
}
