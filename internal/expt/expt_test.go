package expt

import (
	"strconv"
	"strings"
	"testing"
)

// ctx returns a small-scale harness context shared by shape tests.
func ctx() *Context { return New(WithScale(0.05), WithTopK(400)) }

func TestFigShapes(t *testing.T) {
	// Fig. 3: delay increases with L, near-linear.
	f3t := Fig3()
	if len(f3t.Rows) < 5 {
		t.Fatal("Fig3 too short")
	}
	prev := -1.0
	for _, r := range f3t.Rows {
		v := atof(t, r[1])
		if v <= prev {
			t.Fatal("Fig3 must be increasing")
		}
		prev = v
	}
	// Fig. 4: delay decreases with ΔW.
	f4t := Fig4()
	if atof(t, f4t.Rows[0][1]) <= atof(t, f4t.Rows[len(f4t.Rows)-1][1]) {
		t.Error("Fig4 must be decreasing")
	}
	// Fig. 5: leakage decreasing and convex in L.
	f5t := Fig5()
	a := atof(t, f5t.Rows[0][1])
	b := atof(t, f5t.Rows[len(f5t.Rows)/2][1])
	c := atof(t, f5t.Rows[len(f5t.Rows)-1][1])
	if !(a > b && b > c) {
		t.Error("Fig5 must be decreasing")
	}
	if (a - b) <= (b - c) {
		t.Error("Fig5 must be convex (exponential-like)")
	}
	// Fig. 6: leakage increasing ~linearly with ΔW.
	f6t := Fig6()
	if atof(t, f6t.Rows[0][1]) >= atof(t, f6t.Rows[len(f6t.Rows)-1][1]) {
		t.Error("Fig6 must be increasing")
	}
	// Fig. 2: higher dose → smaller CD.
	f2t := Fig2()
	if atof(t, f2t.Rows[0][2]) <= atof(t, f2t.Rows[len(f2t.Rows)-1][2]) {
		t.Error("Fig2: CD must shrink as dose grows")
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q", s)
	}
	return v
}

func TestTableIAndFormat(t *testing.T) {
	c := ctx()
	tab, err := c.TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table I rows = %d", len(tab.Rows))
	}
	txt := tab.Format()
	if !strings.Contains(txt, "AES-65") || !strings.Contains(txt, "Table I") {
		t.Error("Format output incomplete")
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| AES-65 |") && !strings.Contains(md, "| AES-65(x0.05) |") {
		t.Errorf("Markdown output incomplete:\n%s", md)
	}
}

// TestDoseSweepShape verifies the Tables II/III no-free-lunch shape:
// higher uniform dose monotonically improves MCT and worsens leakage.
func TestDoseSweepShape(t *testing.T) {
	c := ctx()
	rows, err := c.DoseSweep("AES-65", []float64{-5, -2, 0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MCTns >= rows[i-1].MCTns {
			t.Errorf("MCT must fall as dose rises: %+v vs %+v", rows[i-1], rows[i])
		}
		if rows[i].LeakUW <= rows[i-1].LeakUW {
			t.Errorf("leakage must rise with dose")
		}
	}
	// Zero dose row is the baseline.
	for _, r := range rows {
		if r.Dose == 0 && (r.MCTImp != 0 || r.LeakImp != 0) {
			t.Errorf("zero-dose row should have zero improvements: %+v", r)
		}
	}
	// Asymmetric gains: at +5% the leakage penalty exceeds the timing
	// gain in magnitude (the paper's core motivation for DMopt).
	last := rows[len(rows)-1]
	if -last.LeakImp <= last.MCTImp {
		t.Errorf("at +5%% dose, leakage penalty (%.1f%%) should exceed timing gain (%.1f%%)",
			-last.LeakImp, last.MCTImp)
	}
}

// TestCriticalityOrdering checks the Table VII story: the 65 nm designs
// carry a bigger near-critical wall than their 90 nm counterparts.
func TestCriticalityOrdering(t *testing.T) {
	c := New(WithScale(0.1), WithTopK(400))
	a65, _, _, err := c.Criticality("AES-65")
	if err != nil {
		t.Fatal(err)
	}
	a90, _, _, err := c.Criticality("AES-90")
	if err != nil {
		t.Fatal(err)
	}
	if a65 <= a90 {
		t.Errorf("AES-65 wall (%.3f) should exceed AES-90 (%.3f)", a65, a90)
	}
}

// TestRunDMShapes runs one QP and one QCP and asserts the headline
// result: leakage reduction without timing loss, and timing gain without
// leakage increase.
func TestRunDMShapes(t *testing.T) {
	c := ctx()
	qp, err := c.RunDM("AES-65", 5, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if qp.Golden.LeakUW >= qp.Nominal.LeakUW {
		t.Error("QP must reduce leakage")
	}
	if qp.Golden.MCTps > qp.Nominal.MCTps*1.01 {
		t.Error("QP must hold timing")
	}
	qcp, err := c.RunDM("AES-65", 5, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if qcp.Golden.MCTps >= qcp.Nominal.MCTps {
		t.Error("QCP must improve timing")
	}
	if qcp.Golden.LeakUW > qcp.Nominal.LeakUW*1.02 {
		t.Error("QCP must hold leakage")
	}
}

func TestTableVIIRenders(t *testing.T) {
	c := New(WithScale(0.05), WithTopK(200))
	tab, err := c.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestSweepDoses(t *testing.T) {
	d := SweepDoses()
	if len(d) != 21 || d[0] != -5 || d[20] != 5 || d[10] != 0 {
		t.Errorf("SweepDoses = %v", d)
	}
}

func TestContextCaching(t *testing.T) {
	c := ctx()
	d1, err := c.Design("AES-65")
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := c.Design("AES-65")
	if d1 != d2 {
		t.Error("designs must be cached")
	}
	g1, err := c.Golden("AES-65")
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := c.Golden("AES-65")
	if g1 != g2 {
		t.Error("goldens must be cached")
	}
	if _, err := c.Design("NOPE"); err == nil {
		t.Error("unknown design must fail")
	}
}
