package expt

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestMemoizedCachesConcurrent is the regression test for the
// design/golden memoization: concurrent callers must share one build
// (same pointer out) without racing.  Run with -race.
func TestMemoizedCachesConcurrent(t *testing.T) {
	c := New(WithScale(0.03), WithTopK(100), WithWorkers(4))
	const callers = 8
	var wg sync.WaitGroup
	designs := make([]interface{}, callers)
	goldens := make([]interface{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := c.Design("AES-65")
			if err != nil {
				t.Error(err)
				return
			}
			g, err := c.Golden("AES-65")
			if err != nil {
				t.Error(err)
				return
			}
			designs[i] = d
			goldens[i] = g
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if designs[i] != designs[0] {
			t.Fatal("concurrent Design calls built more than one design")
		}
		if goldens[i] != goldens[0] {
			t.Fatal("concurrent Golden calls built more than one analysis")
		}
	}
}

// TestCanceledBuildNotMemoized asserts a canceled build does not poison
// the cache: the next caller retries and succeeds.
func TestCanceledBuildNotMemoized(t *testing.T) {
	c := New(WithScale(0.03), WithTopK(100))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.DesignCtx(ctx, "AES-65"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if _, err := c.Design("AES-65"); err != nil {
		t.Fatalf("canceled build poisoned the cache: %v", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.GoldenCtx(ctx2, "AES-90"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if _, err := c.Golden("AES-90"); err != nil {
		t.Fatalf("canceled build poisoned the golden cache: %v", err)
	}
}

// TestTableIVWorkersEquivalent asserts the full Table IV regeneration —
// 24 concurrent optimizations sharing the memoized caches — produces
// identical golden signoff at workers=1 and workers=8.  Only the
// reported wall-clock runtime may differ.
func TestTableIVWorkersEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table IV regeneration")
	}
	mk := func(workers int) (*Table, []DMRow) {
		c := New(WithScale(0.02), WithTopK(100), WithWorkers(workers))
		tbl, rows, err := c.TableIV()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tbl, rows
	}
	t1, r1 := mk(1)
	t8, r8 := mk(8)
	if len(r1) != len(r8) || len(t1.Rows) != len(t8.Rows) {
		t.Fatalf("row counts differ: %d/%d vs %d/%d", len(r1), len(t1.Rows), len(r8), len(t8.Rows))
	}
	for i := range r1 {
		a, b := r1[i], r8[i]
		a.Runtime, b.Runtime = 0, 0
		if a != b {
			t.Fatalf("DMRow %d differs:\n  workers=1: %+v\n  workers=8: %+v", i, r1[i], r8[i])
		}
	}
	for i := range t1.Rows {
		for j := range t1.Rows[i] {
			if j == len(t1.Rows[i])-1 {
				continue // runtime column
			}
			if t1.Rows[i][j] != t8.Rows[i][j] {
				t.Fatalf("table cell [%d][%d] differs: %q vs %q", i, j, t1.Rows[i][j], t8.Rows[i][j])
			}
		}
	}
}

// TestDoseSweepWorkersEquivalent asserts the 21-point dose sweep rows
// are bit-identical whether the points run serially or fanned out.
func TestDoseSweepWorkersEquivalent(t *testing.T) {
	c1 := New(WithScale(0.03), WithTopK(100), WithWorkers(1))
	c8 := New(WithScale(0.03), WithTopK(100), WithWorkers(8))
	r1, err := c1.DoseSweep("AES-65", SweepDoses())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := c8.DoseSweep("AES-65", SweepDoses())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r8) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r8))
	}
	for i := range r1 {
		if r1[i] != r8[i] {
			t.Fatalf("sweep row %d differs: %+v vs %+v", i, r1[i], r8[i])
		}
	}
}
