package expt

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// loadRecordedResults splits results_scale0.15.txt (the recorded
// scale-0.15 harness run EXPERIMENTS.md documents) into sections keyed
// by their title prefix, each a list of non-blank body lines.
func loadRecordedResults(t *testing.T) map[string][]string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "results_scale0.15.txt"))
	if err != nil {
		t.Fatalf("recorded results missing: %v", err)
	}
	sections := map[string][]string{}
	var cur string
	for _, line := range strings.Split(string(raw), "\n") {
		trimmed := strings.TrimRight(line, " \t")
		if strings.HasPrefix(trimmed, "Fig.") || strings.HasPrefix(trimmed, "Table") {
			if i := strings.Index(trimmed, " —"); i > 0 {
				cur = trimmed[:i]
				continue
			}
		}
		if trimmed == "" {
			cur = ""
			continue
		}
		if cur != "" && !strings.HasPrefix(trimmed, "note:") {
			sections[cur] = append(sections[cur], trimmed)
		}
	}
	return sections
}

// num parses a float field, failing the test on malformed data.
func num(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad numeric field %q: %v", s, err)
	}
	return v
}

// TestRecordedResultsShape re-checks the EXPERIMENTS.md shape criteria
// against the committed results_scale0.15.txt, so a regenerated results
// file that silently loses a qualitative property (who wins, signs,
// monotonicity, the slack wall) fails CI even when every number parses.
func TestRecordedResultsShape(t *testing.T) {
	sec := loadRecordedResults(t)

	// Fig. 2: the dose sensitivity is exactly Ds = -2 nm/%.
	for _, row := range sec["Fig. 2"][1:] {
		f := strings.Fields(row)
		dose, dcd := num(t, f[0]), num(t, f[1])
		if dcd != -2*dose {
			t.Errorf("Fig. 2: ΔCD at dose %v is %v, want %v", dose, dcd, -2*dose)
		}
	}

	// Fig. 3: delay strictly increasing in Lgate.  Fig. 5: leakage
	// strictly decreasing and convex (exponential-like) in Lgate.
	var d3, l5 []float64
	for _, row := range sec["Fig. 3"][1:] {
		d3 = append(d3, num(t, strings.Fields(row)[1]))
	}
	for _, row := range sec["Fig. 5"][1:] {
		l5 = append(l5, num(t, strings.Fields(row)[1]))
	}
	for i := 1; i < len(d3); i++ {
		if d3[i] <= d3[i-1] {
			t.Errorf("Fig. 3: delay not increasing at row %d", i)
		}
	}
	for i := 1; i < len(l5); i++ {
		if l5[i] >= l5[i-1] {
			t.Errorf("Fig. 5: leakage not decreasing at row %d", i)
		}
	}
	for i := 1; i < len(l5)-1; i++ {
		if l5[i-1]-l5[i] <= l5[i]-l5[i+1] {
			t.Errorf("Fig. 5: leakage not convex at row %d", i)
		}
	}

	// Tables II/III: uniform dose monotonically trades timing against
	// leakage — no sweep point may improve both.
	for _, table := range []string{"Table II", "Table III"} {
		rows := sec[table][1:]
		var prevMCT, prevLeak float64
		for i, row := range rows {
			f := strings.Fields(row)
			dose, mct, mctImp := num(t, f[0]), num(t, f[1]), num(t, f[2])
			leak, leakImp := num(t, f[3]), num(t, f[4])
			if dose == 0 && (mctImp != 0 || leakImp != 0) {
				t.Errorf("%s: nonzero improvement at zero dose", table)
			}
			if mctImp > 0 && leakImp > 0 {
				t.Errorf("%s: dose %v improves both timing and leakage", table, dose)
			}
			if i > 0 {
				if mct >= prevMCT {
					t.Errorf("%s: MCT not decreasing in dose at %v", table, dose)
				}
				if leak <= prevLeak {
					t.Errorf("%s: leakage not increasing in dose at %v", table, dose)
				}
			}
			prevMCT, prevLeak = mct, leak
		}
	}

	// Table IV: QP saves meaningful leakage at ~zero timing cost; QCP
	// buys timing without exceeding the nominal leakage; finer grids
	// beat the coarsest grid for the QP on every design.
	type ivRow struct{ grid, mctImp, leakImp float64 }
	qpRows := map[string][]ivRow{}
	for _, row := range sec["Table IV"][1:] {
		f := strings.Fields(row)
		if f[2] == "Nom" {
			continue
		}
		r := ivRow{num(t, f[1]), num(t, f[4]), num(t, f[6])}
		switch f[2] {
		case "QP":
			if r.leakImp < 5 {
				t.Errorf("Table IV: %s grid %v QP leakage saving %.2f%% below the double-digit-class floor", f[0], r.grid, r.leakImp)
			}
			if r.mctImp < -1 {
				t.Errorf("Table IV: %s grid %v QP degrades timing %.2f%%", f[0], r.grid, r.mctImp)
			}
			qpRows[f[0]] = append(qpRows[f[0]], r)
		case "QCP":
			if r.mctImp <= 0 {
				t.Errorf("Table IV: %s grid %v QCP fails to improve timing (%.2f%%)", f[0], r.grid, r.mctImp)
			}
			if r.leakImp < -0.1 {
				t.Errorf("Table IV: %s grid %v QCP exceeds nominal leakage (%.2f%%)", f[0], r.grid, r.leakImp)
			}
		default:
			t.Errorf("Table IV: unknown engine %q", f[2])
		}
	}
	for design, rows := range qpRows {
		if len(rows) < 2 {
			t.Fatalf("Table IV: %s has %d QP rows", design, len(rows))
		}
		finest, coarsest := rows[0], rows[0]
		for _, r := range rows[1:] {
			if r.grid < finest.grid {
				finest = r
			}
			if r.grid > coarsest.grid {
				coarsest = r
			}
		}
		if finest.leakImp <= coarsest.leakImp {
			t.Errorf("Table IV: %s finest grid (%.2f%%) does not beat coarsest (%.2f%%)",
				design, finest.leakImp, coarsest.leakImp)
		}
	}

	// Table VII: the 65 nm slack wall — a double-digit near-critical
	// fraction — versus (almost) none at 90 nm.
	for _, row := range sec["Table VII"][1:] {
		f := strings.Fields(row)
		f95 := num(t, f[1])
		is65 := strings.HasSuffix(f[0], "-65")
		if is65 && f95 < 3 {
			t.Errorf("Table VII: %s lost its slack wall (95-100%% band = %.2f%%)", f[0], f95)
		}
		if !is65 && f95 > 3 {
			t.Errorf("Table VII: %s grew a slack wall (95-100%% band = %.2f%%)", f[0], f95)
		}
	}

	// Table VIII: each stage only improves timing: nominal ≥ QCP ≥ dosePl.
	stageMCT := map[string]map[string]float64{}
	for _, row := range sec["Table VIII"][1:] {
		f := strings.Fields(row)
		design, stage := f[0], f[1]
		mct := num(t, f[len(f)-2])
		if stage == "Nom" {
			stage = "Nom Lgate"
		}
		if stageMCT[design] == nil {
			stageMCT[design] = map[string]float64{}
		}
		stageMCT[design][stage] = mct
	}
	for design, m := range stageMCT {
		if !(m["dosePl"] <= m["QCP"] && m["QCP"] <= m["Nom Lgate"]) {
			t.Errorf("Table VIII: %s stage ordering broken: nom %.3f, QCP %.3f, dosePl %.3f",
				design, m["Nom Lgate"], m["QCP"], m["dosePl"])
		}
	}

	// Table IX: the full-wafer consensus run — coupling must shrink the
	// across-wafer MCT spread below both baselines while every field
	// stays inside the ξ leakage budget.
	var waferRows [][]string
	for _, row := range sec["Table IX"][1:] {
		waferRows = append(waferRows, strings.Fields(row))
	}
	checkWaferTableShape(t, waferRows)

	// Table X: the actuator ablation — all three modes run at the same
	// τ target per design, so the joint run optimizes over a superset of
	// each single-actuator feasible region and must match or beat both
	// on leakage (up to solver tolerance); the bias rows must actually
	// carry bias domains and the dose-only rows must not.
	leakOf := map[string]map[string]float64{}
	for _, row := range sec["Table X"][1:] {
		f := strings.Fields(row)
		design, mode := f[0], f[1]
		if mode == "nominal" {
			continue
		}
		if leakOf[design] == nil {
			leakOf[design] = map[string]float64{}
		}
		leakOf[design][mode] = num(t, f[4])
		domains := f[6]
		if mode == "dose" && domains != "-" {
			t.Errorf("Table X: %s dose-only row reports %s bias domains", design, domains)
		}
		if mode != "dose" && num(t, domains) <= 0 {
			t.Errorf("Table X: %s %s row has no bias domains", design, mode)
		}
	}
	if len(leakOf) < 4 {
		t.Fatalf("Table X: ablation covers %d designs, want all 4", len(leakOf))
	}
	for design, m := range leakOf {
		joint, okJ := m["dose+bias"]
		dose, okD := m["dose"]
		bias, okB := m["bias"]
		if !okJ || !okD || !okB {
			t.Fatalf("Table X: %s missing an ablation mode: %v", design, m)
		}
		eps := 1e-3 * dose // solver/rounding tolerance on the printed µW
		if joint > dose+eps || joint > bias+eps {
			t.Errorf("Table X: %s joint leakage %.1f µW above a single-actuator run (dose %.1f, bias %.1f)",
				design, joint, dose, bias)
		}
	}

	// Fig. 10: profiles sorted ascending; at every rank Orig ≤ DMopt ≤
	// Bias and dosePl never below DMopt by more than rounding.
	var prev [4]float64
	for i, row := range sec["Fig. 10"][1:] {
		f := strings.Fields(row)
		orig, dmopt, dosepl, bias := num(t, f[1]), num(t, f[2]), num(t, f[3]), num(t, f[4])
		if !(orig <= dmopt && dmopt <= bias) {
			t.Errorf("Fig. 10 row %d: ordering broken (orig %.3f dmopt %.3f bias %.3f)", i, orig, dmopt, bias)
		}
		if dosepl < dmopt-0.0015 {
			t.Errorf("Fig. 10 row %d: dosePl %.3f fell below DMopt %.3f", i, dosepl, dmopt)
		}
		if i > 0 {
			for j, v := range []float64{orig, dmopt, dosepl, bias} {
				if v < prev[j] {
					t.Errorf("Fig. 10 row %d col %d: profile not ascending", i, j)
				}
			}
		}
		prev = [4]float64{orig, dmopt, dosepl, bias}
	}
}

// checkWaferTableShape asserts the qualitative Table IX invariants on
// whitespace-split rows (field, bias nm, uniform MCT ns, uncoupled MCT
// ns, coupled MCT ns, coupled leak µW, leak-vs-nominal %).  It is
// shared between the recorded-results check and the fresh re-run, so a
// regenerated wafer table cannot silently lose the coupling win.
func checkWaferTableShape(t *testing.T, rows [][]string) {
	t.Helper()
	if len(rows) < 12 {
		t.Fatalf("Table IX: only %d field rows — a wafer has at least a dozen fields", len(rows))
	}
	spread := func(col int) float64 {
		lo, hi := num(t, rows[0][col]), num(t, rows[0][col])
		for _, f := range rows[1:] {
			v := num(t, f[col])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo <= 0 {
			t.Fatalf("Table IX: non-positive MCT in column %d", col)
		}
		return 100 * (hi - lo) / lo
	}
	uniform, uncoupled, coupled := spread(2), spread(3), spread(4)
	if !(coupled < uncoupled && uncoupled < uniform) {
		t.Errorf("Table IX: spread ordering broken — uniform %.4f%%, uncoupled %.4f%%, coupled %.4f%%",
			uniform, uncoupled, coupled)
	}
	// The coupled column is the equalized one: near-flat across the
	// wafer (the printed precision bounds it well under half a percent).
	if coupled > 0.5 {
		t.Errorf("Table IX: coupled MCT spread %.4f%% — consensus failed to flatten the wafer", coupled)
	}
	for i, f := range rows {
		if vs := num(t, f[6]); vs > 2 {
			t.Errorf("Table IX row %d: coupled leakage %+.2f%% above nominal exceeds the ξ budget", i, vs)
		}
		// Per field the coupled dose may give back some of the
		// uncoupled field-optimal timing (that is the price of
		// consensus) but must still beat the uniform baseline.
		if num(t, f[4]) >= num(t, f[2]) {
			t.Errorf("Table IX row %d: coupled MCT not below the uniform-dose MCT", i)
		}
	}
}

// TestWaferFreshScale015 re-runs the full-wafer consensus experiment
// from scratch at scale 0.15 and holds the freshly computed table to
// the same shape criteria as the committed one.  Skipped under -short:
// it runs ~150 field solves.
func TestWaferFreshScale015(t *testing.T) {
	if testing.Short() {
		t.Skip("fresh scale-0.15 wafer run skipped in -short mode")
	}
	c := New(WithScale(0.15))
	wr, err := c.WaferRunCtx(context.Background(), "AES-65", 10, WaferGeometry())
	if err != nil {
		t.Fatal(err)
	}
	checkWaferTableShape(t, WaferTable("AES-65", wr).Rows)
	if !(wr.CoupledSpreadPct < wr.UncoupledSpreadPct && wr.UncoupledSpreadPct < wr.UniformSpreadPct) {
		t.Errorf("fresh wafer: spread ordering broken — uniform %.4f%%, uncoupled %.4f%%, coupled %.4f%%",
			wr.UniformSpreadPct, wr.UncoupledSpreadPct, wr.CoupledSpreadPct)
	}
	for _, f := range wr.Fields {
		if f.Coupled.LeakUW > wr.NomLeakUW*1.001 {
			t.Errorf("fresh wafer field (%d,%d): coupled leakage %.2f µW exceeds nominal %.2f µW",
				f.Col, f.Row, f.Coupled.LeakUW, wr.NomLeakUW)
		}
	}
}

// TestShapeFreshSubset re-runs a fast subset of the scale-0.15 harness
// from scratch and checks the same shape criteria hold on freshly
// computed numbers, not just on the committed file.  Skipped under
// -short: it costs a few seconds of real optimization.
func TestShapeFreshSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("fresh scale-0.15 subset skipped in -short mode")
	}
	ctx := context.Background()
	c := New(WithScale(0.15), WithTopK(2000))

	// Uniform sweep on AES-65: the Tables II/III trade-off shape.
	rows, err := c.DoseSweepCtx(ctx, "AES-65", SweepDoses())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.MCTImp > 0 && r.LeakImp > 0 {
			t.Errorf("fresh sweep: dose %v improves both timing and leakage", r.Dose)
		}
		if i > 0 && rows[i].MCTns >= rows[i-1].MCTns {
			t.Errorf("fresh sweep: MCT not decreasing at dose %v", r.Dose)
		}
	}

	// DMopt on AES-65, grid 5 µm: QP saves leakage without hurting
	// timing; QCP buys timing inside the ξ=0 leakage budget.
	qpRes, err := c.RunDMCtx(ctx, "AES-65", 5, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if qpRes.Golden.LeakUW >= qpRes.Nominal.LeakUW {
		t.Errorf("fresh QP: leakage not reduced (%.1f vs %.1f µW)", qpRes.Golden.LeakUW, qpRes.Nominal.LeakUW)
	}
	if qpRes.Golden.MCTps > qpRes.Nominal.MCTps*1.01 {
		t.Errorf("fresh QP: timing degraded beyond 1%% (%.1f vs %.1f ps)", qpRes.Golden.MCTps, qpRes.Nominal.MCTps)
	}
	qcpRes, err := c.RunDMCtx(ctx, "AES-65", 5, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if qcpRes.Golden.MCTps >= qcpRes.Nominal.MCTps {
		t.Errorf("fresh QCP: timing not improved (%.1f vs %.1f ps)", qcpRes.Golden.MCTps, qcpRes.Nominal.MCTps)
	}
	if qcpRes.Golden.LeakUW > qcpRes.Nominal.LeakUW*1.001 {
		t.Errorf("fresh QCP: leakage exceeds nominal (%.1f vs %.1f µW)", qcpRes.Golden.LeakUW, qcpRes.Nominal.LeakUW)
	}

	// Criticality: the AES-65 slack wall is present at scale 0.15.
	// CriticalityCtx returns fractions; Table VII prints them ×100.
	f95, _, _, err := c.CriticalityCtx(ctx, "AES-65")
	if err != nil {
		t.Fatal(err)
	}
	if f95 < 0.03 {
		t.Errorf("fresh criticality: AES-65 95-100%% band %.2f%% — slack wall missing", 100*f95)
	}
}
