package expt

import (
	"context"
	"math"
	"testing"

	"repro/internal/obs"
)

// TestTableIVColdVsCachedCompile is the compile-cache no-interference
// proof: the full Table IV job matrix must produce bit-identical rows
// whether every job compiles its formulation cold (cache bypassed) or
// all jobs share cached Compiled artifacts — at any worker count, with
// or without telemetry.  Every float is compared by math.Float64bits.
func TestTableIVColdVsCachedCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table IV regeneration")
	}
	run := func(workers int, cold, withObs bool) ([]DMRow, *obs.Recorder) {
		c := New(WithScale(0.02), WithTopK(100), WithWorkers(workers))
		c.noCompileCache = cold
		ctx := context.Background()
		var rec *obs.Recorder
		if withObs {
			rec = obs.New()
			ctx = obs.With(ctx, rec)
		}
		_, rows, err := c.TableIVCtx(ctx)
		if err != nil {
			t.Fatalf("workers=%d cold=%t obs=%t: %v", workers, cold, withObs, err)
		}
		return rows, rec
	}
	requireRowsEq := func(label string, a, b []DMRow) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: row counts differ: %d vs %d", label, len(a), len(b))
		}
		for i := range a {
			x, y := a[i], b[i]
			if x.Design != y.Design || x.Kind != y.Kind {
				t.Fatalf("%s: row %d identity differs: %+v vs %+v", label, i, x, y)
			}
			for _, f := range []struct {
				name string
				u, v float64
			}{
				{"GridUm", x.GridUm, y.GridUm},
				{"MCTns", x.MCTns, y.MCTns},
				{"MCTImp", x.MCTImp, y.MCTImp},
				{"LeakUW", x.LeakUW, y.LeakUW},
				{"LeakImp", x.LeakImp, y.LeakImp},
			} {
				if math.Float64bits(f.u) != math.Float64bits(f.v) {
					t.Fatalf("%s: row %d (%s %s %g µm) %s differs bitwise: %v vs %v",
						label, i, x.Design, x.Kind, x.GridUm, f.name, f.u, f.v)
				}
			}
		}
	}

	cold, _ := run(1, true, false)
	cached1, rec1 := run(1, false, true)
	cached2, _ := run(2, false, false)
	cached8, rec8 := run(8, false, true)

	requireRowsEq("cold vs cached workers=1 (obs on)", cold, cached1)
	requireRowsEq("cold vs cached workers=2 (obs off)", cold, cached2)
	requireRowsEq("cold vs cached workers=8 (obs on)", cold, cached8)

	// Table IV is 24 jobs over 12 distinct (design, grid, layers) compile
	// keys: exactly 12 misses and 12 hits per cached run.
	for _, rc := range []struct {
		workers int
		rec     *obs.Recorder
	}{{1, rec1}, {8, rec8}} {
		misses := rc.rec.Counter("core/compile_misses")
		hits := rc.rec.Counter("core/compile_hits")
		if misses != 12 {
			t.Errorf("workers=%d: core/compile_misses = %d, want 12", rc.workers, misses)
		}
		if hits != 12 {
			t.Errorf("workers=%d: core/compile_hits = %d, want 12", rc.workers, hits)
		}
		if rc.rec.Counter("core/compile_ns") <= 0 {
			t.Errorf("workers=%d: core/compile_ns not recorded", rc.workers)
		}
	}
}
