// Package tech provides the device-physics substrate for the dose-map
// co-optimization flow: per-node technology constants and analytic
// transistor delay/leakage models that stand in for SPICE simulation of
// foundry devices.
//
// The paper characterizes its models from SPICE sweeps of TSMC 65 nm and
// 90 nm devices (Figs. 3-6).  We reproduce the *shapes* those figures
// establish with a compact analytic model:
//
//   - drive resistance follows an alpha-power-law channel model, so cell
//     delay is approximately linear in gate length L and in gate width W
//     around the nominal point (Figs. 3, 4);
//   - leakage is the sum of a subthreshold component that is exponential
//     in L (via Vth roll-off) and a gate/junction component that is
//     L-independent, both proportional to W, so total leakage is
//     exponential in L and linear in W (Figs. 5, 6).
//
// The exponential constants are calibrated so that a full-range dose swing
// (±5% dose, i.e. ∓10 nm of gate length at Ds = -2 nm/%) reproduces the
// leakage and delay endpoint ratios the paper reports in Tables II and III.
package tech

import (
	"fmt"
	"math"
)

// DoseSensitivity is the CD change per percent of exposure-dose change,
// in nm/%.  Increasing dose decreases CD, so the value is negative.  The
// paper assumes the typical value -2 nm/% (Section II-C, citing [7]).
const DoseSensitivity = -2.0

// Node holds the technology constants for one process node.
//
// Units used throughout the module:
//
//	length/width  nm
//	time          ps
//	capacitance   fF
//	resistance    kΩ   (kΩ × fF = ps)
//	leakage       nW
//	voltage       V
type Node struct {
	Name string

	// Lnom is the nominal (drawn) transistor gate length in nm.
	Lnom float64
	// Wmin and Wmax bound the transistor widths used by standard cells
	// in this node, in nm.  (Section V: 65 nm cells span ~200-650 nm.)
	Wmin, Wmax float64

	// VDD is the nominal supply voltage in V.
	VDD float64
	// Vth0 is the nominal threshold voltage in V at L = Lnom.
	Vth0 float64
	// Alpha is the alpha-power-law velocity-saturation exponent.
	Alpha float64

	// VthRoll is the threshold-voltage roll-off slope dVth/dL in V/nm:
	// shortening the channel by 1 nm lowers Vth by VthRoll volts.
	VthRoll float64
	// SubSlope is n·vT, the subthreshold slope factor in V (kT/q times
	// the body-effect coefficient).
	SubSlope float64

	// SubFrac is the fraction of nominal leakage that is subthreshold
	// (exponential in L); the remaining 1-SubFrac is gate/junction
	// leakage, independent of L.  Both components scale linearly in W.
	SubFrac float64

	// DelaySlopeL is the relative cell-delay sensitivity to gate length,
	// per nm: d(delay)/delay ≈ DelaySlopeL · ΔL near L = Lnom.
	DelaySlopeL float64
	// DelayCurveL is a small quadratic correction to the delay-vs-L
	// relation, per nm².  Kept small: the paper's Fig. 3 is near-linear.
	DelayCurveL float64

	// R0 is the unit drive resistance in kΩ of a 1x device at nominal
	// L and W; stronger drives divide it down.
	R0 float64
	// Cg0 is the gate capacitance in fF of a 1x device input pin.
	Cg0 float64
	// Leak0 is the nominal leakage in nW of a 1x device at (Lnom, Wnom).
	Leak0 float64
	// Wnom is the reference transistor width in nm for a 1x device.
	Wnom float64

	// WireRPerUm and WireCPerUm are the per-µm wire resistance (kΩ) and
	// capacitance (fF) used by the placement-driven wire-delay model.
	WireRPerUm float64
	WireCPerUm float64

	// KGammaBody is the body-effect coefficient dVth/dVbs in V/V: a
	// forward body bias of b volts lowers the threshold voltage by
	// KGammaBody·b (faster, leakier), a reverse bias raises it.  Typical
	// bulk-CMOS values are 0.1-0.2.
	KGammaBody float64
}

// LeakExpK returns the exponential leakage constant k (per nm) such that
// the subthreshold leakage component scales as exp(-k·ΔL) for a gate-length
// change ΔL = L - Lnom.  It is VthRoll/SubSlope: each nm of channel-length
// reduction lowers Vth by VthRoll volts, which multiplies subthreshold
// current by exp(VthRoll/SubSlope).
func (n *Node) LeakExpK() float64 { return n.VthRoll / n.SubSlope }

// N65 returns the 65 nm technology node.
//
// Calibration targets (Table II, AES-65, full ±5% dose = ∓10 nm of L):
// leakage ratio ×2.55 at ΔL=-10 nm and ×0.624 at ΔL=+10 nm, which the
// two-component leakage model meets with SubFrac≈0.497 and k≈0.1416/nm;
// MCT swing about -12.9%/+11.4% with DelaySlopeL≈0.0125/nm plus slew
// compounding in the STA.
func N65() *Node {
	return &Node{
		Name:        "N65",
		Lnom:        65,
		Wmin:        200,
		Wmax:        650,
		VDD:         1.0,
		Vth0:        0.32,
		Alpha:       1.3,
		VthRoll:     0.00368, // V per nm; k = VthRoll/SubSlope = 0.1416/nm
		SubSlope:    0.026,
		SubFrac:     0.4965,
		DelaySlopeL: 0.0125,
		DelayCurveL: 0.00004,
		R0:          1.42,
		Cg0:         0.9,
		Leak0:       7.9,
		Wnom:        300,
		WireRPerUm:  0.004,
		WireCPerUm:  0.10,
		KGammaBody:  0.15,
	}
}

// N90 returns the 90 nm technology node.
//
// Calibration targets (Table III, AES-90): leakage ratio ×1.901 at
// ΔL=-10 nm and ×0.700 at ΔL=+10 nm (SubFrac≈0.451, k≈0.1098/nm);
// MCT swing about -11.7%/+9.9% with DelaySlopeL≈0.0105/nm.
func N90() *Node {
	return &Node{
		Name:        "N90",
		Lnom:        90,
		Wmin:        280,
		Wmax:        900,
		VDD:         1.2,
		Vth0:        0.35,
		Alpha:       1.35,
		VthRoll:     0.002854, // k = 0.10977/nm
		SubSlope:    0.026,
		SubFrac:     0.4510,
		DelaySlopeL: 0.0105,
		DelayCurveL: 0.00003,
		R0:          1.45,
		Cg0:         1.2,
		Leak0:       31.6,
		Wnom:        420,
		WireRPerUm:  0.003,
		WireCPerUm:  0.11,
		KGammaBody:  0.18,
	}
}

// ByName returns the node with the given name ("N65" or "N90").
func ByName(name string) (*Node, error) {
	switch name {
	case "N65", "65", "65nm":
		return N65(), nil
	case "N90", "90", "90nm":
		return N90(), nil
	}
	return nil, fmt.Errorf("tech: unknown node %q", name)
}

// Vth returns the threshold voltage at gate length L (nm), applying the
// linear roll-off model around Lnom.
func (n *Node) Vth(l float64) float64 {
	return n.Vth0 - n.VthRoll*(n.Lnom-l)
}

// DriveFactor returns the multiplicative change in drive resistance for a
// device at gate length L and width W relative to (Lnom, wNom), where wNom
// is the device's own nominal width in nm.  Resistance grows with L (longer
// channel, higher Vth) and shrinks with W (wider channel).
//
// The L dependence uses the calibrated linear+quadratic form rather than
// the raw alpha-power expression so that cell delay tracks the paper's
// near-linear Fig. 3 slope; the W dependence is the alpha-power-law 1/W.
func (n *Node) DriveFactor(l, w, wNom float64) float64 {
	dl := l - n.Lnom
	lf := 1 + n.DelaySlopeL*dl + n.DelayCurveL*dl*dl
	if lf < 0.05 {
		lf = 0.05
	}
	if w < 1 {
		w = 1
	}
	return lf * wNom / w
}

// LeakFactor returns the multiplicative change in leakage for a device at
// gate length L and width W relative to (Lnom, wNom): the subthreshold
// component is exponential in -(L-Lnom), the gate/junction component is
// constant, and both scale linearly with W.
func (n *Node) LeakFactor(l, w, wNom float64) float64 {
	k := n.LeakExpK()
	sub := n.SubFrac * math.Exp(-k*(l-n.Lnom))
	gate := 1 - n.SubFrac
	return (sub + gate) * w / wNom
}

// Device models one standard-cell output driver: an equivalent pull
// resistance, intrinsic delay, parasitic output capacitance and leakage,
// all at a given (L, W) operating point.  It is the analytic stand-in for
// a SPICE-characterized cell arc.
type Device struct {
	Node *Node
	// Drive is the relative drive strength (1 for X1, 2 for X2, ...).
	Drive float64
	// WNom is the nominal transistor width in nm of this device at X1
	// scaling (total effective width is Drive·WNom).
	WNom float64
	// TIntr is the intrinsic (unloaded) delay in ps at nominal L, W.
	TIntr float64
	// CPar is the parasitic output capacitance in fF at X1.
	CPar float64
	// LeakNom is the nominal leakage in nW at X1 (scaled by Drive).
	LeakNom float64
}

// SlewDelayFraction is the fraction of the input slew that adds to cell
// delay in the linear NLDM model: delay = intrinsic + R·Cload + f·slew.
const SlewDelayFraction = 0.18

// SlewOutFactor converts the output RC product into output transition
// time: slewOut ≈ SlewOutFactor · R · (Cload + Cpar) + SlewResidual·slewIn.
const (
	SlewOutFactor = 1.9
	SlewResidual  = 0.10
)

// R returns the equivalent drive resistance in kΩ at gate length l and
// width delta dw (both nm); dw shifts the transistor width from nominal.
func (d *Device) R(l, dw float64) float64 {
	w := d.WNom + dw
	return d.Node.R0 / d.Drive * d.Node.DriveFactor(l, w, d.WNom)
}

// Delay returns the cell propagation delay in ps for input slew (ps) and
// output load (fF) at gate length l (nm) and width delta dw (nm).
func (d *Device) Delay(l, dw, slew, load float64) float64 {
	f := d.Node.DriveFactor(l, d.WNom+dw, d.WNom)
	return d.TIntr*f + d.R(l, dw)*(load+d.CPar*d.Drive) + SlewDelayFraction*slew
}

// OutSlew returns the output transition time in ps under the same
// conditions as Delay.
func (d *Device) OutSlew(l, dw, slew, load float64) float64 {
	return SlewOutFactor*d.R(l, dw)*(load+d.CPar*d.Drive) + SlewResidual*slew
}

// Leakage returns the device leakage in nW at gate length l (nm) and width
// delta dw (nm).
func (d *Device) Leakage(l, dw float64) float64 {
	w := d.WNom + dw
	return d.LeakNom * d.Drive * d.Node.LeakFactor(l, w, d.WNom)
}

// BodyBiasDVth converts a body-bias voltage (V, forward positive) into a
// threshold-voltage delta in V: forward bias lowers Vth.
func (n *Node) BodyBiasDVth(bbv float64) float64 { return -n.KGammaBody * bbv }

// BiasDelayScale returns the multiplicative cell-delay change caused by a
// threshold shift dvth (V) at gate length l (nm), from the alpha-power
// law: delay ∝ 1/(VDD−Vth)^α.  It is exactly 1 at dvth = 0.  The gate
// overdrive is floored at 5% of VDD so deep reverse bias degrades
// gracefully instead of diverging.
func (n *Node) BiasDelayScale(l, dvth float64) float64 {
	ov := n.VDD - n.Vth(l)
	den := ov - dvth
	if floor := 0.05 * n.VDD; den < floor {
		den = floor
	}
	return math.Pow(ov/den, n.Alpha)
}

// LeakFactorV is LeakFactor with an additional threshold shift dvth (V):
// only the subthreshold component responds, multiplied by
// exp(-dvth/SubSlope) (forward bias → lower Vth → more leakage).
func (n *Node) LeakFactorV(l, w, wNom, dvth float64) float64 {
	k := n.LeakExpK()
	sub := n.SubFrac * math.Exp(-k*(l-n.Lnom)) * math.Exp(-dvth/n.SubSlope)
	gate := 1 - n.SubFrac
	return (sub + gate) * w / wNom
}

// DelayV is Delay with an additional threshold-voltage shift dvth (V),
// e.g. from body bias.  dvth = 0 takes the exact unbiased path, so the
// unbiased flow is bit-identical to Delay.  The shift scales the drive
// (intrinsic + RC) part of the delay via the alpha-power law; the slew
// feed-through term is unchanged.
func (d *Device) DelayV(l, dw, dvth, slew, load float64) float64 {
	if dvth == 0 {
		return d.Delay(l, dw, slew, load)
	}
	s := d.Node.BiasDelayScale(l, dvth)
	f := d.Node.DriveFactor(l, d.WNom+dw, d.WNom)
	return s*(d.TIntr*f+d.R(l, dw)*(load+d.CPar*d.Drive)) + SlewDelayFraction*slew
}

// OutSlewV is OutSlew with a threshold shift dvth (V); dvth = 0 takes the
// exact unbiased path.
func (d *Device) OutSlewV(l, dw, dvth, slew, load float64) float64 {
	if dvth == 0 {
		return d.OutSlew(l, dw, slew, load)
	}
	s := d.Node.BiasDelayScale(l, dvth)
	return s*SlewOutFactor*d.R(l, dw)*(load+d.CPar*d.Drive) + SlewResidual*slew
}

// LeakageV is Leakage with a threshold shift dvth (V); dvth = 0 takes the
// exact unbiased path.
func (d *Device) LeakageV(l, dw, dvth float64) float64 {
	if dvth == 0 {
		return d.Leakage(l, dw)
	}
	w := d.WNom + dw
	return d.LeakNom * d.Drive * d.Node.LeakFactorV(l, w, d.WNom, dvth)
}

// DoseToLength converts a poly-layer dose delta (percent) into a gate
// length delta in nm: ΔL = Ds · dP.
func DoseToLength(dosePct float64) float64 { return DoseSensitivity * dosePct }

// DoseToWidth converts an active-layer dose delta (percent) into a gate
// width delta in nm: ΔW = Ds · dA.
func DoseToWidth(dosePct float64) float64 { return DoseSensitivity * dosePct }
