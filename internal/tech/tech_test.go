package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"N65", "65", "65nm"} {
		n, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if n.Lnom != 65 {
			t.Errorf("ByName(%q).Lnom = %v, want 65", name, n.Lnom)
		}
	}
	for _, name := range []string{"N90", "90", "90nm"} {
		n, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if n.Lnom != 90 {
			t.Errorf("ByName(%q).Lnom = %v, want 90", name, n.Lnom)
		}
	}
	if _, err := ByName("N45"); err == nil {
		t.Error("ByName(N45) should fail")
	}
}

func TestVthRollOff(t *testing.T) {
	n := N65()
	if got := n.Vth(n.Lnom); math.Abs(got-n.Vth0) > 1e-12 {
		t.Errorf("Vth(Lnom) = %v, want Vth0 = %v", got, n.Vth0)
	}
	// Shorter channel must lower Vth.
	if n.Vth(n.Lnom-10) >= n.Vth0 {
		t.Error("Vth should decrease for shorter channels")
	}
	if n.Vth(n.Lnom+10) <= n.Vth0 {
		t.Error("Vth should increase for longer channels")
	}
}

// TestLeakFactorCalibration checks the Table II / Table III endpoint
// ratios: a full-range dose swing of ±5% (ΔL = ∓10 nm) must reproduce the
// paper's total-leakage ratios to within a couple of percent.
func TestLeakFactorCalibration(t *testing.T) {
	cases := []struct {
		node         *Node
		hiRatio      float64 // leakage ratio at ΔL = -10 nm (dose +5%)
		loRatio      float64 // leakage ratio at ΔL = +10 nm (dose -5%)
		hiTol, loTol float64
	}{
		{N65(), 2.5496, 0.6241, 0.05, 0.02}, // 1142.2/448.0, 279.6/448.0
		{N90(), 1.9007, 0.6995, 0.05, 0.02}, // 4619.0/2430.2, 1699.8/2430.2
	}
	for _, c := range cases {
		n := c.node
		hi := n.LeakFactor(n.Lnom-10, n.Wnom, n.Wnom)
		lo := n.LeakFactor(n.Lnom+10, n.Wnom, n.Wnom)
		if math.Abs(hi-c.hiRatio) > c.hiTol {
			t.Errorf("%s: leak ratio at ΔL=-10 = %.4f, want %.4f±%.2f", n.Name, hi, c.hiRatio, c.hiTol)
		}
		if math.Abs(lo-c.loRatio) > c.loTol {
			t.Errorf("%s: leak ratio at ΔL=+10 = %.4f, want %.4f±%.2f", n.Name, lo, c.loRatio, c.loTol)
		}
	}
}

func TestLeakFactorShapes(t *testing.T) {
	n := N65()
	// Exponential in L: log(leak) vs L is affine for the subthreshold
	// component; the total must be strictly decreasing and convex in L.
	prev := math.Inf(1)
	var prevDiff float64
	first := true
	for l := n.Lnom - 10; l <= n.Lnom+10; l++ {
		f := n.LeakFactor(l, n.Wnom, n.Wnom)
		if f >= prev {
			t.Fatalf("leakage not strictly decreasing in L at L=%v", l)
		}
		if !first {
			diff := prev - f
			if prevDiff != 0 && diff >= prevDiff {
				t.Fatalf("leakage not convex in L at L=%v", l)
			}
			prevDiff = diff
		}
		first = false
		prev = f
	}
	// Linear in W: f(L, w) must be exactly proportional to w.
	f1 := n.LeakFactor(n.Lnom, 200, n.Wnom)
	f2 := n.LeakFactor(n.Lnom, 400, n.Wnom)
	if math.Abs(f2-2*f1) > 1e-12 {
		t.Errorf("leakage not linear in W: f(400)=%v, 2·f(200)=%v", f2, 2*f1)
	}
}

func TestDriveFactor(t *testing.T) {
	n := N65()
	if got := n.DriveFactor(n.Lnom, n.Wnom, n.Wnom); math.Abs(got-1) > 1e-12 {
		t.Errorf("DriveFactor at nominal = %v, want 1", got)
	}
	// Longer L → more resistance; wider W → less resistance.
	if n.DriveFactor(n.Lnom+5, n.Wnom, n.Wnom) <= 1 {
		t.Error("DriveFactor should exceed 1 for longer L")
	}
	if n.DriveFactor(n.Lnom, 2*n.Wnom, n.Wnom) >= 1 {
		t.Error("DriveFactor should drop below 1 for wider W")
	}
	// Near-linearity: the quadratic correction must stay small over the
	// dose-reachable range (±10 nm): within 1% of the linear term.
	for dl := -10.0; dl <= 10; dl++ {
		got := n.DriveFactor(n.Lnom+dl, n.Wnom, n.Wnom)
		lin := 1 + n.DelaySlopeL*dl
		if math.Abs(got-lin) > 0.01 {
			t.Errorf("DriveFactor at ΔL=%v deviates from linear by %v", dl, got-lin)
		}
	}
}

func newTestDevice(n *Node) *Device {
	return &Device{Node: n, Drive: 1, WNom: n.Wnom, TIntr: 8, CPar: 1.0, LeakNom: n.Leak0}
}

func TestDeviceDelayMonotone(t *testing.T) {
	d := newTestDevice(N65())
	base := d.Delay(65, 0, 30, 4)
	if d.Delay(75, 0, 30, 4) <= base {
		t.Error("delay should increase with L")
	}
	if d.Delay(55, 0, 30, 4) >= base {
		t.Error("delay should decrease with shorter L")
	}
	if d.Delay(65, 50, 30, 4) >= base {
		t.Error("delay should decrease with wider W")
	}
	if d.Delay(65, 0, 60, 4) <= base {
		t.Error("delay should increase with input slew")
	}
	if d.Delay(65, 0, 30, 8) <= base {
		t.Error("delay should increase with load")
	}
}

func TestDeviceOutSlewMonotone(t *testing.T) {
	d := newTestDevice(N65())
	base := d.OutSlew(65, 0, 30, 4)
	if d.OutSlew(55, 0, 30, 4) >= base {
		t.Error("output slew should improve (decrease) with shorter L")
	}
	if d.OutSlew(65, 0, 30, 8) <= base {
		t.Error("output slew should increase with load")
	}
}

func TestDeviceLeakageScalesWithDrive(t *testing.T) {
	n := N65()
	d1 := newTestDevice(n)
	d4 := newTestDevice(n)
	d4.Drive = 4
	l1 := d1.Leakage(n.Lnom, 0)
	l4 := d4.Leakage(n.Lnom, 0)
	if math.Abs(l4-4*l1) > 1e-9 {
		t.Errorf("leakage should scale with drive: X4=%v, 4·X1=%v", l4, 4*l1)
	}
}

func TestDoseConversions(t *testing.T) {
	if got := DoseToLength(5); got != -10 {
		t.Errorf("DoseToLength(5) = %v, want -10", got)
	}
	if got := DoseToWidth(-5); got != 10 {
		t.Errorf("DoseToWidth(-5) = %v, want 10", got)
	}
}

// Property: for any dose in the equipment range, increasing the dose
// strictly decreases delay and strictly increases leakage — the fundamental
// tradeoff the whole paper exploits ("no free lunch" for uniform dose).
func TestPropertyDoseTradeoff(t *testing.T) {
	n := N65()
	d := newTestDevice(n)
	f := func(doseRaw, doseRaw2 float64) bool {
		// Map arbitrary float64s into the ±5% equipment range.
		d1 := math.Mod(math.Abs(doseRaw), 5.0)
		d2 := math.Mod(math.Abs(doseRaw2), 5.0)
		if d1 == d2 {
			return true
		}
		lo, hi := math.Min(d1, d2), math.Max(d1, d2)
		lLo, lHi := n.Lnom+DoseToLength(lo), n.Lnom+DoseToLength(hi)
		// Higher dose → shorter L → faster, leakier.
		return d.Delay(lHi, 0, 30, 4) < d.Delay(lLo, 0, 30, 4) &&
			d.Leakage(lHi, 0) > d.Leakage(lLo, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: LeakFactor is linear in W for any L in the reachable range.
func TestPropertyLeakLinearInW(t *testing.T) {
	n := N90()
	f := func(lRaw, wRaw float64) bool {
		dl := math.Mod(math.Abs(lRaw), 10)
		w := n.Wmin + math.Mod(math.Abs(wRaw), n.Wmax-n.Wmin)
		l := n.Lnom + dl - 5
		a := n.LeakFactor(l, w, n.Wnom)
		b := n.LeakFactor(l, 2*w, n.Wnom)
		return math.Abs(b-2*a) < 1e-9*math.Abs(b)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLeakExpK(t *testing.T) {
	n := N65()
	want := 0.1416
	if got := n.LeakExpK(); math.Abs(got-want) > 0.002 {
		t.Errorf("N65 LeakExpK = %v, want ≈%v", got, want)
	}
	n90 := N90()
	want90 := 0.10977
	if got := n90.LeakExpK(); math.Abs(got-want90) > 0.002 {
		t.Errorf("N90 LeakExpK = %v, want ≈%v", got, want90)
	}
}
