package power

import (
	"math"
	"testing"

	"repro/internal/liberty"
	"repro/internal/tech"
)

func TestGateAndTotal(t *testing.T) {
	lib := liberty.New(tech.N65())
	inv := lib.MustMaster("INVX1")
	nand := lib.MustMaster("NAND2X2")
	masters := []*liberty.Master{nil, inv, nand, nil} // ports at 0, 3

	if Gate(nil, 0, 0) != 0 {
		t.Error("port leakage must be zero")
	}
	want := (inv.Leakage(0, 0) + nand.Leakage(0, 0)) / NWPerUW
	if got := Total(masters, nil, nil); math.Abs(got-want) > 1e-12 {
		t.Errorf("Total = %v, want %v", got, want)
	}

	per := PerGate(masters, nil, nil)
	if per[0] != 0 || per[3] != 0 {
		t.Error("ports must have zero leakage")
	}
	if math.Abs(per[1]-inv.Leakage(0, 0)) > 1e-12 {
		t.Error("PerGate mismatch")
	}
}

func TestTotalRespondsToDose(t *testing.T) {
	lib := liberty.New(tech.N65())
	masters := []*liberty.Master{lib.MustMaster("INVX1"), lib.MustMaster("NOR2X1")}
	n := len(masters)
	shorter := make([]float64, n)
	longer := make([]float64, n)
	wider := make([]float64, n)
	for i := 0; i < n; i++ {
		shorter[i] = -10
		longer[i] = 10
		wider[i] = 10
	}
	base := Total(masters, nil, nil)
	if hi := Total(masters, shorter, nil); hi <= base {
		t.Errorf("shorter gates must leak more: %v vs %v", hi, base)
	}
	if lo := Total(masters, longer, nil); lo >= base {
		t.Errorf("longer gates must leak less: %v vs %v", lo, base)
	}
	if w := Total(masters, nil, wider); w <= base {
		t.Errorf("wider gates must leak more: %v vs %v", w, base)
	}
}

func TestMixedPerGateDeltas(t *testing.T) {
	lib := liberty.New(tech.N65())
	inv := lib.MustMaster("INVX1")
	masters := []*liberty.Master{inv, inv}
	dL := []float64{-10, +10}
	per := PerGate(masters, dL, nil)
	if per[0] <= per[1] {
		t.Error("per-gate deltas must be applied individually")
	}
	sum := (per[0] + per[1]) / NWPerUW
	if got := Total(masters, dL, nil); math.Abs(got-sum) > 1e-12 {
		t.Errorf("Total %v != sum of PerGate %v", got, sum)
	}
}
