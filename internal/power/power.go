// Package power provides the leakage-power-analysis substrate standing in
// for the paper's Cadence SoC Encounter reports: per-instance leakage
// from the characterized library at dose-perturbed geometry, and chip
// roll-ups in µW.
package power

import (
	"repro/internal/liberty"
)

// NWPerUW converts nW to µW.
const NWPerUW = 1000.0

// Gate returns the leakage of one cell in nW at gate-length delta dl and
// width delta dw (nm).  Nil masters (ports) contribute zero.
func Gate(m *liberty.Master, dl, dw float64) float64 {
	if m == nil {
		return 0
	}
	return m.Leakage(dl, dw)
}

// Total returns the design's total leakage in µW.  dL and dW are per-gate
// geometry deltas in nm; nil slices mean zero everywhere.
func Total(masters []*liberty.Master, dL, dW []float64) float64 {
	total := 0.0
	for id, m := range masters {
		if m == nil {
			continue
		}
		var dl, dw float64
		if dL != nil {
			dl = dL[id]
		}
		if dW != nil {
			dw = dW[id]
		}
		total += m.Leakage(dl, dw)
	}
	return total / NWPerUW
}

// TotalV is Total with an additional per-gate threshold-voltage delta in
// V (from body bias).  A nil dVth takes the exact unbiased path, so the
// dose-only flow is bit-identical to Total.
func TotalV(masters []*liberty.Master, dL, dW, dVth []float64) float64 {
	if dVth == nil {
		return Total(masters, dL, dW)
	}
	total := 0.0
	for id, m := range masters {
		if m == nil {
			continue
		}
		var dl, dw float64
		if dL != nil {
			dl = dL[id]
		}
		if dW != nil {
			dw = dW[id]
		}
		total += m.LeakageV(dl, dw, dVth[id])
	}
	return total / NWPerUW
}

// PerGateV is PerGate with a per-gate threshold-voltage delta in V; nil
// dVth takes the exact unbiased path.
func PerGateV(masters []*liberty.Master, dL, dW, dVth []float64) []float64 {
	if dVth == nil {
		return PerGate(masters, dL, dW)
	}
	out := make([]float64, len(masters))
	for id, m := range masters {
		if m == nil {
			continue
		}
		var dl, dw float64
		if dL != nil {
			dl = dL[id]
		}
		if dW != nil {
			dw = dW[id]
		}
		out[id] = m.LeakageV(dl, dw, dVth[id])
	}
	return out
}

// PerGate returns each gate's leakage in nW (zero for ports).
func PerGate(masters []*liberty.Master, dL, dW []float64) []float64 {
	out := make([]float64, len(masters))
	for id, m := range masters {
		if m == nil {
			continue
		}
		var dl, dw float64
		if dL != nil {
			dl = dL[id]
		}
		if dW != nil {
			dw = dW[id]
		}
		out[id] = m.Leakage(dl, dw)
	}
	return out
}
