package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	x, err := Solve(a, []float64{3, -4})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != -4 {
		t.Errorf("Solve identity = %v", x)
	}
}

func TestSolveKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1  →  x = 2, y = 1
	a := [][]float64{{2, 1}, {1, -1}}
	x, err := Solve(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("Solve = %v, want [2 1]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero pivot in position (0,0) requires a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := Solve(a, []float64{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-9) > 1e-12 || math.Abs(x[1]-7) > 1e-12 {
		t.Errorf("Solve = %v, want [9 7]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected ErrSingular")
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := Solve(nil, nil); err == nil {
		t.Error("expected empty-system error")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2·x1 - 3·x2.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{2, -3, -1, 1}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-10 || math.Abs(beta[1]+3) > 1e-10 {
		t.Errorf("beta = %v, want [2 -3]", beta)
	}
	if ssr := Residual(x, y, beta); ssr > 1e-18 {
		t.Errorf("SSR = %v, want 0", ssr)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64()*4 - 2
		b := rng.Float64()*4 - 2
		xs = append(xs, []float64{a, b, 1})
		ys = append(ys, 1.5*a-0.7*b+0.3+0.01*rng.NormFloat64())
	}
	beta, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -0.7, 0.3}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 0.01 {
			t.Errorf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("expected error for no samples")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("expected error for observation mismatch")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged matrix")
	}
}

func TestPolyfitExact(t *testing.T) {
	// y = 1 - 2t + 0.5t²
	want := []float64{1, -2, 0.5}
	var ts, ys []float64
	for i := -5; i <= 5; i++ {
		tv := float64(i)
		ts = append(ts, tv)
		ys = append(ys, PolyEval(want, tv))
	}
	c, err := Polyfit(ts, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestPolyfitErrors(t *testing.T) {
	if _, err := Polyfit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Polyfit([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("expected degree error")
	}
}

func TestPolyEvalHorner(t *testing.T) {
	c := []float64{3, 0, 2} // 3 + 2t²
	if got := PolyEval(c, 2); got != 11 {
		t.Errorf("PolyEval = %v, want 11", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Errorf("PolyEval(nil) = %v, want 0", got)
	}
}

func TestFitDelayRecoversPlane(t *testing.T) {
	// Synthetic cell: Δdelay = 0.9·ΔL - 0.12·ΔW exactly.
	var dL, dW, dd []float64
	for l := -10.0; l <= 10; l += 2 {
		for w := -10.0; w <= 10; w += 5 {
			dL = append(dL, l)
			dW = append(dW, w)
			dd = append(dd, 0.9*l-0.12*w)
		}
	}
	c, err := FitDelay(dL, dW, dd, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.A-0.9) > 1e-9 || math.Abs(c.B+0.12) > 1e-9 {
		t.Errorf("FitDelay = %+v, want A=0.9 B=-0.12", c)
	}
	if c.SSR > 1e-15 {
		t.Errorf("SSR = %v, want ~0", c.SSR)
	}
}

func TestFitDelayLOnly(t *testing.T) {
	var dL, dd []float64
	for l := -10.0; l <= 10; l++ {
		dL = append(dL, l)
		dd = append(dd, 1.1*l)
	}
	c, err := FitDelayL(dL, dd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.A-1.1) > 1e-9 || c.B != 0 {
		t.Errorf("FitDelayL = %+v", c)
	}
}

func TestFitLeakRecoversQuadratic(t *testing.T) {
	// Δleak = 0.05·ΔL² - 1.3·ΔL + 0.02·ΔW exactly.
	var dL, dW, dk []float64
	for l := -10.0; l <= 10; l += 2 {
		for w := -10.0; w <= 10; w += 5 {
			dL = append(dL, l)
			dW = append(dW, w)
			dk = append(dk, 0.05*l*l-1.3*l+0.02*w)
		}
	}
	c, err := FitLeak(dL, dW, dk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Alpha-0.05) > 1e-9 || math.Abs(c.Beta+1.3) > 1e-9 || math.Abs(c.Gamma-0.02) > 1e-9 {
		t.Errorf("FitLeak = %+v", c)
	}
}

// TestFitLeakOnExponential exercises the fit the flow actually performs:
// a quadratic approximation of an exponential leakage curve.  The fitted
// curvature must be positive and the slope negative, and the quadratic
// must track the exponential within a few percent over the dose range.
func TestFitLeakOnExponential(t *testing.T) {
	k := 0.1416
	leak := func(dl float64) float64 { return 0.4965*math.Exp(-k*dl) + 0.5035 }
	var dL, dk []float64
	for l := -10.0; l <= 10; l += 0.5 {
		dL = append(dL, l)
		dk = append(dk, leak(l)-leak(0))
	}
	c, err := FitLeakL(dL, dk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Alpha <= 0 {
		t.Errorf("Alpha = %v, want > 0 (convex)", c.Alpha)
	}
	if c.Beta >= 0 {
		t.Errorf("Beta = %v, want < 0", c.Beta)
	}
	for l := -10.0; l <= 10; l += 2.5 {
		pred := c.Alpha*l*l + c.Beta*l
		truth := leak(l) - leak(0)
		if math.Abs(pred-truth) > 0.15 {
			t.Errorf("quadratic approx off at ΔL=%v: pred %v vs %v", l, pred, truth)
		}
	}
}

func TestFitSampleMismatches(t *testing.T) {
	if _, err := FitDelay([]float64{1}, []float64{1, 2}, []float64{1}, 0); err == nil {
		t.Error("FitDelay: expected mismatch error")
	}
	if _, err := FitDelayL([]float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("FitDelayL: expected mismatch error")
	}
	if _, err := FitLeak([]float64{1}, []float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("FitLeak: expected mismatch error")
	}
	if _, err := FitLeakL([]float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("FitLeakL: expected mismatch error")
	}
}

// Property: Solve(A, A·x) recovers x for random well-conditioned systems.
func TestPropertySolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + r.Intn(6)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			a[i][i] += float64(n) + 1 // diagonal dominance → well-conditioned
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: least-squares residual is never larger than the residual of
// the zero vector (β = 0), i.e. fitting can only help.
func TestPropertyLeastSquaresOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 8+r.Intn(10), 1+r.Intn(4)
		x := make([][]float64, m)
		y := make([]float64, m)
		for i := range x {
			x[i] = make([]float64, n)
			for j := range x[i] {
				x[i][j] = r.NormFloat64()
			}
			y[i] = r.NormFloat64()
		}
		beta, err := LeastSquares(x, y)
		if err != nil {
			return true // singular random draw; skip
		}
		zero := make([]float64, n)
		return Residual(x, y, beta) <= Residual(x, y, zero)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
