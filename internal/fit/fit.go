// Package fit provides the least-squares curve-fitting substrate used to
// calibrate the optimizer's delay and leakage models from characterized
// cell-library tables, mirroring the paper's "Liberty processing and curve
// fitting tool" (Section II-C).
//
// Three fits are needed by the flow:
//
//   - a linear fit of cell delay against gate-length and gate-width change
//     (coefficients Ap, Bp in the paper),
//   - a quadratic fit of cell leakage against gate-length change plus a
//     linear gate-width term (coefficients αp, βp, γp, Eq. 2),
//   - general polynomial fits used by the dose-recipe decomposition.
//
// All solvers are dense normal-equation or QR-based ordinary least squares;
// problem sizes here are tiny (tens of samples, ≤9 unknowns).
package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the design matrix is rank-deficient.
var ErrSingular = errors.New("fit: singular system")

// Solve solves the dense linear system A·x = b by Gaussian elimination
// with partial pivoting.  A is row-major with dimensions n×n and is
// overwritten.  It returns ErrSingular when a pivot underflows.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("fit: bad system dimensions %d×? vs %d", n, len(b))
	}
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-14 {
			return nil, ErrSingular
		}
		a[col], a[p] = a[p], a[col]
		x[col], x[p] = x[p], x[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// LeastSquares solves min‖X·β − y‖² for β given the design matrix X
// (rows = samples, columns = features) via the normal equations XᵀXβ=Xᵀy.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	m := len(x)
	if m == 0 {
		return nil, errors.New("fit: no samples")
	}
	n := len(x[0])
	if m < n {
		return nil, fmt.Errorf("fit: underdetermined system: %d samples, %d unknowns", m, n)
	}
	if len(y) != m {
		return nil, fmt.Errorf("fit: %d samples but %d observations", m, len(y))
	}
	xtx := make([][]float64, n)
	for i := range xtx {
		xtx[i] = make([]float64, n)
	}
	xty := make([]float64, n)
	for s := 0; s < m; s++ {
		row := x[s]
		if len(row) != n {
			return nil, fmt.Errorf("fit: ragged design matrix at row %d", s)
		}
		for i := 0; i < n; i++ {
			xty[i] += row[i] * y[s]
			for j := i; j < n; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return Solve(xtx, xty)
}

// Residual returns the sum of squared residuals ‖X·β − y‖² — the quantity
// the paper reports when comparing single-variable against two-variable
// fits (0.0005 vs 0.0101, Section V).
func Residual(x [][]float64, y, beta []float64) float64 {
	var ssr float64
	for s := range x {
		pred := 0.0
		for j, b := range beta {
			pred += x[s][j] * b
		}
		r := pred - y[s]
		ssr += r * r
	}
	return ssr
}

// Polyfit fits y ≈ Σ_{k=0..degree} c_k·t^k and returns the coefficients
// c_0..c_degree.
func Polyfit(t, y []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, errors.New("fit: negative degree")
	}
	if len(t) != len(y) {
		return nil, fmt.Errorf("fit: %d abscissae but %d ordinates", len(t), len(y))
	}
	x := make([][]float64, len(t))
	for s, tv := range t {
		row := make([]float64, degree+1)
		p := 1.0
		for k := 0; k <= degree; k++ {
			row[k] = p
			p *= tv
		}
		x[s] = row
	}
	return LeastSquares(x, y)
}

// PolyEval evaluates a polynomial with coefficients c (c[0] constant term)
// at t using Horner's rule.
func PolyEval(c []float64, t float64) float64 {
	v := 0.0
	for k := len(c) - 1; k >= 0; k-- {
		v = v*t + c[k]
	}
	return v
}

// DelayCoeffs holds the fitted linear delay model of one cell arc:
//
//	Δdelay ≈ A·ΔL + B·ΔW    (ps, with ΔL, ΔW in nm)
//
// A is positive (delay grows with gate length); B is negative (delay
// shrinks as the transistor widens).  These are the paper's Ap and Bp.
type DelayCoeffs struct {
	A, B float64
	// SSR is the sum of squared residuals of the fit, normalized by the
	// squared nominal delay so values are comparable across cells.
	SSR float64
}

// FitDelay fits DelayCoeffs from samples of (ΔL, ΔW, Δdelay).  nominal is
// the unperturbed delay used to normalize SSR; pass 0 to skip
// normalization.
func FitDelay(dL, dW, dDelay []float64, nominal float64) (DelayCoeffs, error) {
	if len(dL) != len(dW) || len(dL) != len(dDelay) {
		return DelayCoeffs{}, errors.New("fit: delay sample length mismatch")
	}
	x := make([][]float64, len(dL))
	for i := range dL {
		x[i] = []float64{dL[i], dW[i]}
	}
	beta, err := LeastSquares(x, dDelay)
	if err != nil {
		return DelayCoeffs{}, err
	}
	ssr := Residual(x, dDelay, beta)
	if nominal != 0 {
		ssr /= nominal * nominal
	}
	return DelayCoeffs{A: beta[0], B: beta[1], SSR: ssr}, nil
}

// FitDelayL fits only the gate-length coefficient A from (ΔL, Δdelay)
// samples, for poly-layer-only optimization.
func FitDelayL(dL, dDelay []float64, nominal float64) (DelayCoeffs, error) {
	if len(dL) != len(dDelay) {
		return DelayCoeffs{}, errors.New("fit: delay sample length mismatch")
	}
	x := make([][]float64, len(dL))
	for i := range dL {
		x[i] = []float64{dL[i]}
	}
	beta, err := LeastSquares(x, dDelay)
	if err != nil {
		return DelayCoeffs{}, err
	}
	ssr := Residual(x, dDelay, beta)
	if nominal != 0 {
		ssr /= nominal * nominal
	}
	return DelayCoeffs{A: beta[0], SSR: ssr}, nil
}

// LeakCoeffs holds the fitted leakage model of one cell (Eq. 2):
//
//	Δleakage ≈ α·(ΔL)² + β·ΔL + γ·ΔW    (nW, with ΔL, ΔW in nm)
//
// α is positive (the exponential is convex), β negative (longer gate
// leaks less), γ positive (wider device leaks more).  These are the
// paper's αp, βp, γp.
type LeakCoeffs struct {
	Alpha, Beta, Gamma float64
	SSR                float64
}

// FitLeak fits LeakCoeffs from samples of (ΔL, ΔW, Δleakage).
func FitLeak(dL, dW, dLeak []float64, nominal float64) (LeakCoeffs, error) {
	if len(dL) != len(dW) || len(dL) != len(dLeak) {
		return LeakCoeffs{}, errors.New("fit: leakage sample length mismatch")
	}
	x := make([][]float64, len(dL))
	for i := range dL {
		x[i] = []float64{dL[i] * dL[i], dL[i], dW[i]}
	}
	beta, err := LeastSquares(x, dLeak)
	if err != nil {
		return LeakCoeffs{}, err
	}
	ssr := Residual(x, dLeak, beta)
	if nominal != 0 {
		ssr /= nominal * nominal
	}
	return LeakCoeffs{Alpha: beta[0], Beta: beta[1], Gamma: beta[2], SSR: ssr}, nil
}

// FitLeakL fits only the gate-length terms (α, β) from (ΔL, Δleakage)
// samples, for poly-layer-only optimization.
func FitLeakL(dL, dLeak []float64, nominal float64) (LeakCoeffs, error) {
	if len(dL) != len(dLeak) {
		return LeakCoeffs{}, errors.New("fit: leakage sample length mismatch")
	}
	x := make([][]float64, len(dL))
	for i := range dL {
		x[i] = []float64{dL[i] * dL[i], dL[i]}
	}
	beta, err := LeastSquares(x, dLeak)
	if err != nil {
		return LeakCoeffs{}, err
	}
	ssr := Residual(x, dLeak, beta)
	if nominal != 0 {
		ssr /= nominal * nominal
	}
	return LeakCoeffs{Alpha: beta[0], Beta: beta[1], SSR: ssr}, nil
}
