// Load soak for the job service (ROADMAP "serve load test"): thousands
// of mixed small specs pushed through the HTTP surface by concurrent
// clients, with duplicate specs exercising in-flight dedupe, mid-queue
// cancellations, and admission-control overflow — then a full
// accounting audit (no job lost, cache counters consistent) and a
// goroutine-leak check after shutdown.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/gen"
)

// soakSpecs is the mixed small-spec family the soak cycles through:
// four tiny distinct designs × {qp, qcp} × two smoothness bounds.
// Tiny inline presets keep an individual solve in the milliseconds so
// thousands of submissions stay affordable; distinctness comes from the
// seed, so every design/golden/model/compile cache key is exercised.
func soakSpecs() []api.JobSpec {
	var specs []api.JobSpec
	for d := 0; d < 4; d++ {
		// 0.02 is the smallest scale whose placement still fits the die.
		p := gen.AES65().Scaled(0.02)
		p.Name = fmt.Sprintf("soak-%d", d)
		p.Seed = int64(700001 + d)
		for _, mode := range []string{api.ModeQP, api.ModeQCP} {
			for _, delta := range []float64{2, 2.5} {
				pp := p
				specs = append(specs, api.JobSpec{Preset: &pp, Mode: mode, Delta: delta})
			}
		}
	}
	return specs
}

// repoGoroutines returns the stacks of goroutines still executing this
// module's code (the test's own goroutine excluded).  The stdlib's
// HTTP keep-alive machinery is deliberately out of scope: the leak
// contract covers the server and the solver pipeline.
func repoGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for i, s := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the calling goroutine
		}
		if strings.Contains(s, "repro/internal") {
			leaked = append(leaked, s)
		}
	}
	return leaked
}

// waitNoRepoGoroutines polls until every pipeline goroutine has exited.
func waitNoRepoGoroutines(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		g := repoGoroutines()
		if len(g) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutine(s) leaked after shutdown:\n%s", len(g), strings.Join(g, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeQueueBound pins the admission contract the soak relies on:
// 429 if and only if the queue is above MaxQueue.  With the single
// running slot blocked, exactly MaxQueue distinct specs queue up, the
// next is rejected, and a mid-queue DELETE immediately opens the slot
// for a fresh submission.
func TestServeQueueBound(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{MaxRunning: 1, MaxQueue: 2})
	release := holdKey(srv, "design/"+testSpec().DesignKey())
	defer release()

	submit := func(delta float64) (int, JobView) {
		spec := testSpec()
		spec.Delta = delta
		resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
		var view JobView
		json.Unmarshal(body, &view)
		return resp.StatusCode, view
	}

	// Runner occupies the slot; it blocks inside the held design build.
	code, runner := submit(2)
	if code != http.StatusAccepted {
		t.Fatalf("runner: %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for runner.State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("runner stuck in %s", runner.State)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+runner.ID, &runner)
	}

	// Queue to capacity: both distinct specs are accepted.
	code, queuedA := submit(2.25)
	if code != http.StatusAccepted {
		t.Fatalf("fill 1: %d", code)
	}
	if code, _ = submit(2.5); code != http.StatusAccepted {
		t.Fatalf("fill 2: %d", code)
	}
	// One past capacity: rejected.
	if code, _ = submit(2.75); code != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d, want 429", code)
	}
	// A mid-queue cancel frees capacity for the same spec immediately.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queuedA.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if code, _ = submit(2.75); code != http.StatusAccepted {
		t.Fatalf("post-cancel submit: %d, want 202", code)
	}
}

// TestServeLoadSoak drives the server with thousands of mixed small
// specs from concurrent clients — duplicates for dedupe, invalid specs
// for the 400 path, mid-queue cancels — and audits the books at the
// end: every accepted job reaches a terminal state (none lost, none
// failed), rejects equal the client-observed 429s and 400s, and the
// artifact cache's demand- and supply-side counters agree
// (hits+misses == builds+reuses).  Shutdown must leave zero pipeline
// goroutines behind.
//
// Opt-in: skipped under -short (several seconds of real solves).
func TestServeLoadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("load soak is opt-in; run without -short")
	}
	srv, ts, metrics := newTestServer(t, Config{MaxRunning: 2, MaxQueue: 8, KeepJobs: 1 << 14})

	const clients = 6
	const perClient = 400 // 2400 submissions
	specs := soakSpecs()

	// Pressure phase: hold every design cache key so the first wave of
	// jobs blocks in the artifact build.  With 16 distinct specs against
	// 2 running slots + 8 queue slots the clients are guaranteed to see
	// in-flight dedupe AND queue-full 429s, and the canceler finds
	// queued jobs to kill — the paths a free-running drain (each solve
	// ~5 ms) would never enter.
	var releases []func()
	held := map[string]bool{}
	for _, spec := range specs {
		if key := "design/" + spec.DesignKey(); !held[key] {
			held[key] = true
			releases = append(releases, holdKey(srv, key))
		}
	}

	var (
		mu       sync.Mutex
		accepted = map[string]bool{}
		resp202  int64
		resp429  int64
		resp400  int64
		stop     = make(chan struct{})
	)

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Every 97th submission is malformed: unknown modes must
				// 400 without consuming queue capacity.
				if (cl*perClient+i)%97 == 13 {
					b, _ := json.Marshal(api.JobSpec{Design: "AES-65", Mode: "qxp"})
					resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(b)))
					if err != nil {
						t.Errorf("client %d: %v", cl, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusBadRequest {
						t.Errorf("invalid spec: %d, want 400", resp.StatusCode)
					}
					atomic.AddInt64(&resp400, 1)
					continue
				}
				spec := specs[(cl+i)%len(specs)]
				b, _ := json.Marshal(spec)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(b)))
				if err != nil {
					t.Errorf("client %d: %v", cl, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var view JobView
					if err := json.Unmarshal(body, &view); err != nil || view.ID == "" {
						t.Errorf("client %d: bad 202 body %q: %v", cl, body, err)
						return
					}
					atomic.AddInt64(&resp202, 1)
					mu.Lock()
					accepted[view.ID] = true
					mu.Unlock()
				case http.StatusTooManyRequests:
					atomic.AddInt64(&resp429, 1)
					time.Sleep(2 * time.Millisecond) // back off, keep going
				default:
					t.Errorf("client %d: unexpected status %d: %s", cl, resp.StatusCode, body)
					return
				}
			}
		}(cl)
	}

	// Canceler: every few milliseconds, DELETE one currently-queued job.
	// It runs until the clients are done, so it gets its own done
	// channel — putting it in the clients' WaitGroup would deadlock
	// (stop closes only after that WaitGroup drains).
	var cancelsIssued int64
	cancelerDone := make(chan struct{})
	go func() {
		defer close(cancelerDone)
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			var list []JobView
			getJSON(t, ts.URL+"/v1/jobs", &list)
			for i := len(list) - 1; i >= 0; i-- {
				if list[i].State == StateQueued {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+list[i].ID, nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						atomic.AddInt64(&cancelsIssued, 1)
					}
					break
				}
			}
		}
	}()

	// Let the clients hammer the blocked server, then open the gates
	// and let the backlog drain at full speed.
	time.Sleep(500 * time.Millisecond)
	for _, release := range releases {
		release()
	}

	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(5 * time.Minute):
		t.Fatal("soak did not finish in 5 minutes")
	}
	close(stop)
	<-cancelerDone

	// Drain: every accepted job must reach a terminal state.
	mu.Lock()
	ids := make([]string, 0, len(accepted))
	for id := range accepted {
		ids = append(ids, id)
	}
	mu.Unlock()
	for _, id := range ids {
		var view JobView
		getJSON(t, ts.URL+"/v1/jobs/"+id+"?wait=120s", &view)
		if !view.State.Terminal() {
			t.Fatalf("job %s stuck in %s after drain", id, view.State)
		}
		if view.State == StateFailed {
			t.Fatalf("job %s failed: %s", id, view.Error)
		}
	}

	c := metrics.Snapshot().Counters
	t.Logf("soak: %d accepted (%d unique), %d deduped, %d x429, %d x400, %d cancels issued; jobs done/canceled/failed = %d/%d/%d; cache h/m/b/r = %d/%d/%d/%d (evictions %d)",
		resp202, len(ids), c["serve/jobs_deduped"], resp429, resp400, cancelsIssued,
		c["serve/jobs_done"], c["serve/jobs_canceled"], c["serve/jobs_failed"],
		c["serve/cache_hits"], c["serve/cache_misses"], c["serve/cache_builds"], c["serve/cache_reuses"],
		c["serve/cache_evictions"])

	// No job lost: unique accepted ids == submissions counted by the
	// server == terminal outcomes.
	if got, want := c["serve/jobs_submitted"], int64(len(ids)); got != want {
		t.Errorf("serve/jobs_submitted = %d, want %d unique accepted jobs", got, want)
	}
	terminal := c["serve/jobs_done"] + c["serve/jobs_canceled"] + c["serve/jobs_failed"]
	if terminal != int64(len(ids)) {
		t.Errorf("terminal outcomes %d != accepted jobs %d (job lost)", terminal, len(ids))
	}
	if c["serve/jobs_failed"] != 0 {
		t.Errorf("%d jobs failed during soak", c["serve/jobs_failed"])
	}
	// Dedupe accounting: every extra 202 beyond the unique ids was a
	// dedupe hit, and the pressure phase guarantees there were some.
	if got, want := c["serve/jobs_deduped"], resp202-int64(len(ids)); got != want {
		t.Errorf("serve/jobs_deduped = %d, want %d", got, want)
	}
	if c["serve/jobs_deduped"] == 0 {
		t.Error("pressure phase produced no in-flight dedupes")
	}
	// Rejections: exactly the client-observed 429s and 400s, nothing
	// else — 429s happen only above MaxQueue, 400s only on invalid
	// specs, and neither consumes an id.  The held queue must have
	// overflowed at least once (16 distinct specs vs 10 slots).
	if got, want := c["serve/jobs_rejected"], resp429+resp400; got != want {
		t.Errorf("serve/jobs_rejected = %d, want %d (%d x429 + %d x400)", got, want, resp429, resp400)
	}
	if resp429 == 0 {
		t.Error("pressure phase produced no queue-full 429s")
	}
	if cancelsIssued == 0 {
		t.Error("canceler never found a queued job to DELETE")
	} else if c["serve/jobs_canceled"] == 0 {
		t.Errorf("issued %d mid-queue cancels but no job was recorded canceled", cancelsIssued)
	}
	// Cache accounting: the demand side (hits/misses) and the supply
	// side (builds/reuses) must agree request for request.
	if h, m, b, r := c["serve/cache_hits"], c["serve/cache_misses"], c["serve/cache_builds"], c["serve/cache_reuses"]; h+m != b+r {
		t.Errorf("cache counters inconsistent: hits %d + misses %d != builds %d + reuses %d", h, m, b, r)
	}

	// Clean shutdown: close the transport and the server, then require
	// every pipeline goroutine gone.
	ts.Close()
	srv.Close()
	waitNoRepoGoroutines(t, 30*time.Second)
}
