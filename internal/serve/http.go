// HTTP transport over the job manager.  All bodies are JSON; requests
// and results use the dmopt-job/v1 schema from internal/api, metrics
// use the dmopt-bench/v1 schema from internal/obs — the same contracts
// the CLIs speak, so a job submitted over HTTP returns numbers
// bit-identical to cmd/dmopt run with the same spec.
//
//	POST   /v1/jobs        submit, returns 202 + job view
//	GET    /v1/jobs        list jobs in submission order
//	GET    /v1/jobs/{id}   poll one job; ?wait=5s long-polls completion
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	POST   /v1/solve       synchronous: runs the job inline, canceled
//	                       when the client disconnects
//	GET    /metrics        dmopt-bench/v1 report of the service counters
//	GET    /healthz        liveness
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// JobView is the wire representation of a job's current state.
type JobView struct {
	ID        string         `json:"id"`
	State     State          `json:"state"`
	Spec      api.JobSpec    `json:"spec"`
	Error     string         `json:"error,omitempty"`
	Result    *api.JobResult `json:"result,omitempty"`
	Submitted time.Time      `json:"submitted"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
}

// View snapshots a job under the server mutex.
func (s *Server) View(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Error:     j.err,
		Result:    j.result,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decodeSpec(w http.ResponseWriter, r *http.Request) (api.JobSpec, bool) {
	var spec api.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return spec, false
	}
	return spec, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeErr(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, s.View(j))
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = s.View(j)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.Wait(r.Context(), j, d)
	}
	writeJSON(w, http.StatusOK, s.View(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.Wait(r.Context(), j, 0)
	writeJSON(w, http.StatusOK, s.View(j))
}

// handleSolve runs the job synchronously inside the request, sharing
// the artifact cache and the running-slot semaphore with async jobs.
// The job context is the request context: a client disconnect cancels
// the solve at the next cancellation point.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	spec = s.clampWorkers(spec.Normalized())
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// The job context follows the request (client disconnect cancels
	// the solve) and additionally the server's base context, so
	// shutdown aborts in-flight synchronous solves too.
	ctx, cancel := context.WithCancel(obs.With(r.Context(), s.rec))
	defer cancel()
	defer context.AfterFunc(s.baseCtx, cancel)()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		writeErr(w, http.StatusServiceUnavailable, ctx.Err())
		return
	}
	s.rec.Add("serve/jobs_submitted", 1)
	res, err := s.execute(ctx, spec)
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.rec.Add("serve/jobs_canceled", 1)
		writeErr(w, statusClientClosedRequest, err)
	case err != nil:
		s.rec.Add("serve/jobs_failed", 1)
		writeErr(w, http.StatusInternalServerError, err)
	default:
		s.rec.Add("serve/jobs_done", 1)
		writeJSON(w, http.StatusOK, res)
	}
}

// statusClientClosedRequest is the de-facto code for "client went away"
// (nginx's 499); net/http won't deliver it anywhere, but it keeps logs
// honest when the write still succeeds.
const statusClientClosedRequest = 499

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.rec.Report("dmopt-serve", 0, 0, s.cfg.JobWorkers, s.Uptime())
	writeJSON(w, http.StatusOK, rep)
}
