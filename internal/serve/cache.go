// Byte-budget LRU for the staged artifacts (designs, goldens, models,
// compiled formulations).  The expt harness memoizes these unboundedly
// — fine for one table run, fatal for a daemon fielding millions of
// distinct requests — so the server wraps the same per-key-mutex
// build-once discipline in an eviction policy: every value carries an
// approximate byte cost, a hit moves its key to the front, and inserts
// evict from the back until the cache fits its budget again.
//
// The memo contract is preserved: concurrent callers of one key share a
// single build, and a build aborted by context cancellation is never
// cached, so one canceled job cannot poison a key.  Values are
// immutable once built (the compile pipeline's ownership rule), which
// is what makes eviction safe: an evicted value stays valid for every
// job still holding it and is reclaimed by the GC when the last one
// finishes.
package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
)

// Cache is the byte-budget LRU.  The zero value is not usable;
// construct with NewCache.
type Cache struct {
	rec    *obs.Recorder // server-lifetime metrics; may be nil
	budget int64

	mu      sync.Mutex
	used    int64
	entries map[string]*centry
	ll      *list.List // front = most recently used
}

// centry is one cache slot.  state is guarded by the entry mutex; list
// membership by the cache mutex.
type centry struct {
	key   string
	elem  *list.Element // nil until built
	bytes int64

	mu    sync.Mutex
	built bool
	val   any
	err   error
}

// NewCache returns a cache that evicts past budget bytes of live
// artifact cost; budget <= 0 disables eviction (unbounded, the expt
// harness behaviour).
func NewCache(rec *obs.Recorder, budget int64) *Cache {
	return &Cache{rec: rec, budget: budget, entries: map[string]*centry{}, ll: list.New()}
}

// GetOrBuild returns the cached value for key, building it at most once
// per residency.  The bool reports a hit (served from memory).  build
// returns the value and its approximate byte cost; a build error that
// wraps context cancellation is not cached, any other outcome —
// including a deterministic error — is.
func (c *Cache) GetOrBuild(ctx context.Context, key string, build func(ctx context.Context) (any, int64, error)) (any, bool, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &centry{key: key}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.built {
		// Demand side: a hit.  Supply side: the value is reused — built
		// earlier in this residency, possibly by a caller this one was
		// just queued behind.  Every served request ticks exactly one
		// counter of each pair, so hits+misses == builds+reuses is an
		// accounting invariant the load soak asserts.
		c.touch(e)
		c.rec.Add("serve/cache_hits", 1)
		c.rec.Add("serve/cache_reuses", 1)
		return e.val, true, e.err
	}
	val, bytes, err := build(ctx)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Aborted builds are not cached and not counted: the request was
		// not served, so neither pair advances.
		return val, false, err
	}
	e.built, e.val, e.err, e.bytes = true, val, err, bytes
	c.insert(e)
	c.rec.Add("serve/cache_misses", 1)
	c.rec.Add("serve/cache_builds", 1)
	return val, false, err
}

// touch moves a built entry to the LRU front.
func (c *Cache) touch(e *centry) {
	c.mu.Lock()
	if e.elem != nil {
		c.ll.MoveToFront(e.elem)
	}
	c.mu.Unlock()
}

// insert adds a freshly built entry and evicts from the back until the
// cache fits its budget.  The newest entry itself is never evicted, so
// a single artifact larger than the whole budget still serves its job
// (and leaves at the next insert).
func (c *Cache) insert(e *centry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The key may have been re-created after an eviction raced this
	// build; only track the entry actually registered under the key.
	if c.entries[e.key] != e {
		return
	}
	e.elem = c.ll.PushFront(e)
	c.used += e.bytes
	for c.budget > 0 && c.used > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		victim := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.entries, victim.key)
		c.used -= victim.bytes
		c.rec.Add("serve/cache_evictions", 1)
	}
	c.rec.Set("serve/cache_bytes", float64(c.used))
	c.rec.Set("serve/cache_entries", float64(c.ll.Len()))
}

// Len reports the number of resident (built) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// UsedBytes reports the resident artifact cost.
func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
