package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestCacheBuildOnce: concurrent callers of one key share a single
// build and all observe the same value.
func TestCacheBuildOnce(t *testing.T) {
	c := NewCache(obs.New(), 0)
	var builds atomic.Int64
	var wg sync.WaitGroup
	vals := make([]any, 16)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrBuild(context.Background(), "k", func(context.Context) (any, int64, error) {
				builds.Add(1)
				return "built", 8, nil
			})
			if err != nil {
				t.Errorf("GetOrBuild: %v", err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for i, v := range vals {
		if v != "built" {
			t.Fatalf("caller %d saw %v", i, v)
		}
	}
}

// TestCacheEviction: inserts past the byte budget evict from the LRU
// back; touching a key protects it.
func TestCacheEviction(t *testing.T) {
	rec := obs.New()
	c := NewCache(rec, 100)
	build := func(key string, bytes int64) {
		t.Helper()
		if _, _, err := c.GetOrBuild(context.Background(), key, func(context.Context) (any, int64, error) {
			return key, bytes, nil
		}); err != nil {
			t.Fatalf("build %s: %v", key, err)
		}
	}
	build("a", 40)
	build("b", 40)
	if got := c.UsedBytes(); got != 80 {
		t.Fatalf("used = %d, want 80", got)
	}
	// Touch a so b is the LRU victim.
	if _, hit, _ := c.GetOrBuild(context.Background(), "a", nil); !hit {
		t.Fatalf("expected hit on a")
	}
	build("c", 40) // 120 > 100: evicts b
	if got := c.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if got := c.UsedBytes(); got != 80 {
		t.Fatalf("used = %d after eviction, want 80", got)
	}
	var rebuilt bool
	c.GetOrBuild(context.Background(), "b", func(context.Context) (any, int64, error) {
		rebuilt = true
		return "b", 10, nil
	})
	if !rebuilt {
		t.Fatalf("b survived eviction")
	}
	if _, hit, _ := c.GetOrBuild(context.Background(), "a", nil); !hit {
		t.Fatalf("a was evicted despite recent touch")
	}
	if n := rec.Snapshot().Counters["serve/cache_evictions"]; n < 1 {
		t.Fatalf("eviction counter = %d, want >= 1", n)
	}
}

// TestCacheOversizeSingleton: one artifact larger than the whole budget
// still serves and is the sole resident.
func TestCacheOversizeSingleton(t *testing.T) {
	c := NewCache(obs.New(), 10)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("big-%d", i)
		v, _, err := c.GetOrBuild(context.Background(), key, func(context.Context) (any, int64, error) {
			return key, 1000, nil
		})
		if err != nil || v != key {
			t.Fatalf("build %s: v=%v err=%v", key, v, err)
		}
		if got := c.Len(); got != 1 {
			t.Fatalf("len = %d after insert %d, want 1", got, i)
		}
	}
}

// TestCacheCanceledBuildNotCached: a build aborted by cancellation must
// not poison the key for the next caller.
func TestCacheCanceledBuildNotCached(t *testing.T) {
	c := NewCache(obs.New(), 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrBuild(ctx, "k", func(ctx context.Context) (any, int64, error) {
		return nil, 0, fmt.Errorf("stage aborted: %w", ctx.Err())
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	v, hit, err := c.GetOrBuild(context.Background(), "k", func(context.Context) (any, int64, error) {
		return "good", 8, nil
	})
	if err != nil || hit || v != "good" {
		t.Fatalf("retry after cancel: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestCacheDeterministicErrorCached: a non-canceled build error is a
// result and is served from cache like any value.
func TestCacheDeterministicErrorCached(t *testing.T) {
	c := NewCache(obs.New(), 0)
	boom := errors.New("bad spec")
	var builds int
	for i := 0; i < 2; i++ {
		_, _, err := c.GetOrBuild(context.Background(), "k", func(context.Context) (any, int64, error) {
			builds++
			return nil, 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	}
	if builds != 1 {
		t.Fatalf("deterministic error rebuilt %d times, want 1", builds)
	}
}
