package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/gen"
	"repro/internal/obs"
)

func testSpec() api.JobSpec {
	return api.JobSpec{Design: "AES-65", Scale: 0.1}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Recorder) {
	t.Helper()
	rec := obs.New()
	srv := New(cfg, rec)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, rec
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, b, err)
		}
	}
	return resp
}

// resultFingerprint strips the wall-time field, the only part of a
// JobResult allowed to differ between two runs of the same spec.
func resultFingerprint(t *testing.T, r *api.JobResult) string {
	t.Helper()
	c := *r
	c.RuntimeNS = 0
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// TestHTTPJobLifecycle: submit over HTTP, long-poll to completion, and
// require the result document to be bit-identical to the direct
// in-process executor (the cmd/dmopt path) — every float crosses JSON
// unrounded, so string equality of the fingerprints is bit equality.
func TestHTTPJobLifecycle(t *testing.T) {
	_, ts, rec := newTestServer(t, Config{MaxRunning: 1})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", testSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("submit body %q: %v", body, err)
	}
	if view.ID == "" || view.State.Terminal() {
		t.Fatalf("fresh job view: %+v", view)
	}

	getJSON(t, ts.URL+"/v1/jobs/"+view.ID+"?wait=120s", &view)
	if view.State != StateDone {
		t.Fatalf("job ended %s (%s)", view.State, view.Error)
	}
	if view.Result == nil || view.Started == nil || view.Finished == nil {
		t.Fatalf("done view incomplete: %+v", view)
	}

	ref, _, err := api.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if got, want := resultFingerprint(t, view.Result), resultFingerprint(t, ref); got != want {
		t.Fatalf("HTTP result differs from direct path:\n  http   %s\n  direct %s", got, want)
	}

	// A repeated submission is served from the artifact caches: the
	// compile memo hit is observable at /metrics, and the numbers stay
	// bit-identical.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", testSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var again JobView
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatalf("resubmit body: %v", err)
	}
	getJSON(t, ts.URL+"/v1/jobs/"+again.ID+"?wait=120s", &again)
	if again.State != StateDone {
		t.Fatalf("cached job ended %s (%s)", again.State, again.Error)
	}
	if got, want := resultFingerprint(t, again.Result), resultFingerprint(t, ref); got != want {
		t.Fatalf("cached result differs:\n  cached %s\n  direct %s", got, want)
	}
	if hits := rec.Snapshot().Counters["core/compile_hits"]; hits < 1 {
		t.Fatalf("compile_hits = %d after resubmission, want >= 1", hits)
	}

	var rep obs.Report
	getJSON(t, ts.URL+"/metrics", &rep)
	if rep.Schema != obs.Schema {
		t.Fatalf("metrics schema %q, want %q", rep.Schema, obs.Schema)
	}
	if rep.Counters["core/compile_hits"] < 1 || rep.Counters["serve/jobs_done"] != 2 {
		t.Fatalf("metrics counters: %v", rep.Counters)
	}

	var list []JobView
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list))
	}
}

// TestHTTPSyncSolve: the synchronous endpoint returns the same
// bit-identical document without a job handle.
func TestHTTPSyncSolve(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxRunning: 1})
	resp, body := postJSON(t, ts.URL+"/v1/solve", testSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	var res api.JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("solve body: %v", err)
	}
	ref, _, err := api.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if got, want := resultFingerprint(t, &res), resultFingerprint(t, ref); got != want {
		t.Fatalf("sync result differs:\n  http   %s\n  direct %s", got, want)
	}
}

// TestHTTPErrors: unknown jobs 404, malformed and invalid specs 400.
func TestHTTPErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxRunning: 1})
	if resp := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", api.JobSpec{Design: "DES-65"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"desing":`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	var ok map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &ok); resp.StatusCode != http.StatusOK || ok["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, ok)
	}
}

// TestDosePlPrivatePlacement: dosePl jobs mutate cell positions, so
// the server runs them on a private placement copy
// (api.Artifacts.WithPrivatePlacement).  The cached design — which
// concurrent jobs on the same design read through golden/compile
// rebuilds and solve-stage signoff — must stay bit-identical across a
// dosePl job, and the job's numbers must still match the direct CLI
// path (which mutates its own fresh design in place).
func TestDosePlPrivatePlacement(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{MaxRunning: 1})
	spec := testSpec()
	spec.DosePl = true

	resp, body := postJSON(t, ts.URL+"/v1/solve", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dosePl solve: %d %s", resp.StatusCode, body)
	}
	var res api.JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("solve body: %v", err)
	}
	if res.DosePl == nil {
		t.Fatal("dosePl job returned no placement summary")
	}

	// The cached design must still hold the original (pre-dosePl)
	// coordinates: rebuild them from a fresh generation and compare.
	dv, hit, err := srv.cache.GetOrBuild(context.Background(), "design/"+spec.DesignKey(),
		func(context.Context) (any, int64, error) {
			return nil, 0, fmt.Errorf("cached design missing")
		})
	if err != nil || !hit {
		t.Fatalf("cached design lookup: hit=%v err=%v", hit, err)
	}
	cached := dv.(*gen.Design)
	p, err := spec.GenPreset()
	if err != nil {
		t.Fatalf("preset: %v", err)
	}
	fresh, err := gen.GenerateCtx(context.Background(), p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for i := range fresh.Pl.X {
		if math.Float64bits(cached.Pl.X[i]) != math.Float64bits(fresh.Pl.X[i]) ||
			math.Float64bits(cached.Pl.Y[i]) != math.Float64bits(fresh.Pl.Y[i]) ||
			math.Float64bits(cached.Pl.Width[i]) != math.Float64bits(fresh.Pl.Width[i]) {
			t.Fatalf("cached placement mutated at gate %d: (%v,%v,%v) != (%v,%v,%v)",
				i, cached.Pl.X[i], cached.Pl.Y[i], cached.Pl.Width[i],
				fresh.Pl.X[i], fresh.Pl.Y[i], fresh.Pl.Width[i])
		}
	}

	ref, _, err := api.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("direct dosePl run: %v", err)
	}
	if got, want := resultFingerprint(t, &res), resultFingerprint(t, ref); got != want {
		t.Fatalf("dosePl result differs from direct path:\n  http   %s\n  direct %s", got, want)
	}
}

// TestDosePlConcurrentCompile reproduces the aliasing hazard the
// private placement copy removes: with two running slots, a dosePl job
// overlaps a same-design job whose compile stage rebuilds (distinct
// CompileOptions key) and therefore reads the cached placement.  Both
// must succeed, and under -race the overlap must be write-free.
func TestDosePlConcurrentCompile(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxRunning: 2})
	dosePl := testSpec()
	dosePl.DosePl = true
	rebuild := testSpec()
	rebuild.Delta = 3 // distinct compile key → rebuild reads the shared placement

	var wg sync.WaitGroup
	for _, spec := range []api.JobSpec{dosePl, rebuild} {
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Errorf("POST /v1/solve: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("solve: %d %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
}

// holdKey occupies a cache key so any job needing it blocks inside the
// artifact stage until release is closed; the held build then reports
// a cancellation-wrapped error, which the cache must not retain, so
// the blocked job rebuilds under its own (possibly canceled) context.
func holdKey(srv *Server, key string) (release func()) {
	ch := make(chan struct{})
	started := make(chan struct{})
	go srv.cache.GetOrBuild(context.Background(), key, func(context.Context) (any, int64, error) {
		close(started)
		<-ch
		return nil, 0, fmt.Errorf("holder released: %w", context.Canceled)
	})
	<-started
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// TestHTTPAdmissionAndCancel: with one running slot and a one-deep
// queue, overflow is rejected with 429 and a queued job cancels
// deterministically through DELETE while the running job is untouched.
func TestHTTPAdmissionAndCancel(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{MaxRunning: 1, MaxQueue: 1})
	release := holdKey(srv, "design/"+testSpec().DesignKey())
	defer release()

	// Job A: admitted, blocks inside the design stage on the held key.
	_, body := postJSON(t, ts.URL+"/v1/jobs", testSpec())
	var a JobView
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatalf("submit A: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for a.State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job A stuck in %s", a.State)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+a.ID, &a)
	}

	// Job B fills the queue; job C overflows it.  Both must differ from
	// the in-flight specs already submitted — identical specs would be
	// deduplicated instead of queued.
	specB := testSpec()
	specB.Delta = 2.5
	resp, body := postJSON(t, ts.URL+"/v1/jobs", specB)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %d %s", resp.StatusCode, body)
	}
	var b JobView
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatalf("submit B: %v", err)
	}
	specC := testSpec()
	specC.Delta = 3
	resp, body = postJSON(t, ts.URL+"/v1/jobs", specC)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s", resp.StatusCode, body)
	}

	// DELETE the queued job: its admission select observes the cancel
	// without ever needing the running slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+b.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE B: %v", err)
	}
	dbody, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if err := json.Unmarshal(dbody, &b); err != nil {
		t.Fatalf("DELETE body %q: %v", dbody, err)
	}
	if b.State != StateCanceled {
		t.Fatalf("deleted job in state %s", b.State)
	}

	// Release the held key: job A rebuilds under its live context and
	// runs to completion, unaffected by B's cancellation.
	release()
	getJSON(t, ts.URL+"/v1/jobs/"+a.ID+"?wait=120s", &a)
	if a.State != StateDone {
		t.Fatalf("job A ended %s (%s)", a.State, a.Error)
	}
}

// TestSolveClientDisconnect: a client abandoning the synchronous
// endpoint cancels the in-flight solve; the server records the job as
// canceled, not failed, and stays healthy.
func TestSolveClientDisconnect(t *testing.T) {
	srv, ts, rec := newTestServer(t, Config{MaxRunning: 1})
	release := holdKey(srv, "design/"+testSpec().DesignKey())

	ctx, cancel := context.WithCancel(context.Background())
	spec, _ := json.Marshal(testSpec())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(spec))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the solve is inside execute (holding the run slot),
	// then hang up.
	deadline := time.Now().Add(30 * time.Second)
	for len(srv.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never acquired the run slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client request succeeded despite disconnect")
	}
	release()

	deadline = time.Now().Add(30 * time.Second)
	for rec.Snapshot().Counters["serve/jobs_canceled"] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("job never recorded as canceled: %v", rec.Snapshot().Counters)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := rec.Snapshot().Counters["serve/jobs_failed"]; n != 0 {
		t.Fatalf("disconnect recorded as failure (%d)", n)
	}

	// The slot is released; the server still serves fresh work.
	resp := getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after disconnect: %d", resp.StatusCode)
	}
}

// TestHTTPJobDedupe: concurrent submissions of an identical spec share
// one execution — the second submitter receives the first job's id and
// both observe the same result — while a resubmission after completion
// starts a fresh job.
func TestHTTPJobDedupe(t *testing.T) {
	srv, ts, rec := newTestServer(t, Config{MaxRunning: 1})
	release := holdKey(srv, "design/"+testSpec().DesignKey())
	defer release()

	// Job A blocks inside the design stage on the held key, so it is
	// reliably in flight for the duplicate submission.
	_, body := postJSON(t, ts.URL+"/v1/jobs", testSpec())
	var a JobView
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatalf("submit A: %v", err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/jobs", testSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submit: %d %s", resp.StatusCode, body)
	}
	var dup JobView
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatalf("duplicate submit body: %v", err)
	}
	if dup.ID != a.ID {
		t.Fatalf("duplicate submission got job %s, want shared job %s", dup.ID, a.ID)
	}
	if got := rec.Snapshot().Counters["serve/jobs_deduped"]; got != 1 {
		t.Fatalf("serve/jobs_deduped = %d, want 1", got)
	}

	// Both submitters poll the shared id and receive the one result.
	release()
	getJSON(t, ts.URL+"/v1/jobs/"+a.ID+"?wait=120s", &a)
	if a.State != StateDone {
		t.Fatalf("shared job ended %s (%s)", a.State, a.Error)
	}
	if a.Result == nil {
		t.Fatal("shared job has no result")
	}

	// The spec is no longer in flight: resubmitting runs a new job.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", testSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var fresh JobView
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatalf("resubmit body: %v", err)
	}
	if fresh.ID == a.ID {
		t.Fatalf("finished spec deduped to old job %s; want a fresh job", a.ID)
	}
	getJSON(t, ts.URL+"/v1/jobs/"+fresh.ID+"?wait=120s", &fresh)
	if fresh.State != StateDone {
		t.Fatalf("fresh job ended %s (%s)", fresh.State, fresh.Error)
	}
	if got, want := resultFingerprint(t, fresh.Result), resultFingerprint(t, a.Result); got != want {
		t.Fatalf("rerun result differs from shared result:\n  rerun  %s\n  shared %s", got, want)
	}
}

// TestHTTPWaferJob: wafer-mode jobs flow through the same cached
// Prepare/Execute path as qp/qcp jobs — the daemon runs a tiny
// 12-field consensus wafer, returns the per-field summary, and the
// document is bit-identical to the direct in-process run.
func TestHTTPWaferJob(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxRunning: 1})
	spec := api.JobSpec{Design: "AES-65", Scale: 0.05, Mode: api.ModeWafer,
		Wafer: &api.WaferSpec{FieldWmm: 58, FieldHmm: 58, CenterNm: -2, EdgeNm: 4}}

	resp, body := postJSON(t, ts.URL+"/v1/solve", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wafer solve: %d %s", resp.StatusCode, body)
	}
	var res api.JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("solve body: %v", err)
	}
	w := res.Wafer
	if w == nil {
		t.Fatal("wafer job returned no wafer summary")
	}
	if w.Fields != 12 || len(w.PerField) != 12 {
		t.Fatalf("wafer summary has %d fields (%d detailed), want 12", w.Fields, len(w.PerField))
	}
	if !(w.CoupledSpreadPct < w.UncoupledSpreadPct && w.CoupledSpreadPct < w.UniformSpreadPct) {
		t.Fatalf("coupled spread %.4f%% not below baselines (uniform %.3f%%, uncoupled %.3f%%)",
			w.CoupledSpreadPct, w.UniformSpreadPct, w.UncoupledSpreadPct)
	}

	ref, _, err := api.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("direct wafer run: %v", err)
	}
	if got, want := resultFingerprint(t, &res), resultFingerprint(t, ref); got != want {
		t.Fatalf("wafer result differs from direct path:\n  http   %s\n  direct %s", got, want)
	}

	// Wafer knobs on a non-wafer job must be rejected at the door.
	bad := testSpec()
	bad.Wafer = &api.WaferSpec{}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wafer knobs on qp job: %d, want 400", resp.StatusCode)
	}
}
