package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/api"
)

// TestHTTPJointJob: joint-mode (dose+bias) jobs flow through the same
// cached Prepare/Execute path as dose-only jobs — the daemon returns a
// bias summary alongside the dose map, and the document is bit-identical
// to the direct in-process run (cmd/dmopt -actuators joint).
func TestHTTPJointJob(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxRunning: 1})
	spec := testSpec()
	spec.Actuators = api.ActuatorsJoint

	resp, body := postJSON(t, ts.URL+"/v1/solve", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("joint solve: %d %s", resp.StatusCode, body)
	}
	var res api.JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("solve body: %v", err)
	}
	if res.Bias == nil {
		t.Fatal("joint job returned no bias summary")
	}
	if res.Bias.Domains == 0 {
		t.Fatalf("joint job has no bias domains: %+v", res.Bias)
	}
	if res.Bias.MinV > res.Bias.MeanV || res.Bias.MeanV > res.Bias.MaxV {
		t.Fatalf("bias summary not ordered: %+v", res.Bias)
	}
	if res.Dose.MaxPct == 0 && res.Dose.MinPct == 0 {
		t.Fatal("joint job returned a flat dose map; the dose actuator went missing")
	}

	ref, _, err := api.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("direct joint run: %v", err)
	}
	if got, want := resultFingerprint(t, &res), resultFingerprint(t, ref); got != want {
		t.Fatalf("joint result differs from direct path:\n  http   %s\n  direct %s", got, want)
	}
}

// TestHTTPActuatorSpecErrors: malformed actuator specs are rejected at
// the door with 400 — an unknown actuator set, bias knobs without a bias
// actuator, a degenerate bias box, and bias combined with modes that
// forbid it (wafer, dosePl).
func TestHTTPActuatorSpecErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxRunning: 1})
	cases := []struct {
		name string
		mut  func(*api.JobSpec)
	}{
		{"unknown actuator set", func(s *api.JobSpec) { s.Actuators = "warp" }},
		{"bias knobs without bias actuator", func(s *api.JobSpec) { s.BiasGridUm = 20 }},
		{"negative bias pitch", func(s *api.JobSpec) {
			s.Actuators = api.ActuatorsJoint
			s.BiasGridUm = -5
		}},
		{"empty bias box", func(s *api.JobSpec) {
			s.Actuators = api.ActuatorsJoint
			s.BiasLoV, s.BiasHiV = 0.1, -0.2
		}},
		{"bias on wafer job", func(s *api.JobSpec) {
			s.Actuators = api.ActuatorsJoint
			s.Mode = api.ModeWafer
			s.Wafer = &api.WaferSpec{FieldWmm: 58, FieldHmm: 58}
		}},
		{"bias on dosePl job", func(s *api.JobSpec) {
			s.Actuators = api.ActuatorsJoint
			s.DosePl = true
		}},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mut(&spec)
		resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", tc.name, resp.StatusCode, body)
		}
	}
}
