// Package serve is the long-running optimization service behind
// cmd/dmopt-serve: a job manager that executes dmopt-job/v1 specs
// (internal/api) over the staged compile→solve→signoff pipeline, with
// admission control, per-job worker budgets, graceful cancellation via
// the ctx-first core entry points, and a byte-budget LRU around the
// design/golden/model/compile stages so the artifact cache survives
// millions of distinct requests.
//
// Job lifecycle: queued → running → done | failed | canceled.  A job
// is admitted when a running slot (Config.MaxRunning) frees up; the
// queue beyond the running set is bounded by Config.MaxQueue and
// overflow is rejected at submission (HTTP 429).  Cancellation — by
// DELETE, by client disconnect on the synchronous endpoint, or by
// server shutdown — cancels the job's context, which the solver
// observes between cut rounds / ADMM iterations / bisection probes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sta"
)

// Config sizes the service.
type Config struct {
	// MaxRunning bounds concurrently executing jobs (0 = 1).
	MaxRunning int
	// MaxQueue bounds jobs waiting for a running slot (0 = 64).
	MaxQueue int
	// JobWorkers caps each job's parallel fan-out: a spec asking for
	// more (or for the default) is clamped to this budget, so one job
	// cannot monopolize the machine.  0 = GOMAXPROCS.
	JobWorkers int
	// CacheBytes is the artifact cache budget (0 = unbounded).
	CacheBytes int64
	// KeepJobs bounds the finished-job registry; the oldest finished
	// jobs are dropped past it (0 = 1024).
	KeepJobs int
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted optimization; all mutable fields are guarded by
// the server mutex, and done closes exactly once on reaching a
// terminal state.
type Job struct {
	ID   string
	Spec api.JobSpec

	state     State
	err       string
	result    *api.JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel context.CancelFunc
	done   chan struct{}

	// dedupeKey is the canonical spec the in-flight index filed this job
	// under; cleared when the job reaches a terminal state.
	dedupeKey string
}

// ErrQueueFull rejects a submission when the admission queue is at
// capacity (HTTP 429 at the transport).
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrNotFound reports an unknown job id.
var ErrNotFound = errors.New("serve: no such job")

// Server is the job manager.  Construct with New, release with Close.
type Server struct {
	cfg   Config
	rec   *obs.Recorder
	cache *Cache
	start time.Time

	baseCtx   context.Context
	cancelAll context.CancelFunc
	sem       chan struct{}
	wg        sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	order    []string        // submission order, for listing and registry GC
	inflight map[string]*Job // canonical spec → queued/running job
	queued   int
	seq      int
}

// New returns a started server.  The Recorder accumulates pipeline and
// service counters for the /metrics endpoint; it must not be nil.
func New(cfg Config, rec *obs.Recorder) *Server {
	if cfg.MaxRunning <= 0 {
		cfg.MaxRunning = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.KeepJobs <= 0 {
		cfg.KeepJobs = 1024
	}
	ctx, cancel := context.WithCancel(obs.With(context.Background(), rec))
	return &Server{
		cfg:       cfg,
		rec:       rec,
		cache:     NewCache(rec, cfg.CacheBytes),
		start:     time.Now(),
		baseCtx:   ctx,
		cancelAll: cancel,
		sem:       make(chan struct{}, cfg.MaxRunning),
		jobs:      map[string]*Job{},
		inflight:  map[string]*Job{},
	}
}

// Close cancels every in-flight job and waits for the workers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	s.wg.Wait()
}

// Recorder exposes the server-lifetime metrics recorder.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Uptime reports time since construction (the /metrics wall clock).
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// clampWorkers applies the per-job worker budget to a spec.
func (s *Server) clampWorkers(spec api.JobSpec) api.JobSpec {
	budget := par.Workers(s.cfg.JobWorkers)
	if w := par.Workers(spec.Workers); w > budget {
		spec.Workers = budget
	} else {
		spec.Workers = w
	}
	return spec
}

// Submit validates, admits and enqueues a job, returning immediately
// with its id.  The job runs as soon as a running slot frees up.
// Identical in-flight specs are deduplicated: a submission whose
// canonical form (post-normalize, post-clamp) matches a queued or
// running job returns that job instead of starting a second execution,
// so every concurrent submitter shares one run and all receive its
// result.  Finished jobs never dedupe — resubmitting a completed spec
// runs it again.
func (s *Server) Submit(spec api.JobSpec) (*Job, error) {
	spec = s.clampWorkers(spec.Normalized())
	if err := spec.Validate(); err != nil {
		s.rec.Add("serve/jobs_rejected", 1)
		return nil, err
	}
	key := spec.MarshalCanonical()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("serve: server is shutting down")
	}
	if j := s.inflight[key]; j != nil {
		s.mu.Unlock()
		s.rec.Add("serve/jobs_deduped", 1)
		return j, nil
	}
	if s.queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.rec.Add("serve/jobs_rejected", 1)
		return nil, ErrQueueFull
	}
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		cancel:    cancel,
		done:      make(chan struct{}),
		dedupeKey: key,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.inflight[key] = j
	s.queued++
	s.rec.Set("serve/queue_depth", float64(s.queued))
	// The Add must happen under the mutex that guards closed: Close sets
	// closed and only then waits, so a submission past the closed check
	// is always counted before Close's wg.Wait can observe zero.
	s.wg.Add(1)
	s.mu.Unlock()

	s.rec.Add("serve/jobs_submitted", 1)
	go s.run(ctx, j)
	return j, nil
}

// run takes the job through admission, execution and completion.
func (s *Server) run(ctx context.Context, j *Job) {
	defer s.wg.Done()
	defer j.cancel()
	// Admission: wait for a running slot, or for cancellation while
	// still queued.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.finish(j, nil, ctx.Err())
		return
	}
	defer func() { <-s.sem }()
	if ctx.Err() != nil {
		s.finish(j, nil, ctx.Err())
		return
	}
	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.queued--
	s.rec.Set("serve/queue_depth", float64(s.queued))
	s.mu.Unlock()

	res, err := s.execute(ctx, j.Spec)
	s.finish(j, res, err)
}

// execute resolves the staged artifacts through the cache and runs the
// solve.  dosePl jobs mutate cell positions in place, so they run on a
// private copy of the placement: the cached design — which concurrent
// jobs on the same design read through golden/compile rebuilds and
// solve-stage signoff — is never written after it is built.
func (s *Server) execute(ctx context.Context, spec api.JobSpec) (*api.JobResult, error) {
	start := time.Now()
	art, err := s.artifacts(ctx, spec)
	if err != nil {
		return nil, err
	}
	if spec.DosePl {
		art = art.WithPrivatePlacement()
	}
	res, _, err := api.Execute(ctx, art, spec)
	if err != nil {
		return nil, err
	}
	s.rec.Observe("serve/job_wall", time.Since(start))
	return res, nil
}

// finish records the job's terminal state.
func (s *Server) finish(j *Job, res *api.JobResult, err error) {
	s.mu.Lock()
	if j.state == StateQueued {
		s.queued--
		s.rec.Set("serve/queue_depth", float64(s.queued))
	}
	if s.inflight[j.dedupeKey] == j {
		delete(s.inflight, j.dedupeKey)
	}
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.err = err.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	state := j.state
	close(j.done)
	s.gcLocked()
	s.mu.Unlock()
	switch state {
	case StateDone:
		s.rec.Add("serve/jobs_done", 1)
	case StateCanceled:
		s.rec.Add("serve/jobs_canceled", 1)
	default:
		s.rec.Add("serve/jobs_failed", 1)
	}
}

// gcLocked drops the oldest finished jobs past the registry bound.
// Caller holds s.mu.
func (s *Server) gcLocked() {
	excess := len(s.order) - s.cfg.KeepJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.state.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cancellation of a queued or running job.  Canceling
// a finished job is a no-op that returns the job.
func (s *Server) Cancel(id string) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	j.cancel()
	return j, nil
}

// Wait blocks until the job reaches a terminal state, the timeout
// elapses, or ctx is done; it always returns the job's current view.
func (s *Server) Wait(ctx context.Context, j *Job, timeout time.Duration) {
	if timeout <= 0 {
		select {
		case <-j.done:
		case <-ctx.Done():
		}
		return
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-j.done:
	case <-t.C:
	case <-ctx.Done():
	}
}

// Jobs lists the registry in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			out = append(out, j)
		}
	}
	return out
}

// --- staged artifact resolution -------------------------------------------

// artifacts resolves the design → golden → model → compiled chain
// through the byte-budget cache.  Stage keys exclude the worker count:
// every stage is bit-identical for any worker count (the repo-wide
// determinism contract), so jobs differing only in budget share
// artifacts.  A compile served from cache ticks core/compile_hits,
// mirroring the expt harness, so cache effectiveness is observable at
// /metrics.
func (s *Server) artifacts(ctx context.Context, spec api.JobSpec) (api.Artifacts, error) {
	opt, err := spec.Options()
	if err != nil {
		return api.Artifacts{}, err
	}
	dKey := spec.DesignKey()

	dv, _, err := s.cache.GetOrBuild(ctx, "design/"+dKey, func(ctx context.Context) (any, int64, error) {
		p, err := spec.GenPreset()
		if err != nil {
			return nil, 0, err
		}
		d, err := gen.GenerateCtx(ctx, p)
		if err != nil {
			return nil, 0, err
		}
		return d, designBytes(d), nil
	})
	if err != nil {
		return api.Artifacts{}, err
	}
	d := dv.(*gen.Design)

	gv, _, err := s.cache.GetOrBuild(ctx, "golden/"+dKey, func(ctx context.Context) (any, int64, error) {
		cfg := opt.STA
		cfg.Workers = spec.Workers
		g, err := core.GoldenNominalCtx(ctx, d, cfg)
		if err != nil {
			return nil, 0, err
		}
		return g, goldenBytes(g), nil
	})
	if err != nil {
		return api.Artifacts{}, err
	}
	golden := gv.(*sta.Result)

	mKey := fmt.Sprintf("model/%s/both=%t", dKey, opt.BothLayers)
	mv, _, err := s.cache.GetOrBuild(ctx, mKey, func(ctx context.Context) (any, int64, error) {
		m, err := core.FitModelCtx(ctx, golden, opt.BothLayers, spec.Workers)
		if err != nil {
			return nil, 0, err
		}
		return m, modelBytes(m), nil
	})
	if err != nil {
		return api.Artifacts{}, err
	}
	model := mv.(*core.Model)

	co := opt.CompileOptions()
	cKey := fmt.Sprintf("compiled/%s/%+v", dKey, co)
	cv, hit, err := s.cache.GetOrBuild(ctx, cKey, func(ctx context.Context) (any, int64, error) {
		c, err := core.CompileCtx(ctx, golden, model, co)
		if err != nil {
			return nil, 0, err
		}
		return c, c.ApproxBytes(), nil
	})
	if err != nil {
		return api.Artifacts{}, err
	}
	if hit {
		s.rec.Add("core/compile_hits", 1)
	}
	return api.Artifacts{Design: d, Golden: golden, Model: model, Compiled: cv.(*core.Compiled)}, nil
}

// --- artifact byte costs ---------------------------------------------------

// designBytes approximates a generated design's resident cost: per-gate
// structure, adjacency and placement slices.
func designBytes(d *gen.Design) int64 {
	b := int64(0)
	for _, g := range d.Circ.Gates {
		b += 96 + int64(len(g.Name)+len(g.Master)) + 8*int64(len(g.Fanins)+len(g.Fanouts))
	}
	b += 8 * 3 * int64(len(d.Pl.X))
	b += 8 * int64(len(d.Masters))
	return b
}

// goldenBytes approximates an analysis result: six per-gate float
// vectors plus the shared input view.
func goldenBytes(r *sta.Result) int64 {
	return 8 * 6 * int64(len(r.AOut))
}

// modelBytes approximates the fitted coefficient set.
func modelBytes(m *core.Model) int64 {
	return 8 * int64(len(m.A)+len(m.B)+len(m.Alpha)+len(m.Beta)+len(m.Gamma))
}
