package dosemap

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// This file implements the paper's stated future-work direction
// (Section VI: "extension of the dose map optimization methodology to
// minimize the delay variation of different chips across the wafer or
// the exposure field") plus the Section II-B tiling remark ("multiple
// copies of the dose map solution are tiled horizontally and
// vertically: smoothness or gradient constraints are scaled").

// Field is one exposure-field placement on the wafer.
type Field struct {
	// Col, Row index the field in the step-and-scan grid.
	Col, Row int
	// CX, CY are the field center coordinates in mm, wafer-centered.
	CX, CY float64
}

// Wafer is a step-and-scan exposure plan: identical fields tiled across
// a circular wafer.
type Wafer struct {
	// DiameterMM is the wafer diameter (300 for production wafers).
	DiameterMM float64
	// FieldW, FieldH are the exposure-field dimensions in mm.
	FieldW, FieldH float64
	// EdgeMM is the edge exclusion in mm.
	EdgeMM float64
	// Fields lists the printable fields (fully inside the exclusion).
	Fields []Field
}

// NewWafer lays out fields of the given size (mm) on a wafer, keeping
// only fields whose four corners fall inside the usable radius.
func NewWafer(diameterMM, fieldW, fieldH, edgeMM float64) (*Wafer, error) {
	if diameterMM <= 0 || fieldW <= 0 || fieldH <= 0 {
		return nil, fmt.Errorf("dosemap: bad wafer spec %g/%g/%g", diameterMM, fieldW, fieldH)
	}
	w := &Wafer{DiameterMM: diameterMM, FieldW: fieldW, FieldH: fieldH, EdgeMM: edgeMM}
	usable := diameterMM/2 - edgeMM
	nCols := int(diameterMM/fieldW) + 2
	nRows := int(diameterMM/fieldH) + 2
	for r := -nRows; r <= nRows; r++ {
		for c := -nCols; c <= nCols; c++ {
			cx := (float64(c) + 0.5) * fieldW
			cy := (float64(r) + 0.5) * fieldH
			ok := true
			for _, dx := range []float64{-fieldW / 2, fieldW / 2} {
				for _, dy := range []float64{-fieldH / 2, fieldH / 2} {
					if math.Hypot(cx+dx, cy+dy) > usable {
						ok = false
					}
				}
			}
			if ok {
				w.Fields = append(w.Fields, Field{Col: c, Row: r, CX: cx, CY: cy})
			}
		}
	}
	if len(w.Fields) == 0 {
		return nil, fmt.Errorf("dosemap: no printable fields on a %g mm wafer with %gx%g mm fields",
			diameterMM, fieldW, fieldH)
	}
	return w, nil
}

// RadialCD models the across-wafer linewidth variation (AWLV)
// fingerprint: a radial CD bias in nm as a function of the normalized
// wafer radius (track/etcher signature, footnote 1 of the paper).
type RadialCD struct {
	// Center is the CD bias at wafer center, nm.
	Center float64
	// Edge is the CD bias at the usable-radius edge, nm.
	Edge float64
	// Power shapes the profile (2 = parabolic bowl, the common case).
	Power float64
}

// At returns the CD bias in nm at wafer position (x, y) mm.
func (r RadialCD) At(w *Wafer, x, y float64) float64 {
	usable := w.DiameterMM/2 - w.EdgeMM
	t := math.Hypot(x, y) / usable
	if t > 1 {
		t = 1
	}
	p := r.Power
	if p <= 0 {
		p = 2
	}
	return r.Center + (r.Edge-r.Center)*math.Pow(t, p)
}

// FieldCD returns the mean CD bias of each field in nm under the
// fingerprint (evaluated at the field center — dose corrections are
// per-field offsets, the Dosicom "dose offset per field" actuator).
func (r RadialCD) FieldCD(w *Wafer) []float64 {
	out := make([]float64, len(w.Fields))
	for i, f := range w.Fields {
		out[i] = r.At(w, f.CX, f.CY)
	}
	return out
}

// AWLVCorrection computes the per-field dose offsets (percent) that
// cancel the fingerprint's mean CD bias per field, clamped to the
// equipment range.  It returns the offsets and the residual per-field
// CD bias after correction.
func AWLVCorrection(w *Wafer, fp RadialCD, doseLo, doseHi float64) (offsets, residual []float64) {
	cd := fp.FieldCD(w)
	offsets = make([]float64, len(cd))
	residual = make([]float64, len(cd))
	for i, bias := range cd {
		// ΔCD = Ds·dose ⇒ cancel with dose = -bias/Ds.
		d := -bias / tech.DoseSensitivity
		if d < doseLo {
			d = doseLo
		}
		if d > doseHi {
			d = doseHi
		}
		offsets[i] = d
		residual[i] = bias + tech.DoseSensitivity*d
	}
	return offsets, residual
}

// Spread returns max-min of a slice (the across-wafer variation metric).
func Spread(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi - lo
}

// Tile replicates an intrafield map n×m times (the Section II-B
// multiple-copies case) into one combined map, for inspection and
// boundary-smoothness checking.
func (m *Map) Tile(nx, ny int) (*Map, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("dosemap: bad tiling %dx%d", nx, ny)
	}
	g := m.Grid
	tg := Grid{G: g.G, W: g.W * float64(nx), H: g.H * float64(ny), M: g.M * ny, N: g.N * nx}
	t := NewMap(tg)
	for i := 0; i < tg.M; i++ {
		for j := 0; j < tg.N; j++ {
			t.Set(i, j, m.At(i%g.M, j%g.N))
		}
	}
	return t, nil
}

// CheckTiledSmooth verifies that the map remains smooth when copies are
// tiled side by side: in addition to the interior constraints, the seam
// pairs (last column against first column, last row against first row,
// and the corner diagonal) must satisfy δ.
func (m *Map) CheckTiledSmooth(delta float64) error {
	if err := m.CheckSmooth(delta); err != nil {
		return err
	}
	g := m.Grid
	worst := 0.0
	chk := func(a, b int) {
		if d := math.Abs(m.D[a] - m.D[b]); d > worst {
			worst = d
		}
	}
	for i := 0; i < g.M; i++ {
		chk(g.Flat(i, g.N-1), g.Flat(i, 0)) // horizontal seam
		if i+1 < g.M {
			chk(g.Flat(i, g.N-1), g.Flat(i+1, 0)) // seam diagonal
		}
	}
	for j := 0; j < g.N; j++ {
		chk(g.Flat(g.M-1, j), g.Flat(0, j)) // vertical seam
		if j+1 < g.N {
			chk(g.Flat(g.M-1, j), g.Flat(0, j+1))
		}
	}
	if worst > delta+1e-9 {
		return fmt.Errorf("dosemap: tiled seam dose difference %.4g exceeds δ=%g", worst, delta)
	}
	return nil
}
