// Package dosemap provides the dose-map and exposure-equipment substrate:
// the rectangular grid partition of the exposure field (Section II-B),
// per-grid dose deltas with equipment range and smoothness checks
// (Eqs. 3-4, 8-9), conversion of a dose map into per-cell gate-length and
// gate-width perturbations via the placement, and the DoseMapper actuator
// model — a Legendre-polynomial scan profile (Dosicom, Eq. 1) plus a
// polynomial slit profile (Unicom-XL) fitted to the optimized map.
package dosemap

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fit"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/tech"
)

// Grid is the rectangular partition R = |r_ij| of an exposure field of
// size W×H µm into M×N cells of at most G×G µm (M rows along y, N
// columns along x).
type Grid struct {
	G    float64
	W, H float64
	M, N int
}

// NewGrid partitions a W×H field with granularity parameter G (the
// user-specified upper bound on grid width and height).
func NewGrid(w, h, g float64) (Grid, error) {
	if w <= 0 || h <= 0 || g <= 0 {
		return Grid{}, fmt.Errorf("dosemap: bad grid spec %gx%g / %g", w, h, g)
	}
	return Grid{
		G: g, W: w, H: h,
		N: int(math.Ceil(w / g)),
		M: int(math.Ceil(h / g)),
	}, nil
}

// Cells returns the number of grid cells M·N.
func (g Grid) Cells() int { return g.M * g.N }

// Index returns the (row i, column j) of the grid cell containing point
// (x, y), clamped to the field.
func (g Grid) Index(x, y float64) (i, j int) {
	j = int(x / (g.W / float64(g.N)))
	i = int(y / (g.H / float64(g.M)))
	if j < 0 {
		j = 0
	}
	if j >= g.N {
		j = g.N - 1
	}
	if i < 0 {
		i = 0
	}
	if i >= g.M {
		i = g.M - 1
	}
	return i, j
}

// Flat linearizes (i, j) row-major.
func (g Grid) Flat(i, j int) int { return i*g.N + j }

// Center returns the µm coordinates of the center of cell (i, j).
func (g Grid) Center(i, j int) (x, y float64) {
	cw := g.W / float64(g.N)
	ch := g.H / float64(g.M)
	return (float64(j) + 0.5) * cw, (float64(i) + 0.5) * ch
}

// Map is a per-grid dose-delta map for one layer, in percent.
type Map struct {
	Grid Grid
	// D holds dose deltas row-major: D[i·N+j] is grid (i, j).
	D []float64
}

// NewMap returns an all-zero map on the grid.
func NewMap(g Grid) *Map { return &Map{Grid: g, D: make([]float64, g.Cells())} }

// Uniform returns a constant map.
func Uniform(g Grid, v float64) *Map {
	m := NewMap(g)
	for i := range m.D {
		m.D[i] = v
	}
	return m
}

// At returns the dose delta of cell (i, j).
func (m *Map) At(i, j int) float64 { return m.D[m.Grid.Flat(i, j)] }

// Set writes the dose delta of cell (i, j).
func (m *Map) Set(i, j int, v float64) { m.D[m.Grid.Flat(i, j)] = v }

// DoseAt returns the dose delta at µm point (x, y).
func (m *Map) DoseAt(x, y float64) float64 {
	i, j := m.Grid.Index(x, y)
	return m.At(i, j)
}

// Clone deep-copies the map.
func (m *Map) Clone() *Map {
	return &Map{Grid: m.Grid, D: append([]float64(nil), m.D...)}
}

// Snap rounds every grid dose to the nearest characterized library
// variant step (the paper's footnote-7 rounding to available cell
// masters).
func (m *Map) Snap() {
	for i := range m.D {
		m.D[i] = liberty.SnapDose(m.D[i])
	}
}

// SnapTimingSafe rounds every grid dose up to the next characterized
// step: gates only get shorter, so timing never degrades from rounding.
func (m *Map) SnapTimingSafe() {
	for i := range m.D {
		m.D[i] = liberty.SnapDoseUp(m.D[i])
	}
}

// CheckRange verifies Eq. 3 / Eq. 8: L ≤ d_ij ≤ U everywhere.
func (m *Map) CheckRange(lo, hi float64) error {
	for i, v := range m.D {
		if v < lo-1e-9 || v > hi+1e-9 {
			return fmt.Errorf("dosemap: grid %d dose %.4g outside [%g, %g]", i, v, lo, hi)
		}
	}
	return nil
}

// MaxNeighborDiff returns the largest |d_ij − d_kl| over horizontally,
// vertically and diagonally adjacent grid pairs — the left side of the
// smoothness constraints (Eq. 4 / Eq. 9).
func (m *Map) MaxNeighborDiff() float64 {
	g := m.Grid
	worst := 0.0
	chk := func(a, b int) {
		if d := math.Abs(m.D[a] - m.D[b]); d > worst {
			worst = d
		}
	}
	for i := 0; i < g.M; i++ {
		for j := 0; j < g.N; j++ {
			a := g.Flat(i, j)
			if j+1 < g.N {
				chk(a, g.Flat(i, j+1))
			}
			if i+1 < g.M {
				chk(a, g.Flat(i+1, j))
			}
			if i+1 < g.M && j+1 < g.N {
				chk(a, g.Flat(i+1, j+1))
			}
		}
	}
	return worst
}

// CheckSmooth verifies the smoothness bound δ (Eq. 4 / Eq. 9).
func (m *Map) CheckSmooth(delta float64) error {
	if d := m.MaxNeighborDiff(); d > delta+1e-9 {
		return fmt.Errorf("dosemap: neighbor dose difference %.4g exceeds δ=%g", d, delta)
	}
	return nil
}

// Legalize projects the map onto the equipment-feasible set: doses are
// clamped to [lo, hi] and neighbor differences reduced to at most delta
// by symmetric Gauss-Seidel repair sweeps.  Numerical slop from an
// iterative QP solve is tiny, so a handful of sweeps reaches exact
// feasibility; the return value is the largest remaining smoothness
// violation (0 when fully legal).
func (m *Map) Legalize(lo, hi, delta float64, sweeps int) float64 {
	for i, v := range m.D {
		if v < lo {
			m.D[i] = lo
		} else if v > hi {
			m.D[i] = hi
		}
	}
	g := m.Grid
	repair := func(a, b int) {
		d := m.D[a] - m.D[b]
		if d > delta {
			adj := (d - delta) / 2
			m.D[a] -= adj
			m.D[b] += adj
		} else if d < -delta {
			adj := (-d - delta) / 2
			m.D[a] += adj
			m.D[b] -= adj
		}
	}
	for s := 0; s < sweeps; s++ {
		if m.MaxNeighborDiff() <= delta {
			break
		}
		for i := 0; i < g.M; i++ {
			for j := 0; j < g.N; j++ {
				a := g.Flat(i, j)
				if j+1 < g.N {
					repair(a, g.Flat(i, j+1))
				}
				if i+1 < g.M {
					repair(a, g.Flat(i+1, j))
				}
				if i+1 < g.M && j+1 < g.N {
					repair(a, g.Flat(i+1, j+1))
				}
			}
		}
	}
	d := m.MaxNeighborDiff() - delta
	if d < 0 {
		return 0
	}
	return d
}

// LegalizeTiled is Legalize plus seam repair: opposite-edge pairs (the
// tiling seams) are also driven to within delta, so the map can be
// stepped side-by-side across the wafer.
func (m *Map) LegalizeTiled(lo, hi, delta float64, sweeps int) float64 {
	g := m.Grid
	repair := func(a, b int) {
		d := m.D[a] - m.D[b]
		if d > delta {
			adj := (d - delta) / 2
			m.D[a] -= adj
			m.D[b] += adj
		} else if d < -delta {
			adj := (-d - delta) / 2
			m.D[a] += adj
			m.D[b] -= adj
		}
	}
	for s := 0; s < sweeps; s++ {
		m.Legalize(lo, hi, delta, 2)
		for i := 0; i < g.M; i++ {
			repair(g.Flat(i, g.N-1), g.Flat(i, 0))
			if i+1 < g.M {
				repair(g.Flat(i, g.N-1), g.Flat(i+1, 0))
			}
		}
		for j := 0; j < g.N; j++ {
			repair(g.Flat(g.M-1, j), g.Flat(0, j))
			if j+1 < g.N {
				repair(g.Flat(g.M-1, j), g.Flat(0, j+1))
			}
		}
		if m.CheckTiledSmooth(delta) == nil {
			break
		}
	}
	if err := m.CheckTiledSmooth(delta); err == nil {
		return 0
	}
	return 1
}

// Stats summarizes a map.
type Stats struct {
	Min, Max, Mean, RMS float64
}

// Stats returns min/max/mean/RMS of the dose deltas.
func (m *Map) Stats() Stats {
	if len(m.D) == 0 {
		return Stats{}
	}
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	sum, sq := 0.0, 0.0
	for _, v := range m.D {
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
		sum += v
		sq += v * v
	}
	n := float64(len(m.D))
	s.Mean = sum / n
	s.RMS = math.Sqrt(sq / n)
	return s
}

// Layers bundles the poly- and active-layer maps the co-optimization
// produces.  Active may be nil for poly-only optimization.
type Layers struct {
	Poly   *Map
	Active *Map
}

// PerGate converts the layer maps into per-gate geometry deltas (ΔL, ΔW
// in nm) using each cell's placed location.  Ports get zeros.  If snap
// is true, grid doses are first rounded to the characterized variant
// step (golden-signoff behaviour).
func (l Layers) PerGate(circ *netlist.Circuit, pl *place.Placement, snap bool) (dL, dW []float64) {
	poly := l.Poly
	active := l.Active
	if snap {
		poly = poly.Clone()
		poly.SnapTimingSafe()
		if active != nil {
			active = active.Clone()
			// Wider gates are faster: the timing-safe direction for the
			// active layer is downward dose (ΔW = Ds·dA with Ds < 0).
			for i := range active.D {
				active.D[i] = -liberty.SnapDoseUp(-active.D[i])
			}
		}
	}
	n := circ.NumGates()
	dL = make([]float64, n)
	dW = make([]float64, n)
	for _, g := range circ.Gates {
		if g.Kind != netlist.Comb && g.Kind != netlist.Seq {
			continue
		}
		x, y := pl.X[g.ID], pl.Y[g.ID]
		dL[g.ID] = tech.DoseToLength(poly.DoseAt(x, y))
		if active != nil {
			dW[g.ID] = tech.DoseToWidth(active.DoseAt(x, y))
		}
	}
	return dL, dW
}

// --- Equipment (DoseMapper actuator) model -------------------------------

// LegendreP evaluates the Legendre polynomial P_n(y) by the Bonnet
// recurrence; |y| ≤ 1 in the dose-recipe convention of Eq. 1.
func LegendreP(n int, y float64) float64 {
	switch n {
	case 0:
		return 1
	case 1:
		return y
	}
	p0, p1 := 1.0, y
	for k := 2; k <= n; k++ {
		p0, p1 = p1, ((2*float64(k)-1)*y*p1-(float64(k)-1)*p0)/float64(k)
	}
	return p1
}

// ScanProfile is a Dosicom dose recipe: Dset(y) = Σ L_n·P_n(y) with up to
// eight Legendre coefficients (Eq. 1).
type ScanProfile struct {
	Coeffs []float64 // Coeffs[n] multiplies P_n
}

// Eval evaluates the profile at normalized scan position y ∈ [-1, 1].
func (s ScanProfile) Eval(y float64) float64 {
	v := 0.0
	for n, c := range s.Coeffs {
		v += c * LegendreP(n, y)
	}
	return v
}

// SlitProfile is a Unicom-XL dose recipe: a polynomial of up to 6th
// order in the normalized slit position x ∈ [-1, 1] (ASML recommends a
// quadratic default; XT:1700i-class tools accept up to 6th order).
type SlitProfile struct {
	Coeffs []float64 // ordinary polynomial coefficients, constant first
}

// Eval evaluates the profile at normalized slit position x ∈ [-1, 1].
func (s SlitProfile) Eval(x float64) float64 { return fit.PolyEval(s.Coeffs, x) }

// Recipe is the separable actuator decomposition of a dose map:
// dose(x, y) ≈ Slit(x) + Scan(y).
type Recipe struct {
	Slit SlitProfile
	Scan ScanProfile
	// RMSResidual is the root-mean-square difference between the grid
	// map and the separable recipe, in dose percent — how much of the
	// requested map the slit/scan actuators cannot realize.
	RMSResidual float64
}

// FitRecipe fits the actuator recipe to a dose map: the slit profile
// (order ≤ slitOrder) against column means and the scan profile (up to
// nScan Legendre terms) against the row residuals.
func FitRecipe(m *Map, slitOrder, nScan int) (Recipe, error) {
	g := m.Grid
	if slitOrder < 0 || slitOrder > 6 {
		return Recipe{}, errors.New("dosemap: slit order must be 0..6")
	}
	if nScan < 1 || nScan > 8 {
		return Recipe{}, errors.New("dosemap: scan terms must be 1..8")
	}
	// Column means (slit direction = x).
	colMean := make([]float64, g.N)
	for j := 0; j < g.N; j++ {
		for i := 0; i < g.M; i++ {
			colMean[j] += m.At(i, j)
		}
		colMean[j] /= float64(g.M)
	}
	xs := make([]float64, g.N)
	for j := range xs {
		xs[j] = normPos(j, g.N)
	}
	order := slitOrder
	if order > g.N-1 {
		order = g.N - 1
	}
	slitC, err := fit.Polyfit(xs, colMean, order)
	if err != nil {
		return Recipe{}, err
	}
	slit := SlitProfile{Coeffs: slitC}

	// Row means of the residual (scan direction = y).
	rowMean := make([]float64, g.M)
	for i := 0; i < g.M; i++ {
		for j := 0; j < g.N; j++ {
			rowMean[i] += m.At(i, j) - slit.Eval(xs[j])
		}
		rowMean[i] /= float64(g.N)
	}
	terms := nScan
	if terms > g.M {
		terms = g.M
	}
	design := make([][]float64, g.M)
	for i := 0; i < g.M; i++ {
		y := normPos(i, g.M)
		row := make([]float64, terms)
		for n := 0; n < terms; n++ {
			row[n] = LegendreP(n, y)
		}
		design[i] = row
	}
	scanC, err := fit.LeastSquares(design, rowMean)
	if err != nil {
		return Recipe{}, err
	}
	scan := ScanProfile{Coeffs: scanC}

	// Residual.
	rec := Recipe{Slit: slit, Scan: scan}
	sq := 0.0
	for i := 0; i < g.M; i++ {
		y := normPos(i, g.M)
		for j := 0; j < g.N; j++ {
			x := xs[j]
			r := m.At(i, j) - (slit.Eval(x) + scan.Eval(y))
			sq += r * r
		}
	}
	rec.RMSResidual = math.Sqrt(sq / float64(g.Cells()))
	return rec, nil
}

// Render evaluates the recipe back onto a grid, producing the map the
// equipment would actually expose.
func (r Recipe) Render(g Grid) *Map {
	m := NewMap(g)
	for i := 0; i < g.M; i++ {
		y := normPos(i, g.M)
		for j := 0; j < g.N; j++ {
			x := normPos(j, g.N)
			m.Set(i, j, r.Slit.Eval(x)+r.Scan.Eval(y))
		}
	}
	return m
}

// normPos maps cell index k of n to the normalized coordinate in [-1, 1]
// at the cell center.
func normPos(k, n int) float64 {
	if n == 1 {
		return 0
	}
	return -1 + 2*(float64(k)+0.5)/float64(n)
}

// ACLVBaseline synthesizes the "original dose map … calculated to
// minimize ACLV metrics" that the flow takes as input: a map that
// cancels a radial-plus-tilt across-field CD fingerprint of the given
// amplitude (percent dose).  The result is smooth and equipment-
// realizable by construction.
func ACLVBaseline(g Grid, amplitude float64) *Map {
	m := NewMap(g)
	for i := 0; i < g.M; i++ {
		y := normPos(i, g.M)
		for j := 0; j < g.N; j++ {
			x := normPos(j, g.N)
			// Radial bowl (reticle bending / resist spin) plus a slit tilt.
			fingerprint := 0.6*(x*x+y*y-1) + 0.25*x + 0.15*y
			m.Set(i, j, -amplitude*fingerprint)
		}
	}
	return m
}
