package dosemap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/tech"
)

func mustGrid(t *testing.T, w, h, g float64) Grid {
	t.Helper()
	gr, err := NewGrid(w, h, g)
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

func TestNewGrid(t *testing.T) {
	g := mustGrid(t, 241, 241, 5)
	if g.N != 49 || g.M != 49 {
		t.Errorf("grid dims = %dx%d, want 49x49", g.M, g.N)
	}
	if g.Cells() != 49*49 {
		t.Errorf("Cells = %d", g.Cells())
	}
	if _, err := NewGrid(0, 10, 5); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewGrid(10, 10, -1); err == nil {
		t.Error("negative G should fail")
	}
}

func TestGridIndexAndCenter(t *testing.T) {
	g := mustGrid(t, 100, 50, 10)
	// 10 columns, 5 rows.
	if g.N != 10 || g.M != 5 {
		t.Fatalf("dims %dx%d", g.M, g.N)
	}
	i, j := g.Index(0, 0)
	if i != 0 || j != 0 {
		t.Errorf("Index(0,0) = %d,%d", i, j)
	}
	i, j = g.Index(99.9, 49.9)
	if i != 4 || j != 9 {
		t.Errorf("Index(corner) = %d,%d", i, j)
	}
	// Clamping.
	i, j = g.Index(-5, 500)
	if i != 4 || j != 0 {
		t.Errorf("Index(clamped) = %d,%d", i, j)
	}
	// Center of (0,0) is (5, 5).
	x, y := g.Center(0, 0)
	if x != 5 || y != 5 {
		t.Errorf("Center = %v,%v", x, y)
	}
	// Round trip: the center of each cell indexes back to that cell.
	for i := 0; i < g.M; i++ {
		for j := 0; j < g.N; j++ {
			x, y := g.Center(i, j)
			ii, jj := g.Index(x, y)
			if ii != i || jj != j {
				t.Fatalf("center round-trip failed at %d,%d", i, j)
			}
		}
	}
}

func TestMapBasics(t *testing.T) {
	g := mustGrid(t, 30, 30, 10)
	m := NewMap(g)
	m.Set(1, 2, 3.25)
	if m.At(1, 2) != 3.25 {
		t.Error("Set/At")
	}
	if m.DoseAt(25, 15) != 3.25 {
		t.Error("DoseAt")
	}
	u := Uniform(g, -2)
	for _, v := range u.D {
		if v != -2 {
			t.Fatal("Uniform")
		}
	}
	cl := m.Clone()
	cl.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone must not share")
	}
}

func TestSnap(t *testing.T) {
	g := mustGrid(t, 20, 20, 10)
	m := NewMap(g)
	m.Set(0, 0, 1.26)
	m.Set(0, 1, 7.0)
	m.Snap()
	if m.At(0, 0) != 1.5 || m.At(0, 1) != 5 {
		t.Errorf("Snap = %v, %v", m.At(0, 0), m.At(0, 1))
	}
}

func TestRangeAndSmoothChecks(t *testing.T) {
	g := mustGrid(t, 30, 30, 10)
	m := Uniform(g, 2)
	if err := m.CheckRange(-5, 5); err != nil {
		t.Error(err)
	}
	if err := m.CheckSmooth(0.5); err != nil {
		t.Error("uniform map is maximally smooth")
	}
	m.Set(1, 1, 6)
	if err := m.CheckRange(-5, 5); err == nil {
		t.Error("out-of-range dose should fail")
	}
	if err := m.CheckSmooth(2); err == nil {
		t.Error("4-unit jump should violate δ=2")
	}
	if d := m.MaxNeighborDiff(); d != 4 {
		t.Errorf("MaxNeighborDiff = %v, want 4", d)
	}
}

func TestDiagonalSmoothness(t *testing.T) {
	// Eq. 4 includes the diagonal pair |d_ij − d_{i+1,j+1}|.
	g := mustGrid(t, 20, 20, 10)
	m := NewMap(g)
	m.Set(0, 0, 0)
	m.Set(1, 1, 3)
	// Horizontal/vertical neighbors of the corner are still 0.
	if d := m.MaxNeighborDiff(); d != 3 {
		t.Errorf("diagonal difference not detected: %v", d)
	}
}

func TestStats(t *testing.T) {
	g := mustGrid(t, 20, 20, 10)
	m := NewMap(g)
	copy(m.D, []float64{1, -1, 3, -3})
	s := m.Stats()
	if s.Min != -3 || s.Max != 3 || s.Mean != 0 {
		t.Errorf("Stats = %+v", s)
	}
	if math.Abs(s.RMS-math.Sqrt(5)) > 1e-12 {
		t.Errorf("RMS = %v", s.RMS)
	}
	if (&Map{}).Stats() != (Stats{}) {
		t.Error("empty map stats should be zero")
	}
}

func TestPerGate(t *testing.T) {
	c := netlist.New("t")
	pi := c.AddGate("in", "", netlist.PI)
	a := c.AddGate("a", "INVX1", netlist.Comb)
	b := c.AddGate("b", "INVX1", netlist.Comb)
	po := c.AddGate("out", "", netlist.PO)
	_ = c.Connect(pi.ID, a.ID)
	_ = c.Connect(a.ID, b.ID)
	_ = c.Connect(b.ID, po.ID)
	pl := place.New(c, 20, 20, 2)
	pl.X[a.ID], pl.Y[a.ID] = 5, 5   // grid (0,0)
	pl.X[b.ID], pl.Y[b.ID] = 15, 15 // grid (1,1)

	g := mustGrid(t, 20, 20, 10)
	poly := NewMap(g)
	poly.Set(0, 0, 2)  // ΔL = -4 nm
	poly.Set(1, 1, -1) // ΔL = +2 nm
	active := NewMap(g)
	active.Set(0, 0, -3) // ΔW = +6 nm

	dL, dW := Layers{Poly: poly, Active: active}.PerGate(c, pl, false)
	if dL[a.ID] != -4 || dL[b.ID] != 2 {
		t.Errorf("dL = %v", dL)
	}
	if dW[a.ID] != 6 || dW[b.ID] != 0 {
		t.Errorf("dW = %v", dW)
	}
	if dL[pi.ID] != 0 || dL[po.ID] != 0 {
		t.Error("ports must be untouched")
	}

	// Snapped variant rounds 2→2, -1→-1 (already on grid): same result.
	dL2, _ := Layers{Poly: poly, Active: active}.PerGate(c, pl, true)
	if dL2[a.ID] != dL[a.ID] {
		t.Error("snap changed an on-grid dose")
	}
	// Off-grid doses snap timing-safe: poly rounds up (shorter gate).
	poly.Set(0, 0, 1.7) // snaps up to 2.0 → ΔL = -4
	dL3, _ := Layers{Poly: poly, Active: active}.PerGate(c, pl, true)
	if dL3[a.ID] != -4 {
		t.Errorf("snapped dL = %v, want -4", dL3[a.ID])
	}
	// Active snaps down (wider gate): -2.7 → -3.0 → ΔW = +6.
	active.Set(0, 0, -2.7)
	_, dW3 := Layers{Poly: poly, Active: active}.PerGate(c, pl, true)
	if dW3[a.ID] != 6 {
		t.Errorf("snapped dW = %v, want 6", dW3[a.ID])
	}
	// Poly-only: dW all zero.
	_, dW2 := Layers{Poly: poly}.PerGate(c, pl, false)
	for _, v := range dW2 {
		if v != 0 {
			t.Fatal("poly-only must leave widths nominal")
		}
	}
	_ = tech.DoseSensitivity
}

func TestLegendreP(t *testing.T) {
	// P0=1, P1=y, P2=(3y²-1)/2, P3=(5y³-3y)/2.
	for _, y := range []float64{-1, -0.3, 0, 0.7, 1} {
		if LegendreP(0, y) != 1 {
			t.Error("P0")
		}
		if LegendreP(1, y) != y {
			t.Error("P1")
		}
		if math.Abs(LegendreP(2, y)-(3*y*y-1)/2) > 1e-12 {
			t.Error("P2")
		}
		if math.Abs(LegendreP(3, y)-(5*y*y*y-3*y)/2) > 1e-12 {
			t.Error("P3")
		}
	}
	// Orthogonality spot check: ∫P2·P3 over [-1,1] ≈ 0 (trapezoid).
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		y := -1 + 2*(float64(i)+0.5)/float64(n)
		sum += LegendreP(2, y) * LegendreP(3, y)
	}
	sum *= 2 / float64(n)
	if math.Abs(sum) > 1e-6 {
		t.Errorf("P2·P3 integral = %v, want 0", sum)
	}
}

func TestFitRecipeExactSeparable(t *testing.T) {
	// A map built from a quadratic slit + cubic-Legendre scan profile
	// must be fitted exactly (zero residual).
	g := mustGrid(t, 260, 330, 10)
	slit := SlitProfile{Coeffs: []float64{1, -0.5, 0.8}}
	scan := ScanProfile{Coeffs: []float64{0.2, 0.4, -0.3, 0.1}}
	m := Recipe{Slit: slit, Scan: scan}.Render(g)
	rec, err := FitRecipe(m, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RMSResidual > 1e-9 {
		t.Errorf("separable map must fit exactly, residual %v", rec.RMSResidual)
	}
	// Re-rendered map matches.
	m2 := rec.Render(g)
	for i := range m.D {
		if math.Abs(m.D[i]-m2.D[i]) > 1e-9 {
			t.Fatalf("render mismatch at %d", i)
		}
	}
}

func TestFitRecipeErrors(t *testing.T) {
	g := mustGrid(t, 40, 40, 10)
	m := NewMap(g)
	if _, err := FitRecipe(m, 7, 4); err == nil {
		t.Error("slit order > 6 should fail")
	}
	if _, err := FitRecipe(m, 2, 0); err == nil {
		t.Error("zero scan terms should fail")
	}
	if _, err := FitRecipe(m, 2, 9); err == nil {
		t.Error("scan terms > 8 should fail")
	}
}

func TestACLVBaseline(t *testing.T) {
	g := mustGrid(t, 241, 241, 5)
	m := ACLVBaseline(g, 2)
	// Must be in a sane range and smooth.
	if err := m.CheckRange(-2.5, 2.5); err != nil {
		t.Error(err)
	}
	if err := m.CheckSmooth(0.5); err != nil {
		t.Errorf("ACLV baseline must be smooth: %v", err)
	}
	// Must be well captured by the actuator recipe (it is built from a
	// radial + tilt fingerprint — nearly separable, small residual).
	rec, err := FitRecipe(m, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RMSResidual > 0.2 {
		t.Errorf("ACLV baseline residual %v too high", rec.RMSResidual)
	}
	// Zero amplitude → zero map.
	z := ACLVBaseline(g, 0)
	for _, v := range z.D {
		if v != 0 {
			t.Fatal("zero-amplitude baseline must be zero")
		}
	}
}

// Property: FitRecipe never increases RMS error versus the trivial
// all-zero recipe, and rendering a fitted recipe of a smooth random map
// reproduces the map's column/row structure within the residual.
func TestPropertyFitRecipeReducesError(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := NewGrid(100, 100, 10)
		if err != nil {
			return false
		}
		m := NewMap(g)
		// Smooth random field: sum of a few low-order terms + noise.
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		for i := 0; i < g.M; i++ {
			for j := 0; j < g.N; j++ {
				x := -1 + 2*(float64(j)+0.5)/float64(g.N)
				y := -1 + 2*(float64(i)+0.5)/float64(g.M)
				m.Set(i, j, a*x+b*y*y+c+0.1*rng.NormFloat64())
			}
		}
		rec, err := FitRecipe(m, 2, 3)
		if err != nil {
			return false
		}
		zeroRMS := m.Stats().RMS
		return rec.RMSResidual <= zeroRMS+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: grid Index is total — every point in the field maps to a
// valid cell, and points within a cell map consistently.
func TestPropertyGridIndexTotal(t *testing.T) {
	g, err := NewGrid(123, 77, 9)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		i, j := g.Index(math.Mod(math.Abs(x), 123), math.Mod(math.Abs(y), 77))
		return i >= 0 && i < g.M && j >= 0 && j < g.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
