package dosemap

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewWaferLayout(t *testing.T) {
	w, err := NewWafer(300, 26, 33, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A 300 mm wafer fits on the order of 50-90 full 26x33 mm fields.
	if len(w.Fields) < 40 || len(w.Fields) > 120 {
		t.Errorf("field count = %d, expected a production-like layout", len(w.Fields))
	}
	// Every field fully inside the usable radius.
	usable := 150.0 - 3
	for _, f := range w.Fields {
		for _, dx := range []float64{-13, 13} {
			for _, dy := range []float64{-16.5, 16.5} {
				if math.Hypot(f.CX+dx, f.CY+dy) > usable+1e-9 {
					t.Fatalf("field (%d,%d) corner off-wafer", f.Col, f.Row)
				}
			}
		}
	}
	// Symmetry: for every field there is a mirrored partner.
	seen := map[[2]int]bool{}
	for _, f := range w.Fields {
		seen[[2]int{f.Col, f.Row}] = true
	}
	for _, f := range w.Fields {
		if !seen[[2]int{-1 - f.Col, f.Row}] {
			t.Fatalf("layout not x-symmetric at (%d,%d)", f.Col, f.Row)
		}
	}
	if _, err := NewWafer(0, 26, 33, 3); err == nil {
		t.Error("bad wafer spec should fail")
	}
	if _, err := NewWafer(20, 26, 33, 3); err == nil {
		t.Error("field larger than wafer should fail")
	}
}

func TestRadialCD(t *testing.T) {
	w, err := NewWafer(300, 26, 33, 3)
	if err != nil {
		t.Fatal(err)
	}
	fp := RadialCD{Center: -1, Edge: 3, Power: 2}
	if got := fp.At(w, 0, 0); got != -1 {
		t.Errorf("center bias = %v", got)
	}
	if got := fp.At(w, 147, 0); math.Abs(got-3) > 1e-9 {
		t.Errorf("edge bias = %v", got)
	}
	// Beyond the usable radius the profile clamps.
	if got := fp.At(w, 400, 0); math.Abs(got-3) > 1e-9 {
		t.Errorf("clamped bias = %v", got)
	}
	// Monotone outward for a bowl.
	prev := fp.At(w, 0, 0)
	for r := 10.0; r < 140; r += 10 {
		v := fp.At(w, r, 0)
		if v < prev {
			t.Fatalf("bowl not monotone at r=%v", r)
		}
		prev = v
	}
}

func TestAWLVCorrection(t *testing.T) {
	w, err := NewWafer(300, 26, 33, 3)
	if err != nil {
		t.Fatal(err)
	}
	fp := RadialCD{Center: -2, Edge: 4, Power: 2}
	before := fp.FieldCD(w)
	offsets, residual := AWLVCorrection(w, fp, -5, 5)
	if len(offsets) != len(w.Fields) || len(residual) != len(w.Fields) {
		t.Fatal("length mismatch")
	}
	// Correction must shrink the across-wafer CD spread dramatically
	// (the fingerprint is within the dose range: |4 nm| < 10 nm reach).
	if Spread(residual) > 0.05*Spread(before) {
		t.Errorf("residual spread %.3f vs before %.3f", Spread(residual), Spread(before))
	}
	// Offsets within the equipment range.
	for _, d := range offsets {
		if d < -5-1e-9 || d > 5+1e-9 {
			t.Fatalf("offset %v out of range", d)
		}
	}
	// An out-of-reach fingerprint clamps and leaves residual.
	big := RadialCD{Center: -30, Edge: 30, Power: 2}
	_, res2 := AWLVCorrection(w, big, -5, 5)
	if Spread(res2) < 10 {
		t.Errorf("clamped correction should leave residual, spread %.1f", Spread(res2))
	}
}

func TestSpread(t *testing.T) {
	if Spread(nil) != 0 {
		t.Error("empty spread")
	}
	if Spread([]float64{3, -1, 2}) != 4 {
		t.Error("spread")
	}
}

func TestTile(t *testing.T) {
	g := mustGrid(t, 30, 20, 10)
	m := NewMap(g)
	for i := 0; i < g.M; i++ {
		for j := 0; j < g.N; j++ {
			m.Set(i, j, float64(i*10+j))
		}
	}
	tl, err := m.Tile(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Grid.N != g.N*2 || tl.Grid.M != g.M*3 {
		t.Fatalf("tiled dims %dx%d", tl.Grid.M, tl.Grid.N)
	}
	for i := 0; i < tl.Grid.M; i++ {
		for j := 0; j < tl.Grid.N; j++ {
			if tl.At(i, j) != m.At(i%g.M, j%g.N) {
				t.Fatalf("tile value mismatch at %d,%d", i, j)
			}
		}
	}
	if _, err := m.Tile(0, 1); err == nil {
		t.Error("bad tiling should fail")
	}
}

func TestCheckTiledSmooth(t *testing.T) {
	g := mustGrid(t, 40, 40, 10)
	// A horizontal ramp 0,1,2,3 is interior-smooth at δ=1 but its seam
	// (3 against 0) violates tiling smoothness.
	m := NewMap(g)
	for i := 0; i < g.M; i++ {
		for j := 0; j < g.N; j++ {
			m.Set(i, j, float64(j))
		}
	}
	if err := m.CheckSmooth(1); err != nil {
		t.Fatalf("interior smoothness should pass: %v", err)
	}
	if err := m.CheckTiledSmooth(1); err == nil {
		t.Error("seam violation must be detected")
	}
	// A flat map tiles fine.
	if err := Uniform(g, 2).CheckTiledSmooth(0.1); err != nil {
		t.Errorf("uniform map must tile: %v", err)
	}
}

// Property: CheckTiledSmooth(δ) passing implies the explicitly tiled 2x2
// map passes plain CheckSmooth(δ) — the seam check is exactly what
// tiling adds.
func TestPropertyTiledSmoothEquivalence(t *testing.T) {
	g, err := NewGrid(40, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals [16]float64) bool {
		m := NewMap(g)
		for i := range m.D {
			m.D[i] = math.Mod(math.Abs(vals[i%16]), 10) - 5
			if math.IsNaN(m.D[i]) {
				m.D[i] = 0
			}
		}
		const delta = 2.0
		tiled, err := m.Tile(2, 2)
		if err != nil {
			return false
		}
		seamOK := m.CheckTiledSmooth(delta) == nil
		fullOK := tiled.CheckSmooth(delta) == nil
		return seamOK == fullOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
