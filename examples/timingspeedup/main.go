// Timing speedup: the Table V/VIII + Fig. 10 scenario.  A design must
// run faster without any leakage increase.  This example runs the QCP
// (minimize clock period under a Δleakage ≤ 0 budget), follows it with
// the dosePl cell-swapping rounds, and prints the worst-slack profile of
// each stage against the "Bias" headroom reference.
//
// It uses the context-aware facade (GenerateCtx, AnalyzeCtx, RunQCPCtx,
// RunDosePlCtx): the whole flow runs under a deadline and aborts with a
// wrapped context error if it overruns.  Results are bit-identical to
// the plain serial API at any worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// The whole flow must finish within two minutes; cancellation is
	// checked at iteration boundaries so an overrun aborts promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const workers = 0 // 0 = GOMAXPROCS; results do not depend on this

	preset := repro.AES65().Scaled(0.1)
	d, err := repro.GenerateCtx(ctx, preset)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := repro.AnalyzeCtx(ctx, d, workers)
	if err != nil {
		log.Fatal(err)
	}
	model, err := repro.FitModelCtx(ctx, golden, false, workers)
	if err != nil {
		log.Fatal(err)
	}

	opt := repro.DefaultOptions()
	opt.G = 5
	opt.Workers = workers
	res, err := repro.RunQCPCtx(ctx, golden, model, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: QCP pushed MCT %.1f → %.1f ps (%.2f%%) at leakage %.1f → %.1f µW\n",
		preset.Name, res.Nominal.MCTps, res.Golden.MCTps,
		100*(1-res.Golden.MCTps/res.Nominal.MCTps),
		res.Nominal.LeakUW, res.Golden.LeakUW)

	dopt := repro.DefaultDosePlOptions()
	dopt.K = 1000
	dopt.Rounds = 8
	dopt.Gamma5 = 4
	dp, err := repro.RunDosePlCtx(ctx, golden, res, opt, dopt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dosePl: %d swaps accepted over %d rounds, MCT %.1f → %.1f ps\n",
		dp.SwapsAccepted, len(dp.Rounds), dp.Before.MCTps, dp.After.MCTps)
	for i, r := range dp.Rounds {
		verdict := "rolled back"
		if r.Accepted {
			verdict = "accepted"
		}
		fmt.Printf("  round %d: %d swaps → MCT %.1f ps (%s)\n", i+1, r.Swaps, r.MCTps, verdict)
	}

	total := 100 * (1 - dp.After.MCTps/res.Nominal.MCTps)
	fmt.Printf("\ntotal flow speedup: %.2f%% with no leakage increase\n", total)
}
