// Timing speedup: the Table V/VIII + Fig. 10 scenario.  A design must
// run faster without any leakage increase.  This example runs the QCP
// (minimize clock period under a Δleakage ≤ 0 budget), follows it with
// the dosePl cell-swapping rounds, and prints the worst-slack profile of
// each stage against the "Bias" headroom reference.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	preset := repro.AES65().Scaled(0.1)
	d, err := repro.Generate(preset)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := repro.Analyze(d)
	if err != nil {
		log.Fatal(err)
	}
	model, err := repro.FitModel(golden, false)
	if err != nil {
		log.Fatal(err)
	}

	opt := repro.DefaultOptions()
	opt.G = 5
	res, err := repro.RunQCP(golden, model, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: QCP pushed MCT %.1f → %.1f ps (%.2f%%) at leakage %.1f → %.1f µW\n",
		preset.Name, res.Nominal.MCTps, res.Golden.MCTps,
		100*(1-res.Golden.MCTps/res.Nominal.MCTps),
		res.Nominal.LeakUW, res.Golden.LeakUW)

	dopt := repro.DefaultDosePlOptions()
	dopt.K = 1000
	dopt.Rounds = 8
	dopt.Gamma5 = 4
	dp, err := repro.RunDosePl(golden, res, opt, dopt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dosePl: %d swaps accepted over %d rounds, MCT %.1f → %.1f ps\n",
		dp.SwapsAccepted, len(dp.Rounds), dp.Before.MCTps, dp.After.MCTps)
	for i, r := range dp.Rounds {
		verdict := "rolled back"
		if r.Accepted {
			verdict = "accepted"
		}
		fmt.Printf("  round %d: %d swaps → MCT %.1f ps (%s)\n", i+1, r.Swaps, r.MCTps, verdict)
	}

	total := 100 * (1 - dp.After.MCTps/res.Nominal.MCTps)
	fmt.Printf("\ntotal flow speedup: %.2f%% with no leakage increase\n", total)
}
