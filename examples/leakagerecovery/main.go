// Leakage recovery: the Table IV/VI scenario.  A chip is meeting timing
// but burning too much leakage power; the fab can still change the dose
// recipe.  This example runs the dose-map QP at three grid granularities
// and on one versus two layers, showing how much leakage each equipment
// capability recovers with zero timing impact.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	preset := repro.JPEG65().Scaled(0.08)
	d, err := repro.Generate(preset)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := repro.Analyze(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d cells, nominal MCT %.1f ps\n\n", preset.Name, d.Circ.NumCells(), golden.MCT)
	fmt.Printf("%-10s %-12s %-12s %-12s %-10s\n", "grid (µm)", "layers", "leak (µW)", "saved (%)", "ΔMCT (%)")

	for _, g := range []float64{5, 10, 30} {
		for _, both := range []bool{false, true} {
			model, err := repro.FitModel(golden, both)
			if err != nil {
				log.Fatal(err)
			}
			opt := repro.DefaultOptions()
			opt.G = g
			opt.BothLayers = both
			res, err := repro.RunQP(golden, model, opt, golden.MCT)
			if err != nil {
				log.Fatal(err)
			}
			layers := "Lgate"
			if both {
				layers = "Lgate+Wgate"
			}
			fmt.Printf("%-10.1f %-12s %-12.1f %-12.2f %-10.2f\n",
				g, layers, res.Golden.LeakUW,
				100*(1-res.Golden.LeakUW/res.Nominal.LeakUW),
				100*(res.Golden.MCTps/res.Nominal.MCTps-1))
		}
	}
	fmt.Println("\nfiner grids recover more leakage; width modulation adds only a sliver")
	fmt.Println("(the dose-reachable ±10 nm is small against ≥200 nm transistor widths).")
}
