// Equipment view: Section II-A made concrete.  The DoseMapper actuators
// expose a slit profile (Unicom-XL, a polynomial of order ≤6) and a scan
// profile (Dosicom, up to eight Legendre coefficients, Eq. 1).  This
// example optimizes a dose map, decomposes it into that actuator recipe,
// and reports how much of the design-aware map the equipment realizes.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/dosemap"
)

func main() {
	d, err := repro.Generate(repro.AES65().Scaled(0.1))
	if err != nil {
		log.Fatal(err)
	}
	golden, err := repro.Analyze(d)
	if err != nil {
		log.Fatal(err)
	}
	model, err := repro.FitModel(golden, false)
	if err != nil {
		log.Fatal(err)
	}
	opt := repro.DefaultOptions()
	opt.G = 5
	res, err := repro.RunQP(golden, model, opt, golden.MCT)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Layers.Poly
	st := m.Stats()
	fmt.Printf("optimized dose map: %dx%d grids, dose ∈ [%.2f%%, %.2f%%], RMS %.2f%%\n",
		m.Grid.M, m.Grid.N, st.Min, st.Max, st.RMS)

	// ACLV baseline: the manufacturing-only map the fab would use today.
	base := dosemap.ACLVBaseline(m.Grid, 1.5)
	fmt.Printf("ACLV baseline map : dose ∈ [%.2f%%, %.2f%%] (radial+tilt fingerprint)\n",
		base.Stats().Min, base.Stats().Max)

	// Decompose the design-aware map into the actuator recipe.
	rec, err := dosemap.FitRecipe(m, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nactuator recipe (quadratic slit + 4 Legendre scan terms):\n")
	fmt.Printf("  slit coefficients: %v\n", fmtCoeffs(rec.Slit.Coeffs))
	fmt.Printf("  scan coefficients: %v\n", fmtCoeffs(rec.Scan.Coeffs))
	fmt.Printf("  RMS residual     : %.3f%% dose\n", rec.RMSResidual)

	rec6, err := dosemap.FitRecipe(m, 6, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith the full XT:1700i capability (6th-order slit, 8 Legendre terms):\n")
	fmt.Printf("  RMS residual     : %.3f%% dose\n", rec6.RMSResidual)
	fmt.Println("\nthe residual is what per-grid dose control (this paper's knob)")
	fmt.Println("buys over pure slit/scan actuators.")
}

func fmtCoeffs(cs []float64) string {
	out := "["
	for i, c := range cs {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.3f", c)
	}
	return out + "]"
}
