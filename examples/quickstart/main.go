// Quickstart: generate a synthetic AES-65 testcase, run the dose-map QP
// (minimize leakage under the nominal clock period) and print the golden
// signoff numbers — the headline result of the paper: leakage drops with
// no timing cost, something no uniform dose change can do.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A tenth-scale AES-65 keeps this example under a few seconds.
	preset := repro.AES65().Scaled(0.1)
	d, err := repro.Generate(preset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d cells on %.0fx%.0f µm\n",
		preset.Name, d.Circ.NumCells(), d.Pl.ChipW, d.Pl.ChipH)

	opt := repro.DefaultOptions()
	opt.G = 5 // the paper's finest grid; G is an equipment property, not a design one

	out, err := repro.RunFlow(d, repro.FlowConfig{Opt: opt, Mode: repro.ModeQPLeakage})
	if err != nil {
		log.Fatal(err)
	}
	dm := out.DM
	fmt.Printf("nominal : MCT %7.1f ps, leakage %7.1f µW\n", dm.Nominal.MCTps, dm.Nominal.LeakUW)
	fmt.Printf("DMopt QP: MCT %7.1f ps, leakage %7.1f µW\n", dm.Golden.MCTps, dm.Golden.LeakUW)
	fmt.Printf("leakage saved: %.1f%% at %.2f%% timing cost\n",
		100*(1-dm.Golden.LeakUW/dm.Nominal.LeakUW),
		100*(dm.Golden.MCTps/dm.Nominal.MCTps-1))
	st := dm.Layers.Poly.Stats()
	fmt.Printf("dose map: %d grids, dose ∈ [%.2f%%, %.2f%%], max neighbor Δ %.2f%%\n",
		dm.Layers.Poly.Grid.Cells(), st.Min, st.Max, dm.Layers.Poly.MaxNeighborDiff())
}
