// Benchmarks that regenerate every table and figure of the paper's
// evaluation section.  Each benchmark prints its reproduced rows once
// (captured in bench_output.txt by the top-level run script) and then
// times the underlying experiment.
//
// The design scale defaults to a small fraction of the paper's full
// testcase sizes so the whole suite runs in minutes; set
// REPRO_BENCH_SCALE=1 to benchmark the full Table I designs.
package repro_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/expt"
)

func benchScale() float64 {
	if v := os.Getenv("REPRO_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			return f
		}
	}
	return 0.06
}

var (
	ctxOnce sync.Once
	ctx     *expt.Context
)

func harness() *expt.Context {
	ctxOnce.Do(func() {
		ctx = expt.New(expt.WithScale(benchScale()), expt.WithTopK(1000))
	})
	return ctx
}

var printed sync.Map

// printOnce emits a table the first time its benchmark runs.
func printOnce(key string, f func() (*expt.Table, error), b *testing.B) {
	if _, loaded := printed.LoadOrStore(key, true); loaded {
		return
	}
	t, err := f()
	if err != nil {
		b.Fatalf("%s: %v", key, err)
	}
	fmt.Println(t.Format())
}

func BenchmarkFig2DoseSensitivity(b *testing.B) {
	printOnce("fig2", func() (*expt.Table, error) { return expt.Fig2(), nil }, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = expt.Fig2()
	}
}

func BenchmarkFig3DelayVsLength(b *testing.B) {
	printOnce("fig3", func() (*expt.Table, error) { return expt.Fig3(), nil }, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = expt.Fig3()
	}
}

func BenchmarkFig4DelayVsWidth(b *testing.B) {
	printOnce("fig4", func() (*expt.Table, error) { return expt.Fig4(), nil }, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = expt.Fig4()
	}
}

func BenchmarkFig5LeakageVsLength(b *testing.B) {
	printOnce("fig5", func() (*expt.Table, error) { return expt.Fig5(), nil }, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = expt.Fig5()
	}
}

func BenchmarkFig6LeakageVsWidth(b *testing.B) {
	printOnce("fig6", func() (*expt.Table, error) { return expt.Fig6(), nil }, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = expt.Fig6()
	}
}

func BenchmarkTableIDesigns(b *testing.B) {
	c := harness()
	printOnce("tableI", c.TableI, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TableI(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIDoseSweepAES65(b *testing.B) {
	c := harness()
	printOnce("tableII", c.TableII, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DoseSweep("AES-65", expt.SweepDoses()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIIDoseSweepAES90(b *testing.B) {
	c := harness()
	printOnce("tableIII", c.TableIII, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DoseSweep("AES-90", expt.SweepDoses()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIVDMoptPoly(b *testing.B) {
	c := harness()
	printOnce("tableIV", func() (*expt.Table, error) {
		t, _, err := c.TableIV()
		return t, err
	}, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Time one representative optimization (AES-65, finest grid, QP).
		if _, err := c.RunDM("AES-65", 5, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTableIV times the full 24-optimization Table IV fan at a fixed
// worker count.  The design/golden caches are warmed before the timer
// so the measurement isolates the optimization fan-out that the worker
// pool parallelizes.  Serial and parallel runs produce bit-identical
// tables (see internal/expt TestTableIVWorkersEquivalent); only the
// wall time differs.
func benchTableIV(b *testing.B, workers int) {
	c := expt.New(expt.WithScale(benchScale()), expt.WithTopK(1000), expt.WithWorkers(workers))
	if _, err := c.Design("AES-65"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.TableIV(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIVSerial(b *testing.B)   { benchTableIV(b, 1) }
func BenchmarkTableIVParallel(b *testing.B) { benchTableIV(b, 0) }

func BenchmarkTableVQCPBothLayers(b *testing.B) {
	c := harness()
	printOnce("tableV", func() (*expt.Table, error) {
		t, _, err := c.TableV()
		return t, err
	}, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunDM("AES-65", 5, true, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVIQPBothLayers(b *testing.B) {
	c := harness()
	printOnce("tableVI", func() (*expt.Table, error) {
		t, _, err := c.TableVI()
		return t, err
	}, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunDM("AES-65", 5, false, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVIICriticality(b *testing.B) {
	c := harness()
	printOnce("tableVII", c.TableVII, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := c.Criticality("AES-65"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVIIIDosePl(b *testing.B) {
	c := harness()
	printOnce("tableVIII", c.TableVIII, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TableVIII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10SlackProfiles(b *testing.B) {
	c := harness()
	printOnce("fig10", func() (*expt.Table, error) { return c.Fig10("AES-65", 16) }, b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig10Profiles("AES-65"); err != nil {
			b.Fatal(err)
		}
	}
}
